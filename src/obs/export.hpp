// RAII export surface for tool main()s: turns the telemetry layer on for
// exactly the outputs the user asked for and writes the files on the way
// out. `gnavigator_cli --trace-out trace.json --metrics-out metrics.prom`
// is two lines of wiring with this; so are the benches.
//
// An empty path leaves the corresponding subsystem untouched (disabled
// unless something else enabled it), so constructing an ExportScope with
// two empty strings is a no-op — tools can install one unconditionally.
#pragma once

#include <string>

namespace gnav::obs {

class ExportScope {
 public:
  /// Non-empty `trace_path` enables tracing; non-empty `metrics_path`
  /// enables metrics. Files are written by the destructor.
  ExportScope(std::string trace_path, std::string metrics_path);

  /// Writes the Chrome trace and/or Prometheus text files. Never throws:
  /// export failure at shutdown is logged, not fatal.
  ~ExportScope();

  ExportScope(const ExportScope&) = delete;
  ExportScope& operator=(const ExportScope&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace gnav::obs
