#include "estimator/corpus_io.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/string_utils.hpp"

namespace gnav::estimator {
namespace {

// Config is embedded as its guideline text with ';' separators (already
// its native single-statement form), so the CSV stays one row per run.
constexpr const char* kHeader =
    "dataset,num_nodes,num_edges,avg_degree,max_degree,degree_stddev,"
    "degree_gini,power_law_alpha,top10_coverage,num_train_nodes,"
    "feature_dim,num_classes,real_scale,real_feature_scale,"
    "real_volume_scale,coverage10,coverage25,coverage50,"
    "epoch_time_s,peak_memory_gb,test_accuracy,avg_batch_nodes,"
    "avg_batch_edges,cache_hit_rate,iterations_per_epoch,"
    "sample_s,transfer_s,replace_s,compute_s,"
    // Executor overlap data: Eq. 4's modeled overlapped/sequential pair
    // plus the measured per-stage and wall seconds — the raw material
    // for fitting an f_overlapping correction from profiled runs.
    "modeled_overlap_s,modeled_sequential_s,sample_wall_s,"
    "transfer_wall_s,compute_wall_s,measured_wall_s,config";

std::string config_cell(const runtime::TrainConfig& config) {
  // One line: "key = value; key = value; ..."
  std::string text = config.to_config_map().to_guideline_text();
  for (char& c : text) {
    if (c == '\n') c = ' ';
  }
  return trim(text);
}

}  // namespace

void save_corpus(const std::vector<ProfiledRun>& corpus,
                 const std::string& path) {
  std::ofstream f(path);
  GNAV_CHECK(f.good(), "cannot open '" + path + "' for writing");
  f << kHeader << '\n';
  f.precision(17);  // exact double round-trip
  for (const ProfiledRun& run : corpus) {
    const DatasetStats& s = run.stats;
    const runtime::TrainReport& r = run.report;
    f << s.name << ',' << s.profile.num_nodes << ',' << s.profile.num_edges
      << ',' << s.profile.avg_degree << ',' << s.profile.max_degree << ','
      << s.profile.degree_stddev << ',' << s.profile.degree_gini << ','
      << s.profile.power_law_alpha << ',' << s.profile.top10_edge_coverage
      << ',' << s.num_train_nodes << ',' << s.feature_dim << ','
      << s.num_classes << ',' << s.real_scale_factor << ','
      << s.real_feature_scale << ',' << s.real_volume_scale << ','
      << s.coverage_at_10 << ',' << s.coverage_at_25 << ','
      << s.coverage_at_50 << ',' << r.epoch_time_s << ','
      << r.peak_memory_gb << ',' << r.test_accuracy << ','
      << r.avg_batch_nodes << ',' << r.avg_batch_edges << ','
      << r.cache_hit_rate << ',' << r.iterations_per_epoch << ','
      << r.epoch_phases.sample_s << ',' << r.epoch_phases.transfer_s << ','
      << r.epoch_phases.replace_s << ',' << r.epoch_phases.compute_s << ','
      << r.pipeline.modeled_overlapped_s << ','
      << r.pipeline.modeled_sequential_s << ','
      << r.pipeline.sample_wall_s << ',' << r.pipeline.transfer_wall_s
      << ',' << r.pipeline.compute_wall_s << ','
      << r.pipeline.measured_wall_s << ','
      << '"' << config_cell(run.config) << '"' << '\n';
  }
  GNAV_CHECK(f.good(), "write to '" + path + "' failed");
}

std::vector<ProfiledRun> load_corpus(const std::string& path) {
  std::ifstream f(path);
  GNAV_CHECK(f.good(), "cannot open '" + path + "'");
  std::string line;
  GNAV_CHECK(static_cast<bool>(std::getline(f, line)),
             "empty corpus file");
  GNAV_CHECK(trim(line) == kHeader,
             "corpus header mismatch — file written by another version?");
  std::vector<ProfiledRun> corpus;
  while (std::getline(f, line)) {
    if (trim(line).empty()) continue;
    // The config cell is quoted and contains commas: split off the quoted
    // tail first, then comma-split the scalar prefix.
    const auto quote = line.find('"');
    GNAV_CHECK(quote != std::string::npos && line.back() == '"',
               "malformed corpus row (missing quoted config)");
    const std::string scalars = line.substr(0, quote);
    const std::string config_text =
        line.substr(quote + 1, line.size() - quote - 2);
    auto cells = split(scalars, ',');
    GNAV_CHECK(cells.size() == 36 && cells.back().empty(),
               "malformed corpus row (expected 35 scalar cells)");
    cells.pop_back();

    ProfiledRun run;
    std::size_t i = 0;
    DatasetStats& s = run.stats;
    s.name = cells[i++];
    s.profile.num_nodes = parse_int(cells[i++]);
    s.profile.num_edges = parse_int(cells[i++]);
    s.profile.avg_degree = parse_double(cells[i++]);
    s.profile.max_degree =
        static_cast<std::size_t>(parse_int(cells[i++]));
    s.profile.degree_stddev = parse_double(cells[i++]);
    s.profile.degree_gini = parse_double(cells[i++]);
    s.profile.power_law_alpha = parse_double(cells[i++]);
    s.profile.top10_edge_coverage = parse_double(cells[i++]);
    s.num_train_nodes = static_cast<std::size_t>(parse_int(cells[i++]));
    s.feature_dim = static_cast<int>(parse_int(cells[i++]));
    s.num_classes = static_cast<int>(parse_int(cells[i++]));
    s.real_scale_factor = parse_double(cells[i++]);
    s.real_feature_scale = parse_double(cells[i++]);
    s.real_volume_scale = parse_double(cells[i++]);
    s.coverage_at_10 = parse_double(cells[i++]);
    s.coverage_at_25 = parse_double(cells[i++]);
    s.coverage_at_50 = parse_double(cells[i++]);
    runtime::TrainReport& r = run.report;
    r.epoch_time_s = parse_double(cells[i++]);
    r.peak_memory_gb = parse_double(cells[i++]);
    r.test_accuracy = parse_double(cells[i++]);
    r.avg_batch_nodes = parse_double(cells[i++]);
    r.avg_batch_edges = parse_double(cells[i++]);
    r.cache_hit_rate = parse_double(cells[i++]);
    r.iterations_per_epoch =
        static_cast<std::size_t>(parse_int(cells[i++]));
    r.epoch_phases.sample_s = parse_double(cells[i++]);
    r.epoch_phases.transfer_s = parse_double(cells[i++]);
    r.epoch_phases.replace_s = parse_double(cells[i++]);
    r.epoch_phases.compute_s = parse_double(cells[i++]);
    r.pipeline.modeled_overlapped_s = parse_double(cells[i++]);
    r.pipeline.modeled_sequential_s = parse_double(cells[i++]);
    r.pipeline.sample_wall_s = parse_double(cells[i++]);
    r.pipeline.transfer_wall_s = parse_double(cells[i++]);
    r.pipeline.compute_wall_s = parse_double(cells[i++]);
    r.pipeline.measured_wall_s = parse_double(cells[i++]);
    // The cell stores statements separated by ';' on one line; ConfigMap
    // parses one statement per line.
    std::string statements = config_text;
    for (char& c : statements) {
      if (c == ';') c = '\n';
    }
    run.config =
        runtime::TrainConfig::from_config_map(ConfigMap::parse(statements));
    corpus.push_back(std::move(run));
  }
  return corpus;
}

}  // namespace gnav::estimator
