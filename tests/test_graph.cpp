// Unit tests for CSR graphs, builders, induced subgraphs, profiling,
// and reordering.
#include <gtest/gtest.h>

#include "graph/csr_graph.hpp"
#include "graph/graph_builder.hpp"
#include "graph/graph_stats.hpp"
#include "graph/reorder.hpp"
#include "support/error.hpp"

namespace gnav::graph {
namespace {

CsrGraph triangle_plus_leaf() {
  // 0-1, 1-2, 2-0, 2-3 (undirected).
  return build_undirected(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
}

TEST(CsrGraph, BasicShape) {
  const CsrGraph g = triangle_plus_leaf();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 8);  // symmetrized
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(CsrGraph, NeighborsSortedAscending) {
  const CsrGraph g = triangle_plus_leaf();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 1; i < nb.size(); ++i) {
      EXPECT_LT(nb[i - 1], nb[i]);
    }
  }
}

TEST(CsrGraph, RejectsMalformedInput) {
  EXPECT_THROW(CsrGraph({}, {}), Error);                    // empty indptr
  EXPECT_THROW(CsrGraph({0, 2}, {0}), Error);               // size mismatch
  EXPECT_THROW(CsrGraph({0, 2, 1}, {0, 0}), Error);         // non-monotone
  EXPECT_THROW(CsrGraph({0, 1}, {5}), Error);               // endpoint range
  EXPECT_NO_THROW(CsrGraph({0, 0, 0}, {}));                 // isolated nodes
}

TEST(GraphBuilder, DeduplicatesAndRemovesSelfLoops) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 1);
  b.add_edge(2, 0);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 2);  // 0->1 once, 2->0; self loop gone
  EXPECT_EQ(g.degree(1), 0);
}

TEST(GraphBuilder, KeepsDuplicatesWhenDisabled) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.deduplicate(false);
  EXPECT_EQ(b.build().num_edges(), 2);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoints) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), Error);
  EXPECT_THROW(b.add_edge(-1, 0), Error);
}

TEST(GraphBuilder, SymmetrizeAddsReverseEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.symmetrize(true);
  const CsrGraph g = b.build();
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.num_edges(), 4);
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const CsrGraph g = triangle_plus_leaf();
  const CsrGraph sub = induced_subgraph(g, {0, 2, 3});
  EXPECT_EQ(sub.num_nodes(), 3);
  // edges among {0,2,3}: 0-2 and 2-3 (symmetrized -> 4 directed).
  EXPECT_EQ(sub.num_edges(), 4);
  EXPECT_TRUE(sub.is_symmetric());
}

TEST(InducedSubgraph, RejectsDuplicatesAndOutOfRange) {
  const CsrGraph g = triangle_plus_leaf();
  EXPECT_THROW(induced_subgraph(g, {0, 0}), Error);
  EXPECT_THROW(induced_subgraph(g, {9}), Error);
}

TEST(GraphProfile, ReportsSkewSignals) {
  // Star graph: hub degree n-1, leaves degree 1 -> high gini & coverage.
  GraphBuilder b(21);
  for (NodeId v = 1; v <= 20; ++v) b.add_undirected_edge(0, v);
  const CsrGraph star = b.build();
  const GraphProfile p = profile_graph(star);
  EXPECT_EQ(p.num_nodes, 21);
  EXPECT_EQ(p.max_degree, 20u);
  EXPECT_GT(p.degree_gini, 0.4);
  // caching 10% of vertices (the hub + one leaf) covers >50% of endpoints
  EXPECT_GT(p.top10_edge_coverage, 0.5);
}

TEST(GraphProfile, UniformGraphHasLowGini) {
  // Ring: all degrees equal -> gini ~0.
  GraphBuilder b(50);
  for (NodeId v = 0; v < 50; ++v) b.add_undirected_edge(v, (v + 1) % 50);
  const GraphProfile p = profile_graph(b.build());
  EXPECT_NEAR(p.degree_gini, 0.0, 1e-9);
}

TEST(DegreeCacheCoverage, MonotoneInRatio) {
  const CsrGraph g = triangle_plus_leaf();
  double prev = 0.0;
  for (double r : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double c = degree_cache_coverage(g, r);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(degree_cache_coverage(g, 1.0), 1.0);
  EXPECT_THROW(degree_cache_coverage(g, 1.5), Error);
}

TEST(Reorder, DegreeDescendingOrder) {
  const CsrGraph g = triangle_plus_leaf();
  const auto perm = degree_descending_order(g);
  EXPECT_EQ(perm[0], 2);  // highest degree first
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_GE(g.degree(perm[i - 1]), g.degree(perm[i]));
  }
}

TEST(Reorder, BfsCoversDisconnectedComponents) {
  GraphBuilder b(5);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(3, 4);  // island {3,4}, isolated {2}
  const auto order = bfs_order(b.build(), 0);
  EXPECT_EQ(order.size(), 5u);
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Reorder, ApplyPermutationPreservesStructure) {
  const CsrGraph g = triangle_plus_leaf();
  const auto perm = degree_descending_order(g);
  const CsrGraph h = apply_permutation(g, perm);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // degree multiset preserved
  auto dg = g.degrees();
  auto dh = h.degrees();
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
  // new vertex 0 is the old hub
  EXPECT_EQ(h.degree(0), g.degree(2));
}

TEST(Reorder, InvertPermutationRoundTrip) {
  const std::vector<NodeId> perm = {2, 0, 3, 1};
  const auto inv = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])],
              static_cast<NodeId>(i));
  }
  EXPECT_THROW(invert_permutation({0, 0}), Error);
  EXPECT_THROW(invert_permutation({0, 5}), Error);
}

}  // namespace
}  // namespace gnav::graph
