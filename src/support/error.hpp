// Error handling primitives for GNNavigator.
//
// All recoverable API misuse is reported by throwing `gnav::Error`, which
// carries a human-readable message and (when raised through the GNAV_CHECK
// family of macros) the source location of the failed check. Internal
// invariants use GNAV_ASSERT, which is compiled in all build types — this
// library models hardware and training pipelines, so silent corruption is
// far worse than an aborted run.
#pragma once

#include <stdexcept>
#include <string>

namespace gnav {

/// Exception type thrown on precondition violations and invalid configuration.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
[[noreturn]] void assert_failure(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace gnav

/// Throws gnav::Error when `cond` is false. `msg` is any streamable message.
#define GNAV_CHECK(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::gnav::detail::throw_check_failure(#cond, __FILE__, __LINE__,   \
                                          (msg));                      \
    }                                                                  \
  } while (false)

/// Hard internal invariant; aborts on failure (never throws).
#define GNAV_ASSERT(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::gnav::detail::assert_failure(#cond, __FILE__, __LINE__);       \
    }                                                                  \
  } while (false)
