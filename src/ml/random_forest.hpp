// Bagged ensemble of CART trees with per-tree bootstrap resampling.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace gnav::ml {

struct ForestParams {
  int num_trees = 30;
  TreeParams tree;
  /// Bootstrap sample fraction per tree.
  double subsample = 0.9;
  std::uint64_t seed = 17;
};

class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(ForestParams params = {});

  void fit(const Matrix& x, const std::vector<double>& y) override;
  double predict_one(const std::vector<double>& x) const override;
  bool is_fitted() const override { return !trees_.empty(); }

  std::size_t tree_count() const { return trees_.size(); }

 private:
  ForestParams params_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace gnav::ml
