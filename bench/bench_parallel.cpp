// Thread-pool scaling benchmark for the three parallelized hot paths:
//
//   1. profile collection  (estimator training corpus; dominates DSE setup)
//   2. explorer candidate scoring (exhaustive sweep over a design space)
//   3. per-epoch mini-batch construction inside the runtime backend
//
// Each path runs at 1/2/4/8 pool threads and reports wall time and
// speedup vs 1 thread, plus a determinism checksum that must not change
// with the thread count. On a single-core host the speedup columns
// degenerate to ~1.0x; run on a multi-core machine to see scaling.
#include <chrono>
#include <cstdio>
#include <vector>

#include "dse/design_space.hpp"
#include "dse/explorer.hpp"
#include "estimator/perf_estimator.hpp"
#include "estimator/profile_collector.hpp"
#include "graph/dataset.hpp"
#include "runtime/templates.hpp"
#include "support/parallel.hpp"

using namespace gnav;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct PathResult {
  double wall_s = 0.0;
  double checksum = 0.0;
};

PathResult bench_profile_collection(const graph::Dataset& ds,
                                    const hw::HardwareProfile& hw,
                                    support::ThreadPool& pool) {
  estimator::CollectorOptions opts;
  opts.configs_per_dataset = 16;
  opts.epochs = 1;
  opts.seed = 7;
  opts.pool = &pool;
  const auto start = std::chrono::steady_clock::now();
  const auto corpus = estimator::collect_profiles(ds, hw, opts);
  PathResult r;
  r.wall_s = seconds_since(start);
  for (const auto& run : corpus) {
    r.checksum += run.report.epoch_time_s + run.report.test_accuracy;
  }
  return r;
}

PathResult bench_explorer(const dse::DesignSpace& space,
                          const estimator::PerfEstimator& est,
                          const estimator::DatasetStats& stats,
                          support::ThreadPool& pool) {
  dse::Explorer explorer(space, est, stats);
  explorer.set_pool(&pool);
  const auto start = std::chrono::steady_clock::now();
  const auto result = explorer.explore_exhaustive(dse::RuntimeConstraints{});
  PathResult r;
  r.wall_s = seconds_since(start);
  for (const auto& cand : result.feasible) {
    r.checksum += cand.predicted.time_s + cand.predicted.accuracy;
  }
  return r;
}

PathResult bench_backend_epochs(const graph::Dataset& ds,
                                const hw::HardwareProfile& hw,
                                support::ThreadPool& pool) {
  runtime::RuntimeBackend backend(ds, hw);
  runtime::TrainConfig config = runtime::template_pyg();
  config.batch_size = 256;
  runtime::RunOptions opts;
  opts.epochs = 4;
  opts.seed = 11;
  opts.pool = &pool;
  const auto start = std::chrono::steady_clock::now();
  const auto report = backend.run(config, opts);
  PathResult r;
  r.wall_s = seconds_since(start);
  r.checksum = report.epoch_time_s + report.test_accuracy;
  return r;
}

void report_path(const char* name, const std::vector<int>& threads,
                 const std::vector<PathResult>& results) {
  std::printf("%-22s", name);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("  %6.2fs (%4.2fx)", results[i].wall_s,
                results[0].wall_s / results[i].wall_s);
  }
  bool deterministic = true;
  for (const auto& r : results) {
    deterministic = deterministic && r.checksum == results[0].checksum;
  }
  std::printf("  %s\n", deterministic ? "bit-identical" : "MISMATCH!");
  (void)threads;
}

}  // namespace

int main() {
  const auto hw = hw::make_profile("rtx4090");
  const auto ds = graph::make_power_law_augmentation(0, 3);
  const auto stats = estimator::compute_dataset_stats(ds);

  // One shared corpus/estimator for the explorer path (built once).
  estimator::CollectorOptions fit_opts;
  fit_opts.configs_per_dataset = 16;
  fit_opts.epochs = 1;
  fit_opts.seed = 7;
  estimator::PerfEstimator est(hw);
  est.fit(estimator::collect_profiles(ds, hw, fit_opts));
  const auto space = dse::DesignSpace::full(dse::BaseSettings{});

  const std::vector<int> threads = {1, 2, 4, 8};
  std::printf("pool threads:         ");
  for (int t : threads) std::printf("  %9d      ", t);
  std::printf("\n");

  std::vector<PathResult> collect, explore, backend;
  for (int t : threads) {
    support::ThreadPool pool(static_cast<std::size_t>(t));
    collect.push_back(bench_profile_collection(ds, hw, pool));
    explore.push_back(bench_explorer(space, est, stats, pool));
    backend.push_back(bench_backend_epochs(ds, hw, pool));
  }
  report_path("profile collection", threads, collect);
  report_path("explorer sweep", threads, explore);
  report_path("backend epochs", threads, backend);
  return 0;
}
