#include "support/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace gnav::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "GNAV_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

void assert_failure(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "GNAV_ASSERT failed: (%s) at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace gnav::detail
