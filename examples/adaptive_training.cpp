// Adaptive training: the same application run under four different
// requirement priorities (the paper's Bal / Ex-TM / Ex-MA / Ex-TA), plus a
// memory-constrained scenario, showing how the generated guidelines —
// and the resulting measured performance — shift with the priorities.
//
//   ./build/examples/adaptive_training [dataset]
#include <cstdio>
#include <string>

#include "navigator/navigator.hpp"

using namespace gnav;

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "ogbn-arxiv";
  graph::Dataset dataset = graph::load_dataset(dataset_name);
  hw::HardwareProfile gpu = hw::make_profile("rtx4090");
  dse::BaseSettings model;
  model.model = nn::ModelKind::kSage;
  model.num_layers = 2;

  navigator::GNNavigator nav(std::move(dataset), gpu, model);
  std::printf("dataset: %s  (%s)\n", dataset_name.c_str(),
              nav.dataset_stats().profile.to_string().c_str());
  std::printf("preparing estimator...\n");
  nav.prepare_default(/*configs_per_dataset=*/12, /*augmentation_graphs=*/1,
                      /*profiling_epochs=*/1);

  dse::RuntimeConstraints unconstrained;
  unconstrained.max_memory_gb = gpu.device.memory_gb;

  const dse::ExploreTargets priorities[] = {
      dse::targets_balance(), dse::targets_extreme_time_memory(),
      dse::targets_extreme_memory_accuracy(),
      dse::targets_extreme_time_accuracy()};

  std::printf("\n%-10s %-48s %8s %8s %8s\n", "priority", "chosen config",
              "T(s)", "Mem(GB)", "Acc(%)");
  for (const auto& p : priorities) {
    const navigator::Guideline g =
        nav.generate_guideline(p, unconstrained);
    const runtime::TrainReport r = nav.train(g.config, /*epochs=*/4);
    std::printf("%-10s %-48s %8.2f %8.2f %8.2f\n", p.name.c_str(),
                g.config.summary().c_str(), r.epoch_time_s,
                r.peak_memory_gb, 100.0 * r.test_accuracy);
  }

  // Scenario: the device suddenly has a hard 1.2 GB budget (edge box).
  dse::RuntimeConstraints tight;
  tight.max_memory_gb = 1.2;
  const navigator::Guideline g =
      nav.generate_guideline(dse::targets_balance(), tight);
  const runtime::TrainReport r = nav.train(g.config, 4);
  std::printf("%-10s %-48s %8.2f %8.2f %8.2f   (<= 1.2 GB budget)\n",
              "edge-box", g.config.summary().c_str(), r.epoch_time_s,
              r.peak_memory_gb, 100.0 * r.test_accuracy);
  return 0;
}
