// Reusable per-thread scratch for the sampling hot path.
//
// Every sampler used to rebuild hash sets/maps and temporary vectors per
// sample() call; at navigation scale (re-sampling every epoch under every
// candidate configuration) those allocations and pointer-chasing probes
// dominated the serial sampling path. SampleScratch replaces them with
// flat, epoch-stamped marker arrays and growable buffers that live in
// thread-local storage and are reused across batches.
//
// Determinism rules (see README "Sampling pipeline"):
//   - A marker pass begins with begin_pass(n), which bumps the stamp —
//     O(1), no clearing — so results never depend on what a previous
//     batch left behind.
//   - Scratch is per-thread (SampleScratch::local()); sampler results are
//     a pure function of (graph, seeds, Rng stream), so which thread's
//     scratch served a batch is unobservable.
//   - Buffers only grow; peak size is bounded by the largest |V| sampled
//     on that thread.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "support/alias_table.hpp"
#include "support/rng.hpp"

namespace gnav::sampling {

/// Dense epoch-stamped set/map over ids in [0, n). contains/insert/set/
/// get are O(1) with no hashing; begin_pass is O(1) amortized (grows the
/// backing arrays to n on first use).
class NodeMarker {
 public:
  static constexpr std::int64_t kAbsent = -1;

  void begin_pass(std::size_t n) {
    if (stamp_.size() < n) {
      stamp_.resize(n, 0);
      value_.resize(n, kAbsent);
    }
    ++epoch_;
  }

  bool contains(std::int64_t id) const {
    return stamp_[static_cast<std::size_t>(id)] == epoch_;
  }

  /// Marks `id`; returns true when it was not yet marked this pass.
  bool insert(std::int64_t id) {
    auto& s = stamp_[static_cast<std::size_t>(id)];
    if (s == epoch_) return false;
    s = epoch_;
    return true;
  }

  void set(std::int64_t id, std::int64_t value) {
    stamp_[static_cast<std::size_t>(id)] = epoch_;
    value_[static_cast<std::size_t>(id)] = value;
  }

  /// Mapped value of `id`, or kAbsent when unset this pass.
  std::int64_t get(std::int64_t id) const {
    return stamp_[static_cast<std::size_t>(id)] == epoch_
               ? value_[static_cast<std::size_t>(id)]
               : kAbsent;
  }

 private:
  std::vector<std::uint64_t> stamp_;
  std::vector<std::int64_t> value_;
  std::uint64_t epoch_ = 0;
};

/// One weighted neighbor-draw context for the two-valued bias weights
/// (preferred vertices vs the rest). The neighborhood is split once —
/// O(deg) — after which every draw is O(1): choose the group by mass,
/// then uniform within it. Equivalent to the cumulative-array draw it
/// replaces, without the per-call O(deg) array or O(log deg) search.
/// Zero total mass falls back to a uniform draw over the neighborhood.
class TwoGroupDraw {
 public:
  TwoGroupDraw(std::span<const graph::NodeId> nb,
               const std::vector<char>& preference, double preferred_weight,
               double other_weight, std::vector<std::uint32_t>& pref_buf,
               std::vector<std::uint32_t>& rest_buf)
      : nb_(nb), pref_(pref_buf), rest_(rest_buf) {
    pref_.clear();
    rest_.clear();
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const bool preferred =
          preference[static_cast<std::size_t>(nb[i])] != 0;
      (preferred ? pref_ : rest_).push_back(static_cast<std::uint32_t>(i));
    }
    pref_mass_ = preferred_weight * static_cast<double>(pref_.size());
    total_ = pref_mass_ + other_weight * static_cast<double>(rest_.size());
  }

  bool zero_mass() const { return !(total_ > 0.0); }

  /// Draws one neighbor position in [0, nb.size()).
  std::size_t sample(Rng& rng) const {
    if (zero_mass()) {
      // Zero-mass guard: all weights vanished; uniform keeps the draw
      // well-defined instead of dividing by zero.
      return static_cast<std::size_t>(rng.uniform_index(nb_.size()));
    }
    if (rest_.empty()) {
      return pref_[static_cast<std::size_t>(rng.uniform_index(pref_.size()))];
    }
    if (pref_.empty()) {
      return rest_[static_cast<std::size_t>(rng.uniform_index(rest_.size()))];
    }
    if (rng.uniform() * total_ < pref_mass_) {
      return pref_[static_cast<std::size_t>(rng.uniform_index(pref_.size()))];
    }
    return rest_[static_cast<std::size_t>(rng.uniform_index(rest_.size()))];
  }

 private:
  std::span<const graph::NodeId> nb_;
  std::vector<std::uint32_t>& pref_;
  std::vector<std::uint32_t>& rest_;
  double pref_mass_ = 0.0;
  double total_ = 0.0;
};

/// The per-thread scratch bundle. All samplers and the mini-batch
/// builders draw their temporaries from here; nothing in it outlives a
/// sample() call semantically (markers are stamped per pass, vectors are
/// cleared by their users).
struct SampleScratch {
  NodeMarker visited;    // frontier/pool membership
  NodeMarker chosen;     // distinct-draw rejection (indices)
  NodeMarker mask;       // per-layer selected-vertex mask
  NodeMarker local_ids;  // global id -> local row during batch build

  std::vector<graph::NodeId> frontier;
  std::vector<graph::NodeId> next_frontier;
  std::vector<graph::NodeId> collected;
  std::vector<graph::NodeId> picked;
  std::vector<graph::NodeId> pool;
  std::vector<graph::NodeId> ordered;
  std::vector<std::uint32_t> pref_idx;
  std::vector<std::uint32_t> rest_idx;
  std::vector<double> weights;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  support::AliasTable alias;

  // Flat CSR-construction buffers (counting pass + prefix sum + fill).
  std::vector<graph::EdgeId> row_counts;
  std::vector<graph::EdgeId> row_offsets;
  std::vector<graph::EdgeId> row_cursor;
  std::vector<graph::NodeId> adj_tmp;

  /// The calling thread's scratch. Pool workers each get their own; the
  /// serial path reuses the main thread's across every batch.
  static SampleScratch& local();
};

}  // namespace gnav::sampling
