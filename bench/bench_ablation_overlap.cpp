// Ablation — Eq. 4's host/device pipeline overlap, predicted AND
// measured. The paper's epoch-time model takes max(t_sample + t_transfer,
// t_replace + t_compute) because sampling/transfer of batch i+1 overlaps
// device work on batch i. This bench quantifies that two ways per
// configuration:
//
//   modeled  — the cost model's pipelined vs sequential simulated epoch
//              time (the original ablation);
//   measured — the real pipelined epoch executor (GNAV_PIPELINE=async
//              semantics, runtime/pipeline.hpp) vs the synchronous
//              executor: actual stage-overlap speedup from wall-clock
//              stage accounting, plus the overlap efficiency.
//
// The gap between the two columns is exactly what the estimator's
// f_overlapping correction should learn from measured data.
#include <cstdio>

#include "navigator/navigator.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  navigator::GNNavigator nav(graph::load_dataset("reddit2"),
                             hw::make_profile("rtx4090"),
                             dse::BaseSettings{});
  const int epochs = 2;

  Table table({"config", "pipelined T (s)", "sequential T (s)",
               "Eq.4 speedup", "measured speedup", "overlap eff (%)",
               "host share (%)"});
  struct Arm {
    const char* name;
    runtime::TrainConfig config;
  };
  std::vector<Arm> arms;
  arms.push_back({"pyg (transfer-heavy)", runtime::template_pyg()});
  arms.push_back({"pagraph-full (balanced)", runtime::template_pagraph_full()});
  {
    runtime::TrainConfig c = runtime::template_pyg();
    c.model = nn::ModelKind::kGat;  // compute-heavy device side
    c.name = "gat";
    arms.push_back({"gat (compute-heavy)", c});
  }
  {
    runtime::TrainConfig c = runtime::template_pagraph_full();
    c.compress_features = true;
    c.name = "compressed";
    arms.push_back({"pagraph + int8 link", c});
  }

  for (auto& arm : arms) {
    runtime::TrainConfig pipelined = arm.config;
    pipelined.pipeline_overlap = true;
    runtime::TrainConfig sequential = arm.config;
    sequential.pipeline_overlap = false;
    const auto rp = nav.train(pipelined, epochs);
    const auto rs = nav.train(sequential, epochs);

    // Real executor measurement: the same config under the asynchronous
    // pipelined epoch executor. The report is bit-identical to rp except
    // for the wall-clock pipeline fields — which are the point here.
    runtime::RunOptions async_opts;
    async_opts.epochs = epochs;
    async_opts.pipeline.mode = runtime::PipelineMode::kAsync;
    async_opts.pipeline.prefetch_depth = 4;
    const auto ra = nav.backend().run(pipelined, async_opts);

    const double host = rp.epoch_phases.sample_s + rp.epoch_phases.transfer_s;
    const double share = host / rp.epoch_phases.total();
    table.add_row({arm.name, format_double(rp.epoch_time_s, 2),
                   format_double(rs.epoch_time_s, 2),
                   format_double(rs.epoch_time_s / rp.epoch_time_s, 2) + "x",
                   format_double(ra.pipeline.measured_speedup(), 2) + "x",
                   format_double(100.0 * ra.pipeline.overlap_efficiency(), 1),
                   format_double(100.0 * share, 1)});
  }
  std::printf("pipeline-overlap ablation (Reddit2 + SAGE unless noted):\n\n"
              "%s\n", table.to_ascii().c_str());
  std::printf(
      "(Eq.4 speedup is the cost model's prediction; measured speedup is\n"
      " the real pipelined executor's serial-stage-work / wall ratio —\n"
      " overlap gains approach 2x when host and device pipelines are\n"
      " balanced, vanish when one side dominates, and the measured column\n"
      " additionally reflects this host's true core count)\n");
  table.write_csv("ablation_overlap.csv");
  return 0;
}
