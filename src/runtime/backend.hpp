// RuntimeBackend — the reconfigurable training runtime of Fig. 3. Given a
// Dataset, a HardwareProfile and a TrainConfig, it executes Algo. 1
// (sample -> cache lookup -> transfer -> cache update -> compute) and
// reports the measured performance Perf{T, Γ, Acc}:
//
//   T   — simulated epoch time from the hardware cost model, with Eq. 4's
//         host/device pipeline overlap, extrapolated to the original
//         dataset scale (real_scale_factor);
//   Γ   — analytic device memory (Eq. 9: model + cache + runtime), also at
//         original scale;
//   Acc — REAL accuracy: the GNN is genuinely trained on CPU tensors and
//         evaluated on the held-out split.
#pragma once

#include <cstdint>
#include <vector>

#include <string>

#include "compute/backend.hpp"
#include "graph/dataset.hpp"
#include "hw/cost_model.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/profiler.hpp"
#include "runtime/train_config.hpp"

namespace gnav::support {
class ThreadPool;
}

namespace gnav::runtime {

/// Execution profile of the epoch executor, totaled over the run. The
/// modeled_* pair is simulated (cost model, Eq. 4, dataset-scale seconds)
/// and fully deterministic; everything else is REAL wall-clock and stall
/// accounting, so it varies run to run like `wall_clock_s` does — it is
/// exempt from the sync/async bit-identity contract.
struct PipelineReport {
  std::string executor = "sync";  // which executor ran ("sync" | "async")
  std::size_t prefetch_depth = 0;
  std::size_t sampler_workers = 0;

  /// Backpressure: pushes that waited on a full inter-stage queue.
  std::uint64_t push_stalls = 0;
  /// Starvation: pops that waited on an empty inter-stage queue.
  std::uint64_t pop_stalls = 0;
  /// Mean pre-push backlog of the compute-facing prefetch queue
  /// (0..prefetch_depth-1; 0 = compute always kept up, the ROADMAP's
  /// shrink-the-depth signal).
  double mean_queue_occupancy = 0.0;

  /// Measured per-stage busy seconds (sync: serial section timings).
  double sample_wall_s = 0.0;
  double transfer_wall_s = 0.0;
  double compute_wall_s = 0.0;
  /// Measured wall-clock of the training loops (excludes evaluation).
  double measured_wall_s = 0.0;

  /// Eq. 4 prediction for the same iterations (simulated seconds at
  /// original dataset scale, like epoch_times_s).
  double modeled_overlapped_s = 0.0;
  double modeled_sequential_s = 0.0;

  double measured_sequential_s() const {
    return sample_wall_s + transfer_wall_s + compute_wall_s;
  }
  /// Measured stage-overlap speedup (1.0 = fully serial).
  double measured_speedup() const {
    return measured_wall_s > 0.0 ? measured_sequential_s() / measured_wall_s
                                 : 1.0;
  }
  /// Eq. 4's predicted overlap speedup for comparison with the above.
  double predicted_speedup() const {
    return modeled_overlapped_s > 0.0
               ? modeled_sequential_s / modeled_overlapped_s
               : 1.0;
  }
  /// Fraction of the hideable (non-bottleneck) stage time actually
  /// hidden by overlap: 0 = serial, 1 = wall equals the bottleneck stage.
  double overlap_efficiency() const;
};

struct TrainReport {
  /// Mean simulated epoch time (seconds, original-dataset scale) — the T
  /// the paper's Table 1 reports.
  double epoch_time_s = 0.0;
  std::vector<double> epoch_times_s;

  /// Peak device memory Γ in GB (original-dataset scale) and its Eq. 9
  /// decomposition.
  double peak_memory_gb = 0.0;
  double mem_model_gb = 0.0;
  double mem_cache_gb = 0.0;
  double mem_runtime_gb = 0.0;

  /// Real (not simulated) accuracies.
  double final_train_accuracy = 0.0;
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  std::vector<double> epoch_train_accuracy;
  std::vector<double> epoch_val_accuracy;
  std::vector<double> epoch_loss;

  /// Diagnostics.
  /// Compute backend that executed this run (RunOptions::backend_id as
  /// resolved) — the estimator keys capability features on it.
  std::string backend_id;
  /// Peak bytes outstanding in the backend's device allocator when the
  /// run finished (cache slab included). The allocator is shared by all
  /// runs on the same backend, so this is a process-level diagnostic.
  std::size_t device_peak_bytes = 0;
  PhaseBreakdown epoch_phases;  // per-epoch average
  PipelineReport pipeline;      // executor profile (run totals)
  double cache_hit_rate = 0.0;
  double avg_batch_nodes = 0.0;
  double avg_batch_edges = 0.0;
  std::vector<double> per_batch_nodes;  // every mini-batch |V_i| (Fig. 5 data)
  std::size_t model_parameters = 0;
  std::size_t iterations_per_epoch = 0;
  double wall_clock_s = 0.0;  // actual CPU time spent by the simulator
};

struct RunOptions {
  int epochs = 4;
  std::uint64_t seed = 1;
  /// When false, skips per-epoch full-graph validation passes (cheaper
  /// profiling runs for the estimator's training data).
  bool evaluate_every_epoch = true;
  /// Collect per-batch |V_i| samples (Fig. 5 ground truth).
  bool record_batch_sizes = false;
  /// Pool for concurrent mini-batch construction (nullptr → global pool).
  /// Results are bit-identical at any pool size: every batch draws from
  /// its own task_seed-derived RNG.
  support::ThreadPool* pool = nullptr;
  /// Compute backend executing every forward/backward in this run (see
  /// compute/backend.hpp; all built-in CPU backends are bit-identical, so
  /// for them this is purely a throughput knob). Defaults to the caller's
  /// current selection, so an ambient compute::BackendScope composes with
  /// it instead of being overridden. The run pins this id on its own
  /// thread AND inside every async stage closure — no global state is
  /// consulted mid-run.
  std::string backend_id = compute::current_backend_id();
  /// Epoch executor selection (sync | async) plus prefetch depth and
  /// sampler worker count, defaulted from GNAV_PIPELINE /
  /// GNAV_PIPELINE_DEPTH / GNAV_PIPELINE_WORKERS. The async executor
  /// produces a bit-identical TrainReport (batch stream, cache hit/miss
  /// sequence, losses, accuracies, memory, modeled times) at any depth
  /// and worker count — only wall-clock observables change.
  PipelineConfig pipeline = default_pipeline_config();
};

class RuntimeBackend {
 public:
  /// The dataset must outlive the backend.
  RuntimeBackend(const graph::Dataset& dataset, hw::HardwareProfile profile);

  /// Executes training under `config` and returns the measured report.
  TrainReport run(const TrainConfig& config, const RunOptions& options) const;

  const graph::Dataset& dataset() const { return *dataset_; }
  const hw::HardwareProfile& profile() const { return cost_.profile(); }

  /// Eq. 9/10 static components for a given config (used by the estimator
  /// without running training).
  double model_memory_gb(const TrainConfig& config) const;
  double cache_memory_gb(const TrainConfig& config) const;

 private:
  const graph::Dataset* dataset_;
  hw::CostModel cost_;
};

}  // namespace gnav::runtime
