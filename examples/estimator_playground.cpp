// Estimator playground: trains the gray-box performance estimator on a
// small profiled corpus, then compares its predictions against actual
// training runs on configurations it has never seen — including the
// Eq. 12 mini-batch size model against the measured batch sizes.
//
//   ./build/examples/estimator_playground
#include <cstdio>

#include "estimator/perf_estimator.hpp"
#include "navigator/navigator.hpp"
#include "support/table.hpp"
#include "support/string_utils.hpp"

using namespace gnav;

int main() {
  hw::HardwareProfile gpu = hw::make_profile("rtx4090");

  // Train the estimator with ogbn-arxiv held out (leave-one-dataset-out).
  estimator::CollectorOptions opts;
  opts.configs_per_dataset = 12;
  opts.epochs = 1;
  const auto corpus = estimator::collect_lodo_corpus(
      graph::dataset_names(), /*held_out=*/"ogbn-arxiv",
      /*augmentation_graphs=*/1, gpu, opts);
  estimator::PerfEstimator est(gpu);
  est.fit(corpus);
  std::printf("estimator trained on %zu profiled runs\n", corpus.size());

  // Evaluate on the held-out dataset.
  const graph::Dataset ds = graph::load_dataset("ogbn-arxiv");
  const estimator::DatasetStats stats = estimator::compute_dataset_stats(ds);
  runtime::RuntimeBackend backend(ds, gpu);

  Table table({"config", "T pred", "T meas", "Mem pred", "Mem meas",
               "|Vi| pred", "|Vi| meas", "Acc pred", "Acc meas"});
  Rng rng(2024);
  runtime::RunOptions ro;
  ro.epochs = 2;
  ro.evaluate_every_epoch = false;
  for (int i = 0; i < 6; ++i) {
    const runtime::TrainConfig cfg = estimator::random_config(rng);
    const estimator::PerfPrediction pred = est.predict(cfg, stats);
    const runtime::TrainReport meas = backend.run(cfg, ro);
    table.add_row({cfg.summary(), format_double(pred.time_s, 2),
                   format_double(meas.epoch_time_s, 2),
                   format_double(pred.memory_gb, 2),
                   format_double(meas.peak_memory_gb, 2),
                   format_double(pred.batch_nodes, 0),
                   format_double(meas.avg_batch_nodes, 0),
                   format_double(pred.accuracy, 3),
                   format_double(meas.test_accuracy, 3)});
  }
  std::printf("\npredictions vs measurements on held-out ogbn-arxiv:\n\n%s\n",
              table.to_ascii().c_str());
  return 0;
}
