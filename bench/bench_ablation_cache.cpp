// Ablation — cache update policies at a fixed cache ratio (the
// transmission-category knob of Fig. 3): static degree-ordered (PaGraph),
// LRU, FIFO, weighted-degree, and no cache, on Reddit2+SAGE. Shows the
// hit-rate / replace-cost trade-off that makes "static for skewed
// read-only features" the usual winner — and why the design space keeps
// the dynamic policies anyway (they adapt when the working set drifts,
// e.g. under biased sampling).
#include <cstdio>

#include "navigator/navigator.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  navigator::GNNavigator nav(graph::load_dataset("reddit2"),
                             hw::make_profile("rtx4090"),
                             dse::BaseSettings{});
  const int epochs = 3;
  const double ratio = 0.25;

  Table table({"policy", "bias", "hit rate (%)", "epoch time (s)",
               "replace time (s/epoch)", "memory (GB)"});
  struct Arm {
    cache::CachePolicy policy;
    double bias;
  };
  const Arm arms[] = {
      {cache::CachePolicy::kNone, 0.0},
      {cache::CachePolicy::kStatic, 0.0},
      {cache::CachePolicy::kLru, 0.0},
      {cache::CachePolicy::kFifo, 0.0},
      {cache::CachePolicy::kWeightedDegree, 0.0},
      {cache::CachePolicy::kStatic, 0.7},
      {cache::CachePolicy::kLru, 0.7},
  };
  for (const Arm& arm : arms) {
    runtime::TrainConfig c = runtime::template_pyg();
    c.name = "ablation";
    c.cache_policy = arm.policy;
    c.cache_ratio =
        (arm.policy == cache::CachePolicy::kNone) ? 0.0 : ratio;
    c.bias_rate = arm.bias;
    const auto r = nav.train(c, epochs);
    table.add_row({cache::to_string(arm.policy),
                   format_double(arm.bias, 1),
                   format_double(100.0 * r.cache_hit_rate, 1),
                   format_double(r.epoch_time_s, 2),
                   format_double(r.epoch_phases.replace_s, 3),
                   format_double(r.peak_memory_gb, 2)});
  }
  std::printf("cache policy ablation (Reddit2+SAGE, cache ratio %.2f):\n\n"
              "%s\n", ratio, table.to_ascii().c_str());
  table.write_csv("ablation_cache.csv");
  return 0;
}
