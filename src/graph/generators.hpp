// Synthetic graph generators.
//
// The paper evaluates on ogbn-arxiv / ogbn-products / Reddit / Reddit2 and
// additionally augments its estimator's training data with "randomly
// generated power-law graphs" (Sec. 4.1). Those datasets are not
// redistributable here, so the dataset registry (dataset.hpp) instantiates
// scaled-down analogues from these generators, matching each dataset's
// degree skew and density. All generators are deterministic given the Rng.
#pragma once

#include <cstddef>

#include "graph/csr_graph.hpp"
#include "support/rng.hpp"

namespace gnav::graph {

/// G(n, p) Erdős–Rényi graph (undirected, simple). Uses geometric skipping,
/// so sparse graphs cost O(E) rather than O(n^2).
CsrGraph erdos_renyi(NodeId n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices with probability proportional to degree.
/// Produces a power-law degree tail with exponent ~3.
CsrGraph barabasi_albert(NodeId n, NodeId m, Rng& rng);

/// Power-law configuration model: degrees drawn from a discrete power law
/// with the given exponent (>1) truncated to [min_degree, max_degree], then
/// stubs matched uniformly. Pairs that would form a self-loop or duplicate
/// an existing edge put both stubs back into a rejection pool, which is
/// reshuffled and matched once more before the remainder is dropped — so
/// the realized degree tracks the drawn degree closely even on small n
/// (test_generators pins the ratio). `drawn_degree_total`, when non-null,
/// receives the sum of drawn degrees for exactly that check.
CsrGraph power_law_configuration(NodeId n, double exponent,
                                 std::size_t min_degree,
                                 std::size_t max_degree, Rng& rng,
                                 std::size_t* drawn_degree_total = nullptr);

/// R-MAT / Kronecker-style generator (a,b,c,d quadrant probabilities).
/// `scale` gives n = 2^scale vertices and edge_factor*n directed edges
/// before symmetrization. Classic parameters (0.57,0.19,0.19,0.05)
/// reproduce the heavy skew of web/social graphs.
CsrGraph rmat(int scale, double edge_factor, double a, double b, double c,
              Rng& rng);

/// Planted-partition (stochastic block model) graph: `num_blocks` equal
/// communities, intra-community edge probability p_in, inter p_out.
/// Community assignment of vertex v is v % num_blocks. Returned alongside
/// the block id vector via the out-parameter.
CsrGraph planted_partition(NodeId n, int num_blocks, double p_in,
                           double p_out, Rng& rng,
                           std::vector<int>* block_of = nullptr);

/// Overlays a planted-partition edge set on top of a power-law skeleton:
/// the result keeps a heavy-tailed degree distribution (what caching and
/// biased sampling respond to) while carrying community structure (what
/// GNN accuracy responds to). This is the generator behind the dataset
/// analogues.
CsrGraph power_law_community_graph(NodeId n, int num_blocks,
                                   double power_law_exponent,
                                   std::size_t min_degree,
                                   std::size_t max_degree,
                                   double community_rewire_prob, Rng& rng,
                                   std::vector<int>* block_of = nullptr);

}  // namespace gnav::graph
