"""libclang loading, TU parsing, and the check-run loop.

Everything that touches clang.cindex funnels through here. Import of
clang.cindex is lazy and guarded: `libclang_status()` reports whether
the bindings AND a loadable libclang shared object are present, and the
CLI turns "absent" into exit 77 (the ctest SKIP_RETURN_CODE) instead of
a failure — the regex lint (tools/determinism_lint.py
--include-superseded) is the fallback on such hosts.
"""

from __future__ import annotations

import glob
import os
from pathlib import Path

_CINDEX = None  # populated by libclang_status() on success


def libclang_status() -> tuple[bool, str]:
    """(available, detail). Caches the loaded cindex module on success."""
    global _CINDEX
    if os.environ.get("GNAV_ANALYZER_FORCE_NO_LIBCLANG"):
        return False, "forced off via GNAV_ANALYZER_FORCE_NO_LIBCLANG"
    if _CINDEX is not None:
        return True, "ok"
    try:
        from clang import cindex
    except ImportError as e:
        return False, f"clang.cindex not importable ({e})"
    try:
        cindex.Index.create()
        _CINDEX = cindex
        return True, "ok"
    except Exception as first_error:  # LibclangError: .so not found
        candidates: list[str] = []
        for pattern in (
            "/usr/lib/llvm-*/lib/libclang.so*",
            "/usr/lib/llvm-*/lib/libclang-*.so*",
            "/usr/lib/*/libclang.so*",
            "/usr/lib/*/libclang-*.so*",
            "/usr/local/lib/libclang*.so*",
        ):
            candidates.extend(glob.glob(pattern))
        for candidate in sorted(set(candidates)):
            try:
                cindex.Config.set_library_file(candidate)
                cindex.Index.create()
                _CINDEX = cindex
                return True, f"ok (libclang at {candidate})"
            except Exception:
                continue
        return False, f"libclang shared library not loadable ({first_error})"


def cindex():
    ok, detail = libclang_status()
    if not ok:
        raise RuntimeError(f"libclang unavailable: {detail}")
    return _CINDEX


class TuContext:
    """Per-TU state shared by the checks: scope filter + cursor utils.

    `roots` limits findings (and most walking) to files under the given
    directories — the full-repo run passes <repo>/src so system headers
    and tests are never walked; the self-test passes the corpus dir.
    """

    def __init__(self, tu, roots: list[Path]):
        self.tu = tu
        self.roots = [str(r.resolve()) for r in roots]
        self._file_ok: dict[str, bool] = {}

    def in_scope(self, cursor) -> bool:
        f = cursor.location.file
        if f is None:
            return False
        name = f.name
        cached = self._file_ok.get(name)
        if cached is None:
            resolved = str(Path(name).resolve())
            cached = any(
                resolved == r or resolved.startswith(r + os.sep)
                for r in self.roots
            )
            self._file_ok[name] = cached
        return cached


def parse_tu(cmd):
    """Parse one compile command; returns (tu, fatal_diagnostics)."""
    cx = cindex()
    index = cx.Index.create()
    tu = index.parse(str(cmd.file), args=cmd.args)
    fatal = [
        d
        for d in tu.diagnostics
        if d.severity >= cx.Diagnostic.Error
    ]
    return tu, fatal


def run_checks(tu, roots: list[Path], check_names: list[str]):
    """Run the named checks over one TU; yields Finding objects with
    absolute file paths (the CLI relativizes and applies suppressions).
    """
    from gnav_analyzer import CHECK_DESCRIPTIONS
    from gnav_analyzer import checks as checks_mod

    registry = checks_mod.registry()
    unknown = set(check_names) - set(registry)
    if unknown:
        raise ValueError(f"unknown checks: {', '.join(sorted(unknown))}")
    missing = set(CHECK_DESCRIPTIONS) - set(registry)
    if missing:
        raise AssertionError(
            "checks.py lacks implementations for documented checks: "
            + ", ".join(sorted(missing))
        )
    ctx = TuContext(tu, roots)
    for name in check_names:
        yield from registry[name](ctx)
