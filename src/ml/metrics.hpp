// Regression quality metrics — the paper evaluates its estimator with the
// R2 score (for T and Γ, which have analytic structure) and MSE (for the
// black-box accuracy model), Table 2.
#pragma once

#include <vector>

namespace gnav::ml {

/// R2 = 1 - SS_res / SS_tot; returns 0 when the targets are constant.
double r2_score(const std::vector<double>& y_true,
                const std::vector<double>& y_pred);

double mse(const std::vector<double>& y_true,
           const std::vector<double>& y_pred);

double mae(const std::vector<double>& y_true,
           const std::vector<double>& y_pred);

/// Mean absolute percentage error (guarding tiny denominators).
double mape(const std::vector<double>& y_true,
            const std::vector<double>& y_pred);

}  // namespace gnav::ml
