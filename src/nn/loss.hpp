// Softmax cross-entropy restricted to a subset of rows (mini-batch loss is
// computed on seed/target vertices only; the rest of the sampled subgraph
// exists to provide neighborhood context).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace gnav::nn {

struct LossResult {
  double loss = 0.0;            // mean NLL over the selected rows
  tensor::Tensor grad_logits;   // same shape as logits; zero on other rows
  std::size_t correct = 0;      // argmax == label count on selected rows
  std::size_t total = 0;
};

/// `rows[i]` selects a logits row; `labels[i]` is its class.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& rows,
                                 const std::vector<int>& labels);

/// Plain accuracy of argmax(logits[rows]) against labels.
double accuracy(const tensor::Tensor& logits,
                const std::vector<std::int64_t>& rows,
                const std::vector<int>& labels);

}  // namespace gnav::nn
