// Cluster-GCN-style partition sampler: the graph is partitioned once
// (greedy BFS parts, see graph/partition); a mini-batch is the induced
// subgraph over the union of the clusters its seed vertices live in,
// capped to roughly |B_0| / avg_part_size clusters per batch.
//
// Within the paper's unified abstraction this is subgraph-wise sampling
// with p(η) concentrated on the seed's own community — it trades a small
// distribution shift for near-zero neighbor-expansion cost, which is why
// it enters the design space as another sampler choice.
#pragma once

#include <memory>

#include "graph/partition.hpp"
#include "sampling/sampler.hpp"
#include "support/thread_safety.hpp"

namespace gnav::sampling {

class ClusterSampler final : public Sampler {
 public:
  /// `num_parts` clusters are precomputed lazily on first use (per parent
  /// graph); `max_clusters_per_batch` caps the batch size.
  ClusterSampler(int num_parts, int max_clusters_per_batch);

  MiniBatch sample(const graph::CsrGraph& g,
                   std::span<const graph::NodeId> seeds,
                   Rng& rng) const override;
  SamplerKind kind() const override { return SamplerKind::kCluster; }
  std::vector<int> hop_list() const override;

  /// Exposed for tests: the partitioning used for `g` (computes it if
  /// not cached yet). Returned as a shared_ptr so a concurrent reader
  /// keeps its partition alive even if another thread switches the
  /// sampler to a different graph.
  std::shared_ptr<const graph::Partitioning> partitioning(
      const graph::CsrGraph& g) const GNAV_EXCLUDES(cache_mutex_);

 private:
  int num_parts_;
  int max_clusters_per_batch_;
  // Lazy per-graph cache; the sampler outlives many sample() calls on the
  // same parent graph, and rebuilding the partition per batch would
  // dominate runtime. Mutex-guarded so concurrent batch construction
  // (support/parallel) can share one sampler instance.
  mutable support::Mutex cache_mutex_;
  mutable const graph::CsrGraph* cached_graph_
      GNAV_GUARDED_BY(cache_mutex_) = nullptr;
  mutable std::shared_ptr<const graph::Partitioning> cached_partition_
      GNAV_GUARDED_BY(cache_mutex_);
};

}  // namespace gnav::sampling
