// The design space: the cross-product of the reconfigurable settings of
// Fig. 3, pre-filtered to *valid* combinations (a cache policy of none
// forces cache_ratio = 0 and bias_rate = 0, SAINT samplers use walk
// lengths instead of fanouts, ...).
//
// A `BaseSettings` pins the application-determined parameters (model
// kind, layer count, learning rate) that are inputs, not explorable knobs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/train_config.hpp"

namespace gnav::dse {

/// Application-fixed parameters (from the user's model specification).
struct BaseSettings {
  nn::ModelKind model = nn::ModelKind::kSage;
  std::size_t num_layers = 2;
  float dropout = 0.3f;
  float learning_rate = 0.01f;
};

/// One explorable axis: a name plus its discrete levels, expressed as
/// mutations of a TrainConfig.
struct Axis {
  std::string name;
  /// Number of levels on this axis.
  std::size_t cardinality = 0;
};

class DesignSpace {
 public:
  /// Full space used by the guided explorer (hundreds to thousands of
  /// valid candidates).
  static DesignSpace full(const BaseSettings& base);

  /// Reduced space for exhaustive ground-truth sweeps (Fig. 6): small
  /// enough that every candidate can actually be trained.
  static DesignSpace reduced(const BaseSettings& base);

  const std::vector<Axis>& axes() const { return axes_; }

  /// Total assignments before validity filtering.
  std::size_t raw_size() const;

  /// All *valid* configurations (deduplicated).
  std::vector<runtime::TrainConfig> enumerate() const;

  /// Builds the (possibly invalid) config for a full axis assignment;
  /// returns false when the combination is inconsistent.
  bool materialize(const std::vector<std::size_t>& levels,
                   runtime::TrainConfig* out) const;

  const BaseSettings& base() const { return base_; }

 private:
  DesignSpace(BaseSettings base, bool reduced);

  BaseSettings base_;
  std::vector<Axis> axes_;
  // Axis level tables.
  std::vector<std::size_t> batch_sizes_;
  std::vector<sampling::SamplerKind> samplers_;
  std::vector<int> fanouts_;        // node/layer-wise per-hop fanout
  std::vector<int> walk_lengths_;   // SAINT
  std::vector<double> cache_ratios_;
  std::vector<cache::CachePolicy> policies_;
  std::vector<double> bias_rates_;
  std::vector<std::size_t> hidden_dims_;
  std::vector<int> reorder_;
  std::vector<int> compress_;
};

}  // namespace gnav::dse
