// Constructs a sampler from the reconfigurable settings of the runtime
// backend (sampler kind + hop list + bias). This is the Fig. 3 "Sampler
// Choices" switch.
#pragma once

#include <memory>
#include <vector>

#include "sampling/sampler.hpp"

namespace gnav::sampling {

struct SamplerSettings {
  SamplerKind kind = SamplerKind::kNodeWise;
  /// Fanout per hop for node/layer-wise; length = walk length for SAINT.
  std::vector<int> hop_list = {10, 10};
  /// Locality bias rate in [0, 1]; 0 disables biased sampling.
  double bias_rate = 0.0;
  /// SAINT node/edge budget as a multiple of the seed count.
  double saint_budget_multiplier = 8.0;
  /// Cluster sampler: number of precomputed graph parts and the cap on
  /// clusters merged into one batch.
  int cluster_num_parts = 40;
  int cluster_max_per_batch = 8;
};

/// `preference` (may be null) marks preferred vertices for biased
/// sampling; the pointer must outlive the sampler (the runtime backend
/// hands in its device-cache residency bitmap). `preference_version`
/// (may be null) is a change counter for that bitmap — samplers key
/// cached weighted-draw structures on it; when null the bitmap is
/// treated as immutable for the sampler's lifetime.
std::unique_ptr<Sampler> make_sampler(
    const SamplerSettings& settings, const std::vector<char>* preference,
    const std::uint64_t* preference_version = nullptr);

}  // namespace gnav::sampling
