// Hardware sweep — Sec. 4.1 tests the backend "on different devices such
// as RTX 4090, A100, and M90" and adds manual constraints for edge
// scenarios. This bench runs the same two configurations across every
// hardware profile and shows how the T/Γ trade-off (and therefore the
// guideline GNNavigator would pick) shifts with the platform.
#include <cstdio>

#include "navigator/navigator.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  const int epochs = 2;
  Table table({"hardware", "config", "epoch time (s)", "sample (s)",
               "transfer (s)", "compute (s)", "memory (GB)"});
  for (const std::string& hw_name : hw::profile_names()) {
    const auto profile = hw::make_profile(hw_name);
    navigator::GNNavigator nav(graph::load_dataset("reddit2"), profile,
                               dse::BaseSettings{});
    for (const char* tmpl : {"pyg", "pagraph-full"}) {
      const auto r = nav.reproduce(tmpl, epochs);
      table.add_row({hw_name, tmpl, format_double(r.epoch_time_s, 2),
                     format_double(r.epoch_phases.sample_s, 2),
                     format_double(r.epoch_phases.transfer_s, 2),
                     format_double(r.epoch_phases.compute_s, 2),
                     format_double(r.peak_memory_gb, 2)});
    }
  }
  std::printf("hardware profile sweep (Reddit2 + SAGE):\n\n%s\n",
              table.to_ascii().c_str());
  std::printf("(faster links shrink the transfer phase and with it the\n"
              " benefit of caching; the constrained profile is transfer-\n"
              " bound, which is where PaGraph-style caching matters most)\n");
  table.write_csv("hw_profiles.csv");
  return 0;
}
