// gnav::serve — the multi-tenant navigator service layer.
//
// One process no longer means one training run: a JobScheduler accepts
// many queued navigate+train jobs (the millions-of-users stand-in) and
// runs them over ONE shared thread pool with a bounded number of
// concurrently active jobs. Three ideas make it a *navigator* service
// rather than a plain work queue:
//
//   Admission pricing — every job is priced BEFORE it is admitted with
//   `PerfEstimator::predict_pipelined_wall_s`: the estimator's simulated
//   serial stage seconds for the job's config, multiplied by the
//   predicted wall/serial ratio of the async epoch executor (the fitted
//   overlap correction when the corpus carried measured async rows,
//   Eq. 4's analytic max() otherwise). Jobs whose price exceeds the
//   configured ceiling are rejected at submit time, never queued.
//
//   Fair-share scheduling — each tenant accumulates virtual time
//   (admission price / tenant priority) as its jobs start; the next job
//   to run is always one from the tenant with the least virtual time
//   (ties break toward the lowest job id). The pick sequence is a pure
//   function of the submitted queue — picks are serialized under the
//   scheduler mutex and charged at pick time — so the start order is
//   deterministic no matter which worker becomes free first.
//
//   Online corpus feedback — every completed job's TrainReport becomes a
//   ProfiledRun appended to the feedback corpus (assembled in job-id
//   order, never completion order). With `refit_after_drain` the
//   scheduler refits the caller's estimator on base ∪ feedback at the
//   end of each drain — a deterministic point — so admission pricing
//   improves online without ever racing in-flight price queries.
//
// Isolation contract: a job NEVER reads or mutates process-global
// defaults. Each job carries its own RunOptions — explicit compute
// backend id (resolved per stage thread via compute::BackendScope inside
// the runtime backend; there is no process-global kernel slot left to
// bypass it), explicit pipeline config, explicit pool — and a
// deterministic per-job seed (`task_seed(scheduler seed, job id)` unless
// the request pins one), so every job's TrainReport is bit-identical to
// running that job alone even while another tenant flips
// BackendFactory::set_default_id mid-drain (pinned by test_serve.cpp at
// pool sizes 1/2/8).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compute/backend.hpp"
#include "support/thread_safety.hpp"
#include "dse/decision_maker.hpp"
#include "dse/design_space.hpp"
#include "dse/objectives.hpp"
#include "estimator/perf_estimator.hpp"
#include "estimator/profile_collector.hpp"
#include "runtime/backend.hpp"

namespace gnav::serve {

enum class JobKind {
  /// Train the request's config as-is.
  kTrain,
  /// Run DSE first (explorer + decision maker over the scheduler's
  /// design space, seeded with the request's config as a template), then
  /// train the decided guideline. Requires a scheduler built with a
  /// DesignSpace.
  kNavigateTrain,
};

struct JobRequest {
  /// Fair-share accounting bucket; jobs of one tenant share virtual time.
  std::string tenant = "default";
  /// Fair-share weight (> 0); a priority-2 tenant is charged half as much
  /// virtual time per admitted second and so starts ~2x as many jobs.
  double priority = 1.0;
  JobKind kind = JobKind::kTrain;
  /// What to train (kTrain) or the template seeding navigation
  /// (kNavigateTrain) — also what admission pricing evaluates.
  runtime::TrainConfig config;
  int epochs = 2;
  /// 0 derives task_seed(scheduler seed, job id) — deterministic and
  /// decorrelated across jobs; nonzero pins the run seed exactly.
  std::uint64_t seed = 0;
  /// Per-job compute backend. Explicit — never the process default — so
  /// concurrent jobs with different backends cannot interfere. Validated
  /// against BackendFactory::is_registered at submit time.
  std::string backend_id = compute::kBlockedBackendId;
  /// Per-job epoch executor selection (sync | async, depth, workers).
  runtime::PipelineConfig pipeline;
  bool evaluate_every_epoch = false;
  /// kNavigateTrain only: priorities and constraints of the DSE step.
  dse::ExploreTargets targets = dse::targets_balance();
  dse::RuntimeConstraints constraints;
};

/// What admission pricing computed for a job (see test_serve.cpp: this is
/// pinned to equal PerfEstimator::predict_pipelined_wall_s exactly).
struct AdmissionPrice {
  /// Predicted wall seconds of the whole run (simulated dataset-scale
  /// seconds, the estimator's T domain): serial_stage_s x overlap ratio
  /// for async jobs, serial_stage_s itself for sync jobs.
  double predicted_wall_s = 0.0;
  /// Serial stage seconds over all epochs implied by the estimator's T
  /// (the analytic Eq. 4 overlap divided back out of time_s).
  double serial_stage_s = 0.0;
  /// Predicted wall/serial ratio used (1.0 for sync-executor jobs).
  double overlap_ratio = 1.0;
  /// True when the fitted overlap model (not the Eq. 4 fallback) set the
  /// ratio.
  bool overlap_fitted = false;
};

enum class JobState { kQueued, kRejected, kRunning, kDone, kFailed };
std::string to_string(JobState state);

struct JobOutcome {
  std::size_t id = 0;
  JobRequest request;
  AdmissionPrice price;
  JobState state = JobState::kQueued;
  /// Seed the job actually ran with (request.seed or the derived one).
  std::uint64_t seed = 0;
  /// Position in the deterministic fair-share start sequence.
  std::size_t start_order = 0;
  /// Config that actually trained: request.config for kTrain, the DSE
  /// winner for kNavigateTrain.
  runtime::TrainConfig decided_config;
  /// Wall-clock observables of this job's ride through the scheduler —
  /// measured, NOT part of the bit-identity contract (same class as
  /// DrainStats::wall_s). queue_wait_s: submit → fair-share pick;
  /// run_s: pick → completion (either state).
  double queue_wait_s = 0.0;
  double run_s = 0.0;
  runtime::TrainReport report;  // valid when state == kDone
  std::string error;            // set when state == kFailed

  /// Internal bookkeeping for queue_wait_s (set by submit()).
  std::chrono::steady_clock::time_point submitted_at{};
};

struct SchedulerOptions {
  /// Bound on concurrently running jobs (effective concurrency is
  /// additionally capped by the pool's worker count).
  std::size_t max_active = 2;
  /// Shared pool jobs run on (nullptr → support::global_pool()). Every
  /// job's RunOptions::pool is set to this pool explicitly.
  support::ThreadPool* pool = nullptr;
  /// Base of the deterministic per-job seeds.
  std::uint64_t seed = 1;
  /// Admission ceiling on predicted_wall_s; 0 disables rejection.
  double max_price_s = 0.0;
  /// Executor shape pricing assumes when a request leaves
  /// sampler_workers at 0 (auto).
  estimator::OverlapExecutorShape default_shape{4, 4};
  /// Refit the caller's estimator on base_corpus ∪ feedback at the end
  /// of every drain (requires base_corpus; feedback rows alone are
  /// usually too few for PerfEstimator::fit).
  bool refit_after_drain = false;
  const std::vector<estimator::ProfiledRun>* base_corpus = nullptr;
};

/// Totals of one drain() call.
struct DrainStats {
  std::size_t started = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double wall_s = 0.0;
  double jobs_per_min() const {
    return wall_s > 0.0 ? static_cast<double>(completed) * 60.0 / wall_s
                        : 0.0;
  }
};

class JobScheduler {
 public:
  /// `backend`, `est`, and (when given) `space` must outlive the
  /// scheduler; `est` is mutated only by the refit-after-drain path.
  /// `space == nullptr` disables kNavigateTrain jobs.
  JobScheduler(const runtime::RuntimeBackend& backend,
               estimator::PerfEstimator& est, estimator::DatasetStats stats,
               SchedulerOptions options,
               const dse::DesignSpace* space = nullptr);

  /// Pure admission pricing of a request (what submit() consults).
  /// Thread-safe against concurrent submits and against drain's refit.
  AdmissionPrice price(const JobRequest& request) const
      GNAV_EXCLUDES(mutex_);

  /// Prices and enqueues (or rejects) the job; returns its id.
  /// Thread-safe.
  std::size_t submit(JobRequest request) GNAV_EXCLUDES(mutex_);

  /// Runs every queued job under fair-share order with at most
  /// max_active concurrently active jobs on the shared pool; blocks
  /// until the queue drains, then assembles the feedback corpus (job-id
  /// order) and, when configured, refits the estimator.
  DrainStats drain() GNAV_EXCLUDES(mutex_);

  std::size_t size() const GNAV_EXCLUDES(mutex_);
  /// Snapshot of one job's outcome, BY VALUE. Stable once drain()
  /// returned (do not call mid-drain for running jobs). This used to
  /// return `const JobOutcome&` into the mutex-guarded `jobs_` storage —
  /// the same guarded-ref-escape class as the old feedback() accessor
  /// below: a live alias a later submit/drain could invalidate or
  /// rewrite under the caller.
  JobOutcome outcome(std::size_t id) const GNAV_EXCLUDES(mutex_);

  /// Completed jobs as estimator corpus rows, job-id order. Rebuilt at
  /// the end of every drain. BY VALUE: this used to hand out
  /// `const std::vector&` into mutex-guarded state — a live alias the
  /// next drain silently rewrote under the caller (the same hazard class
  /// as the DeviceCache accessor aliasing fixed in an earlier PR, and
  /// exactly what the thread-safety annotations flag: a guarded field
  /// escaping its capability).
  std::vector<estimator::ProfiledRun> feedback() const
      GNAV_EXCLUDES(mutex_);

 private:
  struct Tenant {
    double virtual_s = 0.0;
    double priority = 1.0;
  };

  AdmissionPrice price_locked(const JobRequest& request) const
      GNAV_REQUIRES(mutex_);
  /// Fair-share pick: dequeues the job of the least-virtual-time tenant,
  /// charges the tenant, marks it running. Returns nullptr when empty.
  JobOutcome* pick_next_locked() GNAV_REQUIRES(mutex_);
  void worker_loop() GNAV_EXCLUDES(mutex_);
  /// Runs WITHOUT the scheduler mutex: between pick (state -> kRunning)
  /// and completion, the picked JobOutcome is exclusively owned by the
  /// lane running it — nothing else may touch a kRunning outcome (which
  /// is why outcome() documents "not mid-drain" for running jobs).
  void run_job(JobOutcome& job) GNAV_EXCLUDES(mutex_);

  const runtime::RuntimeBackend* backend_;
  estimator::PerfEstimator* estimator_;
  estimator::DatasetStats stats_;
  SchedulerOptions options_;
  const dse::DesignSpace* space_;

  /// Guards the scheduler bookkeeping AND serializes estimator access
  /// (price queries vs the drain-end refit).
  mutable support::Mutex mutex_;
  /// unique_ptr elements so a lane's JobOutcome* survives concurrent
  /// submit() reallocation of the vector itself.
  std::vector<std::unique_ptr<JobOutcome>> jobs_ GNAV_GUARDED_BY(mutex_);
  std::vector<std::size_t> queue_ GNAV_GUARDED_BY(mutex_);  // queued ids
  std::map<std::string, Tenant> tenants_ GNAV_GUARDED_BY(mutex_);
  std::size_t starts_ GNAV_GUARDED_BY(mutex_) = 0;
  std::vector<estimator::ProfiledRun> feedback_ GNAV_GUARDED_BY(mutex_);
};

}  // namespace gnav::serve
