// Featurization of (candidate configuration, dataset statistics, hardware
// profile) for the black-box components of the gray-box estimator. The
// vector deliberately includes the *analytic* quantities (Eq. 12 batch
// size, cache coverage prior, FLOP estimate) alongside raw knobs — that
// injection of white-box structure is what makes the learned residuals
// easy to fit from few profiled runs.
#pragma once

#include <string>
#include <vector>

#include "estimator/dataset_stats.hpp"
#include "hw/cost_model.hpp"
#include "hw/platform.hpp"
#include "runtime/train_config.hpp"

namespace gnav::estimator {

/// Ordered feature names (for documentation and debugging).
const std::vector<std::string>& feature_names();

/// Featurizes (config, dataset, hardware) plus the compute backend the
/// run executes on. Backend features come from the DECLARED capabilities
/// of `backend_id` (compute::BackendFactory::declared_capabilities) —
/// static per id and identical on every host, never the host-resolved
/// SIMD tier, so fitted models transfer across machines. Unknown ids
/// featurize as neutral defaults (corpus rows may carry ids this build
/// does not register).
std::vector<double> extract_features(const runtime::TrainConfig& config,
                                     const DatasetStats& stats,
                                     const hw::HardwareProfile& hw,
                                     const std::string& backend_id);

/// Back-compat overload: features for the default "cpu-blocked" backend.
std::vector<double> extract_features(const runtime::TrainConfig& config,
                                     const DatasetStats& stats,
                                     const hw::HardwareProfile& hw);

/// Analytic white-box helpers shared by the estimator internals.
double analytic_batch_nodes(const runtime::TrainConfig& config,
                            const DatasetStats& stats);
double analytic_cache_hit_prior(const runtime::TrainConfig& config,
                                const DatasetStats& stats);
double analytic_model_flops(const runtime::TrainConfig& config,
                            const DatasetStats& stats, double batch_nodes,
                            double batch_edges);

/// Eq. 5-8 white-box per-iteration phase volumes at the given batch
/// shape. `work_per_node` < 0 selects the neutral analytic sampling-work
/// multiplier; the full gray-box path passes the learned value. Shared
/// by the estimator's time skeleton and the overlap model's
/// stage-balance features, so both sides see the same phase split.
hw::IterationVolumes analytic_iteration_volumes(
    const runtime::TrainConfig& config, const DatasetStats& stats,
    double batch_nodes, double batch_edges, double hit_rate,
    double work_per_node = -1.0);

}  // namespace gnav::estimator
