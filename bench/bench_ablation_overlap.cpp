// Ablation — Eq. 4's host/device pipeline overlap. The paper's epoch-time
// model takes max(t_sample + t_transfer, t_replace + t_compute) because
// sampling/transfer of batch i+1 overlaps device work on batch i; this
// bench quantifies what that overlap is worth across configurations with
// different host/device balance.
#include <cstdio>

#include "navigator/navigator.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  navigator::GNNavigator nav(graph::load_dataset("reddit2"),
                             hw::make_profile("rtx4090"),
                             dse::BaseSettings{});
  const int epochs = 2;

  Table table({"config", "pipelined T (s)", "sequential T (s)",
               "overlap speedup", "host share (%)"});
  struct Arm {
    const char* name;
    runtime::TrainConfig config;
  };
  std::vector<Arm> arms;
  arms.push_back({"pyg (transfer-heavy)", runtime::template_pyg()});
  arms.push_back({"pagraph-full (balanced)", runtime::template_pagraph_full()});
  {
    runtime::TrainConfig c = runtime::template_pyg();
    c.model = nn::ModelKind::kGat;  // compute-heavy device side
    c.name = "gat";
    arms.push_back({"gat (compute-heavy)", c});
  }
  {
    runtime::TrainConfig c = runtime::template_pagraph_full();
    c.compress_features = true;
    c.name = "compressed";
    arms.push_back({"pagraph + int8 link", c});
  }

  for (auto& arm : arms) {
    runtime::TrainConfig pipelined = arm.config;
    pipelined.pipeline_overlap = true;
    runtime::TrainConfig sequential = arm.config;
    sequential.pipeline_overlap = false;
    const auto rp = nav.train(pipelined, epochs);
    const auto rs = nav.train(sequential, epochs);
    const double host = rp.epoch_phases.sample_s + rp.epoch_phases.transfer_s;
    const double share = host / rp.epoch_phases.total();
    table.add_row({arm.name, format_double(rp.epoch_time_s, 2),
                   format_double(rs.epoch_time_s, 2),
                   format_double(rs.epoch_time_s / rp.epoch_time_s, 2) + "x",
                   format_double(100.0 * share, 1)});
  }
  std::printf("pipeline-overlap ablation (Reddit2 + SAGE unless noted):\n\n"
              "%s\n", table.to_ascii().c_str());
  std::printf("(overlap gains approach 2x when host and device pipelines\n"
              " are balanced, and vanish when one side dominates)\n");
  table.write_csv("ablation_overlap.csv");
  return 0;
}
