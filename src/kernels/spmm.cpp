#include "kernels/spmm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "support/error.hpp"
#include "support/parallel.hpp"

// x86-64 only: the SSE tier relies on SSE2 being baseline, which does
// not hold for 32-bit x86.
#if defined(__x86_64__)
#define GNAV_SPMM_X86 1
#include <immintrin.h>
#endif

namespace gnav::kernels {
namespace {

using graph::EdgeId;
using graph::NodeId;

/// Widest portable feature tile (floats) for the no-SIMD fallback path.
constexpr std::size_t kPortableTile = 16;
/// Edge budget per row partition. Depends only on the graph (never on the
/// thread count), so the partition — and the work each chunk performs —
/// is fixed for a given input.
constexpr std::size_t kChunkWork = 8192;

thread_local bool t_override_active = false;
thread_local SpmmImpl t_override = SpmmImpl::kBlocked;

// ------------------------------------------------------------- scalar ----
// Reference loop: row by row, full feature width per neighbor. The
// accumulation order per (v, j) — self term, neighbors in CSR order, dst
// scale last — is the contract the blocked kernel reproduces bit-exactly.

void spmm_scalar(const graph::CsrGraph& g, const tensor::Tensor& x,
                 tensor::Tensor& y, const SpmmScales& sc) {
  const EdgeId* indptr = g.indptr().data();
  const NodeId* indices = g.indices().data();
  const std::size_t cols = x.cols();
  const float* xd = x.data();
  float* yd = y.data();
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const auto vz = static_cast<std::size_t>(v);
    float* yv = yd + vz * cols;
    if (sc.self_scale != nullptr) {
      const float s = sc.self_scale[vz];
      const float* xv = xd + vz * cols;
      for (std::size_t j = 0; j < cols; ++j) yv[j] = s * xv[j];
    } else {
      for (std::size_t j = 0; j < cols; ++j) yv[j] = 0.0f;
    }
    const EdgeId end = indptr[vz + 1];
    for (EdgeId e = indptr[vz]; e < end; ++e) {
      const auto uz = static_cast<std::size_t>(indices[e]);
      const float* xu = xd + uz * cols;
      if (sc.src_scale != nullptr) {
        const float w = sc.src_scale[uz];
        for (std::size_t j = 0; j < cols; ++j) yv[j] += w * xu[j];
      } else {
        for (std::size_t j = 0; j < cols; ++j) yv[j] += xu[j];
      }
    }
    if (sc.dst_scale != nullptr) {
      const float d = sc.dst_scale[vz];
      for (std::size_t j = 0; j < cols; ++j) yv[j] *= d;
    }
  }
}

// ------------------------------------------------------------ blocked ----
//
// The production kernel. Profiling on the bench graphs showed the naive
// loop is bound by L1 load/store micro-ops (the output row is
// read-modify-written per edge), not by cache misses — the graphs'
// feature matrices sit comfortably in the LLC. The blocked kernel
// therefore accumulates each output row in SIMD registers over
// feature-dim tiles (Y is written exactly once per tile), dispatching at
// runtime to AVX2 (64-float tiles), SSE2 (32-float), or a portable
// fallback. Hub rows whose gathered slice would thrash L1 across
// multi-tile re-scans are binned into a single-pass streaming path.
//
// Bit-exactness with the scalar reference holds because, for every
// output element (v, j), all three ISA paths execute the identical
// operation sequence: self mul, then (mul+)add per neighbor in CSR
// order, then one dst mul. No FMA is ever emitted (the build also pins
// -ffp-contract=off), and IEEE mul/add are deterministic.

/// Portable register-tile pass for the tail/fallback: [j0, j0+width) with
/// width <= kPortableTile.
template <bool HasSrc>
void row_pass_portable(const NodeId* indices, const float* xd, float* yd,
                       std::size_t cols, const SpmmScales& sc,
                       std::size_t vz, EdgeId begin, EdgeId end,
                       std::size_t j0, std::size_t width) {
  float acc[kPortableTile];
  if (sc.self_scale != nullptr) {
    const float s = sc.self_scale[vz];
    const float* xv = xd + vz * cols + j0;
    for (std::size_t t = 0; t < width; ++t) acc[t] = s * xv[t];
  } else {
    for (std::size_t t = 0; t < width; ++t) acc[t] = 0.0f;
  }
  for (EdgeId e = begin; e < end; ++e) {
    const auto uz = static_cast<std::size_t>(indices[e]);
    const float* xu = xd + uz * cols + j0;
    if constexpr (HasSrc) {
      const float w = sc.src_scale[uz];
      for (std::size_t t = 0; t < width; ++t) acc[t] += w * xu[t];
    } else {
      for (std::size_t t = 0; t < width; ++t) acc[t] += xu[t];
    }
  }
  if (sc.dst_scale != nullptr) {
    const float d = sc.dst_scale[vz];
    for (std::size_t t = 0; t < width; ++t) acc[t] *= d;
  }
  float* yv = yd + vz * cols + j0;
  for (std::size_t t = 0; t < width; ++t) yv[t] = acc[t];
}

#if defined(GNAV_SPMM_X86)

/// AVX2 pass over [j0, j0 + 8*NV): NV ymm accumulators held in registers
/// across the whole neighbor loop. mul and add stay separate intrinsics —
/// never fused — to preserve scalar-path bit-exactness.
template <int NV, bool HasSrc>
__attribute__((target("avx2"))) void row_pass_avx2(
    const NodeId* indices, const float* xd, float* yd, std::size_t cols,
    const SpmmScales& sc, std::size_t vz, EdgeId begin, EdgeId end,
    std::size_t j0) {
  __m256 acc[NV];
  if (sc.self_scale != nullptr) {
    const __m256 s = _mm256_set1_ps(sc.self_scale[vz]);
    const float* xv = xd + vz * cols + j0;
#pragma GCC unroll 8
    for (int t = 0; t < NV; ++t) {
      acc[t] = _mm256_mul_ps(s, _mm256_loadu_ps(xv + 8 * t));
    }
  } else {
#pragma GCC unroll 8
    for (int t = 0; t < NV; ++t) acc[t] = _mm256_setzero_ps();
  }
  for (EdgeId e = begin; e < end; ++e) {
    const auto uz = static_cast<std::size_t>(indices[e]);
    const float* xu = xd + uz * cols + j0;
    if constexpr (HasSrc) {
      const __m256 w = _mm256_set1_ps(sc.src_scale[uz]);
#pragma GCC unroll 8
      for (int t = 0; t < NV; ++t) {
        acc[t] = _mm256_add_ps(acc[t],
                               _mm256_mul_ps(w, _mm256_loadu_ps(xu + 8 * t)));
      }
    } else {
#pragma GCC unroll 8
      for (int t = 0; t < NV; ++t) {
        acc[t] = _mm256_add_ps(acc[t], _mm256_loadu_ps(xu + 8 * t));
      }
    }
  }
  if (sc.dst_scale != nullptr) {
    const __m256 d = _mm256_set1_ps(sc.dst_scale[vz]);
#pragma GCC unroll 8
    for (int t = 0; t < NV; ++t) acc[t] = _mm256_mul_ps(acc[t], d);
  }
  float* yv = yd + vz * cols + j0;
#pragma GCC unroll 8
  for (int t = 0; t < NV; ++t) _mm256_storeu_ps(yv + 8 * t, acc[t]);
}

/// SSE2 pass over [j0, j0 + 4*NV) — x86-64 baseline, no dispatch needed.
template <int NV, bool HasSrc>
void row_pass_sse(const NodeId* indices, const float* xd, float* yd,
                  std::size_t cols, const SpmmScales& sc, std::size_t vz,
                  EdgeId begin, EdgeId end, std::size_t j0) {
  __m128 acc[NV];
  if (sc.self_scale != nullptr) {
    const __m128 s = _mm_set1_ps(sc.self_scale[vz]);
    const float* xv = xd + vz * cols + j0;
#pragma GCC unroll 8
    for (int t = 0; t < NV; ++t) {
      acc[t] = _mm_mul_ps(s, _mm_loadu_ps(xv + 4 * t));
    }
  } else {
#pragma GCC unroll 8
    for (int t = 0; t < NV; ++t) acc[t] = _mm_setzero_ps();
  }
  for (EdgeId e = begin; e < end; ++e) {
    const auto uz = static_cast<std::size_t>(indices[e]);
    const float* xu = xd + uz * cols + j0;
    if constexpr (HasSrc) {
      const __m128 w = _mm_set1_ps(sc.src_scale[uz]);
#pragma GCC unroll 8
      for (int t = 0; t < NV; ++t) {
        acc[t] = _mm_add_ps(acc[t], _mm_mul_ps(w, _mm_loadu_ps(xu + 4 * t)));
      }
    } else {
#pragma GCC unroll 8
      for (int t = 0; t < NV; ++t) {
        acc[t] = _mm_add_ps(acc[t], _mm_loadu_ps(xu + 4 * t));
      }
    }
  }
  if (sc.dst_scale != nullptr) {
    const __m128 d = _mm_set1_ps(sc.dst_scale[vz]);
#pragma GCC unroll 8
    for (int t = 0; t < NV; ++t) acc[t] = _mm_mul_ps(acc[t], d);
  }
  float* yv = yd + vz * cols + j0;
#pragma GCC unroll 8
  for (int t = 0; t < NV; ++t) _mm_storeu_ps(yv + 4 * t, acc[t]);
}

bool cpu_has_avx2() {
#if defined(__GNUC__) || defined(__clang__)
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

#endif  // GNAV_SPMM_X86

/// Widest single-pass tile the active ISA path covers; feature dims at or
/// below it never re-scan a neighbor list.
std::atomic<SpmmSimdTier> g_simd_tier{SpmmSimdTier::kAuto};

bool use_avx2_tier() {
#if defined(GNAV_SPMM_X86)
  return g_simd_tier.load(std::memory_order_relaxed) == SpmmSimdTier::kAuto &&
         cpu_has_avx2();
#else
  return false;
#endif
}

bool use_sse_tier() {
#if defined(GNAV_SPMM_X86)
  return g_simd_tier.load(std::memory_order_relaxed) != SpmmSimdTier::kPortable;
#else
  return false;
#endif
}

std::size_t single_pass_cols() {
  if (use_avx2_tier()) return 64;
  if (use_sse_tier()) return 32;
  return kPortableTile;
}

/// Register-tiled row: the feature dim is covered by the widest available
/// register passes, re-scanning the (short) neighbor list per pass.
template <bool HasSrc>
void blocked_row_register_tiled(const EdgeId* indptr, const NodeId* indices,
                                const float* xd, float* yd, std::size_t cols,
                                const SpmmScales& sc, NodeId v) {
  const auto vz = static_cast<std::size_t>(v);
  const EdgeId begin = indptr[vz];
  const EdgeId end = indptr[vz + 1];
  std::size_t j0 = 0;
#if defined(GNAV_SPMM_X86)
  if (use_avx2_tier()) {
    for (; j0 + 64 <= cols; j0 += 64) {
      row_pass_avx2<8, HasSrc>(indices, xd, yd, cols, sc, vz, begin, end, j0);
    }
    for (; j0 + 32 <= cols; j0 += 32) {
      row_pass_avx2<4, HasSrc>(indices, xd, yd, cols, sc, vz, begin, end, j0);
    }
    for (; j0 + 8 <= cols; j0 += 8) {
      row_pass_avx2<1, HasSrc>(indices, xd, yd, cols, sc, vz, begin, end, j0);
    }
  } else if (use_sse_tier()) {
    for (; j0 + 32 <= cols; j0 += 32) {
      row_pass_sse<8, HasSrc>(indices, xd, yd, cols, sc, vz, begin, end, j0);
    }
    for (; j0 + 16 <= cols; j0 += 16) {
      row_pass_sse<4, HasSrc>(indices, xd, yd, cols, sc, vz, begin, end, j0);
    }
    for (; j0 + 4 <= cols; j0 += 4) {
      row_pass_sse<1, HasSrc>(indices, xd, yd, cols, sc, vz, begin, end, j0);
    }
  }
#endif
  for (; j0 < cols; j0 += kPortableTile) {
    const std::size_t width = std::min(kPortableTile, cols - j0);
    row_pass_portable<HasSrc>(indices, xd, yd, cols, sc, vz, begin, end, j0,
                              width);
  }
}

/// Streaming path for hub rows in the multi-tile regime: one pass over
/// the neighbor list accumulating the full feature width into an
/// L1-resident scratch row, so the gathered slice is read exactly once.
template <bool HasSrc>
void blocked_row_streaming(const EdgeId* indptr, const NodeId* indices,
                           const float* xd, float* yd, std::size_t cols,
                           const SpmmScales& sc, NodeId v, float* scratch) {
  const auto vz = static_cast<std::size_t>(v);
  if (sc.self_scale != nullptr) {
    const float s = sc.self_scale[vz];
    const float* xv = xd + vz * cols;
    for (std::size_t j = 0; j < cols; ++j) scratch[j] = s * xv[j];
  } else {
    for (std::size_t j = 0; j < cols; ++j) scratch[j] = 0.0f;
  }
  const EdgeId end = indptr[vz + 1];
  for (EdgeId e = indptr[vz]; e < end; ++e) {
    const auto uz = static_cast<std::size_t>(indices[e]);
    const float* xu = xd + uz * cols;
    if constexpr (HasSrc) {
      const float w = sc.src_scale[uz];
      for (std::size_t j = 0; j < cols; ++j) scratch[j] += w * xu[j];
    } else {
      for (std::size_t j = 0; j < cols; ++j) scratch[j] += xu[j];
    }
  }
  float* yv = yd + vz * cols;
  if (sc.dst_scale != nullptr) {
    const float d = sc.dst_scale[vz];
    for (std::size_t j = 0; j < cols; ++j) yv[j] = d * scratch[j];
  } else {
    for (std::size_t j = 0; j < cols; ++j) yv[j] = scratch[j];
  }
}

SpmmPlan make_partition(const graph::CsrGraph& g) {
  SpmmPlan part;
  const NodeId n = g.num_nodes();
  const EdgeId* indptr = g.indptr().data();
  part.bounds.push_back(0);
  std::vector<std::size_t> work;
  std::size_t acc = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto vz = static_cast<std::size_t>(v);
    acc += static_cast<std::size_t>(indptr[vz + 1] - indptr[vz]) + 1;
    if (acc >= kChunkWork) {
      part.bounds.push_back(v + 1);
      work.push_back(acc);
      acc = 0;
    }
  }
  if (part.bounds.back() != n) {
    part.bounds.push_back(n);
    work.push_back(acc);
  }
  // Heavy chunks first: a power-law hub row lands in (and often fills) its
  // own chunk; scheduling it early lets the light tail pack around it
  // instead of leaving one worker grinding the hub after the rest drained.
  part.order.resize(work.size());
  std::iota(part.order.begin(), part.order.end(), std::size_t{0});
  std::stable_sort(part.order.begin(), part.order.end(),
                   [&work](std::size_t a, std::size_t b) {
                     return work[a] > work[b];
                   });
  return part;
}

/// Degree binning: in the multi-tile regime (cols above the widest
/// single pass), rows whose gathered X slice would overflow this budget
/// on re-scan take the streaming path instead. Sized to a conservative
/// L2 share — re-gathering a slice this small is cheap, and on skewed
/// graphs only the extreme hub rows fall back to streaming.
constexpr std::size_t kRegisterPathBytes = 256 * 1024;

template <bool HasSrc>
void blocked_chunk(const EdgeId* indptr, const NodeId* indices,
                   const float* xd, float* yd, std::size_t cols,
                   const SpmmScales& sc, NodeId r0, NodeId r1,
                   float* scratch) {
  const bool multi_tile = cols > single_pass_cols();
  const auto degree_cutoff = static_cast<EdgeId>(
      std::max<std::size_t>(1, kRegisterPathBytes / (cols * sizeof(float))));
  for (NodeId v = r0; v < r1; ++v) {
    const auto vz = static_cast<std::size_t>(v);
    const EdgeId deg = indptr[vz + 1] - indptr[vz];
    if (multi_tile && deg > degree_cutoff) {
      blocked_row_streaming<HasSrc>(indptr, indices, xd, yd, cols, sc, v,
                                    scratch);
    } else {
      blocked_row_register_tiled<HasSrc>(indptr, indices, xd, yd, cols, sc,
                                         v);
    }
  }
}

void spmm_blocked(const graph::CsrGraph& g, const tensor::Tensor& x,
                  tensor::Tensor& y, const SpmmScales& sc,
                  support::ThreadPool* pool, const SpmmPlan* plan) {
  const NodeId n = g.num_nodes();
  if (n == 0) return;
  const EdgeId* indptr = g.indptr().data();
  const NodeId* indices = g.indices().data();
  const std::size_t cols = x.cols();
  const float* xd = x.data();
  float* yd = y.data();

  // A caller-supplied plan (backend plan cache) is used as-is; the plan
  // is a pure function of the graph, so either way the partition — and
  // therefore every output bit — is identical.
  SpmmPlan local;
  if (plan == nullptr) {
    local = make_partition(g);
    plan = &local;
  }
  const SpmmPlan& part = *plan;
  support::ThreadPool& exec = pool != nullptr ? *pool : support::global_pool();

  exec.parallel_for(0, part.order.size(), [&](std::size_t slot) {
    const std::size_t c = part.order[slot];
    const NodeId r0 = part.bounds[c];
    const NodeId r1 = part.bounds[c + 1];
    // Hub-row scratch accumulator; allocated per chunk, reused per row.
    std::vector<float> scratch(cols);
    if (sc.src_scale != nullptr) {
      blocked_chunk<true>(indptr, indices, xd, yd, cols, sc, r0, r1,
                          scratch.data());
    } else {
      blocked_chunk<false>(indptr, indices, xd, yd, cols, sc, r0, r1,
                           scratch.data());
    }
  });
}

}  // namespace

std::string to_string(SpmmImpl impl) {
  switch (impl) {
    case SpmmImpl::kScalar:
      return "scalar";
    case SpmmImpl::kBlocked:
      return "blocked";
  }
  return "unknown";
}

SpmmImpl spmm_impl_from_string(const std::string& name) {
  if (name == "scalar") return SpmmImpl::kScalar;
  if (name == "blocked") return SpmmImpl::kBlocked;
  throw Error("unknown SpMM impl '" + name + "'; expected scalar|blocked");
}

void set_spmm_simd_tier(SpmmSimdTier tier) {
  g_simd_tier.store(tier, std::memory_order_relaxed);
}

SpmmSimdTier spmm_simd_tier() {
  return g_simd_tier.load(std::memory_order_relaxed);
}

std::string active_spmm_isa() {
  if (use_avx2_tier()) return "avx2";
  if (use_sse_tier()) return "sse2";
  return "portable";
}

SpmmPlan make_spmm_plan(const graph::CsrGraph& g) { return make_partition(g); }

SpmmImpl current_spmm_impl() {
  return t_override_active ? t_override : SpmmImpl::kBlocked;
}

SpmmImplScope::SpmmImplScope(SpmmImpl impl)
    : prev_(t_override), prev_active_(t_override_active) {
  t_override = impl;
  t_override_active = true;
}

SpmmImplScope::~SpmmImplScope() {
  t_override = prev_;
  t_override_active = prev_active_;
}

void spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
          tensor::Tensor& y, const SpmmScales& scales, SpmmImpl impl,
          support::ThreadPool* pool, const SpmmPlan* plan) {
  GNAV_CHECK(x.rows() == static_cast<std::size_t>(g.num_nodes()),
             "spmm: feature rows (" + std::to_string(x.rows()) +
                 ") != num_nodes (" + std::to_string(g.num_nodes()) + ")");
  GNAV_CHECK(y.same_shape(x), "spmm: output shape " + y.shape_str() +
                                  " != input shape " + x.shape_str());
  GNAV_CHECK(x.size() == 0 || y.data() != x.data(),
             "spmm: output must not alias input");
  if (x.size() == 0) return;
  switch (impl) {
    case SpmmImpl::kScalar:
      spmm_scalar(g, x, y, scales);
      return;
    case SpmmImpl::kBlocked:
      spmm_blocked(g, x, y, scales, pool, plan);
      return;
  }
}

tensor::Tensor spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
                    const SpmmScales& scales, support::ThreadPool* pool) {
  tensor::Tensor y(x.rows(), x.cols());
  spmm(g, x, y, scales, current_spmm_impl(), pool);
  return y;
}

}  // namespace gnav::kernels
