#!/usr/bin/env python3
"""Strict validator for gnav Chrome trace-event exports.

Checks that a trace file produced by `gnav::obs::write_chrome_trace` (or
any tool flag built on it, e.g. `gnavigator_cli --trace-out`) is loadable
by chrome://tracing / Perfetto and structurally sane:

  - The file parses as STRICT JSON (json.load, no trailing garbage).
  - Top level is an object with a `traceEvents` array.
  - Every event is an object with a string `ph`; complete events
    ("ph": "X") carry string `name`/`cat`, integer-or-float `ts`/`dur`
    with dur >= 0, and integer `pid`/`tid`.
  - Metadata events ("ph": "M") carry an `args` object.

Optional structural assertions (what the CI trace job pins):

  --min-categories N    at least N distinct complete-event categories
  --require-category C  category C must appear (repeatable)
  --require-nested      at least one pair of complete events on the SAME
                        tid where one strictly contains the other in time
                        (proves span nesting survived the export)

`--emit-cmd CMD...` (must come last) runs CMD first — the emitter that
writes the trace — then validates. This lets one ctest entry own the
whole produce-and-check round trip.

Exit codes: 0 valid, 1 invalid / emitter failed.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


def fail(msg: str) -> int:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(path: Path, min_categories: int, required: list[str],
             require_nested: bool) -> int:
    try:
        with path.open(encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        return fail(f"no such file: {path}")
    except json.JSONDecodeError as e:
        return fail(f"{path} is not strict JSON: {e}")

    if not isinstance(doc, dict):
        return fail("top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing or non-array traceEvents")

    complete = []  # (tid, ts, dur, cat, name)
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or not isinstance(ev.get("ph"), str):
            return fail(f"traceEvents[{i}] lacks a string 'ph'")
        ph = ev["ph"]
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                return fail(f"traceEvents[{i}] metadata without args object")
            continue
        if ph != "X":
            continue  # other phases are legal Chrome JSON; we only pin X
        for key in ("name", "cat"):
            if not isinstance(ev.get(key), str):
                return fail(f"traceEvents[{i}] X event lacks string '{key}'")
        for key in ("ts", "dur"):
            if not isinstance(ev.get(key), (int, float)):
                return fail(f"traceEvents[{i}] X event lacks numeric '{key}'")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                return fail(f"traceEvents[{i}] X event lacks integer '{key}'")
        if ev["dur"] < 0:
            return fail(f"traceEvents[{i}] has negative dur")
        complete.append((ev["tid"], float(ev["ts"]), float(ev["dur"]),
                         ev["cat"], ev["name"]))

    categories = sorted({c for (_, _, _, c, _) in complete})
    if len(categories) < min_categories:
        return fail(
            f"need >= {min_categories} span categories, got "
            f"{len(categories)}: {categories}"
        )
    for cat in required:
        if cat not in categories:
            return fail(f"required category '{cat}' absent (got {categories})")

    if require_nested:
        by_tid: dict[int, list[tuple[float, float]]] = {}
        for tid, ts, dur, _, _ in complete:
            by_tid.setdefault(tid, []).append((ts, ts + dur))
        found = False
        for spans in by_tid.values():
            spans.sort()
            for j in range(1, len(spans)):
                # After the sort a strict container precedes (or equals the
                # start of) the contained span; scan a bounded window back.
                for k in range(j - 1, max(-1, j - 64), -1):
                    s0, e0 = spans[k]
                    s1, e1 = spans[j]
                    if s0 <= s1 and e1 <= e0 and (s0, e0) != (s1, e1):
                        found = True
                        break
                if found:
                    break
            if found:
                break
        if not found:
            return fail("no nested span pair on any single tid")

    print(
        f"validate_trace: OK: {len(events)} events, {len(complete)} complete "
        f"spans, {len(categories)} categories {categories}, "
        f"{len({t for (t, *_ ) in complete})} span tids"
    )
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--file", required=True, help="trace JSON to validate")
    ap.add_argument("--min-categories", type=int, default=0)
    ap.add_argument("--require-category", action="append", default=[],
                    help="category that must appear (repeatable)")
    ap.add_argument("--require-nested", action="store_true",
                    help="require a strictly nested same-tid span pair")
    ap.add_argument("--emit-cmd", nargs=argparse.REMAINDER, default=None,
                    help="command to run first (the trace emitter); "
                         "must be the last option")
    args = ap.parse_args()

    if args.emit_cmd:
        proc = subprocess.run(args.emit_cmd)
        if proc.returncode != 0:
            return fail(f"emitter exited {proc.returncode}: {args.emit_cmd}")

    return validate(Path(args.file), args.min_categories,
                    args.require_category, args.require_nested)


if __name__ == "__main__":
    sys.exit(main())
