#include "support/log.hpp"

#include <atomic>
#include <cstdio>

namespace gnav {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[gnav %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace gnav
