// Fig. 5 reproduction — "Accuracy comparison between different estimator
// models": gray-box (Eq. 12 analytic core x learned overlap penalty) vs
// black-box (plain decision-tree regression) mini-batch size prediction.
//
// The estimators are trained leave-one-dataset-out (everything except
// reddit2 + power-law augmentation, Sec. 4.1) and evaluated on reddit2
// configurations they never saw. Prints the predicted/measured pairs
// (the scatter points of Fig. 5) and the aggregate fit quality: the
// gray-box points hug the y = x line, the black-box points do not.
#include <cstdio>

#include "estimator/batch_size_estimator.hpp"
#include "estimator/profile_collector.hpp"
#include "ml/metrics.hpp"
#include "support/stats.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  const auto hw = hw::make_profile("rtx4090");

  estimator::CollectorOptions opts;
  opts.configs_per_dataset = 16;
  opts.epochs = 1;
  std::printf("collecting leave-one-out profiling corpus (holdout: reddit2)"
              "...\n");
  const auto corpus = estimator::collect_lodo_corpus(
      graph::dataset_names(), "reddit2", /*augmentation_graphs=*/2, hw,
      opts);

  estimator::GrayBoxBatchSizeEstimator gray;
  estimator::BlackBoxBatchSizeEstimator black;
  gray.fit(corpus);
  black.fit(corpus);

  // Held-out evaluation runs on reddit2.
  const auto ds = graph::load_dataset("reddit2");
  const auto stats = estimator::compute_dataset_stats(ds);
  estimator::CollectorOptions eval_opts;
  eval_opts.configs_per_dataset = 24;
  eval_opts.epochs = 1;
  eval_opts.seed = 31337;
  const auto eval_runs = estimator::collect_profiles(ds, hw, eval_opts);

  Table scatter({"measured |Vi|", "gray-box pred", "black-box pred",
                 "config"});
  std::vector<double> y_true;
  std::vector<double> y_gray;
  std::vector<double> y_black;
  for (const auto& run : eval_runs) {
    const double measured = run.report.avg_batch_nodes;
    const double g = gray.predict(run.config, stats, hw);
    const double b = black.predict(run.config, stats, hw);
    y_true.push_back(measured);
    y_gray.push_back(g);
    y_black.push_back(b);
    scatter.add_row({format_double(measured, 0), format_double(g, 0),
                     format_double(b, 0), run.config.summary()});
  }
  std::printf("\nFig. 5 scatter points (held-out reddit2):\n\n%s\n",
              scatter.to_ascii().c_str());
  scatter.write_csv("fig5_batch_size_scatter.csv");

  Table summary({"model", "R2 score", "MAPE", "pearson r"});
  summary.add_row({"gray-box (Eq. 12 + learned penalty)",
                   format_double(ml::r2_score(y_true, y_gray), 4),
                   format_double(ml::mape(y_true, y_gray), 4),
                   format_double(pearson(y_true, y_gray), 4)});
  summary.add_row({"black-box (decision-tree regression)",
                   format_double(ml::r2_score(y_true, y_black), 4),
                   format_double(ml::mape(y_true, y_black), 4),
                   format_double(pearson(y_true, y_black), 4)});
  std::printf("%s\n", summary.to_ascii().c_str());
  std::printf("(paper Fig. 5: the gray-box scatter is 'far better' aligned\n"
              " with the y=x diagonal than the pure black-box model)\n");
  return 0;
}
