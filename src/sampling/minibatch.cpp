#include "sampling/minibatch.hpp"

#include <algorithm>
#include <unordered_set>

#include "sampling/build.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace gnav::sampling {

void MiniBatch::validate(const graph::CsrGraph& parent) const {
  GNAV_CHECK(subgraph.num_nodes() == num_nodes(),
             "subgraph size != node mapping size");
  std::unordered_set<graph::NodeId> seen;
  for (graph::NodeId g : nodes) {
    GNAV_CHECK(parent.contains(g), "global id out of parent range");
    GNAV_CHECK(seen.insert(g).second, "duplicate global id in mini-batch");
  }
  for (std::int64_t s : seed_local) {
    GNAV_CHECK(s >= 0 && s < num_nodes(), "seed local index out of range");
  }
  GNAV_CHECK(subgraph.is_symmetric(), "mini-batch subgraph not symmetric");
}

namespace detail {
namespace {

/// Row-parallelism threshold: below this many edge slots the dispatch
/// overhead of the pool outweighs the sort work. Results are identical
/// either way (rows are index-disjoint), so the constant is perf-only.
constexpr std::size_t kParallelEdgeThreshold = 1 << 14;

void for_each_row(std::size_t n, std::size_t total_slots,
                  const std::function<void(std::size_t)>& body) {
  // On a pool worker (MiniBatchLoader prefetching — possibly on a
  // caller-provided pool) parallel_for would run inline anyway; loop
  // directly so the process-wide global pool is never instantiated on
  // behalf of someone else's pool. Only the serial sampling path (e.g.
  // cache-aware bias) fans rows out, and it has no pool handle of its
  // own, so the global pool is the right one there.
  if (total_slots < kParallelEdgeThreshold ||
      support::ThreadPool::in_worker()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
  } else {
    support::global_pool().parallel_for(0, n, body);
  }
}

/// Sorts + deduplicates each filled row of `scratch.adj_tmp` (rows at
/// `row_offsets` with `row_counts` entries), then compacts into an
/// exact-size CSR. Neighbor lists come out sorted ascending — the same
/// layout GraphBuilder produced, which the symmetry check and the tests'
/// binary searches rely on.
graph::CsrGraph finalize_rows(std::size_t n, SampleScratch& scratch) {
  const auto total =
      static_cast<std::size_t>(scratch.row_offsets[n]);
  for_each_row(n, total, [&](std::size_t i) {
    graph::NodeId* begin = scratch.adj_tmp.data() + scratch.row_offsets[i];
    graph::NodeId* end = begin + scratch.row_counts[i];
    std::sort(begin, end);
    scratch.row_counts[i] = std::unique(begin, end) - begin;
  });
  std::vector<graph::EdgeId> indptr(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    indptr[i + 1] = indptr[i] + scratch.row_counts[i];
  }
  std::vector<graph::NodeId> indices(static_cast<std::size_t>(indptr[n]));
  for_each_row(n, total, [&](std::size_t i) {
    std::copy_n(scratch.adj_tmp.data() + scratch.row_offsets[i],
                scratch.row_counts[i], indices.data() + indptr[i]);
  });
  return graph::CsrGraph(std::move(indptr), std::move(indices));
}

}  // namespace

const std::vector<graph::NodeId>& order_nodes(
    const graph::CsrGraph& parent, std::span<const graph::NodeId> seeds,
    const std::vector<graph::NodeId>& extra, SampleScratch& scratch) {
  scratch.visited.begin_pass(static_cast<std::size_t>(parent.num_nodes()));
  scratch.ordered.clear();
  scratch.ordered.reserve(seeds.size() + extra.size());
  for (graph::NodeId s : seeds) {
    if (scratch.visited.insert(s)) scratch.ordered.push_back(s);
  }
  for (graph::NodeId v : extra) {
    if (scratch.visited.insert(v)) scratch.ordered.push_back(v);
  }
  return scratch.ordered;
}

MiniBatch build_from_edges(
    const graph::CsrGraph& parent, std::span<const graph::NodeId> seeds,
    const std::vector<graph::NodeId>& ordered_nodes,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& edges,
    double sampling_work, SampleScratch& scratch) {
  const std::size_t n = ordered_nodes.size();
  scratch.local_ids.begin_pass(static_cast<std::size_t>(parent.num_nodes()));
  for (std::size_t i = 0; i < n; ++i) {
    scratch.local_ids.set(ordered_nodes[i], static_cast<std::int64_t>(i));
  }

  // Counting pass (each kept edge lands in both endpoint rows).
  scratch.row_counts.assign(n, 0);
  for (const auto& [u, v] : edges) {
    const std::int64_t lu = scratch.local_ids.get(u);
    const std::int64_t lv = scratch.local_ids.get(v);
    GNAV_CHECK(lu != NodeMarker::kAbsent && lv != NodeMarker::kAbsent,
               "sampled edge endpoint missing from node set");
    if (lu == lv) continue;  // self-loop
    ++scratch.row_counts[static_cast<std::size_t>(lu)];
    ++scratch.row_counts[static_cast<std::size_t>(lv)];
  }

  // Prefix sum + symmetrized fill.
  scratch.row_offsets.resize(n + 1);
  scratch.row_offsets[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scratch.row_offsets[i + 1] = scratch.row_offsets[i] +
                                 scratch.row_counts[i];
  }
  scratch.adj_tmp.resize(static_cast<std::size_t>(scratch.row_offsets[n]));
  scratch.row_cursor.assign(scratch.row_offsets.begin(),
                            scratch.row_offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    const std::int64_t lu = scratch.local_ids.get(u);
    const std::int64_t lv = scratch.local_ids.get(v);
    if (lu == lv) continue;
    scratch.adj_tmp[static_cast<std::size_t>(
        scratch.row_cursor[static_cast<std::size_t>(lu)]++)] =
        static_cast<graph::NodeId>(lv);
    scratch.adj_tmp[static_cast<std::size_t>(
        scratch.row_cursor[static_cast<std::size_t>(lv)]++)] =
        static_cast<graph::NodeId>(lu);
  }

  MiniBatch mb;
  mb.subgraph = finalize_rows(n, scratch);
  mb.nodes.assign(ordered_nodes.begin(), ordered_nodes.end());
  mb.seed_local.reserve(seeds.size());
  for (graph::NodeId s : seeds) {
    const std::int64_t local = scratch.local_ids.get(s);
    GNAV_CHECK(local != NodeMarker::kAbsent, "seed missing from node set");
    mb.seed_local.push_back(local);
  }
  mb.sampling_work = sampling_work;
  return mb;
}

MiniBatch build_induced(const graph::CsrGraph& parent,
                        std::span<const graph::NodeId> seeds,
                        const std::vector<graph::NodeId>& ordered_nodes,
                        double sampling_work, SampleScratch& scratch) {
  const std::size_t n = ordered_nodes.size();
  scratch.local_ids.begin_pass(static_cast<std::size_t>(parent.num_nodes()));
  for (std::size_t i = 0; i < n; ++i) {
    GNAV_CHECK(parent.contains(ordered_nodes[i]),
               "build_induced: node out of range");
    GNAV_CHECK(scratch.local_ids.get(ordered_nodes[i]) == NodeMarker::kAbsent,
               "build_induced: duplicate node id");
    scratch.local_ids.set(ordered_nodes[i], static_cast<std::int64_t>(i));
  }

  // Counting pass over the parent neighborhoods (reads the marker only —
  // safe to run rows concurrently).
  scratch.row_counts.assign(n, 0);
  std::size_t total_degree = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_degree +=
        static_cast<std::size_t>(parent.degree(ordered_nodes[i]));
  }
  for_each_row(n, total_degree, [&](std::size_t i) {
    graph::EdgeId count = 0;
    for (graph::NodeId u : parent.neighbors(ordered_nodes[i])) {
      const std::int64_t lu = scratch.local_ids.get(u);
      if (lu != NodeMarker::kAbsent &&
          lu != static_cast<std::int64_t>(i)) {
        ++count;
      }
    }
    scratch.row_counts[i] = count;
  });

  scratch.row_offsets.resize(n + 1);
  scratch.row_offsets[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scratch.row_offsets[i + 1] = scratch.row_offsets[i] +
                                 scratch.row_counts[i];
  }
  scratch.adj_tmp.resize(static_cast<std::size_t>(scratch.row_offsets[n]));
  for_each_row(n, total_degree, [&](std::size_t i) {
    auto cursor = static_cast<std::size_t>(scratch.row_offsets[i]);
    for (graph::NodeId u : parent.neighbors(ordered_nodes[i])) {
      const std::int64_t lu = scratch.local_ids.get(u);
      if (lu != NodeMarker::kAbsent &&
          lu != static_cast<std::int64_t>(i)) {
        scratch.adj_tmp[cursor++] = static_cast<graph::NodeId>(lu);
      }
    }
  });

  MiniBatch mb;
  mb.subgraph = finalize_rows(n, scratch);
  mb.nodes.assign(ordered_nodes.begin(), ordered_nodes.end());
  scratch.chosen.begin_pass(n);
  mb.seed_local.reserve(seeds.size());
  for (graph::NodeId s : seeds) {
    const std::int64_t local = scratch.local_ids.get(s);
    GNAV_CHECK(local != NodeMarker::kAbsent,
               "seed missing from induced node set");
    if (scratch.chosen.insert(local)) mb.seed_local.push_back(local);
  }
  mb.sampling_work = sampling_work;
  return mb;
}

}  // namespace detail

}  // namespace gnav::sampling
