// Gradient boosting with shallow CART trees (least-squares boosting):
// F_0 = mean(y); F_k = F_{k-1} + lr * tree_k(residuals). The gray-box
// estimator uses this as its default residual learner — smooth targets,
// small data, strong bias control.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace gnav::ml {

struct BoostingParams {
  int num_rounds = 80;
  double learning_rate = 0.15;
  TreeParams tree{/*max_depth=*/3, /*min_samples_leaf=*/3,
                  /*min_samples_split=*/6, /*threshold_stride=*/1};
};

class GradientBoostingRegressor final : public Regressor {
 public:
  explicit GradientBoostingRegressor(BoostingParams params = {});

  void fit(const Matrix& x, const std::vector<double>& y) override;
  double predict_one(const std::vector<double>& x) const override;
  bool is_fitted() const override { return fitted_; }

  std::size_t round_count() const { return trees_.size(); }

 private:
  BoostingParams params_;
  double base_ = 0.0;
  bool fitted_ = false;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace gnav::ml
