#!/usr/bin/env python3
"""Determinism lint for the gnav source tree.

gnav's contract is bit-identical TrainReports at any thread count,
executor, or backend (ROADMAP "determinism contract"). The patterns this
lint bans are the ways that contract historically rots:

  raw-rand
      rand()/srand(), std::random_device, and time(...) seeding smuggle
      ambient nondeterminism past the task_seed(base, index) discipline.
      All randomness must flow through support::Rng streams derived from
      explicit seeds.

  wall-clock
      Argless std::chrono::*::now() is legitimate ONLY inside profiler
      walls (measuring how long something took). A now() that feeds
      anything data-bearing (a seed, a cache decision, a batch order)
      breaks replay. Every call site must therefore carry an explicit
      `gnav-lint(wall-clock)` annotation declaring it a profiler wall —
      unannotated calls fail the lint. Two telemetry surfaces count as
      annotated by construction: any file under an obs/ directory (the
      whole layer exists to timestamp spans; its TrainReport-neutrality
      is pinned by test instead), and a line within annotation reach of a
      GNAV_TRACE_SPAN (a span body is a profiler wall by definition).

  unordered-iteration  (superseded — runs only with --include-superseded)
      Iterating a std::unordered_map/unordered_set feeds hash-order —
      which varies across libstdc++ versions and pointer layouts — into
      whatever consumes the loop. Membership tests are fine; iteration
      is not. (cluster_sampler's seed-count map was exactly this: only a
      downstream total-order sort kept it deterministic.) Graduated to
      the gnav_analyzer AST check of the same name, which sees types
      instead of guessing from declarations in the same file.

  nondet-reduction
      In kernel code (kernels/, nn/, tensor/, compute/), std::reduce and
      std::transform_reduce permit out-of-order FP accumulation, fused
      multiply-add intrinsics/std::fma change rounding vs a*b+c, and
      fast-math pragmas void -ffp-contract=off. All reorder float sums
      that golden traces pin bitwise.

  mutable-ref-accessor  (superseded — runs only with --include-superseded)
      In a class that owns a mutex, a `const T& accessor() const
      { return member_; }` hands out a live alias into guarded state —
      the caller keeps reading after the lock is gone (the
      residency_version()/feedback() bug class). Snapshot by value, or
      annotate the accessor if the alias is a designed live-read surface.
      Graduated to gnav_analyzer's guarded-ref-escape AST check, which
      resolves GNAV_GUARDED_BY fields instead of pattern-matching.

Relationship to tools/gnav_analyzer
    This lint is the regex layer; gnav_analyzer is the AST layer. Rules
    that graduated to AST checks are demoted here behind
    --include-superseded so machines without libclang (where the
    analyzer SKIPs) can still run full coverage:

        tools/determinism_lint.py --include-superseded

Suppressing a finding
    Put `gnav-lint(<rule>)` in a comment on the offending line, or on an
    annotation line directly above it (blank/comment lines may sit in
    between, other code may not, and never more than three lines up):

        const auto t0 = Clock::now();  // gnav-lint(wall-clock): profiler wall

    An annotation blesses only the next code line — it cannot reach past
    an intervening statement to an unrelated site further down. The same
    adjacency governs the GNAV_TRACE_SPAN wall-clock exemption.

    File-wide or unannotatable exemptions go in ALLOWLIST below, keyed
    "relative/path.cpp:rule", with a justification string. Both paths are
    deliberate: every exemption is written down next to a reason.

Usage
    tools/determinism_lint.py [--self-test] [--include-superseded] [paths...]

    With no paths, lints src/ relative to the repo root (the directory
    containing this tools/ dir). --self-test runs every rule against an
    embedded corpus of known-bad snippets (each must trip exactly its
    rule) and a known-good snippet (which must stay clean), then exits.

Exit codes: 0 clean / self-test passed, 1 findings / self-test failed.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Files the lint walks: C++ sources and headers.
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

# Directories whose floating-point accumulation is pinned by golden
# traces — the nondet-reduction rule applies only here.
KERNEL_DIRS = ("kernels", "nn", "tensor", "compute")

# path-relative-to-repo:rule -> justification. Prefer inline
# `gnav-lint(rule)` annotations; use this only when the site cannot carry
# a comment (generated code, third-party includes).
ALLOWLIST: dict[str, str] = {
    # (empty — every current exemption is an inline annotation)
}

ANNOTATION = re.compile(r"gnav-lint\((?P<rules>[\w,\- ]+)\)")
# Outer bound on how many lines above a site an annotation comment can
# sit. Within that window adjacency is strict: an annotation blesses its
# own line and the next code line only — an intervening statement cuts
# the reach (see `annotated`).
ANNOTATION_REACH = 3

# Rules that graduated to gnav_analyzer AST checks (which resolve real
# types instead of pattern-matching). They run here only with
# --include-superseded, the fallback for machines without libclang.
SUPERSEDED_RULES = frozenset({"unordered-iteration", "mutable-ref-accessor"})

# A trace span within reach makes a clock read a profiler wall by
# definition (the span exists to measure that region).
TRACE_SPAN = re.compile(r"\bGNAV_TRACE_SPAN\s*\(")

RULES = {
    "raw-rand": [
        re.compile(r"(?<![\w:])s?rand\s*\("),
        re.compile(r"std::random_device"),
        re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&)"),
    ],
    "wall-clock": [
        re.compile(
            r"(?:\w+::)*(?:steady_clock|system_clock|high_resolution_clock"
            r"|Clock)::now\s*\(\s*\)"
        ),
    ],
    "nondet-reduction": [
        re.compile(r"std::(?:transform_)?reduce\s*[<(]"),
        re.compile(r"_mm\w*_(?:fmadd|fmsub|fnmadd|fnmsub)_"),
        re.compile(r"std::fmaf?\s*\("),
        re.compile(r"#\s*pragma\s+(?:GCC|clang)\s+optimize|fast-math"),
    ],
}

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*\n?"
    r"\s*(?P<name>\w+)\s*[;({=]"
)
RANGE_FOR = re.compile(r"for\s*\([^;)]*?:\s*(?:\*?\s*)?(?P<expr>[\w.\->]+)\s*\)")
# Only begin(): iteration always needs it, while a bare end() is the
# membership idiom (`find(x) != end()`), which is deterministic.
BEGIN_CALL = re.compile(r"(?P<name>\w+)\s*\.\s*c?begin\s*\(\s*\)")
MUTABLE_REF_ACCESSOR = re.compile(
    r"&\s+(?P<fn>\w+)\s*\(\s*\)\s*const\s*(?:GNAV_\w+\s*(?:\([^)]*\))?\s*)?"
    r"\{\s*return\s+(?P<member>\w+_)\s*;"
)
MUTEX_MARKER = re.compile(r"\b(?:support::)?Mutex\b|std::mutex\b")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        try:
            rel = self.path.relative_to(REPO_ROOT)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def _code_part(line: str) -> str:
    """The line with any trailing // comment stripped."""
    return line.split("//", 1)[0]


def annotated(lines: list[str], idx: int, rule: str) -> bool:
    """True when line idx (0-based) carries a gnav-lint(<rule>)
    annotation, or is the first code line below one.

    The nearest annotation above decides, and only if no code line sits
    between it and the site: an annotation (including one trailing an
    earlier statement) must not reach past intervening code to bless an
    unrelated site further down. ANNOTATION_REACH bounds the upward
    scan so a blank/comment block cannot stretch the window forever.
    """
    lo = max(0, idx - ANNOTATION_REACH)
    for j in range(idx, lo - 1, -1):
        m = ANNOTATION.search(lines[j])
        if m and rule in [r.strip() for r in m.group("rules").split(",")]:
            if j == idx:
                return True
            between = lines[j + 1: idx]
            return all(not _code_part(l).strip() for l in between)
    return False


def in_kernel_dir(path: Path) -> bool:
    return any(part in KERNEL_DIRS for part in path.parts)


def lint_file(path: Path, text: str,
              include_superseded: bool = False) -> list[Finding]:
    findings: list[Finding] = []
    lines = text.splitlines()
    rel_key = None
    try:
        rel_key = str(path.relative_to(REPO_ROOT))
    except ValueError:
        rel_key = str(path)

    # The obs/ telemetry layer IS the profiler-wall infrastructure: every
    # clock read there feeds spans or metrics, never data. Exempt by
    # directory part (not substring — src/obs/, never src/obs_foo/).
    obs_layer = "obs" in path.parts

    def span_blessed(idx: int) -> bool:
        # A GNAV_TRACE_SPAN declares the clock read directly below it a
        # profiler wall. Same strict adjacency as annotations: the
        # nearest span above decides, and an intervening code line cuts
        # the reach — a span must not bless an unrelated now() two
        # statements later.
        lo = max(0, idx - ANNOTATION_REACH)
        for j in range(idx, lo - 1, -1):
            if TRACE_SPAN.search(lines[j]):
                if j == idx:
                    return True
                between = lines[j + 1: idx]
                return all(not _code_part(l).strip() for l in between)
        return False

    def allowed(rule: str, idx: int) -> bool:
        if f"{rel_key}:{rule}" in ALLOWLIST:
            return True
        if rule == "wall-clock":
            if obs_layer:
                return True
            if span_blessed(idx):
                return True
        return annotated(lines, idx, rule)

    # Strip line comments so commented-out examples don't trip rules
    # (the annotation scan above still sees the full line).
    code_part = _code_part

    # --- simple per-line pattern rules -----------------------------------
    for rule, patterns in RULES.items():
        if rule == "nondet-reduction" and not in_kernel_dir(path):
            continue
        for i, line in enumerate(lines):
            code = code_part(line)
            for pat in patterns:
                if pat.search(code) and not allowed(rule, i):
                    findings.append(
                        Finding(path, i + 1, rule, f"banned pattern: {pat.pattern}")
                    )
                    break

    if not include_superseded:
        return findings

    # --- unordered-iteration (superseded by the AST check) ----------------
    unordered_names = {m.group("name") for m in UNORDERED_DECL.finditer(text)}
    # Drop type/parameter-ish captures that are clearly not variables.
    unordered_names.discard("")
    if unordered_names:
        for i, line in enumerate(lines):
            code = code_part(line)
            hits = []
            m = RANGE_FOR.search(code)
            if m:
                base = m.group("expr").split(".")[0].split("->")[0].lstrip("*&")
                if base in unordered_names:
                    hits.append(
                        f"range-for over unordered container '{base}' "
                        "iterates in hash order"
                    )
            for b in BEGIN_CALL.finditer(code):
                if b.group("name") in unordered_names:
                    hits.append(
                        f"begin() over unordered container "
                        f"'{b.group('name')}' iterates in hash order"
                    )
            for msg in hits:
                if not allowed("unordered-iteration", i):
                    findings.append(Finding(path, i + 1, "unordered-iteration", msg))

    # --- mutable-ref-accessor (superseded by guarded-ref-escape) ----------
    # Only meaningful in files that hold a mutex: that is where a
    # returned reference outlives the lock that made it coherent.
    if MUTEX_MARKER.search(text):
        for m in MUTABLE_REF_ACCESSOR.finditer(text):
            i = text.count("\n", 0, m.start())
            if not allowed("mutable-ref-accessor", i):
                findings.append(
                    Finding(
                        path,
                        i + 1,
                        "mutable-ref-accessor",
                        f"'{m.group('fn')}()' returns a reference to member "
                        f"'{m.group('member')}' from a mutex-holding class; "
                        "snapshot by value or annotate the designed alias",
                    )
                )
    return findings


def lint_paths(paths: list[Path],
               include_superseded: bool = False) -> list[Finding]:
    findings: list[Finding] = []
    for root in paths:
        files = [root] if root.is_file() else sorted(root.rglob("*"))
        for f in files:
            if f.suffix in CPP_SUFFIXES and f.is_file():
                findings.extend(
                    lint_file(f, f.read_text(encoding="utf-8"),
                              include_superseded=include_superseded)
                )
    return findings


# --------------------------------------------------------------------------
# Self-test corpus: every snippet is (rule-it-must-trip | None, code).
# None = must stay clean. Each bad snippet exercises one rule; the good
# snippets pin the suppression mechanisms and non-matches.

SELF_TEST_CORPUS: list[tuple[str | None, str, str] ] = [
    (
        "raw-rand",
        "bad_rand.cpp",
        "int pick() { return rand() % 7; }\n",
    ),
    (
        "raw-rand",
        "bad_random_device.cpp",
        "std::random_device rd;\nunsigned s = rd();\n",
    ),
    (
        "raw-rand",
        "bad_time_seed.cpp",
        "auto seed = time(nullptr);\n",
    ),
    (
        "wall-clock",
        "bad_now.cpp",
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        "unordered-iteration",
        "bad_unordered_iter.cpp",
        "std::unordered_map<int, int> counts;\n"
        "for (const auto& kv : counts) { use(kv); }\n",
    ),
    (
        "unordered-iteration",
        "bad_unordered_begin.cpp",
        "std::unordered_set<int> seen;\n"
        "std::vector<int> v(seen.begin(), seen.end());\n",
    ),
    (
        "nondet-reduction",
        "kernels/bad_reduce.cpp",
        "double s = std::reduce(x.begin(), x.end(), 0.0);\n",
    ),
    (
        "nondet-reduction",
        "nn/bad_fma.cpp",
        "__m256 r = _mm256_fmadd_ps(a, b, c);\n",
    ),
    (
        "mutable-ref-accessor",
        "bad_ref_accessor.hpp",
        "class C {\n"
        " public:\n"
        "  const std::vector<int>& rows() const { return rows_; }\n"
        " private:\n"
        "  mutable std::mutex mu_;\n"
        "  std::vector<int> rows_;\n"
        "};\n",
    ),
    (
        None,
        "obs/good_obs_layer_now.cpp",
        # Clock reads inside an obs/ directory are the telemetry layer's
        # own profiler walls — exempt by construction.
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        "wall-clock",
        "obs_lookalike/bad_not_obs_now.cpp",
        # The exemption matches the path PART 'obs', never a substring.
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        None,
        "good_span_reach_now.cpp",
        # A GNAV_TRACE_SPAN directly above declares the clock read a
        # profiler wall.
        'GNAV_TRACE_SPAN("pipeline", "sample");\n'
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        "wall-clock",
        "bad_span_reach_cut_by_code.cpp",
        # Strict adjacency: the span blesses the now() directly below it,
        # but must NOT reach past an intervening statement to bless an
        # unrelated now() two statements later.
        'GNAV_TRACE_SPAN("pipeline", "sample");\n'
        "auto t0 = std::chrono::steady_clock::now();\n"
        "do_data_bearing_work(t0);\n"
        "auto t1 = std::chrono::steady_clock::now();\n",
    ),
    (
        None,
        "good_annotated_now.cpp",
        "// gnav-lint(wall-clock): profiler wall\n"
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        None,
        "good_annotation_through_comment.cpp",
        # Blank and comment lines do not cut the reach (ANNOTATION_REACH
        # still bounds the window).
        "// gnav-lint(wall-clock): profiler wall\n"
        "// measures the sample stage\n"
        "\n"
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        "wall-clock",
        "bad_annotation_cut_by_code.cpp",
        # An annotation (here trailing an earlier, legitimately blessed
        # read) must not reach past intervening code to an unrelated
        # now() further down.
        "auto t0 = std::chrono::steady_clock::now();  "
        "// gnav-lint(wall-clock): profiler wall\n"
        "seed_rng_from(t0);\n"
        "auto t1 = std::chrono::steady_clock::now();\n",
    ),
    (
        None,
        "good_membership.cpp",
        "std::unordered_set<int> seen;\n"
        "bool dup = seen.find(3) != seen.end();\n"
        "seen.insert(4);\n",
    ),
    (
        None,
        "good_value_accessor.hpp",
        "class C {\n"
        " public:\n"
        "  std::vector<int> rows() const { return rows_; }\n"
        " private:\n"
        "  mutable std::mutex mu_;\n"
        "  std::vector<int> rows_;\n"
        "};\n",
    ),
    (
        None,
        "good_reduce_outside_kernels.cpp",
        # std::reduce outside kernel dirs is out of the rule's scope: the
        # golden traces only pin kernel-path accumulation order.
        "double s = std::reduce(x.begin(), x.end(), 0.0);\n",
    ),
    (
        None,
        "good_runtime_name.cpp",
        # 'runtime(' and 'wall_time(' must not trip the time( pattern.
        "double wall_time();\ndouble r = wall_time();\n",
    ),
]


def self_test() -> int:
    failures = []
    for expected_rule, fake_name, code in SELF_TEST_CORPUS:
        path = REPO_ROOT / "selftest" / fake_name  # fake path, never read
        # Superseded rules stay in the corpus: they must keep working as
        # the --include-superseded fallback.
        found = lint_file(path, code, include_superseded=True)
        rules = {f.rule for f in found}
        if expected_rule is None:
            if found:
                failures.append(
                    f"{fake_name}: expected clean, got {sorted(rules)}"
                )
        elif expected_rule not in rules:
            failures.append(
                f"{fake_name}: expected [{expected_rule}], got {sorted(rules) or 'clean'}"
            )
    if failures:
        print("determinism_lint self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"determinism_lint self-test passed ({len(SELF_TEST_CORPUS)} cases)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded known-bad corpus against every rule",
    )
    ap.add_argument(
        "--include-superseded",
        action="store_true",
        help="also run rules that graduated to gnav_analyzer AST checks "
             f"({', '.join(sorted(SUPERSEDED_RULES))}) — the fallback for "
             "machines without libclang",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    roots = [Path(p).resolve() for p in args.paths] or [REPO_ROOT / "src"]
    for r in roots:
        if not r.exists():
            print(f"determinism_lint: no such path: {r}", file=sys.stderr)
            return 1
    findings = lint_paths(roots, include_superseded=args.include_superseded)
    for f in findings:
        print(f)
    if findings:
        print(
            f"\ndeterminism_lint: {len(findings)} finding(s). Suppress a "
            "deliberate site with a `gnav-lint(<rule>)` comment (same line "
            "or up to 3 lines above) plus a reason, or an ALLOWLIST entry."
        )
        return 1
    print("determinism_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
