// Dense linear-algebra kernels over Tensor. Shapes are validated with
// GNAV_CHECK; all kernels are cache-friendly row-major loops (ikj matmul),
// which is plenty at the mini-batch scales this simulator targets.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace gnav::tensor {

/// C = A * B  with A:[m x k], B:[k x n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T * B with A:[k x m], B:[k x n] -> [m x n] (weight gradients).
Tensor matmul_at_b(const Tensor& a, const Tensor& b);

/// C = A * B^T with A:[m x k], B:[n x k] -> [m x n] (input gradients).
Tensor matmul_a_bt(const Tensor& a, const Tensor& b);

Tensor transpose(const Tensor& a);

/// Element-wise helpers; `axpy` computes y += alpha * x in place.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor hadamard(const Tensor& a, const Tensor& b);
void add_inplace(Tensor& y, const Tensor& x);
void axpy(Tensor& y, float alpha, const Tensor& x);
void scale_inplace(Tensor& a, float alpha);

/// Broadcasts bias:[1 x n] over each row of a:[m x n] in place.
void add_row_bias_inplace(Tensor& a, const Tensor& bias);
/// Column-sum of `grad`:[m x n] -> [1 x n] (bias gradient).
Tensor column_sum(const Tensor& grad);

/// Activations (with their backward companions taking pre-activation z).
Tensor relu(const Tensor& z);
Tensor relu_backward(const Tensor& grad_out, const Tensor& z);
Tensor elu(const Tensor& z, float alpha = 1.0f);
Tensor elu_backward(const Tensor& grad_out, const Tensor& z,
                    float alpha = 1.0f);
Tensor leaky_relu(const Tensor& z, float slope);
Tensor leaky_relu_backward(const Tensor& grad_out, const Tensor& z,
                           float slope);

/// Row-wise softmax (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Per-row argmax -> class indices.
std::vector<int> argmax_rows(const Tensor& a);

/// Gathers the given rows of `src` into a new tensor (feature loading).
Tensor gather_rows(const Tensor& src, const std::vector<std::int64_t>& rows);

/// Inverted-dropout: zeroes entries with prob p and rescales survivors by
/// 1/(1-p); `mask` records survivors for the backward pass.
Tensor dropout(const Tensor& a, float p, Rng& rng, Tensor* mask);
Tensor dropout_backward(const Tensor& grad_out, const Tensor& mask);

}  // namespace gnav::tensor
