// Tests for the gray-box performance estimator stack: features, profiled
// corpus collection, batch-size models (gray vs black box), and the full
// PerfEstimator's accuracy and monotonicity properties.
//
// The profiled corpus is built once in a shared fixture (profiling runs
// train real models, so this is the slowest test file).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>

#include <cstdio>

#include "estimator/batch_size_estimator.hpp"
#include "estimator/corpus_io.hpp"
#include "estimator/features.hpp"
#include "estimator/overlap_model.hpp"
#include "estimator/perf_estimator.hpp"
#include "estimator/profile_collector.hpp"
#include "ml/metrics.hpp"
#include "runtime/templates.hpp"
#include "support/error.hpp"
#include "support/string_utils.hpp"

namespace gnav::estimator {
namespace {

class EstimatorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hw_ = new hw::HardwareProfile(hw::make_profile("rtx4090"));
    dataset_ = new graph::Dataset(graph::make_power_law_augmentation(0, 3));
    stats_ = new DatasetStats(compute_dataset_stats(*dataset_));
    // 48 configs is the smallest corpus where the time residual model
    // generalizes consistently rather than by luck of the holdout draw
    // (at 24 the out-of-sample time r2 swings from -0.25 to 0.6 across
    // holdout seeds).
    CollectorOptions opts;
    opts.configs_per_dataset = 48;
    opts.epochs = 1;
    opts.seed = 12;
    corpus_ = new std::vector<ProfiledRun>(
        collect_profiles(*dataset_, *hw_, opts));
    // Out-of-sample runs on the same dataset for generalization checks.
    CollectorOptions test_opts = opts;
    test_opts.seed = 555;
    test_opts.configs_per_dataset = 8;
    holdout_ = new std::vector<ProfiledRun>(
        collect_profiles(*dataset_, *hw_, test_opts));
    // Cross-dataset holdout (a different augmentation graph): the regime
    // where the paper claims the analytic gray-box core transfers and a
    // pure black box does not.
    cross_dataset_ = new graph::Dataset(
        graph::make_power_law_augmentation(2, 3));
    cross_holdout_ = new std::vector<ProfiledRun>(
        collect_profiles(*cross_dataset_, *hw_, test_opts));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete holdout_;
    delete cross_holdout_;
    delete stats_;
    delete dataset_;
    delete cross_dataset_;
    delete hw_;
  }

  static hw::HardwareProfile* hw_;
  static graph::Dataset* dataset_;
  static graph::Dataset* cross_dataset_;
  static DatasetStats* stats_;
  static std::vector<ProfiledRun>* corpus_;
  static std::vector<ProfiledRun>* holdout_;
  static std::vector<ProfiledRun>* cross_holdout_;
};

hw::HardwareProfile* EstimatorFixture::hw_ = nullptr;
graph::Dataset* EstimatorFixture::dataset_ = nullptr;
graph::Dataset* EstimatorFixture::cross_dataset_ = nullptr;
DatasetStats* EstimatorFixture::stats_ = nullptr;
std::vector<ProfiledRun>* EstimatorFixture::corpus_ = nullptr;
std::vector<ProfiledRun>* EstimatorFixture::holdout_ = nullptr;
std::vector<ProfiledRun>* EstimatorFixture::cross_holdout_ = nullptr;

TEST(DatasetStats, CapturesCoverageCurve) {
  const auto ds = graph::load_dataset("reddit2");
  const DatasetStats s = compute_dataset_stats(ds);
  EXPECT_EQ(s.name, "reddit2");
  EXPECT_GT(s.coverage_at_10, 0.0);
  EXPECT_GE(s.coverage_at_25, s.coverage_at_10);
  EXPECT_GE(s.coverage_at_50, s.coverage_at_25);
  EXPECT_GT(s.num_train_nodes, 0u);
}

TEST(Features, WidthMatchesNamesAndVariesWithConfig) {
  const auto ds = graph::load_dataset("reddit2");
  const DatasetStats s = compute_dataset_stats(ds);
  const auto hw = hw::make_profile("rtx4090");
  const auto f1 = extract_features(runtime::template_pyg(), s, hw);
  EXPECT_EQ(f1.size(), feature_names().size());
  const auto f2 = extract_features(runtime::template_pagraph_full(), s, hw);
  EXPECT_NE(f1, f2);
}

TEST(Features, CacheHitPriorMonotoneInRatio) {
  const auto ds = graph::load_dataset("reddit2");
  const DatasetStats s = compute_dataset_stats(ds);
  runtime::TrainConfig c = runtime::template_pagraph_low();
  double prev = -1.0;
  for (double r : {0.05, 0.1, 0.2, 0.3, 0.5, 0.8}) {
    c.cache_ratio = r;
    const double prior = analytic_cache_hit_prior(c, s);
    EXPECT_GT(prior, prev);
    EXPECT_LE(prior, 1.0);
    prev = prior;
  }
  c = runtime::template_pyg();
  EXPECT_DOUBLE_EQ(analytic_cache_hit_prior(c, s), 0.0);
}

TEST(Features, AnalyticFlopsGrowWithModelSize) {
  const auto ds = graph::load_dataset("reddit2");
  const DatasetStats s = compute_dataset_stats(ds);
  runtime::TrainConfig small = runtime::template_pyg();
  small.hidden_dim = 32;
  runtime::TrainConfig big = small;
  big.hidden_dim = 128;
  EXPECT_GT(analytic_model_flops(big, s, 1000, 5000),
            analytic_model_flops(small, s, 1000, 5000));
}

TEST_F(EstimatorFixture, RandomConfigsAreValidAndDiverse) {
  Rng rng(99);
  bool saw_cache = false;
  bool saw_no_cache = false;
  bool saw_saint = false;
  for (int i = 0; i < 60; ++i) {
    const auto c = random_config(rng);
    EXPECT_NO_THROW(c.validate());
    saw_cache |= c.cache_ratio > 0.0;
    saw_no_cache |= c.cache_ratio == 0.0;
    saw_saint |= c.sampler == sampling::SamplerKind::kSaintWalk;
  }
  EXPECT_TRUE(saw_cache);
  EXPECT_TRUE(saw_no_cache);
  EXPECT_TRUE(saw_saint);
}

TEST_F(EstimatorFixture, CorpusIsPopulated) {
  ASSERT_EQ(corpus_->size(), 48u);
  for (const auto& run : *corpus_) {
    EXPECT_GT(run.report.epoch_time_s, 0.0);
    EXPECT_GT(run.report.peak_memory_gb, 0.0);
    EXPECT_GT(run.report.avg_batch_nodes, 0.0);
  }
}

TEST_F(EstimatorFixture, GrayBoxBatchModelBeatsBlackBoxOutOfSample) {
  GrayBoxBatchSizeEstimator gray;
  BlackBoxBatchSizeEstimator black;
  gray.fit(*corpus_);
  black.fit(*corpus_);
  std::vector<double> y_true;
  std::vector<double> y_gray;
  std::vector<double> y_black;
  for (const auto& run : *cross_holdout_) {
    y_true.push_back(run.report.avg_batch_nodes);
    y_gray.push_back(gray.predict(run.config, run.stats, *hw_));
    y_black.push_back(black.predict(run.config, run.stats, *hw_));
  }
  const double r2_gray = ml::r2_score(y_true, y_gray);
  const double r2_black = ml::r2_score(y_true, y_black);
  // Fig. 5's claim: the analytic core makes the gray box far more
  // faithful out of sample. On a graph never profiled, the black box has
  // nothing to anchor its dataset features and falls apart (r2 <= 0 in
  // practice), while Eq. 12's analytic skeleton transfers.
  EXPECT_GT(r2_gray, 0.75);
  EXPECT_GE(r2_gray, r2_black - 0.05);
}

TEST_F(EstimatorFixture, PredictBeforeFitThrows) {
  GrayBoxBatchSizeEstimator gray;
  EXPECT_THROW(
      gray.predict(runtime::template_pyg(), *stats_, *hw_), Error);
  PerfEstimator est(*hw_);
  EXPECT_THROW(est.predict(runtime::template_pyg(), *stats_), Error);
  EXPECT_THROW(est.fit({}), Error);
}

TEST_F(EstimatorFixture, CorpusRoundTripsThroughCsv) {
  const std::string path = "test_corpus_roundtrip.csv";
  save_corpus(*corpus_, path);
  const auto loaded = load_corpus(path);
  ASSERT_EQ(loaded.size(), corpus_->size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_TRUE(loaded[i].config == (*corpus_)[i].config);
    EXPECT_DOUBLE_EQ(loaded[i].report.epoch_time_s,
                     (*corpus_)[i].report.epoch_time_s);
    EXPECT_DOUBLE_EQ(loaded[i].report.test_accuracy,
                     (*corpus_)[i].report.test_accuracy);
    EXPECT_EQ(loaded[i].stats.name, (*corpus_)[i].stats.name);
    EXPECT_DOUBLE_EQ(loaded[i].stats.real_volume_scale,
                     (*corpus_)[i].stats.real_volume_scale);
    // Executor overlap columns (f_overlapping fitting data) round-trip,
    // including the v2 executor-config and stall columns — and the
    // sync/async split survives, so OverlapModel eligibility is
    // identical before and after the round-trip.
    const auto& pl = loaded[i].report.pipeline;
    const auto& po = (*corpus_)[i].report.pipeline;
    EXPECT_DOUBLE_EQ(pl.modeled_sequential_s, po.modeled_sequential_s);
    EXPECT_DOUBLE_EQ(pl.measured_wall_s, po.measured_wall_s);
    EXPECT_EQ(pl.executor, po.executor);
    EXPECT_EQ(pl.prefetch_depth, po.prefetch_depth);
    EXPECT_EQ(pl.sampler_workers, po.sampler_workers);
    EXPECT_EQ(pl.push_stalls, po.push_stalls);
    EXPECT_EQ(pl.pop_stalls, po.pop_stalls);
    EXPECT_DOUBLE_EQ(pl.mean_queue_occupancy, po.mean_queue_occupancy);
    EXPECT_EQ(OverlapModel::row_eligible(loaded[i]),
              OverlapModel::row_eligible((*corpus_)[i]));
    // v3: the compute-backend id survives the round-trip (blank cells
    // would fit as the factory default, but the collector always stamps
    // the resolved id).
    EXPECT_EQ(loaded[i].report.backend_id, (*corpus_)[i].report.backend_id);
    EXPECT_FALSE(loaded[i].report.backend_id.empty());
    // NaN-free contract: every wall/stall cell parses to a finite value
    // (sync rows included — their zeros are legitimate data).
    EXPECT_TRUE(std::isfinite(pl.sample_wall_s));
    EXPECT_TRUE(std::isfinite(pl.transfer_wall_s));
    EXPECT_TRUE(std::isfinite(pl.compute_wall_s));
    EXPECT_TRUE(std::isfinite(pl.measured_wall_s));
    EXPECT_TRUE(std::isfinite(pl.mean_queue_occupancy));
  }
  // The profiled corpus genuinely contains both executors (the async
  // fraction the collector schedules), so the overlap model can fit
  // from a reloaded file alone.
  bool saw_async = false;
  bool saw_sync = false;
  for (const auto& run : loaded) {
    saw_async |= run.report.pipeline.executor == "async";
    saw_sync |= run.report.pipeline.executor == "sync";
  }
  EXPECT_TRUE(saw_async);
  EXPECT_TRUE(saw_sync);
  // A loaded corpus must be usable for fitting.
  PerfEstimator est(*hw_);
  EXPECT_NO_THROW(est.fit(loaded));
  EXPECT_TRUE(est.overlap_model().is_fitted());
  std::remove(path.c_str());
  EXPECT_THROW(load_corpus("no-such-file.csv"), Error);
}

TEST_F(EstimatorFixture, LegacyV1CorpusMigratesWithSyncDefaults) {
  // Rewrite a v3 file into the PR 4-era v1 layout: no version line, the
  // legacy header, and neither executor nor backend cells in the rows.
  // Loading must succeed with the executor fields defaulted to sync rows
  // and the backend defaulted to cpu-blocked.
  const std::string v3_path = "test_corpus_v3.csv";
  const std::string v1_path = "test_corpus_v1.csv";
  save_corpus(*corpus_, v3_path);
  {
    std::ifstream in(v3_path);
    std::ofstream out(v1_path);
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));  // version
    ASSERT_TRUE(starts_with(line, "#"));
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));  // v3 header
    std::string header = line;
    const std::string post_v1_cols =
        "executor,prefetch_depth,sampler_workers,push_stalls,pop_stalls,"
        "mean_queue_occupancy,backend,";
    const auto at = header.find(post_v1_cols);
    ASSERT_NE(at, std::string::npos);
    out << header.erase(at, post_v1_cols.size()) << '\n';
    while (std::getline(in, line)) {
      const auto quote = line.find('"');
      ASSERT_NE(quote, std::string::npos);
      std::string scalars = line.substr(0, quote);
      auto cells = split(scalars, ',');
      ASSERT_EQ(cells.size(), 43u);  // 42 scalars + empty tail
      cells.erase(cells.begin() + 35, cells.begin() + 42);
      out << join(cells, ",") << line.substr(quote) << '\n';
    }
  }
  const auto migrated = load_corpus(v1_path);
  ASSERT_EQ(migrated.size(), corpus_->size());
  for (std::size_t i = 0; i < migrated.size(); ++i) {
    const auto& p = migrated[i].report.pipeline;
    EXPECT_EQ(p.executor, "sync");  // defaulted: v1 had no executor column
    EXPECT_EQ(p.push_stalls, 0u);
    EXPECT_FALSE(OverlapModel::row_eligible(migrated[i]));
    EXPECT_EQ(migrated[i].report.backend_id, "cpu-blocked");  // defaulted
    EXPECT_DOUBLE_EQ(migrated[i].report.epoch_time_s,
                     (*corpus_)[i].report.epoch_time_s);
    EXPECT_DOUBLE_EQ(migrated[i].report.pipeline.measured_wall_s,
                     (*corpus_)[i].report.pipeline.measured_wall_s);
  }
  // Migrated corpora still fit the estimator; the overlap model simply
  // stays on the analytic fallback (no async rows survived migration).
  PerfEstimator est(*hw_);
  EXPECT_NO_THROW(est.fit(migrated));
  EXPECT_FALSE(est.overlap_model().is_fitted());
  std::remove(v3_path.c_str());
  std::remove(v1_path.c_str());
}

TEST_F(EstimatorFixture, V2CorpusMigratesWithDefaultBackendAndV3RoundTrips) {
  // Part 1 — v2 migration: rewrite a v3 file into the v2 layout (v2
  // version token, no backend column) and load it. Every row must come
  // back with backend "cpu-blocked" — the factory default all pre-backend
  // runs executed on — with the executor columns intact.
  const std::string v3_path = "test_corpus_v3_mig.csv";
  const std::string v2_path = "test_corpus_v2_mig.csv";
  save_corpus(*corpus_, v3_path);
  {
    std::ifstream in(v3_path);
    std::ofstream out(v2_path);
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));  // version
    ASSERT_EQ(line, "# gnav-corpus-version 3");
    out << "# gnav-corpus-version 2\n";
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));  // v3 header
    std::string header = line;
    const std::string backend_col = "backend,";
    const auto at = header.find(backend_col);
    ASSERT_NE(at, std::string::npos);
    out << header.erase(at, backend_col.size()) << '\n';
    while (std::getline(in, line)) {
      const auto quote = line.find('"');
      ASSERT_NE(quote, std::string::npos);
      std::string scalars = line.substr(0, quote);
      auto cells = split(scalars, ',');
      ASSERT_EQ(cells.size(), 43u);  // 42 scalars + empty tail
      cells.erase(cells.begin() + 41);  // the backend cell
      out << join(cells, ",") << line.substr(quote) << '\n';
    }
  }
  const auto migrated = load_corpus(v2_path);
  ASSERT_EQ(migrated.size(), corpus_->size());
  for (std::size_t i = 0; i < migrated.size(); ++i) {
    EXPECT_EQ(migrated[i].report.backend_id, "cpu-blocked");
    EXPECT_EQ(migrated[i].report.pipeline.executor,
              (*corpus_)[i].report.pipeline.executor);
    EXPECT_EQ(OverlapModel::row_eligible(migrated[i]),
              OverlapModel::row_eligible((*corpus_)[i]));
    EXPECT_DOUBLE_EQ(migrated[i].report.epoch_time_s,
                     (*corpus_)[i].report.epoch_time_s);
  }
  // Part 2 — saving a migrated corpus upgrades it to v3, and non-default
  // backend ids survive the save/load cycle verbatim.
  std::vector<ProfiledRun> upgraded = migrated;
  for (std::size_t i = 0; i < upgraded.size(); ++i) {
    if (i % 2 == 1) upgraded[i].report.backend_id = "cpu-arena";
  }
  save_corpus(upgraded, v3_path);
  {
    std::ifstream check(v3_path);
    std::string first;
    ASSERT_TRUE(static_cast<bool>(std::getline(check, first)));
    EXPECT_EQ(first, "# gnav-corpus-version 3");
  }
  const auto reloaded = load_corpus(v3_path);
  ASSERT_EQ(reloaded.size(), upgraded.size());
  for (std::size_t i = 0; i < reloaded.size(); ++i) {
    EXPECT_EQ(reloaded[i].report.backend_id,
              i % 2 == 1 ? "cpu-arena" : "cpu-blocked");
  }
  std::remove(v3_path.c_str());
  std::remove(v2_path.c_str());
}

TEST_F(EstimatorFixture, HeaderMismatchNamesFileAndExpectation) {
  const std::string path = "test_corpus_badheader.csv";
  {
    std::ofstream out(path);
    out << "totally,unrelated,header\n1,2,3\n";
  }
  try {
    load_corpus(path);
    FAIL() << "expected a header-mismatch error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos)
        << "error must name the offending file: " << msg;
    EXPECT_NE(msg.find("expected"), std::string::npos) << msg;
    EXPECT_NE(msg.find("totally,unrelated,header"), std::string::npos)
        << "error must echo the found header: " << msg;
  }
  std::remove(path.c_str());
}

TEST_F(EstimatorFixture, PerfEstimatorInSampleQuality) {
  PerfEstimator est(*hw_);
  est.fit(*corpus_);
  std::vector<double> t_true, t_pred, m_true, m_pred, a_true, a_pred;
  for (const auto& run : *corpus_) {
    const PerfPrediction p = est.predict(run.config, run.stats);
    t_true.push_back(run.report.epoch_time_s);
    t_pred.push_back(p.time_s);
    m_true.push_back(run.report.peak_memory_gb);
    m_pred.push_back(p.memory_gb);
    a_true.push_back(run.report.test_accuracy);
    a_pred.push_back(p.accuracy);
  }
  EXPECT_GT(ml::r2_score(t_true, t_pred), 0.8);
  EXPECT_GT(ml::r2_score(m_true, m_pred), 0.8);
  EXPECT_LT(ml::mse(a_true, a_pred), 0.05);
}

TEST_F(EstimatorFixture, PerfEstimatorGeneralizesOutOfSample) {
  PerfEstimator est(*hw_);
  est.fit(*corpus_);
  std::vector<double> t_true, t_pred, m_true, m_pred;
  for (const auto& run : *holdout_) {
    const PerfPrediction p = est.predict(run.config, run.stats);
    t_true.push_back(run.report.epoch_time_s);
    t_pred.push_back(p.time_s);
    m_true.push_back(run.report.peak_memory_gb);
    m_pred.push_back(p.memory_gb);
  }
  // The fixture corpus is deliberately small (48 runs on one graph), so
  // expect directional generalization, not Table-2-grade precision.
  EXPECT_GT(ml::r2_score(t_true, t_pred), 0.3);
  EXPECT_GT(ml::r2_score(m_true, m_pred), 0.3);
}

TEST_F(EstimatorFixture, MoreCachePredictsLessTimeMoreMemory) {
  PerfEstimator est(*hw_);
  est.fit(*corpus_);
  // Evaluate the property at real dataset scale, where transfers are a
  // first-order cost (on the tiny fixture graph structure dominates and
  // caching is correctly predicted to be near-neutral).
  const DatasetStats stats =
      compute_dataset_stats(graph::load_dataset("reddit2"));
  runtime::TrainConfig none = runtime::template_pyg();
  runtime::TrainConfig full = runtime::template_pagraph_full();
  const auto p_none = est.predict(none, stats);
  const auto p_full = est.predict(full, stats);
  EXPECT_LT(p_full.time_s, p_none.time_s);
  EXPECT_GT(p_full.memory_gb, p_none.memory_gb);
  EXPECT_GT(p_full.cache_hit_rate, p_none.cache_hit_rate);
}

TEST_F(EstimatorFixture, AnalyticMemoryComponentsPositiveAndOrdered) {
  PerfEstimator est(*hw_);
  est.fit(*corpus_);
  const auto cfg = runtime::template_pagraph_full();
  const double model_gb = est.analytic_model_memory_gb(cfg, *stats_);
  const double cache_gb = est.analytic_cache_memory_gb(cfg, *stats_);
  EXPECT_GT(model_gb, 0.0);
  EXPECT_GT(cache_gb, 0.0);
  runtime::TrainConfig low = runtime::template_pagraph_low();
  EXPECT_GT(cache_gb, est.analytic_cache_memory_gb(low, *stats_));
}

TEST_F(EstimatorFixture, WhiteBoxTimeRespondsToHitRate) {
  PerfEstimator est(*hw_);
  est.fit(*corpus_);
  const auto cfg = runtime::template_pagraph_full();
  const double t_low_hit =
      est.predict_time_analytic(cfg, *stats_, 2000, 10000, 0.1);
  const double t_high_hit =
      est.predict_time_analytic(cfg, *stats_, 2000, 10000, 0.9);
  EXPECT_LT(t_high_hit, t_low_hit);
}

}  // namespace
}  // namespace gnav::estimator
