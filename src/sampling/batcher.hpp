// Partitions the training vertex set into per-iteration seed batches B_0^i
// (Algo. 1 line 1). A fresh shuffle per epoch reproduces PyG's
// NeighborLoader(shuffle=True) behavior.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "support/rng.hpp"

namespace gnav::sampling {

class SeedBatcher {
 public:
  SeedBatcher(std::vector<graph::NodeId> train_nodes,
              std::size_t batch_size);

  /// Number of mini-batches per epoch: ceil(|train| / batch_size)
  /// (the n_iter of Eq. 4).
  std::size_t batches_per_epoch() const;

  /// Reshuffles and returns the seed batches for one epoch.
  std::vector<std::vector<graph::NodeId>> epoch_batches(Rng& rng);

  std::size_t batch_size() const { return batch_size_; }
  std::size_t num_train_nodes() const { return train_nodes_.size(); }

 private:
  std::vector<graph::NodeId> train_nodes_;
  std::size_t batch_size_;
};

}  // namespace gnav::sampling
