// Phase-time and memory profiler — the reproduction's analogue of the
// PyTorch profiler the paper uses to measure T and Γ. Times are simulated
// seconds from the hardware cost model; memory is analytic bytes tracked
// against the device budget.
#pragma once

#include <cstdint>

#include "hw/cost_model.hpp"

namespace gnav::runtime {

struct PhaseBreakdown {
  double sample_s = 0.0;
  double transfer_s = 0.0;
  double replace_s = 0.0;
  double compute_s = 0.0;

  double total() const {
    return sample_s + transfer_s + replace_s + compute_s;
  }
};

class Profiler {
 public:
  /// Accumulates one iteration's phase times; wall time uses Eq. 4's
  /// pipeline overlap unless `pipelined` is false (sequential runtime).
  void record_iteration(const hw::IterationTimes& times,
                        bool pipelined = true);

  /// Tracks the device-memory high-water mark (bytes).
  void record_device_memory(double bytes);

  void reset_epoch();

  double epoch_wall_s() const { return epoch_wall_s_; }
  const PhaseBreakdown& epoch_phases() const { return epoch_phases_; }
  double peak_device_bytes() const { return peak_device_bytes_; }
  std::uint64_t iterations() const { return iterations_; }

 private:
  PhaseBreakdown epoch_phases_;
  double epoch_wall_s_ = 0.0;
  double peak_device_bytes_ = 0.0;
  std::uint64_t iterations_ = 0;
};

}  // namespace gnav::runtime
