// gnav::kernels — the sparse-aggregation kernel layer.
//
// Every GNN aggregation in this codebase (sum / mean / GCN-normalized /
// mean-transpose) is one weighted CSR SpMM:
//
//   Y[v] = dst_scale[v] * ( self_scale[v] * X[v]
//                           + sum_{u in N(v)} src_scale[u] * X[u] )
//
// with any of the three scale vectors optional. The layer ships two
// interchangeable implementations behind this single entry point:
//
//   kScalar  — the naive per-edge reference loop (one thread, row by row,
//              full feature width per neighbor). This is the semantic
//              ground truth the tests compare against.
//   kBlocked — the production kernel: feature-dim register tiling (each
//              output row accumulates in SIMD registers over 64/32-float
//              tiles and is written once per tile, instead of being
//              read-modify-written per edge), runtime ISA dispatch
//              (AVX2 → SSE2 → portable), degree binning that routes hub
//              rows through a single-pass streaming accumulator when the
//              feature dim needs multiple tiles, and an edge-balanced
//              fixed row partition executed on the thread pool with heavy
//              partitions scheduled first so power-law hub rows cannot
//              serialize a chunk.
//
// Determinism contract (enforced by test_kernels.cpp): for every (v, j)
// both implementations accumulate contributions in exactly the same order
// — self term first, then neighbors in CSR order, then the dst scale —
// so outputs are BIT-IDENTICAL between implementations and at any thread
// count. The golden-trace suite and the estimator corpus rely on this.
//
// Like nn/aggregate.hpp, the transpose-style uses (mean_transpose) assume
// the symmetric edge sets every sampler in this library emits.
#pragma once

#include <cstddef>
#include <string>

#include "graph/csr_graph.hpp"
#include "tensor/tensor.hpp"

namespace gnav::support {
class ThreadPool;
}

namespace gnav::kernels {

enum class SpmmImpl {
  kScalar,
  kBlocked,
};

std::string to_string(SpmmImpl impl);
/// Parses "scalar" / "blocked"; throws gnav::Error on anything else.
SpmmImpl spmm_impl_from_string(const std::string& name);

/// Process-wide default implementation. Initialized once from the
/// GNAV_SPMM_IMPL environment variable ("scalar" or "blocked") and
/// kBlocked otherwise; settable for A/B experiments.
///
/// Multi-tenant contract: this is a PROCESS-SETUP knob only. The slot is
/// a single atomic — concurrent jobs flipping it would nondeterministically
/// reselect each other's kernels. Once any concurrent work is in flight
/// (serve::JobScheduler lanes, profile collection, DSE scoring), kernel
/// selection must flow through RunOptions::spmm_impl, which the backend
/// pins per run — and per stage thread — with SpmmImplScope. The serve
/// layer never reads or writes this default (test_serve.cpp pins the
/// isolation with concurrent scalar-vs-blocked jobs under TSan).
SpmmImpl default_spmm_impl();
void set_default_spmm_impl(SpmmImpl impl);

/// Implementation the calling thread currently resolves to: the innermost
/// active SpmmImplScope on this thread, else the process-wide default.
SpmmImpl current_spmm_impl();

/// RAII thread-local override, used by the runtime backend (RunOptions)
/// and the A/B benchmarks. Thread-local so concurrent backend runs on
/// pool workers cannot race each other's selection.
class SpmmImplScope {
 public:
  explicit SpmmImplScope(SpmmImpl impl);
  ~SpmmImplScope();
  SpmmImplScope(const SpmmImplScope&) = delete;
  SpmmImplScope& operator=(const SpmmImplScope&) = delete;

 private:
  SpmmImpl prev_;
  bool prev_active_;
};

/// SIMD tier of the blocked implementation. kAuto resolves to the widest
/// ISA the CPU supports (AVX2 on most x86-64, SSE2 otherwise, portable
/// C++ elsewhere). The lower tiers exist so tests can prove every code
/// path bit-identical on whatever machine they run on — all tiers
/// produce identical bits by construction.
enum class SpmmSimdTier {
  kPortable,
  kSse,
  kAuto,
};

/// Process-wide cap on the blocked kernel's SIMD tier (testing and
/// diagnostics; kAuto is the production default). Tiers above what the
/// CPU supports clamp down.
void set_spmm_simd_tier(SpmmSimdTier tier);
SpmmSimdTier spmm_simd_tier();

/// Optional per-vertex scale vectors (length num_nodes each, or null):
///   src_scale  — weight applied to each gathered neighbor row,
///   dst_scale  — post-sum scale of the output row,
///   self_scale — adds self_scale[v] * X[v] before the neighbor sum.
struct SpmmScales {
  const float* src_scale = nullptr;
  const float* dst_scale = nullptr;
  const float* self_scale = nullptr;
};

/// Y = weighted-SpMM(g, X). `y` must have X's shape and is overwritten;
/// it must not alias `x`. `pool` is used only by kBlocked (null selects
/// the global pool; inside a pool worker the kernel runs inline).
void spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
          tensor::Tensor& y, const SpmmScales& scales, SpmmImpl impl,
          support::ThreadPool* pool = nullptr);

/// Allocating convenience using current_spmm_impl().
tensor::Tensor spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
                    const SpmmScales& scales,
                    support::ThreadPool* pool = nullptr);

}  // namespace gnav::kernels
