// Known-bad: arbitrary user code runs while a support::Mutex is held —
// virtual dispatch, std::function callbacks, raw function pointers, and
// BackendFactory::create are each one re-entrant call away from
// self-deadlock (the factory-creator and log-sink bug class).
#include "gnav_stub.hpp"

struct Device {
  virtual ~Device();
  virtual void poll();
};

using Hook = void (*)();

void virtual_under_lock(Device& dev, gnav::support::Mutex& mu) {
  gnav::support::MutexLock lock(mu);
  dev.poll();  // expect-finding(lock-held-reentry)
}

void callback_under_lock(const std::function<void()>& notify,
                         gnav::support::Mutex& mu) {
  gnav::support::MutexLock lock(mu);
  notify();  // expect-finding(lock-held-reentry)
}

void pointer_under_lock(Hook hook, gnav::support::Mutex& mu) {
  gnav::support::MutexLock lock(mu);
  hook();  // expect-finding(lock-held-reentry)
}

void factory_under_lock(gnav::support::Mutex& mu) {
  gnav::support::MutexLock lock(mu);
  gnav::compute::BackendFactory::create("x");  // expect-finding(lock-held-reentry)
}
