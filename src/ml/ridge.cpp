#include "ml/ridge.hpp"

#include <cmath>

#include "support/error.hpp"

namespace gnav::ml {

RidgeRegressor::RidgeRegressor(double lambda) : lambda_(lambda) {
  GNAV_CHECK(lambda >= 0.0, "lambda must be non-negative");
}

void RidgeRegressor::fit(const Matrix& x, const std::vector<double>& y) {
  GNAV_CHECK(!x.empty() && x.size() == y.size(), "bad training data");
  const std::size_t n = x.size();
  const std::size_t d = x[0].size();

  // Center y and each column, so the intercept falls out.
  std::vector<double> col_mean(d, 0.0);
  double y_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    GNAV_CHECK(x[i].size() == d, "ragged design matrix");
    for (std::size_t j = 0; j < d; ++j) col_mean[j] += x[i][j];
    y_mean += y[i];
  }
  for (double& m : col_mean) m /= static_cast<double>(n);
  y_mean /= static_cast<double>(n);

  // A = X^T X + lambda I (on centered X), b = X^T y.
  std::vector<std::vector<double>> a(d, std::vector<double>(d, 0.0));
  std::vector<double> b(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double xj = x[i][j] - col_mean[j];
      b[j] += xj * (y[i] - y_mean);
      for (std::size_t k = j; k < d; ++k) {
        a[j][k] += xj * (x[i][k] - col_mean[k]);
      }
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    a[j][j] += lambda_;
    for (std::size_t k = 0; k < j; ++k) a[j][k] = a[k][j];
  }

  // Cholesky: A = L L^T. Ridge regularization keeps A positive definite.
  std::vector<std::vector<double>> l(d, std::vector<double>(d, 0.0));
  for (std::size_t j = 0; j < d; ++j) {
    double diag = a[j][j];
    for (std::size_t k = 0; k < j; ++k) diag -= l[j][k] * l[j][k];
    GNAV_CHECK(diag > 1e-14, "matrix not positive definite (raise lambda)");
    l[j][j] = std::sqrt(diag);
    for (std::size_t i = j + 1; i < d; ++i) {
      double s = a[i][j];
      for (std::size_t k = 0; k < j; ++k) s -= l[i][k] * l[j][k];
      l[i][j] = s / l[j][j];
    }
  }
  // Solve L z = b, then L^T w = z.
  std::vector<double> z(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l[i][k] * z[k];
    z[i] = s / l[i][i];
  }
  coef_.assign(d, 0.0);
  for (std::size_t ii = d; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = ii + 1; k < d; ++k) s -= l[k][ii] * coef_[k];
    coef_[ii] = s / l[ii][ii];
  }
  intercept_ = y_mean;
  for (std::size_t j = 0; j < d; ++j) intercept_ -= coef_[j] * col_mean[j];
  fitted_ = true;
}

double RidgeRegressor::predict_one(const std::vector<double>& x) const {
  GNAV_CHECK(is_fitted(), "predict before fit");
  GNAV_CHECK(x.size() == coef_.size(), "feature width mismatch");
  double out = intercept_;
  for (std::size_t j = 0; j < x.size(); ++j) out += coef_[j] * x[j];
  return out;
}

}  // namespace gnav::ml
