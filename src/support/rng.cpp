#include "support/rng.hpp"

#include <cmath>
#include <unordered_set>

#include "support/error.hpp"

namespace gnav {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Use the top 53 bits for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  GNAV_CHECK(n > 0, "uniform_index requires n > 0");
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GNAV_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586;
  spare_normal_ = mag * std::sin(kTwoPi * u2);
  has_spare_ = true;
  return mag * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::int64_t> Rng::sample_without_replacement(std::int64_t n,
                                                          std::int64_t k) {
  GNAV_CHECK(n >= 0 && k >= 0, "negative arguments");
  std::vector<std::int64_t> out;
  if (k >= n) {
    out.resize(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = i;
    return out;
  }
  // Robert Floyd's sampling algorithm: k iterations, O(k) memory.
  std::unordered_set<std::int64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  for (std::int64_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::int64_t>(
        uniform_index(static_cast<std::uint64_t>(j) + 1));
    if (chosen.contains(t)) {
      chosen.insert(j);
      out.push_back(j);
    } else {
      chosen.insert(t);
      out.push_back(t);
    }
  }
  return out;
}

std::size_t Rng::sample_cumulative(const std::vector<double>& cumulative) {
  GNAV_CHECK(!cumulative.empty(), "empty cumulative weights");
  const double total = cumulative.back();
  // Explicit zero-mass guard (also rejects NaN totals): with every weight
  // zero there is no distribution to draw from; callers that want a
  // uniform fallback should use AliasTable / TwoGroupDraw instead.
  GNAV_CHECK(total > 0.0,
             "sample_cumulative: zero total mass (all weights zero?)");
  const double x = uniform() * total;
  // Binary search for the first cumulative value exceeding x.
  std::size_t lo = 0;
  std::size_t hi = cumulative.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cumulative[mid] > x) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xA02BDBF7BB3C0A7ULL); }

}  // namespace gnav
