#include "obs/export.hpp"

#include <exception>
#include <fstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"

namespace gnav::obs {

ExportScope::ExportScope(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (!trace_path_.empty()) set_tracing_enabled(true);
  if (!metrics_path_.empty()) set_metrics_enabled(true);
}

ExportScope::~ExportScope() {
  try {
    if (!trace_path_.empty()) {
      // Stop recording first so the drain sees quiescent buffers.
      set_tracing_enabled(false);
      std::ofstream out(trace_path_);
      if (!out) {
        log_warn("cannot open trace output '", trace_path_, "'");
      } else {
        write_chrome_trace(out);
        log_info("trace written to ", trace_path_, " (",
                 trace_recorded_spans(), " spans, ", trace_dropped_spans(),
                 " dropped)");
      }
    }
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (!out) {
        log_warn("cannot open metrics output '", metrics_path_, "'");
      } else {
        MetricsRegistry::global().write_prometheus(out);
        log_info("metrics written to ", metrics_path_, " (",
                 MetricsRegistry::global().series_count(), " series)");
      }
    }
  } catch (const std::exception& e) {
    log_warn("telemetry export failed: ", e.what());
  }
}

}  // namespace gnav::obs
