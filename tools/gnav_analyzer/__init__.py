"""gnav_analyzer — AST-accurate project checks over the compile database.

The regex lint (tools/determinism_lint.py) can see tokens; this package
sees scopes, lock extents, and types. It drives libclang (clang.cindex)
over the exported compile database and enforces the repo's concurrency
and determinism contracts as named checks. Each check encodes a bug
class a past PR fixed by hand:

  tls-scope-pinning      fresh std::thread bodies that reach kernel code
                         must pin a BackendScope/SpmmImplScope first
                         (TLS does not inherit across threads).
  guarded-ref-escape     public methods of capability classes must not
                         return references/pointers into GNAV_GUARDED_BY
                         fields (AST successor to the regex rule).
  lock-held-reentry      no virtual dispatch, user callback
                         (std::function / function pointer), or
                         BackendFactory::create while a support::Mutex
                         is held — the factory self-deadlock class.
  rng-stream-discipline  no outer-Rng references or Rng copies inside
                         parallel_for/submit bodies; per-task streams
                         come from task_seed.
  unordered-iteration    no range-for over unordered containers
                         (hash-order leaks into results).

Escape hatches: an inline `// gnav-analyzer(<check>): <reason>` on the
flagged line (or the line directly above), or an entry in
tools/gnav_analyzer/ALLOWLIST — both REQUIRE a justification.

This module and the plumbing (compiledb, suppress, report) import
without libclang; only engine/checks need clang.cindex. The CLI exits
77 (ctest SKIP) when libclang is unavailable.
"""

__version__ = "1.0.0"

# Check metadata lives here — cindex-free — so report writers and the
# plumbing tests can enumerate rules without libclang installed. The
# implementations in checks.py must cover exactly these names
# (engine.run asserts the two sets match).
CHECK_DESCRIPTIONS = {
    "tls-scope-pinning": (
        "std::thread body reaches kernel code without constructing a "
        "BackendScope/SpmmImplScope first; fresh threads inherit no "
        "thread-local backend selection."
    ),
    "guarded-ref-escape": (
        "public method of a capability class returns a reference or "
        "pointer into a GNAV_GUARDED_BY field — a live alias the next "
        "locked mutation rewrites under the caller."
    ),
    "lock-held-reentry": (
        "virtual dispatch, user callback (std::function or function "
        "pointer), or BackendFactory::create invoked while a "
        "support::Mutex is held — arbitrary code under a lock can "
        "re-enter and self-deadlock."
    ),
    "rng-stream-discipline": (
        "parallel_for/submit body references an Rng declared outside "
        "the task or copies one; per-task streams must be constructed "
        "from task_seed so results are schedule-independent."
    ),
    "unordered-iteration": (
        "range-for over an unordered container; iteration is hash-order "
        "and leaks nondeterminism into anything order-sensitive."
    ),
}

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_CONFIG_ERROR = 2
EXIT_SKIP = 77  # matches the ctest SKIP_RETURN_CODE property
