// GNN convolution layers with manual forward/backward (no autograd tape —
// each layer caches exactly the activations its backward pass needs).
//
// Supported convs mirror the paper's evaluated models: GCNConv (Kipf &
// Welling), SAGEConv with mean aggregation (GraphSAGE), and GATConv
// (single attention head per instance; multi-head models stack instances
// and concatenate — see GnnModel).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "nn/parameter.hpp"
#include "tensor/tensor.hpp"

namespace gnav::nn {

/// Interface for one graph convolution. Call forward() before backward();
/// backward() consumes the cached activations of the *latest* forward.
class GraphConv {
 public:
  virtual ~GraphConv() = default;

  /// H = conv(G, X). X: [num_nodes x in_dim] -> [num_nodes x out_dim].
  virtual tensor::Tensor forward(const graph::CsrGraph& g,
                                 const tensor::Tensor& x) = 0;

  /// Given dL/dH, accumulates parameter grads and returns dL/dX.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

  virtual std::vector<Parameter*> parameters() = 0;

  virtual std::size_t in_dim() const = 0;
  virtual std::size_t out_dim() const = 0;

  /// FLOPs of one forward pass for a batch with n nodes and m edges
  /// (used by the white-box part of the performance estimator).
  virtual double forward_flops(std::int64_t n, std::int64_t m) const = 0;
};

/// H = P_gcn (X W) + b, P_gcn the symmetric-normalized adjacency with
/// self-loops.
class GcnConv final : public GraphConv {
 public:
  GcnConv(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  tensor::Tensor forward(const graph::CsrGraph& g,
                         const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::size_t in_dim() const override { return weight_.value.rows(); }
  std::size_t out_dim() const override { return weight_.value.cols(); }
  double forward_flops(std::int64_t n, std::int64_t m) const override;

 private:
  Parameter weight_;
  Parameter bias_;
  const graph::CsrGraph* cached_graph_ = nullptr;
  tensor::Tensor cached_x_;
  // 1/sqrt(d+1) per vertex, computed in forward and reused by the
  // self-adjoint backward SpMM (kernels/spmm.hpp).
  std::vector<float> cached_norm_;
};

/// H = X W_self + mean_{u in N(v)} X_u W_neigh + b (GraphSAGE-mean).
class SageConv final : public GraphConv {
 public:
  SageConv(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  tensor::Tensor forward(const graph::CsrGraph& g,
                         const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::size_t in_dim() const override { return w_self_.value.rows(); }
  std::size_t out_dim() const override { return w_self_.value.cols(); }
  double forward_flops(std::int64_t n, std::int64_t m) const override;

 private:
  Parameter w_self_;
  Parameter w_neigh_;
  Parameter bias_;
  const graph::CsrGraph* cached_graph_ = nullptr;
  tensor::Tensor cached_x_;
  tensor::Tensor cached_mean_;  // mean-aggregated features
  // 1/deg per vertex: dst scale of the forward mean, src scale of the
  // backward transpose-mean scatter (same CSR — symmetric edge sets).
  std::vector<float> cached_inv_deg_;
};

/// Single-head graph attention (Velickovic et al.):
/// e_vu = LeakyReLU(a_l . z_v + a_r . z_u), z = X W,
/// alpha_v. = softmax_u(e_vu) over u in N(v) ∪ {v},
/// h_v = sum_u alpha_vu z_u + b.
class GatConv final : public GraphConv {
 public:
  GatConv(std::size_t in_dim, std::size_t out_dim, Rng& rng,
          float leaky_slope = 0.2f);

  tensor::Tensor forward(const graph::CsrGraph& g,
                         const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::size_t in_dim() const override { return weight_.value.rows(); }
  std::size_t out_dim() const override { return weight_.value.cols(); }
  double forward_flops(std::int64_t n, std::int64_t m) const override;

 private:
  Parameter weight_;
  Parameter attn_l_;  // [1 x out]
  Parameter attn_r_;  // [1 x out]
  Parameter bias_;
  float leaky_slope_;
  // forward caches
  const graph::CsrGraph* cached_graph_ = nullptr;
  tensor::Tensor cached_x_;
  tensor::Tensor cached_z_;
  std::vector<float> cached_scores_;  // pre-activation e per (v, slot)
  std::vector<float> cached_alpha_;   // post-softmax alpha per (v, slot)
  // slot layout per v: [neighbors..., self]; offsets into the two arrays
  std::vector<std::size_t> slot_offset_;
};

}  // namespace gnav::nn
