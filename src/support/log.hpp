// Minimal leveled logger.
//
// Benchmarks and the DSE explorer emit progress through this logger so
// tests can silence it globally. Thread-safe: the level is atomic; the
// sink is copied out under the logger's state mutex and invoked under a
// separate delivery mutex, so lines from thread-pool workers
// (support/parallel) never interleave mid-line, and user sink code
// never runs under the mutex set_log_sink() needs — a sink may log or
// swap sinks without deadlocking.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace gnav {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Where emitted lines go. The default (and what a null sink restores)
/// writes "[gnav LEVEL] msg\n" to stderr.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the process-wide sink (tests capture warnings with this;
/// pass nullptr to restore stderr). Each emit copies the installed sink
/// before calling it, so an in-flight delivery keeps its callable alive
/// across a concurrent swap; deliveries themselves are serialized, so a
/// sink never observes a half-written or interleaved message.
void set_log_sink(LogSink sink);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_emit(level, os.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace gnav
