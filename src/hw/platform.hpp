// Heterogeneous platform model — the simulated stand-in for the paper's
// CPU + {RTX 4090, A100, M90} testbeds (see DESIGN.md "Substitutions").
//
// The paper's cost model (Eq. 4-10) consumes hardware only through three
// abstractions: host sampling throughput, host-device link bandwidth, and
// device compute throughput / memory capacity. A HardwareProfile captures
// exactly those quantities; named presets approximate public spec sheets.
// "Manual constraints to simulate various scenarios" (Sec. 4.1) are
// expressed by shrinking device_memory_gb / bandwidth on a preset.
#pragma once

#include <string>
#include <vector>

namespace gnav::hw {

struct HostSpec {
  /// Neighbor-candidate scans per second the sampler sustains on the host
  /// (calibrated so scaled datasets land near paper-scale epoch times).
  double sample_throughput_per_s = 40e6;
  double memory_gb = 128.0;
  int cores = 32;
};

struct LinkSpec {
  /// Effective host->device copy bandwidth (PCIe/DMA), GB/s.
  double bandwidth_gbps = 12.0;
  /// Per-transfer fixed latency (driver + DMA setup), microseconds.
  double latency_us = 15.0;
};

struct DeviceSpec {
  /// Sustained training throughput for GNN kernels, GFLOP/s. Deliberately
  /// far below peak spec: sparse aggregation is memory-bound.
  double compute_gflops = 3000.0;
  double memory_gb = 24.0;
  /// Device-local memory rewrite bandwidth for cache updates, GB/s.
  double replace_bandwidth_gbps = 400.0;
};

struct HardwareProfile {
  std::string name = "default";
  HostSpec host;
  LinkSpec link;
  DeviceSpec device;

  /// Free device memory available for caching after reserving `used_gb`.
  double free_device_memory_gb(double used_gb) const;
};

/// Named presets: "rtx4090", "a100", "m90" (a mid-range datacenter card),
/// plus "constrained" (m90 with halved memory and link bandwidth — the
/// paper's resource-limited scenario for Pa-Low).
HardwareProfile make_profile(const std::string& name);

std::vector<std::string> profile_names();

}  // namespace gnav::hw
