#include "graph/partition.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "support/error.hpp"

namespace gnav::graph {

double Partitioning::edge_cut_fraction(const CsrGraph& g) const {
  if (g.num_edges() == 0) return 0.0;
  EdgeId cut = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (part_of[static_cast<std::size_t>(v)] !=
          part_of[static_cast<std::size_t>(u)]) {
        ++cut;
      }
    }
  }
  return static_cast<double>(cut) / static_cast<double>(g.num_edges());
}

void Partitioning::validate(const CsrGraph& g) const {
  GNAV_CHECK(part_of.size() == static_cast<std::size_t>(g.num_nodes()),
             "part_of size mismatch");
  GNAV_CHECK(static_cast<int>(members.size()) == num_parts,
             "members size mismatch");
  std::size_t total = 0;
  for (int p = 0; p < num_parts; ++p) {
    for (NodeId v : members[static_cast<std::size_t>(p)]) {
      GNAV_CHECK(g.contains(v), "partition member out of range");
      GNAV_CHECK(part_of[static_cast<std::size_t>(v)] == p,
                 "part_of/members disagree");
    }
    total += members[static_cast<std::size_t>(p)].size();
  }
  GNAV_CHECK(total == static_cast<std::size_t>(g.num_nodes()),
             "partition does not cover the vertex set");
}

Partitioning bfs_partition(const CsrGraph& g, int num_parts) {
  GNAV_CHECK(num_parts >= 1, "need at least one part");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  GNAV_CHECK(n >= static_cast<std::size_t>(num_parts),
             "more parts than vertices");
  Partitioning part;
  part.num_parts = num_parts;
  part.part_of.assign(n, -1);
  part.members.resize(static_cast<std::size_t>(num_parts));

  // Per-part size cap at 1.5x the average keeps parts balanced even when
  // one BFS region would otherwise swallow the giant component.
  const std::size_t cap = std::max<std::size_t>(
      1, (n * 3) / (2 * static_cast<std::size_t>(num_parts)));

  // Seed parts from the highest-degree unassigned vertices.
  std::vector<NodeId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), NodeId{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](NodeId a, NodeId b) {
                     return g.degree(a) > g.degree(b);
                   });

  std::size_t seed_cursor = 0;
  auto next_unassigned_seed = [&]() -> NodeId {
    while (seed_cursor < n &&
           part.part_of[static_cast<std::size_t>(
               by_degree[seed_cursor])] != -1) {
      ++seed_cursor;
    }
    return seed_cursor < n ? by_degree[seed_cursor] : NodeId{-1};
  };

  std::deque<NodeId> frontier;
  while (true) {
    const NodeId seed = next_unassigned_seed();
    if (seed < 0) break;
    // Grow the currently smallest part — keeps sizes tight even when the
    // BFS regions are lopsided or the graph is disconnected.
    int current = 0;
    for (int pnum = 1; pnum < num_parts; ++pnum) {
      if (part.members[static_cast<std::size_t>(pnum)].size() <
          part.members[static_cast<std::size_t>(current)].size()) {
        current = pnum;
      }
    }
    frontier.clear();
    frontier.push_back(seed);
    part.part_of[static_cast<std::size_t>(seed)] = current;
    part.members[static_cast<std::size_t>(current)].push_back(seed);
    while (!frontier.empty() &&
           part.members[static_cast<std::size_t>(current)].size() < cap) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      for (NodeId u : g.neighbors(v)) {
        if (part.part_of[static_cast<std::size_t>(u)] != -1) continue;
        if (part.members[static_cast<std::size_t>(current)].size() >= cap) {
          break;
        }
        part.part_of[static_cast<std::size_t>(u)] = current;
        part.members[static_cast<std::size_t>(current)].push_back(u);
        frontier.push_back(u);
      }
    }
  }
  for (auto& m : part.members) std::sort(m.begin(), m.end());
  part.validate(g);
  return part;
}

}  // namespace gnav::graph
