#include "nn/layers.hpp"

#include <cmath>

#include "compute/backend.hpp"
#include "nn/aggregate.hpp"
#include "support/error.hpp"
#include "tensor/ops.hpp"

namespace gnav::nn {

using tensor::Tensor;

// ---------------------------------------------------------------- GcnConv

GcnConv::GcnConv(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : weight_("gcn.weight", Tensor::glorot(in_dim, out_dim, rng)),
      bias_("gcn.bias", Tensor::zeros(1, out_dim)) {}

Tensor GcnConv::forward(const graph::CsrGraph& g, const Tensor& x) {
  GNAV_CHECK(x.cols() == in_dim(), "GcnConv input dim mismatch");
  cached_norm_ = gcn_norm_scales(g);
  cached_graph_ = &g;
  cached_x_ = x;
  Tensor z = tensor::matmul(x, weight_.value);
  Tensor h = compute::current_backend().spmm(
      g, z, gcn_spmm_scales(cached_norm_.data()));
  tensor::add_row_bias_inplace(h, bias_.value);
  return h;
}

Tensor GcnConv::backward(const Tensor& grad_out) {
  GNAV_CHECK(cached_graph_ != nullptr, "backward before forward");
  // H = P (X W) + b with P self-adjoint => dZ = P dH, reusing the cached
  // normalization vector from the forward pass.
  tensor::add_inplace(bias_.grad, tensor::column_sum(grad_out));
  Tensor dz = compute::current_backend().spmm(
      *cached_graph_, grad_out, gcn_spmm_scales(cached_norm_.data()));
  tensor::add_inplace(weight_.grad, tensor::matmul_at_b(cached_x_, dz));
  return tensor::matmul_a_bt(dz, weight_.value);
}

std::vector<Parameter*> GcnConv::parameters() { return {&weight_, &bias_}; }

double GcnConv::forward_flops(std::int64_t n, std::int64_t m) const {
  const auto nd = static_cast<double>(n);
  const auto md = static_cast<double>(m);
  const auto in = static_cast<double>(in_dim());
  const auto out = static_cast<double>(out_dim());
  // dense transform + sparse propagate (+ self loops) + bias
  return 2.0 * nd * in * out + 2.0 * (md + nd) * out + nd * out;
}

// --------------------------------------------------------------- SageConv

SageConv::SageConv(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : w_self_("sage.w_self", Tensor::glorot(in_dim, out_dim, rng)),
      w_neigh_("sage.w_neigh", Tensor::glorot(in_dim, out_dim, rng)),
      bias_("sage.bias", Tensor::zeros(1, out_dim)) {}

Tensor SageConv::forward(const graph::CsrGraph& g, const Tensor& x) {
  GNAV_CHECK(x.cols() == in_dim(), "SageConv input dim mismatch");
  cached_inv_deg_ = inverse_degree_scales(g);
  cached_graph_ = &g;
  cached_x_ = x;
  cached_mean_ = compute::current_backend().spmm(
      g, x, mean_spmm_scales(cached_inv_deg_.data()));
  Tensor h = tensor::matmul(x, w_self_.value);
  tensor::add_inplace(h, tensor::matmul(cached_mean_, w_neigh_.value));
  tensor::add_row_bias_inplace(h, bias_.value);
  return h;
}

Tensor SageConv::backward(const Tensor& grad_out) {
  GNAV_CHECK(cached_graph_ != nullptr, "backward before forward");
  tensor::add_inplace(bias_.grad, tensor::column_sum(grad_out));
  // Self path.
  tensor::add_inplace(w_self_.grad,
                      tensor::matmul_at_b(cached_x_, grad_out));
  Tensor dx = tensor::matmul_a_bt(grad_out, w_self_.value);
  // Neighbor path: H_n = mean(X) W_n.
  tensor::add_inplace(w_neigh_.grad,
                      tensor::matmul_at_b(cached_mean_, grad_out));
  Tensor dmean = tensor::matmul_a_bt(grad_out, w_neigh_.value);
  tensor::add_inplace(
      dx, compute::current_backend().spmm(
              *cached_graph_, dmean,
              mean_transpose_spmm_scales(cached_inv_deg_.data())));
  return dx;
}

std::vector<Parameter*> SageConv::parameters() {
  return {&w_self_, &w_neigh_, &bias_};
}

double SageConv::forward_flops(std::int64_t n, std::int64_t m) const {
  const auto nd = static_cast<double>(n);
  const auto md = static_cast<double>(m);
  const auto in = static_cast<double>(in_dim());
  const auto out = static_cast<double>(out_dim());
  // mean aggregation over inputs + two dense transforms + bias
  return 2.0 * md * in + 4.0 * nd * in * out + nd * out;
}

// ---------------------------------------------------------------- GatConv

GatConv::GatConv(std::size_t in_dim, std::size_t out_dim, Rng& rng,
                 float leaky_slope)
    : weight_("gat.weight", Tensor::glorot(in_dim, out_dim, rng)),
      attn_l_("gat.attn_l", Tensor::glorot(1, out_dim, rng)),
      attn_r_("gat.attn_r", Tensor::glorot(1, out_dim, rng)),
      bias_("gat.bias", Tensor::zeros(1, out_dim)),
      leaky_slope_(leaky_slope) {}

Tensor GatConv::forward(const graph::CsrGraph& g, const Tensor& x) {
  GNAV_CHECK(x.cols() == in_dim(), "GatConv input dim mismatch");
  cached_graph_ = &g;
  cached_x_ = x;
  cached_z_ = tensor::matmul(x, weight_.value);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const std::size_t d = out_dim();

  // Per-node attention projections p_v = z_v . a_l, q_v = z_v . a_r.
  std::vector<float> p(n, 0.0f);
  std::vector<float> q(n, 0.0f);
  for (std::size_t v = 0; v < n; ++v) {
    const float* zv = cached_z_.row(v);
    float pv = 0.0f;
    float qv = 0.0f;
    for (std::size_t j = 0; j < d; ++j) {
      pv += zv[j] * attn_l_.value.at(0, j);
      qv += zv[j] * attn_r_.value.at(0, j);
    }
    p[v] = pv;
    q[v] = qv;
  }

  // Slot layout: for each v, its |N(v)| neighbor slots then one self slot.
  slot_offset_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    slot_offset_[v + 1] =
        slot_offset_[v] +
        static_cast<std::size_t>(
            g.degree(static_cast<graph::NodeId>(v))) + 1;
  }
  cached_scores_.assign(slot_offset_[n], 0.0f);
  cached_alpha_.assign(slot_offset_[n], 0.0f);

  Tensor h(n, d);
  for (std::size_t v = 0; v < n; ++v) {
    const auto nb = g.neighbors(static_cast<graph::NodeId>(v));
    const std::size_t base = slot_offset_[v];
    const std::size_t cnt = nb.size() + 1;
    // scores (pre-activation cached for LeakyReLU backward)
    float mx = -1e30f;
    for (std::size_t s = 0; s < cnt; ++s) {
      const std::size_t u =
          (s < nb.size()) ? static_cast<std::size_t>(nb[s]) : v;
      const float raw = p[v] + q[u];
      cached_scores_[base + s] = raw;
      const float e = raw >= 0.0f ? raw : leaky_slope_ * raw;
      mx = std::max(mx, e);
      cached_alpha_[base + s] = e;  // temporarily hold activated score
    }
    float total = 0.0f;
    for (std::size_t s = 0; s < cnt; ++s) {
      cached_alpha_[base + s] = std::exp(cached_alpha_[base + s] - mx);
      total += cached_alpha_[base + s];
    }
    const float inv = 1.0f / std::max(total, 1e-20f);
    float* hv = h.row(v);
    for (std::size_t s = 0; s < cnt; ++s) {
      cached_alpha_[base + s] *= inv;
      const std::size_t u =
          (s < nb.size()) ? static_cast<std::size_t>(nb[s]) : v;
      const float a = cached_alpha_[base + s];
      const float* zu = cached_z_.row(u);
      for (std::size_t j = 0; j < d; ++j) hv[j] += a * zu[j];
    }
  }
  tensor::add_row_bias_inplace(h, bias_.value);
  return h;
}

Tensor GatConv::backward(const Tensor& grad_out) {
  GNAV_CHECK(cached_graph_ != nullptr, "backward before forward");
  const graph::CsrGraph& g = *cached_graph_;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const std::size_t d = out_dim();
  tensor::add_inplace(bias_.grad, tensor::column_sum(grad_out));

  Tensor dz(n, d);
  std::vector<float> dp(n, 0.0f);
  std::vector<float> dq(n, 0.0f);

  for (std::size_t v = 0; v < n; ++v) {
    const auto nb = g.neighbors(static_cast<graph::NodeId>(v));
    const std::size_t base = slot_offset_[v];
    const std::size_t cnt = nb.size() + 1;
    const float* dhv = grad_out.row(v);

    // dalpha_s = dh_v . z_u ; softmax backward needs the alpha-weighted sum.
    float weighted = 0.0f;
    std::vector<float> dalpha(cnt);
    for (std::size_t s = 0; s < cnt; ++s) {
      const std::size_t u =
          (s < nb.size()) ? static_cast<std::size_t>(nb[s]) : v;
      const float* zu = cached_z_.row(u);
      float da = 0.0f;
      for (std::size_t j = 0; j < d; ++j) da += dhv[j] * zu[j];
      dalpha[s] = da;
      weighted += cached_alpha_[base + s] * da;
    }
    for (std::size_t s = 0; s < cnt; ++s) {
      const std::size_t u =
          (s < nb.size()) ? static_cast<std::size_t>(nb[s]) : v;
      const float alpha = cached_alpha_[base + s];
      // combination-path gradient: dz_u += alpha * dh_v
      float* dzu = dz.row(u);
      for (std::size_t j = 0; j < d; ++j) dzu[j] += alpha * dhv[j];
      // attention-path gradient through softmax + LeakyReLU
      const float ds = alpha * (dalpha[s] - weighted);
      const float raw = cached_scores_[base + s];
      const float g_slope = raw >= 0.0f ? 1.0f : leaky_slope_;
      const float de = ds * g_slope;
      dp[v] += de;
      dq[u] += de;
    }
  }

  // dz += dp_v * a_l + dq_v * a_r ; da_l += sum_v dp_v z_v (same for a_r).
  for (std::size_t v = 0; v < n; ++v) {
    float* dzv = dz.row(v);
    const float* zv = cached_z_.row(v);
    for (std::size_t j = 0; j < d; ++j) {
      dzv[j] += dp[v] * attn_l_.value.at(0, j) +
                dq[v] * attn_r_.value.at(0, j);
      attn_l_.grad.at(0, j) += dp[v] * zv[j];
      attn_r_.grad.at(0, j) += dq[v] * zv[j];
    }
  }

  tensor::add_inplace(weight_.grad, tensor::matmul_at_b(cached_x_, dz));
  return tensor::matmul_a_bt(dz, weight_.value);
}

std::vector<Parameter*> GatConv::parameters() {
  return {&weight_, &attn_l_, &attn_r_, &bias_};
}

double GatConv::forward_flops(std::int64_t n, std::int64_t m) const {
  const auto nd = static_cast<double>(n);
  const auto md = static_cast<double>(m);
  const auto in = static_cast<double>(in_dim());
  const auto out = static_cast<double>(out_dim());
  // dense transform + projections + per-edge score/softmax/combine.
  // Production GAT deployments (and the paper's) run 8 attention heads;
  // this reproduction executes one head and cost-models all 8.
  constexpr double kCostHeads = 8.0;
  return kCostHeads *
         (2.0 * nd * in * out + 4.0 * nd * out + 8.0 * (md + nd) * out);
}

}  // namespace gnav::nn
