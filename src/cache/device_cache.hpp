// Device-side feature cache — the unified abstraction of the paper's
// transmission-strategy category (Sec. 3.2): free device memory holds
// feature rows of selected vertices; each mini-batch is split into a
// cached part (no transfer) and a miss part (transferred host->device),
// after which the cache updates per its policy.
//
// Policy templates:
//   kNone    — no cache; everything transfers (PyG behavior).
//   kStatic  — preload the top-`capacity` degree-ranked vertices, never
//              update (PaGraph's static computation-aware cache).
//   kLru/kFifo — classic dynamic replacement, backed by an intrusive
//              doubly-linked recency/insertion list: every touch and
//              eviction is O(1) rather than an O(capacity) scan.
//   kWeightedDegree — dynamic, but a resident vertex is only evicted for
//              a higher-degree one (degree-weighted admission). Backed by
//              a lazy min-heap keyed on (degree, insertion sequence), so
//              the admission probe and the eviction are one amortized
//              O(log capacity) heap access instead of two O(capacity)
//              scans per miss. Victims are identical to the scan-based
//              implementation (min degree, earliest-inserted on ties).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compute/backend.hpp"
#include "graph/csr_graph.hpp"
#include "support/thread_safety.hpp"

namespace gnav::obs {
class Counter;
}  // namespace gnav::obs

namespace gnav::cache {

enum class CachePolicy { kNone, kStatic, kLru, kFifo, kWeightedDegree };

/// Device-side bookkeeping per cached row: the resident-set index entry
/// (global vertex id → cache slot). Charged by the memory model (Eq. 9's
/// Γ_cache) on top of the feature payload, so a cache is never free even
/// when every cached row would otherwise have been staged.
inline constexpr double kIndexBytesPerRow = 8.0;

std::string to_string(CachePolicy policy);
CachePolicy cache_policy_from_string(const std::string& s);

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

struct LookupResult {
  std::size_t hits = 0;
  /// Vertices that must be fetched from the host this iteration.
  std::vector<graph::NodeId> misses;
  /// Vertices newly admitted to the cache (replaced stale entries) —
  /// |replaced| drives t_replace in Eq. 5.
  std::size_t replaced = 0;
  /// Vertices admitted this batch, in admission order, when device
  /// storage is attached (empty otherwise). The executor copies these
  /// rows into their slots after the lookup; admission order matters
  /// because a slot can be recycled within one batch — the last admit
  /// per slot is the current owner.
  std::vector<graph::NodeId> admitted;
};

// Threading model: the pipelined executor funnels every mutation
// (lookup_and_update, attach_storage, admitted-row fills) through one
// producer stage at a time, so the cache used to rely purely on that
// pipeline discipline. The mutex makes the discipline checkable: all
// bookkeeping is GNAV_GUARDED_BY(mu_), the hot per-row accessors demand
// the capability (callers take the lock once per batch via mutex(), not
// once per row), and the ONE deliberate unguarded surface — the
// residency bitmap that cache-aware samplers live-read — is called out
// below instead of being an unwritten convention.
class DeviceCache {
 public:
  /// `capacity` is the number of feature rows the device can hold
  /// (r * |V| in the paper's notation). Static policy preloads by degree.
  DeviceCache(CachePolicy policy, std::size_t capacity,
              const graph::CsrGraph& graph);
  ~DeviceCache();

  // Owns a device slab once storage is attached; never copied.
  DeviceCache(const DeviceCache&) = delete;
  DeviceCache& operator=(const DeviceCache&) = delete;

  /// The cache's capability, exposed so batch-granular callers can hold
  /// it across a run of slot_of/slot_row/resident_row calls instead of
  /// paying a lock per row (see runtime/backend.cpp's gather loops).
  // gnav-lint(mutable-ref-accessor): returns the capability itself, not
  // guarded state — the whole point is handing the lock to the caller.
  support::Mutex& mutex() const GNAV_RETURN_CAPABILITY(mu_) { return mu_; }

  /// Backs the cache with real device memory: a capacity × row_floats
  /// float slab drawn from `allocator` (the compute backend's device
  /// memory). Until this is called the cache is bookkeeping-only, which
  /// is what the estimator's cost model and most tests need. After it,
  /// every resident vertex owns a slot in the slab: LookupResult.admitted
  /// reports which rows the executor must stage into their slots, and
  /// resident_row() serves cached feature reads without touching host
  /// memory. Call at most once; vertices already resident (static
  /// preload) get slots assigned immediately — copy their rows next.
  void attach_storage(compute::DeviceAllocator& allocator,
                      std::size_t row_floats) GNAV_EXCLUDES(mu_);

  bool has_storage() const GNAV_EXCLUDES(mu_) {
    const support::MutexLock lock(mu_);
    return slab_ != nullptr;
  }
  std::size_t row_floats() const GNAV_EXCLUDES(mu_) {
    const support::MutexLock lock(mu_);
    return row_floats_;
  }
  /// Bytes of device memory held by the slab (0 before attach_storage).
  std::size_t storage_bytes() const GNAV_EXCLUDES(mu_) {
    const support::MutexLock lock(mu_);
    return slab_ != nullptr ? capacity_ * row_floats_ * sizeof(float) : 0;
  }

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  // Per-row accessors: REQUIRES the cache mutex rather than taking it —
  // they run O(batch) times per iteration and the executor already owns
  // a batch-scoped lock (MutexLock lock(cache.mutex())) around the
  // gather/fill loops.

  /// Slot of vertex v, or kNoSlot when v is not resident / no storage.
  std::size_t slot_of(graph::NodeId v) const GNAV_REQUIRES(mu_) {
    return slot_of_.empty() ? kNoSlot : slot_of_[static_cast<std::size_t>(v)];
  }

  float* slot_row(std::size_t slot) GNAV_REQUIRES(mu_) {
    return slab_ + slot * row_floats_;
  }
  const float* slot_row(std::size_t slot) const GNAV_REQUIRES(mu_) {
    return slab_ + slot * row_floats_;
  }

  /// Device row of a resident vertex, or nullptr when it has no slot.
  const float* resident_row(graph::NodeId v) const GNAV_REQUIRES(mu_) {
    const std::size_t slot = slot_of(v);
    return slot == kNoSlot ? nullptr : slot_row(slot);
  }
  float* resident_row(graph::NodeId v) GNAV_REQUIRES(mu_) {
    const std::size_t slot = slot_of(v);
    return slot == kNoSlot ? nullptr : slot_row(slot);
  }

  /// Processes one mini-batch worth of vertex ids: classifies hits vs
  /// misses and applies the update policy to the misses. O(batch) plus
  /// an amortized O(log capacity) heap access per wdeg admission.
  ///
  /// `sequence` is the ordered-admission contract: when >= 0 it must
  /// equal the number of batches this cache has already admitted. The
  /// pipelined epoch executor passes the running batch index so that a
  /// stage-reordering bug trips a loud error instead of silently skewing
  /// the hit/miss sequence; pass -1 (default) to opt out.
  LookupResult lookup_and_update(const std::vector<graph::NodeId>& batch,
                                 std::int64_t sequence = -1)
      GNAV_EXCLUDES(mu_);

  /// Batches admitted so far (the expected next `sequence`).
  std::uint64_t batches_applied() const GNAV_EXCLUDES(mu_) {
    const support::MutexLock lock(mu_);
    return batches_applied_;
  }

  CachePolicy policy() const { return policy_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t resident_count() const GNAV_EXCLUDES(mu_) {
    const support::MutexLock lock(mu_);
    return resident_count_;
  }
  /// By value: stats_ mutates on every lookup, and callers snapshot it
  /// (same hazard class as residency_version below).
  CacheStats stats() const GNAV_EXCLUDES(mu_) {
    const support::MutexLock lock(mu_);
    return stats_;
  }

  // Deliberately unguarded: `resident_` is the live-read surface of
  // cache-aware sampling. The sampler reads the bitmap WITHOUT the cache
  // mutex while choosing the next batch; the pipeline's stage chaining
  // (sample and prepare share one producer lane) is what orders those
  // reads against lookup_and_update's writes. Guarding them here would
  // put a lock acquisition inside the sampler's per-vertex loop for a
  // race the pipeline already excludes by construction.
  bool is_resident(graph::NodeId v) const {
    return resident_[static_cast<std::size_t>(v)] != 0;
  }

  /// Residency bitmap (size |V|) — handed to locality-aware samplers so
  /// cache-aware sampling (2PGraph) can prefer resident vertices. The
  /// reference aliases live cache state on purpose (see the unguarded
  /// note above); it is allowlisted in tools/determinism_lint.py rather
  /// than exempted silently.
  const std::vector<char>& residency_bitmap() const { return resident_; }  // gnav-lint(mutable-ref-accessor): documented live-read surface for cache-aware samplers

  /// Monotone counter bumped on every residency change. Samplers key
  /// cached weighted-draw structures on it to detect bitmap staleness
  /// without scanning it. Returned BY VALUE: this used to return
  /// `const std::uint64_t&`, and callers took the address to poll it
  /// later — a live alias into cache internals that silently outlived
  /// any reasoning about when residency changes. Pollers now receive a
  /// std::function provider (see sampling::SamplingBias::version).
  std::uint64_t residency_version() const GNAV_EXCLUDES(mu_) {
    const support::MutexLock lock(mu_);
    return version_;
  }

 private:
  /// Lazy-heap entry for the wdeg policy. Ordered by (degree, seq): the
  /// minimum is the lowest-degree resident, earliest-inserted on ties —
  /// exactly the victim the old linear scan chose.
  struct WdegEntry {
    graph::EdgeId degree = 0;
    std::uint64_t seq = 0;
    graph::NodeId vertex = 0;
  };

  /// std::push_heap/pop_heap build max-heaps; this "greater" comparator
  /// turns them into a min-heap on (degree, seq).
  static bool wdeg_greater(const WdegEntry& a, const WdegEntry& b) {
    return a.degree != b.degree ? a.degree > b.degree : a.seq > b.seq;
  }

  void insert_locked(graph::NodeId v, LookupResult& result)
      GNAV_REQUIRES(mu_);
  void evict_one_locked(LookupResult& result) GNAV_REQUIRES(mu_);
  void list_push_back_locked(graph::NodeId v) GNAV_REQUIRES(mu_);
  void list_unlink_locked(graph::NodeId v) GNAV_REQUIRES(mu_);
  /// Current wdeg victim candidate; pops stale heap entries on the way.
  graph::NodeId wdeg_min_locked() GNAV_REQUIRES(mu_);
  void wdeg_compact_locked() GNAV_REQUIRES(mu_);

  static constexpr graph::NodeId kNil = -1;

  mutable support::Mutex mu_;

  // Immutable after construction — readable lock-free.
  CachePolicy policy_;
  std::size_t capacity_;
  const graph::CsrGraph& graph_;

  // Metrics instruments (obs/), labeled by policy. Resolved once in the
  // constructor — pointers are immutable after construction and the
  // pointees are atomic, so the per-batch updates need no lock beyond
  // mu_ already being held.
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  obs::Counter* insertions_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;

  /// The deliberate unguarded surface (see is_resident above): written
  /// under mu_ by the eviction/insertion paths, live-read lock-free by
  /// cache-aware samplers under the pipeline's stage ordering.
  std::vector<char> resident_;

  std::size_t resident_count_ GNAV_GUARDED_BY(mu_) = 0;
  CacheStats stats_ GNAV_GUARDED_BY(mu_);
  std::uint64_t version_ GNAV_GUARDED_BY(mu_) = 0;
  std::uint64_t seq_counter_ GNAV_GUARDED_BY(mu_) = 0;
  std::uint64_t batches_applied_ GNAV_GUARDED_BY(mu_) = 0;

  // Intrusive list over vertex ids (LRU: recency order, FIFO: insertion
  // order; head = next eviction victim).
  std::vector<graph::NodeId> list_prev_ GNAV_GUARDED_BY(mu_);
  std::vector<graph::NodeId> list_next_ GNAV_GUARDED_BY(mu_);
  graph::NodeId list_head_ GNAV_GUARDED_BY(mu_) = kNil;
  graph::NodeId list_tail_ GNAV_GUARDED_BY(mu_) = kNil;

  // wdeg lazy min-heap + per-vertex insertion sequence used to detect
  // stale entries (a re-inserted vertex gets a fresh seq).
  std::vector<WdegEntry> wdeg_heap_ GNAV_GUARDED_BY(mu_);
  std::vector<std::uint64_t> insert_seq_ GNAV_GUARDED_BY(mu_);

  // Device storage (attach_storage): slab of capacity_ × row_floats_
  // floats from the backend's allocator, per-vertex slot index, and the
  // free-slot stack admissions draw from.
  compute::DeviceAllocator* allocator_ GNAV_GUARDED_BY(mu_) = nullptr;
  float* slab_ GNAV_GUARDED_BY(mu_) = nullptr;
  std::size_t row_floats_ GNAV_GUARDED_BY(mu_) = 0;
  std::vector<std::size_t> slot_of_ GNAV_GUARDED_BY(mu_);
  std::vector<std::size_t> free_slots_ GNAV_GUARDED_BY(mu_);
};

}  // namespace gnav::cache
