#include "runtime/profiler.hpp"

#include <algorithm>

namespace gnav::runtime {

void Profiler::record_iteration(const hw::IterationTimes& times,
                                bool pipelined) {
  epoch_phases_.sample_s += times.t_sample;
  epoch_phases_.transfer_s += times.t_transfer;
  epoch_phases_.replace_s += times.t_replace;
  epoch_phases_.compute_s += times.t_compute;
  epoch_wall_s_ += pipelined ? times.overlapped() : times.sequential();
  ++iterations_;
}

void Profiler::record_device_memory(double bytes) {
  peak_device_bytes_ = std::max(peak_device_bytes_, bytes);
}

void Profiler::reset_epoch() {
  epoch_phases_ = PhaseBreakdown{};
  epoch_wall_s_ = 0.0;
  iterations_ = 0;
}

}  // namespace gnav::runtime
