// Internal helpers shared by the sampler implementations to materialize
// MiniBatch objects. Not part of the public sampling API.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "sampling/minibatch.hpp"

namespace gnav::sampling::detail {

/// Builds a mini-batch from an explicit sampled edge list (global ids).
/// `ordered_nodes` lists every vertex that must appear (seeds first);
/// edges are relabeled to local ids and symmetrized.
MiniBatch build_from_edges(
    std::span<const graph::NodeId> seeds,
    const std::vector<graph::NodeId>& ordered_nodes,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& edges,
    double sampling_work);

/// Builds a mini-batch as the parent-induced subgraph over
/// `ordered_nodes` (seeds first).
MiniBatch build_induced(const graph::CsrGraph& parent,
                        std::span<const graph::NodeId> seeds,
                        const std::vector<graph::NodeId>& ordered_nodes,
                        double sampling_work);

/// Deduplicates `seeds` + `extra` into an ordered node list with seeds
/// occupying the first |seeds| positions.
std::vector<graph::NodeId> order_nodes(
    std::span<const graph::NodeId> seeds,
    const std::vector<graph::NodeId>& extra);

}  // namespace gnav::sampling::detail
