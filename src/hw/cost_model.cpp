#include "hw/cost_model.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gnav::hw {

double IterationTimes::overlapped() const {
  return std::max(t_sample + t_transfer, t_replace + t_compute);
}

double IterationTimes::sequential() const {
  return t_sample + t_transfer + t_replace + t_compute;
}

CostModel::CostModel(HardwareProfile profile) : profile_(std::move(profile)) {}

double CostModel::sample_time_s(double sampling_work) const {
  GNAV_CHECK(sampling_work >= 0.0, "negative sampling work");
  return sampling_work / profile_.host.sample_throughput_per_s;
}

double CostModel::transfer_time_s(double bytes) const {
  GNAV_CHECK(bytes >= 0.0, "negative transfer volume");
  if (bytes == 0.0) return 0.0;
  return profile_.link.latency_us * 1e-6 +
         bytes / (profile_.link.bandwidth_gbps * 1e9);
}

double CostModel::replace_time_s(double bytes) const {
  GNAV_CHECK(bytes >= 0.0, "negative replace volume");
  return bytes / (profile_.device.replace_bandwidth_gbps * 1e9);
}

double CostModel::compute_time_s(double flops) const {
  GNAV_CHECK(flops >= 0.0, "negative FLOPs");
  return flops / (profile_.device.compute_gflops * 1e9);
}

IterationTimes CostModel::iteration_times(
    const IterationVolumes& volumes) const {
  IterationTimes t;
  t.t_sample = sample_time_s(volumes.sampling_work);
  t.t_transfer = transfer_time_s(volumes.transfer_bytes);
  t.t_replace = replace_time_s(volumes.replace_bytes);
  t.t_compute = compute_time_s(volumes.compute_flops);
  return t;
}

void SimClock::advance(double seconds) {
  GNAV_CHECK(seconds >= 0.0, "cannot advance the clock backwards");
  now_s_ += seconds;
}

}  // namespace gnav::hw
