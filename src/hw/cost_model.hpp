// Phase-level timing model implementing the white-box skeleton of the
// paper's Eq. 4-8. The runtime backend feeds it measured per-iteration
// volumes (sampling work, transfer bytes, replace bytes, compute FLOPs)
// and gets back simulated seconds; Eq. 4's max() models host/device
// pipeline overlap (sampling+transfer of batch i+1 overlaps cache-update +
// compute of batch i).
#pragma once

#include <cstdint>

#include "hw/platform.hpp"

namespace gnav::hw {

/// Per-iteration phase volumes (the inputs of f_sample/f_transfer/...).
struct IterationVolumes {
  double sampling_work = 0.0;   // neighbor-candidate scans on the host
  double transfer_bytes = 0.0;  // miss features + subgraph structure
  double replace_bytes = 0.0;   // stale cache lines rewritten on device
  double compute_flops = 0.0;   // forward + backward FLOPs
};

/// Per-iteration phase times in seconds.
struct IterationTimes {
  double t_sample = 0.0;
  double t_transfer = 0.0;
  double t_replace = 0.0;
  double t_compute = 0.0;

  /// Eq. 4 inner term: host pipeline vs device pipeline overlap.
  double overlapped() const;
  /// Sequential (no-pipelining) execution, for the ablation bench.
  double sequential() const;
};

class CostModel {
 public:
  explicit CostModel(HardwareProfile profile);

  double sample_time_s(double sampling_work) const;
  double transfer_time_s(double bytes) const;
  double replace_time_s(double bytes) const;
  double compute_time_s(double flops) const;

  IterationTimes iteration_times(const IterationVolumes& volumes) const;

  const HardwareProfile& profile() const { return profile_; }

 private:
  HardwareProfile profile_;
};

/// Accumulates simulated time over the iterations of an epoch/run.
class SimClock {
 public:
  void advance(double seconds);
  double now_s() const { return now_s_; }
  void reset() { now_s_ = 0.0; }

 private:
  double now_s_ = 0.0;
};

}  // namespace gnav::hw
