#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace gnav::tensor {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 0.0f);
}

Tensor Tensor::ones(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 1.0f);
}

Tensor Tensor::glorot(std::size_t rows, std::size_t cols, Rng& rng) {
  GNAV_CHECK(rows > 0 && cols > 0, "glorot needs a non-empty shape");
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  return uniform(rows, cols, static_cast<float>(-limit),
                 static_cast<float>(limit), rng);
}

Tensor Tensor::uniform(std::size_t rows, std::size_t cols, float lo, float hi,
                       Rng& rng) {
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

void Tensor::fill(float v) {
  for (float& x : data_) x = v;
}

double Tensor::norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

double Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]";
  return os.str();
}

}  // namespace gnav::tensor
