// Quickstart: train a GraphSAGE model on the Reddit2 analogue with a
// hand-written configuration, then let GNNavigator generate a balanced
// guideline automatically and compare.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "navigator/navigator.hpp"

using namespace gnav;

namespace {
void print_report(const char* tag, const runtime::TrainReport& r) {
  std::printf("%-22s T=%6.2f s   Mem=%5.2f GB   test-acc=%5.2f%%   "
              "hit-rate=%4.1f%%\n",
              tag, r.epoch_time_s, r.peak_memory_gb,
              100.0 * r.test_accuracy, 100.0 * r.cache_hit_rate);
}
}  // namespace

int main() {
  // Step 1 — inputs: dataset, model spec, hardware platform.
  graph::Dataset dataset = graph::load_dataset("reddit2");
  hw::HardwareProfile gpu = hw::make_profile("rtx4090");
  dse::BaseSettings model;
  model.model = nn::ModelKind::kSage;
  model.num_layers = 2;

  navigator::GNNavigator nav(std::move(dataset), gpu, model);

  // Train with a manual configuration (this is what PyG users write).
  runtime::TrainConfig manual = runtime::template_pyg();
  print_report("manual (PyG-style):", nav.train(manual, /*epochs=*/4));

  // Step 2 — automatic guideline generation. prepare_default() profiles
  // the *other* registry datasets (leave-one-out) to train the gray-box
  // performance estimator, then the explorer searches the design space.
  std::printf("preparing estimator (profiles other datasets)...\n");
  nav.prepare_default(/*configs_per_dataset=*/12,
                      /*augmentation_graphs=*/1, /*profiling_epochs=*/1);

  dse::RuntimeConstraints constraints;
  constraints.max_memory_gb = gpu.device.memory_gb;  // fit on the card
  const navigator::Guideline guideline =
      nav.generate_guideline(dse::targets_balance(), constraints);

  std::printf("\ngenerated guideline:\n%s\n", guideline.text.c_str());
  std::printf("predicted: T=%.2f s, Mem=%.2f GB, Acc=%.2f%%\n\n",
              guideline.predicted.time_s, guideline.predicted.memory_gb,
              100.0 * guideline.predicted.accuracy);

  // Step 3 — train under the guideline and verify the actual performance.
  print_report("guideline (balance):", nav.train(guideline.config, 4));
  return 0;
}
