#include "runtime/train_config.hpp"

#include <sstream>

#include "support/error.hpp"

namespace gnav::runtime {

void TrainConfig::validate() const {
  GNAV_CHECK(!hop_list.empty(), "hop list must be non-empty");
  for (int k : hop_list) {
    GNAV_CHECK(k == -1 || (k >= 1 && k <= 512), "fanout out of range");
  }
  GNAV_CHECK(batch_size >= 1 && batch_size <= 1'000'000,
             "batch size out of range");
  GNAV_CHECK(bias_rate >= 0.0 && bias_rate <= 1.0,
             "bias rate must be in [0,1]");
  GNAV_CHECK(saint_budget_multiplier > 0.0,
             "saint budget multiplier must be positive");
  GNAV_CHECK(cache_ratio >= 0.0 && cache_ratio <= 1.0,
             "cache ratio must be in [0,1]");
  if (cache_policy == cache::CachePolicy::kNone) {
    GNAV_CHECK(cache_ratio == 0.0,
               "cache_ratio > 0 requires a cache policy");
    GNAV_CHECK(bias_rate == 0.0,
               "bias_rate > 0 requires a cache to bias toward");
  } else {
    GNAV_CHECK(cache_ratio > 0.0,
               "cache policy '" + cache::to_string(cache_policy) +
                   "' requires cache_ratio > 0");
  }
  GNAV_CHECK(hidden_dim >= 4 && hidden_dim <= 4096, "hidden dim out of range");
  GNAV_CHECK(num_layers >= 1 && num_layers <= 8, "layer count out of range");
  GNAV_CHECK(dropout >= 0.0f && dropout < 1.0f, "dropout must be in [0,1)");
  GNAV_CHECK(learning_rate > 0.0f && learning_rate <= 1.0f,
             "learning rate out of range");
}

ConfigMap TrainConfig::to_config_map() const {
  ConfigMap cm;
  cm.set("name", name);
  cm.set("sampler", sampling::to_string(sampler));
  cm.set_int_list("hoplist", hop_list);
  cm.set_int("batchsize", static_cast<long long>(batch_size));
  cm.set_double("biasrate", bias_rate);
  cm.set_double("saintbudget", saint_budget_multiplier);
  cm.set_double("cacheratio", cache_ratio);
  cm.set("cachepolicy", cache::to_string(cache_policy));
  cm.set("model", nn::to_string(model));
  cm.set_int("hiddendim", static_cast<long long>(hidden_dim));
  cm.set_int("numlayers", static_cast<long long>(num_layers));
  cm.set_double("dropout", dropout);
  cm.set_bool("reorder", reorder);
  cm.set_bool("compress", compress_features);
  cm.set_bool("pipeline", pipeline_overlap);
  cm.set_double("lr", learning_rate);
  return cm;
}

TrainConfig TrainConfig::from_config_map(const ConfigMap& cm) {
  TrainConfig c;
  c.name = cm.get_or("name", "custom");
  c.sampler = sampling::sampler_kind_from_string(cm.get("sampler"));
  c.hop_list = cm.get_int_list("hoplist");
  c.batch_size = static_cast<std::size_t>(cm.get_int("batchsize"));
  c.bias_rate = cm.get_double("biasrate");
  c.saint_budget_multiplier = cm.get_double_or("saintbudget", 8.0);
  c.cache_ratio = cm.get_double("cacheratio");
  c.cache_policy = cache::cache_policy_from_string(cm.get("cachepolicy"));
  c.model = nn::model_kind_from_string(cm.get("model"));
  c.hidden_dim = static_cast<std::size_t>(cm.get_int("hiddendim"));
  c.num_layers = static_cast<std::size_t>(cm.get_int("numlayers"));
  c.dropout = static_cast<float>(cm.get_double("dropout"));
  c.reorder = cm.get_bool("reorder");
  c.compress_features =
      cm.contains("compress") ? cm.get_bool("compress") : false;
  c.pipeline_overlap =
      cm.contains("pipeline") ? cm.get_bool("pipeline") : true;
  c.learning_rate = static_cast<float>(cm.get_double("lr"));
  c.validate();
  return c;
}

std::string TrainConfig::summary() const {
  std::ostringstream os;
  os << name << "{" << sampling::to_string(sampler) << ", B0="
     << batch_size << ", hops=[";
  for (std::size_t i = 0; i < hop_list.size(); ++i) {
    os << (i ? "," : "") << hop_list[i];
  }
  os << "], r=" << cache_ratio << "/" << cache::to_string(cache_policy)
     << ", bias=" << bias_rate << ", " << nn::to_string(model) << "-"
     << num_layers << "x" << hidden_dim << (reorder ? ", reorder" : "")
     << (compress_features ? ", int8" : "")
     << (pipeline_overlap ? "" : ", no-pipeline") << "}";
  return os.str();
}

bool TrainConfig::operator==(const TrainConfig& other) const {
  return sampler == other.sampler && hop_list == other.hop_list &&
         batch_size == other.batch_size && bias_rate == other.bias_rate &&
         saint_budget_multiplier == other.saint_budget_multiplier &&
         cache_ratio == other.cache_ratio &&
         cache_policy == other.cache_policy && model == other.model &&
         hidden_dim == other.hidden_dim && num_layers == other.num_layers &&
         dropout == other.dropout && reorder == other.reorder &&
         compress_features == other.compress_features &&
         pipeline_overlap == other.pipeline_overlap &&
         learning_rate == other.learning_rate;
}

}  // namespace gnav::runtime
