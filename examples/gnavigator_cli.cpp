// gnavigator_cli — command-line front end for the full workflow.
//
//   gnavigator_cli --dataset reddit2 --model sage --hw rtx4090
//                  --priority ex-tm --max-memory-gb 8 --epochs 4
//                  [--corpus corpus.csv] [--save-corpus corpus.csv]
//                  [--pipeline sync|async] [--pipeline-depth N]
//                  [--backend cpu-scalar|cpu-blocked|cpu-arena]
//                  [--serve-jobs N] [--serve-tenants N]
//                  [--trace-out trace.json] [--metrics-out metrics.prom]
//
// Runs Step 1 (input analysis), Step 2 (guideline generation — reusing a
// cached profiling corpus when --corpus is given), trains the baseline
// PyG configuration and the generated guideline, and prints both,
// including the epoch executor's measured stage/backpressure profile.
// --pipeline/--pipeline-depth select the epoch executor (equivalent to
// GNAV_PIPELINE / GNAV_PIPELINE_DEPTH).
//
// --serve-jobs N switches Step 3 into multi-tenant serving: N jobs
// alternating the guideline and the PyG baseline are priced with
// predict_pipelined_wall_s, admitted, and drained through
// serve::JobScheduler under fair-share scheduling with --serve-tenants
// (default 2) concurrently active jobs; per-job price/state and the
// aggregate jobs/min are printed.
//
// --trace-out FILE records every pipeline/cache/serve span of the whole
// invocation and writes Chrome trace-event JSON (load in Perfetto or
// chrome://tracing) at exit; --metrics-out FILE writes the Prometheus
// text exposition of the metrics registry. Either flag alone works.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "compute/backend.hpp"
#include "estimator/corpus_io.hpp"
#include "obs/export.hpp"
#include "serve/job_scheduler.hpp"
#include "support/error.hpp"
#include "navigator/navigator.hpp"
#include "support/string_utils.hpp"

using namespace gnav;

namespace {

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (!starts_with(key, "--")) {
      throw Error("expected --flag, got '" + key + "'");
    }
    key = key.substr(2);
    GNAV_CHECK(i + 1 < argc, "flag --" + key + " needs a value");
    args[key] = argv[++i];
  }
  return args;
}

dse::ExploreTargets priority_by_name(const std::string& name) {
  if (name == "balance" || name == "bal") return dse::targets_balance();
  if (name == "ex-tm") return dse::targets_extreme_time_memory();
  if (name == "ex-ma") return dse::targets_extreme_memory_accuracy();
  if (name == "ex-ta") return dse::targets_extreme_time_accuracy();
  throw Error("unknown priority '" + name +
              "' (balance | ex-tm | ex-ma | ex-ta)");
}

void print_report(const char* tag, const runtime::TrainReport& r) {
  std::printf("%-12s T=%7.2f s   Mem=%6.2f GB   test-acc=%6.2f%%   "
              "hit=%5.1f%%\n",
              tag, r.epoch_time_s, r.peak_memory_gb,
              100.0 * r.test_accuracy, 100.0 * r.cache_hit_rate);
  const runtime::PipelineReport& p = r.pipeline;
  std::printf("  executor=%s workers=%zu depth=%zu | stage wall s/t/c = "
              "%.3f/%.3f/%.3f s | stalls full=%llu empty=%llu | "
              "queue occ=%.2f\n",
              p.executor.c_str(), p.sampler_workers, p.prefetch_depth,
              p.sample_wall_s, p.transfer_wall_s, p.compute_wall_s,
              static_cast<unsigned long long>(p.push_stalls),
              static_cast<unsigned long long>(p.pop_stalls),
              p.mean_queue_occupancy);
  // Speedup ratios divide by the measured walls; a run that never
  // recorded them (e.g. a corpus row replayed from CSV, or a zero-batch
  // epoch) must not print a fake 1.00x.
  if (p.measured_wall_s > 0.0 && p.measured_sequential_s() > 0.0) {
    std::printf("  overlap: measured %.2fx (efficiency %.0f%%) vs Eq.4 "
                "predicted %.2fx\n",
                p.measured_speedup(), 100.0 * p.overlap_efficiency(),
                p.predicted_speedup());
  } else {
    std::printf("  overlap: n/a (no measured stage walls for this run)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto args = parse_args(argc, argv);
    const obs::ExportScope telemetry(
        args.contains("trace-out") ? args.at("trace-out") : "",
        args.contains("metrics-out") ? args.at("metrics-out") : "");
    const std::string dataset_name =
        args.contains("dataset") ? args.at("dataset") : "reddit2";
    const std::string hw_name =
        args.contains("hw") ? args.at("hw") : "rtx4090";
    const std::string model_name =
        args.contains("model") ? args.at("model") : "sage";
    const std::string priority_name =
        args.contains("priority") ? args.at("priority") : "balance";
    const int epochs = args.contains("epochs")
                           ? static_cast<int>(parse_int(args.at("epochs")))
                           : 4;
    // Executor flags are forwarded through the environment — the
    // navigator's RunOptions default from GNAV_PIPELINE*.
    if (args.contains("pipeline")) {
      runtime::pipeline_mode_from_string(args.at("pipeline"));  // validate
      ::setenv("GNAV_PIPELINE", args.at("pipeline").c_str(), 1);
    }
    if (args.contains("pipeline-depth")) {
      GNAV_CHECK(parse_int(args.at("pipeline-depth")) >= 1,
                 "--pipeline-depth must be >= 1");
      ::setenv("GNAV_PIPELINE_DEPTH", args.at("pipeline-depth").c_str(), 1);
    }
    // --backend picks the compute backend for everything below
    // (profiling, exploration, training, serving): the factory default
    // is set before any run starts, equivalent to GNAV_BACKEND but
    // validated with the factory's error message up front.
    if (args.contains("backend")) {
      compute::BackendFactory::set_default_id(args.at("backend"));
    }

    dse::BaseSettings base;
    base.model = nn::model_kind_from_string(model_name);
    navigator::GNNavigator nav(graph::load_dataset(dataset_name),
                               hw::make_profile(hw_name), base);
    std::printf("input analysis: %s\n",
                nav.dataset_stats().profile.to_string().c_str());

    // Estimator preparation, optionally from / to a cached corpus.
    if (args.contains("corpus")) {
      std::printf("loading profiling corpus from %s...\n",
                  args.at("corpus").c_str());
      nav.prepare(estimator::load_corpus(args.at("corpus")));
    } else {
      std::printf("profiling other datasets (leave-one-out)...\n");
      nav.prepare_default(/*configs_per_dataset=*/12,
                          /*augmentation_graphs=*/1,
                          /*profiling_epochs=*/1);
      if (args.contains("save-corpus")) {
        const auto corpus = estimator::collect_lodo_corpus(
            graph::dataset_names(), dataset_name, 1, nav.hardware(), {});
        estimator::save_corpus(corpus, args.at("save-corpus"));
        std::printf("corpus saved to %s\n", args.at("save-corpus").c_str());
      }
    }

    dse::RuntimeConstraints constraints;
    constraints.max_memory_gb =
        args.contains("max-memory-gb")
            ? parse_double(args.at("max-memory-gb"))
            : nav.hardware().device.memory_gb;
    if (args.contains("max-epoch-s")) {
      constraints.max_epoch_time_s = parse_double(args.at("max-epoch-s"));
    }
    if (args.contains("min-accuracy")) {
      constraints.min_accuracy = parse_double(args.at("min-accuracy"));
    }

    const auto guideline =
        nav.generate_guideline(priority_by_name(priority_name), constraints);
    std::printf("\ngenerated guideline (%s):\n%s\n", priority_name.c_str(),
                guideline.text.c_str());
    std::printf("explored %zu candidates, pruned %zu subtrees\n",
                guideline.exploration_stats.leaves_evaluated,
                guideline.exploration_stats.subtrees_pruned);
    const estimator::OverlapModel& om = nav.estimator().overlap_model();
    if (om.is_fitted()) {
      std::printf("gray-box overlap: fitted on %zu async corpus rows — "
                  "guideline wall ratio %.2f (Eq.4 analytic %.2f)\n\n",
                  om.training_rows(), guideline.predicted.overlap_ratio,
                  guideline.predicted.overlap_ratio_analytic);
    } else {
      std::printf("gray-box overlap: analytic Eq.4 fallback (corpus has "
                  "no async-executor rows)\n\n");
    }

    if (args.contains("serve-jobs")) {
      const auto n_jobs =
          static_cast<std::size_t>(parse_int(args.at("serve-jobs")));
      const auto tenants =
          args.contains("serve-tenants")
              ? static_cast<std::size_t>(parse_int(args.at("serve-tenants")))
              : 2;
      GNAV_CHECK(n_jobs >= 1, "--serve-jobs must be >= 1");
      GNAV_CHECK(tenants >= 1, "--serve-tenants must be >= 1");

      runtime::TrainConfig pyg = runtime::template_by_name("pyg");
      pyg.model = base.model;
      pyg.num_layers = base.num_layers;
      pyg.dropout = base.dropout;
      pyg.learning_rate = base.learning_rate;
      pyg.validate();

      serve::SchedulerOptions options;
      options.max_active = tenants;
      serve::JobScheduler sched(nav.backend(), nav.estimator_mut(),
                                nav.dataset_stats(), options);
      for (std::size_t i = 0; i < n_jobs; ++i) {
        serve::JobRequest req;
        req.tenant = "tenant-" + std::to_string(i % tenants);
        req.epochs = epochs;
        if (i % 2 == 0) {
          req.config = guideline.config;
          req.pipeline.mode = runtime::PipelineMode::kAsync;
          req.pipeline.prefetch_depth = 2;
          req.pipeline.sampler_workers = 2;
        } else {
          req.config = pyg;
        }
        sched.submit(req);
      }
      const serve::DrainStats stats = sched.drain();
      std::printf("serving %zu job(s) across %zu tenant(s):\n", n_jobs,
                  tenants);
      for (std::size_t i = 0; i < sched.size(); ++i) {
        const serve::JobOutcome& job = sched.outcome(i);
        std::printf("  job %zu [%s] %-16s price=%.3fs (%s) -> %s "
                    "T=%.2fs acc=%.2f%%\n",
                    job.id, job.request.tenant.c_str(),
                    job.request.config.name.c_str(),
                    job.price.predicted_wall_s,
                    job.price.overlap_fitted ? "fitted" : "Eq.4",
                    serve::to_string(job.state).c_str(),
                    job.report.epoch_time_s, 100.0 * job.report.test_accuracy);
      }
      std::printf("drain: %zu started, %zu completed, %zu failed | "
                  "wall=%.2fs throughput=%.1f jobs/min\n",
                  stats.started, stats.completed, stats.failed, stats.wall_s,
                  stats.jobs_per_min());
      return 0;
    }

    print_report("pyg:", nav.reproduce("pyg", epochs));
    print_report("guideline:", nav.train(guideline.config, epochs));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
