// CART regression tree: greedy variance-reduction splits on numeric
// features. This is the paper's black-box baseline model in Fig. 5
// ("Decision Tree Regression") and the building block of the forest /
// boosting ensembles.
#pragma once

#include <vector>

#include "ml/regressor.hpp"

namespace gnav::ml {

struct TreeParams {
  int max_depth = 8;
  std::size_t min_samples_leaf = 3;
  std::size_t min_samples_split = 6;
  /// Consider only every k-th unique threshold for speed (1 = all).
  int threshold_stride = 1;
};

class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeParams params = {});

  void fit(const Matrix& x, const std::vector<double>& y) override;
  double predict_one(const std::vector<double>& x) const override;
  bool is_fitted() const override { return !nodes_.empty(); }

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

 private:
  struct Node {
    int feature = -1;       // -1 => leaf
    double threshold = 0.0; // go left when x[feature] <= threshold
    double value = 0.0;     // leaf prediction
    int left = -1;
    int right = -1;
  };

  int build(const Matrix& x, const std::vector<double>& y,
            std::vector<std::size_t>& idx, int depth);

  TreeParams params_;
  std::vector<Node> nodes_;
};

}  // namespace gnav::ml
