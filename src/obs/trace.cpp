#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/thread_safety.hpp"

namespace gnav::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

/// One thread's span storage. The OWNING thread is the only writer of
/// `spans` and the only thread that advances `count` (release store after
/// the record write); drainers acquire-load `count` and read that prefix.
/// `name` is read and written only under the registry mutex.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : spans(capacity) {}

  std::uint32_t tid = 0;
  std::string name;
  std::vector<SpanRecord> spans;  // fixed size; never reallocated
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
};

struct BufferRegistry {
  support::Mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers GNAV_GUARDED_BY(mu);
  std::size_t capacity GNAV_GUARDED_BY(mu) = 8192;
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry();  // never destroyed:
  // stage threads may record spans during static destruction order.
  return *r;
}

thread_local std::shared_ptr<ThreadBuffer> t_buffer;
thread_local std::string t_pending_name;

ThreadBuffer& this_thread_buffer() {
  if (!t_buffer) {
    BufferRegistry& r = registry();
    const support::MutexLock lock(r.mu);
    auto buf = std::make_shared<ThreadBuffer>(r.capacity);
    buf->tid = static_cast<std::uint32_t>(r.buffers.size() + 1);
    buf->name = !t_pending_name.empty()
                    ? t_pending_name
                    : "thread-" + std::to_string(buf->tid);
    r.buffers.push_back(buf);
    t_buffer = std::move(buf);
  }
  return *t_buffer;
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Microseconds with nanosecond precision, the trace-event `ts` unit.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

namespace detail {

std::uint64_t trace_now_ns() {
  // Process-fixed epoch: the first call pins it; every timestamp is an
  // offset from it, so traces start near ts=0. Wall-clock observable
  // only — timestamps feed trace files, never data-bearing state.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void record_span(const char* category, const char* name,
                 std::uint64_t start_ns, std::uint64_t end_ns) {
  if (!tracing_enabled()) return;  // flipped off mid-span: drop
  ThreadBuffer& buf = this_thread_buffer();
  const std::size_t n = buf.count.load(std::memory_order_relaxed);
  if (n >= buf.spans.size()) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord& rec = buf.spans[n];
  rec.start_ns = start_ns;
  rec.end_ns = end_ns;
  rec.category = category;
  const std::size_t len = std::strlen(name);
  const std::size_t c =
      len < sizeof(rec.name) - 1 ? len : sizeof(rec.name) - 1;
  std::memcpy(rec.name, name, c);
  rec.name[c] = '\0';
  buf.count.store(n + 1, std::memory_order_release);
}

}  // namespace detail

void set_tracing_enabled(bool enabled) {
  if (enabled) detail::trace_now_ns();  // pin the epoch before first span
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void set_thread_name(std::string name) {
  t_pending_name = std::move(name);
  if (t_buffer) {
    BufferRegistry& r = registry();
    const support::MutexLock lock(r.mu);
    t_buffer->name = t_pending_name;
  }
}

void set_trace_buffer_capacity(std::size_t spans) {
  BufferRegistry& r = registry();
  const support::MutexLock lock(r.mu);
  r.capacity = spans > 0 ? spans : 1;
}

std::uint64_t trace_dropped_spans() {
  BufferRegistry& r = registry();
  const support::MutexLock lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& b : r.buffers) {
    total += b->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t trace_recorded_spans() {
  BufferRegistry& r = registry();
  const support::MutexLock lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& b : r.buffers) {
    total += b->count.load(std::memory_order_acquire);
  }
  return total;
}

void write_chrome_trace(std::ostream& os) {
  BufferRegistry& r = registry();
  const support::MutexLock lock(r.mu);
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"gnavigator\"}}";
  for (const auto& b : r.buffers) {
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(b->tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(out, b->name.c_str());
    out += "\"}}";
  }
  for (const auto& b : r.buffers) {
    const std::size_t n = b->count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const SpanRecord& rec = b->spans[i];
      out += ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(b->tid);
      out += ",\"cat\":\"";
      json_escape_into(out, rec.category);
      out += "\",\"name\":\"";
      json_escape_into(out, rec.name);
      out += "\",\"ts\":";
      append_us(out, rec.start_ns);
      out += ",\"dur\":";
      append_us(out, rec.end_ns >= rec.start_ns
                         ? rec.end_ns - rec.start_ns
                         : 0);
      out += "}";
      if (out.size() > (1u << 20)) {
        os << out;
        out.clear();
      }
    }
  }
  out += "\n]}\n";
  os << out;
}

std::string chrome_trace_json() {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

void reset_trace() {
  BufferRegistry& r = registry();
  const support::MutexLock lock(r.mu);
  for (const auto& b : r.buffers) {
    b->count.store(0, std::memory_order_release);
    b->dropped.store(0, std::memory_order_relaxed);
  }
}

}  // namespace gnav::obs
