// Tests for the support/parallel thread pool and for the determinism
// contract it imposes on the hot paths: profile collection, backend runs,
// estimator predictions, and the explorer's Pareto front must be
// bit-identical whether the pool runs 1 or 8 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "dse/design_space.hpp"
#include "dse/explorer.hpp"
#include "estimator/perf_estimator.hpp"
#include "estimator/profile_collector.hpp"
#include "graph/dataset.hpp"
#include "runtime/templates.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace gnav::support {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit(
      []() -> int { throw std::runtime_error("worker boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // Empty and single-element ranges.
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [](std::size_t i) {
                          if (i == 137) throw Error("index 137 failed");
                        }),
      Error);
  // Pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64 * 8);
  pool.parallel_for(0, 64, [&](std::size_t outer) {
    EXPECT_TRUE(ThreadPool::in_worker());
    // Nested call must not deadlock the 2-worker pool; it runs inline.
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      ++hits[outer * 8 + inner];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedSubmitExecutesEagerly) {
  ThreadPool pool(1);  // a single worker would deadlock without eagerness
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 41; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 42);
}

TEST(TaskSeed, DeterministicAndDistinct) {
  EXPECT_EQ(task_seed(99, 0), task_seed(99, 0));
  EXPECT_NE(task_seed(99, 0), task_seed(99, 1));
  EXPECT_NE(task_seed(99, 0), task_seed(100, 0));
  // Adjacent indices must not produce near-identical seeds.
  EXPECT_NE(task_seed(99, 1) - task_seed(99, 0),
            task_seed(99, 2) - task_seed(99, 1));
}

TEST(GlobalPool, HasAtLeastOneWorker) {
  EXPECT_GE(global_pool().size(), 1u);
  EXPECT_GE(default_thread_count(), 1u);
}

// ---------------------------------------------------------------------
// Determinism regression: the same seed must produce bit-identical
// results at any pool size. Each stage of the stack is checked with a
// 1-thread and an 8-thread pool.

class PoolDeterminismFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hw_ = new hw::HardwareProfile(hw::make_profile("rtx4090"));
    dataset_ = new graph::Dataset(graph::make_power_law_augmentation(0, 3));
    pool1_ = new ThreadPool(1);
    pool8_ = new ThreadPool(8);
  }
  static void TearDownTestSuite() {
    delete pool1_;
    delete pool8_;
    delete dataset_;
    delete hw_;
  }

  static estimator::CollectorOptions collector_options(ThreadPool* pool) {
    estimator::CollectorOptions opts;
    opts.configs_per_dataset = 10;
    opts.epochs = 1;
    opts.seed = 31;
    opts.pool = pool;
    return opts;
  }

  static hw::HardwareProfile* hw_;
  static graph::Dataset* dataset_;
  static ThreadPool* pool1_;
  static ThreadPool* pool8_;
};

hw::HardwareProfile* PoolDeterminismFixture::hw_ = nullptr;
graph::Dataset* PoolDeterminismFixture::dataset_ = nullptr;
ThreadPool* PoolDeterminismFixture::pool1_ = nullptr;
ThreadPool* PoolDeterminismFixture::pool8_ = nullptr;

TEST_F(PoolDeterminismFixture, BackendRunIsPoolSizeInvariant) {
  runtime::RuntimeBackend backend(*dataset_, *hw_);
  runtime::TrainConfig config = runtime::template_pyg();
  config.batch_size = 256;
  runtime::RunOptions opts;
  opts.epochs = 2;
  opts.seed = 5;
  opts.pool = pool1_;
  const runtime::TrainReport a = backend.run(config, opts);
  opts.pool = pool8_;
  const runtime::TrainReport b = backend.run(config, opts);
  EXPECT_DOUBLE_EQ(a.epoch_time_s, b.epoch_time_s);
  EXPECT_DOUBLE_EQ(a.peak_memory_gb, b.peak_memory_gb);
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_DOUBLE_EQ(a.avg_batch_nodes, b.avg_batch_nodes);
  EXPECT_DOUBLE_EQ(a.avg_batch_edges, b.avg_batch_edges);
  ASSERT_EQ(a.per_batch_nodes.size(), b.per_batch_nodes.size());
  for (std::size_t i = 0; i < a.per_batch_nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_batch_nodes[i], b.per_batch_nodes[i]);
  }
}

TEST_F(PoolDeterminismFixture, EstimatorPredictionsArePoolSizeInvariant) {
  const auto corpus1 =
      collect_profiles(*dataset_, *hw_, collector_options(pool1_));
  const auto corpus8 =
      collect_profiles(*dataset_, *hw_, collector_options(pool8_));
  ASSERT_EQ(corpus1.size(), corpus8.size());
  for (std::size_t i = 0; i < corpus1.size(); ++i) {
    EXPECT_TRUE(corpus1[i].config == corpus8[i].config);
    EXPECT_DOUBLE_EQ(corpus1[i].report.epoch_time_s,
                     corpus8[i].report.epoch_time_s);
    EXPECT_DOUBLE_EQ(corpus1[i].report.peak_memory_gb,
                     corpus8[i].report.peak_memory_gb);
    EXPECT_DOUBLE_EQ(corpus1[i].report.test_accuracy,
                     corpus8[i].report.test_accuracy);
  }

  estimator::PerfEstimator est1(*hw_);
  estimator::PerfEstimator est8(*hw_);
  est1.fit(corpus1);
  est8.fit(corpus8);
  const estimator::DatasetStats stats =
      estimator::compute_dataset_stats(*dataset_);
  for (const runtime::TrainConfig& config : runtime::all_templates()) {
    const auto p1 = est1.predict(config, stats);
    const auto p8 = est8.predict(config, stats);
    EXPECT_DOUBLE_EQ(p1.time_s, p8.time_s);
    EXPECT_DOUBLE_EQ(p1.memory_gb, p8.memory_gb);
    EXPECT_DOUBLE_EQ(p1.accuracy, p8.accuracy);
  }
}

TEST_F(PoolDeterminismFixture, ExplorerParetoFrontIsPoolSizeInvariant) {
  const auto corpus =
      collect_profiles(*dataset_, *hw_, collector_options(pool1_));
  estimator::PerfEstimator est(*hw_);
  est.fit(corpus);
  const estimator::DatasetStats stats =
      estimator::compute_dataset_stats(*dataset_);
  const dse::DesignSpace space = dse::DesignSpace::reduced(dse::BaseSettings{});

  dse::Explorer ex1(space, est, stats);
  ex1.set_pool(pool1_);
  dse::Explorer ex8(space, est, stats);
  ex8.set_pool(pool8_);
  dse::RuntimeConstraints constraints;
  const auto r1 = ex1.explore(constraints, runtime::all_templates());
  const auto r8 = ex8.explore(constraints, runtime::all_templates());

  EXPECT_EQ(r1.stats.leaves_evaluated, r8.stats.leaves_evaluated);
  ASSERT_EQ(r1.feasible.size(), r8.feasible.size());
  for (std::size_t i = 0; i < r1.feasible.size(); ++i) {
    EXPECT_TRUE(r1.feasible[i].config == r8.feasible[i].config);
    EXPECT_DOUBLE_EQ(r1.feasible[i].predicted.time_s,
                     r8.feasible[i].predicted.time_s);
    EXPECT_DOUBLE_EQ(r1.feasible[i].predicted.memory_gb,
                     r8.feasible[i].predicted.memory_gb);
    EXPECT_DOUBLE_EQ(r1.feasible[i].predicted.accuracy,
                     r8.feasible[i].predicted.accuracy);
  }
  ASSERT_EQ(r1.pareto.size(), r8.pareto.size());
  for (std::size_t i = 0; i < r1.pareto.size(); ++i) {
    EXPECT_EQ(r1.pareto[i], r8.pareto[i]);
  }
}

}  // namespace
}  // namespace gnav::support
