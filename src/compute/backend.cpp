#include "compute/backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <new>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/thread_safety.hpp"

namespace gnav::compute {

// ---------------------------------------------------------------------------
// DeviceAllocator — byte accounting over the raw allocate/deallocate pair.

float* DeviceAllocator::allocate_floats(std::size_t count) {
  float* p = do_allocate(count);
  const std::size_t bytes = count * sizeof(float);
  const std::size_t now =
      in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free peak update; relaxed is fine, the counters are diagnostics.
  std::size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  if (auto* g = in_use_gauge_.load(std::memory_order_relaxed)) {
    g->set(static_cast<double>(now));
  }
  if (auto* g = peak_gauge_.load(std::memory_order_relaxed)) {
    g->set(static_cast<double>(peak_.load(std::memory_order_relaxed)));
  }
  return p;
}

void DeviceAllocator::deallocate_floats(float* p, std::size_t count) {
  if (p == nullptr) return;
  do_deallocate(p, count);
  const std::size_t now =
      in_use_.fetch_sub(count * sizeof(float), std::memory_order_relaxed) -
      count * sizeof(float);
  if (auto* g = in_use_gauge_.load(std::memory_order_relaxed)) {
    g->set(static_cast<double>(now));
  }
}

void DeviceAllocator::bind_metrics(const std::string& backend_id) {
  auto& reg = obs::MetricsRegistry::global();
  const obs::Labels labels{{"backend", backend_id}};
  // First-wins: a delegating backend that shares another backend's
  // allocator must not re-label the owner's byte gauges (or register a
  // duplicate zero-valued series under its own label).
  if (in_use_gauge_.load(std::memory_order_relaxed) != nullptr) return;
  obs::Gauge* expected = nullptr;
  obs::Gauge* in_use = &reg.gauge(
      "gnav_device_bytes_in_use", labels,
      "Device-allocator bytes currently allocated");
  if (!in_use_gauge_.compare_exchange_strong(expected, in_use,
                                             std::memory_order_relaxed)) {
    return;
  }
  peak_gauge_.store(&reg.gauge("gnav_device_bytes_peak", labels,
                               "Device-allocator high-water-mark bytes"),
                    std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Scale builders (the definitions nn/aggregate.hpp re-exports).

std::vector<float> inverse_degree_scales(const graph::CsrGraph& g) {
  std::vector<float> inv(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto d = g.degree(v);
    inv[static_cast<std::size_t>(v)] =
        d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
  }
  return inv;
}

std::vector<float> gcn_norm_scales(const graph::CsrGraph& g) {
  std::vector<float> norm(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    norm[static_cast<std::size_t>(v)] =
        1.0f / std::sqrt(static_cast<float>(g.degree(v) + 1));
  }
  return norm;
}

// ---------------------------------------------------------------------------
// ComputeBackend shared behavior.

tensor::Tensor ComputeBackend::spmm(const graph::CsrGraph& g,
                                    const tensor::Tensor& x,
                                    const kernels::SpmmScales& scales,
                                    support::ThreadPool* pool) const {
  tensor::Tensor y(x.rows(), x.cols());
  spmm(g, x, y, scales, pool);
  return y;
}

tensor::Tensor ComputeBackend::aggregate(AggregateKind kind,
                                         const graph::CsrGraph& g,
                                         const tensor::Tensor& x) const {
  GNAV_CHECK(x.rows() == static_cast<std::size_t>(g.num_nodes()),
             "aggregate: feature rows (" + std::to_string(x.rows()) +
                 ") != num_nodes (" + std::to_string(g.num_nodes()) + ")");
  switch (kind) {
    case AggregateKind::kSum:
      return spmm(g, x, kernels::SpmmScales{});
    case AggregateKind::kMean: {
      const auto inv = inverse_degree_scales(g);
      return spmm(g, x, mean_spmm_scales(inv.data()));
    }
    case AggregateKind::kMeanTranspose: {
      const auto inv = inverse_degree_scales(g);
      return spmm(g, x, mean_transpose_spmm_scales(inv.data()));
    }
    case AggregateKind::kGcn: {
      const auto norm = gcn_norm_scales(g);
      return spmm(g, x, gcn_spmm_scales(norm.data()));
    }
  }
  throw Error("aggregate: unknown AggregateKind");
}

namespace {

// ---------------------------------------------------------------------------
// Built-in allocators.

/// Cache-line-aligned heap allocator for the plain CPU backends.
class AlignedHeapAllocator final : public DeviceAllocator {
 protected:
  float* do_allocate(std::size_t count) override {
    return static_cast<float*>(::operator new(
        count * sizeof(float), std::align_val_t{64}));
  }
  void do_deallocate(float* p, std::size_t count) override {
    ::operator delete(p, count * sizeof(float), std::align_val_t{64});
  }
};

/// Hugepage-backed arena allocator: rounds every allocation up to 2 MiB
/// and asks the kernel to back it with transparent hugepages, cutting TLB
/// pressure on the multi-hundred-MB cache feature slabs. Off Linux — or
/// when mmap fails — it degrades to the aligned heap path; a pointer set
/// remembers which deallocation path each block takes.
class HugepageArenaAllocator final : public DeviceAllocator {
 public:
  static constexpr std::size_t kHugepageBytes = 2u << 20;

 protected:
  float* do_allocate(std::size_t count) override {
#if defined(__linux__)
    const std::size_t bytes = round_up(count * sizeof(float));
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
#if defined(MADV_HUGEPAGE)
      // Best-effort: THP may be disabled system-wide; the mapping still
      // works on 4 KiB pages.
      (void)::madvise(p, bytes, MADV_HUGEPAGE);
#endif
      const support::MutexLock lock(mu_);
      mapped_.insert(p);
      return static_cast<float*>(p);
    }
#endif
    return static_cast<float*>(::operator new(
        count * sizeof(float), std::align_val_t{64}));
  }

  void do_deallocate(float* p, std::size_t count) override {
#if defined(__linux__)
    {
      const support::MutexLock lock(mu_);
      const auto it = mapped_.find(p);
      if (it != mapped_.end()) {
        mapped_.erase(it);
        ::munmap(p, round_up(count * sizeof(float)));
        return;
      }
    }
#endif
    ::operator delete(p, count * sizeof(float), std::align_val_t{64});
  }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (std::max<std::size_t>(bytes, 1) + kHugepageBytes - 1) /
           kHugepageBytes * kHugepageBytes;
  }

  support::Mutex mu_;
  /// Membership-only (insert/find/erase — never iterated, so mmap's
  /// address nondeterminism cannot order anything).
  std::unordered_set<void*> mapped_ GNAV_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Built-in backends.

/// Plain CPU backend delegating to one kernels::SpmmImpl ("cpu-scalar" /
/// "cpu-blocked").
class CpuKernelBackend : public ComputeBackend {
 public:
  CpuKernelBackend(std::string id, kernels::SpmmImpl impl,
                   BackendCapabilities declared)
      : id_(std::move(id)), impl_(impl), declared_(std::move(declared)) {}

  const std::string& id() const override { return id_; }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps = declared_;
    if (impl_ != kernels::SpmmImpl::kScalar) {
      caps.simd_tier = kernels::active_spmm_isa();
    }
    return caps;
  }

  DeviceAllocator& allocator() const override { return allocator_; }

  using ComputeBackend::spmm;
  void spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
            tensor::Tensor& y, const kernels::SpmmScales& scales,
            support::ThreadPool* pool) const override {
    kernels::spmm(g, x, y, scales, impl_, pool);
  }

 private:
  std::string id_;
  kernels::SpmmImpl impl_;
  BackendCapabilities declared_;
  mutable AlignedHeapAllocator allocator_;
};

/// "cpu-arena": the blocked SIMD kernel plus (a) a per-graph SpmmPlan
/// cache keyed by CsrGraph::uid() — repeated SpMMs on the same graph
/// (every layer × every epoch on a full-graph run, and the forward +
/// backward pair per layer on any run) skip the O(V) edge-balanced
/// partition build — and (b) hugepage-backed device memory. Cached plans
/// are bit-transparent: kernels::spmm with a plan produces exactly the
/// bits it produces without one.
class CpuArenaBackend final : public ComputeBackend {
 public:
  explicit CpuArenaBackend(BackendCapabilities declared)
      : declared_(std::move(declared)) {}

  const std::string& id() const override {
    static const std::string kId = kArenaBackendId;
    return kId;
  }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps = declared_;
    caps.simd_tier = kernels::active_spmm_isa();
    return caps;
  }

  DeviceAllocator& allocator() const override { return allocator_; }

  using ComputeBackend::spmm;
  void spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
            tensor::Tensor& y, const kernels::SpmmScales& scales,
            support::ThreadPool* pool) const override {
    const std::shared_ptr<const kernels::SpmmPlan> plan = plan_for(g);
    kernels::spmm(g, x, y, scales, kernels::SpmmImpl::kBlocked, pool,
                  plan.get());
  }

 private:
  /// Bounded FIFO plan cache. Shared_ptr handles keep a plan valid for
  /// the duration of a call even if eviction races it away mid-SpMM.
  std::shared_ptr<const kernels::SpmmPlan> plan_for(
      const graph::CsrGraph& g) const GNAV_EXCLUDES(mu_) {
    static constexpr std::size_t kMaxPlans = 16;
    {
      const support::MutexLock lock(mu_);
      const auto it = plans_.find(g.uid());
      if (it != plans_.end()) return it->second;
    }
    // Build outside the lock; concurrent builders for the same uid
    // produce identical plans, so last-writer-wins is harmless.
    auto plan =
        std::make_shared<const kernels::SpmmPlan>(kernels::make_spmm_plan(g));
    const support::MutexLock lock(mu_);
    if (plans_.find(g.uid()) == plans_.end()) {
      if (order_.size() >= kMaxPlans) {
        plans_.erase(order_.front());
        order_.pop_front();
      }
      order_.push_back(g.uid());
    }
    plans_[g.uid()] = plan;
    return plan;
  }

  BackendCapabilities declared_;
  mutable HugepageArenaAllocator allocator_;
  mutable support::Mutex mu_;
  /// Keyed lookups only; eviction order comes from order_ (a deque), so
  /// the map's iteration order never reaches any output.
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<const kernels::SpmmPlan>>
      plans_ GNAV_GUARDED_BY(mu_);
  mutable std::deque<std::uint64_t> order_ GNAV_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Registry.

BackendCapabilities scalar_declared() {
  BackendCapabilities caps;
  caps.simd_tier = "portable";
  caps.relative_throughput = 1.0;
  caps.max_feature_dim = 0;
  caps.supports_async_transfer = false;
  caps.hugepage_arena = false;
  return caps;
}

BackendCapabilities blocked_declared() {
  BackendCapabilities caps;
  caps.simd_tier = "auto";
  caps.relative_throughput = 1.8;
  caps.max_feature_dim = 0;
  caps.supports_async_transfer = true;
  caps.hugepage_arena = false;
  return caps;
}

BackendCapabilities arena_declared() {
  BackendCapabilities caps;
  caps.simd_tier = "auto";
  caps.relative_throughput = 2.0;
  // The arena sizes slabs in whole hugepages; cap rows at 4096 floats so
  // one row never spans more than 8 KiB (a deliberate, testable limit the
  // DSE can constrain against).
  caps.max_feature_dim = 4096;
  caps.supports_async_transfer = true;
  caps.hugepage_arena = true;
  return caps;
}

std::shared_ptr<ComputeBackend> make_scalar_backend() {
  return std::make_shared<CpuKernelBackend>(
      kScalarBackendId, kernels::SpmmImpl::kScalar, scalar_declared());
}

std::shared_ptr<ComputeBackend> make_blocked_backend() {
  return std::make_shared<CpuKernelBackend>(
      kBlockedBackendId, kernels::SpmmImpl::kBlocked, blocked_declared());
}

std::shared_ptr<ComputeBackend> make_arena_backend() {
  return std::make_shared<CpuArenaBackend>(arena_declared());
}

struct RegistryEntry {
  BackendCapabilities declared;
  BackendFactory::Creator creator = nullptr;
  std::shared_ptr<const ComputeBackend> instance;  // lazily created
};

struct Registry {
  mutable support::Mutex mu;
  std::vector<std::string> order GNAV_GUARDED_BY(mu);
  /// entries is looked up by key only; diagnostics listing backends walk
  /// `order` (registration order), never this map.
  std::unordered_map<std::string, RegistryEntry> entries GNAV_GUARDED_BY(mu);
  /// empty = unset, fall back to env/built-in
  std::string default_override GNAV_GUARDED_BY(mu);
  bool warned_bad_env GNAV_GUARDED_BY(mu) = false;

  Registry() {
    // The lock is uncontended here (nobody else can see the registry
    // before the constructor returns) but satisfies add()'s REQUIRES.
    const support::MutexLock lock(mu);
    add(kScalarBackendId, scalar_declared(), &make_scalar_backend);
    add(kBlockedBackendId, blocked_declared(), &make_blocked_backend);
    add(kArenaBackendId, arena_declared(), &make_arena_backend);
  }

  void add(const std::string& id, BackendCapabilities declared,
           BackendFactory::Creator creator) GNAV_REQUIRES(mu) {
    order.push_back(id);
    entries.emplace(id, RegistryEntry{std::move(declared), creator, nullptr});
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

std::string joined_ids_locked(const Registry& r) GNAV_REQUIRES(r.mu) {
  std::string out;
  for (const auto& id : r.order) {
    if (!out.empty()) out += ", ";
    out += id;
  }
  return out;
}

}  // namespace

std::shared_ptr<const ComputeBackend> BackendFactory::create(
    const std::string& id) {
  Registry& r = registry();
  Creator creator = nullptr;
  {
    const support::MutexLock lock(r.mu);
    const auto it = r.entries.find(id);
    if (it == r.entries.end()) {
      throw Error("unknown compute backend \"" + id +
                  "\" (registered: " + joined_ids_locked(r) + ")");
    }
    if (it->second.instance) return it->second.instance;
    creator = it->second.creator;
  }
  // Run the user-supplied creator OUTSIDE the registry lock. A creator
  // is arbitrary code: a delegating backend constructs its delegate by
  // re-entering create(), which self-deadlocks on r.mu if the creator
  // runs under it — the same re-entry class the bind_metrics call below
  // already dodges. Two racing first-creates may both run the creator;
  // the second install loses and its instance is discarded (first-wins,
  // like bind_metrics).
  std::shared_ptr<const ComputeBackend> fresh = creator();
  GNAV_CHECK(fresh != nullptr,
             "backend creator for \"" + id + "\" returned null");
  GNAV_CHECK(fresh->id() == id, "backend creator for \"" + id +
                                    "\" built a backend named \"" +
                                    fresh->id() + "\"");
  std::shared_ptr<const ComputeBackend> instance;
  bool created = false;
  {
    const support::MutexLock lock(r.mu);
    const auto it = r.entries.find(id);
    GNAV_CHECK(it != r.entries.end(),
               "backend \"" + id + "\" vanished during create");
    if (!it->second.instance) {
      it->second.instance = std::move(fresh);
      created = true;
    }
    instance = it->second.instance;
  }
  if (created) {
    // Singleton creation is the one point every backend passes exactly
    // once — wire its allocator's byte gauges to the registry here.
    // Outside the registry lock: a delegating backend (one whose
    // allocator() forwards to another backend's) re-enters create(),
    // which would self-deadlock on r.mu. bind_metrics is first-wins,
    // so the delegate keeps the owning backend's label.
    instance->allocator().bind_metrics(id);
  }
  return instance;
}

bool BackendFactory::is_registered(const std::string& id) {
  Registry& r = registry();
  const support::MutexLock lock(r.mu);
  return r.entries.find(id) != r.entries.end();
}

std::vector<std::string> BackendFactory::registered_ids() {
  Registry& r = registry();
  const support::MutexLock lock(r.mu);
  return r.order;
}

void BackendFactory::register_backend(const std::string& id,
                                      BackendCapabilities declared,
                                      Creator creator) {
  GNAV_CHECK(!id.empty(), "backend id must be non-empty");
  GNAV_CHECK(creator != nullptr, "backend creator must be non-null");
  Registry& r = registry();
  const support::MutexLock lock(r.mu);
  GNAV_CHECK(r.entries.find(id) == r.entries.end(),
             "compute backend \"" + id + "\" is already registered");
  r.add(id, std::move(declared), creator);
}

BackendCapabilities BackendFactory::declared_capabilities(
    const std::string& id) {
  Registry& r = registry();
  const support::MutexLock lock(r.mu);
  const auto it = r.entries.find(id);
  if (it == r.entries.end()) return BackendCapabilities{};
  return it->second.declared;
}

std::string BackendFactory::default_id() {
  Registry& r = registry();
  const support::MutexLock lock(r.mu);
  if (!r.default_override.empty()) return r.default_override;
  if (const char* env = std::getenv("GNAV_BACKEND");
      env != nullptr && *env != '\0') {
    if (r.entries.find(env) != r.entries.end()) return env;
    if (!r.warned_bad_env) {
      r.warned_bad_env = true;
      std::fprintf(stderr,
                   "gnav: GNAV_BACKEND=%s is not a registered compute "
                   "backend (registered: %s); using %s\n",
                   env, joined_ids_locked(r).c_str(), kBlockedBackendId);
    }
  }
  return kBlockedBackendId;
}

void BackendFactory::set_default_id(const std::string& id) {
  // Validate outside the registry lock (create() takes it too).
  (void)create(id);
  Registry& r = registry();
  const support::MutexLock lock(r.mu);
  r.default_override = id;
}

// ---------------------------------------------------------------------------
// Thread-local backend resolution.

namespace {
thread_local const ComputeBackend* t_current_backend = nullptr;
}  // namespace

const ComputeBackend& current_backend() {
  if (t_current_backend != nullptr) return *t_current_backend;
  // Registry singletons are never destroyed while in use, so handing out
  // a reference to the shared instance is safe.
  return *BackendFactory::create(BackendFactory::default_id());
}

std::string current_backend_id() { return current_backend().id(); }

BackendScope::BackendScope(std::shared_ptr<const ComputeBackend> backend)
    : backend_(std::move(backend)), prev_(t_current_backend) {
  GNAV_CHECK(backend_ != nullptr, "BackendScope: backend must be non-null");
  t_current_backend = backend_.get();
}

BackendScope::BackendScope(const std::string& id)
    : BackendScope(BackendFactory::create(id)) {}

BackendScope::~BackendScope() { t_current_backend = prev_; }

}  // namespace gnav::compute
