// Exhaustive scalar-vs-blocked SpMM equivalence for the kernel layer
// (kernels/spmm.hpp). The contract under test is EXACT bitwise equality:
// for every aggregation variant, graph family (including degree-skewed
// power-law graphs, empty rows, and self-loops), feature dim, and thread
// count, the blocked kernel must reproduce the scalar reference to the
// last bit. The golden-trace suite and the estimator corpus rely on this
// invariant — a tolerance here would let nondeterminism creep in there.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "compute/backend.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "kernels/spmm.hpp"
#include "nn/aggregate.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "tensor/tensor.hpp"

namespace gnav {
namespace {

using kernels::SpmmImpl;
using kernels::SpmmScales;
using tensor::Tensor;

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// The aggregation variants as (name, scale-builder) pairs; mirrors how
/// nn/aggregate.cpp instantiates the primitive.
struct Variant {
  const char* name;
  bool src, dst, self;
};
constexpr Variant kVariants[] = {
    {"sum", false, false, false},
    {"mean", false, true, false},
    {"mean_transpose", true, false, false},
    {"gcn", true, true, true},
};

SpmmScales make_scales(const Variant& v, const std::vector<float>& inv_deg,
                       const std::vector<float>& gcn_norm) {
  SpmmScales s;
  if (v.self) {  // gcn: all three scales are the symmetric normalization
    s.src_scale = gcn_norm.data();
    s.dst_scale = gcn_norm.data();
    s.self_scale = gcn_norm.data();
  } else {
    if (v.src) s.src_scale = inv_deg.data();
    if (v.dst) s.dst_scale = inv_deg.data();
  }
  return s;
}

struct NamedGraph {
  std::string name;
  graph::CsrGraph g;
};

std::vector<NamedGraph> test_graphs() {
  std::vector<NamedGraph> out;
  {
    Rng rng(11);
    out.push_back(
        {"power_law_skewed", graph::power_law_configuration(600, 2.05, 2, 80, rng)});
  }
  {
    Rng rng(12);
    out.push_back({"barabasi_albert", graph::barabasi_albert(400, 3, rng)});
  }
  {
    Rng rng(13);
    out.push_back({"erdos_renyi", graph::erdos_renyi(300, 0.02, rng)});
  }
  {
    Rng rng(14);
    out.push_back({"rmat", graph::rmat(9, 8.0, 0.57, 0.19, 0.19, rng)});
  }
  {
    // 30 of 50 vertices isolated: exercises empty-row handling.
    graph::GraphBuilder b(50);
    Rng rng(15);
    for (int e = 0; e < 60; ++e) {
      const auto u = static_cast<graph::NodeId>(rng.uniform_index(20));
      const auto v = static_cast<graph::NodeId>(rng.uniform_index(20));
      if (u != v) b.add_undirected_edge(u, v);
    }
    out.push_back({"mostly_isolated", b.build()});
  }
  {
    // Self-loops kept: u appears in its own neighbor list.
    graph::GraphBuilder b(16);
    for (graph::NodeId v = 0; v < 16; ++v) b.add_edge(v, v);
    for (graph::NodeId v = 0; v + 1 < 16; ++v) b.add_undirected_edge(v, v + 1);
    b.remove_self_loops(false);
    out.push_back({"self_loops", b.build()});
  }
  {
    graph::GraphBuilder b(1);
    out.push_back({"single_node", b.build()});
  }
  return out;
}

TEST(SpmmEquivalence, BlockedMatchesScalarBitwiseEverywhere) {
  support::ThreadPool pool1(1);
  support::ThreadPool pool2(2);
  support::ThreadPool pool8(8);
  support::ThreadPool* pools[] = {&pool1, &pool2, &pool8};
  const std::size_t pool_sizes[] = {1, 2, 8};
  // Every SIMD tier of the blocked kernel must reproduce the scalar
  // reference bitwise — this is what makes the CPU's ISA (and the
  // GNAV_BACKEND selection) invisible to golden traces.
  const kernels::SpmmSimdTier tiers[] = {kernels::SpmmSimdTier::kPortable,
                                         kernels::SpmmSimdTier::kSse,
                                         kernels::SpmmSimdTier::kAuto};

  for (const auto& [gname, g] : test_graphs()) {
    const auto n = static_cast<std::size_t>(g.num_nodes());
    const auto inv_deg = nn::inverse_degree_scales(g);
    const auto gcn_norm = nn::gcn_norm_scales(g);
    for (const std::size_t dim : {1u, 7u, 32u, 64u}) {
      Rng rng(17);
      const Tensor x = Tensor::uniform(n, dim, -2.0f, 2.0f, rng);
      for (const Variant& variant : kVariants) {
        const SpmmScales scales = make_scales(variant, inv_deg, gcn_norm);
        Tensor y_scalar(n, dim);
        kernels::spmm(g, x, y_scalar, scales, SpmmImpl::kScalar);
        for (const kernels::SpmmSimdTier tier : tiers) {
          kernels::set_spmm_simd_tier(tier);
          for (std::size_t p = 0; p < 3; ++p) {
            Tensor y_blocked(n, dim);
            kernels::spmm(g, x, y_blocked, scales, SpmmImpl::kBlocked,
                          pools[p]);
            EXPECT_TRUE(bit_identical(y_scalar, y_blocked))
                << gname << " dim=" << dim << " variant=" << variant.name
                << " threads=" << pool_sizes[p]
                << " tier=" << static_cast<int>(tier);
          }
        }
        kernels::set_spmm_simd_tier(kernels::SpmmSimdTier::kAuto);
      }
    }
  }
}

TEST(SpmmEquivalence, AggregateWrappersHonorTheActiveBackend) {
  // The nn wrappers route through compute::current_backend(); every
  // registered backend must reproduce the cpu-scalar reference bitwise
  // for each aggregation kind.
  Rng grng(21);
  const auto g = graph::power_law_configuration(300, 2.2, 2, 60, grng);
  Rng rng(22);
  const Tensor x =
      Tensor::uniform(static_cast<std::size_t>(g.num_nodes()), 24, -1, 1, rng);
  const auto run_all = [&] {
    std::vector<Tensor> out;
    out.push_back(nn::aggregate_sum(g, x));
    out.push_back(nn::aggregate_mean(g, x));
    out.push_back(nn::aggregate_mean_transpose(g, x));
    out.push_back(nn::aggregate_gcn(g, x));
    return out;
  };
  std::vector<Tensor> scalar_out;
  {
    compute::BackendScope scope(compute::kScalarBackendId);
    scalar_out = run_all();
  }
  for (const std::string& id : compute::BackendFactory::registered_ids()) {
    compute::BackendScope scope(id);
    const std::vector<Tensor> out = run_all();
    ASSERT_EQ(scalar_out.size(), out.size());
    for (std::size_t i = 0; i < scalar_out.size(); ++i) {
      EXPECT_TRUE(bit_identical(scalar_out[i], out[i]))
          << "backend=" << id << " variant=" << i;
    }
  }
}

TEST(SpmmEquivalence, MeanTransposeMatchesExplicitScatter) {
  // The pull-form transpose must equal the textbook scatter
  // dX[u] += dY[v]/deg(v) on symmetric graphs (it shares the CSR).
  Rng grng(31);
  const auto g = graph::barabasi_albert(200, 2, grng);
  Rng rng(32);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const Tensor dy = Tensor::uniform(n, 9, -1, 1, rng);
  Tensor expected(n, 9);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    if (nb.empty()) continue;
    const float inv = 1.0f / static_cast<float>(nb.size());
    const float* dyv = dy.row(static_cast<std::size_t>(v));
    for (graph::NodeId u : nb) {
      float* row = expected.row(static_cast<std::size_t>(u));
      for (std::size_t j = 0; j < 9; ++j) row[j] += inv * dyv[j];
    }
  }
  const Tensor got = nn::aggregate_mean_transpose(g, dy);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-5f) << i;
  }
}

TEST(SpmmKernels, EmptyGraphAndZeroColumns) {
  const graph::CsrGraph empty;
  Tensor x0(0, 4);
  Tensor y0(0, 4);
  kernels::spmm(empty, x0, y0, SpmmScales{}, SpmmImpl::kBlocked);
  EXPECT_EQ(y0.rows(), 0u);
  graph::GraphBuilder b(3);
  const auto g = b.build();
  Tensor xz(3, 0);
  Tensor yz(3, 0);
  kernels::spmm(g, xz, yz, SpmmScales{}, SpmmImpl::kScalar);
  EXPECT_EQ(yz.cols(), 0u);
}

TEST(SpmmKernels, RejectsBadShapesAndAliasing) {
  Rng grng(41);
  const auto g = graph::erdos_renyi(20, 0.2, grng);
  Tensor x(20, 4);
  Tensor bad_rows(19, 4);
  Tensor bad_cols(20, 5);
  EXPECT_THROW(kernels::spmm(g, x, bad_rows, SpmmScales{}, SpmmImpl::kScalar),
               Error);
  EXPECT_THROW(kernels::spmm(g, bad_rows, x, SpmmScales{}, SpmmImpl::kScalar),
               Error);
  EXPECT_THROW(kernels::spmm(g, x, bad_cols, SpmmScales{}, SpmmImpl::kScalar),
               Error);
  EXPECT_THROW(kernels::spmm(g, x, x, SpmmScales{}, SpmmImpl::kScalar), Error);
}

TEST(SpmmKernels, ImplSelectionRoundTripsAndScopesNest) {
  EXPECT_EQ(kernels::to_string(SpmmImpl::kScalar), "scalar");
  EXPECT_EQ(kernels::to_string(SpmmImpl::kBlocked), "blocked");
  EXPECT_EQ(kernels::spmm_impl_from_string("scalar"), SpmmImpl::kScalar);
  EXPECT_EQ(kernels::spmm_impl_from_string("blocked"), SpmmImpl::kBlocked);
  EXPECT_THROW(kernels::spmm_impl_from_string("simd"), Error);

  const SpmmImpl before = kernels::current_spmm_impl();
  {
    kernels::SpmmImplScope outer(SpmmImpl::kScalar);
    EXPECT_EQ(kernels::current_spmm_impl(), SpmmImpl::kScalar);
    {
      kernels::SpmmImplScope inner(SpmmImpl::kBlocked);
      EXPECT_EQ(kernels::current_spmm_impl(), SpmmImpl::kBlocked);
    }
    EXPECT_EQ(kernels::current_spmm_impl(), SpmmImpl::kScalar);
  }
  EXPECT_EQ(kernels::current_spmm_impl(), before);
}

}  // namespace
}  // namespace gnav
