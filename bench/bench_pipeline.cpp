// Pipelined-epoch-executor sweep: sampler kind x prefetch depth x sampler
// workers, async vs the synchronous baseline, on a mid-size synthetic
// dataset. Each cell trains for real through RuntimeBackend::run and
// records
//
//   - measured wall time of the training loops and the per-stage busy
//     breakdown (sample / transfer / compute),
//   - backpressure evidence: queue-full and queue-empty stall counts and
//     the mean prefetch-queue occupancy (nonzero stalls + occupancy
//     between 0 and depth prove the stages genuinely ran concurrently),
//   - the measured overlap speedup and efficiency next to Eq. 4's
//     predicted speedup — the data the estimator's f_overlapping
//     correction can later be fit from,
//   - a bit-identity flag: the async loss trajectory must equal the sync
//     baseline's exactly, so a perf regression hunt can trust that every
//     cell did the same arithmetic.
//
//   ./bench_pipeline [--json out.json] [--epochs N]
//
// Emits a JSON document (stdout by default) so CI archives the executor
// perf trajectory next to bench_micro_kernels / bench_sampling.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "estimator/dataset_stats.hpp"
#include "estimator/overlap_model.hpp"
#include "obs/export.hpp"
#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "runtime/backend.hpp"
#include "runtime/templates.hpp"
#include "support/parallel.hpp"

using namespace gnav;

namespace {

struct Cell {
  std::string sampler;
  std::string executor;
  std::size_t workers = 0;
  std::size_t depth = 0;
  double wall_s = 0.0;          // measured training-loop wall
  double sample_wall_s = 0.0;   // per-stage busy seconds
  double transfer_wall_s = 0.0;
  double compute_wall_s = 0.0;
  double speedup_vs_sync = 0.0;
  double measured_speedup = 0.0;   // sequential stage work / wall
  double overlap_efficiency = 0.0;
  double predicted_speedup = 0.0;  // Eq. 4
  unsigned long long push_stalls = 0;
  unsigned long long pop_stalls = 0;
  double queue_occupancy = 0.0;
  bool bit_identical = false;
  // Gray-box overlap arm (async cells only): measured wall/serial ratio
  // next to the fitted and the bare-Eq.4 predictions of it.
  double measured_ratio = 0.0;
  double analytic_ratio = 0.0;
  double fitted_ratio = 0.0;
};

runtime::TrainConfig config_for(sampling::SamplerKind kind) {
  runtime::TrainConfig c = runtime::template_pyg();
  c.sampler = kind;
  c.batch_size = 256;
  if (kind == sampling::SamplerKind::kLayerWise) {
    c = runtime::template_fastgcn();
    c.batch_size = 256;
  } else if (kind == sampling::SamplerKind::kSaintWalk ||
             kind == sampling::SamplerKind::kSaintNode ||
             kind == sampling::SamplerKind::kSaintEdge) {
    c = runtime::template_graphsaint();
    c.sampler = kind;
    c.batch_size = 256;
  }
  c.name = "bench-" + to_string(kind);
  return c;
}

struct GrayboxSummary {
  std::size_t fit_rows = 0;
  std::size_t eval_rows = 0;
  double mae_fitted = 0.0;
  double mae_analytic = 0.0;
};

void emit_json(std::FILE* out, const std::vector<Cell>& cells,
               const GrayboxSummary& graybox) {
  std::fprintf(out, "{\n  \"benchmark\": \"bench_pipeline\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        out,
        "    {\"sampler\": \"%s\", \"executor\": \"%s\", \"workers\": %zu, "
        "\"depth\": %zu, \"wall_s\": %.6f, \"sample_wall_s\": %.6f, "
        "\"transfer_wall_s\": %.6f, \"compute_wall_s\": %.6f, "
        "\"speedup_vs_sync\": %.3f, \"measured_speedup\": %.3f, "
        "\"overlap_efficiency\": %.3f, \"predicted_speedup\": %.3f, "
        "\"push_stalls\": %llu, \"pop_stalls\": %llu, "
        "\"queue_occupancy\": %.3f, \"bit_identical\": %s, "
        "\"measured_ratio\": %.4f, \"analytic_ratio\": %.4f, "
        "\"fitted_ratio\": %.4f}%s\n",
        c.sampler.c_str(), c.executor.c_str(), c.workers, c.depth, c.wall_s,
        c.sample_wall_s, c.transfer_wall_s, c.compute_wall_s,
        c.speedup_vs_sync, c.measured_speedup, c.overlap_efficiency,
        c.predicted_speedup, c.push_stalls, c.pop_stalls, c.queue_occupancy,
        c.bit_identical ? "true" : "false", c.measured_ratio,
        c.analytic_ratio, c.fitted_ratio,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"graybox_overlap\": {\"fit_rows\": %zu, \"eval_rows\": "
               "%zu, \"mae_fitted\": %.4f, \"mae_analytic\": %.4f}\n",
               graybox.fit_rows, graybox.eval_rows, graybox.mae_fitted,
               graybox.mae_analytic);
  std::fprintf(out, "}\n");
}

Cell cell_from_report(const runtime::TrainReport& r,
                      const runtime::TrainReport& sync_r,
                      const std::string& sampler) {
  const runtime::PipelineReport& p = r.pipeline;
  Cell cell;
  cell.sampler = sampler;
  cell.executor = p.executor;
  cell.workers = p.sampler_workers;
  cell.depth = p.prefetch_depth;
  cell.wall_s = p.measured_wall_s;
  cell.sample_wall_s = p.sample_wall_s;
  cell.transfer_wall_s = p.transfer_wall_s;
  cell.compute_wall_s = p.compute_wall_s;
  cell.speedup_vs_sync =
      p.measured_wall_s > 0.0
          ? sync_r.pipeline.measured_wall_s / p.measured_wall_s
          : 0.0;
  cell.measured_speedup = p.measured_speedup();
  cell.overlap_efficiency = p.overlap_efficiency();
  cell.predicted_speedup = p.predicted_speedup();
  cell.push_stalls = p.push_stalls;
  cell.pop_stalls = p.pop_stalls;
  cell.queue_occupancy = p.mean_queue_occupancy;
  cell.bit_identical = r.epoch_loss == sync_r.epoch_loss &&
                       r.cache_hit_rate == sync_r.cache_hit_rate &&
                       r.test_accuracy == sync_r.test_accuracy;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  int epochs = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      epochs = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json out.json] [--epochs N] "
                   "[--trace-out trace.json] [--metrics-out metrics.prom]\n",
                   argv[0]);
      return 1;
    }
  }
  const obs::ExportScope telemetry(trace_path, metrics_path);
  if (epochs < 1) {
    std::fprintf(stderr, "--epochs must be >= 1\n");
    return 1;
  }

  graph::SyntheticSpec spec;
  spec.name = "bench-pipeline";
  spec.num_nodes = 6000;
  spec.num_classes = 8;
  spec.feature_dim = 32;
  spec.min_degree = 4;
  spec.max_degree = 120;
  const graph::Dataset ds = graph::make_synthetic_dataset(spec, 17);
  const auto hw = hw::make_profile("rtx4090");
  runtime::RuntimeBackend backend(ds, hw);
  const estimator::DatasetStats stats = estimator::compute_dataset_stats(ds);

  const std::vector<sampling::SamplerKind> kinds = {
      sampling::SamplerKind::kNodeWise,
      sampling::SamplerKind::kLayerWise,
      sampling::SamplerKind::kSaintNode,
      sampling::SamplerKind::kCluster,
  };
  const std::vector<std::size_t> depths = {1, 2, 4, 8};
  const std::vector<std::size_t> workers = {1, 2, 4};

  std::vector<Cell> cells;
  // Async runs double as overlap-model data: depth != 4 rows train the
  // fit, depth == 4 rows are the held-out evaluation sweep.
  std::vector<estimator::ProfiledRun> fit_rows;
  std::vector<std::size_t> eval_cells;          // indices into `cells`
  std::vector<estimator::ProfiledRun> eval_rows;  // parallel to eval_cells
  for (sampling::SamplerKind kind : kinds) {
    const runtime::TrainConfig config = config_for(kind);
    const std::string sampler = to_string(kind);

    runtime::RunOptions sync_opts;
    sync_opts.epochs = epochs;
    sync_opts.seed = 7;
    sync_opts.evaluate_every_epoch = false;
    sync_opts.pipeline.mode = runtime::PipelineMode::kSync;
    const runtime::TrainReport sync_r = backend.run(config, sync_opts);
    cells.push_back(cell_from_report(sync_r, sync_r, sampler));
    std::fprintf(stderr, "%-12s sync            wall=%7.3fs\n",
                 sampler.c_str(), sync_r.pipeline.measured_wall_s);

    for (std::size_t w : workers) {
      for (std::size_t d : depths) {
        runtime::RunOptions opts = sync_opts;
        opts.pipeline.mode = runtime::PipelineMode::kAsync;
        opts.pipeline.sampler_workers = w;
        opts.pipeline.prefetch_depth = d;
        const runtime::TrainReport r = backend.run(config, opts);
        const Cell cell = cell_from_report(r, sync_r, sampler);
        if (!cell.bit_identical) {
          std::fprintf(stderr,
                       "FATAL: async report diverged from sync "
                       "(%s, workers=%zu, depth=%zu)\n",
                       sampler.c_str(), w, d);
          return 1;
        }
        std::fprintf(stderr,
                     "%-12s async w=%zu d=%zu wall=%7.3fs  x%4.2f vs sync  "
                     "overlap=%4.2f  stalls=%llu/%llu\n",
                     sampler.c_str(), w, d, cell.wall_s,
                     cell.speedup_vs_sync, cell.measured_speedup,
                     cell.push_stalls, cell.pop_stalls);
        cells.push_back(cell);
        estimator::ProfiledRun run{stats, config, r};
        if (estimator::OverlapModel::row_eligible(run)) {
          if (d == 4) {
            eval_cells.push_back(cells.size() - 1);
            eval_rows.push_back(std::move(run));
          } else {
            fit_rows.push_back(std::move(run));
          }
        }
      }
    }
  }

  // Gray-box overlap arm: fit on the depth != 4 rows, score the fitted
  // ratio against the bare Eq. 4 max() on the held-out depth == 4 rows.
  estimator::OverlapModel model(hw);
  model.fit(fit_rows);
  GrayboxSummary graybox;
  graybox.fit_rows = model.training_rows();
  for (std::size_t e = 0; e < eval_rows.size(); ++e) {
    const auto& run = eval_rows[e];
    Cell& cell = cells[eval_cells[e]];
    const auto& p = run.report.pipeline;
    cell.measured_ratio = estimator::OverlapModel::measured_ratio(run.report);
    cell.analytic_ratio = estimator::OverlapModel::analytic_ratio(run.report);
    cell.fitted_ratio = model.predict_ratio(
        run.config, stats, {p.prefetch_depth, p.sampler_workers},
        cell.analytic_ratio);
    graybox.mae_fitted += std::abs(cell.fitted_ratio - cell.measured_ratio);
    graybox.mae_analytic +=
        std::abs(cell.analytic_ratio - cell.measured_ratio);
    ++graybox.eval_rows;
  }
  if (graybox.eval_rows > 0) {
    graybox.mae_fitted /= static_cast<double>(graybox.eval_rows);
    graybox.mae_analytic /= static_cast<double>(graybox.eval_rows);
    std::fprintf(stderr,
                 "graybox overlap: %zu fit rows, %zu eval rows, ratio MAE "
                 "fitted=%.4f vs Eq.4=%.4f (%s)\n",
                 graybox.fit_rows, graybox.eval_rows, graybox.mae_fitted,
                 graybox.mae_analytic,
                 graybox.mae_fitted <= graybox.mae_analytic
                     ? "fitted wins"
                     : "analytic wins");
  }

  if (json_path.empty()) {
    emit_json(stdout, cells, graybox);
  } else {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    emit_json(out, cells, graybox);
    std::fclose(out);
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}
