#include "navigator/navigator.hpp"

#include "support/error.hpp"
#include "support/log.hpp"

namespace gnav::navigator {

GNNavigator::GNNavigator(graph::Dataset dataset,
                         hw::HardwareProfile hardware,
                         dse::BaseSettings base)
    : dataset_(std::move(dataset)),
      hardware_(std::move(hardware)),
      base_(base) {
  dataset_.validate();
  stats_ = estimator::compute_dataset_stats(dataset_);
  backend_ = std::make_unique<runtime::RuntimeBackend>(dataset_, hardware_);
  log_info("GNNavigator input analysis: ", stats_.profile.to_string());
}

void GNNavigator::prepare(
    const std::vector<estimator::ProfiledRun>& corpus) {
  estimator_ = std::make_unique<estimator::PerfEstimator>(hardware_);
  estimator_->fit(corpus);
}

void GNNavigator::prepare_default(int configs_per_dataset,
                                  int augmentation_graphs,
                                  int profiling_epochs, std::uint64_t seed) {
  estimator::CollectorOptions options;
  options.configs_per_dataset = configs_per_dataset;
  options.epochs = profiling_epochs;
  options.seed = seed;
  const auto corpus = estimator::collect_lodo_corpus(
      graph::dataset_names(), dataset_.name, augmentation_graphs, hardware_,
      options);
  prepare(corpus);
}

const estimator::PerfEstimator& GNNavigator::estimator() const {
  GNAV_CHECK(estimator_ != nullptr,
             "estimator not prepared — call prepare() first");
  return *estimator_;
}

estimator::PerfEstimator& GNNavigator::estimator_mut() {
  GNAV_CHECK(estimator_ != nullptr,
             "estimator not prepared — call prepare() first");
  return *estimator_;
}

Guideline GNNavigator::generate_guideline(
    const dse::ExploreTargets& targets,
    const dse::RuntimeConstraints& constraints) const {
  GNAV_CHECK(is_prepared(),
             "estimator not prepared — call prepare() first");
  const dse::DesignSpace space = dse::DesignSpace::full(base_);
  const dse::Explorer explorer(space, *estimator_, stats_);

  // Seed with reproductions of existing systems so the guideline is never
  // worse than the best prior work under these constraints.
  std::vector<runtime::TrainConfig> seeds = runtime::all_templates();

  const dse::ExplorationResult result =
      explorer.explore(constraints, seeds);
  const dse::DecisionMaker maker(targets);
  const dse::Decision decision = maker.decide(result);

  Guideline g;
  g.config = decision.chosen.config;
  g.config.name = "gnav-" + targets.name;
  g.predicted = decision.chosen.predicted;
  g.text = g.config.to_config_map().to_guideline_text();
  g.exploration_stats = result.stats;
  g.priority_name = targets.name;
  log_info("guideline (", targets.name, "): ", g.config.summary(),
           " predicted T=", g.predicted.time_s,
           "s Mem=", g.predicted.memory_gb,
           "GB Acc=", g.predicted.accuracy);
  return g;
}

runtime::TrainReport GNNavigator::train(const runtime::TrainConfig& config,
                                        int epochs,
                                        std::uint64_t seed) const {
  runtime::RunOptions options;
  options.epochs = epochs;
  options.seed = seed;
  return backend_->run(config, options);
}

runtime::TrainReport GNNavigator::reproduce(const std::string& template_name,
                                            int epochs,
                                            std::uint64_t seed) const {
  runtime::TrainConfig config = runtime::template_by_name(template_name);
  config.model = base_.model;
  config.num_layers = base_.num_layers;
  config.dropout = base_.dropout;
  config.learning_rate = base_.learning_rate;
  config.validate();
  return train(config, epochs, seed);
}

}  // namespace gnav::navigator
