// Conformance and contract tests for the pluggable compute-backend layer
// (compute/backend.hpp):
//
//   - factory: built-in registration, unknown-id diagnostics, singleton
//     instances, default-id precedence, custom registration;
//   - capabilities: DECLARED flags are static and host-independent,
//     instance flags resolve the host's SIMD dispatch;
//   - SpMM/aggregate conformance: every registered backend reproduces the
//     cpu-scalar reference BITWISE on every graph family (empty rows,
//     self-loops, power-law skew), feature dim, and thread count — the
//     invariant the backend-keyed golden traces stand on;
//   - BackendScope: thread-local nesting and restoration;
//   - DeviceAllocator accounting and DeviceCache device storage (slots,
//     admission order, static preload);
//   - end-to-end: cpu-blocked and cpu-arena produce bit-identical
//     TrainReports at pool sizes {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/device_cache.hpp"
#include "compute/backend.hpp"
#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "hw/platform.hpp"
#include "kernels/spmm.hpp"
#include "runtime/backend.hpp"
#include "runtime/templates.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "tensor/tensor.hpp"

namespace gnav {
namespace {

using tensor::Tensor;

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ------------------------------------------------------------- factory

TEST(BackendFactory, BuiltInsAreRegisteredInOrder) {
  const std::vector<std::string> ids =
      compute::BackendFactory::registered_ids();
  ASSERT_GE(ids.size(), 3u);
  EXPECT_EQ(ids[0], compute::kScalarBackendId);
  EXPECT_EQ(ids[1], compute::kBlockedBackendId);
  EXPECT_EQ(ids[2], compute::kArenaBackendId);
  for (const std::string& id : ids) {
    EXPECT_TRUE(compute::BackendFactory::is_registered(id));
    EXPECT_EQ(compute::BackendFactory::create(id)->id(), id);
  }
  EXPECT_FALSE(compute::BackendFactory::is_registered("gpu-imaginary"));
}

TEST(BackendFactory, UnknownIdThrowsListingRegisteredIds) {
  try {
    compute::BackendFactory::create("gpu-imaginary");
    FAIL() << "expected gnav::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gpu-imaginary"), std::string::npos);
    EXPECT_NE(what.find(compute::kScalarBackendId), std::string::npos);
    EXPECT_NE(what.find(compute::kBlockedBackendId), std::string::npos);
  }
}

TEST(BackendFactory, InstancesAreProcessWideSingletons) {
  const auto a = compute::BackendFactory::create(compute::kArenaBackendId);
  const auto b = compute::BackendFactory::create(compute::kArenaBackendId);
  EXPECT_EQ(a.get(), b.get());
  // One allocator owner per backend regardless of how many runs share it.
  EXPECT_EQ(&a->allocator(), &b->allocator());
}

TEST(BackendFactory, DefaultIdOverrideValidatesAndRestores) {
  const std::string previous = compute::BackendFactory::default_id();
  EXPECT_THROW(compute::BackendFactory::set_default_id("gpu-imaginary"),
               Error);
  EXPECT_EQ(compute::BackendFactory::default_id(), previous);
  compute::BackendFactory::set_default_id(compute::kScalarBackendId);
  EXPECT_EQ(compute::BackendFactory::default_id(), compute::kScalarBackendId);
  // No BackendScope active on this thread → the default is what
  // current_backend() resolves to.
  EXPECT_EQ(compute::current_backend_id(), compute::kScalarBackendId);
  compute::BackendFactory::set_default_id(previous);
  EXPECT_EQ(compute::BackendFactory::default_id(), previous);
}

// -------------------------------------------------------- capabilities

TEST(BackendCapabilities, DeclaredFlagsAreStaticPerId) {
  const auto scalar = compute::BackendFactory::declared_capabilities(
      compute::kScalarBackendId);
  EXPECT_EQ(scalar.simd_tier, "portable");
  EXPECT_DOUBLE_EQ(scalar.relative_throughput, 1.0);
  EXPECT_EQ(scalar.max_feature_dim, 0u);
  EXPECT_FALSE(scalar.supports_async_transfer);
  EXPECT_FALSE(scalar.hugepage_arena);

  const auto blocked = compute::BackendFactory::declared_capabilities(
      compute::kBlockedBackendId);
  EXPECT_EQ(blocked.simd_tier, "auto");
  EXPECT_GT(blocked.relative_throughput, 1.0);
  EXPECT_TRUE(blocked.supports_async_transfer);
  EXPECT_FALSE(blocked.hugepage_arena);

  const auto arena = compute::BackendFactory::declared_capabilities(
      compute::kArenaBackendId);
  EXPECT_TRUE(arena.supports_async_transfer);
  EXPECT_TRUE(arena.hugepage_arena);
  EXPECT_EQ(arena.max_feature_dim, 4096u);
  EXPECT_GE(arena.relative_throughput, blocked.relative_throughput);

  // Unknown ids featurize as neutral defaults (corpus files may carry
  // ids this build does not register) — never a throw.
  const auto unknown =
      compute::BackendFactory::declared_capabilities("gpu-imaginary");
  EXPECT_EQ(unknown.simd_tier, "portable");
  EXPECT_DOUBLE_EQ(unknown.relative_throughput, 1.0);
  EXPECT_FALSE(unknown.supports_async_transfer);
}

TEST(BackendCapabilities, InstanceResolvesHostSimdTier) {
  const auto scalar =
      compute::BackendFactory::create(compute::kScalarBackendId);
  EXPECT_EQ(scalar->capabilities().simd_tier, "portable");
  const auto blocked =
      compute::BackendFactory::create(compute::kBlockedBackendId);
  const std::string tier = blocked->capabilities().simd_tier;
  EXPECT_TRUE(tier == "avx2" || tier == "sse2" || tier == "portable")
      << tier;
  EXPECT_EQ(tier, kernels::active_spmm_isa());
}

// --------------------------------------------------------- BackendScope

TEST(BackendScope, NestsAndRestoresPerThread) {
  const std::string before = compute::current_backend_id();
  {
    compute::BackendScope outer(compute::kScalarBackendId);
    EXPECT_EQ(compute::current_backend_id(), compute::kScalarBackendId);
    {
      compute::BackendScope inner(compute::kArenaBackendId);
      EXPECT_EQ(compute::current_backend_id(), compute::kArenaBackendId);
    }
    EXPECT_EQ(compute::current_backend_id(), compute::kScalarBackendId);
  }
  EXPECT_EQ(compute::current_backend_id(), before);
}

// ---------------------------------------------------- SpMM conformance

struct NamedGraph {
  std::string name;
  graph::CsrGraph g;
};

std::vector<NamedGraph> conformance_graphs() {
  std::vector<NamedGraph> out;
  {
    Rng rng(11);
    out.push_back({"power_law",
                   graph::power_law_configuration(400, 2.1, 2, 80, rng)});
  }
  {
    // Hub-and-isolates: empty rows next to a dense one.
    graph::GraphBuilder b(24);
    for (graph::NodeId v = 1; v < 12; ++v) b.add_undirected_edge(0, v);
    out.push_back({"empty_rows", b.build()});
  }
  {
    graph::GraphBuilder b(16);
    for (graph::NodeId v = 0; v < 16; ++v) b.add_edge(v, v);
    for (graph::NodeId v = 0; v + 1 < 16; ++v) b.add_undirected_edge(v, v + 1);
    b.remove_self_loops(false);
    out.push_back({"self_loops", b.build()});
  }
  return out;
}

TEST(BackendConformance, EveryBackendMatchesScalarReferenceBitwise) {
  support::ThreadPool pool1(1);
  support::ThreadPool pool2(2);
  support::ThreadPool pool8(8);
  support::ThreadPool* pools[] = {&pool1, &pool2, &pool8};
  const std::size_t pool_sizes[] = {1, 2, 8};

  for (const auto& [gname, g] : conformance_graphs()) {
    const auto n = static_cast<std::size_t>(g.num_nodes());
    const auto inv_deg = compute::inverse_degree_scales(g);
    const auto gcn_norm = compute::gcn_norm_scales(g);
    const kernels::SpmmScales variants[] = {
        kernels::SpmmScales{},  // sum
        compute::mean_spmm_scales(inv_deg.data()),
        compute::mean_transpose_spmm_scales(inv_deg.data()),
        compute::gcn_spmm_scales(gcn_norm.data()),
    };
    for (const std::size_t dim : {1u, 7u, 64u}) {
      Rng rng(17);
      const Tensor x = Tensor::uniform(n, dim, -2.0f, 2.0f, rng);
      for (std::size_t v = 0; v < 4; ++v) {
        Tensor y_ref(n, dim);
        kernels::spmm(g, x, y_ref, variants[v], kernels::SpmmImpl::kScalar);
        for (const std::string& id :
             compute::BackendFactory::registered_ids()) {
          const auto backend = compute::BackendFactory::create(id);
          for (std::size_t p = 0; p < 3; ++p) {
            Tensor y(n, dim);
            backend->spmm(g, x, y, variants[v], pools[p]);
            EXPECT_TRUE(bit_identical(y_ref, y))
                << gname << " backend=" << id << " dim=" << dim
                << " variant=" << v << " threads=" << pool_sizes[p];
          }
        }
      }
    }
  }
}

TEST(BackendConformance, ArenaPlanCacheSurvivesRepeatsAndGraphChurn) {
  // The arena backend caches one SpmmPlan per CsrGraph::uid(); repeated
  // SpMMs on one graph and interleaved SpMMs across many graphs (enough
  // to force FIFO eviction) must all stay bit-identical to the scalar
  // reference.
  const auto arena = compute::BackendFactory::create(compute::kArenaBackendId);
  std::vector<graph::CsrGraph> graphs;
  for (int i = 0; i < 20; ++i) {
    Rng rng(100 + static_cast<std::uint64_t>(i));
    graphs.push_back(graph::erdos_renyi(60, 0.1, rng));
  }
  for (int round = 0; round < 2; ++round) {
    for (const auto& g : graphs) {
      const auto n = static_cast<std::size_t>(g.num_nodes());
      Rng rng(7);
      const Tensor x = Tensor::uniform(n, 9, -1, 1, rng);
      Tensor y_ref(n, 9);
      kernels::spmm(g, x, y_ref, kernels::SpmmScales{},
                    kernels::SpmmImpl::kScalar);
      Tensor y(n, 9);
      arena->spmm(g, x, y, kernels::SpmmScales{});
      EXPECT_TRUE(bit_identical(y_ref, y)) << "round=" << round;
    }
  }
}

// ------------------------------------------------- custom registration

class EchoBackend final : public compute::ComputeBackend {
 public:
  const std::string& id() const override {
    static const std::string kId = "test-echo";
    return kId;
  }
  compute::BackendCapabilities capabilities() const override {
    return compute::BackendFactory::declared_capabilities("test-echo");
  }
  compute::DeviceAllocator& allocator() const override {
    return compute::BackendFactory::create(compute::kScalarBackendId)
        ->allocator();
  }
  using compute::ComputeBackend::spmm;
  void spmm(const graph::CsrGraph& g, const Tensor& x, Tensor& y,
            const kernels::SpmmScales& scales,
            support::ThreadPool* pool = nullptr) const override {
    kernels::spmm(g, x, y, scales, kernels::SpmmImpl::kScalar, pool);
  }
};

std::shared_ptr<compute::ComputeBackend> make_echo_backend() {
  return std::make_shared<EchoBackend>();
}

TEST(BackendRegistration, CustomBackendRegistersAndResolves) {
  compute::BackendCapabilities declared;
  declared.simd_tier = "portable";
  declared.relative_throughput = 0.5;
  compute::BackendFactory::register_backend("test-echo", declared,
                                            &make_echo_backend);
  EXPECT_TRUE(compute::BackendFactory::is_registered("test-echo"));
  EXPECT_DOUBLE_EQ(
      compute::BackendFactory::declared_capabilities("test-echo")
          .relative_throughput,
      0.5);
  const auto backend = compute::BackendFactory::create("test-echo");
  EXPECT_EQ(backend->id(), "test-echo");
  // Duplicate ids are a registration bug, not a silent overwrite.
  EXPECT_THROW(compute::BackendFactory::register_backend(
                   "test-echo", declared, &make_echo_backend),
               Error);
  // The custom backend is a first-class citizen: scoping to it routes
  // the nn wrappers through its spmm.
  Rng grng(3);
  const auto g = graph::barabasi_albert(100, 2, grng);
  Rng rng(4);
  const Tensor x =
      Tensor::uniform(static_cast<std::size_t>(g.num_nodes()), 8, -1, 1, rng);
  compute::BackendScope scope("test-echo");
  const Tensor via_scope = compute::current_backend().spmm(
      g, x, kernels::SpmmScales{});
  Tensor y_ref(x.rows(), x.cols());
  kernels::spmm(g, x, y_ref, kernels::SpmmScales{},
                kernels::SpmmImpl::kScalar);
  EXPECT_TRUE(bit_identical(y_ref, via_scope));
}

// A backend that resolves its delegate AT CREATION TIME — the creator
// itself re-enters BackendFactory::create. Under the pre-fix factory the
// creator ran while the registry mutex was held, so this exact shape
// self-deadlocked (the lock-held-reentry class gnav_analyzer flags);
// the factory now runs creators outside the lock with a first-wins
// install.
class DelegatingCreatorBackend final : public compute::ComputeBackend {
 public:
  explicit DelegatingCreatorBackend(
      std::shared_ptr<const compute::ComputeBackend> delegate)
      : delegate_(std::move(delegate)) {}
  const std::string& id() const override {
    static const std::string kId = "test-delegating-creator";
    return kId;
  }
  compute::BackendCapabilities capabilities() const override {
    return delegate_->capabilities();
  }
  compute::DeviceAllocator& allocator() const override {
    return delegate_->allocator();
  }
  using compute::ComputeBackend::spmm;
  void spmm(const graph::CsrGraph& g, const Tensor& x, Tensor& y,
            const kernels::SpmmScales& scales,
            support::ThreadPool* pool = nullptr) const override {
    delegate_->spmm(g, x, y, scales, pool);
  }

 private:
  std::shared_ptr<const compute::ComputeBackend> delegate_;
};

std::shared_ptr<compute::ComputeBackend> make_delegating_creator_backend() {
  return std::make_shared<DelegatingCreatorBackend>(
      compute::BackendFactory::create(compute::kScalarBackendId));
}

TEST(BackendRegistration, CreatorMayReenterFactoryWithoutDeadlock) {
  compute::BackendCapabilities declared;
  declared.simd_tier = "portable";
  compute::BackendFactory::register_backend("test-delegating-creator",
                                            declared,
                                            &make_delegating_creator_backend);
  const auto backend =
      compute::BackendFactory::create("test-delegating-creator");
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->id(), "test-delegating-creator");
  // Still a process-wide singleton after the outside-the-lock rebuild.
  EXPECT_EQ(backend.get(),
            compute::BackendFactory::create("test-delegating-creator").get());
  // And it behaves: bitwise-identical to its scalar delegate.
  Rng grng(11);
  const auto g = graph::barabasi_albert(80, 2, grng);
  Rng rng(12);
  const Tensor x =
      Tensor::uniform(static_cast<std::size_t>(g.num_nodes()), 8, -1, 1, rng);
  Tensor y(x.rows(), x.cols());
  backend->spmm(g, x, y, kernels::SpmmScales{});
  Tensor y_ref(x.rows(), x.cols());
  kernels::spmm(g, x, y_ref, kernels::SpmmScales{}, kernels::SpmmImpl::kScalar);
  EXPECT_TRUE(bit_identical(y_ref, y));
}

// ------------------------------------------------- allocator accounting

TEST(DeviceAllocator, TracksInUseAndPeakBytes) {
  for (const std::string& id : {std::string(compute::kBlockedBackendId),
                                std::string(compute::kArenaBackendId)}) {
    SCOPED_TRACE(id);
    compute::DeviceAllocator& alloc =
        compute::BackendFactory::create(id)->allocator();
    const std::size_t base_in_use = alloc.bytes_in_use();
    float* a = alloc.allocate_floats(1024);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(alloc.bytes_in_use(), base_in_use + 1024 * sizeof(float));
    EXPECT_GE(alloc.peak_bytes(), base_in_use + 1024 * sizeof(float));
    float* b = alloc.allocate_floats(2048);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(alloc.bytes_in_use(),
              base_in_use + (1024 + 2048) * sizeof(float));
    // The slab is real writable memory.
    a[0] = 1.0f;
    a[1023] = 2.0f;
    b[2047] = 3.0f;
    alloc.deallocate_floats(b, 2048);
    alloc.deallocate_floats(a, 1024);
    EXPECT_EQ(alloc.bytes_in_use(), base_in_use);
    EXPECT_GE(alloc.peak_bytes(),
              base_in_use + (1024 + 2048) * sizeof(float));
  }
}

// --------------------------------------------- DeviceCache real storage

TEST(DeviceCacheStorage, StaticPreloadGetsSlotsAndAdmissionsRecycle) {
  Rng grng(5);
  const auto g = graph::power_law_configuration(64, 2.2, 2, 20, grng);
  cache::DeviceCache cache(cache::CachePolicy::kLru, 4, g);
  compute::DeviceAllocator& alloc =
      compute::BackendFactory::create(compute::kBlockedBackendId)
          ->allocator();
  const std::size_t before = alloc.bytes_in_use();

  EXPECT_FALSE(cache.has_storage());
  cache.attach_storage(alloc, 8);
  EXPECT_TRUE(cache.has_storage());
  EXPECT_EQ(cache.row_floats(), 8u);
  EXPECT_EQ(cache.storage_bytes(), 4u * 8u * sizeof(float));
  EXPECT_EQ(alloc.bytes_in_use(), before + cache.storage_bytes());

  // LRU starts empty: four distinct vertices fill the four slots, each
  // admission reported in order.
  const auto r1 = cache.lookup_and_update({0, 1, 2, 3});
  EXPECT_EQ(r1.admitted.size(), 4u);
  {
    // slot_of / resident_row / slot_row REQUIRE the cache mutex; take it
    // batch-scoped like the executor does (and drop it before the next
    // lookup_and_update, which EXCLUDES it).
    const support::MutexLock lock(cache.mutex());
    for (graph::NodeId v : {0, 1, 2, 3}) {
      EXPECT_NE(cache.slot_of(v), cache::DeviceCache::kNoSlot) << v;
      EXPECT_NE(cache.resident_row(v), nullptr) << v;
    }
    // Distinct resident vertices own distinct slots.
    EXPECT_NE(cache.slot_of(0), cache.slot_of(1));
  }

  // A full batch of new vertices evicts all four and recycles their
  // slots; evicted vertices lose theirs.
  const auto r2 = cache.lookup_and_update({10, 11, 12, 13});
  EXPECT_EQ(r2.admitted.size(), 4u);
  {
    const support::MutexLock lock(cache.mutex());
    for (graph::NodeId v : {0, 1, 2, 3}) {
      EXPECT_EQ(cache.slot_of(v), cache::DeviceCache::kNoSlot) << v;
      EXPECT_EQ(cache.resident_row(v), nullptr) << v;
    }
    for (graph::NodeId v : {10, 11, 12, 13}) {
      EXPECT_NE(cache.slot_of(v), cache::DeviceCache::kNoSlot) << v;
    }

    // Rows are per-slot storage: writes land where slot_of points.
    float* row = cache.resident_row(graph::NodeId{10});
    ASSERT_NE(row, nullptr);
    for (std::size_t j = 0; j < 8; ++j) row[j] = static_cast<float>(j);
    EXPECT_EQ(cache.slot_row(cache.slot_of(10))[7], 7.0f);
  }
}

TEST(DeviceCacheStorage, StaticPolicyAssignsSlotsAtAttach) {
  Rng grng(6);
  const auto g = graph::power_law_configuration(64, 2.2, 2, 24, grng);
  cache::DeviceCache cache(cache::CachePolicy::kStatic, 6, g);
  ASSERT_EQ(cache.resident_count(), 6u);
  compute::DeviceAllocator& alloc =
      compute::BackendFactory::create(compute::kArenaBackendId)->allocator();
  cache.attach_storage(alloc, 4);
  std::size_t with_slots = 0;
  {
    const support::MutexLock lock(cache.mutex());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (cache.is_resident(v)) {
        EXPECT_NE(cache.slot_of(v), cache::DeviceCache::kNoSlot) << v;
        ++with_slots;
      } else {
        EXPECT_EQ(cache.slot_of(v), cache::DeviceCache::kNoSlot) << v;
      }
    }
  }
  EXPECT_EQ(with_slots, 6u);
  // residency_version is a value snapshot, not a live reference: holding
  // the returned value across an update must NOT track the change (the
  // aliasing bug this PR fixes).
  const std::uint64_t snapshot = cache.residency_version();
  cache.lookup_and_update({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(snapshot, snapshot);  // trivially true — the point is the type
  EXPECT_GE(cache.residency_version(), snapshot);
}

// -------------------------------------------------- end-to-end equality

TEST(BackendEndToEnd, BlockedAndArenaReportsBitIdenticalAtPools128) {
  graph::SyntheticSpec spec;
  spec.name = "backend-e2e";
  spec.num_nodes = 500;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  spec.min_degree = 3;
  spec.max_degree = 50;
  const graph::Dataset ds = graph::make_synthetic_dataset(spec, 9);
  const runtime::RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  runtime::TrainConfig config = runtime::template_pagraph_full();
  config.batch_size = 128;

  std::vector<runtime::TrainReport> reports;
  for (const std::size_t pool_size : {1u, 2u, 8u}) {
    support::ThreadPool pool(pool_size);
    for (const char* id :
         {compute::kBlockedBackendId, compute::kArenaBackendId,
          compute::kScalarBackendId}) {
      runtime::RunOptions ro;
      ro.epochs = 2;
      ro.seed = 33;
      ro.pool = &pool;
      ro.backend_id = id;
      reports.push_back(backend.run(config, ro));
      EXPECT_EQ(reports.back().backend_id, id);
    }
  }
  const runtime::TrainReport& ref = reports.front();
  for (std::size_t i = 1; i < reports.size(); ++i) {
    SCOPED_TRACE("report " + std::to_string(i) + " (" +
                 reports[i].backend_id + ")");
    EXPECT_EQ(ref.epoch_loss, reports[i].epoch_loss);
    EXPECT_EQ(ref.epoch_times_s, reports[i].epoch_times_s);
    EXPECT_EQ(ref.final_train_accuracy, reports[i].final_train_accuracy);
    EXPECT_EQ(ref.val_accuracy, reports[i].val_accuracy);
    EXPECT_EQ(ref.test_accuracy, reports[i].test_accuracy);
    EXPECT_EQ(ref.cache_hit_rate, reports[i].cache_hit_rate);
    EXPECT_EQ(ref.avg_batch_nodes, reports[i].avg_batch_nodes);
    EXPECT_EQ(ref.per_batch_nodes, reports[i].per_batch_nodes);
    EXPECT_EQ(ref.iterations_per_epoch, reports[i].iterations_per_epoch);
    EXPECT_EQ(ref.peak_memory_gb, reports[i].peak_memory_gb);
  }
}

}  // namespace
}  // namespace gnav
