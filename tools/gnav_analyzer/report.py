"""Finding model and JSON / SARIF 2.1.0 writers. Pure Python.

SARIF is what CI uploads (and what code-scanning UIs ingest); the JSON
report is the compact human/form for local runs. The plumbing tests
validate the SARIF writer against the schema's required fields without
needing libclang.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from gnav_analyzer import CHECK_DESCRIPTIONS, __version__

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


@dataclass
class Finding:
    check: str
    file: str  # repo-relative, forward slashes
    line: int
    column: int
    message: str
    suppressed: bool = False
    suppression_reason: str = ""

    def key(self) -> tuple:
        # Headers are walked once per including TU; findings dedupe on
        # location + message.
        return (self.check, self.file, self.line, self.column, self.message)


@dataclass
class Report:
    compile_db: str = ""
    checks: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    def add(self, finding: Finding, seen: set | None = None) -> None:
        if seen is not None:
            if finding.key() in seen:
                return
            seen.add(finding.key())
        self.findings.append(finding)


def write_json(report: Report, path: Path) -> None:
    doc = {
        "tool": "gnav-analyzer",
        "version": __version__,
        "compile_db": report.compile_db,
        "checks": sorted(report.checks),
        "finding_count": len(report.findings),
        "active_count": len(report.active()),
        "findings": [asdict(f) for f in sorted(report.findings,
                                               key=lambda f: f.key())],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")


def sarif_document(report: Report) -> dict:
    rule_ids = sorted(CHECK_DESCRIPTIONS)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = [
        {
            "id": rid,
            "shortDescription": {"text": rid},
            "fullDescription": {"text": CHECK_DESCRIPTIONS[rid]},
            "defaultConfiguration": {"level": "error"},
        }
        for rid in rule_ids
    ]
    results = []
    for f in sorted(report.findings, key=lambda f: f.key()):
        results.append(
            {
                "ruleId": f.check,
                "ruleIndex": rule_index[f.check],
                "level": "error",
                "message": {"text": f.message},
                "suppressions": (
                    [{"kind": "inSource",
                      "justification": f.suppression_reason}]
                    if f.suppressed
                    else []
                ),
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.file,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(1, f.line),
                                "startColumn": max(1, f.column),
                            },
                        }
                    }
                ],
            }
        )
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "gnav-analyzer",
                        "version": __version__,
                        "informationUri":
                            "tools/gnav_analyzer/__init__.py",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(report: Report, path: Path) -> None:
    path.write_text(json.dumps(sarif_document(report), indent=2) + "\n")
