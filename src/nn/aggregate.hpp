// Sparse neighborhood aggregation (the Aggregate of Eq. 1), expressed on
// top of the gnav::kernels weighted-SpMM layer (kernels/spmm.hpp). Which
// implementation executes — the scalar reference or the blocked
// cache-tiled kernel — is resolved per call from
// kernels::current_spmm_impl(); both produce bit-identical results, so
// the choice is purely a throughput knob.
//
// All kernels assume the mini-batch graph has a *symmetric* edge set —
// samplers in this library always emit symmetrized subgraphs — which makes
// the GCN-normalized operator self-adjoint and lets mean aggregation use
// the same CSR for its transpose.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "kernels/spmm.hpp"
#include "tensor/tensor.hpp"

namespace gnav::nn {

/// Y[v] = mean over u in N(v) of X[u]; zero row when N(v) is empty.
tensor::Tensor aggregate_mean(const graph::CsrGraph& g,
                              const tensor::Tensor& x);

/// Transpose of aggregate_mean for backprop:
/// dX[u] = sum over v in N(u) of dY[v] / |N(v)|.
tensor::Tensor aggregate_mean_transpose(const graph::CsrGraph& g,
                                        const tensor::Tensor& dy);

/// GCN propagation with self-loops and symmetric normalization:
/// Y[v] = sum over u in N(v) ∪ {v} of X[u] / sqrt((d_v+1)(d_u+1)).
/// Self-adjoint on symmetric graphs, so it is its own transpose.
tensor::Tensor aggregate_gcn(const graph::CsrGraph& g,
                             const tensor::Tensor& x);

/// Y[v] = sum over u in N(v) of X[u] (plain sum aggregation).
tensor::Tensor aggregate_sum(const graph::CsrGraph& g,
                             const tensor::Tensor& x);

/// Scale-vector builders shared with the layers (which cache them across
/// forward/backward instead of recomputing per pass):
/// 1/deg(v), with 0 for isolated vertices.
std::vector<float> inverse_degree_scales(const graph::CsrGraph& g);
/// 1/sqrt(deg(v) + 1) — the GCN symmetric normalization.
std::vector<float> gcn_norm_scales(const graph::CsrGraph& g);

/// SpmmScales of the GCN-normalized operator for a gcn_norm_scales
/// vector: src = dst = self = 1/sqrt(d+1), i.e.
/// Y[v] = s_v * (s_v X[v] + sum_u s_u X[u]). One definition shared by
/// aggregate_gcn and GcnConv so the convention cannot drift.
inline kernels::SpmmScales gcn_spmm_scales(const float* norm) {
  kernels::SpmmScales scales;
  scales.src_scale = norm;
  scales.dst_scale = norm;
  scales.self_scale = norm;
  return scales;
}

/// Mean aggregation for an inverse_degree_scales vector: post-sum
/// dst scale of 1/deg(v). Shared by aggregate_mean and SageConv.
inline kernels::SpmmScales mean_spmm_scales(const float* inv_deg) {
  kernels::SpmmScales scales;
  scales.dst_scale = inv_deg;
  return scales;
}

/// Transpose-mean (backprop scatter as a pull on the symmetric CSR):
/// per-source weight 1/deg(u). Shared by aggregate_mean_transpose and
/// SageConv::backward.
inline kernels::SpmmScales mean_transpose_spmm_scales(const float* inv_deg) {
  kernels::SpmmScales scales;
  scales.src_scale = inv_deg;
  return scales;
}

/// FLOPs of one sparse aggregation pass over g with `cols` channels
/// (2 flops per edge per channel: multiply + accumulate).
double aggregation_flops(const graph::CsrGraph& g, std::size_t cols);

}  // namespace gnav::nn
