// Compile-time concurrency contracts: Clang Thread Safety Analysis
// attribute macros plus the annotated mutex wrappers the rest of the
// codebase locks with.
//
// The system's headline guarantee — bit-identical TrainReports at any
// thread count, executor, and backend — rests on a handful of lock
// disciplines (the pool queue, the staged hand-off queues, the scheduler
// bookkeeping, the backend registry, the device-cache bookkeeping, the
// sampler structure caches). TSan can only catch a discipline violation
// on a schedule that actually interleaves it; `clang -Wthread-safety`
// proves at compile time that every access to a GNAV_GUARDED_BY field
// holds the declared capability, on every path. GCC builds compile the
// exact same code with the attributes expanded away.
//
// Usage pattern (see support/staged_queue.hpp for the canonical example):
//
//   class Account {
//     support::Mutex mu_;
//     double balance_ GNAV_GUARDED_BY(mu_);
//     void credit_locked(double d) GNAV_REQUIRES(mu_) { balance_ += d; }
//    public:
//     void credit(double d) GNAV_EXCLUDES(mu_) {
//       support::MutexLock lock(mu_);
//       credit_locked(d);
//     }
//   };
//
// Private helpers that assume the lock is held take the `_locked` suffix
// and a GNAV_REQUIRES(mu_) annotation; public entry points lock and are
// marked GNAV_EXCLUDES(mu_) so a re-entrant call is a compile error, not
// a deadlock. Enable with -DGNAV_THREAD_SAFETY=ON (clang only; the CI
// clang leg builds with -Werror=thread-safety).
//
// The macro set mirrors the reference mutex.h in the Clang Thread Safety
// Analysis documentation; only the GNAV_ prefix is ours.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GNAV_TS_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef GNAV_TS_ATTRIBUTE
#define GNAV_TS_ATTRIBUTE(x)  // no-op on GCC and pre-capability clang
#endif

/// Marks a class as a lockable capability (names it in diagnostics).
#define GNAV_CAPABILITY(x) GNAV_TS_ATTRIBUTE(capability(x))
/// Marks an RAII class whose lifetime equals holding a capability.
#define GNAV_SCOPED_CAPABILITY GNAV_TS_ATTRIBUTE(scoped_lockable)
/// Field may only be read/written while holding `x`.
#define GNAV_GUARDED_BY(x) GNAV_TS_ATTRIBUTE(guarded_by(x))
/// Pointee (not the pointer) may only be accessed while holding `x`.
#define GNAV_PT_GUARDED_BY(x) GNAV_TS_ATTRIBUTE(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release).
#define GNAV_REQUIRES(...) \
  GNAV_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
/// Function acquires the capability (must not be held on entry).
#define GNAV_ACQUIRE(...) GNAV_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
/// Function releases the capability (must be held on entry).
#define GNAV_RELEASE(...) GNAV_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define GNAV_TRY_ACQUIRE(b, ...) \
  GNAV_TS_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard;
/// this is how self-locking public methods reject re-entrant callers).
#define GNAV_EXCLUDES(...) GNAV_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
/// Declares a static lock order: this capability before `...`.
#define GNAV_ACQUIRED_BEFORE(...) \
  GNAV_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define GNAV_ACQUIRED_AFTER(...) \
  GNAV_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
/// Function returns a reference to the given capability (lets accessors
/// expose a member mutex for caller-side MutexLock + REQUIRES methods).
#define GNAV_RETURN_CAPABILITY(x) GNAV_TS_ATTRIBUTE(lock_returned(x))
/// Escape hatch — document WHY at every use site.
#define GNAV_NO_THREAD_SAFETY_ANALYSIS \
  GNAV_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace gnav::support {

/// std::mutex with the capability attributes the analysis needs.
/// libstdc++'s std::mutex carries no annotations, so locking it directly
/// is invisible to -Wthread-safety; every annotated class holds one of
/// these instead. Zero overhead: the wrapper is a plain std::mutex with
/// attributes that expand away outside the analysis.
class GNAV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GNAV_ACQUIRE() { mu_.lock(); }
  void unlock() GNAV_RELEASE() { mu_.unlock(); }
  bool try_lock() GNAV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class UniqueLock;
  std::mutex mu_;
};

/// std::lock_guard over a Mutex (scoped capability — the analysis knows
/// the capability is held for exactly this object's lifetime).
class GNAV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GNAV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GNAV_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over a Mutex, for condition-variable waits and for
/// the unlock-before-notify idiom. `wait` keeps the capability held from
/// the analysis's point of view — the standard approximation: the lock IS
/// held whenever the caller's code around the wait runs.
class GNAV_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) GNAV_ACQUIRE(mu) : lock_(mu.mu_) {}
  // std::unique_lock releases iff still held (an explicit unlock() above
  // already told the analysis the capability is gone).
  ~UniqueLock() GNAV_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() GNAV_ACQUIRE() { lock_.lock(); }
  void unlock() GNAV_RELEASE() { lock_.unlock(); }

  /// Blocks on `cv`; the mutex is atomically released while blocked and
  /// reacquired before returning, exactly like std::condition_variable
  /// with a std::unique_lock.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace gnav::support
