#include <algorithm>

#include "sampling/build.hpp"
#include "sampling/sample_scratch.hpp"
#include "sampling/sampler.hpp"
#include "support/error.hpp"

namespace gnav::sampling {

SaintSampler::SaintSampler(Variant variant, int walk_length,
                           double budget_multiplier, SamplingBias bias)
    : variant_(variant),
      walk_length_(walk_length),
      budget_multiplier_(budget_multiplier),
      bias_(bias) {
  GNAV_CHECK(walk_length_ >= 1, "walk length must be >= 1");
  GNAV_CHECK(budget_multiplier_ > 0.0, "budget multiplier must be positive");
}

SamplerKind SaintSampler::kind() const {
  switch (variant_) {
    case Variant::kWalk:
      return SamplerKind::kSaintWalk;
    case Variant::kNode:
      return SamplerKind::kSaintNode;
    case Variant::kEdge:
      return SamplerKind::kSaintEdge;
  }
  return SamplerKind::kSaintWalk;
}

std::vector<int> SaintSampler::hop_list() const {
  // Paper Sec. 3.2: subgraph-wise sampling is node-wise sampling with many
  // hops but single-neighbor fanout.
  return std::vector<int>(static_cast<std::size_t>(walk_length_), 1);
}

std::shared_ptr<const support::AliasTable> SaintSampler::node_alias(
    const graph::CsrGraph& g) const {
  // Degree-weighted node distribution (GraphSAINT-Node uses p_v ∝ deg^2;
  // a plain degree weighting keeps the same hub preference), cached per
  // (graph, bias version) so repeated batches skip the O(|V|) rebuild.
  const std::uint64_t version = bias_.version ? bias_.version() : 0;
  const support::MutexLock lock(cache_mutex_);
  // Keyed on the graph's process-unique uid, not its address: a rebuilt
  // graph can legitimately reuse a freed graph's address, and a stale
  // table would then draw from the wrong distribution (or out of range).
  if (cached_graph_uid_ != g.uid() || cached_version_ != version ||
      cached_node_alias_ == nullptr) {
    std::vector<double> weights(static_cast<std::size_t>(g.num_nodes()));
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      weights[static_cast<std::size_t>(v)] =
          static_cast<double>(g.degree(v) + 1) * bias_.weight(v);
    }
    cached_node_alias_ = std::make_shared<support::AliasTable>(weights);
    cached_graph_uid_ = g.uid();
    cached_version_ = version;
  }
  return cached_node_alias_;
}

MiniBatch SaintSampler::sample(const graph::CsrGraph& g,
                               std::span<const graph::NodeId> seeds,
                               Rng& rng) const {
  GNAV_CHECK(!seeds.empty(), "cannot sample from an empty seed set");
  SampleScratch& sc = SampleScratch::local();
  sc.collected.clear();
  double work = static_cast<double>(seeds.size());

  if (variant_ == Variant::kWalk) {
    // One random walk per seed. Bias steers each step toward preferred
    // vertices when active.
    for (graph::NodeId root : seeds) {
      graph::NodeId v = root;
      for (int step = 0; step < walk_length_; ++step) {
        const auto nb = g.neighbors(v);
        if (nb.empty()) break;
        std::size_t pick = 0;
        if (bias_.active()) {
          const TwoGroupDraw draw(nb, *bias_.preference,
                                  bias_.weight_preferred(), 1.0,
                                  sc.pref_idx, sc.rest_idx);
          pick = draw.sample(rng);
          work += 2.0;  // weighted step: group coin + in-group draw
        } else {
          pick = static_cast<std::size_t>(rng.uniform_index(nb.size()));
          work += 1.0;
        }
        v = nb[pick];
        sc.collected.push_back(v);
      }
    }
  } else if (variant_ == Variant::kNode) {
    // Degree-weighted node budget, clamped to the vertex count: beyond
    // |V| the rejection loop cannot find new vertices and used to burn
    // the whole attempt allowance before silently returning a short
    // batch.
    const auto num_nodes = static_cast<std::size_t>(g.num_nodes());
    const auto budget = std::min<std::size_t>(
        static_cast<std::size_t>(budget_multiplier_ *
                                 static_cast<double>(seeds.size())),
        num_nodes);
    if (budget >= num_nodes) {
      // The whole graph is the batch; no draws needed.
      sc.collected.resize(num_nodes);
      for (std::size_t v = 0; v < num_nodes; ++v) {
        sc.collected[v] = static_cast<graph::NodeId>(v);
      }
      work += static_cast<double>(num_nodes);
    } else {
      const auto table = node_alias(g);
      sc.visited.begin_pass(num_nodes);
      std::size_t attempts = 0;
      while (sc.collected.size() < budget &&
             attempts < budget * 30 + 10) {
        ++attempts;
        const auto v = static_cast<graph::NodeId>(table->sample(rng));
        if (sc.visited.insert(v)) sc.collected.push_back(v);
      }
      work += static_cast<double>(attempts);
      std::sort(sc.collected.begin(), sc.collected.end());
    }
  } else {
    // Edge variant: uniform edges; both endpoints join the batch.
    const auto budget = static_cast<std::size_t>(
        budget_multiplier_ * static_cast<double>(seeds.size()));
    const auto m = static_cast<std::uint64_t>(g.num_edges());
    if (m > 0) {
      for (std::size_t i = 0; i < budget; ++i) {
        const auto e = static_cast<std::size_t>(rng.uniform_index(m));
        // Locate the source vertex of edge slot e by binary search on
        // indptr, then read the destination.
        const auto& indptr = g.indptr();
        const auto it = std::upper_bound(indptr.begin(), indptr.end(),
                                         static_cast<graph::EdgeId>(e));
        const auto src = static_cast<graph::NodeId>(
            std::distance(indptr.begin(), it) - 1);
        const graph::NodeId dst = g.indices()[e];
        sc.collected.push_back(src);
        sc.collected.push_back(dst);
      }
      work += static_cast<double>(budget);
    }
  }

  const auto& ordered = detail::order_nodes(g, seeds, sc.collected, sc);
  MiniBatch mb = detail::build_induced(g, seeds, ordered, work, sc);
  // Induction touches every kept vertex's full neighbor list.
  mb.sampling_work += static_cast<double>(mb.subgraph.num_edges());
  return mb;
}

}  // namespace gnav::sampling
