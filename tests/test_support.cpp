// Unit tests for the support layer: RNG determinism and statistics,
// string utilities, tables, config maps, and descriptive stats.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "support/config_map.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

namespace gnav {
namespace {

TEST(Error, CheckMacroThrowsWithMessage) {
  try {
    GNAV_CHECK(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Log, SinkCapturesAboveThresholdAndNullRestoresStderr) {
  const LogLevel saved = log_level();
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  set_log_level(LogLevel::kWarn);
  log_debug("dropped");
  log_info("also dropped");
  log_warn("kept ", 1);
  log_error("kept too");
  set_log_sink(nullptr);  // back to stderr — the capture must stop
  log_error("after restore");
  set_log_level(saved);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "kept 1");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "kept too");
}

TEST(Log, ConcurrentEmitsNeverTearAcrossTheSink) {
  // The sink pointer and the write serialize on the logger's internal
  // support::Mutex (annotated for -Wthread-safety); this drives emits
  // from pool workers so the TSan CI job covers the emit path, and the
  // assertions pin that each message arrives whole.
  const LogLevel saved = log_level();
  std::vector<std::string> captured;
  set_log_sink([&captured](LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });
  set_log_level(LogLevel::kInfo);
  {
    support::ThreadPool pool(4);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i) {
      futs.push_back(pool.submit([i] { log_info("msg-", i, "-end"); }));
    }
    for (auto& f : futs) f.get();
  }
  set_log_sink(nullptr);
  set_log_level(saved);

  ASSERT_EQ(captured.size(), 64u);
  for (const std::string& msg : captured) {
    EXPECT_TRUE(msg.starts_with("msg-") && msg.ends_with("-end")) << msg;
  }
}

TEST(Log, ReentrantSinkDoesNotDeadlock) {
  // A sink that itself logs used to re-acquire the logger mutex on the
  // same thread (the lock-held-reentry class gnav_analyzer flags). The
  // nested emit must short-circuit to stderr, and the outer message must
  // still be captured exactly once.
  const LogLevel saved = log_level();
  std::vector<std::string> captured;
  set_log_sink([&captured](LogLevel, const std::string& msg) {
    captured.push_back(msg);
    log_error("nested emit from inside the sink");
  });
  set_log_level(LogLevel::kWarn);
  log_warn("outer");
  set_log_sink(nullptr);
  set_log_level(saved);

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "outer");
}

TEST(Log, SinkMaySwapSinksMidDeliveryWithoutDeadlock) {
  // set_log_sink takes only the state mutex, never the delivery mutex,
  // so a sink may replace (or clear) itself while its own call is in
  // flight; the in-flight delivery runs on a copied std::function.
  const LogLevel saved = log_level();
  int calls = 0;
  set_log_sink([&calls](LogLevel, const std::string&) {
    ++calls;
    set_log_sink(nullptr);  // self-uninstall during delivery
  });
  set_log_level(LogLevel::kWarn);
  log_warn("first");   // captured; uninstalls the sink
  log_warn("second");  // stderr default — capture must have stopped
  set_log_level(saved);

  EXPECT_EQ(calls, 1);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 40000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  const auto picks = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<std::int64_t> s(picks.begin(), picks.end());
  EXPECT_EQ(s.size(), 30u);
  for (auto v : picks) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(19);
  const auto picks = rng.sample_without_replacement(5, 9);
  EXPECT_EQ(picks.size(), 5u);
}

TEST(Rng, SampleCumulativeRespectsWeights) {
  Rng rng(23);
  // weights 1, 0, 9 -> index 1 never drawn, index 2 ~90%.
  const std::vector<double> cum = {1.0, 1.0, 10.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.sample_cumulative(cum)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], 4000);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringUtils, SplitAndTrim) {
  const auto parts = split(" a, b ,,c ", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtils, ParseNumbers) {
  EXPECT_DOUBLE_EQ(parse_double(" 2.5 "), 2.5);
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_THROW(parse_double("abc"), Error);
  EXPECT_THROW(parse_int("1.5"), Error);
}

TEST(StringUtils, JoinAndCase) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("pagraph-full", "pagraph"));
  EXPECT_TRUE(ends_with("pagraph-full", "full"));
}

TEST(Table, AsciiAndCsv) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b,eta", "2"});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"b,eta\""), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), Error);
}

TEST(ConfigMap, RoundTripThroughGuidelineText) {
  ConfigMap cm;
  cm.set("sampler", "sage");
  cm.set_int("batchsize", 1024);
  cm.set_double("cacheratio", 0.25);
  cm.set_bool("reorder", true);
  cm.set_int_list("hoplist", {10, 5});
  const std::string text = cm.to_guideline_text();
  const ConfigMap back = ConfigMap::parse(text);
  EXPECT_EQ(back.get("sampler"), "sage");
  EXPECT_EQ(back.get_int("batchsize"), 1024);
  EXPECT_DOUBLE_EQ(back.get_double("cacheratio"), 0.25);
  EXPECT_TRUE(back.get_bool("reorder"));
  EXPECT_EQ(back.get_int_list("hoplist"), (std::vector<int>{10, 5}));
}

TEST(ConfigMap, ParseToleratesCommentsAndErrorsOnGarbage) {
  const ConfigMap cm = ConfigMap::parse(
      "# comment\n\nbatchsize = 256;\n// another\nname = x\n");
  EXPECT_EQ(cm.get_int("batchsize"), 256);
  EXPECT_EQ(cm.get("name"), "x");
  EXPECT_THROW(ConfigMap::parse("not a kv line"), Error);
  EXPECT_THROW(cm.get("missing"), Error);
  EXPECT_EQ(cm.get_int_or("missing", 7), 7);
}

TEST(Stats, BasicMoments) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(median({1, 3, 2}), 2.0);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 1.0), 5.0);
  EXPECT_THROW(percentile({1.0}, 1.5), Error);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> ny;
  for (double v : y) ny.push_back(-v);
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson(x, {1, 1, 1, 1, 1}), 0.0);
}

TEST(Stats, PowerLawAlphaRecovery) {
  // Sample from a discrete power law with alpha=2.5 via inverse CDF and
  // check the MLE lands nearby.
  Rng rng(31);
  std::vector<std::size_t> degs;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    const double x = std::pow(1.0 - u, -1.0 / 1.5);  // Pareto alpha=2.5
    degs.push_back(static_cast<std::size_t>(2.0 * x));
  }
  // The floor() discretization biases the continuous-MLE slightly low;
  // a generous band still catches sign/shape regressions.
  const double alpha = fit_power_law_alpha(degs, 2);
  EXPECT_NEAR(alpha, 2.35, 0.35);
}

}  // namespace
}  // namespace gnav
