// Known-bad: parallel task bodies share one Rng stream (draw order =
// schedule order ⇒ nondeterministic results) or copy a stream
// (duplicate draws). Per-task streams must be derived from task_seed.
#include "gnav_stub.hpp"

void shared_stream(gnav::support::ThreadPool& pool,
                   gnav::support::Rng& rng) {
  pool.parallel_for(8, [&rng](std::size_t i) {
    (void)i;
    rng.next_u64();  // expect-finding(rng-stream-discipline)
  });
}

void copied_stream(gnav::support::ThreadPool& pool,
                   gnav::support::Rng& rng) {
  pool.submit([rng]() mutable {
    gnav::support::Rng dup = rng;  // expect-finding(rng-stream-discipline)
    dup.next_u64();
  });
}
