// Device-side feature cache — the unified abstraction of the paper's
// transmission-strategy category (Sec. 3.2): free device memory holds
// feature rows of selected vertices; each mini-batch is split into a
// cached part (no transfer) and a miss part (transferred host->device),
// after which the cache updates per its policy.
//
// Policy templates:
//   kNone    — no cache; everything transfers (PyG behavior).
//   kStatic  — preload the top-`capacity` degree-ranked vertices, never
//              update (PaGraph's static computation-aware cache).
//   kLru/kFifo — classic dynamic replacement.
//   kWeightedDegree — dynamic, but a resident vertex is only evicted for a
//              higher-degree one (degree-weighted admission).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace gnav::cache {

enum class CachePolicy { kNone, kStatic, kLru, kFifo, kWeightedDegree };

/// Device-side bookkeeping per cached row: the resident-set index entry
/// (global vertex id → cache slot). Charged by the memory model (Eq. 9's
/// Γ_cache) on top of the feature payload, so a cache is never free even
/// when every cached row would otherwise have been staged.
inline constexpr double kIndexBytesPerRow = 8.0;

std::string to_string(CachePolicy policy);
CachePolicy cache_policy_from_string(const std::string& s);

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

struct LookupResult {
  std::size_t hits = 0;
  /// Vertices that must be fetched from the host this iteration.
  std::vector<graph::NodeId> misses;
  /// Vertices newly admitted to the cache (replaced stale entries) —
  /// |replaced| drives t_replace in Eq. 5.
  std::size_t replaced = 0;
};

class DeviceCache {
 public:
  /// `capacity` is the number of feature rows the device can hold
  /// (r * |V| in the paper's notation). Static policy preloads by degree.
  DeviceCache(CachePolicy policy, std::size_t capacity,
              const graph::CsrGraph& graph);

  /// Processes one mini-batch worth of vertex ids: classifies hits vs
  /// misses and applies the update policy to the misses.
  LookupResult lookup_and_update(const std::vector<graph::NodeId>& batch);

  CachePolicy policy() const { return policy_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t resident_count() const { return resident_list_.size(); }
  const CacheStats& stats() const { return stats_; }

  bool is_resident(graph::NodeId v) const {
    return resident_[static_cast<std::size_t>(v)] != 0;
  }

  /// Residency bitmap (size |V|) — handed to locality-aware samplers so
  /// cache-aware sampling (2PGraph) can prefer resident vertices.
  const std::vector<char>& residency_bitmap() const { return resident_; }

 private:
  void insert(graph::NodeId v, LookupResult& result);
  void evict_one(LookupResult& result);

  CachePolicy policy_;
  std::size_t capacity_;
  const graph::CsrGraph& graph_;
  std::vector<char> resident_;
  /// Queue order for LRU/FIFO (front = next eviction victim). For
  /// kWeightedDegree the list is kept unordered and eviction scans for the
  /// minimum degree (capacities are modest; O(c) eviction is fine).
  std::vector<graph::NodeId> resident_list_;
  CacheStats stats_;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> last_used_;  // LRU timestamps
};

}  // namespace gnav::cache
