#include "nn/optim.hpp"

#include <cmath>

#include "support/error.hpp"

namespace gnav::nn {

Optimizer::Optimizer(std::vector<Parameter*> params)
    : params_(std::move(params)) {
  for (Parameter* p : params_) {
    GNAV_CHECK(p != nullptr, "null parameter");
  }
}

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float weight_decay)
    : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

void Sgd::step() {
  for (Parameter* p : params_) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad.data()[i] + weight_decay_ * p->value.data()[i];
      p->value.data()[i] -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad.data()[i] + weight_decay_ * p->value.data()[i];
      float& m = m_[k].data()[i];
      float& v = v_[k].data()[i];
      m = beta1_ * m + (1.0f - beta1_) * g;
      v = beta2_ * v + (1.0f - beta2_) * g * g;
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      p->value.data()[i] -=
          static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace gnav::nn
