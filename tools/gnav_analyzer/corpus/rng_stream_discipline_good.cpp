// Known-good: each task constructs its own stream from task_seed(base,
// index) — draws are a pure function of (base seed, task index), so the
// result is identical at any worker count or schedule (the batcher /
// sampler pattern).
#include "gnav_stub.hpp"

void per_task_streams(gnav::support::ThreadPool& pool,
                      unsigned long long seed) {
  pool.parallel_for(8, [seed](std::size_t i) {
    gnav::support::Rng rng(gnav::support::task_seed(seed, i));
    rng.next_u64();
  });
}

void submit_with_fresh_stream(gnav::support::ThreadPool& pool,
                              unsigned long long seed) {
  pool.submit([seed] {
    gnav::support::Rng rng(gnav::support::task_seed(seed, 0));
    rng.next_u64();
  });
}
