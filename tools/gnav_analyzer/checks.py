"""The five AST checks. Requires clang.cindex (import via engine only).

Each check is a generator `check(ctx) -> Iterable[Finding]` over one
parsed TU; `registry()` maps check names (the same names documented in
gnav_analyzer.CHECK_DESCRIPTIONS) to implementations.

Soundness notes (the documented limits of same-TU analysis):
  - reachability (tls-scope-pinning) follows direct calls plus calls to
    functions DEFINED IN THE SAME TU; a call through a std::function or
    into another TU is opaque — by design those boundaries carry their
    own contracts (stage closures re-pin scopes at the boundary).
  - lock extents are lexical: a MutexLock/UniqueLock local holds from
    its declaration to the end of its enclosing compound statement.
    Manual unlock() before a flagged call is what the inline
    `// gnav-analyzer(lock-held-reentry): <reason>` hatch is for.
"""

from __future__ import annotations

from gnav_analyzer.engine import cindex
from gnav_analyzer.report import Finding

_UNORDERED = (
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
)
_SCOPE_TYPES = ("BackendScope", "SpmmImplScope")
_LOCK_TYPES = ("support::MutexLock", "support::UniqueLock")


# ---------------------------------------------------------------- utils


def _walk(cursor):
    for child in cursor.get_children():
        yield child
        yield from _walk(child)


def _ctype(t) -> str:
    try:
        return t.get_canonical().spelling
    except Exception:
        return t.spelling


def _attr_texts(cursor) -> list[str]:
    out = []
    for child in cursor.get_children():
        if child.kind.is_attribute():
            out.append(" ".join(tok.spelling for tok in child.get_tokens()))
    return out


def _qualified_name(cursor) -> str:
    cx = cindex()
    parts = []
    c = cursor
    while c is not None and c.kind != cx.CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _offset(cursor) -> int:
    return cursor.location.offset


def _finding(check: str, cursor, message: str) -> Finding:
    loc = cursor.location
    return Finding(
        check=check,
        file=loc.file.name if loc.file else "<unknown>",
        line=loc.line,
        column=loc.column,
        message=message,
    )


def _function_definitions(ctx):
    """Every function-like definition in scope, lambdas included."""
    cx = cindex()
    kinds = {
        cx.CursorKind.FUNCTION_DECL,
        cx.CursorKind.CXX_METHOD,
        cx.CursorKind.CONSTRUCTOR,
        cx.CursorKind.DESTRUCTOR,
        cx.CursorKind.CONVERSION_FUNCTION,
        cx.CursorKind.LAMBDA_EXPR,
    }
    for cursor in _walk(ctx.tu.cursor):
        if cursor.kind in kinds and ctx.in_scope(cursor):
            if cursor.kind == cx.CursorKind.LAMBDA_EXPR or \
                    cursor.is_definition():
                yield cursor


def _body_of(fn):
    cx = cindex()
    for child in fn.get_children():
        if child.kind == cx.CursorKind.COMPOUND_STMT:
            return child
    return None


# ------------------------------------------------- guarded-ref-escape


def check_guarded_ref_escape(ctx):
    """Public methods of capability classes must not return refs or
    pointers whose expression reaches a GNAV_GUARDED_BY field. Methods
    annotated GNAV_REQUIRES / GNAV_RETURN_CAPABILITY are the designed
    hand-the-lock-to-the-caller surfaces and are exempt.
    """
    cx = cindex()
    ref_kinds = {
        cx.TypeKind.POINTER,
        cx.TypeKind.LVALUEREFERENCE,
        cx.TypeKind.RVALUEREFERENCE,
    }
    class_kinds = {
        cx.CursorKind.CLASS_DECL,
        cx.CursorKind.STRUCT_DECL,
        cx.CursorKind.CLASS_TEMPLATE,
    }
    for cls in _walk(ctx.tu.cursor):
        if cls.kind not in class_kinds or not cls.is_definition():
            continue
        if not ctx.in_scope(cls):
            continue
        guarded: dict[str, str] = {}
        for member in cls.get_children():
            if member.kind != cx.CursorKind.FIELD_DECL:
                continue
            for attr in _attr_texts(member):
                if "guarded_by" in attr:
                    guarded[member.get_usr()] = member.spelling
        if not guarded:
            continue
        for method in cls.get_children():
            if method.kind != cx.CursorKind.CXX_METHOD:
                continue
            if method.access_specifier != cx.AccessSpecifier.PUBLIC:
                continue
            if method.result_type.get_canonical().kind not in ref_kinds:
                continue
            attrs = " ".join(_attr_texts(method))
            if ("requires_capability" in attrs
                    or "exclusive_locks_required" in attrs
                    or "lock_returned" in attrs
                    or "assert_capability" in attrs):
                continue
            definition = method.get_definition()
            if definition is None:
                definition = method if method.is_definition() else None
            if definition is None:
                continue
            for node in _walk(definition):
                if node.kind != cx.CursorKind.RETURN_STMT:
                    continue
                for expr in _walk(node):
                    if expr.kind != cx.CursorKind.MEMBER_REF_EXPR:
                        continue
                    ref = expr.get_referenced()
                    if ref is not None and ref.get_usr() in guarded:
                        yield _finding(
                            "guarded-ref-escape",
                            expr,
                            f"public method '{cls.spelling}::"
                            f"{method.spelling}' returns a reference/"
                            f"pointer into guarded field "
                            f"'{guarded[ref.get_usr()]}' — return a "
                            "value snapshot, or annotate the method "
                            "GNAV_REQUIRES/GNAV_RETURN_CAPABILITY if "
                            "handing out the lock is the design",
                        )
                        break


# -------------------------------------------------- lock-held-reentry


def _is_lock_decl(cx, stmt) -> bool:
    if stmt.kind != cx.CursorKind.DECL_STMT:
        return False
    for decl in stmt.get_children():
        if decl.kind == cx.CursorKind.VAR_DECL:
            spelling = _ctype(decl.type)
            if any(lock in spelling for lock in _LOCK_TYPES):
                return True
    return False


def _reentry_findings(cx, call):
    """Classify one CALL_EXPR made while a lock is held."""
    ref = call.get_referenced()
    if ref is not None:
        if ref.kind in (
            cx.CursorKind.CONSTRUCTOR,
            cx.CursorKind.CONVERSION_FUNCTION,
        ):
            return None
        if (ref.spelling == "create"
                and ref.semantic_parent is not None
                and ref.semantic_parent.spelling == "BackendFactory"):
            return ("BackendFactory::create() invoked under a held "
                    "support::Mutex — creators are arbitrary user code "
                    "and may re-enter the factory (self-deadlock)")
        if ref.kind == cx.CursorKind.CXX_METHOD:
            parent = ref.semantic_parent
            parent_type = _ctype(parent.type) if parent is not None else ""
            if (ref.spelling == "operator()"
                    and "function<" in parent_type):
                return ("std::function invoked under a held "
                        "support::Mutex — user callbacks must run "
                        "outside the lock (copy the callable out first)")
            if ref.is_virtual_method():
                return (f"virtual call '{_qualified_name(ref)}' under a "
                        "held support::Mutex — overrides are arbitrary "
                        "user code and may re-enter the lock")
        if ref.kind in (
            cx.CursorKind.FIELD_DECL,
            cx.CursorKind.VAR_DECL,
            cx.CursorKind.PARM_DECL,
        ):
            t = ref.type.get_canonical()
            if t.kind == cx.TypeKind.POINTER and \
                    t.get_pointee().kind == cx.TypeKind.FUNCTIONPROTO:
                return (f"call through function pointer "
                        f"'{ref.spelling}' under a held support::Mutex "
                        "— the callee is arbitrary user code")
        return None
    # Unresolved callee: detect raw function-pointer calls structurally.
    children = list(call.get_children())
    if children:
        t = children[0].type.get_canonical()
        if t.kind == cx.TypeKind.POINTER and \
                t.get_pointee().kind == cx.TypeKind.FUNCTIONPROTO:
            return ("call through function pointer under a held "
                    "support::Mutex — the callee is arbitrary user code")
    return None


def check_lock_held_reentry(ctx):
    cx = cindex()
    for fn in _function_definitions(ctx):
        body = _body_of(fn)
        if body is None:
            continue
        findings: list[Finding] = []

        def scan_stmt(node, held: bool):
            if node.kind == cx.CursorKind.LAMBDA_EXPR:
                # A nested lambda's body runs when invoked, not here;
                # it is scanned as its own function definition.
                return
            if node.kind == cx.CursorKind.COMPOUND_STMT:
                scan_compound(node, held)
                return
            if held and node.kind == cx.CursorKind.CALL_EXPR:
                message = _reentry_findings(cx, node)
                if message is not None:
                    findings.append(
                        _finding("lock-held-reentry", node, message)
                    )
            for child in node.get_children():
                scan_stmt(child, held)

        def scan_compound(compound, held: bool):
            locked = held
            for stmt in compound.get_children():
                if not locked and _is_lock_decl(cx, stmt):
                    locked = True
                    continue
                scan_stmt(stmt, locked)

        scan_compound(body, False)
        yield from findings


# -------------------------------------------------- tls-scope-pinning


def _is_kernel_call(cx, call) -> bool:
    ref = call.get_referenced()
    if ref is None:
        return False
    qname = _qualified_name(ref)
    if "kernels::" in qname and ref.kind != cx.CursorKind.CONSTRUCTOR:
        return True
    if qname.endswith("compute::current_backend"):
        return True
    if ref.kind == cx.CursorKind.CXX_METHOD:
        parent = ref.semantic_parent
        if parent is not None and parent.spelling == "ComputeBackend":
            return True
    return False


def check_tls_scope_pinning(ctx):
    """std::thread bodies reaching kernel code (directly or through
    functions defined in the same TU) must construct a BackendScope /
    SpmmImplScope before the first reaching call — thread-locals do not
    cross thread creation.
    """
    cx = cindex()

    # Same-TU call graph: usr -> callees, usr -> whether any direct call
    # touches kernel code.
    defined: dict[str, object] = {}
    direct_kernel: dict[str, bool] = {}
    callees: dict[str, set[str]] = {}
    for fn in _function_definitions(ctx):
        if fn.kind == cx.CursorKind.LAMBDA_EXPR:
            continue  # lambdas are entry points, handled below
        usr = fn.get_usr()
        if not usr:
            continue
        defined[usr] = fn
        direct_kernel[usr] = False
        callees[usr] = set()
        body = _body_of(fn)
        if body is None:
            continue
        for node in _walk(body):
            if node.kind != cx.CursorKind.CALL_EXPR:
                continue
            if _is_kernel_call(cx, node):
                direct_kernel[usr] = True
            ref = node.get_referenced()
            if ref is not None:
                callee_usr = ref.get_usr()
                if callee_usr:
                    callees[usr].add(callee_usr)

    reach_memo: dict[str, bool] = {}

    def reaches_kernel(usr: str, trail: set[str]) -> bool:
        if usr in reach_memo:
            return reach_memo[usr]
        if usr in trail:
            return False
        if direct_kernel.get(usr):
            reach_memo[usr] = True
            return True
        trail.add(usr)
        result = any(
            callee in defined and reaches_kernel(callee, trail)
            for callee in callees.get(usr, ())
        )
        trail.discard(usr)
        reach_memo[usr] = result
        return result

    def thread_lambdas():
        seen_offsets = set()
        for cursor in _walk(ctx.tu.cursor):
            if not ctx.in_scope(cursor):
                continue
            spelling = _ctype(cursor.type)
            is_thread_expr = spelling == "std::thread"
            if not is_thread_expr and cursor.kind == cx.CursorKind.CALL_EXPR:
                ref = cursor.get_referenced()
                if (ref is not None
                        and ref.spelling in ("emplace_back", "push_back")):
                    # e.g. workers_.emplace_back([...]{...}) on a
                    # std::vector<std::thread> — the call itself returns
                    # void/reference, so look at the container operand.
                    is_thread_expr = any(
                        "std::thread" in _ctype(child.type)
                        for child in cursor.get_children()
                    )
            if not is_thread_expr:
                continue
            for node in _walk(cursor):
                if node.kind == cx.CursorKind.LAMBDA_EXPR:
                    key = (node.location.offset, node.extent.end.offset)
                    if key not in seen_offsets:
                        seen_offsets.add(key)
                        yield node

    for lam in thread_lambdas():
        body = _body_of(lam)
        if body is None:
            continue
        first_reach = None  # (offset, cursor, why)
        for node in _walk(body):
            if node.kind != cx.CursorKind.CALL_EXPR:
                continue
            if _is_kernel_call(cx, node):
                if first_reach is None or _offset(node) < first_reach[0]:
                    first_reach = (_offset(node), node, "calls kernel code")
                continue
            ref = node.get_referenced()
            if ref is None:
                continue
            usr = ref.get_usr()
            if usr and usr in defined and reaches_kernel(usr, set()):
                if first_reach is None or _offset(node) < first_reach[0]:
                    first_reach = (
                        _offset(node),
                        node,
                        f"reaches kernel code via '{ref.spelling}()'",
                    )
        if first_reach is None:
            continue
        scope_offset = None
        for node in _walk(body):
            if node.kind == cx.CursorKind.VAR_DECL:
                spelling = _ctype(node.type)
                if any(s in spelling for s in _SCOPE_TYPES):
                    if scope_offset is None or _offset(node) < scope_offset:
                        scope_offset = _offset(node)
        if scope_offset is None or scope_offset > first_reach[0]:
            yield _finding(
                "tls-scope-pinning",
                first_reach[1],
                f"std::thread body {first_reach[2]} without first "
                "constructing a BackendScope/SpmmImplScope — fresh "
                "threads inherit no thread-local backend selection",
            )


# ----------------------------------------------- rng-stream-discipline


def _is_rng_type(spelling: str) -> bool:
    return "support::Rng" in spelling


def _is_parallel_entry(cx, ref) -> bool:
    if ref.spelling == "parallel_for":
        return "support" in _qualified_name(ref)
    if ref.spelling == "submit":
        parent = ref.semantic_parent
        return parent is not None and "ThreadPool" in parent.spelling
    return False


def check_rng_stream_discipline(ctx):
    """Task bodies handed to ThreadPool::parallel_for/submit must not
    touch an Rng declared outside the body (shared stream ⇒ results
    depend on the schedule) and must not copy an Rng; fresh per-task
    streams come from support::task_seed.
    """
    cx = cindex()
    for call in _walk(ctx.tu.cursor):
        if call.kind != cx.CursorKind.CALL_EXPR:
            continue
        if not ctx.in_scope(call):
            continue
        ref = call.get_referenced()
        if ref is None or not _is_parallel_entry(cx, ref):
            continue
        for lam in _walk(call):
            if lam.kind != cx.CursorKind.LAMBDA_EXPR:
                continue
            extent = (lam.extent.start.offset, lam.extent.end.offset)
            # Walk only the BODY: the capture list also emits DECL_REF
            # cursors, and a captured-but-unused Rng is not a use.
            scan_root = _body_of(lam) or lam
            for node in _walk(scan_root):
                if node.kind in (
                    cx.CursorKind.DECL_REF_EXPR,
                    cx.CursorKind.MEMBER_REF_EXPR,
                ):
                    decl = node.get_referenced()
                    if decl is None or decl.kind not in (
                        cx.CursorKind.VAR_DECL,
                        cx.CursorKind.PARM_DECL,
                        cx.CursorKind.FIELD_DECL,
                    ):
                        continue
                    if not _is_rng_type(_ctype(decl.type)):
                        continue
                    declared_inside = (
                        decl.location.file is not None
                        and decl.location.file.name
                        == (lam.location.file.name
                            if lam.location.file else None)
                        and extent[0] <= decl.location.offset <= extent[1]
                    )
                    if not declared_inside:
                        yield _finding(
                            "rng-stream-discipline",
                            node,
                            f"task body references Rng '{decl.spelling}'"
                            " declared outside the task — construct a "
                            "per-task stream from support::task_seed "
                            "instead of sharing one",
                        )
                elif node.kind == cx.CursorKind.VAR_DECL and \
                        _is_rng_type(_ctype(node.type)):
                    for init in _walk(node):
                        if init.kind == cx.CursorKind.DECL_REF_EXPR:
                            src = init.get_referenced()
                            if (src is not None
                                    and src != node
                                    and src.kind in (
                                        cx.CursorKind.VAR_DECL,
                                        cx.CursorKind.PARM_DECL,
                                        cx.CursorKind.FIELD_DECL,
                                    )
                                    and _is_rng_type(_ctype(src.type))):
                                yield _finding(
                                    "rng-stream-discipline",
                                    node,
                                    f"Rng '{node.spelling}' is copied "
                                    f"from '{src.spelling}' inside a "
                                    "task body — duplicate streams "
                                    "collide; derive a fresh one from "
                                    "support::task_seed",
                                )
                                break


# ------------------------------------------------ unordered-iteration


def check_unordered_iteration(ctx):
    cx = cindex()
    for node in _walk(ctx.tu.cursor):
        if node.kind != cx.CursorKind.CXX_FOR_RANGE_STMT:
            continue
        if not ctx.in_scope(node):
            continue
        children = list(node.get_children())
        for child in children[:-1]:  # the last child is the loop body
            spelling = _ctype(child.type)
            if any(u in spelling for u in _UNORDERED):
                yield _finding(
                    "unordered-iteration",
                    node,
                    f"range-for over '{spelling}' iterates in hash "
                    "order — iterate a sorted/dense structure, or "
                    "annotate if order provably cannot escape",
                )
                break


def registry():
    return {
        "tls-scope-pinning": check_tls_scope_pinning,
        "guarded-ref-escape": check_guarded_ref_escape,
        "lock-held-reentry": check_lock_held_reentry,
        "rng-stream-discipline": check_rng_stream_discipline,
        "unordered-iteration": check_unordered_iteration,
    }
