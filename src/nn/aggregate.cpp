#include "nn/aggregate.hpp"

#include <cmath>

#include "kernels/spmm.hpp"
#include "support/error.hpp"

namespace gnav::nn {

using tensor::Tensor;

namespace {
void check_shapes(const graph::CsrGraph& g, const Tensor& x) {
  GNAV_CHECK(x.rows() == static_cast<std::size_t>(g.num_nodes()),
             "aggregation: feature rows (" + std::to_string(x.rows()) +
                 ") != num_nodes (" + std::to_string(g.num_nodes()) + ")");
}
}  // namespace

std::vector<float> inverse_degree_scales(const graph::CsrGraph& g) {
  std::vector<float> inv(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto d = g.degree(v);
    inv[static_cast<std::size_t>(v)] =
        d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
  }
  return inv;
}

std::vector<float> gcn_norm_scales(const graph::CsrGraph& g) {
  std::vector<float> norm(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    norm[static_cast<std::size_t>(v)] =
        1.0f / std::sqrt(static_cast<float>(g.degree(v) + 1));
  }
  return norm;
}

Tensor aggregate_mean(const graph::CsrGraph& g, const Tensor& x) {
  check_shapes(g, x);
  const auto inv = inverse_degree_scales(g);
  return kernels::spmm(g, x, mean_spmm_scales(inv.data()));
}

Tensor aggregate_mean_transpose(const graph::CsrGraph& g, const Tensor& dy) {
  check_shapes(g, dy);
  // On a symmetric edge set the scatter dX[u] += dY[v]/deg(v) over edges
  // (v,u) is exactly the pull dX[u] = sum_{v in N(u)} dY[v]/deg(v).
  const auto inv = inverse_degree_scales(g);
  return kernels::spmm(g, dy, mean_transpose_spmm_scales(inv.data()));
}

Tensor aggregate_gcn(const graph::CsrGraph& g, const Tensor& x) {
  check_shapes(g, x);
  const auto norm = gcn_norm_scales(g);
  return kernels::spmm(g, x, gcn_spmm_scales(norm.data()));
}

Tensor aggregate_sum(const graph::CsrGraph& g, const Tensor& x) {
  check_shapes(g, x);
  return kernels::spmm(g, x, kernels::SpmmScales{});
}

double aggregation_flops(const graph::CsrGraph& g, std::size_t cols) {
  return 2.0 * static_cast<double>(g.num_edges()) *
         static_cast<double>(cols);
}

}  // namespace gnav::nn
