#include "serve/job_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <future>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"

namespace gnav::serve {
namespace {

/// Per-tenant serve instruments, resolved find-or-create per call (the
/// registry lookup is a map find under a leaf mutex — negligible next to
/// running a job). Totals are gauges fed by add(): Prometheus-side they
/// read as monotone totals, and reset_values() zeroes them with the rest.
struct TenantInstruments {
  obs::Counter& jobs_done;
  obs::Counter& jobs_failed;
  obs::Gauge& queue_wait_s;
  obs::Gauge& run_s;
  obs::Gauge& price_s;
};

TenantInstruments tenant_instruments(const std::string& tenant) {
  auto& reg = obs::MetricsRegistry::global();
  return TenantInstruments{
      reg.counter("gnav_serve_jobs_total", {{"tenant", tenant},
                                            {"state", "done"}},
                  "Jobs finished by the scheduler, by tenant and outcome"),
      reg.counter("gnav_serve_jobs_total", {{"tenant", tenant},
                                            {"state", "failed"}},
                  "Jobs finished by the scheduler, by tenant and outcome"),
      reg.gauge("gnav_serve_queue_wait_seconds_total", {{"tenant", tenant}},
                "Total submit-to-pick wait, by tenant"),
      reg.gauge("gnav_serve_run_seconds_total", {{"tenant", tenant}},
                "Total pick-to-completion run time, by tenant"),
      reg.gauge("gnav_serve_price_seconds_total", {{"tenant", tenant}},
                "Total admission price (predicted wall seconds) of jobs "
                "run, by tenant"),
  };
}

}  // namespace

std::string to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRejected:
      return "rejected";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

JobScheduler::JobScheduler(const runtime::RuntimeBackend& backend,
                           estimator::PerfEstimator& est,
                           estimator::DatasetStats stats,
                           SchedulerOptions options,
                           const dse::DesignSpace* space)
    : backend_(&backend),
      estimator_(&est),
      stats_(std::move(stats)),
      options_(std::move(options)),
      space_(space) {
  GNAV_CHECK(options_.max_active >= 1,
             "SchedulerOptions::max_active must be >= 1");
  GNAV_CHECK(!options_.refit_after_drain || options_.base_corpus != nullptr,
             "refit_after_drain requires a base_corpus to refit on");
}

AdmissionPrice JobScheduler::price_locked(const JobRequest& request) const {
  const estimator::PerfPrediction p =
      estimator_->predict(request.config, stats_, request.backend_id);
  AdmissionPrice out;
  // The estimator's T already folds Eq. 4's analytic overlap into
  // pipelined configs; divide it back out to recover the serial stage
  // seconds predict_pipelined_wall_s expects.
  const double serial_epoch_s = p.overlap_ratio_analytic > 0.0
                                    ? p.time_s / p.overlap_ratio_analytic
                                    : p.time_s;
  out.serial_stage_s = serial_epoch_s * static_cast<double>(request.epochs);
  if (request.pipeline.mode == runtime::PipelineMode::kAsync) {
    estimator::OverlapExecutorShape shape = options_.default_shape;
    if (request.pipeline.prefetch_depth > 0) {
      shape.prefetch_depth = request.pipeline.prefetch_depth;
    }
    if (request.pipeline.sampler_workers > 0) {
      shape.sampler_workers = request.pipeline.sampler_workers;
    }
    out.predicted_wall_s = estimator_->predict_pipelined_wall_s(
        request.config, stats_, shape, out.serial_stage_s);
    out.overlap_ratio = out.serial_stage_s > 0.0
                            ? out.predicted_wall_s / out.serial_stage_s
                            : 1.0;
    out.overlap_fitted = request.config.pipeline_overlap &&
                         estimator_->overlap_model().is_fitted();
  } else {
    // The sync executor runs the stages back to back: its wall IS the
    // serial stage time.
    out.predicted_wall_s = out.serial_stage_s;
  }
  return out;
}

AdmissionPrice JobScheduler::price(const JobRequest& request) const {
  const support::MutexLock lock(mutex_);
  return price_locked(request);
}

std::size_t JobScheduler::submit(JobRequest request) {
  GNAV_CHECK(request.priority > 0.0, "JobRequest::priority must be > 0");
  GNAV_CHECK(request.epochs >= 1, "JobRequest::epochs must be >= 1");
  GNAV_CHECK(request.kind == JobKind::kTrain || space_ != nullptr,
             "kNavigateTrain requires a scheduler built with a DesignSpace");
  GNAV_CHECK(compute::BackendFactory::is_registered(request.backend_id),
             "JobRequest::backend_id \"" + request.backend_id +
                 "\" is not a registered compute backend");
  request.config.validate();

  const support::MutexLock lock(mutex_);
  const std::size_t id = jobs_.size();
  auto job = std::make_unique<JobOutcome>();
  job->id = id;
  job->seed = request.seed != 0
                  ? request.seed
                  : support::task_seed(options_.seed, static_cast<std::uint64_t>(id));
  // gnav-lint(wall-clock): profiler wall — JobOutcome::queue_wait_s only.
  job->submitted_at = std::chrono::steady_clock::now();
  job->request = std::move(request);
  job->price = price_locked(job->request);
  if (options_.max_price_s > 0.0 &&
      job->price.predicted_wall_s > options_.max_price_s) {
    job->state = JobState::kRejected;
  } else {
    job->state = JobState::kQueued;
    queue_.push_back(id);
    // Last submit wins the tenant's fair-share weight; per-job weights
    // would make "tenant priority" ill-defined.
    tenants_[job->request.tenant].priority = job->request.priority;
  }
  jobs_.push_back(std::move(job));
  return id;
}

JobOutcome* JobScheduler::pick_next_locked() {
  if (queue_.empty()) return nullptr;
  // Argmin over queued jobs of their tenant's virtual time; queue_ holds
  // ids in ascending order, and strict `<` keeps the first (lowest-id)
  // job of the least-loaded tenant — the documented tie-break.
  std::size_t best_pos = 0;
  double best_virtual = std::numeric_limits<double>::infinity();
  for (std::size_t pos = 0; pos < queue_.size(); ++pos) {
    const JobOutcome& job = *jobs_[queue_[pos]];
    const double v = tenants_[job.request.tenant].virtual_s;
    if (v < best_virtual) {
      best_virtual = v;
      best_pos = pos;
    }
  }
  JobOutcome* job = jobs_[queue_[best_pos]].get();
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best_pos));
  Tenant& tenant = tenants_[job->request.tenant];
  // Charge the admission price at pick time (divided by the fair-share
  // weight) so the pick sequence is a pure function of the queue. The
  // epsilon floor keeps a zero-priced job from starving other tenants.
  tenant.virtual_s +=
      std::max(job->price.predicted_wall_s, 1e-9) / tenant.priority;
  job->state = JobState::kRunning;
  job->start_order = starts_++;
  // gnav-lint(wall-clock): profiler wall — JobOutcome::queue_wait_s only.
  const auto picked_at = std::chrono::steady_clock::now();
  job->queue_wait_s =
      std::chrono::duration<double>(picked_at - job->submitted_at).count();
  return job;
}

void JobScheduler::run_job(JobOutcome& job) {
  const JobRequest& request = job.request;
  char span_name[40];
  std::snprintf(span_name, sizeof(span_name), "job-%zu %s", job.id,
                job.request.tenant.c_str());
  GNAV_TRACE_SPAN("serve", span_name);
  // gnav-lint(wall-clock): profiler wall — JobOutcome::run_s only.
  const auto run_t0 = std::chrono::steady_clock::now();
  try {
    if (request.kind == JobKind::kNavigateTrain) {
      // Step 2 for this tenant: explore the scheduler's design space
      // seeded with the request's config, decide with the request's
      // priorities. Explorer::explore fans out on the pool; called from
      // this pool worker it runs inline (nested safety), so navigation
      // never deadlocks the lanes. Prediction is const on the estimator —
      // safe concurrently with other jobs' navigations and price()
      // queries (refits only happen after every lane joined).
      dse::Explorer explorer(*space_, *estimator_, stats_);
      explorer.set_pool(options_.pool);
      const dse::ExplorationResult result =
          explorer.explore(request.constraints, {request.config});
      const dse::Decision decision =
          dse::DecisionMaker(request.targets).decide(result);
      job.decided_config = decision.chosen.config;
      job.decided_config.name = "gnav-" + request.targets.name;
    } else {
      job.decided_config = request.config;
    }

    runtime::RunOptions ro;
    ro.epochs = request.epochs;
    ro.seed = job.seed;
    ro.evaluate_every_epoch = request.evaluate_every_epoch;
    // Feedback rows feed PerfEstimator::fit like collector rows do.
    ro.record_batch_sizes = true;
    ro.pool = options_.pool;
    ro.backend_id = request.backend_id;
    ro.pipeline = request.pipeline;
    job.report = backend_->run(job.decided_config, ro);
    job.state = JobState::kDone;
  } catch (const std::exception& e) {
    job.error = e.what();
    job.state = JobState::kFailed;
  }
  // gnav-lint(wall-clock): profiler wall — JobOutcome::run_s only.
  job.run_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            run_t0)
                  .count();
  const TenantInstruments ins = tenant_instruments(job.request.tenant);
  (job.state == JobState::kDone ? ins.jobs_done : ins.jobs_failed).add(1);
  ins.queue_wait_s.add(job.queue_wait_s);
  ins.run_s.add(job.run_s);
  ins.price_s.add(job.price.predicted_wall_s);
}

void JobScheduler::worker_loop() {
  for (;;) {
    JobOutcome* job = nullptr;
    {
      const support::MutexLock lock(mutex_);
      job = pick_next_locked();
    }
    if (job == nullptr) return;
    run_job(*job);
  }
}

DrainStats JobScheduler::drain() {
  support::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : support::global_pool();
  std::size_t lanes = 0;
  std::size_t starts_before = 0;
  {
    // starts_before must be read HERE, under the same lock as the lane
    // count. It used to be read after this block with no lock at all —
    // benign while drain() was called from one thread, but an unguarded
    // read of mutex-guarded state nonetheless, and the first thing
    // -Wthread-safety flagged when starts_ gained its GUARDED_BY
    // (regression: ServeScheduler.ConcurrentSubmitDuringDrainIsSafe).
    const support::MutexLock lock(mutex_);
    lanes = std::min(options_.max_active, queue_.size());
    starts_before = starts_;
  }

  DrainStats stats;
  // gnav-lint(wall-clock): profiler wall — DrainStats::wall_s only.
  const auto t0 = std::chrono::steady_clock::now();
  if (lanes > 0) {
    // Each lane drains jobs until the queue is empty; the fair-share pick
    // under the mutex decides order, the lanes only provide concurrency.
    // From a non-worker thread the lanes run on pool workers; from inside
    // a worker, submit executes eagerly and the lanes run serially — in
    // both cases every job still runs with its own RunOptions and the
    // reports are bit-identical (test_serve.cpp).
    std::vector<std::future<void>> futures;
    futures.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      futures.push_back(pool.submit([this] { worker_loop(); }));
    }
    for (auto& f : futures) f.get();
  }
  // gnav-lint(wall-clock): profiler wall — closes t0 above.
  const auto drain_end = std::chrono::steady_clock::now();
  stats.wall_s = std::chrono::duration<double>(drain_end - t0).count();

  const support::MutexLock lock(mutex_);
  stats.started = starts_ - starts_before;
  // Assemble the feedback corpus in job-id order — never completion
  // order — so online refits are deterministic under contention.
  feedback_.clear();
  for (const auto& job : jobs_) {
    const bool this_drain = job->start_order >= starts_before &&
                            (job->state == JobState::kDone ||
                             job->state == JobState::kFailed);
    if (job->state == JobState::kDone) {
      if (this_drain) stats.completed += 1;
      feedback_.push_back(
          estimator::ProfiledRun{stats_, job->decided_config, job->report});
    } else if (job->state == JobState::kFailed && this_drain) {
      stats.failed += 1;
    }
  }
  if (options_.refit_after_drain && !feedback_.empty()) {
    std::vector<estimator::ProfiledRun> corpus = *options_.base_corpus;
    corpus.insert(corpus.end(), feedback_.begin(), feedback_.end());
    estimator_->fit(corpus);
  }

  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    static obs::Counter& drains =
        reg.counter("gnav_serve_drains_total", {},
                    "drain() calls that ran to completion");
    static obs::Gauge& drain_wall =
        reg.gauge("gnav_serve_drain_wall_seconds", {},
                  "Wall seconds of the most recent drain()");
    drains.add(1);
    drain_wall.set(stats.wall_s);
    // Per-tenant drain summary: std::map keeps tenant order deterministic.
    struct TenantDrain {
      std::size_t done = 0, failed = 0;
      double wait_s = 0.0, run_s = 0.0, price_s = 0.0;
    };
    std::map<std::string, TenantDrain> by_tenant;
    for (const auto& job : jobs_) {
      if (job->start_order < starts_before ||
          (job->state != JobState::kDone &&
           job->state != JobState::kFailed)) {
        continue;
      }
      TenantDrain& t = by_tenant[job->request.tenant];
      (job->state == JobState::kDone ? t.done : t.failed) += 1;
      t.wait_s += job->queue_wait_s;
      t.run_s += job->run_s;
      t.price_s += job->price.predicted_wall_s;
    }
    for (const auto& [tenant, t] : by_tenant) {
      log_info("drain tenant=", tenant, " done=", t.done,
                        " failed=", t.failed, " queue_wait_s=", t.wait_s,
                        " run_s=", t.run_s, " price_s=", t.price_s);
    }
  }
  return stats;
}

std::size_t JobScheduler::size() const {
  const support::MutexLock lock(mutex_);
  return jobs_.size();
}

JobOutcome JobScheduler::outcome(std::size_t id) const {
  const support::MutexLock lock(mutex_);
  GNAV_CHECK(id < jobs_.size(), "job id out of range");
  return *jobs_[id];
}

std::vector<estimator::ProfiledRun> JobScheduler::feedback() const {
  const support::MutexLock lock(mutex_);
  return feedback_;
}

}  // namespace gnav::serve
