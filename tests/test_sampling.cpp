// Tests for the unified sampler abstraction: structural invariants of all
// sampler kinds (parameterized), bias behavior, batching, and the Eq. 12
// batch-size model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "graph/graph_stats.hpp"
#include "sampling/batch_size_model.hpp"
#include "sampling/batcher.hpp"
#include "sampling/sampler_factory.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace gnav::sampling {
namespace {

graph::CsrGraph test_graph() {
  Rng rng(42);
  return graph::power_law_configuration(500, 2.2, 3, 60, rng);
}

std::vector<graph::NodeId> pick_seeds(const graph::CsrGraph& g,
                                      std::size_t count, Rng& rng) {
  std::vector<graph::NodeId> seeds;
  for (auto idx : rng.sample_without_replacement(g.num_nodes(),
                                                 static_cast<std::int64_t>(count))) {
    seeds.push_back(idx);
  }
  return seeds;
}

class SamplerInvariants : public ::testing::TestWithParam<SamplerKind> {};

TEST_P(SamplerInvariants, MiniBatchIsWellFormed) {
  const auto g = test_graph();
  Rng rng(7);
  SamplerSettings settings;
  settings.kind = GetParam();
  settings.hop_list = {4, 4};
  const auto sampler = make_sampler(settings, nullptr);
  const auto seeds = pick_seeds(g, 32, rng);

  for (int trial = 0; trial < 5; ++trial) {
    const MiniBatch mb = sampler->sample(g, seeds, rng);
    EXPECT_NO_THROW(mb.validate(g));
    // seeds occupy the first slots in order
    ASSERT_GE(mb.nodes.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(mb.nodes[i], seeds[i]);
    }
    ASSERT_EQ(mb.seed_local.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(mb.seed_local[i], static_cast<std::int64_t>(i));
    }
    EXPECT_GT(mb.sampling_work, 0.0);
    // every subgraph edge corresponds to a parent-graph edge
    for (graph::NodeId lv = 0; lv < mb.subgraph.num_nodes(); ++lv) {
      const auto gv = mb.nodes[static_cast<std::size_t>(lv)];
      for (graph::NodeId lu : mb.subgraph.neighbors(lv)) {
        const auto gu = mb.nodes[static_cast<std::size_t>(lu)];
        const auto nb = g.neighbors(gv);
        EXPECT_TRUE(std::binary_search(nb.begin(), nb.end(), gu))
            << "edge (" << gv << "," << gu << ") not in parent";
      }
    }
  }
}

TEST_P(SamplerInvariants, DeterministicGivenRngState) {
  const auto g = test_graph();
  SamplerSettings settings;
  settings.kind = GetParam();
  settings.hop_list = {3, 3};
  const auto sampler = make_sampler(settings, nullptr);
  Rng seed_rng(9);
  const auto seeds = pick_seeds(g, 16, seed_rng);
  Rng a(123);
  Rng b(123);
  const MiniBatch ma = sampler->sample(g, seeds, a);
  const MiniBatch mb = sampler->sample(g, seeds, b);
  EXPECT_EQ(ma.nodes, mb.nodes);
  EXPECT_EQ(ma.subgraph.indices(), mb.subgraph.indices());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SamplerInvariants,
                         ::testing::Values(SamplerKind::kNodeWise,
                                           SamplerKind::kLayerWise,
                                           SamplerKind::kSaintWalk,
                                           SamplerKind::kSaintNode,
                                           SamplerKind::kSaintEdge),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(NodeWiseSampler, FanoutBoundsBatchGrowth) {
  const auto g = test_graph();
  Rng rng(11);
  const auto seeds = pick_seeds(g, 20, rng);
  NodeWiseSampler narrow({2}, {});
  NodeWiseSampler wide({12}, {});
  const auto small = narrow.sample(g, seeds, rng);
  const auto large = wide.sample(g, seeds, rng);
  // 1-hop with fanout k: at most |B0| * (1 + k) vertices.
  EXPECT_LE(small.num_nodes(), static_cast<std::int64_t>(seeds.size() * 3));
  EXPECT_GT(large.num_nodes(), small.num_nodes());
}

TEST(NodeWiseSampler, FullNeighborhoodWithMinusOne) {
  const auto g = test_graph();
  Rng rng(13);
  const std::vector<graph::NodeId> seeds = {0};
  NodeWiseSampler full({-1}, {});
  const auto mb = full.sample(g, seeds, rng);
  EXPECT_EQ(mb.num_nodes(), 1 + g.degree(0));
}

TEST(NodeWiseSampler, BiasPrefersResidentVertices) {
  const auto g = test_graph();
  Rng rng(17);
  // Mark an arbitrary half of the vertices as "cached".
  std::vector<char> preference(static_cast<std::size_t>(g.num_nodes()), 0);
  for (std::size_t v = 0; v < preference.size(); v += 2) preference[v] = 1;

  SamplerSettings biased;
  biased.kind = SamplerKind::kNodeWise;
  biased.hop_list = {5, 5};
  biased.bias_rate = 0.9;
  const auto sampler = make_sampler(biased, &preference);
  SamplerSettings uniform = biased;
  uniform.bias_rate = 0.0;
  const auto base = make_sampler(uniform, nullptr);

  const auto seeds = pick_seeds(g, 40, rng);
  double biased_frac = 0.0;
  double uniform_frac = 0.0;
  for (int t = 0; t < 5; ++t) {
    const auto mb = sampler->sample(g, seeds, rng);
    const auto mu = base->sample(g, seeds, rng);
    auto frac = [&](const MiniBatch& m) {
      std::size_t hits = 0;
      for (auto v : m.nodes) hits += preference[static_cast<std::size_t>(v)];
      return static_cast<double>(hits) / static_cast<double>(m.nodes.size());
    };
    biased_frac += frac(mb);
    uniform_frac += frac(mu);
  }
  EXPECT_GT(biased_frac, uniform_frac + 0.3);
}

TEST(SamplerFactory, ValidatesBiasRate) {
  SamplerSettings s;
  s.bias_rate = 1.5;
  EXPECT_THROW(make_sampler(s, nullptr), Error);
}

TEST(SaintSampler, WalkLengthBoundsBatch) {
  const auto g = test_graph();
  Rng rng(19);
  const auto seeds = pick_seeds(g, 25, rng);
  SaintSampler walker(SaintSampler::Variant::kWalk, 3, 8.0, {});
  const auto mb = walker.sample(g, seeds, rng);
  // each walk adds at most walk_length vertices
  EXPECT_LE(mb.num_nodes(),
            static_cast<std::int64_t>(seeds.size() * (1 + 3)));
  EXPECT_EQ(walker.hop_list(), (std::vector<int>{1, 1, 1}));
}

TEST(SaintSampler, NodeBudgetRespected) {
  const auto g = test_graph();
  Rng rng(23);
  const auto seeds = pick_seeds(g, 10, rng);
  SaintSampler node_sampler(SaintSampler::Variant::kNode, 1, 4.0, {});
  const auto mb = node_sampler.sample(g, seeds, rng);
  EXPECT_LE(mb.num_nodes(), static_cast<std::int64_t>(10 + 10 * 4));
}

// ------------------------------------------------------------------
// Sampler edge cases.

TEST(SamplerEdgeCases, IsolatedSeedVertexYieldsSingletonBatch) {
  // Vertex 4 has no edges at all; every sampler must still produce a
  // well-formed batch containing it.
  graph::GraphBuilder b(5);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(2, 3);
  const auto g = b.build();
  const std::vector<graph::NodeId> seeds = {4};
  for (SamplerKind kind :
       {SamplerKind::kNodeWise, SamplerKind::kLayerWise,
        SamplerKind::kSaintWalk, SamplerKind::kSaintNode,
        SamplerKind::kSaintEdge}) {
    Rng rng(41);
    SamplerSettings settings;
    settings.kind = kind;
    settings.hop_list = {3, 3};
    const auto sampler = make_sampler(settings, nullptr);
    const MiniBatch mb = sampler->sample(g, seeds, rng);
    EXPECT_NO_THROW(mb.validate(g)) << to_string(kind);
    ASSERT_GE(mb.nodes.size(), 1u) << to_string(kind);
    EXPECT_EQ(mb.nodes[0], 4) << to_string(kind);
    EXPECT_EQ(mb.seed_local[0], 0) << to_string(kind);
    // The isolated seed contributes no edges of its own.
    EXPECT_EQ(mb.subgraph.degree(0), 0) << to_string(kind);
  }
}

TEST(SamplerEdgeCases, FanoutGreaterThanDegreeKeepsWholeNeighborhood) {
  const auto g = test_graph();
  Rng rng(43);
  const std::vector<graph::NodeId> seeds = {0};
  NodeWiseSampler sampler({1000}, {});
  const auto mb = sampler.sample(g, seeds, rng);
  EXPECT_EQ(mb.num_nodes(), 1 + g.degree(0));
  // Biased variant with k > degree also takes the full-neighborhood
  // path (probabilistic drops only) and must stay well-formed.
  std::vector<char> preference(static_cast<std::size_t>(g.num_nodes()), 0);
  NodeWiseSampler biased({1000}, SamplingBias{&preference, 1.0, nullptr});
  const auto mbb = biased.sample(g, seeds, rng);
  EXPECT_NO_THROW(mbb.validate(g));
  EXPECT_LE(mbb.num_nodes(), mb.num_nodes());
}

TEST(SamplerEdgeCases, SaintNodeBudgetClampedToGraph) {
  const auto g = test_graph();
  Rng rng(47);
  const auto seeds = pick_seeds(g, 50, rng);
  // budget_multiplier x |seeds| = 50000 >> |V| = 500: before the clamp
  // the rejection loop burned budget*30+10 draws and silently returned a
  // short batch; now the batch is exactly the whole graph.
  SaintSampler sampler(SaintSampler::Variant::kNode, 1, 1000.0, {});
  const auto mb = sampler.sample(g, seeds, rng);
  EXPECT_EQ(mb.num_nodes(), g.num_nodes());
  EXPECT_NO_THROW(mb.validate(g));
}

TEST(SamplerEdgeCases, FullyBiasedSamplingWithEmptyPreferenceSet) {
  // bias_rate = 1 with nothing resident: every weighted draw sees only
  // weight-1 vertices (zero preferred mass) and must behave uniformly
  // rather than dividing by zero.
  const auto g = test_graph();
  std::vector<char> preference(static_cast<std::size_t>(g.num_nodes()), 0);
  for (SamplerKind kind :
       {SamplerKind::kNodeWise, SamplerKind::kLayerWise,
        SamplerKind::kSaintWalk, SamplerKind::kSaintNode}) {
    Rng rng(53);
    SamplerSettings settings;
    settings.kind = kind;
    settings.hop_list = {4, 4};
    settings.bias_rate = 1.0;
    const auto sampler = make_sampler(settings, &preference);
    const auto seeds = pick_seeds(g, 16, rng);
    const MiniBatch mb = sampler->sample(g, seeds, rng);
    EXPECT_NO_THROW(mb.validate(g)) << to_string(kind);
    EXPECT_GE(mb.num_nodes(),
              static_cast<std::int64_t>(seeds.size())) << to_string(kind);
  }
}

// ------------------------------------------------------------------
// The per-batch task_seed determinism contract: for every sampler kind
// the epoch's mini-batch stream must be bit-identical whether batches
// build on 1, 2, or 8 pool threads.

TEST(MiniBatchLoader, BitIdenticalAcrossThreadCounts) {
  const auto g = test_graph();
  Rng seed_rng(59);
  std::vector<graph::NodeId> train;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) train.push_back(v);
  SeedBatcher batcher(train, 64);
  const auto seed_batches = batcher.epoch_batches(seed_rng);
  const std::uint64_t epoch_seed = 0xEB0C5EEDULL;

  for (SamplerKind kind :
       {SamplerKind::kNodeWise, SamplerKind::kLayerWise,
        SamplerKind::kSaintWalk, SamplerKind::kSaintNode,
        SamplerKind::kSaintEdge, SamplerKind::kCluster}) {
    SamplerSettings settings;
    settings.kind = kind;
    settings.hop_list = {4, 4};
    const auto sampler = make_sampler(settings, nullptr);

    std::vector<MiniBatch> reference;
    for (std::size_t threads : {1u, 2u, 8u}) {
      support::ThreadPool pool(threads);
      MiniBatchLoader loader(*sampler, g, seed_batches, epoch_seed, pool,
                             /*window=*/4);
      std::vector<MiniBatch> stream;
      while (!loader.done()) stream.push_back(loader.next());
      if (threads == 1u) {
        reference = std::move(stream);
        continue;
      }
      ASSERT_EQ(stream.size(), reference.size()) << to_string(kind);
      for (std::size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(stream[i].nodes, reference[i].nodes)
            << to_string(kind) << " batch " << i << " @" << threads;
        EXPECT_EQ(stream[i].seed_local, reference[i].seed_local)
            << to_string(kind) << " batch " << i;
        EXPECT_EQ(stream[i].subgraph.indptr(),
                  reference[i].subgraph.indptr())
            << to_string(kind) << " batch " << i;
        EXPECT_EQ(stream[i].subgraph.indices(),
                  reference[i].subgraph.indices())
            << to_string(kind) << " batch " << i;
        EXPECT_DOUBLE_EQ(stream[i].sampling_work,
                         reference[i].sampling_work)
            << to_string(kind) << " batch " << i;
      }
    }
  }
}

TEST(SeedBatcher, PartitionsTrainSetExactly) {
  std::vector<graph::NodeId> train;
  for (graph::NodeId v = 0; v < 103; ++v) train.push_back(v);
  SeedBatcher batcher(train, 25);
  EXPECT_EQ(batcher.batches_per_epoch(), 5u);  // ceil(103/25)
  Rng rng(29);
  const auto batches = batcher.epoch_batches(rng);
  ASSERT_EQ(batches.size(), 5u);
  std::set<graph::NodeId> seen;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 25u);
    for (auto v : b) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(seen.size(), 103u);
  EXPECT_THROW(SeedBatcher({}, 10), Error);
}

TEST(SeedBatcher, ReshufflesAcrossEpochs) {
  std::vector<graph::NodeId> train;
  for (graph::NodeId v = 0; v < 64; ++v) train.push_back(v);
  SeedBatcher batcher(train, 64);
  Rng rng(31);
  const auto e1 = batcher.epoch_batches(rng);
  const auto e2 = batcher.epoch_batches(rng);
  EXPECT_NE(e1[0], e2[0]);
}

TEST(BatchSizeModel, ExpansionProductMonotone) {
  EXPECT_GT(expansion_product({10, 10}, 20.0, 1.0),
            expansion_product({5, 5}, 20.0, 1.0));
  // fanout above avg degree saturates at avg degree
  EXPECT_DOUBLE_EQ(expansion_product({100}, 10.0, 1.0),
                   expansion_product({-1}, 10.0, 1.0));
  EXPECT_THROW(expansion_product({5}, 10.0, 0.0), Error);
}

TEST(BatchSizeModel, AnalyticBoundedByGraphAndBatch) {
  const auto g = test_graph();
  const auto profile = graph::profile_graph(g);
  const double e = analytic_batch_size(64, {10, 10}, profile, 0.8);
  EXPECT_GE(e, 64.0);
  EXPECT_LE(e, static_cast<double>(profile.num_nodes));
  // Never below the tree bound's saturation inverse: larger batches ->
  // larger expectation.
  EXPECT_GT(analytic_batch_size(128, {10, 10}, profile, 0.8), e);
}

TEST(BatchSizeModel, AnalyticTracksMeasuredWithinFactorTwo) {
  // The analytic core should be in the right ballpark before any learned
  // penalty (this is what makes the gray-box estimator data-efficient).
  const auto ds = graph::load_dataset("reddit2");
  const auto profile = graph::profile_graph(ds.graph);
  Rng rng(37);
  SamplerSettings settings;
  settings.kind = SamplerKind::kNodeWise;
  settings.hop_list = {10, 10};
  const auto sampler = make_sampler(settings, nullptr);
  std::vector<graph::NodeId> seeds = pick_seeds(ds.graph, 256, rng);
  double measured = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    measured += static_cast<double>(
        sampler->sample(ds.graph, seeds, rng).num_nodes());
  }
  measured /= trials;
  const double analytic = analytic_batch_size(256, {10, 10}, profile, 0.82);
  EXPECT_GT(analytic, measured * 0.5);
  EXPECT_LT(analytic, measured * 2.0);
}

}  // namespace
}  // namespace gnav::sampling
