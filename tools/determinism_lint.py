#!/usr/bin/env python3
"""Determinism lint for the gnav source tree.

gnav's contract is bit-identical TrainReports at any thread count,
executor, or backend (ROADMAP "determinism contract"). The patterns this
lint bans are the ways that contract historically rots:

  raw-rand
      rand()/srand(), std::random_device, and time(...) seeding smuggle
      ambient nondeterminism past the task_seed(base, index) discipline.
      All randomness must flow through support::Rng streams derived from
      explicit seeds.

  wall-clock
      Argless std::chrono::*::now() is legitimate ONLY inside profiler
      walls (measuring how long something took). A now() that feeds
      anything data-bearing (a seed, a cache decision, a batch order)
      breaks replay. Every call site must therefore carry an explicit
      `gnav-lint(wall-clock)` annotation declaring it a profiler wall —
      unannotated calls fail the lint. Two telemetry surfaces count as
      annotated by construction: any file under an obs/ directory (the
      whole layer exists to timestamp spans; its TrainReport-neutrality
      is pinned by test instead), and a line within annotation reach of a
      GNAV_TRACE_SPAN (a span body is a profiler wall by definition).

  unordered-iteration
      Iterating a std::unordered_map/unordered_set feeds hash-order —
      which varies across libstdc++ versions and pointer layouts — into
      whatever consumes the loop. Membership tests are fine; iteration
      is not. (cluster_sampler's seed-count map was exactly this: only a
      downstream total-order sort kept it deterministic.)

  nondet-reduction
      In kernel code (kernels/, nn/, tensor/, compute/), std::reduce and
      std::transform_reduce permit out-of-order FP accumulation, fused
      multiply-add intrinsics/std::fma change rounding vs a*b+c, and
      fast-math pragmas void -ffp-contract=off. All reorder float sums
      that golden traces pin bitwise.

  mutable-ref-accessor
      In a class that owns a mutex, a `const T& accessor() const
      { return member_; }` hands out a live alias into guarded state —
      the caller keeps reading after the lock is gone (the
      residency_version()/feedback() bug class). Snapshot by value, or
      annotate the accessor if the alias is a designed live-read surface.

Suppressing a finding
    Put `gnav-lint(<rule>)` in a comment on the offending line or within
    the three lines above it, with a reason:

        const auto t0 = Clock::now();  // gnav-lint(wall-clock): profiler wall

    File-wide or unannotatable exemptions go in ALLOWLIST below, keyed
    "relative/path.cpp:rule", with a justification string. Both paths are
    deliberate: every exemption is written down next to a reason.

Usage
    tools/determinism_lint.py [--self-test] [paths...]

    With no paths, lints src/ relative to the repo root (the directory
    containing this tools/ dir). --self-test runs every rule against an
    embedded corpus of known-bad snippets (each must trip exactly its
    rule) and a known-good snippet (which must stay clean), then exits.

Exit codes: 0 clean / self-test passed, 1 findings / self-test failed.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Files the lint walks: C++ sources and headers.
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

# Directories whose floating-point accumulation is pinned by golden
# traces — the nondet-reduction rule applies only here.
KERNEL_DIRS = ("kernels", "nn", "tensor", "compute")

# path-relative-to-repo:rule -> justification. Prefer inline
# `gnav-lint(rule)` annotations; use this only when the site cannot carry
# a comment (generated code, third-party includes).
ALLOWLIST: dict[str, str] = {
    # (empty — every current exemption is an inline annotation)
}

ANNOTATION = re.compile(r"gnav-lint\((?P<rules>[\w,\- ]+)\)")
# How many lines above a site an annotation comment still applies.
ANNOTATION_REACH = 3

# A trace span within reach makes a clock read a profiler wall by
# definition (the span exists to measure that region).
TRACE_SPAN = re.compile(r"\bGNAV_TRACE_SPAN\s*\(")

RULES = {
    "raw-rand": [
        re.compile(r"(?<![\w:])s?rand\s*\("),
        re.compile(r"std::random_device"),
        re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&)"),
    ],
    "wall-clock": [
        re.compile(
            r"(?:\w+::)*(?:steady_clock|system_clock|high_resolution_clock"
            r"|Clock)::now\s*\(\s*\)"
        ),
    ],
    "nondet-reduction": [
        re.compile(r"std::(?:transform_)?reduce\s*[<(]"),
        re.compile(r"_mm\w*_(?:fmadd|fmsub|fnmadd|fnmsub)_"),
        re.compile(r"std::fmaf?\s*\("),
        re.compile(r"#\s*pragma\s+(?:GCC|clang)\s+optimize|fast-math"),
    ],
}

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*\n?"
    r"\s*(?P<name>\w+)\s*[;({=]"
)
RANGE_FOR = re.compile(r"for\s*\([^;)]*?:\s*(?:\*?\s*)?(?P<expr>[\w.\->]+)\s*\)")
# Only begin(): iteration always needs it, while a bare end() is the
# membership idiom (`find(x) != end()`), which is deterministic.
BEGIN_CALL = re.compile(r"(?P<name>\w+)\s*\.\s*c?begin\s*\(\s*\)")
MUTABLE_REF_ACCESSOR = re.compile(
    r"&\s+(?P<fn>\w+)\s*\(\s*\)\s*const\s*(?:GNAV_\w+\s*(?:\([^)]*\))?\s*)?"
    r"\{\s*return\s+(?P<member>\w+_)\s*;"
)
MUTEX_MARKER = re.compile(r"\b(?:support::)?Mutex\b|std::mutex\b")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        try:
            rel = self.path.relative_to(REPO_ROOT)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def annotated(lines: list[str], idx: int, rule: str) -> bool:
    """True when line idx (0-based) carries — or is preceded within
    ANNOTATION_REACH lines by — a gnav-lint(<rule>) annotation."""
    lo = max(0, idx - ANNOTATION_REACH)
    for j in range(idx, lo - 1, -1):
        m = ANNOTATION.search(lines[j])
        if m and rule in [r.strip() for r in m.group("rules").split(",")]:
            return True
    return False


def in_kernel_dir(path: Path) -> bool:
    return any(part in KERNEL_DIRS for part in path.parts)


def lint_file(path: Path, text: str) -> list[Finding]:
    findings: list[Finding] = []
    lines = text.splitlines()
    rel_key = None
    try:
        rel_key = str(path.relative_to(REPO_ROOT))
    except ValueError:
        rel_key = str(path)

    # The obs/ telemetry layer IS the profiler-wall infrastructure: every
    # clock read there feeds spans or metrics, never data. Exempt by
    # directory part (not substring — src/obs/, never src/obs_foo/).
    obs_layer = "obs" in path.parts

    def allowed(rule: str, idx: int) -> bool:
        if f"{rel_key}:{rule}" in ALLOWLIST:
            return True
        if rule == "wall-clock":
            if obs_layer:
                return True
            lo = max(0, idx - ANNOTATION_REACH)
            if any(TRACE_SPAN.search(lines[j]) for j in range(lo, idx + 1)):
                return True
        return annotated(lines, idx, rule)

    def code_part(line: str) -> str:
        # Strip line comments so commented-out examples don't trip rules
        # (the annotation scan above still sees the full line).
        return line.split("//", 1)[0]

    # --- simple per-line pattern rules -----------------------------------
    for rule, patterns in RULES.items():
        if rule == "nondet-reduction" and not in_kernel_dir(path):
            continue
        for i, line in enumerate(lines):
            code = code_part(line)
            for pat in patterns:
                if pat.search(code) and not allowed(rule, i):
                    findings.append(
                        Finding(path, i + 1, rule, f"banned pattern: {pat.pattern}")
                    )
                    break

    # --- unordered-iteration ---------------------------------------------
    unordered_names = {m.group("name") for m in UNORDERED_DECL.finditer(text)}
    # Drop type/parameter-ish captures that are clearly not variables.
    unordered_names.discard("")
    if unordered_names:
        for i, line in enumerate(lines):
            code = code_part(line)
            hits = []
            m = RANGE_FOR.search(code)
            if m:
                base = m.group("expr").split(".")[0].split("->")[0].lstrip("*&")
                if base in unordered_names:
                    hits.append(
                        f"range-for over unordered container '{base}' "
                        "iterates in hash order"
                    )
            for b in BEGIN_CALL.finditer(code):
                if b.group("name") in unordered_names:
                    hits.append(
                        f"begin() over unordered container "
                        f"'{b.group('name')}' iterates in hash order"
                    )
            for msg in hits:
                if not allowed("unordered-iteration", i):
                    findings.append(Finding(path, i + 1, "unordered-iteration", msg))

    # --- mutable-ref-accessor --------------------------------------------
    # Only meaningful in files that hold a mutex: that is where a
    # returned reference outlives the lock that made it coherent.
    if MUTEX_MARKER.search(text):
        for m in MUTABLE_REF_ACCESSOR.finditer(text):
            i = text.count("\n", 0, m.start())
            if not allowed("mutable-ref-accessor", i):
                findings.append(
                    Finding(
                        path,
                        i + 1,
                        "mutable-ref-accessor",
                        f"'{m.group('fn')}()' returns a reference to member "
                        f"'{m.group('member')}' from a mutex-holding class; "
                        "snapshot by value or annotate the designed alias",
                    )
                )
    return findings


def lint_paths(paths: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for root in paths:
        files = [root] if root.is_file() else sorted(root.rglob("*"))
        for f in files:
            if f.suffix in CPP_SUFFIXES and f.is_file():
                findings.append(None)  # placeholder to keep mypy quiet
                findings.pop()
                findings.extend(lint_file(f, f.read_text(encoding="utf-8")))
    return findings


# --------------------------------------------------------------------------
# Self-test corpus: every snippet is (rule-it-must-trip | None, code).
# None = must stay clean. Each bad snippet exercises one rule; the good
# snippets pin the suppression mechanisms and non-matches.

SELF_TEST_CORPUS: list[tuple[str | None, str, str] ] = [
    (
        "raw-rand",
        "bad_rand.cpp",
        "int pick() { return rand() % 7; }\n",
    ),
    (
        "raw-rand",
        "bad_random_device.cpp",
        "std::random_device rd;\nunsigned s = rd();\n",
    ),
    (
        "raw-rand",
        "bad_time_seed.cpp",
        "auto seed = time(nullptr);\n",
    ),
    (
        "wall-clock",
        "bad_now.cpp",
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        "unordered-iteration",
        "bad_unordered_iter.cpp",
        "std::unordered_map<int, int> counts;\n"
        "for (const auto& kv : counts) { use(kv); }\n",
    ),
    (
        "unordered-iteration",
        "bad_unordered_begin.cpp",
        "std::unordered_set<int> seen;\n"
        "std::vector<int> v(seen.begin(), seen.end());\n",
    ),
    (
        "nondet-reduction",
        "kernels/bad_reduce.cpp",
        "double s = std::reduce(x.begin(), x.end(), 0.0);\n",
    ),
    (
        "nondet-reduction",
        "nn/bad_fma.cpp",
        "__m256 r = _mm256_fmadd_ps(a, b, c);\n",
    ),
    (
        "mutable-ref-accessor",
        "bad_ref_accessor.hpp",
        "class C {\n"
        " public:\n"
        "  const std::vector<int>& rows() const { return rows_; }\n"
        " private:\n"
        "  mutable std::mutex mu_;\n"
        "  std::vector<int> rows_;\n"
        "};\n",
    ),
    (
        None,
        "obs/good_obs_layer_now.cpp",
        # Clock reads inside an obs/ directory are the telemetry layer's
        # own profiler walls — exempt by construction.
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        "wall-clock",
        "obs_lookalike/bad_not_obs_now.cpp",
        # The exemption matches the path PART 'obs', never a substring.
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        None,
        "good_span_reach_now.cpp",
        # A GNAV_TRACE_SPAN within annotation reach declares the region a
        # profiler wall.
        'GNAV_TRACE_SPAN("pipeline", "sample");\n'
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        None,
        "good_annotated_now.cpp",
        "// gnav-lint(wall-clock): profiler wall\n"
        "auto t = std::chrono::steady_clock::now();\n",
    ),
    (
        None,
        "good_membership.cpp",
        "std::unordered_set<int> seen;\n"
        "bool dup = seen.find(3) != seen.end();\n"
        "seen.insert(4);\n",
    ),
    (
        None,
        "good_value_accessor.hpp",
        "class C {\n"
        " public:\n"
        "  std::vector<int> rows() const { return rows_; }\n"
        " private:\n"
        "  mutable std::mutex mu_;\n"
        "  std::vector<int> rows_;\n"
        "};\n",
    ),
    (
        None,
        "good_reduce_outside_kernels.cpp",
        # std::reduce outside kernel dirs is out of the rule's scope: the
        # golden traces only pin kernel-path accumulation order.
        "double s = std::reduce(x.begin(), x.end(), 0.0);\n",
    ),
    (
        None,
        "good_runtime_name.cpp",
        # 'runtime(' and 'wall_time(' must not trip the time( pattern.
        "double wall_time();\ndouble r = wall_time();\n",
    ),
]


def self_test() -> int:
    failures = []
    for expected_rule, fake_name, code in SELF_TEST_CORPUS:
        path = REPO_ROOT / "selftest" / fake_name  # fake path, never read
        found = lint_file(path, code)
        rules = {f.rule for f in found}
        if expected_rule is None:
            if found:
                failures.append(
                    f"{fake_name}: expected clean, got {sorted(rules)}"
                )
        elif expected_rule not in rules:
            failures.append(
                f"{fake_name}: expected [{expected_rule}], got {sorted(rules) or 'clean'}"
            )
    if failures:
        print("determinism_lint self-test FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"determinism_lint self-test passed ({len(SELF_TEST_CORPUS)} cases)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded known-bad corpus against every rule",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    roots = [Path(p).resolve() for p in args.paths] or [REPO_ROOT / "src"]
    for r in roots:
        if not r.exists():
            print(f"determinism_lint: no such path: {r}", file=sys.stderr)
            return 1
    findings = lint_paths(roots)
    for f in findings:
        print(f)
    if findings:
        print(
            f"\ndeterminism_lint: {len(findings)} finding(s). Suppress a "
            "deliberate site with a `gnav-lint(<rule>)` comment (same line "
            "or up to 3 lines above) plus a reason, or an ALLOWLIST entry."
        )
        return 1
    print("determinism_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
