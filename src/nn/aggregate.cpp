#include "nn/aggregate.hpp"

#include <cmath>

#include "support/error.hpp"

namespace gnav::nn {

using tensor::Tensor;

namespace {
void check_shapes(const graph::CsrGraph& g, const Tensor& x) {
  GNAV_CHECK(x.rows() == static_cast<std::size_t>(g.num_nodes()),
             "aggregation: feature rows (" + std::to_string(x.rows()) +
                 ") != num_nodes (" + std::to_string(g.num_nodes()) + ")");
}
}  // namespace

Tensor aggregate_mean(const graph::CsrGraph& g, const Tensor& x) {
  check_shapes(g, x);
  Tensor y(x.rows(), x.cols());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    if (nb.empty()) continue;
    float* yv = y.row(static_cast<std::size_t>(v));
    for (graph::NodeId u : nb) {
      const float* xu = x.row(static_cast<std::size_t>(u));
      for (std::size_t j = 0; j < x.cols(); ++j) yv[j] += xu[j];
    }
    const float inv = 1.0f / static_cast<float>(nb.size());
    for (std::size_t j = 0; j < x.cols(); ++j) yv[j] *= inv;
  }
  return y;
}

Tensor aggregate_mean_transpose(const graph::CsrGraph& g, const Tensor& dy) {
  check_shapes(g, dy);
  Tensor dx(dy.rows(), dy.cols());
  // dX[u] += dY[v]/deg(v) for each edge (v,u). Iterating v's neighbor list
  // scatter-adds into dx rows; single-threaded, so no atomicity concerns.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    if (nb.empty()) continue;
    const float inv = 1.0f / static_cast<float>(nb.size());
    const float* dyv = dy.row(static_cast<std::size_t>(v));
    for (graph::NodeId u : nb) {
      float* dxu = dx.row(static_cast<std::size_t>(u));
      for (std::size_t j = 0; j < dy.cols(); ++j) dxu[j] += inv * dyv[j];
    }
  }
  return dx;
}

Tensor aggregate_gcn(const graph::CsrGraph& g, const Tensor& x) {
  check_shapes(g, x);
  Tensor y(x.rows(), x.cols());
  std::vector<float> inv_sqrt(static_cast<std::size_t>(g.num_nodes()));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    inv_sqrt[static_cast<std::size_t>(v)] =
        1.0f / std::sqrt(static_cast<float>(g.degree(v) + 1));
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    float* yv = y.row(static_cast<std::size_t>(v));
    const float sv = inv_sqrt[static_cast<std::size_t>(v)];
    // self loop contribution
    const float* xv = x.row(static_cast<std::size_t>(v));
    const float wself = sv * sv;
    for (std::size_t j = 0; j < x.cols(); ++j) yv[j] += wself * xv[j];
    for (graph::NodeId u : g.neighbors(v)) {
      const float w = sv * inv_sqrt[static_cast<std::size_t>(u)];
      const float* xu = x.row(static_cast<std::size_t>(u));
      for (std::size_t j = 0; j < x.cols(); ++j) yv[j] += w * xu[j];
    }
  }
  return y;
}

Tensor aggregate_sum(const graph::CsrGraph& g, const Tensor& x) {
  check_shapes(g, x);
  Tensor y(x.rows(), x.cols());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    float* yv = y.row(static_cast<std::size_t>(v));
    for (graph::NodeId u : g.neighbors(v)) {
      const float* xu = x.row(static_cast<std::size_t>(u));
      for (std::size_t j = 0; j < x.cols(); ++j) yv[j] += xu[j];
    }
  }
  return y;
}

double aggregation_flops(const graph::CsrGraph& g, std::size_t cols) {
  return 2.0 * static_cast<double>(g.num_edges()) *
         static_cast<double>(cols);
}

}  // namespace gnav::nn
