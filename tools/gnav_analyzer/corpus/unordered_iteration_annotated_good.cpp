// Known-good via escape hatch: the violation is real but justified
// inline — the annotation (with its mandatory reason) blesses the line
// directly below it, exactly like determinism_lint's gnav-lint notes.
#include "gnav_stub.hpp"

int blessed_fold(std::unordered_map<int, int>& m) {
  int sum = 0;
  // gnav-analyzer(unordered-iteration): integer sum — commutative fold, order cannot escape.
  for (auto& kv : m) {
    sum += kv.second;
  }
  return sum;
}
