#include "estimator/overlap_model.hpp"

#include <algorithm>
#include <cmath>

#include "estimator/features.hpp"
#include "support/log.hpp"

namespace gnav::estimator {
namespace {

// Ratio clamp: wall below a quarter of the serial stage work would mean a
// >4x pipeline speedup out of three stages (impossible); above 1.5x the
// "measurement" is dominated by scheduling noise, not overlap.
constexpr double kMinRatio = 0.25;
constexpr double kMaxRatio = 1.5;

// Small ridge penalty: the feature columns are few and partially
// collinear (stage shares sum to ~1), and eligible corpora can be
// smaller than the feature count.
constexpr double kRidgeLambda = 1e-2;

double clamp_ratio(double r) { return std::clamp(r, kMinRatio, kMaxRatio); }

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

OverlapModel::OverlapModel(hw::HardwareProfile hw)
    : cost_(std::move(hw)), ridge_(kRidgeLambda) {}

bool OverlapModel::row_eligible(const ProfiledRun& run) {
  const runtime::PipelineReport& p = run.report.pipeline;
  if (p.executor != "async") return false;
  if (!finite_nonneg(p.sample_wall_s) || !finite_nonneg(p.transfer_wall_s) ||
      !finite_nonneg(p.compute_wall_s)) {
    return false;
  }
  return std::isfinite(p.measured_wall_s) && p.measured_wall_s > 0.0 &&
         p.measured_sequential_s() > 0.0 && p.prefetch_depth >= 1;
}

double OverlapModel::measured_ratio(const runtime::TrainReport& report) {
  const runtime::PipelineReport& p = report.pipeline;
  const double serial = p.measured_sequential_s();
  if (!(serial > 0.0) || !(p.measured_wall_s > 0.0)) return 1.0;
  return clamp_ratio(p.measured_wall_s / serial);
}

double OverlapModel::analytic_ratio(const runtime::TrainReport& report) {
  const runtime::PipelineReport& p = report.pipeline;
  if (!(p.modeled_sequential_s > 0.0)) return 1.0;
  return clamp_ratio(p.modeled_overlapped_s / p.modeled_sequential_s);
}

const std::vector<std::string>& OverlapModel::feature_names() {
  static const std::vector<std::string> names = {
      "analytic_eq4_ratio",  "host_stage_share",
      "compute_stage_share", "bottleneck_share",
      "log_batch_nodes",     "log2_prefetch_depth",
      "log2_sampler_workers", "chained_producer",
      "push_stall_rate",     "pop_stall_rate",
      "occupancy_frac",
  };
  return names;
}

std::vector<double> OverlapModel::features(
    const runtime::TrainConfig& config, const DatasetStats& stats,
    const OverlapExecutorShape& shape, double push_stall_rate,
    double pop_stall_rate, double occupancy_frac) const {
  // Stage balance from the white-box skeleton only (analytic batch shape
  // and cache-hit prior) — identical at fit and predict time, no
  // measured quantity leaks into the white-box columns.
  const double b_nodes = std::max(analytic_batch_nodes(config, stats), 1.0);
  const double b_edges =
      b_nodes * std::max(stats.profile.avg_degree, 1.0);
  const double hit = analytic_cache_hit_prior(config, stats);
  const hw::IterationTimes t = cost_.iteration_times(
      analytic_iteration_volumes(config, stats, b_nodes, b_edges, hit));
  const double seq = std::max(t.sequential(), 1e-12);
  const double host = t.t_sample + t.t_transfer;
  const double device = t.t_replace + t.t_compute;
  const double bottleneck =
      std::max({t.t_sample, t.t_transfer, t.t_compute + t.t_replace});

  // The chained producer (cache-aware bias couples sample(i) to
  // prepare(i-1)) collapses the sampler fan-out to one thread. Both
  // shape fields are floored at 1 (a sync report's defaults are 0, and
  // clamp with hi < lo would be UB).
  const bool chained = config.bias_rate > 0.0;
  const std::size_t depth_floor =
      std::max<std::size_t>(shape.prefetch_depth, 1);
  const double depth = static_cast<double>(depth_floor);
  const double workers =
      chained ? 1.0
              : static_cast<double>(std::clamp<std::size_t>(
                    shape.sampler_workers, 1, depth_floor));

  std::vector<double> f;
  f.reserve(feature_names().size());
  f.push_back(clamp_ratio(std::max(host, device) / seq));
  f.push_back(host / seq);
  f.push_back(t.t_compute / seq);
  f.push_back(bottleneck / seq);
  f.push_back(std::log(b_nodes));
  f.push_back(std::log2(depth));
  f.push_back(std::log2(std::max(workers, 1.0)));
  f.push_back(chained ? 1.0 : 0.0);
  f.push_back(push_stall_rate);
  f.push_back(pop_stall_rate);
  f.push_back(occupancy_frac);
  return f;
}

void OverlapModel::fit(const std::vector<ProfiledRun>& runs) {
  fitted_ = false;
  rows_ = 0;
  std::vector<const ProfiledRun*> eligible;
  for (const ProfiledRun& run : runs) {
    if (row_eligible(run)) eligible.push_back(&run);
  }
  if (eligible.size() < min_rows()) {
    log_info("overlap model: only ", eligible.size(),
             " async-executor rows (need ", min_rows(),
             ") — keeping the analytic Eq.4 fallback");
    return;
  }

  // Imputation means for the measured-only columns come first so the
  // predict-time substitution matches the training distribution.
  mean_push_stall_rate_ = 0.0;
  mean_pop_stall_rate_ = 0.0;
  mean_occupancy_frac_ = 0.0;
  std::vector<double> push_rates, pop_rates, occ_fracs;
  for (const ProfiledRun* run : eligible) {
    const runtime::PipelineReport& p = run->report.pipeline;
    const double batches = std::max(
        1.0, static_cast<double>(run->report.iterations_per_epoch));
    push_rates.push_back(static_cast<double>(p.push_stalls) / batches);
    pop_rates.push_back(static_cast<double>(p.pop_stalls) / batches);
    occ_fracs.push_back(
        p.mean_queue_occupancy /
        static_cast<double>(std::max<std::size_t>(p.prefetch_depth, 1)));
    mean_push_stall_rate_ += push_rates.back();
    mean_pop_stall_rate_ += pop_rates.back();
    mean_occupancy_frac_ += occ_fracs.back();
  }
  const double n = static_cast<double>(eligible.size());
  mean_push_stall_rate_ /= n;
  mean_pop_stall_rate_ /= n;
  mean_occupancy_frac_ /= n;

  ml::Matrix x;
  std::vector<double> y;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    const ProfiledRun& run = *eligible[i];
    const OverlapExecutorShape shape{run.report.pipeline.prefetch_depth,
                                     run.report.pipeline.sampler_workers};
    x.push_back(features(run.config, run.stats, shape, push_rates[i],
                         pop_rates[i], occ_fracs[i]));
    y.push_back(std::log(measured_ratio(run.report)));
  }
  ridge_.fit(x, y);
  rows_ = eligible.size();
  fitted_ = true;
  log_info("overlap model fitted on ", rows_, " async-executor rows");
}

double OverlapModel::predict_ratio(const runtime::TrainConfig& config,
                                   const DatasetStats& stats,
                                   const OverlapExecutorShape& shape,
                                   double analytic_fallback) const {
  if (!fitted_) return clamp_ratio(analytic_fallback);
  const auto f = features(config, stats, shape, mean_push_stall_rate_,
                          mean_pop_stall_rate_, mean_occupancy_frac_);
  return clamp_ratio(std::exp(ridge_.predict_one(f)));
}

}  // namespace gnav::estimator
