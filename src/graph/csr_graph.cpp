#include "graph/csr_graph.hpp"

#include <algorithm>
#include <atomic>

#include "support/error.hpp"

namespace gnav::graph {

std::uint64_t CsrGraph::next_uid() {
  // 1-based so 0 stays available as an "unset" sentinel for cache keys.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

CsrGraph::CsrGraph(std::vector<EdgeId> indptr, std::vector<NodeId> indices)
    : indptr_(std::move(indptr)), indices_(std::move(indices)) {
  GNAV_CHECK(!indptr_.empty(), "indptr must have at least one entry");
  GNAV_CHECK(indptr_.front() == 0, "indptr must start at 0");
  for (std::size_t i = 1; i < indptr_.size(); ++i) {
    GNAV_CHECK(indptr_[i] >= indptr_[i - 1], "indptr must be non-decreasing");
  }
  GNAV_CHECK(static_cast<std::size_t>(indptr_.back()) == indices_.size(),
             "indptr.back() must equal indices.size()");
  const NodeId n = num_nodes();
  for (NodeId u : indices_) {
    GNAV_CHECK(u >= 0 && u < n, "edge endpoint out of range");
  }
}

std::vector<std::size_t> CsrGraph::degrees() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(num_nodes()));
  for (NodeId v = 0; v < num_nodes(); ++v) {
    out[static_cast<std::size_t>(v)] = static_cast<std::size_t>(degree(v));
  }
  return out;
}

double CsrGraph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
}

bool CsrGraph::is_symmetric() const {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (NodeId u : neighbors(v)) {
      const auto nb = neighbors(u);
      if (!std::binary_search(nb.begin(), nb.end(), v)) return false;
    }
  }
  return true;
}

}  // namespace gnav::graph
