// Deterministic random number generation.
//
// Every stochastic component in GNNavigator (graph generators, samplers,
// weight init, dropout, the DSE explorer) draws from a `gnav::Rng` that is
// seeded explicitly, so whole experiments replay bit-identically. The
// engine is xoshiro256**, seeded through splitmix64 as its authors
// recommend; it is much faster than std::mt19937_64 and has no measurable
// bias for our use cases.
#pragma once

#include <cstdint>
#include <vector>

namespace gnav {

/// Counter-free xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached spare value).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Sample `k` distinct indices from [0, n) (Floyd's algorithm).
  /// If k >= n returns the full range [0, n).
  std::vector<std::int64_t> sample_without_replacement(std::int64_t n,
                                                       std::int64_t k);

  /// Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Draw from a discrete distribution given cumulative weights
  /// (strictly increasing, last element is the total mass).
  std::size_t sample_cumulative(const std::vector<double>& cumulative);

  /// Fork a child RNG with an independent stream (used to give each
  /// parallel-conceptual component its own deterministic stream).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace gnav
