// Table 1 reproduction — "Performance of GNNavigator across different
// tasks": three applications (PR+SAGE, RD2+SAGE, AR+GAT), four baselines
// reproduced on the unified backend (PyG, Pa-Full, Pa-Low, 2P) and four
// GNNavigator guidelines (Bal, Ex-TM, Ex-MA, Ex-TA), reporting epoch
// time T, peak memory Γ, accuracy Acc, and the relative deltas vs PyG
// that the paper annotates.
#include <cstdio>
#include <string>
#include <vector>

#include "navigator/navigator.hpp"
#include "support/error.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

namespace {

struct Task {
  const char* dataset;
  const char* label;
  nn::ModelKind model;
};

std::string delta_time(double t, double pyg_t) {
  if (t == pyg_t) return "";
  // Piecewise append avoids GCC 12's -Wrestrict false positive on chained
  // operator+ (GCC PR105329).
  std::string s = "(";
  s += format_double(pyg_t / t, 1);
  s += "x)";
  return s;
}

std::string delta_mem(double m, double pyg_m) {
  if (m == pyg_m) return "";
  const double pct = 100.0 * (m - pyg_m) / pyg_m;
  return std::string("(") + (pct >= 0 ? "+" : "") + format_double(pct, 1) +
         "%)";
}

}  // namespace

int main() {
  const Task tasks[] = {
      {"ogbn-products", "PR + SAGE", nn::ModelKind::kSage},
      {"reddit2", "RD2 + SAGE", nn::ModelKind::kSage},
      {"ogbn-arxiv", "AR + GAT", nn::ModelKind::kGat},
  };
  const int epochs = 4;

  double best_speedup = 0.0;
  double best_mem_reduction = 0.0;
  std::vector<double> speedups;
  std::vector<double> mem_deltas;

  Table table({"task", "method", "time T (s)", "", "memory G (GB)", "",
               "accuracy"});

  for (const Task& task : tasks) {
    navigator::GNNavigator nav(graph::load_dataset(task.dataset),
                               hw::make_profile("rtx4090"),
                               [&] {
                                 dse::BaseSettings b;
                                 b.model = task.model;
                                 return b;
                               }());
    std::printf("[%s] preparing estimator (leave-one-dataset-out)...\n",
                task.label);
    nav.prepare_default(/*configs_per_dataset=*/10,
                        /*augmentation_graphs=*/1, /*profiling_epochs=*/1);

    // Baselines. Each method runs under its own RNG seed — unbiased
    // samplers are mathematically identical under caching, so seed noise
    // is the only source of the small accuracy differences the paper's
    // Table 1 shows between PyG and PaGraph.
    const auto pyg = nav.reproduce("pyg", epochs, /*seed=*/11);
    struct Row {
      std::string method;
      runtime::TrainReport report;
    };
    std::vector<Row> rows;
    rows.push_back({"PyG", pyg});
    rows.push_back({"Pa-Full", nav.reproduce("pagraph-full", epochs, 12)});
    rows.push_back({"Pa-Low", nav.reproduce("pagraph-low", epochs, 13)});
    rows.push_back({"2P", nav.reproduce("2pgraph", epochs, 14)});

    // GNNavigator guidelines under the four priorities. Per the paper's
    // methodology the guidelines keep accuracy comparable (Ex-TM's drop
    // is "negligible ... 2.8%"). The floor is anchored to the estimator's
    // *predicted* PyG accuracy rather than the measured one so that any
    // systematic bias of the leave-one-out accuracy model cancels out.
    runtime::TrainConfig pyg_cfg = runtime::template_pyg();
    pyg_cfg.model = task.model;
    const double predicted_pyg_acc =
        nav.estimator().predict(pyg_cfg, nav.dataset_stats()).accuracy;
    dse::RuntimeConstraints constraints;
    constraints.max_memory_gb = nav.hardware().device.memory_gb;
    constraints.min_accuracy = predicted_pyg_acc - 0.03;
    const std::pair<const char*, dse::ExploreTargets> priorities[] = {
        {"Bal", dse::targets_balance()},
        {"Ex-TM", dse::targets_extreme_time_memory()},
        {"Ex-MA", dse::targets_extreme_memory_accuracy()},
        {"Ex-TA", dse::targets_extreme_time_accuracy()},
    };
    std::uint64_t seed = 20;
    for (const auto& [name, targets] : priorities) {
      navigator::Guideline guideline;
      try {
        guideline = nav.generate_guideline(targets, constraints);
      } catch (const gnav::Error&) {
        // The predicted-accuracy floor can be unsatisfiable when the
        // leave-one-out estimator is pessimistic on this dataset; fall
        // back to the unfloored exploration (the paper's Ex arms accept
        // small accuracy trade-offs anyway).
        dse::RuntimeConstraints relaxed = constraints;
        relaxed.min_accuracy = 0.0;
        guideline = nav.generate_guideline(targets, relaxed);
      }
      rows.push_back({name, nav.train(guideline.config, epochs, seed++)});
    }

    for (const Row& row : rows) {
      table.add_row({task.label, row.method,
                     format_double(row.report.epoch_time_s, 2),
                     delta_time(row.report.epoch_time_s, pyg.epoch_time_s),
                     format_double(row.report.peak_memory_gb, 2),
                     delta_mem(row.report.peak_memory_gb,
                               pyg.peak_memory_gb),
                     format_double(100.0 * row.report.test_accuracy, 2) +
                         "%"});
      if (row.method != "PyG") {
        const double speedup =
            pyg.epoch_time_s / row.report.epoch_time_s;
        const double mem_delta = (pyg.peak_memory_gb -
                                  row.report.peak_memory_gb) /
                                 pyg.peak_memory_gb;
        if (row.method == "Bal" || row.method.rfind("Ex-", 0) == 0) {
          speedups.push_back(speedup);
          mem_deltas.push_back(mem_delta);
          best_speedup = std::max(best_speedup, speedup);
          best_mem_reduction = std::max(best_mem_reduction, mem_delta);
        }
      }
    }
  }

  std::printf("\nTable 1 — overall performance (4 training epochs):\n\n%s\n",
              table.to_ascii().c_str());
  table.write_csv("table1_overall.csv");

  double avg_speedup = 0.0;
  double avg_mem = 0.0;
  for (double s : speedups) avg_speedup += s;
  for (double m : mem_deltas) avg_mem += m;
  avg_speedup /= static_cast<double>(speedups.size());
  avg_mem /= static_cast<double>(mem_deltas.size());
  std::printf("GNNavigator guidelines vs PyG: max speedup %.1fx, max peak-"
              "memory reduction %.1f%%\n",
              best_speedup, 100.0 * best_mem_reduction);
  std::printf("                               avg speedup %.1fx, avg memory "
              "delta %.1f%%\n",
              avg_speedup, 100.0 * avg_mem);
  std::printf("(paper: up to 3.1x speedup, 44.9%% memory reduction; avg "
              "2.3x / 27%%)\n");
  return 0;
}
