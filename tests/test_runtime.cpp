// Tests for TrainConfig validation/serialization, templates, the profiler,
// and the runtime backend's Algo. 1 execution semantics.
#include <gtest/gtest.h>

#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "runtime/backend.hpp"
#include "runtime/profiler.hpp"
#include "runtime/templates.hpp"
#include "support/error.hpp"

namespace gnav::runtime {
namespace {

graph::Dataset small_dataset() {
  graph::SyntheticSpec spec;
  spec.name = "unit";
  spec.num_nodes = 600;
  spec.num_classes = 4;
  spec.feature_dim = 12;
  spec.min_degree = 3;
  spec.max_degree = 60;
  return graph::make_synthetic_dataset(spec, 5);
}

TEST(TrainConfig, ValidationCatchesInconsistencies) {
  TrainConfig c = template_pyg();
  EXPECT_NO_THROW(c.validate());
  c.hop_list.clear();
  EXPECT_THROW(c.validate(), Error);
  c = template_pyg();
  c.cache_ratio = 0.5;  // ratio without policy
  EXPECT_THROW(c.validate(), Error);
  c = template_pyg();
  c.bias_rate = 0.5;    // bias without cache
  EXPECT_THROW(c.validate(), Error);
  c = template_pagraph_full();
  c.cache_ratio = 0.0;  // policy without ratio
  EXPECT_THROW(c.validate(), Error);
  c = template_pyg();
  c.dropout = 1.0f;
  EXPECT_THROW(c.validate(), Error);
}

TEST(TrainConfig, GuidelineTextRoundTrip) {
  const TrainConfig original = template_2pgraph();
  const std::string text = original.to_config_map().to_guideline_text();
  const TrainConfig parsed =
      TrainConfig::from_config_map(ConfigMap::parse(text));
  EXPECT_TRUE(parsed == original);
  EXPECT_NE(text.find("cacheratio"), std::string::npos);
  EXPECT_NE(original.summary().find("2pgraph"), std::string::npos);
}

TEST(Templates, AllValidAndDistinct) {
  const auto templates = all_templates();
  EXPECT_GE(templates.size(), 6u);
  for (std::size_t i = 0; i < templates.size(); ++i) {
    EXPECT_NO_THROW(templates[i].validate());
    for (std::size_t j = i + 1; j < templates.size(); ++j) {
      EXPECT_FALSE(templates[i] == templates[j])
          << templates[i].name << " duplicates " << templates[j].name;
    }
  }
  EXPECT_EQ(template_by_name("pyg").cache_policy, cache::CachePolicy::kNone);
  EXPECT_GT(template_by_name("pagraph-full").cache_ratio,
            template_by_name("pagraph-low").cache_ratio);
  EXPECT_GT(template_by_name("2pgraph").bias_rate, 0.0);
  EXPECT_THROW(template_by_name("dgl"), Error);
}

TEST(Profiler, AccumulatesPhasesAndPeak) {
  Profiler prof;
  hw::IterationTimes t;
  t.t_sample = 1.0;
  t.t_transfer = 2.0;
  t.t_replace = 0.5;
  t.t_compute = 1.0;
  prof.record_iteration(t);
  prof.record_iteration(t);
  EXPECT_DOUBLE_EQ(prof.epoch_phases().sample_s, 2.0);
  EXPECT_DOUBLE_EQ(prof.epoch_wall_s(), 2.0 * 3.0);  // max(3, 1.5) per iter
  EXPECT_EQ(prof.iterations(), 2u);
  prof.record_device_memory(100.0);
  prof.record_device_memory(50.0);
  EXPECT_DOUBLE_EQ(prof.peak_device_bytes(), 100.0);
  prof.reset_epoch();
  EXPECT_DOUBLE_EQ(prof.epoch_wall_s(), 0.0);
  EXPECT_DOUBLE_EQ(prof.peak_device_bytes(), 100.0);  // peak persists
}

TEST(RuntimeBackend, RunProducesConsistentReport) {
  const auto ds = small_dataset();
  RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  TrainConfig config = template_pyg();
  config.batch_size = 128;
  config.hop_list = {5, 5};
  RunOptions opts;
  opts.epochs = 2;
  opts.record_batch_sizes = true;
  const TrainReport r = backend.run(config, opts);

  EXPECT_EQ(r.epoch_times_s.size(), 2u);
  EXPECT_GT(r.epoch_time_s, 0.0);
  EXPECT_GT(r.peak_memory_gb, 0.0);
  EXPECT_GE(r.test_accuracy, 0.0);
  EXPECT_LE(r.test_accuracy, 1.0);
  EXPECT_EQ(r.iterations_per_epoch, (ds.train_nodes.size() + 127) / 128);
  EXPECT_EQ(r.per_batch_nodes.size(),
            2 * r.iterations_per_epoch);
  EXPECT_GT(r.avg_batch_nodes, 128.0);  // expansion beyond seeds
  EXPECT_GT(r.model_parameters, 0u);
  // Eq. 9 decomposition: components sum below the peak (plus overhead)
  EXPECT_GT(r.peak_memory_gb,
            r.mem_model_gb + r.mem_cache_gb);
  // no cache -> zero hit rate and zero cache memory
  EXPECT_DOUBLE_EQ(r.cache_hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.mem_cache_gb, 0.0);
  // phase breakdown populated
  EXPECT_GT(r.epoch_phases.sample_s, 0.0);
  EXPECT_GT(r.epoch_phases.transfer_s, 0.0);
  EXPECT_GT(r.epoch_phases.compute_s, 0.0);
}

TEST(RuntimeBackend, DeterministicGivenSeed) {
  const auto ds = small_dataset();
  RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  TrainConfig config = template_pyg();
  config.batch_size = 128;
  RunOptions opts;
  opts.epochs = 1;
  opts.seed = 77;
  const TrainReport a = backend.run(config, opts);
  const TrainReport b = backend.run(config, opts);
  EXPECT_DOUBLE_EQ(a.epoch_time_s, b.epoch_time_s);
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
  opts.seed = 78;
  const TrainReport c = backend.run(config, opts);
  EXPECT_NE(a.epoch_time_s, c.epoch_time_s);
}

TEST(RuntimeBackend, CachingReducesEpochTime) {
  const auto ds = small_dataset();
  RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  RunOptions opts;
  opts.epochs = 2;
  TrainConfig uncached = template_pyg();
  uncached.batch_size = 128;
  TrainConfig cached = template_pagraph_full();
  cached.batch_size = 128;
  const TrainReport r0 = backend.run(uncached, opts);
  const TrainReport r1 = backend.run(cached, opts);
  EXPECT_GT(r1.cache_hit_rate, 0.3);
  EXPECT_LT(r1.epoch_time_s, r0.epoch_time_s);
  EXPECT_GT(r1.mem_cache_gb, 0.0);
  EXPECT_GT(r1.peak_memory_gb, r0.peak_memory_gb);
  // transfer time shrinks; accuracy unaffected by caching (same math)
  EXPECT_LT(r1.epoch_phases.transfer_s, r0.epoch_phases.transfer_s);
  EXPECT_DOUBLE_EQ(r1.test_accuracy, r0.test_accuracy);
}

TEST(RuntimeBackend, DynamicCacheChargesReplacement) {
  const auto ds = small_dataset();
  RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  RunOptions opts;
  opts.epochs = 1;
  TrainConfig lru = template_pyg();
  lru.cache_ratio = 0.2;
  lru.cache_policy = cache::CachePolicy::kLru;
  const TrainReport r = backend.run(lru, opts);
  EXPECT_GT(r.epoch_phases.replace_s, 0.0);
  TrainConfig st = lru;
  st.cache_policy = cache::CachePolicy::kStatic;
  const TrainReport rs = backend.run(st, opts);
  EXPECT_DOUBLE_EQ(rs.epoch_phases.replace_s, 0.0);
}

TEST(RuntimeBackend, ReorderDiscountsSampling) {
  const auto ds = small_dataset();
  RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  RunOptions opts;
  opts.epochs = 1;
  TrainConfig base = template_pyg();
  TrainConfig reordered = base;
  reordered.reorder = true;
  const double t0 = backend.run(base, opts).epoch_phases.sample_s;
  const double t1 = backend.run(reordered, opts).epoch_phases.sample_s;
  EXPECT_LT(t1, t0);
  EXPECT_NEAR(t1 / t0, 0.85, 0.05);
}

TEST(RuntimeBackend, TrainingActuallyLearns) {
  const auto ds = small_dataset();
  RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  TrainConfig config = template_pyg();
  config.batch_size = 128;
  RunOptions opts;
  opts.epochs = 4;
  const TrainReport r = backend.run(config, opts);
  // loss decreases and accuracy beats chance (4 classes -> 0.25)
  EXPECT_LT(r.epoch_loss.back(), r.epoch_loss.front());
  EXPECT_GT(r.test_accuracy, 0.4);
  EXPECT_GT(r.final_train_accuracy, 0.4);
}

TEST(RuntimeBackend, GatCostsMoreThanSage) {
  const auto ds = small_dataset();
  RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  RunOptions opts;
  opts.epochs = 1;
  TrainConfig sage = template_pyg();
  TrainConfig gat = sage;
  gat.model = nn::ModelKind::kGat;
  const TrainReport rs = backend.run(sage, opts);
  const TrainReport rg = backend.run(gat, opts);
  EXPECT_GT(rg.epoch_phases.compute_s, rs.epoch_phases.compute_s);
  EXPECT_GT(rg.peak_memory_gb, rs.peak_memory_gb);
}

TEST(RuntimeBackend, AnalyticMemoryFormulasMatchReport) {
  const auto ds = small_dataset();
  RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  TrainConfig config = template_pagraph_low();
  RunOptions opts;
  opts.epochs = 1;
  const TrainReport r = backend.run(config, opts);
  EXPECT_DOUBLE_EQ(r.mem_model_gb, backend.model_memory_gb(config));
  EXPECT_DOUBLE_EQ(r.mem_cache_gb, backend.cache_memory_gb(config));
}

}  // namespace
}  // namespace gnav::runtime
