// Tests for the dense tensor substrate: shapes, kernels, activations,
// softmax, dropout, and numeric agreement between matmul variants.
#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace gnav::tensor {
namespace {

Tensor make(std::size_t r, std::size_t c, std::initializer_list<float> vals) {
  Tensor t(r, c);
  std::size_t i = 0;
  for (float v : vals) t.data()[i++] = v;
  return t;
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
  t.zero();
  EXPECT_DOUBLE_EQ(t.sum(), 0.0);
  EXPECT_EQ(t.shape_str(), "[2 x 3]");
}

TEST(Tensor, GlorotBoundsAndDeterminism) {
  Rng a(5);
  Rng b(5);
  const Tensor x = Tensor::glorot(16, 48, a);
  const Tensor y = Tensor::glorot(16, 48, b);
  const double limit = std::sqrt(6.0 / (16 + 48));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::abs(x.data()[i]), limit);
    EXPECT_FLOAT_EQ(x.data()[i], y.data()[i]);
  }
}

TEST(Ops, MatmulKnownResult) {
  const Tensor a = make(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = make(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
  EXPECT_THROW(matmul(a, a), Error);
}

TEST(Ops, MatmulVariantsAgreeWithExplicitTranspose) {
  Rng rng(9);
  const Tensor a = Tensor::uniform(7, 5, -1, 1, rng);
  const Tensor b = Tensor::uniform(7, 4, -1, 1, rng);
  const Tensor c = Tensor::uniform(6, 5, -1, 1, rng);
  // A^T B == matmul(transpose(A), B)
  const Tensor atb = matmul_at_b(a, b);
  const Tensor atb_ref = matmul(transpose(a), b);
  ASSERT_TRUE(atb.same_shape(atb_ref));
  for (std::size_t i = 0; i < atb.size(); ++i) {
    EXPECT_NEAR(atb.data()[i], atb_ref.data()[i], 1e-4);
  }
  // A B^T == matmul(A, transpose(B))
  const Tensor ref = matmul(c, transpose(a));
  const Tensor got = matmul_a_bt(c, a);
  ASSERT_TRUE(got.same_shape(ref));
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], ref.data()[i], 1e-4);
  }
}

TEST(Ops, ElementwiseAndAxpy) {
  const Tensor a = make(1, 3, {1, 2, 3});
  const Tensor b = make(1, 3, {4, 5, 6});
  EXPECT_FLOAT_EQ(add(a, b).at(0, 2), 9.0f);
  EXPECT_FLOAT_EQ(sub(b, a).at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(hadamard(a, b).at(0, 1), 10.0f);
  Tensor y = a;
  axpy(y, 2.0f, b);
  EXPECT_FLOAT_EQ(y.at(0, 0), 9.0f);
  scale_inplace(y, 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.5f);
  Tensor z = a;
  EXPECT_THROW(add_inplace(z, Tensor(2, 2)), Error);
}

TEST(Ops, BiasBroadcastAndColumnSum) {
  Tensor a = make(2, 2, {1, 2, 3, 4});
  const Tensor bias = make(1, 2, {10, 20});
  add_row_bias_inplace(a, bias);
  EXPECT_FLOAT_EQ(a.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 24.0f);
  const Tensor cs = column_sum(a);
  EXPECT_FLOAT_EQ(cs.at(0, 0), 11.0f + 13.0f);
  EXPECT_FLOAT_EQ(cs.at(0, 1), 22.0f + 24.0f);
}

TEST(Ops, ActivationsAndBackward) {
  const Tensor z = make(1, 4, {-2, -0.5, 0.5, 2});
  const Tensor r = relu(z);
  EXPECT_FLOAT_EQ(r.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(0, 3), 2.0f);
  const Tensor g = make(1, 4, {1, 1, 1, 1});
  const Tensor rb = relu_backward(g, z);
  EXPECT_FLOAT_EQ(rb.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(rb.at(0, 2), 1.0f);

  const Tensor e = elu(z);
  EXPECT_NEAR(e.at(0, 0), std::exp(-2.0f) - 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(e.at(0, 3), 2.0f);
  const Tensor eb = elu_backward(g, z);
  EXPECT_NEAR(eb.at(0, 1), std::exp(-0.5f), 1e-6);
  EXPECT_FLOAT_EQ(eb.at(0, 2), 1.0f);

  const Tensor l = leaky_relu(z, 0.1f);
  EXPECT_FLOAT_EQ(l.at(0, 0), -0.2f);
  const Tensor lb = leaky_relu_backward(g, z, 0.1f);
  EXPECT_FLOAT_EQ(lb.at(0, 0), 0.1f);
  EXPECT_FLOAT_EQ(lb.at(0, 3), 1.0f);
}

TEST(Ops, SoftmaxRowsNormalized) {
  const Tensor logits = make(2, 3, {1, 2, 3, 1000, 1000, 1000});
  const Tensor p = softmax_rows(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < 3; ++c) total += p.at(r, c);
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 1));
  EXPECT_NEAR(p.at(1, 0), 1.0 / 3.0, 1e-5);  // stable at huge logits
}

TEST(Ops, ArgmaxAndGather) {
  const Tensor a = make(3, 2, {1, 5, 9, 2, 4, 4});
  const auto am = argmax_rows(a);
  EXPECT_EQ(am, (std::vector<int>{1, 0, 0}));  // tie -> first
  const Tensor g = gather_rows(a, {2, 0});
  EXPECT_FLOAT_EQ(g.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 5.0f);
  EXPECT_THROW(gather_rows(a, {3}), Error);
}

TEST(Ops, DropoutMaskAndScaling) {
  Rng rng(21);
  Tensor ones = Tensor::ones(50, 40);
  Tensor mask;
  const float p = 0.4f;
  const Tensor dropped = dropout(ones, p, rng, &mask);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < dropped.size(); ++i) {
    if (dropped.data()[i] == 0.0f) {
      ++zeros;
      EXPECT_FLOAT_EQ(mask.data()[i], 0.0f);
    } else {
      EXPECT_NEAR(dropped.data()[i], 1.0f / (1.0f - p), 1e-5);
    }
  }
  const double frac = static_cast<double>(zeros) / dropped.size();
  EXPECT_NEAR(frac, p, 0.05);
  // E[dropout(x)] = x (inverted dropout)
  EXPECT_NEAR(dropped.sum() / dropped.size(), 1.0, 0.08);
  // backward applies the identical mask
  const Tensor grad = dropout_backward(ones, mask);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_FLOAT_EQ(grad.data()[i], mask.data()[i]);
  }
  EXPECT_THROW(dropout(ones, 1.0f, rng, nullptr), Error);
}

TEST(Ops, DropoutZeroProbIsIdentity) {
  Rng rng(22);
  const Tensor x = Tensor::uniform(4, 4, -1, 1, rng);
  Tensor mask;
  const Tensor y = dropout(x, 0.0f, rng, &mask);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
    EXPECT_FLOAT_EQ(mask.data()[i], 1.0f);
  }
}

}  // namespace
}  // namespace gnav::tensor
