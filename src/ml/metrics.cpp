#include "ml/metrics.hpp"

#include <cmath>

#include "support/error.hpp"

namespace gnav::ml {
namespace {
void check_sizes(const std::vector<double>& a, const std::vector<double>& b) {
  GNAV_CHECK(a.size() == b.size() && !a.empty(),
             "metric inputs must be equal-sized and non-empty");
}
}  // namespace

double r2_score(const std::vector<double>& y_true,
                const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double mean = 0.0;
  for (double v : y_true) mean += v;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mse(const std::vector<double>& y_true,
           const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    s += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
  }
  return s / static_cast<double>(y_true.size());
}

double mae(const std::vector<double>& y_true,
           const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    s += std::abs(y_true[i] - y_pred[i]);
  }
  return s / static_cast<double>(y_true.size());
}

double mape(const std::vector<double>& y_true,
            const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double denom = std::max(std::abs(y_true[i]), 1e-9);
    s += std::abs(y_true[i] - y_pred[i]) / denom;
  }
  return s / static_cast<double>(y_true.size());
}

}  // namespace gnav::ml
