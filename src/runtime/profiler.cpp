#include "runtime/profiler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace gnav::runtime {

namespace {

/// Registry instruments fed by the live measured-stage stream. Resolved
/// once; the gauges are cumulative busy seconds per stage across the
/// process (Prometheus counters are integral here, so second-sums are
/// gauges — see obs/metrics.hpp).
struct StageInstruments {
  obs::Gauge& sample_s;
  obs::Gauge& transfer_s;
  obs::Gauge& compute_s;
  obs::Counter& batches;
};

StageInstruments& stage_instruments() {
  auto& reg = obs::MetricsRegistry::global();
  static StageInstruments s{
      reg.gauge("gnav_stage_busy_seconds_total", {{"stage", "sample"}},
                "Cumulative measured stage wall seconds"),
      reg.gauge("gnav_stage_busy_seconds_total", {{"stage", "transfer"}},
                "Cumulative measured stage wall seconds"),
      reg.gauge("gnav_stage_busy_seconds_total", {{"stage", "compute"}},
                "Cumulative measured stage wall seconds"),
      reg.counter("gnav_batches_trained_total", {},
                  "Mini-batches whose compute stage finished"),
  };
  return s;
}

}  // namespace

void Profiler::record_iteration(const hw::IterationTimes& times,
                                bool pipelined) {
  epoch_phases_.sample_s += times.t_sample;
  epoch_phases_.transfer_s += times.t_transfer;
  epoch_phases_.replace_s += times.t_replace;
  epoch_phases_.compute_s += times.t_compute;
  epoch_modeled_overlapped_s_ += times.overlapped();
  epoch_modeled_sequential_s_ += times.sequential();
  epoch_wall_s_ += pipelined ? times.overlapped() : times.sequential();
  ++iterations_;
}

void Profiler::record_device_memory(double bytes) {
  peak_device_bytes_ = std::max(peak_device_bytes_, bytes);
}

void Profiler::record_epoch_measured(const PipelineEpochStats& measured) {
  const support::MutexLock lock(measured_mu_);
  measured_ = measured;
}

void Profiler::add_measured_stage(Stage stage, double busy_s) {
  {
    const support::MutexLock lock(measured_mu_);
    switch (stage) {
      case Stage::kSample:
        live_.sample_busy_s += busy_s;
        break;
      case Stage::kTransfer:
        live_.transfer_busy_s += busy_s;
        break;
      case Stage::kCompute:
        live_.compute_busy_s += busy_s;
        ++live_.batches;
        break;
    }
  }
  // Metrics outside the lock: instrument updates are atomic and the
  // registry gauge is process-cumulative, not per-epoch.
  StageInstruments& ins = stage_instruments();
  switch (stage) {
    case Stage::kSample:
      ins.sample_s.add(busy_s);
      break;
    case Stage::kTransfer:
      ins.transfer_s.add(busy_s);
      break;
    case Stage::kCompute:
      ins.compute_s.add(busy_s);
      ins.batches.add(1);
      break;
  }
}

void Profiler::reset_epoch() {
  epoch_phases_ = PhaseBreakdown{};
  epoch_wall_s_ = 0.0;
  epoch_modeled_overlapped_s_ = 0.0;
  epoch_modeled_sequential_s_ = 0.0;
  // peak_device_bytes_ persists: it is a run-level high-water mark.
  iterations_ = 0;
  const support::MutexLock lock(measured_mu_);
  measured_ = PipelineEpochStats{};
  live_ = PipelineEpochStats{};
}

PipelineEpochStats Profiler::epoch_measured() const {
  const support::MutexLock lock(measured_mu_);
  return measured_;
}

PipelineEpochStats Profiler::measured_snapshot() const {
  const support::MutexLock lock(measured_mu_);
  return live_;
}

}  // namespace gnav::runtime
