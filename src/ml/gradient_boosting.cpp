#include "ml/gradient_boosting.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace gnav::ml {

GradientBoostingRegressor::GradientBoostingRegressor(BoostingParams params)
    : params_(params) {
  GNAV_CHECK(params_.num_rounds >= 1, "need at least one round");
  GNAV_CHECK(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0,
             "learning rate must be in (0,1]");
}

void GradientBoostingRegressor::fit(const Matrix& x,
                                    const std::vector<double>& y) {
  GNAV_CHECK(!x.empty() && x.size() == y.size(), "bad training data");
  trees_.clear();
  double s = 0.0;
  for (double v : y) s += v;
  base_ = s / static_cast<double>(y.size());
  std::vector<double> residual(y.size());
  std::vector<double> pred(y.size(), base_);
  for (int round = 0; round < params_.num_rounds; ++round) {
    double max_resid = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      residual[i] = y[i] - pred[i];
      max_resid = std::max(max_resid, std::abs(residual[i]));
    }
    if (max_resid < 1e-12) break;  // perfectly fit
    DecisionTreeRegressor tree(params_.tree);
    tree.fit(x, residual);
    for (std::size_t i = 0; i < y.size(); ++i) {
      pred[i] += params_.learning_rate * tree.predict_one(x[i]);
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GradientBoostingRegressor::predict_one(
    const std::vector<double>& x) const {
  GNAV_CHECK(is_fitted(), "predict before fit");
  double out = base_;
  for (const auto& tree : trees_) {
    out += params_.learning_rate * tree.predict_one(x);
  }
  return out;
}

}  // namespace gnav::ml
