// Phase-time and memory profiler — the reproduction's analogue of the
// PyTorch profiler the paper uses to measure T and Γ. Times come in two
// kinds and the profiler keeps them strictly apart:
//
//   modeled   — simulated seconds from the hardware cost model. Eq. 4's
//               overlapped() and the no-pipelining sequential() are BOTH
//               accumulated every iteration, so the predicted overlap
//               benefit (sequential / overlapped) is always available,
//               independent of which one counts toward epoch_wall_s().
//   measured  — real wall-clock seconds. Two granularities: the epoch
//               executor (runtime/pipeline.hpp) reports authoritative
//               per-epoch totals at record_epoch_measured, and the stage
//               callbacks additionally stream per-batch stage walls
//               through add_measured_stage as they complete, so
//               measured_snapshot() has a LIVE mid-epoch view (what the
//               metrics gauges and any drift monitor read) instead of
//               waiting for the epoch boundary. Comparing the measured
//               speedup against the modeled ratio is what lets the
//               estimator's f_overlapping correction be fit from data
//               instead of assumed.
//
// Memory is analytic bytes tracked against the device budget.
//
// Threading: the modeled accumulators (record_iteration, phases, memory)
// are written by the single ordered transfer stage — no lock. The
// measured state is written concurrently by stage threads
// (add_measured_stage) and read mid-epoch (measured_snapshot), so it is
// mutex-guarded and every accessor snapshots BY VALUE.
#pragma once

#include <cstdint>

#include "hw/cost_model.hpp"
#include "runtime/pipeline.hpp"
#include "support/thread_safety.hpp"

namespace gnav::runtime {

struct PhaseBreakdown {
  double sample_s = 0.0;
  double transfer_s = 0.0;
  double replace_s = 0.0;
  double compute_s = 0.0;

  double total() const {
    return sample_s + transfer_s + replace_s + compute_s;
  }
};

class Profiler {
 public:
  /// Stage of the epoch executor a measured wall belongs to.
  enum class Stage { kSample, kTransfer, kCompute };

  /// Accumulates one iteration's phase times; wall time uses Eq. 4's
  /// pipeline overlap unless `pipelined` is false (sequential runtime).
  /// Both the overlapped and the sequential sums are kept regardless.
  void record_iteration(const hw::IterationTimes& times,
                        bool pipelined = true);

  /// Tracks the device-memory high-water mark (bytes).
  void record_device_memory(double bytes);

  /// Records the executor's REAL measured profile of the epoch that just
  /// ran (wall-clock, not simulated) — the authoritative epoch totals.
  void record_epoch_measured(const PipelineEpochStats& measured)
      GNAV_EXCLUDES(measured_mu_);

  /// Streams one batch's measured stage wall as it completes. Thread-safe
  /// (stage threads call it concurrently); feeds the live mid-epoch view
  /// returned by measured_snapshot(). kCompute additionally counts the
  /// batch as finished.
  void add_measured_stage(Stage stage, double busy_s)
      GNAV_EXCLUDES(measured_mu_);

  void reset_epoch() GNAV_EXCLUDES(measured_mu_);

  double epoch_wall_s() const { return epoch_wall_s_; }
  /// Eq. 4 epoch time with the max() overlap applied every iteration.
  double epoch_modeled_overlapped_s() const {
    return epoch_modeled_overlapped_s_;
  }
  /// Same iterations executed strictly sequentially (no overlap).
  double epoch_modeled_sequential_s() const {
    return epoch_modeled_sequential_s_;
  }
  /// Authoritative end-of-epoch measured totals (what the executor
  /// reported); zero stats mid-epoch. BY VALUE.
  PipelineEpochStats epoch_measured() const GNAV_EXCLUDES(measured_mu_);
  /// LIVE measured stage walls accumulated so far this epoch via
  /// add_measured_stage — valid mid-epoch, BY VALUE. `batches` counts
  /// compute-finished batches; stall/occupancy fields stay zero (those
  /// exist only at epoch granularity).
  PipelineEpochStats measured_snapshot() const GNAV_EXCLUDES(measured_mu_);
  PhaseBreakdown epoch_phases() const { return epoch_phases_; }
  double peak_device_bytes() const { return peak_device_bytes_; }
  std::uint64_t iterations() const { return iterations_; }

 private:
  PhaseBreakdown epoch_phases_;
  double epoch_wall_s_ = 0.0;
  double epoch_modeled_overlapped_s_ = 0.0;
  double epoch_modeled_sequential_s_ = 0.0;
  double peak_device_bytes_ = 0.0;
  std::uint64_t iterations_ = 0;

  mutable support::Mutex measured_mu_;
  PipelineEpochStats measured_ GNAV_GUARDED_BY(measured_mu_);
  PipelineEpochStats live_ GNAV_GUARDED_BY(measured_mu_);
};

}  // namespace gnav::runtime
