#include "dse/explorer.hpp"

#include <algorithm>

#include "compute/backend.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"

namespace gnav::dse {
namespace {
/// Axis index of the joint (cache_ratio, cache_policy) axis in
/// DesignSpace::axes() — pruning bounds become available once it is fixed.
constexpr std::size_t kCacheAxis = 3;
constexpr double kFrameworkOverheadGb = 0.55;

const std::string& constraint_backend_id(const RuntimeConstraints& c) {
  static const std::string kDefault = compute::kBlockedBackendId;
  return c.backend_id.empty() ? kDefault : c.backend_id;
}
}  // namespace

Explorer::Explorer(const DesignSpace& space,
                   const estimator::PerfEstimator& est,
                   estimator::DatasetStats stats)
    : space_(&space), estimator_(&est), stats_(std::move(stats)) {
  GNAV_CHECK(est.is_fitted(), "explorer needs a fitted estimator");
}

bool Explorer::satisfies(const runtime::TrainConfig& config,
                         const estimator::PerfPrediction& p,
                         const RuntimeConstraints& c) const {
  if (c.max_epoch_time_s > 0.0 && p.time_s > c.max_epoch_time_s) return false;
  if (c.max_memory_gb > 0.0 && p.memory_gb > c.max_memory_gb) return false;
  if (c.min_accuracy > 0.0 && p.accuracy < c.min_accuracy) return false;
  // Capability feasibility against the constraint backend's DECLARED
  // capabilities (static per id — identical on every host, so a decision
  // made here is valid wherever the config later runs).
  const compute::BackendCapabilities caps =
      compute::BackendFactory::declared_capabilities(constraint_backend_id(c));
  if (caps.max_feature_dim > 0) {
    const std::size_t widest = std::max(
        static_cast<std::size_t>(std::max(stats_.feature_dim, 0)),
        config.hidden_dim);
    if (widest > caps.max_feature_dim) return false;
  }
  if (config.pipeline_overlap && !caps.supports_async_transfer) return false;
  return true;
}

double Explorer::memory_lower_bound_gb(
    const std::vector<std::size_t>& levels, std::size_t axis) const {
  if (axis <= kCacheAxis) return 0.0;  // cache axis not decided yet
  // Complete the assignment with level-0 defaults (always materializable:
  // level 0 of every axis is the least-demanding choice) and take the
  // irreducible memory floor: framework overhead + the fixed cache.
  std::vector<std::size_t> completed = levels;
  for (std::size_t a = axis; a < completed.size(); ++a) completed[a] = 0;
  runtime::TrainConfig probe;
  if (!space_->materialize(completed, &probe)) return 0.0;
  return kFrameworkOverheadGb +
         estimator_->analytic_cache_memory_gb(probe, stats_);
}

void Explorer::dfs(std::vector<std::size_t>& levels, std::size_t axis,
                   const RuntimeConstraints& constraints,
                   ExplorationResult& result,
                   std::vector<runtime::TrainConfig>& leaves) const {
  const auto& axes = space_->axes();
  if (axis == axes.size()) {
    // Pruning never looks at predictions, so surviving leaves are only
    // collected here and scored in one parallel wave afterwards.
    runtime::TrainConfig config;
    if (!space_->materialize(levels, &config)) return;
    ++result.stats.leaves_evaluated;
    leaves.push_back(std::move(config));
    return;
  }
  for (std::size_t level = 0; level < axes[axis].cardinality; ++level) {
    levels[axis] = level;
    ++result.stats.nodes_visited;
    if (constraints.max_memory_gb > 0.0) {
      const double bound = memory_lower_bound_gb(levels, axis + 1);
      if (bound > constraints.max_memory_gb) {
        ++result.stats.subtrees_pruned;
        continue;
      }
    }
    dfs(levels, axis + 1, constraints, result, leaves);
  }
  levels[axis] = 0;
}

void Explorer::evaluate_candidates(
    const std::vector<runtime::TrainConfig>& configs,
    const RuntimeConstraints& constraints, ExplorationResult& result) const {
  std::vector<estimator::PerfPrediction> predictions(configs.size());
  support::ThreadPool& pool = pool_ ? *pool_ : support::global_pool();
  const std::string& backend_id = constraint_backend_id(constraints);
  pool.parallel_for(0, configs.size(), [&](std::size_t i) {
    predictions[i] = estimator_->predict(configs[i], stats_, backend_id);
  });
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (!satisfies(configs[i], predictions[i], constraints)) continue;
    result.feasible.push_back(Candidate{configs[i], predictions[i]});
    ++result.stats.feasible;
  }
}

void Explorer::finish_result(ExplorationResult& result) const {
  std::vector<PerfPoint> points;
  points.reserve(result.feasible.size());
  for (const Candidate& c : result.feasible) points.push_back(c.point());
  result.pareto = pareto_front(points);
}

ExplorationResult Explorer::explore(
    const RuntimeConstraints& constraints,
    const std::vector<runtime::TrainConfig>& initial_templates) const {
  ExplorationResult result;
  // Initial set: reproductions of existing works (paper Fig. 4 step 1).
  std::vector<runtime::TrainConfig> candidates;
  for (const runtime::TrainConfig& t : initial_templates) {
    runtime::TrainConfig cfg = t;
    // Pin application-fixed fields so templates compete fairly.
    cfg.model = space_->base().model;
    cfg.num_layers = space_->base().num_layers;
    cfg.dropout = space_->base().dropout;
    cfg.learning_rate = space_->base().learning_rate;
    cfg.validate();
    ++result.stats.leaves_evaluated;
    candidates.push_back(std::move(cfg));
  }
  std::vector<std::size_t> levels(space_->axes().size(), 0);
  dfs(levels, 0, constraints, result, candidates);
  evaluate_candidates(candidates, constraints, result);
  finish_result(result);
  log_info("DFS explored ", result.stats.leaves_evaluated, " leaves, pruned ",
           result.stats.subtrees_pruned, " subtrees, ",
           result.stats.feasible, " feasible, pareto size ",
           result.pareto.size());
  return result;
}

ExplorationResult Explorer::explore_exhaustive(
    const RuntimeConstraints& constraints) const {
  ExplorationResult result;
  const std::vector<runtime::TrainConfig> configs = space_->enumerate();
  result.stats.nodes_visited = configs.size();
  result.stats.leaves_evaluated = configs.size();
  evaluate_candidates(configs, constraints, result);
  finish_result(result);
  return result;
}

}  // namespace gnav::dse
