#include "estimator/profile_collector.hpp"

#include "compute/backend.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"

namespace gnav::estimator {

runtime::TrainConfig random_config(Rng& rng) {
  runtime::TrainConfig c;
  c.name = "random";

  const int sampler_die = static_cast<int>(rng.uniform_index(6));
  switch (sampler_die) {
    case 0:
    case 1:  // node-wise is the most common choice in practice
      c.sampler = sampling::SamplerKind::kNodeWise;
      break;
    case 2:
      c.sampler = sampling::SamplerKind::kLayerWise;
      break;
    case 3:
      c.sampler = sampling::SamplerKind::kSaintWalk;
      break;
    case 4:
      c.sampler = sampling::SamplerKind::kCluster;
      break;
    default:
      c.sampler = sampling::SamplerKind::kSaintNode;
      break;
  }

  if (c.sampler == sampling::SamplerKind::kCluster) {
    c.hop_list = {-1};
  } else if (c.sampler == sampling::SamplerKind::kSaintWalk) {
    c.hop_list = std::vector<int>(
        static_cast<std::size_t>(rng.uniform_int(2, 6)), 1);
  } else {
    const auto hops = static_cast<std::size_t>(rng.uniform_int(1, 3));
    static const int kFanouts[] = {3, 5, 8, 10, 15, 20, 25};
    c.hop_list.clear();
    for (std::size_t h = 0; h < hops; ++h) {
      c.hop_list.push_back(kFanouts[rng.uniform_index(7)]);
    }
  }

  static const std::size_t kBatchSizes[] = {128, 256, 512, 1024, 2048};
  c.batch_size = kBatchSizes[rng.uniform_index(5)];
  c.saint_budget_multiplier = rng.uniform(4.0, 12.0);

  static const double kCacheRatios[] = {0.0, 0.05, 0.1, 0.25, 0.4, 0.5};
  c.cache_ratio = kCacheRatios[rng.uniform_index(6)];
  if (c.cache_ratio == 0.0) {
    c.cache_policy = cache::CachePolicy::kNone;
    c.bias_rate = 0.0;
  } else {
    static const cache::CachePolicy kPolicies[] = {
        cache::CachePolicy::kStatic, cache::CachePolicy::kLru,
        cache::CachePolicy::kFifo, cache::CachePolicy::kWeightedDegree};
    c.cache_policy = kPolicies[rng.uniform_index(4)];
    static const double kBias[] = {0.0, 0.0, 0.3, 0.7};
    c.bias_rate = kBias[rng.uniform_index(4)];
  }

  static const nn::ModelKind kModels[] = {
      nn::ModelKind::kGcn, nn::ModelKind::kSage, nn::ModelKind::kGat};
  c.model = kModels[rng.uniform_index(3)];
  static const std::size_t kHidden[] = {32, 64, 128};
  c.hidden_dim = kHidden[rng.uniform_index(3)];
  c.num_layers = static_cast<std::size_t>(rng.uniform_int(2, 3));
  c.reorder = rng.bernoulli(0.3);
  c.compress_features = rng.bernoulli(0.25);
  c.pipeline_overlap = !rng.bernoulli(0.15);
  c.validate();
  return c;
}

std::vector<ProfiledRun> collect_profiles(const graph::Dataset& dataset,
                                          const hw::HardwareProfile& hw,
                                          const CollectorOptions& options) {
  GNAV_CHECK(options.configs_per_dataset >= 1, "need at least one config");
  // Resolve the backend on the CALLING thread: pool workers inherit no
  // BackendScope, so current_backend_id() inside the run lambdas would
  // see the factory default, not the collector caller's pin.
  const std::string backend_id = options.backend_id.empty()
                                     ? compute::current_backend_id()
                                     : options.backend_id;
  GNAV_CHECK(compute::BackendFactory::is_registered(backend_id),
             "CollectorOptions::backend_id \"" + backend_id +
                 "\" is not a registered compute backend");
  runtime::RuntimeBackend backend(dataset, hw);
  const DatasetStats stats = compute_dataset_stats(dataset);
  const std::uint64_t collection_seed =
      options.seed ^ std::hash<std::string>{}(dataset.name);
  Rng rng(collection_seed);
  const auto n = static_cast<std::size_t>(options.configs_per_dataset);
  std::vector<ProfiledRun> out(n);
  // Configs come from one serial RNG stream (order-sensitive); the runs
  // themselves are independent — each is seeded by its index — so they
  // fan out across the pool. This is the profiling hot path: a corpus is
  // configs_per_dataset full training runs per dataset.
  for (std::size_t i = 0; i < n; ++i) {
    out[i].stats = stats;
    out[i].config = random_config(rng);
  }
  support::ThreadPool& pool =
      options.pool ? *options.pool : support::global_pool();
  pool.parallel_for(0, n, [&](std::size_t i) {
    runtime::RunOptions ro;
    ro.epochs = options.epochs;
    ro.evaluate_every_epoch = false;
    ro.record_batch_sizes = true;
    ro.seed = options.seed + static_cast<std::uint64_t>(i) * 7919ULL;
    ro.pool = &pool;
    ro.backend_id = backend_id;
    // A controlled fraction of the corpus runs under the async executor
    // so its measured stage walls exist for the overlap-model fit. WHICH
    // rows are async is fixed by index (i % async_every == 0, pinned by
    // test_overlap_model.cpp); the executor shape each async row gets is
    // drawn from this collection's own seed material — never from a
    // process counter or call order — so two interleaved collections
    // (concurrent serve tenants profiling different datasets) still emit
    // exactly the rows a solo collection would, at any pool size. The
    // executor's own contract keeps the data-bearing fields identical.
    if (options.async_every > 0 &&
        i % static_cast<std::size_t>(options.async_every) == 0) {
      static constexpr std::size_t kDepths[] = {1, 2, 4, 8};
      static constexpr std::size_t kWorkers[] = {1, 2, 4};
      const std::size_t k = i / static_cast<std::size_t>(options.async_every);
      const std::uint64_t mix = support::task_seed(
          collection_seed ^ 0xA51CULL, static_cast<std::uint64_t>(k));
      ro.pipeline.mode = runtime::PipelineMode::kAsync;
      ro.pipeline.prefetch_depth = kDepths[mix % 4];
      ro.pipeline.sampler_workers = kWorkers[(mix >> 8) % 3];
    } else {
      ro.pipeline.mode = runtime::PipelineMode::kSync;
    }
    out[i].report = backend.run(out[i].config, ro);
  });
  log_info("profiled ", out.size(), " runs on ", dataset.name);
  return out;
}

std::vector<ProfiledRun> collect_lodo_corpus(
    const std::vector<std::string>& dataset_names,
    const std::string& held_out, int augmentation_graphs,
    const hw::HardwareProfile& hw, const CollectorOptions& options) {
  std::vector<ProfiledRun> corpus;
  for (const std::string& name : dataset_names) {
    if (name == held_out) continue;
    const graph::Dataset ds = graph::load_dataset(name);
    auto runs = collect_profiles(ds, hw, options);
    corpus.insert(corpus.end(), std::make_move_iterator(runs.begin()),
                  std::make_move_iterator(runs.end()));
  }
  CollectorOptions aug_options = options;
  aug_options.configs_per_dataset =
      std::max(1, options.configs_per_dataset / 2);
  for (int i = 0; i < augmentation_graphs; ++i) {
    const graph::Dataset ds = graph::make_power_law_augmentation(
        i, options.seed + 0xABCDULL);
    auto runs = collect_profiles(ds, hw, aug_options);
    corpus.insert(corpus.end(), std::make_move_iterator(runs.begin()),
                  std::make_move_iterator(runs.end()));
  }
  GNAV_CHECK(!corpus.empty(), "empty profiling corpus");
  return corpus;
}

}  // namespace gnav::estimator
