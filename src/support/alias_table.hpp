// Walker/Vose alias table: O(n) construction, O(1) weighted draws.
//
// This is the precomputed weighted-draw structure behind the samplers'
// biased selection probabilities (Eq. 2's p(η)): built once per
// (graph, bias) and shared across mini-batches, it replaces the per-call
// cumulative-weight arrays whose O(n) rebuild + O(log n) binary-search
// draws dominated sampler wall time. Construction is fully deterministic
// (index-ascending worklists), so a table built from the same weights is
// bit-identical everywhere, and a draw consumes exactly two Rng values —
// the determinism contract of task_seed batching is preserved.
//
// Zero total mass (every weight 0) is explicitly supported: the table
// falls back to a uniform draw over the support instead of dividing by
// zero — the hazard the biased samplers hit at bias-rate extremes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace gnav::support {

class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> weights) { build(weights); }

  /// (Re)builds the table from `weights` (all finite and >= 0; throws
  /// gnav::Error otherwise). Reuses internal storage across rebuilds.
  void build(std::span<const double> weights);

  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// True when the last build saw zero total mass and draws degrade to
  /// uniform over [0, size()).
  bool uniform_fallback() const { return uniform_fallback_; }

  /// Draws one index with probability proportional to its weight.
  /// Requires size() > 0. Consumes exactly two Rng draws.
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> prob_;          // acceptance threshold per column
  std::vector<std::uint32_t> alias_;  // fallback index per column
  std::vector<std::uint32_t> small_;  // build worklists (kept for reuse)
  std::vector<std::uint32_t> large_;
  bool uniform_fallback_ = false;
};

}  // namespace gnav::support
