// Explore targets and runtime constraints (paper Fig. 4 inputs).
//
// An application states which of {time, memory, accuracy} it prioritizes
// (explore targets with weights) and any hard runtime constraints
// (device memory budget, epoch-time deadline, accuracy floor). The
// decision maker scalarizes over the Pareto front with these weights.
#pragma once

#include <string>

namespace gnav::dse {

/// Priority weights over Perf{T, Γ, Acc}. Larger = more emphasized.
struct ExploreTargets {
  double time_weight = 1.0;
  double memory_weight = 1.0;
  double accuracy_weight = 1.0;
  std::string name = "balance";
};

/// Table-1 presets: Bal balances all three; Ex-<XY> emphasizes two
/// metrics and tolerates a marginal sacrifice on the third.
ExploreTargets targets_balance();
ExploreTargets targets_extreme_time_memory();    // Ex-TM
ExploreTargets targets_extreme_memory_accuracy(); // Ex-MA
ExploreTargets targets_extreme_time_accuracy();   // Ex-TA

/// Hard feasibility limits; non-positive/unset fields are inactive.
struct RuntimeConstraints {
  double max_epoch_time_s = 0.0;    // 0 = unconstrained
  double max_memory_gb = 0.0;       // device memory budget
  double min_accuracy = 0.0;        // accuracy floor
  /// Compute backend the decided config will execute on. The explorer
  /// predicts with this backend's features and rejects configs its
  /// DECLARED capabilities cannot run (feature/hidden dim beyond
  /// max_feature_dim; pipeline_overlap without async-transfer support).
  /// Empty = the factory default, "cpu-blocked".
  std::string backend_id;
};

inline ExploreTargets targets_balance() {
  return {1.0, 1.0, 1.0, "balance"};
}
inline ExploreTargets targets_extreme_time_memory() {
  return {2.2, 2.2, 0.35, "ex-tm"};
}
inline ExploreTargets targets_extreme_memory_accuracy() {
  return {0.35, 2.2, 2.2, "ex-ma"};
}
inline ExploreTargets targets_extreme_time_accuracy() {
  return {2.2, 0.35, 2.2, "ex-ta"};
}

}  // namespace gnav::dse
