// Decision maker (paper Fig. 4 step 4): given the feasible candidates and
// their Pareto front, scalarize Perf{T, Γ, Acc} with the application's
// priority weights and emit the training guideline.
//
// Scalarization: each metric is normalized by the median over the
// feasible set (so weights are unit-free), then
//   score = w_t * T/T_med + w_m * Γ/Γ_med - w_a * Acc/Acc_med
// and the minimizing Pareto-front member wins. T here is the *effective*
// time (see effective_time_s): when the estimator's overlap model was
// fitted from measured async-executor walls, pipelined candidates are
// ranked by their predicted real executor wall instead of Eq. 4's
// analytic optimum — so a config with better measured overlap can win.
#pragma once

#include "dse/explorer.hpp"
#include "dse/objectives.hpp"

namespace gnav::dse {

/// The wall-clock objective candidates are ranked by: the fitted
/// pipelined-executor wall (`predict_pipelined_wall_s` rescaling of
/// `time_s`) when the overlap model was fitted and the candidate
/// pipelines, the analytic `time_s` otherwise. Exposed so tests and the
/// serve layer can reproduce the ranking exactly.
double effective_time_s(const estimator::PerfPrediction& p);

struct Decision {
  Candidate chosen;
  double score = 0.0;
  /// Index of the winner within the exploration result's feasible list.
  std::size_t feasible_index = 0;
  /// The effective (ranked-by) time of the winner — equals
  /// `effective_time_s(chosen.predicted)`.
  double ranked_time_s = 0.0;
  /// Gray-box overlap arm of the winner: the predicted async-executor
  /// wall/serial ratio (fitted from measured walls when the estimator's
  /// corpus carried async rows) next to Eq. 4's analytic ratio, so the
  /// guideline can report how far the fitted correction moved from the
  /// bare max(). Both 1.0 for sync (pipeline_overlap=false) winners.
  double overlap_ratio = 1.0;
  double overlap_ratio_analytic = 1.0;
  bool overlap_fitted = false;
};

class DecisionMaker {
 public:
  explicit DecisionMaker(ExploreTargets targets);

  /// Scalarized score of a point given reference medians.
  double score(const PerfPoint& p, const PerfPoint& reference) const;

  /// Picks the best Pareto-front candidate. Throws when no candidate is
  /// feasible (the caller should then relax constraints).
  Decision decide(const ExplorationResult& result) const;

  const ExploreTargets& targets() const { return targets_; }

 private:
  ExploreTargets targets_;
};

}  // namespace gnav::dse
