#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace gnav::ml {

std::vector<double> Regressor::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict_one(row));
  return out;
}

void train_test_split(const Matrix& x, const std::vector<double>& y,
                      double test_fraction, std::uint64_t seed, Matrix* x_tr,
                      std::vector<double>* y_tr, Matrix* x_te,
                      std::vector<double>* y_te) {
  GNAV_CHECK(x.size() == y.size(), "X/y size mismatch");
  GNAV_CHECK(test_fraction > 0.0 && test_fraction < 1.0,
             "test fraction must be in (0,1)");
  std::vector<std::size_t> idx(x.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Rng rng(seed);
  rng.shuffle(idx);
  const auto n_test = std::max<std::size_t>(
      1, static_cast<std::size_t>(test_fraction *
                                  static_cast<double>(x.size())));
  x_tr->clear();
  y_tr->clear();
  x_te->clear();
  y_te->clear();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (i < n_test) {
      x_te->push_back(x[idx[i]]);
      y_te->push_back(y[idx[i]]);
    } else {
      x_tr->push_back(x[idx[i]]);
      y_tr->push_back(y[idx[i]]);
    }
  }
}

DecisionTreeRegressor::DecisionTreeRegressor(TreeParams params)
    : params_(params) {
  GNAV_CHECK(params_.max_depth >= 1, "max_depth must be >= 1");
  GNAV_CHECK(params_.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  GNAV_CHECK(params_.threshold_stride >= 1, "threshold_stride must be >= 1");
}

namespace {

double subset_mean(const std::vector<double>& y,
                   const std::vector<std::size_t>& idx) {
  double s = 0.0;
  for (std::size_t i : idx) s += y[i];
  return idx.empty() ? 0.0 : s / static_cast<double>(idx.size());
}

}  // namespace

void DecisionTreeRegressor::fit(const Matrix& x,
                                const std::vector<double>& y) {
  GNAV_CHECK(!x.empty(), "cannot fit on empty data");
  GNAV_CHECK(x.size() == y.size(), "X/y size mismatch");
  const std::size_t d = x[0].size();
  for (const auto& row : x) {
    GNAV_CHECK(row.size() == d, "ragged design matrix");
  }
  nodes_.clear();
  std::vector<std::size_t> idx(x.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  build(x, y, idx, 0);
}

int DecisionTreeRegressor::build(const Matrix& x,
                                 const std::vector<double>& y,
                                 std::vector<std::size_t>& idx, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].value = subset_mean(y, idx);

  if (depth >= params_.max_depth ||
      idx.size() < params_.min_samples_split) {
    return node_id;
  }

  // Greedy best split by sum-of-squares reduction. For each feature, sort
  // the subset once and sweep prefix sums.
  const std::size_t d = x[0].size();
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  double total_sum = 0.0;
  double total_sq = 0.0;
  for (std::size_t i : idx) {
    total_sum += y[i];
    total_sq += y[i] * y[i];
  }
  const auto n = static_cast<double>(idx.size());
  const double parent_sse = total_sq - total_sum * total_sum / n;

  std::vector<std::size_t> sorted = idx;
  for (std::size_t f = 0; f < d; ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) { return x[a][f] < x[b][f]; });
    double left_sum = 0.0;
    double left_sq = 0.0;
    std::size_t considered = 0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double yi = y[sorted[i]];
      left_sum += yi;
      left_sq += yi * yi;
      if (x[sorted[i]][f] == x[sorted[i + 1]][f]) continue;  // same value
      ++considered;
      if (static_cast<int>(considered % static_cast<std::size_t>(
                               params_.threshold_stride)) != 0) {
        continue;
      }
      const auto nl = static_cast<double>(i + 1);
      const double nr = n - nl;
      if (nl < static_cast<double>(params_.min_samples_leaf) ||
          nr < static_cast<double>(params_.min_samples_leaf)) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / nl) +
                         (right_sq - right_sum * right_sum / nr);
      const double gain = parent_sse - sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (x[sorted[i]][f] + x[sorted[i + 1]][f]);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
  for (std::size_t i : idx) {
    if (x[i][static_cast<std::size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  const int left = build(x, y, left_idx, depth + 1);
  const int right = build(x, y, right_idx, depth + 1);
  Node& nd = nodes_[static_cast<std::size_t>(node_id)];
  nd.feature = best_feature;
  nd.threshold = best_threshold;
  nd.left = left;
  nd.right = right;
  return node_id;
}

double DecisionTreeRegressor::predict_one(const std::vector<double>& x) const {
  GNAV_CHECK(is_fitted(), "predict before fit");
  int cur = 0;
  while (true) {
    const Node& nd = nodes_[static_cast<std::size_t>(cur)];
    if (nd.feature < 0) return nd.value;
    GNAV_CHECK(static_cast<std::size_t>(nd.feature) < x.size(),
               "feature index out of range in predict");
    cur = (x[static_cast<std::size_t>(nd.feature)] <= nd.threshold)
              ? nd.left
              : nd.right;
  }
}

int DecisionTreeRegressor::depth() const {
  // Iterative depth computation over the explicit node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack = {{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    best = std::max(best, depth);
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.feature >= 0) {
      stack.push_back({nd.left, depth + 1});
      stack.push_back({nd.right, depth + 1});
    }
  }
  return best;
}

}  // namespace gnav::ml
