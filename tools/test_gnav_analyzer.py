#!/usr/bin/env python3
"""Plumbing tests for tools/gnav_analyzer — everything that does NOT
need libclang: compile-db discovery/loading, suppression parsing and
policy, report writers (JSON + SARIF required fields), and the CLI's
SKIP / config-error exit codes.

The AST checks themselves are covered by the analyzer self-test
(`gnav_analyzer --self-test`, wired as the AnalyzerSelfTest ctest),
which needs clang.cindex and SKIPs where it is absent. These tests run
everywhere, so the harness cannot rot unnoticed on machines without
libclang.

Run:  python3 tools/test_gnav_analyzer.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(TOOLS_DIR))

from gnav_analyzer import CHECK_DESCRIPTIONS  # noqa: E402
from gnav_analyzer import compiledb, report, suppress  # noqa: E402


class CompileDbDiscoveryTest(unittest.TestCase):
    def test_explicit_path_wins_and_must_exist(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            explicit = root / "elsewhere" / "compile_commands.json"
            explicit.parent.mkdir()
            explicit.write_text("[]")
            # A build/ db exists too; explicit still wins.
            (root / "build").mkdir()
            (root / "build" / "compile_commands.json").write_text("[]")
            self.assertEqual(compiledb.discover(root, explicit), explicit)
            with self.assertRaises(compiledb.CompileDbError):
                compiledb.discover(root, root / "missing.json")

    def test_search_order_build_then_siblings_then_root(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            self.assertIsNone(compiledb.discover(root))
            (root / "compile_commands.json").write_text("[]")
            self.assertEqual(
                compiledb.discover(root), root / "compile_commands.json"
            )
            (root / "build-rel").mkdir()
            (root / "build-rel" / "compile_commands.json").write_text("[]")
            self.assertEqual(
                compiledb.discover(root),
                root / "build-rel" / "compile_commands.json",
            )
            (root / "build").mkdir()
            (root / "build" / "compile_commands.json").write_text("[]")
            self.assertEqual(
                compiledb.discover(root),
                root / "build" / "compile_commands.json",
            )


class CompileDbLoadTest(unittest.TestCase):
    def _write_db(self, tmp: Path, entries) -> Path:
        db = tmp / "compile_commands.json"
        db.write_text(json.dumps(entries))
        return db

    def test_load_command_and_arguments_forms(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            src = root / "a.cpp"
            src.write_text("")
            db = self._write_db(
                root,
                [
                    {
                        "directory": str(root),
                        "file": "a.cpp",
                        "command": f"ccache g++ -std=c++20 -Iinc -c a.cpp"
                                   f" -o a.o",
                    },
                    {
                        "directory": str(root),
                        "file": str(src),
                        "arguments": ["clang++", "-DFOO=1", "-c",
                                      str(src), "-o", "a.o"],
                    },
                ],
            )
            cmds = compiledb.load(db)
            self.assertEqual(len(cmds), 2)
            # Launcher, compiler, -c, -o pair, and the source are gone;
            # includes / defines / language mode survive.
            self.assertEqual(cmds[0].args, ["-std=c++20", "-Iinc"])
            self.assertEqual(cmds[1].args, ["-DFOO=1"])
            self.assertTrue(all(c.file == src.resolve() for c in cmds))

    def test_source_filter_restricts_to_root(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            (root / "src").mkdir()
            (root / "tests").mkdir()
            lib = root / "src" / "lib.cpp"
            tst = root / "tests" / "t.cpp"
            lib.write_text("")
            tst.write_text("")
            db = self._write_db(
                root,
                [
                    {"directory": str(root), "file": str(p),
                     "arguments": ["c++", "-c", str(p)]}
                    for p in (lib, tst)
                ],
            )
            cmds = compiledb.load(db, source_filter=root / "src")
            self.assertEqual([c.file for c in cmds], [lib.resolve()])

    def test_malformed_db_is_a_config_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            for bad in ('{"not": "a list"}', "not json",
                        '[{"directory": "."}]',
                        '[{"file": "a.cpp", "directory": "."}]'):
                db = self._write_db(root, None)
                db.write_text(bad)
                with self.assertRaises(compiledb.CompileDbError):
                    compiledb.load(db)


class InlineSuppressionTest(unittest.TestCase):
    def test_annotation_blesses_its_line_and_the_line_below(self):
        text = (
            "int a;\n"
            "// gnav-analyzer(unordered-iteration): commutative fold.\n"
            "for (auto& kv : m) {}\n"
            "int later;\n"
        )
        by_line, errors = suppress.inline_suppressions(text)
        self.assertEqual(errors, [])
        self.assertIn("unordered-iteration", by_line.get(2, set()))
        self.assertIn("unordered-iteration", by_line.get(3, set()))
        # Strict reach: two lines below is NOT blessed.
        self.assertNotIn(4, by_line)
        self.assertNotIn(1, by_line)

    def test_trailing_annotation_covers_the_flagged_line(self):
        text = "sink(level, msg);  // gnav-analyzer(lock-held-reentry): delivery-only mutex.\n"
        by_line, errors = suppress.inline_suppressions(text)
        self.assertEqual(errors, [])
        self.assertIn("lock-held-reentry", by_line.get(1, set()))

    def test_bare_annotation_is_an_error_not_a_suppression(self):
        for bad in ("// gnav-analyzer(unordered-iteration)\n",
                    "// gnav-analyzer(unordered-iteration):   \n"):
            by_line, errors = suppress.inline_suppressions(bad)
            self.assertEqual(by_line, {})
            self.assertEqual(len(errors), 1)
            self.assertIn("needs a justification", errors[0])


class AllowlistTest(unittest.TestCase):
    def _load(self, content: str):
        with tempfile.TemporaryDirectory() as tmp:
            p = Path(tmp) / "ALLOWLIST"
            p.write_text(content)
            return suppress.load_allowlist(p, set(CHECK_DESCRIPTIONS))

    def test_entries_parse_with_justification(self):
        entries = self._load(
            "# comment\n"
            "\n"
            "src/obs/metrics.cpp:guarded-ref-escape: stable deque, "
            "handles are process-lifetime.\n"
        )
        self.assertEqual(len(entries), 1)
        self.assertEqual(entries[0].path, "src/obs/metrics.cpp")
        self.assertEqual(entries[0].check, "guarded-ref-escape")
        self.assertTrue(
            suppress.allowlisted(entries, "src/obs/metrics.cpp",
                                 "guarded-ref-escape")
        )
        self.assertFalse(
            suppress.allowlisted(entries, "src/obs/metrics.cpp",
                                 "unordered-iteration")
        )
        self.assertFalse(
            suppress.allowlisted(entries, "src/obs/trace.cpp",
                                 "guarded-ref-escape")
        )

    def test_justification_is_required(self):
        with self.assertRaises(suppress.SuppressionError):
            self._load("src/a.cpp:unordered-iteration:\n")
        with self.assertRaises(suppress.SuppressionError):
            self._load("src/a.cpp:unordered-iteration:   \n")

    def test_unknown_check_is_rejected(self):
        with self.assertRaises(suppress.SuppressionError):
            self._load("src/a.cpp:not-a-check: because.\n")

    def test_missing_file_means_no_entries(self):
        entries = suppress.load_allowlist(
            Path("/nonexistent/ALLOWLIST"), set(CHECK_DESCRIPTIONS)
        )
        self.assertEqual(entries, [])

    def test_repo_allowlist_parses_clean(self):
        # The checked-in ALLOWLIST must always load (justified entries
        # only) — a malformed entry would turn every CI run into exit 2.
        path = TOOLS_DIR / "gnav_analyzer" / "ALLOWLIST"
        self.assertTrue(path.is_file())
        suppress.load_allowlist(path, set(CHECK_DESCRIPTIONS))


def _sample_report() -> report.Report:
    rep = report.Report(compile_db="build/compile_commands.json",
                        checks=sorted(CHECK_DESCRIPTIONS))
    seen: set = set()
    rep.add(report.Finding(
        check="unordered-iteration", file="src/x.cpp", line=10, column=3,
        message="range-for over unordered container"), seen)
    # Duplicate (header seen from two TUs) must dedupe.
    rep.add(report.Finding(
        check="unordered-iteration", file="src/x.cpp", line=10, column=3,
        message="range-for over unordered container"), seen)
    rep.add(report.Finding(
        check="lock-held-reentry", file="src/y.cpp", line=5, column=1,
        message="user callback under lock", suppressed=True,
        suppression_reason="inline: delivery-only mutex"), seen)
    return rep


class ReportWritersTest(unittest.TestCase):
    def test_json_report_shape_and_dedupe(self):
        rep = _sample_report()
        self.assertEqual(len(rep.findings), 2)
        self.assertEqual(len(rep.active()), 1)
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "report.json"
            report.write_json(rep, out)
            doc = json.loads(out.read_text())
        self.assertEqual(doc["tool"], "gnav-analyzer")
        self.assertEqual(doc["finding_count"], 2)
        self.assertEqual(doc["active_count"], 1)
        self.assertEqual(len(doc["findings"]), 2)
        self.assertEqual(doc["checks"], sorted(CHECK_DESCRIPTIONS))

    def test_sarif_required_fields(self):
        # SARIF 2.1.0 required fields per the schema: version at the
        # log level; tool.driver.name per run; every result needs a
        # message. Everything else we emit must stay internally
        # consistent (ruleId/ruleIndex resolve into driver.rules).
        doc = report.sarif_document(_sample_report())
        self.assertEqual(doc["version"], "2.1.0")
        self.assertTrue(doc["$schema"].endswith("sarif-schema-2.1.0.json"))
        self.assertEqual(len(doc["runs"]), 1)
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        self.assertEqual(driver["name"], "gnav-analyzer")
        rule_ids = [r["id"] for r in driver["rules"]]
        self.assertEqual(rule_ids, sorted(CHECK_DESCRIPTIONS))
        for rule in driver["rules"]:
            self.assertTrue(rule["fullDescription"]["text"])
        for result in run["results"]:
            self.assertIn(result["ruleId"], rule_ids)
            self.assertEqual(
                rule_ids[result["ruleIndex"]], result["ruleId"]
            )
            self.assertTrue(result["message"]["text"])
            loc = result["locations"][0]["physicalLocation"]
            self.assertTrue(loc["artifactLocation"]["uri"])
            self.assertGreaterEqual(loc["region"]["startLine"], 1)
            self.assertGreaterEqual(loc["region"]["startColumn"], 1)
        suppressed = [r for r in run["results"] if r["suppressions"]]
        self.assertEqual(len(suppressed), 1)
        self.assertEqual(suppressed[0]["suppressions"][0]["kind"],
                         "inSource")
        self.assertTrue(
            suppressed[0]["suppressions"][0]["justification"]
        )

    def test_sarif_round_trips_through_writer(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "report.sarif"
            report.write_sarif(_sample_report(), out)
            doc = json.loads(out.read_text())
        self.assertEqual(doc["version"], "2.1.0")


class CliExitCodeTest(unittest.TestCase):
    """Exit-code contract via real subprocesses (no libclang needed:
    SKIP and config errors are decided before any AST work)."""

    def _run(self, *argv: str, env_extra=None):
        env = dict(os.environ)
        env["GNAV_ANALYZER_FORCE_NO_LIBCLANG"] = "1"
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, str(TOOLS_DIR / "gnav_analyzer"), *argv],
            capture_output=True, text=True, env=env,
        )

    def test_skip_exit_77_when_libclang_unavailable(self):
        proc = self._run()
        self.assertEqual(proc.returncode, 77, proc.stdout + proc.stderr)
        self.assertIn("SKIP", proc.stderr)
        self.assertIn("determinism_lint", proc.stderr)

    def test_self_test_also_skips_without_libclang(self):
        proc = self._run("--self-test")
        self.assertEqual(proc.returncode, 77, proc.stdout + proc.stderr)

    def test_list_checks_works_without_libclang(self):
        proc = self._run("--list-checks")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        for check in CHECK_DESCRIPTIONS:
            self.assertIn(check, proc.stdout)

    def test_unknown_check_is_a_config_error(self):
        proc = self._run("--checks", "no-such-check")
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_missing_compile_db_is_a_config_error(self):
        # Force libclang "available enough" to get past the SKIP gate?
        # No — config validation runs before the libclang probe only for
        # check names; a missing explicit db must error even when the
        # run would otherwise SKIP.
        proc = self._run("--compile-db", "/nonexistent/ccdb.json")
        self.assertIn(proc.returncode, (2, 77),
                      proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
