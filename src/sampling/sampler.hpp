// Unified sampler abstraction (paper Sec. 3.2, Eq. 2): every sampler
// iteratively fans out k_l neighbors per frontier vertex at a selection
// probability p(η), then materializes the mini-batch subgraph. Node-wise,
// layer-wise, subgraph-wise, and locality-biased strategies are all
// expressed against this one interface, which is what lets the runtime
// backend reproduce PyG / FastGCN / GraphSAINT / 2PGraph by
// reconfiguration alone.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "sampling/minibatch.hpp"
#include "support/alias_table.hpp"
#include "support/rng.hpp"
#include "support/thread_safety.hpp"

namespace gnav::sampling {

enum class SamplerKind {
  kNodeWise,    // GraphSAGE-style fixed fanout per hop
  kLayerWise,   // FastGCN-style importance sampling per layer
  kSaintWalk,   // GraphSAINT random-walk subgraph sampling
  kSaintNode,   // GraphSAINT node-induced subgraph sampling
  kSaintEdge,   // GraphSAINT edge-induced subgraph sampling
  kCluster,     // Cluster-GCN partition-based subgraph batching
};

std::string to_string(SamplerKind kind);
SamplerKind sampler_kind_from_string(const std::string& s);

/// Bias term of the neighbor-selection probability p(η). `preference`
/// marks vertices the sampler should prefer (e.g. device-cached vertices
/// for 2PGraph-style cache-aware sampling); `bias_rate` in [0,1] blends
/// uniform (0) toward fully preferential (1).
struct SamplingBias {
  const std::vector<char>* preference = nullptr;  // size == num_nodes
  double bias_rate = 0.0;
  /// Monotone change counter for `preference` (the device cache bumps it
  /// on every residency change). Samplers key their cached weighted-draw
  /// structures on it; when empty the bitmap is treated as immutable.
  /// A callable rather than a pointer: DeviceCache::residency_version()
  /// returns by value now, and a `const std::uint64_t*` alias into cache
  /// internals is exactly the bug that change removed.
  std::function<std::uint64_t()> version;

  bool active() const {
    return preference != nullptr && bias_rate > 0.0;
  }
  /// Weight of a preferred vertex. Linear interpolation between uniform
  /// weight 1 and a strong preference ratio (preferred vertices are up to
  /// ~40x likelier at full bias — 2PGraph-style samplers pick cached
  /// vertices almost exclusively when available).
  double weight_preferred() const { return 1.0 + 39.0 * bias_rate; }
  double weight(graph::NodeId v) const {
    if (!active()) return 1.0;
    const bool preferred = (*preference)[static_cast<std::size_t>(v)] != 0;
    return preferred ? weight_preferred() : 1.0;
  }
};

class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Expands `seeds` (global ids, deduplicated by caller) into a
  /// mini-batch over graph `g`.
  virtual MiniBatch sample(const graph::CsrGraph& g,
                           std::span<const graph::NodeId> seeds,
                           Rng& rng) const = 0;

  virtual SamplerKind kind() const = 0;

  /// The effective hop list [k_1 .. k_L] this sampler realizes (Eq. 2);
  /// used by the analytic batch-size model (Eq. 12).
  virtual std::vector<int> hop_list() const = 0;
};

/// Fixed fanout per hop (GraphSAGE). `hops[l]` = k_{l+1}; a fanout of -1
/// keeps the full neighborhood.
class NodeWiseSampler final : public Sampler {
 public:
  NodeWiseSampler(std::vector<int> hops, SamplingBias bias = {});
  MiniBatch sample(const graph::CsrGraph& g,
                   std::span<const graph::NodeId> seeds,
                   Rng& rng) const override;
  SamplerKind kind() const override { return SamplerKind::kNodeWise; }
  std::vector<int> hop_list() const override { return hops_; }

 private:
  std::vector<int> hops_;
  SamplingBias bias_;
};

/// Layer-wise importance sampling (FastGCN): per layer l, draw
/// Δ_l = hops[l] * |B_{l-1}| candidates from the frontier's neighbor pool
/// with probability proportional to degree x bias weight (Eq. 3 maps this
/// back to the unified per-vertex fanout expectation).
class LayerWiseSampler final : public Sampler {
 public:
  LayerWiseSampler(std::vector<int> hops, SamplingBias bias = {});
  MiniBatch sample(const graph::CsrGraph& g,
                   std::span<const graph::NodeId> seeds,
                   Rng& rng) const override;
  SamplerKind kind() const override { return SamplerKind::kLayerWise; }
  std::vector<int> hop_list() const override { return hops_; }

 private:
  std::vector<int> hops_;
  SamplingBias bias_;
};

/// GraphSAINT family: the paper folds these into Eq. 2 as "many more hops
/// but single-neighbor fanout". walk variant: |seeds| rooted random walks
/// of length `walk_length`; node variant: degree-weighted node set of size
/// budget; edge variant: uniform edge set. All return the induced
/// subgraph.
class SaintSampler final : public Sampler {
 public:
  enum class Variant { kWalk, kNode, kEdge };

  SaintSampler(Variant variant, int walk_length, double budget_multiplier,
               SamplingBias bias = {});
  MiniBatch sample(const graph::CsrGraph& g,
                   std::span<const graph::NodeId> seeds,
                   Rng& rng) const override;
  SamplerKind kind() const override;
  std::vector<int> hop_list() const override;

 private:
  /// Node-variant degree weights as an alias table, built once per
  /// (graph, bias version) and shared across batches — the per-call
  /// O(|V|) cumulative-array rebuild was the sampler's dominant cost.
  std::shared_ptr<const support::AliasTable> node_alias(
      const graph::CsrGraph& g) const GNAV_EXCLUDES(cache_mutex_);

  Variant variant_;
  int walk_length_;
  double budget_multiplier_;
  SamplingBias bias_;
  mutable support::Mutex cache_mutex_;
  mutable std::uint64_t cached_graph_uid_
      GNAV_GUARDED_BY(cache_mutex_) = 0;  // 0 = nothing cached
  mutable std::uint64_t cached_version_ GNAV_GUARDED_BY(cache_mutex_) = 0;
  mutable std::shared_ptr<const support::AliasTable> cached_node_alias_
      GNAV_GUARDED_BY(cache_mutex_);
};

}  // namespace gnav::sampling
