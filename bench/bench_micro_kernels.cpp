// Micro-benchmarks (google-benchmark) for the hot kernels under the
// runtime backend: neighbor sampling, sparse aggregation, dense matmul,
// cache lookups, and full train steps. These are CPU-substrate numbers,
// not paper figures — they document where simulator time goes.
#include <benchmark/benchmark.h>

#include "cache/device_cache.hpp"
#include "compute/backend.hpp"
#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "kernels/spmm.hpp"
#include "nn/aggregate.hpp"
#include "nn/model.hpp"
#include "sampling/sampler_factory.hpp"
#include "tensor/ops.hpp"

using namespace gnav;

namespace {

const graph::CsrGraph& bench_graph() {
  static const graph::CsrGraph g = [] {
    Rng rng(1);
    return graph::power_law_configuration(20000, 2.2, 4, 500, rng);
  }();
  return g;
}

// --- Scalar-vs-blocked SpMM A/B across graph families ------------------
//
// Family 0: erdos_renyi (uniform degrees), 1: barabasi_albert (power-law
// tail), 2: rmat (heaviest skew — the headline workload). The graphs are
// sized so the feature matrix at the default dim (64) exceeds L2, which
// is the regime the blocked kernel's feature-dim tiling targets.

const graph::CsrGraph& family_graph(int family) {
  static const graph::CsrGraph er = [] {
    Rng rng(41);
    return graph::erdos_renyi(30000, 16.0 / 30000.0, rng);
  }();
  static const graph::CsrGraph ba = [] {
    Rng rng(42);
    return graph::barabasi_albert(30000, 8, rng);
  }();
  static const graph::CsrGraph rm = [] {
    Rng rng(43);
    return graph::rmat(15, 16.0, 0.57, 0.19, 0.19, rng);
  }();
  switch (family) {
    case 0:
      return er;
    case 1:
      return ba;
    default:
      return rm;
  }
}

/// args: family (0=er, 1=ba, 2=rmat), impl (0=scalar, 1=blocked),
/// feature dim. Sum aggregation — the variant every model's hot path
/// reduces to; scales only add per-row multiplies.
void BM_SpmmSum(benchmark::State& state) {
  const auto& g = family_graph(static_cast<int>(state.range(0)));
  const auto impl = state.range(1) == 0 ? kernels::SpmmImpl::kScalar
                                        : kernels::SpmmImpl::kBlocked;
  const auto dim = static_cast<std::size_t>(state.range(2));
  Rng rng(44);
  const auto x = tensor::Tensor::uniform(
      static_cast<std::size_t>(g.num_nodes()), dim, -1, 1, rng);
  tensor::Tensor y(x.rows(), x.cols());
  for (auto _ : state) {
    kernels::spmm(g, x, y, kernels::SpmmScales{}, impl);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          nn::aggregation_flops(g, dim) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpmmSum)
    ->ArgNames({"family", "impl", "dim"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}, {32, 64, 128}})
    ->Unit(benchmark::kMillisecond);

// --- Backend A/B: cpu-blocked vs cpu-arena through the factory ---------
//
// Same families/dims as BM_SpmmSum but routed through the ComputeBackend
// interface, so the numbers include the dispatch a training run actually
// pays. CI runs this with --benchmark_filter=BM_BackendSpmm and archives
// the JSON — the acceptance cell is rmat (family 2) at dim 64, where the
// arena backend's batched-SIMD row kernel plus the plan-cached arena
// must be no slower than cpu-blocked.
void BM_BackendSpmm(benchmark::State& state) {
  const auto& g = family_graph(static_cast<int>(state.range(0)));
  const char* id = state.range(1) == 0 ? compute::kBlockedBackendId
                                       : compute::kArenaBackendId;
  const auto backend = compute::BackendFactory::create(id);
  const auto dim = static_cast<std::size_t>(state.range(2));
  Rng rng(45);
  const auto x = tensor::Tensor::uniform(
      static_cast<std::size_t>(g.num_nodes()), dim, -1, 1, rng);
  tensor::Tensor y(x.rows(), x.cols());
  // Warm the arena's plan cache outside the timed loop — steady-state
  // epochs reuse the plan, and that is the regime the A/B compares.
  backend->spmm(g, x, y, kernels::SpmmScales{});
  for (auto _ : state) {
    backend->spmm(g, x, y, kernels::SpmmScales{});
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.SetLabel(id);
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          nn::aggregation_flops(g, dim) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BackendSpmm)
    ->ArgNames({"family", "backend", "dim"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}, {32, 64, 128}})
    ->Unit(benchmark::kMillisecond);

void BM_NodeWiseSampling(benchmark::State& state) {
  const auto& g = bench_graph();
  Rng rng(2);
  sampling::SamplerSettings settings;
  settings.hop_list = {static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(0))};
  const auto sampler = sampling::make_sampler(settings, nullptr);
  std::vector<graph::NodeId> seeds;
  for (auto v : rng.sample_without_replacement(g.num_nodes(), 512)) {
    seeds.push_back(v);
  }
  for (auto _ : state) {
    auto mb = sampler->sample(g, seeds, rng);
    benchmark::DoNotOptimize(mb.nodes.data());
    state.counters["batch_nodes"] =
        static_cast<double>(mb.num_nodes());
  }
}
BENCHMARK(BM_NodeWiseSampling)->Arg(5)->Arg(10)->Arg(25);

void BM_SaintWalkSampling(benchmark::State& state) {
  const auto& g = bench_graph();
  Rng rng(3);
  sampling::SamplerSettings settings;
  settings.kind = sampling::SamplerKind::kSaintWalk;
  settings.hop_list = std::vector<int>(4, 1);
  const auto sampler = sampling::make_sampler(settings, nullptr);
  std::vector<graph::NodeId> seeds;
  for (auto v : rng.sample_without_replacement(g.num_nodes(), 512)) {
    seeds.push_back(v);
  }
  for (auto _ : state) {
    auto mb = sampler->sample(g, seeds, rng);
    benchmark::DoNotOptimize(mb.nodes.data());
  }
}
BENCHMARK(BM_SaintWalkSampling);

void BM_AggregateMean(benchmark::State& state) {
  const auto& g = bench_graph();
  Rng rng(4);
  const auto x = tensor::Tensor::uniform(
      static_cast<std::size_t>(g.num_nodes()),
      static_cast<std::size_t>(state.range(0)), -1, 1, rng);
  for (auto _ : state) {
    auto y = nn::aggregate_mean(g, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_AggregateMean)->Arg(32)->Arg(128);

void BM_AggregateGcn(benchmark::State& state) {
  const auto& g = bench_graph();
  Rng rng(5);
  const auto x = tensor::Tensor::uniform(
      static_cast<std::size_t>(g.num_nodes()), 64, -1, 1, rng);
  for (auto _ : state) {
    auto y = nn::aggregate_gcn(g, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_AggregateGcn);

void BM_Matmul(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = tensor::Tensor::uniform(n, 64, -1, 1, rng);
  const auto b = tensor::Tensor::uniform(64, 64, -1, 1, rng);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n) * 64 *
                          64 * 2);
}
BENCHMARK(BM_Matmul)->Arg(1024)->Arg(8192);

void BM_CacheLookup(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto policy = static_cast<cache::CachePolicy>(state.range(0));
  cache::DeviceCache dc(policy, 4000, g);
  Rng rng(7);
  std::vector<graph::NodeId> batch;
  for (int i = 0; i < 4000; ++i) {
    batch.push_back(static_cast<graph::NodeId>(
        rng.uniform_index(static_cast<std::uint64_t>(g.num_nodes()))));
  }
  for (auto _ : state) {
    auto res = dc.lookup_and_update(batch);
    benchmark::DoNotOptimize(res.misses.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(batch.size()));
}
BENCHMARK(BM_CacheLookup)
    ->Arg(static_cast<int>(cache::CachePolicy::kStatic))
    ->Arg(static_cast<int>(cache::CachePolicy::kLru))
    ->Arg(static_cast<int>(cache::CachePolicy::kFifo));

void BM_GnnTrainStep(benchmark::State& state) {
  Rng rng(8);
  const auto kind = static_cast<nn::ModelKind>(state.range(0));
  const auto g = [] {
    Rng r(9);
    return graph::power_law_configuration(3000, 2.2, 4, 120, r);
  }();
  nn::ModelConfig mc;
  mc.kind = kind;
  mc.in_dim = 48;
  mc.hidden_dim = 64;
  mc.out_dim = 8;
  mc.num_layers = 2;
  nn::GnnModel model(mc, rng);
  const auto x = tensor::Tensor::uniform(
      static_cast<std::size_t>(g.num_nodes()), 48, -1, 1, rng);
  tensor::Tensor grad(static_cast<std::size_t>(g.num_nodes()), 8, 1e-3f);
  for (auto _ : state) {
    auto out = model.forward(g, x, true, rng);
    model.backward(grad);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GnnTrainStep)
    ->Arg(static_cast<int>(nn::ModelKind::kGcn))
    ->Arg(static_cast<int>(nn::ModelKind::kSage))
    ->Arg(static_cast<int>(nn::ModelKind::kGat));

}  // namespace

BENCHMARK_MAIN();
