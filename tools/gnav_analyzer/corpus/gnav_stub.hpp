// Hermetic stand-ins for the std and project surfaces the checks key
// on. Corpus TUs include ONLY this header, so the self-test parses with
// no system include path at all — the checks match canonical type
// spellings ("std::thread", "gnav::support::Rng", ...) and these fakes
// produce the same spellings as the real headers. Declaration-only on
// purpose: the corpus is parsed, never linked.
#pragma once

namespace std {
using size_t = decltype(sizeof(0));

class string {
 public:
  string();
  string(const char* s);  // NOLINT — implicit, mirrors std::string
};

class thread {
 public:
  thread();
  template <typename F>
  explicit thread(F f);
  void join();
};

template <typename T>
class function;
template <typename R, typename... Args>
class function<R(Args...)> {
 public:
  function();
  template <typename F>
  function(F f);  // NOLINT — implicit, mirrors std::function
  function& operator=(const function& other);
  R operator()(Args... args) const;
  explicit operator bool() const;
};

template <typename T>
class vector {
 public:
  struct iterator {
    T& operator*();
    iterator& operator++();
    bool operator!=(const iterator& other) const;
  };
  iterator begin() const;
  iterator end() const;
  T& operator[](size_t i);
  void push_back(const T& value);
  template <typename... Args>
  void emplace_back(Args&&... args);
  size_t size() const;
};

template <typename K, typename V>
class unordered_map {
 public:
  struct value_type {
    K first;
    V second;
  };
  struct iterator {
    value_type& operator*();
    iterator& operator++();
    bool operator!=(const iterator& other) const;
  };
  iterator begin() const;
  iterator end() const;
  V& operator[](const K& key);
};

template <typename K>
class unordered_set {
 public:
  struct iterator {
    const K& operator*();
    iterator& operator++();
    bool operator!=(const iterator& other) const;
  };
  iterator begin() const;
  iterator end() const;
};
}  // namespace std

namespace gnav {
namespace support {
class __attribute__((capability("mutex"))) Mutex {
 public:
  void lock() __attribute__((acquire_capability()));
  void unlock() __attribute__((release_capability()));
};

class __attribute__((scoped_lockable)) MutexLock {
 public:
  explicit MutexLock(Mutex& mu) __attribute__((acquire_capability(mu)));
  ~MutexLock() __attribute__((release_capability()));
};

class Rng {
 public:
  explicit Rng(unsigned long long seed);
  Rng(const Rng& other) = default;
  unsigned long long next_u64();
};

unsigned long long task_seed(unsigned long long base, std::size_t index);

class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);
  template <typename F>
  void submit(F&& f);
};
}  // namespace support

namespace kernels {
struct SpmmImplScope {
  explicit SpmmImplScope(int impl);
  ~SpmmImplScope();
};
void spmm(const float* x, float* y, std::size_t n);
}  // namespace kernels

namespace compute {
class ComputeBackend {
 public:
  virtual ~ComputeBackend();
  virtual void spmm() const;
};

class BackendScope {
 public:
  explicit BackendScope(const std::string& id);
  ~BackendScope();
};

const ComputeBackend& current_backend();

class BackendFactory {
 public:
  static const ComputeBackend* create(const std::string& id);
};
}  // namespace compute
}  // namespace gnav

#define GNAV_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define GNAV_REQUIRES(...) __attribute__((requires_capability(__VA_ARGS__)))
