// Tests for the from-scratch ML library: decision tree, random forest,
// gradient boosting, ridge regression, metrics, and splits.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/decision_tree.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/ridge.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gnav::ml {
namespace {

/// y = step function of x0 plus mild noise — tree-friendly target.
void make_step_data(int n, std::uint64_t seed, Matrix* x,
                    std::vector<double>* y) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform(0.0, 1.0);
    const double x1 = rng.uniform(0.0, 1.0);
    x->push_back({x0, x1});
    y->push_back((x0 > 0.5 ? 10.0 : -10.0) + rng.normal() * 0.2);
  }
}

/// y = 3 x0 - 2 x1 + 1 + noise — linear target.
void make_linear_data(int n, std::uint64_t seed, Matrix* x,
                      std::vector<double>* y) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-2.0, 2.0);
    const double x1 = rng.uniform(-2.0, 2.0);
    x->push_back({x0, x1});
    y->push_back(3.0 * x0 - 2.0 * x1 + 1.0 + rng.normal() * 0.05);
  }
}

TEST(Metrics, KnownValues) {
  const std::vector<double> yt = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r2_score(yt, yt), 1.0);
  EXPECT_DOUBLE_EQ(mse(yt, {2, 3, 4, 5}), 1.0);
  EXPECT_DOUBLE_EQ(mae(yt, {2, 3, 4, 5}), 1.0);
  // predicting the mean gives R2 = 0
  EXPECT_NEAR(r2_score(yt, {2.5, 2.5, 2.5, 2.5}), 0.0, 1e-12);
  // constant targets -> define R2 = 0
  EXPECT_DOUBLE_EQ(r2_score({5, 5}, {5, 5}), 0.0);
  EXPECT_THROW(mse({1.0}, {}), Error);
  EXPECT_NEAR(mape({10, 20}, {11, 18}), 0.5 * (0.1 + 0.1), 1e-12);
}

TEST(DecisionTree, FitsStepFunctionPerfectly) {
  Matrix x;
  std::vector<double> y;
  make_step_data(300, 1, &x, &y);
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_TRUE(tree.is_fitted());
  EXPECT_GT(tree.node_count(), 1u);
  EXPECT_NEAR(tree.predict_one({0.9, 0.5}), 10.0, 1.0);
  EXPECT_NEAR(tree.predict_one({0.1, 0.5}), -10.0, 1.0);
  EXPECT_GT(r2_score(y, tree.predict(x)), 0.95);
}

TEST(DecisionTree, RespectsMaxDepth) {
  Matrix x;
  std::vector<double> y;
  make_step_data(200, 2, &x, &y);
  TreeParams params;
  params.max_depth = 1;
  DecisionTreeRegressor stump(params);
  stump.fit(x, y);
  EXPECT_LE(stump.depth(), 2);  // root + one split level
  EXPECT_LE(stump.node_count(), 3u);
}

TEST(DecisionTree, ConstantTargetGivesSingleLeaf) {
  Matrix x = {{0.0}, {1.0}, {2.0}};
  const std::vector<double> y = {4.0, 4.0, 4.0};
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_one({5.0}), 4.0);
}

TEST(DecisionTree, ErrorsOnBadInput) {
  DecisionTreeRegressor tree;
  EXPECT_THROW(tree.fit({}, {}), Error);
  EXPECT_THROW(tree.fit({{1.0}}, {1.0, 2.0}), Error);
  EXPECT_THROW(tree.predict_one({1.0}), Error);  // before fit
  Matrix ragged = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(tree.fit(ragged, {1.0, 2.0}), Error);
}

TEST(RandomForest, BeatsSingleStumpOnNoisyData) {
  Matrix x;
  std::vector<double> y;
  make_step_data(400, 3, &x, &y);
  Matrix xt;
  std::vector<double> yt;
  make_step_data(100, 4, &xt, &yt);
  ForestParams fp;
  fp.num_trees = 20;
  RandomForestRegressor forest(fp);
  forest.fit(x, y);
  EXPECT_EQ(forest.tree_count(), 20u);
  EXPECT_GT(r2_score(yt, forest.predict(xt)), 0.9);
}

TEST(RandomForest, DeterministicWithSeed) {
  Matrix x;
  std::vector<double> y;
  make_step_data(150, 5, &x, &y);
  ForestParams fp;
  fp.seed = 9;
  RandomForestRegressor a(fp);
  RandomForestRegressor b(fp);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_DOUBLE_EQ(a.predict_one({0.3, 0.3}), b.predict_one({0.3, 0.3}));
}

TEST(GradientBoosting, FitsLinearTarget) {
  Matrix x;
  std::vector<double> y;
  make_linear_data(400, 6, &x, &y);
  Matrix xt;
  std::vector<double> yt;
  make_linear_data(100, 7, &xt, &yt);
  GradientBoostingRegressor gbm;
  gbm.fit(x, y);
  EXPECT_GT(gbm.round_count(), 10u);
  EXPECT_GT(r2_score(yt, gbm.predict(xt)), 0.9);
}

TEST(GradientBoosting, EarlyStopsOnPerfectFit) {
  Matrix x = {{0.0}, {1.0}, {2.0}, {3.0}};
  const std::vector<double> y = {5.0, 5.0, 5.0, 5.0};
  GradientBoostingRegressor gbm;
  gbm.fit(x, y);
  EXPECT_EQ(gbm.round_count(), 0u);  // base prediction already exact
  EXPECT_DOUBLE_EQ(gbm.predict_one({9.0}), 5.0);
}

TEST(Ridge, RecoversLinearCoefficients) {
  Matrix x;
  std::vector<double> y;
  make_linear_data(500, 8, &x, &y);
  RidgeRegressor ridge(1e-6);
  ridge.fit(x, y);
  ASSERT_EQ(ridge.coefficients().size(), 2u);
  EXPECT_NEAR(ridge.coefficients()[0], 3.0, 0.05);
  EXPECT_NEAR(ridge.coefficients()[1], -2.0, 0.05);
  EXPECT_NEAR(ridge.intercept(), 1.0, 0.05);
  EXPECT_GT(r2_score(y, ridge.predict(x)), 0.99);
}

TEST(Ridge, RegularizationShrinksCoefficients) {
  Matrix x;
  std::vector<double> y;
  make_linear_data(200, 9, &x, &y);
  RidgeRegressor weak(1e-6);
  RidgeRegressor strong(1e4);
  weak.fit(x, y);
  strong.fit(x, y);
  EXPECT_LT(std::abs(strong.coefficients()[0]),
            std::abs(weak.coefficients()[0]));
}

TEST(Ridge, HandlesCollinearFeaturesViaLambda) {
  // x1 == x0 duplicates -> singular normal equations unless regularized.
  Matrix x;
  std::vector<double> y;
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const double v = rng.uniform(-1, 1);
    x.push_back({v, v});
    y.push_back(2.0 * v);
  }
  RidgeRegressor ridge(1e-3);
  EXPECT_NO_THROW(ridge.fit(x, y));
  EXPECT_NEAR(ridge.predict_one({0.5, 0.5}), 1.0, 0.05);
}

TEST(TrainTestSplit, PartitionsData) {
  Matrix x;
  std::vector<double> y;
  make_linear_data(100, 11, &x, &y);
  Matrix xtr, xte;
  std::vector<double> ytr, yte;
  train_test_split(x, y, 0.25, 42, &xtr, &ytr, &xte, &yte);
  EXPECT_EQ(xtr.size() + xte.size(), 100u);
  EXPECT_EQ(xte.size(), 25u);
  EXPECT_EQ(xtr.size(), ytr.size());
  EXPECT_EQ(xte.size(), yte.size());
  EXPECT_THROW(
      train_test_split(x, y, 1.5, 1, &xtr, &ytr, &xte, &yte), Error);
}

}  // namespace
}  // namespace gnav::ml
