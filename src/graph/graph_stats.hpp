// Graph profiling — Step 1 of the paper's workflow ("Graph Profiling:
// e.g. data distribution") computes these statistics to parameterize the
// performance estimator and prune the design space.
#pragma once

#include <cstddef>
#include <string>

#include "graph/csr_graph.hpp"

namespace gnav::graph {

struct GraphProfile {
  NodeId num_nodes = 0;
  EdgeId num_edges = 0;
  double avg_degree = 0.0;
  std::size_t max_degree = 0;
  double degree_stddev = 0.0;
  /// Gini coefficient of the degree distribution — the skew signal that
  /// decides how effective degree-ordered caching can be.
  double degree_gini = 0.0;
  /// MLE power-law exponent for the degree tail (0 when not heavy-tailed).
  double power_law_alpha = 0.0;
  /// Fraction of all edges incident to the top 10% highest-degree nodes —
  /// an upper bound proxy for static cache hit rate at 10% cache ratio.
  double top10_edge_coverage = 0.0;

  std::string to_string() const;
};

GraphProfile profile_graph(const CsrGraph& g);

/// Fraction of edge endpoints covered by caching the `ratio` highest-degree
/// fraction of vertices (the analytic prior for static-cache hit rates).
double degree_cache_coverage(const CsrGraph& g, double ratio);

}  // namespace gnav::graph
