// ASCII table / CSV emitter used by the benchmark harness to print the
// rows of each paper table and the series of each paper figure.
#pragma once

#include <string>
#include <vector>

namespace gnav {

/// Accumulates rows of string cells and renders them either as an aligned
/// ASCII table (for the console) or CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Aligned monospace rendering with a header separator.
  std::string to_ascii() const;

  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

  /// Writes CSV to a file; throws on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gnav
