// Ridge (L2-regularized linear) regression solved by normal equations
// with Cholesky factorization. Used for the smooth, nearly-linear
// residuals of the white-box cost terms (e.g. transfer time vs bytes).
#pragma once

#include <vector>

#include "ml/regressor.hpp"

namespace gnav::ml {

class RidgeRegressor final : public Regressor {
 public:
  explicit RidgeRegressor(double lambda = 1e-3);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  double predict_one(const std::vector<double>& x) const override;
  bool is_fitted() const override { return fitted_; }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double lambda_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace gnav::ml
