// COO -> CSR construction with deduplication, self-loop control, and
// optional symmetrization. Neighbor lists in the produced CSR are sorted
// ascending (several consumers — symmetry check, induced-subgraph
// extraction — rely on this).
#pragma once

#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"

namespace gnav::graph {

struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
};

class GraphBuilder {
 public:
  /// `num_nodes` fixes the vertex id space [0, num_nodes).
  explicit GraphBuilder(NodeId num_nodes);

  /// Appends a directed edge. Throws if an endpoint is out of range.
  void add_edge(NodeId src, NodeId dst);

  /// Appends both (src,dst) and (dst,src).
  void add_undirected_edge(NodeId src, NodeId dst);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_buffered_edges() const { return edges_.size(); }

  /// Options applied at finalization.
  GraphBuilder& remove_self_loops(bool enabled);
  GraphBuilder& deduplicate(bool enabled);
  GraphBuilder& symmetrize(bool enabled);

  /// Builds the CSR graph. The builder may be reused afterwards.
  CsrGraph build() const;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
  bool remove_self_loops_ = true;
  bool deduplicate_ = true;
  bool symmetrize_ = false;
};

/// Convenience: build a symmetrized, deduplicated simple graph from an
/// edge list.
CsrGraph build_undirected(NodeId num_nodes, const std::vector<Edge>& edges);

/// Extracts the subgraph induced by `nodes` (global ids). Returns the CSR
/// over local ids 0..nodes.size()-1 where local i corresponds to nodes[i].
/// Duplicate ids in `nodes` are rejected.
CsrGraph induced_subgraph(const CsrGraph& g, const std::vector<NodeId>& nodes);

}  // namespace gnav::graph
