#include "graph/graph_stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace gnav::graph {
namespace {

double gini(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  double cum = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cum += xs[i];
    weighted += static_cast<double>(i + 1) * xs[i];
  }
  if (cum <= 0.0) return 0.0;
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace

std::string GraphProfile::to_string() const {
  std::ostringstream os;
  os << "GraphProfile{n=" << num_nodes << ", m=" << num_edges
     << ", avg_deg=" << avg_degree << ", max_deg=" << max_degree
     << ", deg_std=" << degree_stddev << ", gini=" << degree_gini
     << ", alpha=" << power_law_alpha
     << ", top10_cov=" << top10_edge_coverage << "}";
  return os.str();
}

GraphProfile profile_graph(const CsrGraph& g) {
  GraphProfile p;
  p.num_nodes = g.num_nodes();
  p.num_edges = g.num_edges();
  p.avg_degree = g.average_degree();
  const auto degs = g.degrees();
  std::vector<double> degs_d(degs.size());
  for (std::size_t i = 0; i < degs.size(); ++i) {
    degs_d[i] = static_cast<double>(degs[i]);
    p.max_degree = std::max(p.max_degree, degs[i]);
  }
  p.degree_stddev = stddev(degs_d);
  p.degree_gini = gini(degs_d);
  const std::size_t x_min = std::max<std::size_t>(
      2, static_cast<std::size_t>(p.avg_degree));
  p.power_law_alpha = fit_power_law_alpha(degs, x_min);
  p.top10_edge_coverage = degree_cache_coverage(g, 0.10);
  return p;
}

double degree_cache_coverage(const CsrGraph& g, double ratio) {
  GNAV_CHECK(ratio >= 0.0 && ratio <= 1.0, "ratio must be in [0,1]");
  if (g.num_nodes() == 0 || g.num_edges() == 0) return 0.0;
  auto degs = g.degrees();
  std::sort(degs.begin(), degs.end(), std::greater<>());
  const auto k = static_cast<std::size_t>(
      ratio * static_cast<double>(degs.size()));
  const std::size_t covered =
      std::accumulate(degs.begin(), degs.begin() + static_cast<std::ptrdiff_t>(k),
                      std::size_t{0});
  return static_cast<double>(covered) / static_cast<double>(g.num_edges());
}

}  // namespace gnav::graph
