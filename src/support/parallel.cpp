#include "support/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace gnav::support {
namespace {
thread_local bool t_in_worker = false;

/// Pool instruments. One process-wide pair shared by every pool: the
/// gauge reflects the most recently active pool's backlog (a process
/// diagnostic, not per-pool accounting), the counter totals across all
/// pools.
struct PoolInstruments {
  obs::Gauge& pending;
  obs::Counter& jobs;
};

PoolInstruments& pool_instruments() {
  auto& reg = obs::MetricsRegistry::global();
  static PoolInstruments ins{
      reg.gauge("gnav_pool_pending_jobs", {},
                "Jobs enqueued but unclaimed on the most recently active "
                "thread pool"),
      reg.counter("gnav_pool_jobs_total", {},
                  "Jobs enqueued across every thread pool"),
  };
  return ins;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_thread_count();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

bool ThreadPool::in_worker() { return t_in_worker; }

InlineExecutionScope::InlineExecutionScope() : previous_(t_in_worker) {
  t_in_worker = true;
}

InlineExecutionScope::~InlineExecutionScope() { t_in_worker = previous_; }

void ThreadPool::enqueue(std::function<void()> job) {
  std::size_t backlog = 0;
  {
    MutexLock lock(mutex_);
    GNAV_CHECK(!stop_, "submit on a stopped ThreadPool");
    queue_.push_back(std::move(job));
    backlog = queue_.size();
  }
  cv_.notify_one();
  auto& ins = pool_instruments();
  ins.jobs.add(1);
  ins.pending.set(static_cast<double>(backlog));
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  obs::set_thread_name("gnav-pool-" + std::to_string(worker_index));
  t_in_worker = true;
  for (;;) {
    std::function<void()> job;
    std::size_t backlog = 0;
    {
      // Explicit wait loop (not the predicate overload): the predicate
      // lambda cannot carry a REQUIRES annotation, so the analysis would
      // flag its guarded-field reads; the loop body runs with the scoped
      // capability visibly held.
      UniqueLock lock(mutex_);
      while (!stop_ && queue_.empty()) lock.wait(cv_);
      if (queue_.empty()) return;  // stop_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
      backlog = queue_.size();
    }
    pool_instruments().pending.set(static_cast<double>(backlog));
    job();  // packaged_task-style jobs never throw out of operator()
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  // Nested call from a worker (or a degenerate range): run inline. This
  // keeps nested parallel_for deadlock-free with zero coordination.
  if (in_worker() || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  struct SharedState {
    std::atomic<std::size_t> next;
    std::size_t end = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> jobs_left;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::mutex error_mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<SharedState>();
  state->next = begin;
  state->end = end;
  // A few chunks per worker balances load without starving the atomic.
  state->chunk = std::max<std::size_t>(1, n / (size() * 8));
  const std::size_t jobs = std::min(size(), n);
  state->jobs_left = jobs;

  auto run_chunks = [state, &body] {
    for (;;) {
      const std::size_t start =
          state->next.fetch_add(state->chunk, std::memory_order_relaxed);
      if (start >= state->end) break;
      const std::size_t stop = std::min(start + state->chunk, state->end);
      try {
        for (std::size_t i = start; i < stop; ++i) body(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state->error_mutex);
          if (!state->error) state->error = std::current_exception();
        }
        state->next.store(state->end, std::memory_order_relaxed);
        break;
      }
    }
    if (state->jobs_left.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(state->done_mutex);
      state->done_cv.notify_all();
    }
  };

  for (std::size_t j = 0; j < jobs; ++j) enqueue(run_chunks);
  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(lock, [&state] { return state->jobs_left == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

std::optional<long> env_long(const char* name, long min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return std::nullopt;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v < min_value) {
    // Reject 0 and garbage loudly — but only once per variable: this is
    // called from per-run option defaults, and a warning per profiled
    // run would flood the log.
    static std::mutex warned_mutex;
    static std::set<std::string> warned;
    bool first = false;
    {
      std::lock_guard<std::mutex> lock(warned_mutex);
      first = warned.insert(name).second;
    }
    if (first) {
      log_warn(name, "='", raw, "' is invalid (need an integer >= ",
               min_value, "); falling back to the default");
    }
    return std::nullopt;
  }
  return v;
}

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const auto fallback = hw == 0 ? std::size_t{1} : static_cast<std::size_t>(hw);
  if (const auto v = env_long("GNAV_THREADS", 1)) {
    return static_cast<std::size_t>(*v);
  }
  return fallback;  // unset, or invalid (warned once above)
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // splitmix64 on the combined value; the odd multiplier decorrelates
  // adjacent indices before the finalizer.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace gnav::support
