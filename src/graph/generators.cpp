#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/graph_builder.hpp"
#include "support/error.hpp"

namespace gnav::graph {
namespace {

/// Draws a degree from a discrete power law P(d) ∝ d^-exponent on
/// [min_degree, max_degree] via inverse-CDF on the continuous
/// approximation, then rounding.
std::size_t draw_power_law_degree(double exponent, std::size_t min_degree,
                                  std::size_t max_degree, Rng& rng) {
  const double a = 1.0 - exponent;
  const double lo = std::pow(static_cast<double>(min_degree), a);
  const double hi = std::pow(static_cast<double>(max_degree) + 1.0, a);
  const double u = rng.uniform();
  const double x = std::pow(lo + u * (hi - lo), 1.0 / a);
  auto d = static_cast<std::size_t>(x);
  return std::clamp(d, min_degree, max_degree);
}

}  // namespace

CsrGraph erdos_renyi(NodeId n, double p, Rng& rng) {
  GNAV_CHECK(n >= 0, "n must be non-negative");
  GNAV_CHECK(p >= 0.0 && p <= 1.0, "p must be in [0,1]");
  GraphBuilder b(n);
  if (p > 0.0 && n > 1) {
    // Iterate over the upper triangle with geometric jumps between
    // successful pairs: expected work O(p * n^2) = O(E).
    const double log1mp = std::log1p(-p);
    std::int64_t v = 1;
    std::int64_t w = -1;
    const bool certain = (p >= 1.0);
    while (v < n) {
      if (certain) {
        ++w;
      } else {
        const double r = std::max(rng.uniform(), 1e-300);
        w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log1mp));
      }
      while (w >= v && v < n) {
        w -= v;
        ++v;
      }
      if (v < n) b.add_undirected_edge(v, w);
    }
  }
  return b.deduplicate(true).remove_self_loops(true).build();
}

CsrGraph barabasi_albert(NodeId n, NodeId m, Rng& rng) {
  GNAV_CHECK(m >= 1, "attachment count m must be >= 1");
  GNAV_CHECK(n > m, "n must exceed m");
  GraphBuilder b(n);
  // Repeated-endpoint list: sampling a uniform element of `targets` is
  // equivalent to degree-proportional sampling.
  std::vector<NodeId> targets;
  targets.reserve(static_cast<std::size_t>(2 * m * n));
  // Seed clique over the first m+1 vertices.
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = i + 1; j <= m; ++j) {
      b.add_undirected_edge(i, j);
      targets.push_back(i);
      targets.push_back(j);
    }
  }
  for (NodeId v = m + 1; v < n; ++v) {
    std::vector<NodeId> picked;
    picked.reserve(static_cast<std::size_t>(m));
    while (static_cast<NodeId>(picked.size()) < m) {
      const NodeId u = targets[rng.uniform_index(targets.size())];
      if (std::find(picked.begin(), picked.end(), u) == picked.end()) {
        picked.push_back(u);
      }
    }
    for (NodeId u : picked) {
      b.add_undirected_edge(v, u);
      targets.push_back(v);
      targets.push_back(u);
    }
  }
  return b.deduplicate(true).remove_self_loops(true).build();
}

CsrGraph power_law_configuration(NodeId n, double exponent,
                                 std::size_t min_degree,
                                 std::size_t max_degree, Rng& rng,
                                 std::size_t* drawn_degree_total) {
  GNAV_CHECK(n > 1, "need at least two vertices");
  GNAV_CHECK(exponent > 1.0, "power-law exponent must exceed 1");
  GNAV_CHECK(min_degree >= 1 && min_degree <= max_degree,
             "invalid degree bounds");
  GNAV_CHECK(max_degree < static_cast<std::size_t>(n),
             "max_degree must be below n");
  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t d =
        draw_power_law_degree(exponent, min_degree, max_degree, rng);
    for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  if (drawn_degree_total != nullptr) *drawn_degree_total = stubs.size();
  if (stubs.size() % 2 == 1) stubs.push_back(0);

  // Stub matching with explicit rejection: a pair forming a self-loop or
  // duplicating an already-accepted edge returns both stubs to a pool
  // that is reshuffled and matched one more time. Without the retry the
  // realized degree drifts well below the drawn degree on small n (hubs
  // collide with themselves and each other constantly).
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> accepted;
  const auto edge_key = [n](NodeId u, NodeId v) {
    const auto lo = static_cast<std::uint64_t>(std::min(u, v));
    const auto hi = static_cast<std::uint64_t>(std::max(u, v));
    return lo * static_cast<std::uint64_t>(n) + hi;
  };
  // Pools are always even: the stub list is padded above and rejects are
  // pushed in pairs.
  const auto match_pass = [&](std::vector<NodeId>& pool,
                              std::vector<NodeId>* rejected) {
    rng.shuffle(pool);
    for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
      const NodeId u = pool[i];
      const NodeId v = pool[i + 1];
      if (u == v || !accepted.insert(edge_key(u, v)).second) {
        if (rejected != nullptr) {
          rejected->push_back(u);
          rejected->push_back(v);
        }
        continue;
      }
      b.add_undirected_edge(u, v);
    }
  };
  std::vector<NodeId> rejected;
  match_pass(stubs, &rejected);
  if (rejected.size() >= 2) match_pass(rejected, nullptr);
  return b.deduplicate(true).remove_self_loops(true).build();
}

CsrGraph rmat(int scale, double edge_factor, double a, double b, double c,
              Rng& rng) {
  GNAV_CHECK(scale >= 1 && scale < 31, "scale out of range");
  GNAV_CHECK(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0,
             "quadrant probabilities must sum below 1");
  const NodeId n = NodeId{1} << scale;
  const auto num_edges =
      static_cast<std::size_t>(edge_factor * static_cast<double>(n));
  GraphBuilder bd(n);
  for (std::size_t e = 0; e < num_edges; ++e) {
    NodeId src = 0;
    NodeId dst = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      src <<= 1;
      dst <<= 1;
      if (r < a) {
        // top-left quadrant: both bits 0
      } else if (r < a + b) {
        dst |= 1;
      } else if (r < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src != dst) bd.add_undirected_edge(src, dst);
  }
  return bd.deduplicate(true).remove_self_loops(true).build();
}

CsrGraph planted_partition(NodeId n, int num_blocks, double p_in,
                           double p_out, Rng& rng,
                           std::vector<int>* block_of) {
  GNAV_CHECK(num_blocks >= 1, "need at least one block");
  GNAV_CHECK(p_in >= 0 && p_in <= 1 && p_out >= 0 && p_out <= 1,
             "probabilities must be in [0,1]");
  if (block_of != nullptr) {
    block_of->resize(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      (*block_of)[static_cast<std::size_t>(v)] =
          static_cast<int>(v % num_blocks);
    }
  }
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u = v + 1; u < n; ++u) {
      const bool same = (v % num_blocks) == (u % num_blocks);
      if (rng.bernoulli(same ? p_in : p_out)) {
        b.add_undirected_edge(v, u);
      }
    }
  }
  return b.deduplicate(true).remove_self_loops(true).build();
}

CsrGraph power_law_community_graph(NodeId n, int num_blocks,
                                   double power_law_exponent,
                                   std::size_t min_degree,
                                   std::size_t max_degree,
                                   double community_rewire_prob, Rng& rng,
                                   std::vector<int>* block_of) {
  GNAV_CHECK(num_blocks >= 1, "need at least one block");
  GNAV_CHECK(community_rewire_prob >= 0.0 && community_rewire_prob <= 1.0,
             "rewire probability must be in [0,1]");
  std::vector<int> blocks(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    blocks[static_cast<std::size_t>(v)] = static_cast<int>(v % num_blocks);
  }
  if (block_of != nullptr) *block_of = blocks;

  // Draw a power-law degree sequence, then match stubs preferentially
  // within the same community: with probability `community_rewire_prob` a
  // stub is matched inside its block, otherwise globally.
  std::vector<NodeId> global_stubs;
  std::vector<std::vector<NodeId>> block_stubs(
      static_cast<std::size_t>(num_blocks));
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t d = draw_power_law_degree(power_law_exponent, min_degree,
                                                max_degree, rng);
    for (std::size_t i = 0; i < d; ++i) {
      if (rng.bernoulli(community_rewire_prob)) {
        block_stubs[static_cast<std::size_t>(blocks[static_cast<std::size_t>(v)])]
            .push_back(v);
      } else {
        global_stubs.push_back(v);
      }
    }
  }
  GraphBuilder b(n);
  auto match = [&](std::vector<NodeId>& stubs) {
    rng.shuffle(stubs);
    if (stubs.size() % 2 == 1) stubs.pop_back();
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      if (stubs[i] != stubs[i + 1]) {
        b.add_undirected_edge(stubs[i], stubs[i + 1]);
      }
    }
  };
  for (auto& stubs : block_stubs) match(stubs);
  match(global_stubs);
  return b.deduplicate(true).remove_self_loops(true).build();
}

}  // namespace gnav::graph
