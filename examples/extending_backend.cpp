// Extending the backend — the paper stresses that "the runtime backend
// can even incrementally support future optimizations only if they submit
// to our abstraction". This example does it twice, at both extension
// seams:
//
//  1. a brand-new sampling strategy (a degree-capped "frontier firehose"
//     sampler that takes ALL neighbors of low-degree vertices and a
//     fixed fanout of hubs) against the Sampler interface, and
//  2. an out-of-tree ComputeBackend ("example-counting": delegates SpMM
//     to the built-in blocked kernel while counting dispatches)
//     registered in the BackendFactory and selected for the training
//     loop with a BackendScope,
//
// then trains with both on the same dataset/model stack with zero
// changes to the library.
#include <atomic>
#include <cstdio>
#include <unordered_set>

#include "compute/backend.hpp"
#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optim.hpp"
#include "sampling/batcher.hpp"
#include "sampling/build.hpp"
#include "sampling/sampler.hpp"
#include "tensor/ops.hpp"

using namespace gnav;

namespace {

/// Custom strategy: vertices with degree <= `cap` contribute their whole
/// neighborhood; hubs are subsampled to `hub_fanout`. One hop.
class DegreeCappedSampler final : public sampling::Sampler {
 public:
  DegreeCappedSampler(int cap, int hub_fanout)
      : cap_(cap), hub_fanout_(hub_fanout) {}

  sampling::MiniBatch sample(const graph::CsrGraph& g,
                             std::span<const graph::NodeId> seeds,
                             Rng& rng) const override {
    std::vector<graph::NodeId> collected;
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    double work = 0.0;
    for (graph::NodeId v : seeds) {
      const auto nb = g.neighbors(v);
      work += static_cast<double>(nb.size());
      if (static_cast<int>(nb.size()) <= cap_) {
        for (graph::NodeId u : nb) {
          collected.push_back(u);
          edges.emplace_back(v, u);
        }
      } else {
        for (auto idx : rng.sample_without_replacement(
                 static_cast<std::int64_t>(nb.size()), hub_fanout_)) {
          const graph::NodeId u = nb[static_cast<std::size_t>(idx)];
          collected.push_back(u);
          edges.emplace_back(v, u);
        }
      }
    }
    sampling::SampleScratch& sc = sampling::SampleScratch::local();
    const auto& ordered = sampling::detail::order_nodes(g, seeds, collected, sc);
    return sampling::detail::build_from_edges(g, seeds, ordered, edges, work,
                                              sc);
  }

  sampling::SamplerKind kind() const override {
    return sampling::SamplerKind::kNodeWise;  // closest category
  }
  std::vector<int> hop_list() const override { return {cap_}; }

 private:
  int cap_;
  int hub_fanout_;
};

/// Custom compute backend: delegates the actual math to the built-in
/// blocked backend (keeping the bit-identity contract for free) while
/// counting SpMM dispatches — the minimal shape of a real out-of-tree
/// backend, which would swap the delegation for its own kernels.
class CountingBackend final : public compute::ComputeBackend {
 public:
  const std::string& id() const override {
    static const std::string kId = "example-counting";
    return kId;
  }
  compute::BackendCapabilities capabilities() const override {
    return delegate().capabilities();
  }
  compute::DeviceAllocator& allocator() const override {
    return delegate().allocator();
  }
  void spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
            tensor::Tensor& y, const kernels::SpmmScales& scales,
            support::ThreadPool* pool) const override {
    dispatches.fetch_add(1, std::memory_order_relaxed);
    delegate().spmm(g, x, y, scales, pool);
  }
  using ComputeBackend::spmm;

  static std::atomic<std::uint64_t> dispatches;

 private:
  static const compute::ComputeBackend& delegate() {
    static const auto blocked =
        compute::BackendFactory::create(compute::kBlockedBackendId);
    return *blocked;
  }
};

std::atomic<std::uint64_t> CountingBackend::dispatches{0};

std::shared_ptr<compute::ComputeBackend> make_counting_backend() {
  return std::make_shared<CountingBackend>();
}

}  // namespace

int main() {
  // Register the custom backend; declared capabilities mirror the
  // blocked backend it delegates to.
  compute::BackendFactory::register_backend(
      "example-counting",
      compute::BackendFactory::declared_capabilities(
          compute::kBlockedBackendId),
      &make_counting_backend);
  // Route every aggregation in this scope (model forward/backward
  // included) through it.
  const compute::BackendScope backend_scope("example-counting");

  const graph::Dataset ds = graph::load_dataset("ogbn-arxiv");
  Rng rng(123);

  nn::ModelConfig mc;
  mc.kind = nn::ModelKind::kSage;
  mc.in_dim = static_cast<std::size_t>(ds.feature_dim);
  mc.hidden_dim = 64;
  mc.out_dim = static_cast<std::size_t>(ds.num_classes);
  mc.num_layers = 2;
  nn::GnnModel model(mc, rng);
  nn::Adam opt(model.parameters(), 0.01f);

  DegreeCappedSampler sampler(/*cap=*/12, /*hub_fanout=*/6);
  sampling::SeedBatcher batcher(ds.train_nodes, 512);

  tensor::Tensor x_full(static_cast<std::size_t>(ds.num_nodes()),
                        static_cast<std::size_t>(ds.feature_dim));
  std::copy(ds.features.begin(), ds.features.end(), x_full.data());

  std::printf("training ogbn-arxiv with a custom sampler plugged into the "
              "unified abstraction:\n");
  for (int epoch = 0; epoch < 4; ++epoch) {
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (const auto& seeds : batcher.epoch_batches(rng)) {
      const auto mb = sampler.sample(ds.graph, seeds, rng);
      tensor::Tensor x = tensor::gather_rows(x_full, mb.nodes);
      tensor::Tensor logits = model.forward(mb.subgraph, x, true, rng);
      std::vector<int> labels(mb.seed_local.size());
      for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = ds.labels[static_cast<std::size_t>(
            mb.nodes[static_cast<std::size_t>(mb.seed_local[i])])];
      }
      const auto loss = nn::softmax_cross_entropy(logits, mb.seed_local,
                                                  labels);
      opt.zero_grad();
      model.backward(loss.grad_logits);
      opt.step();
      loss_sum += loss.loss;
      ++batches;
    }
    // full-graph evaluation
    tensor::Tensor logits = model.forward(ds.graph, x_full, false, rng);
    std::vector<int> test_labels(ds.test_nodes.size());
    for (std::size_t i = 0; i < test_labels.size(); ++i) {
      test_labels[i] = ds.labels[static_cast<std::size_t>(ds.test_nodes[i])];
    }
    std::printf("  epoch %d: loss=%.4f  test-acc=%.2f%%\n", epoch + 1,
                loss_sum / static_cast<double>(batches),
                100.0 * nn::accuracy(logits, ds.test_nodes, test_labels));
  }
  std::printf("custom '%s' backend handled %llu SpMM dispatches "
              "(simd tier: %s)\n",
              compute::current_backend_id().c_str(),
              static_cast<unsigned long long>(
                  CountingBackend::dispatches.load()),
              compute::current_backend().capabilities().simd_tier.c_str());
  return 0;
}
