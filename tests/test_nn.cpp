// Tests for aggregation kernels, layers, loss, optimizers, and the model
// container (gradient checks live in test_gradcheck.cpp).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_builder.hpp"
#include "nn/aggregate.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optim.hpp"
#include "support/error.hpp"
#include "tensor/ops.hpp"

namespace gnav::nn {
namespace {

graph::CsrGraph path3() {
  // 0-1-2 path, symmetrized.
  return graph::build_undirected(3, {{0, 1}, {1, 2}});
}

tensor::Tensor eye3() {
  tensor::Tensor x(3, 3);
  for (std::size_t i = 0; i < 3; ++i) x.at(i, i) = 1.0f;
  return x;
}

TEST(Aggregate, MeanOverNeighbors) {
  const auto g = path3();
  const auto y = aggregate_mean(g, eye3());
  // node 0: mean of {x1} = e1 ; node 1: mean of {x0,x2}.
  EXPECT_FLOAT_EQ(y.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(y.at(1, 2), 0.5f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 0.0f);
}

TEST(Aggregate, MeanTransposeIsAdjoint) {
  // <A x, y> == <x, A^T y> for random x, y.
  Rng rng(3);
  const auto g = path3();
  const auto x = tensor::Tensor::uniform(3, 4, -1, 1, rng);
  const auto y = tensor::Tensor::uniform(3, 4, -1, 1, rng);
  const auto ax = aggregate_mean(g, x);
  const auto aty = aggregate_mean_transpose(g, y);
  double lhs = 0.0;
  double rhs = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    lhs += static_cast<double>(ax.data()[i]) * y.data()[i];
    rhs += static_cast<double>(x.data()[i]) * aty.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(Aggregate, GcnSelfAdjointAndIncludesSelfLoop) {
  Rng rng(4);
  const auto g = path3();
  const auto x = tensor::Tensor::uniform(3, 5, -1, 1, rng);
  const auto y = tensor::Tensor::uniform(3, 5, -1, 1, rng);
  const auto ax = aggregate_gcn(g, x);
  const auto ay = aggregate_gcn(g, y);
  double lhs = 0.0;
  double rhs = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    lhs += static_cast<double>(ax.data()[i]) * y.data()[i];
    rhs += static_cast<double>(x.data()[i]) * ay.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4);
  // isolated vertex keeps its own (normalized) features via the self loop
  graph::GraphBuilder b(1);
  const auto lone = b.build();
  tensor::Tensor xi(1, 2);
  xi.at(0, 0) = 2.0f;
  const auto yi = aggregate_gcn(lone, xi);
  EXPECT_FLOAT_EQ(yi.at(0, 0), 2.0f);  // 1/sqrt(1)*1/sqrt(1)*2
}

TEST(Aggregate, SumMatchesDegreeTimesMean) {
  Rng rng(5);
  const auto g = path3();
  const auto x = tensor::Tensor::uniform(3, 2, -1, 1, rng);
  const auto s = aggregate_sum(g, x);
  const auto m = aggregate_mean(g, x);
  for (graph::NodeId v = 0; v < 3; ++v) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(s.at(static_cast<std::size_t>(v), j),
                  m.at(static_cast<std::size_t>(v), j) *
                      static_cast<float>(g.degree(v)),
                  1e-5);
    }
  }
  EXPECT_GT(aggregation_flops(g, 8), 0.0);
}

TEST(Aggregate, ShapeMismatchThrows) {
  const auto g = path3();
  EXPECT_THROW(aggregate_mean(g, tensor::Tensor(2, 4)), Error);
}

TEST(Layers, OutputShapes) {
  Rng rng(6);
  const auto g = path3();
  const auto x = tensor::Tensor::uniform(3, 8, -1, 1, rng);
  GcnConv gcn(8, 4, rng);
  SageConv sage(8, 4, rng);
  GatConv gat(8, 4, rng);
  for (GraphConv* conv :
       std::initializer_list<GraphConv*>{&gcn, &sage, &gat}) {
    const auto h = conv->forward(g, x);
    EXPECT_EQ(h.rows(), 3u);
    EXPECT_EQ(h.cols(), 4u);
    EXPECT_EQ(conv->in_dim(), 8u);
    EXPECT_EQ(conv->out_dim(), 4u);
    EXPECT_GT(conv->forward_flops(3, 4), 0.0);
    EXPECT_FALSE(conv->parameters().empty());
  }
}

TEST(Layers, GatAttentionIsConvexCombination) {
  // With bias zero and identical features everywhere, GAT output equals
  // W x regardless of attention values (softmax weights sum to 1).
  Rng rng(7);
  const auto g = path3();
  tensor::Tensor x(3, 4, 0.5f);
  GatConv gat(4, 3, rng);
  const auto h = gat.forward(g, x);
  for (std::size_t v = 1; v < 3; ++v) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(h.at(v, j), h.at(0, j), 1e-5);
    }
  }
}

TEST(Loss, CrossEntropyKnownValues) {
  tensor::Tensor logits(2, 3);
  // row 0 uniform -> loss ln(3); row 1 peaked on the true class.
  logits.at(1, 2) = 100.0f;
  const LossResult res =
      softmax_cross_entropy(logits, {0, 1}, {0, 2});
  EXPECT_NEAR(res.loss, 0.5 * std::log(3.0), 1e-4);
  EXPECT_EQ(res.correct, 2u);  // row 0 argmax is class 0 by tie-break
  EXPECT_EQ(res.total, 2u);
  // gradient rows sum to 0 (softmax minus one-hot)
  for (std::size_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < 3; ++c) s += res.grad_logits.at(r, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, GradZeroOnUnselectedRows) {
  tensor::Tensor logits(3, 2);
  logits.at(0, 0) = 1.0f;
  const LossResult res = softmax_cross_entropy(logits, {1}, {0});
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_FLOAT_EQ(res.grad_logits.at(0, c), 0.0f);
    EXPECT_FLOAT_EQ(res.grad_logits.at(2, c), 0.0f);
  }
  EXPECT_THROW(softmax_cross_entropy(logits, {0}, {5}), Error);
  EXPECT_THROW(softmax_cross_entropy(logits, {}, {}), Error);
}

TEST(Loss, AccuracyCountsArgmax) {
  tensor::Tensor logits(2, 2);
  logits.at(0, 1) = 1.0f;
  logits.at(1, 0) = 1.0f;
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1}, {1, 1}), 0.5);
}

TEST(Optim, SgdStepMovesAgainstGradient) {
  Parameter p("w", tensor::Tensor::ones(1, 2));
  p.grad.at(0, 0) = 1.0f;
  p.grad.at(0, 1) = -2.0f;
  Sgd opt({&p}, 0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0, 0), 0.9f);
  EXPECT_FLOAT_EQ(p.value.at(0, 1), 1.2f);
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(p.grad.sum(), 0.0);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  // minimize (w - 3)^2 -> w = 3.
  Parameter p("w", tensor::Tensor::zeros(1, 1));
  Adam opt({&p}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    p.grad.at(0, 0) = 2.0f * (p.value.at(0, 0) - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value.at(0, 0), 3.0f, 1e-2);
}

TEST(Optim, WeightDecayShrinksWeights) {
  Parameter p("w", tensor::Tensor::ones(1, 1));
  Sgd opt({&p}, 0.1f, /*weight_decay=*/1.0f);
  opt.zero_grad();
  opt.step();  // gradient zero, decay only
  EXPECT_NEAR(p.value.at(0, 0), 0.9f, 1e-6);
}

TEST(Model, ForwardShapeAndParamCount) {
  Rng rng(8);
  ModelConfig mc;
  mc.kind = ModelKind::kSage;
  mc.in_dim = 8;
  mc.hidden_dim = 16;
  mc.out_dim = 5;
  mc.num_layers = 3;
  mc.dropout = 0.0f;
  GnnModel model(mc, rng);
  EXPECT_EQ(model.num_layers(), 3u);
  // SAGE params: 2*in*out + out per layer.
  const std::size_t expected = (2 * 8 * 16 + 16) + (2 * 16 * 16 + 16) +
                               (2 * 16 * 5 + 5);
  EXPECT_EQ(model.parameter_count(), expected);
  const auto g = path3();
  const auto x = tensor::Tensor::uniform(3, 8, -1, 1, rng);
  const auto out = model.forward(g, x, false, rng);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 5u);
  EXPECT_GT(model.forward_flops(3, 4), 0.0);
  EXPECT_GT(model.activation_floats(3), 0.0);
  EXPECT_DOUBLE_EQ(model.activation_edge_floats(10), 0.0);  // not GAT
}

TEST(Model, GatEdgeActivationsPositive) {
  Rng rng(9);
  ModelConfig mc;
  mc.kind = ModelKind::kGat;
  mc.in_dim = 4;
  mc.hidden_dim = 8;
  mc.out_dim = 3;
  mc.num_layers = 2;
  GnnModel model(mc, rng);
  EXPECT_GT(model.activation_edge_floats(10), 0.0);
}

TEST(Model, TrainingReducesLossOnToyTask) {
  // Two-community toy graph; labels = community; model should fit it.
  Rng rng(10);
  std::vector<graph::Edge> edges;
  for (graph::NodeId v = 0; v < 10; ++v) {
    for (graph::NodeId u = v + 1; u < 10; ++u) {
      const bool same = (v < 5) == (u < 5);
      if (same) edges.push_back({v, u});
    }
  }
  edges.push_back({0, 5});  // one bridge
  const auto g = graph::build_undirected(10, edges);
  tensor::Tensor x(10, 4);
  for (std::size_t v = 0; v < 10; ++v) {
    x.at(v, v < 5 ? 0 : 1) = 1.0f;
    x.at(v, 2) = static_cast<float>(rng.normal()) * 0.1f;
  }
  std::vector<std::int64_t> rows;
  std::vector<int> labels;
  for (std::int64_t v = 0; v < 10; ++v) {
    rows.push_back(v);
    labels.push_back(v < 5 ? 0 : 1);
  }
  ModelConfig mc;
  mc.kind = ModelKind::kGcn;
  mc.in_dim = 4;
  mc.hidden_dim = 8;
  mc.out_dim = 2;
  mc.num_layers = 2;
  mc.dropout = 0.0f;
  GnnModel model(mc, rng);
  Adam opt(model.parameters(), 0.05f);
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 60; ++step) {
    const auto logits = model.forward(g, x, true, rng);
    const auto loss = softmax_cross_entropy(logits, rows, labels);
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
    opt.zero_grad();
    model.backward(loss.grad_logits);
    opt.step();
  }
  EXPECT_LT(last_loss, 0.25 * first_loss);
  const auto logits = model.forward(g, x, false, rng);
  EXPECT_DOUBLE_EQ(accuracy(logits, rows, labels), 1.0);
}

TEST(Model, RejectsInvalidConfig) {
  Rng rng(11);
  ModelConfig mc;
  mc.num_layers = 0;
  EXPECT_THROW(GnnModel(mc, rng), Error);
  mc.num_layers = 1;
  mc.dropout = 1.0f;
  EXPECT_THROW(GnnModel(mc, rng), Error);
}

}  // namespace
}  // namespace gnav::nn
