// Cross-cutting property tests: parameterized sweeps asserting the
// monotonicity and conservation laws the paper's analytic model relies
// on, evaluated against the *real* runtime backend (not the estimator).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "compute/backend.hpp"
#include "graph/dataset.hpp"
#include "graph/graph_stats.hpp"
#include "hw/platform.hpp"
#include "nn/aggregate.hpp"
#include "runtime/backend.hpp"
#include "runtime/templates.hpp"
#include "sampling/batch_size_model.hpp"
#include "sampling/sampler_factory.hpp"
#include "support/error.hpp"

namespace gnav {
namespace {

/// Shared dataset/backend so the sweeps stay cheap.
class PropertyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::SyntheticSpec spec;
    spec.name = "property";
    spec.num_nodes = 1200;
    spec.num_classes = 6;
    spec.feature_dim = 24;
    spec.min_degree = 3;
    spec.max_degree = 120;
    dataset_ = new graph::Dataset(graph::make_synthetic_dataset(spec, 77));
    backend_ = new runtime::RuntimeBackend(*dataset_,
                                           hw::make_profile("rtx4090"));
  }
  static void TearDownTestSuite() {
    delete backend_;
    delete dataset_;
  }
  static runtime::TrainReport run(runtime::TrainConfig config,
                                  int epochs = 1) {
    runtime::RunOptions opts;
    opts.epochs = epochs;
    opts.evaluate_every_epoch = false;
    return backend_->run(config, opts);
  }
  static graph::Dataset* dataset_;
  static runtime::RuntimeBackend* backend_;
};

graph::Dataset* PropertyFixture::dataset_ = nullptr;
runtime::RuntimeBackend* PropertyFixture::backend_ = nullptr;

// --- Eq. 12: measured batch size is monotone in batch size & fanout ----

class BatchSizeMonotonicity
    : public PropertyFixture,
      public ::testing::WithParamInterface<int> {};

TEST_P(BatchSizeMonotonicity, MeasuredBatchGrowsWithSeedCount) {
  const int fanout = GetParam();
  double prev = 0.0;
  for (std::size_t batch : {64u, 128u, 256u, 512u}) {
    runtime::TrainConfig c = runtime::template_pyg();
    c.batch_size = batch;
    c.hop_list = {fanout, fanout};
    const auto r = run(c);
    EXPECT_GT(r.avg_batch_nodes, prev)
        << "fanout " << fanout << " batch " << batch;
    prev = r.avg_batch_nodes;
    // Eq. 12 analytic expectation brackets the measurement within 2.5x
    // both ways (the learned penalty closes the rest).
    const auto profile = graph::profile_graph(dataset_->graph);
    const double analytic = sampling::analytic_batch_size(
        batch, c.hop_list, profile, 0.82);
    EXPECT_GT(analytic, r.avg_batch_nodes / 2.5);
    EXPECT_LT(analytic, r.avg_batch_nodes * 2.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BatchSizeMonotonicity,
                         ::testing::Values(3, 8, 15));

// --- Cache-ratio sweep: hit rate and memory monotone, time antitone ----

class CacheRatioSweep
    : public PropertyFixture,
      public ::testing::WithParamInterface<cache::CachePolicy> {};

TEST_P(CacheRatioSweep, HitUpTimeDownMemoryUp) {
  double prev_hit = -1.0;
  double prev_mem = -1.0;
  double prev_time = 1e18;
  for (double ratio : {0.05, 0.2, 0.5}) {
    runtime::TrainConfig c = runtime::template_pyg();
    c.batch_size = 256;
    c.cache_ratio = ratio;
    c.cache_policy = GetParam();
    const auto r = run(c, 2);
    EXPECT_GT(r.cache_hit_rate, prev_hit) << "ratio " << ratio;
    // On this 1x-scale fixture the growing cache and the shrinking miss
    // staging buffer can cancel to rounding, so memory is non-strict
    // (Fig. 1a demonstrates the strict version at real scale).
    EXPECT_GE(r.peak_memory_gb, prev_mem) << "ratio " << ratio;
    EXPECT_LT(r.epoch_time_s, prev_time) << "ratio " << ratio;
    prev_hit = r.cache_hit_rate;
    prev_mem = r.peak_memory_gb;
    prev_time = r.epoch_time_s;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, CacheRatioSweep,
                         ::testing::Values(cache::CachePolicy::kStatic,
                                           cache::CachePolicy::kLru,
                                           cache::CachePolicy::kWeightedDegree),
                         [](const auto& info) {
                           return cache::to_string(info.param);
                         });

// --- Conservation: epoch time bounded by phases; wall between bounds ---

class PhaseConservation
    : public PropertyFixture,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(PhaseConservation, OverlappedTimeBetweenMaxPhaseAndSum) {
  runtime::TrainConfig c = runtime::template_by_name(GetParam());
  c.batch_size = 256;
  const auto r = run(c);
  const auto& ph = r.epoch_phases;
  const double host = ph.sample_s + ph.transfer_s;
  const double device = ph.replace_s + ph.compute_s;
  // Eq. 4: per-iteration max() accumulates to at least the larger
  // pipeline and at most the sum of both.
  EXPECT_GE(r.epoch_time_s, std::max(host, device) * 0.999);
  EXPECT_LE(r.epoch_time_s, (host + device) * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Templates, PhaseConservation,
                         ::testing::Values("pyg", "pagraph-full",
                                           "pagraph-low", "2pgraph",
                                           "graphsaint", "fastgcn"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

// --- Bias sweep: higher bias -> higher hit rate, lower transfer --------

TEST_F(PropertyFixture, BiasRateMonotonicallyImprovesHitRate) {
  double prev_hit = -1.0;
  for (double bias : {0.0, 0.3, 0.6, 0.9}) {
    runtime::TrainConfig c = runtime::template_pyg();
    c.batch_size = 256;
    c.cache_ratio = 0.25;
    c.cache_policy = cache::CachePolicy::kStatic;
    c.bias_rate = bias;
    const auto r = run(c, 2);
    EXPECT_GE(r.cache_hit_rate, prev_hit) << "bias " << bias;
    prev_hit = r.cache_hit_rate;
  }
}

// --- Hidden-dim sweep: compute time and model memory strictly grow -----

TEST_F(PropertyFixture, HiddenDimGrowsComputeAndModelMemory) {
  double prev_compute = 0.0;
  double prev_model_mem = 0.0;
  for (std::size_t hidden : {16u, 64u, 256u}) {
    runtime::TrainConfig c = runtime::template_pyg();
    c.batch_size = 256;
    c.hidden_dim = hidden;
    const auto r = run(c);
    EXPECT_GT(r.epoch_phases.compute_s, prev_compute);
    EXPECT_GT(r.mem_model_gb, prev_model_mem);
    prev_compute = r.epoch_phases.compute_s;
    prev_model_mem = r.mem_model_gb;
  }
}

// --- Aggregation conservation law, for every registered backend --------

class AggregationConservation
    : public PropertyFixture,
      public ::testing::WithParamInterface<std::string> {};

TEST_P(AggregationConservation, SumAggregationConservesDegreeWeightedMass) {
  // On a symmetric graph, sum aggregation only routes feature mass along
  // edges: column j of the output must total sum_u deg(u) * x[u][j]
  // (every row x[u] is counted once per incident edge). This holds for
  // every registered compute backend alike — a cheap global check that
  // tiling/partitioning neither drops nor duplicates edges.
  const graph::CsrGraph& g = dataset_->graph;
  Rng rng(123);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const std::size_t dim = 12;
  const auto x = tensor::Tensor::uniform(n, dim, -1, 1, rng);
  compute::BackendScope scope(GetParam());
  const auto y = nn::aggregate_sum(g, x);
  for (std::size_t j = 0; j < dim; ++j) {
    double aggregated = 0.0;
    double degree_weighted = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      aggregated += y.at(v, j);
      degree_weighted +=
          static_cast<double>(g.degree(static_cast<graph::NodeId>(v))) *
          x.at(v, j);
    }
    EXPECT_NEAR(aggregated, degree_weighted,
                1e-4 * std::max(1.0, std::abs(degree_weighted)))
        << "column " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, AggregationConservation,
    ::testing::ValuesIn(compute::BackendFactory::registered_ids()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Determinism across the whole backend for every sampler kind -------

class BackendDeterminism
    : public PropertyFixture,
      public ::testing::WithParamInterface<sampling::SamplerKind> {};

TEST_P(BackendDeterminism, IdenticalSeedsIdenticalReports) {
  runtime::TrainConfig c = runtime::template_pyg();
  c.sampler = GetParam();
  if (GetParam() == sampling::SamplerKind::kCluster) {
    c.hop_list = {-1};
  } else if (GetParam() == sampling::SamplerKind::kSaintWalk) {
    c.hop_list = {1, 1, 1};
  } else {
    c.hop_list = {5, 5};
  }
  c.batch_size = 256;
  runtime::RunOptions opts;
  opts.epochs = 1;
  opts.seed = 99;
  const auto a = backend_->run(c, opts);
  const auto b = backend_->run(c, opts);
  EXPECT_DOUBLE_EQ(a.epoch_time_s, b.epoch_time_s);
  EXPECT_DOUBLE_EQ(a.peak_memory_gb, b.peak_memory_gb);
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_DOUBLE_EQ(a.avg_batch_nodes, b.avg_batch_nodes);
}

INSTANTIATE_TEST_SUITE_P(Samplers, BackendDeterminism,
                         ::testing::Values(sampling::SamplerKind::kNodeWise,
                                           sampling::SamplerKind::kLayerWise,
                                           sampling::SamplerKind::kSaintWalk,
                                           sampling::SamplerKind::kCluster),
                         [](const auto& info) {
                           return sampling::to_string(info.param);
                         });

}  // namespace
}  // namespace gnav
