// Pipelined epoch executor — the real (wall-clock) counterpart of the
// cost model's Eq. 4. The synchronous runtime executes Algo. 1 strictly
// in sequence; this subsystem runs each epoch as a staged
// producer/consumer pipeline over bounded StagedQueues:
//
//   [sampler worker xN] --> sampled queue --> [transfer/cache stage]
//        --> prepared queue --> [compute stage, calling thread]
//
//   - N sampler workers draw mini-batches concurrently. Batch i always
//     draws from Rng(task_seed(epoch_seed, i)) (the pool's determinism
//     contract), so the mini-batch stream is independent of worker count
//     and scheduling order.
//   - The transfer stage reorders out-of-order arrivals and applies
//     device-cache admissions, cost-model accounting, and feature
//     staging in STRICT batch order — the cache hit/miss sequence is
//     bit-identical to the synchronous path.
//   - The compute stage (the caller's thread) trains on batch i while
//     batches i+1..i+depth are in flight; optimizer steps and the
//     dropout RNG stream stay serialized by batch index.
//
// A TicketGate bounds the total number of claimed-but-unconsumed batch
// indices to the prefetch depth: workers claim consecutive tickets, and a
// ticket is released only when the transfer stage consumed that batch in
// order. Claims are consecutive and consumption is in-order, so the
// in-flight window is always {next_consumed .. next_consumed+depth-1} —
// the reorder ring needs exactly `depth` slots and the index the transfer
// stage waits for is always in flight (no deadlock).
//
// Cache-aware biased sampling couples batch i's sampling to batch i-1's
// cache update through the residency bitmap, so its sample+transfer
// stages cannot parallelize; `chain_sample_and_prepare` collapses them
// into one producer thread (sample(i) observes exactly the post-update
// residency of batch i-1, as in the synchronous path) that still
// overlaps the compute stage.
//
// Determinism contract: only wall-clock observables (stage busy seconds,
// stall counts, queue occupancy) depend on thread count and prefetch
// depth. Everything data-bearing — batches, cache state sequence, loss
// trajectory, profiler phase sums — is bit-identical to the synchronous
// executor because every side-effecting callback runs in strict batch
// order on a single stage.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/staged_queue.hpp"
#include "support/thread_safety.hpp"

namespace gnav::runtime {

enum class PipelineMode { kSync, kAsync };

std::string to_string(PipelineMode mode);
/// Throws gnav::Error on anything but "sync" / "async".
PipelineMode pipeline_mode_from_string(const std::string& s);

struct PipelineConfig {
  PipelineMode mode = PipelineMode::kSync;
  /// Bound on in-flight mini-batches (claimed but not yet consumed by the
  /// transfer stage) and on each inter-stage queue.
  std::size_t prefetch_depth = 4;
  /// Sampler worker threads; 0 resolves to default_thread_count(). The
  /// executor additionally clamps to min(prefetch_depth, num_batches).
  std::size_t sampler_workers = 0;
};

/// Resolves the process-wide default from the environment:
///   GNAV_PIPELINE         sync | async            (default sync)
///   GNAV_PIPELINE_DEPTH   prefetch depth >= 1     (default 4)
///   GNAV_PIPELINE_WORKERS sampler workers >= 0;
///                         0 = auto (default_thread_count())
/// Invalid values log one warning and fall back to the default instead of
/// silently misconfiguring the executor.
PipelineConfig default_pipeline_config();

/// Measured (real wall-clock, NOT simulated) execution profile of one
/// epoch. Busy seconds are summed over the calls each stage made; for
/// the synchronous executor "sample busy" is the time the caller spent
/// blocked waiting on mini-batch construction.
struct PipelineEpochStats {
  std::uint64_t batches = 0;
  std::size_t sampler_workers = 0;
  std::size_t prefetch_depth = 0;
  /// Queue-full waits across both hand-off queues (backpressure: the
  /// downstream stage was the bottleneck).
  std::uint64_t push_stalls = 0;
  /// Queue-empty waits across both hand-off queues (starvation: the
  /// upstream stage was the bottleneck).
  std::uint64_t pop_stalls = 0;
  /// Mean backlog of the compute-facing (prepared) queue, sampled before
  /// every push (the just-pushed item never counts) — near depth-1 means
  /// compute-bound (always full), 0 means compute drained every batch
  /// immediately (sample/transfer-bound).
  double mean_prepared_occupancy = 0.0;

  double sample_busy_s = 0.0;
  double transfer_busy_s = 0.0;
  double compute_busy_s = 0.0;
  double wall_s = 0.0;

  /// What a strictly serial execution of the same stage work would cost.
  double sequential_s() const {
    return sample_busy_s + transfer_busy_s + compute_busy_s;
  }
  /// Measured pipeline speedup: serial stage work over actual wall time.
  double measured_speedup() const {
    return wall_s > 0.0 ? sequential_s() / wall_s : 1.0;
  }
  /// Fraction of the theoretically hideable time that was actually
  /// hidden: 1 when wall == bottleneck stage (perfect overlap), 0 when
  /// wall == sum of stages (fully serial).
  double overlap_efficiency() const;

  /// Accumulate (epoch totals -> run totals). Counters and busy seconds
  /// sum; mean occupancy stays a mean over the accumulated epochs.
  void accumulate(const PipelineEpochStats& e);

 private:
  std::uint64_t occupancy_epochs_ = 0;
};

namespace detail {

/// Bounded dispenser of consecutive batch indices: acquire() hands out
/// 0,1,2,... but blocks while `depth` tickets are claimed-and-unreleased;
/// release() marks the next in-order batch consumed. abort() wakes every
/// waiter and makes further acquires fail (error shutdown).
class TicketGate {
 public:
  TicketGate(std::size_t num_tickets, std::size_t depth);

  std::optional<std::size_t> acquire() GNAV_EXCLUDES(mutex_);
  void release() GNAV_EXCLUDES(mutex_);
  void abort() GNAV_EXCLUDES(mutex_);

 private:
  support::Mutex mutex_;
  std::condition_variable cv_;
  const std::size_t num_tickets_;
  const std::size_t depth_;
  std::size_t next_ GNAV_GUARDED_BY(mutex_) = 0;
  std::size_t released_ GNAV_GUARDED_BY(mutex_) = 0;
  bool aborted_ GNAV_GUARDED_BY(mutex_) = false;
};

using Clock = std::chrono::steady_clock;

inline double seconds_since(Clock::time_point t0) {
  // gnav-lint(wall-clock): profiler wall — measured stage seconds are
  // wall-clock observables by definition, never data-bearing state.
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// First-error-wins collector; fire() also runs the caller's shutdown
/// hook exactly once so queues close and stages unwind.
class ErrorLatch {
 public:
  template <typename Shutdown>
  void fire(std::exception_ptr error, Shutdown&& shutdown)
      GNAV_EXCLUDES(mutex_) {
    bool run_shutdown = false;
    {
      const support::MutexLock lock(mutex_);
      if (!error_) {
        error_ = std::move(error);
        run_shutdown = true;
      }
    }
    if (run_shutdown) shutdown();
  }

  void rethrow_if_set() GNAV_EXCLUDES(mutex_) {
    const support::MutexLock lock(mutex_);
    if (error_) std::rethrow_exception(error_);
  }

 private:
  support::Mutex mutex_;
  std::exception_ptr error_ GNAV_GUARDED_BY(mutex_);
};

/// Publishes one epoch's measured stats to the obs metrics registry
/// (stall counters, occupancy histogram, wall/overlap gauges). No-op
/// cost when metrics are disabled beyond a relaxed load per instrument.
void publish_epoch_metrics(const PipelineEpochStats& stats);

}  // namespace detail

/// Runs one epoch of `num_batches` mini-batches as an asynchronous
/// pipeline and returns its measured stats.
///
///   sample:  (std::size_t i) -> Sampled.   Thread-safe; called from
///            dedicated worker threads in arbitrary index order (must
///            seed per index, never from shared state).
///   prepare: (std::size_t i, Sampled&&) -> Prepared.  Called in strict
///            batch order from one transfer thread (cache updates,
///            profiler accounting, feature staging).
///   consume: (std::size_t i, Prepared&&) -> void.  Called in strict
///            batch order on the calling thread (train step).
///
/// With `chain_sample_and_prepare` the sample and prepare callbacks run
/// back-to-back on one producer thread (required when sampling batch i
/// reads state written by prepare(i-1), e.g. cache-aware bias).
/// Exceptions from any stage shut the pipeline down and rethrow here.
template <typename Sampled, typename Prepared, typename SampleFn,
          typename PrepareFn, typename ConsumeFn>
PipelineEpochStats run_pipelined_epoch(std::size_t num_batches,
                                       const PipelineConfig& config,
                                       bool chain_sample_and_prepare,
                                       SampleFn&& sample, PrepareFn&& prepare,
                                       ConsumeFn&& consume) {
  using namespace detail;
  struct IndexedSampled {
    std::size_t index;
    Sampled value;
  };
  struct IndexedPrepared {
    std::size_t index;
    Prepared value;
  };

  PipelineEpochStats stats;
  stats.batches = num_batches;
  const std::size_t depth = std::max<std::size_t>(1, config.prefetch_depth);
  stats.prefetch_depth = depth;
  if (num_batches == 0) return stats;

  support::StagedQueue<IndexedSampled> sampled(depth);
  support::StagedQueue<IndexedPrepared> prepared(depth);
  TicketGate gate(num_batches, depth);
  ErrorLatch latch;
  auto shutdown = [&] {
    gate.abort();
    sampled.close();
    prepared.close();
  };

  std::mutex busy_mutex;  // folds per-thread busy timers into `stats`
  std::vector<std::thread> threads;
  const auto epoch_start = Clock::now();  // gnav-lint(wall-clock): profiler wall

  if (chain_sample_and_prepare) {
    // Two stages: one producer runs the serial sample->prepare chain (so
    // sampling batch i observes prepare(i-1)'s side effects), compute
    // overlaps on the caller thread.
    stats.sampler_workers = 1;
    threads.emplace_back([&] {
      // Self-execute nested pool work: the global pool's workers may be
      // blocked inside nested runs waiting on this very pipeline.
      const support::InlineExecutionScope inline_scope;
      obs::set_thread_name("gnav-stage-producer");
      try {
        double sample_busy = 0.0;
        double transfer_busy = 0.0;
        for (std::size_t i = 0; i < num_batches; ++i) {
          auto t0 = Clock::now();  // gnav-lint(wall-clock): profiler wall
          Sampled s = sample(i);
          sample_busy += seconds_since(t0);
          t0 = Clock::now();  // gnav-lint(wall-clock): profiler wall
          Prepared p = prepare(i, std::move(s));
          transfer_busy += seconds_since(t0);
          if (!prepared.push({i, std::move(p)})) break;  // shut down
        }
        prepared.close();
        std::lock_guard<std::mutex> lock(busy_mutex);
        stats.sample_busy_s += sample_busy;
        stats.transfer_busy_s += transfer_busy;
      } catch (...) {
        latch.fire(std::current_exception(), shutdown);
      }
    });
  } else {
    // Three stages: N sampler workers feed the transfer thread through
    // the bounded sampled queue; the gate caps total in-flight batches.
    const std::size_t workers = std::min(
        {config.sampler_workers == 0 ? support::default_thread_count()
                                     : config.sampler_workers,
         depth, num_batches});
    stats.sampler_workers = std::max<std::size_t>(1, workers);
    for (std::size_t w = 0; w < stats.sampler_workers; ++w) {
      threads.emplace_back([&, w] {
        const support::InlineExecutionScope inline_scope;
        obs::set_thread_name("gnav-stage-sample-" + std::to_string(w));
        try {
          double sample_busy = 0.0;
          while (const auto ticket = gate.acquire()) {
            const auto t0 = Clock::now();  // gnav-lint(wall-clock): profiler wall
            Sampled s = sample(*ticket);
            sample_busy += seconds_since(t0);
            if (!sampled.push({*ticket, std::move(s)})) break;
          }
          std::lock_guard<std::mutex> lock(busy_mutex);
          stats.sample_busy_s += sample_busy;
        } catch (...) {
          latch.fire(std::current_exception(), shutdown);
        }
      });
    }
    threads.emplace_back([&] {
      const support::InlineExecutionScope inline_scope;
      obs::set_thread_name("gnav-stage-transfer");
      try {
        // Reorder ring: in-flight indices form a consecutive window of at
        // most `depth` (TicketGate invariant), so residues mod depth are
        // unique and `depth` slots suffice.
        std::vector<std::optional<IndexedSampled>> ring(depth);
        double transfer_busy = 0.0;
        std::size_t next = 0;
        while (next < num_batches) {
          auto item = sampled.pop();
          if (!item) break;  // shut down
          auto& slot = ring[item->index % depth];
          GNAV_CHECK(!slot.has_value(),
                     "pipeline reorder ring slot collision");
          slot = std::move(*item);
          while (next < num_batches && ring[next % depth].has_value()) {
            GNAV_CHECK(ring[next % depth]->index == next,
                       "pipeline reorder ring out of window");
            const auto t0 = Clock::now();  // gnav-lint(wall-clock): profiler wall
            Prepared p = prepare(next, std::move(ring[next % depth]->value));
            transfer_busy += seconds_since(t0);
            ring[next % depth].reset();
            if (!prepared.push({next, std::move(p)})) {
              next = num_batches;  // shut down
              break;
            }
            gate.release();
            ++next;
          }
        }
        prepared.close();
        std::lock_guard<std::mutex> lock(busy_mutex);
        stats.transfer_busy_s += transfer_busy;
      } catch (...) {
        latch.fire(std::current_exception(), shutdown);
      }
    });
  }

  // Compute stage on the calling thread.
  std::size_t consumed = 0;
  try {
    std::size_t expect = 0;
    while (auto item = prepared.pop()) {
      GNAV_CHECK(item->index == expect,
                 "pipeline delivered batches out of order");
      const auto t0 = Clock::now();  // gnav-lint(wall-clock): profiler wall
      consume(item->index, std::move(item->value));
      stats.compute_busy_s += seconds_since(t0);
      ++expect;
      ++consumed;
    }
  } catch (...) {
    latch.fire(std::current_exception(), shutdown);
  }

  for (auto& t : threads) t.join();
  latch.rethrow_if_set();
  GNAV_CHECK(consumed == num_batches,
             "pipeline finished without consuming every batch");

  const auto sq = sampled.stats();
  const auto pq = prepared.stats();
  stats.push_stalls = sq.push_stalls + pq.push_stalls;
  stats.pop_stalls = sq.pop_stalls + pq.pop_stalls;
  stats.mean_prepared_occupancy = pq.mean_occupancy();
  stats.wall_s = seconds_since(epoch_start);
  detail::publish_epoch_metrics(stats);
  return stats;
}

}  // namespace gnav::runtime
