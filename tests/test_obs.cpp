// Tests for the telemetry layer (gnav::obs): the metrics registry
// (instrument semantics, find-or-create identity, Prometheus text,
// deterministic exposition order), scoped trace spans (per-thread
// buffers, nesting across pool workers and pipeline stage threads,
// Chrome trace-event JSON round trip), and the layer's two hard
// contracts — TrainReports are bit-identical with telemetry on vs off,
// and the data-bearing metric families are bit-identical across pool
// sizes {1, 2, 8}.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/backend.hpp"
#include "runtime/templates.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace gnav {
namespace {

using obs::MetricsRegistry;

/// RAII telemetry toggle so a failing assertion can't leave tracing or
/// metrics enabled for the rest of the binary.
struct TelemetryOn {
  TelemetryOn() {
    obs::reset_trace();
    obs::set_tracing_enabled(true);
    obs::set_metrics_enabled(true);
  }
  ~TelemetryOn() {
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);
  }
};

// ------------------------------------------------------ metrics registry

TEST(ObsMetrics, CounterGaugeHistogramSemantics) {
  const TelemetryOn on;
  auto& reg = MetricsRegistry::global();

  obs::Counter& c = reg.counter("test_obs_events_total", {}, "help");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Find-or-create returns the same instrument.
  EXPECT_EQ(&c, &reg.counter("test_obs_events_total", {}, "help"));

  obs::Gauge& g = reg.gauge("test_obs_depth", {}, "help");
  g.reset();
  g.set(3.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  obs::Histogram& h =
      reg.histogram("test_obs_latency", {}, "help", {1.0, 2.0, 4.0});
  h.reset();
  for (const double v : {0.5, 1.5, 3.0, 100.0}) h.observe(v);
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // <= 1
  EXPECT_EQ(h.bucket_count(1), 1u);  // (1, 2]
  EXPECT_EQ(h.bucket_count(2), 1u);  // (2, 4]
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.0);
}

TEST(ObsMetrics, DisabledUpdatesAreNoOps) {
  auto& reg = MetricsRegistry::global();
  obs::Counter& c = reg.counter("test_obs_disabled_total", {}, "help");
  obs::Gauge& g = reg.gauge("test_obs_disabled_gauge", {}, "help");
  {
    const TelemetryOn on;
    c.reset();
    g.reset();
  }
  ASSERT_FALSE(obs::metrics_enabled());
  c.add(7);
  g.set(7.0);
  g.add(7.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsMetrics, KindMismatchOnSameSeriesThrows) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test_obs_kind_clash", {{"a", "b"}}, "help");
  EXPECT_THROW(reg.gauge("test_obs_kind_clash", {{"a", "b"}}, "help"), Error);
  // Same family with different labels is a different series — any kind.
  EXPECT_NO_THROW(reg.gauge("test_obs_kind_clash2", {{"a", "c"}}, "help"));
}

TEST(ObsMetrics, PrometheusTextRegistrationOrderAndEscaping) {
  const TelemetryOn on;
  auto& reg = MetricsRegistry::global();
  obs::Counter& c1 =
      reg.counter("test_obs_prom_total", {{"kind", "fir\"st\n"}}, "a help");
  obs::Counter& c2 =
      reg.counter("test_obs_prom_total", {{"kind", "second"}}, "a help");
  c1.reset();
  c2.reset();
  c1.add(3);
  c2.add(5);

  const std::string text = reg.prometheus_text();
  const auto help_pos = text.find("# HELP test_obs_prom_total a help");
  const auto type_pos = text.find("# TYPE test_obs_prom_total counter");
  const auto s1 =
      text.find("test_obs_prom_total{kind=\"fir\\\"st\\n\"} 3");
  const auto s2 = text.find("test_obs_prom_total{kind=\"second\"} 5");
  ASSERT_NE(help_pos, std::string::npos) << text;
  ASSERT_NE(type_pos, std::string::npos) << text;
  ASSERT_NE(s1, std::string::npos) << text;
  ASSERT_NE(s2, std::string::npos) << text;
  // HELP/TYPE precede the first series; first-registered series first.
  EXPECT_LT(help_pos, s1);
  EXPECT_LT(type_pos, s1);
  EXPECT_LT(s1, s2);
  // One HELP per family, not one per series.
  EXPECT_EQ(text.find("# HELP test_obs_prom_total", help_pos + 1),
            std::string::npos);

  // snapshot() lists the same series in the same order.
  const auto samples = MetricsRegistry::global().snapshot();
  std::vector<std::string> names;
  for (const auto& s : samples) names.push_back(s.name);
  const auto i1 = std::find(names.begin(), names.end(),
                            "test_obs_prom_total{kind=\"fir\\\"st\\n\"}");
  const auto i2 = std::find(names.begin(), names.end(),
                            "test_obs_prom_total{kind=\"second\"}");
  ASSERT_NE(i1, names.end());
  ASSERT_NE(i2, names.end());
  EXPECT_LT(i1 - names.begin(), i2 - names.begin());
}

TEST(ObsMetrics, HistogramPrometheusBucketsAreCumulative) {
  const TelemetryOn on;
  auto& reg = MetricsRegistry::global();
  obs::Histogram& h =
      reg.histogram("test_obs_prom_hist", {}, "help", {1.0, 2.0});
  h.reset();
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE test_obs_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le=\"2\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_obs_prom_hist_sum 11"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_obs_prom_hist_count 3"), std::string::npos)
      << text;
}

// ------------------------------------------------------- trace plumbing

/// Minimal structural JSON check: balanced {} and [] outside strings,
/// valid escape handling, single top-level object. (The TraceJsonStrict
/// ctest additionally json.load()s a real export via Python.)
void expect_balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool seen_top = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
      seen_top = true;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
  EXPECT_TRUE(seen_top);
}

struct ParsedEvent {
  int tid = -1;
  std::string cat;
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
};

std::string extract_str(const std::string& line, const std::string& key) {
  const auto k = line.find("\"" + key + "\":\"");
  if (k == std::string::npos) return "";
  const auto start = k + key.size() + 4;
  const auto end = line.find('"', start);  // test names carry no escapes
  return line.substr(start, end - start);
}

double extract_num(const std::string& line, const std::string& key) {
  const auto k = line.find("\"" + key + "\":");
  if (k == std::string::npos) return -1.0;
  return std::strtod(line.c_str() + k + key.size() + 3, nullptr);
}

/// The writer emits one event per line; split and parse the X events
/// plus the tid -> thread-name metadata.
void parse_trace(const std::string& json, std::vector<ParsedEvent>& events,
                 std::map<int, std::string>& thread_names) {
  std::size_t pos = 0;
  while (pos < json.size()) {
    auto eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    const std::string line = json.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find("\"ph\":\"M\"") != std::string::npos &&
        line.find("thread_name") != std::string::npos) {
      // args.name is the LAST "name": on the metadata line.
      const auto k = line.rfind("\"name\":\"");
      const auto start = k + 8;
      thread_names[static_cast<int>(extract_num(line, "tid"))] =
          line.substr(start, line.find('"', start) - start);
    } else if (line.find("\"ph\":\"X\"") != std::string::npos) {
      ParsedEvent ev;
      ev.tid = static_cast<int>(extract_num(line, "tid"));
      ev.cat = extract_str(line, "cat");
      ev.name = extract_str(line, "name");
      ev.ts = extract_num(line, "ts");
      ev.dur = extract_num(line, "dur");
      events.push_back(ev);
    }
  }
}

bool has_nested_pair_on_one_tid(const std::vector<ParsedEvent>& events) {
  for (const auto& outer : events) {
    for (const auto& inner : events) {
      if (&outer == &inner || outer.tid != inner.tid) continue;
      if (outer.ts <= inner.ts &&
          inner.ts + inner.dur <= outer.ts + outer.dur &&
          outer.dur > inner.dur) {
        return true;
      }
    }
  }
  return false;
}

TEST(ObsTrace, DisabledSpanRecordsNothing) {
  obs::reset_trace();
  ASSERT_FALSE(obs::tracing_enabled());
  {
    GNAV_TRACE_SPAN("test", "ghost");
  }
  EXPECT_EQ(obs::trace_recorded_spans(), 0u);
}

TEST(ObsTrace, NestingAcrossParallelForWorkers) {
  const TelemetryOn on;
  support::ThreadPool pool(4);
  pool.parallel_for(0, 64, [](std::size_t i) {
    GNAV_TRACE_SPAN("test", "outer-" + std::to_string(i));
    GNAV_TRACE_SPAN("test", "inner-" + std::to_string(i));
  });
  obs::set_tracing_enabled(false);

  const std::string json = obs::chrome_trace_json();
  expect_balanced_json(json);
  std::vector<ParsedEvent> events;
  std::map<int, std::string> thread_names;
  parse_trace(json, events, thread_names);

  // 64 outer + 64 inner spans, all on named pool-worker tids.
  std::size_t test_spans = 0;
  bool pool_thread_named = false;
  for (const auto& ev : events) {
    if (ev.cat != "test") continue;
    ++test_spans;
    const auto it = thread_names.find(ev.tid);
    ASSERT_NE(it, thread_names.end());
    if (it->second.rfind("gnav-pool-", 0) == 0) pool_thread_named = true;
  }
  EXPECT_EQ(test_spans, 128u);
  EXPECT_TRUE(pool_thread_named);
  EXPECT_TRUE(has_nested_pair_on_one_tid(events));
  EXPECT_EQ(obs::trace_dropped_spans(), 0u);
}

TEST(ObsTrace, FullBufferDropsAndCounts) {
  obs::reset_trace();
  obs::set_trace_buffer_capacity(4);
  obs::set_tracing_enabled(true);
  // A fresh pool worker registers the 4-span buffer (submit, not
  // parallel_for: a single-index parallel_for runs inline on the main
  // thread, whose buffer has the default capacity); 6 spans -> 2 drops.
  support::ThreadPool pool(1);
  pool.submit([] {
        for (int i = 0; i < 6; ++i) {
          GNAV_TRACE_SPAN("test", "drop");
        }
      })
      .get();
  obs::set_tracing_enabled(false);
  obs::set_trace_buffer_capacity(8192);
  EXPECT_EQ(obs::trace_dropped_spans(), 2u);
}

// ------------------------------------- telemetry vs the training runtime

graph::Dataset small_dataset() {
  graph::SyntheticSpec spec;
  spec.name = "obs-unit";
  spec.num_nodes = 600;
  spec.num_classes = 4;
  spec.feature_dim = 12;
  spec.min_degree = 3;
  spec.max_degree = 60;
  return graph::make_synthetic_dataset(spec, 5);
}

/// Every deterministic (non-wall-clock) field must match EXACTLY — the
/// contract test_pipeline.cpp pins for sync-vs-async, applied here to
/// telemetry-on-vs-off.
void expect_reports_bit_identical(const runtime::TrainReport& off,
                                  const runtime::TrainReport& on) {
  EXPECT_EQ(off.epoch_loss, on.epoch_loss);
  EXPECT_EQ(off.epoch_times_s, on.epoch_times_s);
  EXPECT_EQ(off.epoch_train_accuracy, on.epoch_train_accuracy);
  EXPECT_EQ(off.epoch_val_accuracy, on.epoch_val_accuracy);
  EXPECT_EQ(off.final_train_accuracy, on.final_train_accuracy);
  EXPECT_EQ(off.val_accuracy, on.val_accuracy);
  EXPECT_EQ(off.test_accuracy, on.test_accuracy);
  EXPECT_EQ(off.epoch_time_s, on.epoch_time_s);
  EXPECT_EQ(off.peak_memory_gb, on.peak_memory_gb);
  EXPECT_EQ(off.mem_model_gb, on.mem_model_gb);
  EXPECT_EQ(off.mem_cache_gb, on.mem_cache_gb);
  EXPECT_EQ(off.mem_runtime_gb, on.mem_runtime_gb);
  EXPECT_EQ(off.cache_hit_rate, on.cache_hit_rate);
  EXPECT_EQ(off.avg_batch_nodes, on.avg_batch_nodes);
  EXPECT_EQ(off.avg_batch_edges, on.avg_batch_edges);
  EXPECT_EQ(off.per_batch_nodes, on.per_batch_nodes);
  EXPECT_EQ(off.iterations_per_epoch, on.iterations_per_epoch);
  EXPECT_EQ(off.epoch_phases.sample_s, on.epoch_phases.sample_s);
  EXPECT_EQ(off.epoch_phases.transfer_s, on.epoch_phases.transfer_s);
  EXPECT_EQ(off.epoch_phases.replace_s, on.epoch_phases.replace_s);
  EXPECT_EQ(off.epoch_phases.compute_s, on.epoch_phases.compute_s);
  EXPECT_EQ(off.pipeline.modeled_overlapped_s,
            on.pipeline.modeled_overlapped_s);
  EXPECT_EQ(off.pipeline.modeled_sequential_s,
            on.pipeline.modeled_sequential_s);
}

runtime::RunOptions async_run_options() {
  runtime::RunOptions opts;
  opts.epochs = 2;
  opts.seed = 11;
  opts.record_batch_sizes = true;
  opts.pipeline.mode = runtime::PipelineMode::kAsync;
  opts.pipeline.prefetch_depth = 2;
  opts.pipeline.sampler_workers = 2;
  return opts;
}

TEST(ObsContract, TrainReportBitIdenticalTelemetryOnVsOff) {
  const graph::Dataset ds = small_dataset();
  runtime::RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  runtime::TrainConfig config = runtime::template_pagraph_full();
  config.pipeline_overlap = true;
  config.batch_size = 128;
  const runtime::RunOptions opts = async_run_options();

  ASSERT_FALSE(obs::tracing_enabled());
  ASSERT_FALSE(obs::metrics_enabled());
  const auto off_r = backend.run(config, opts);
  runtime::TrainReport on_r;
  {
    const TelemetryOn on;
    on_r = backend.run(config, opts);
    EXPECT_GT(obs::trace_recorded_spans(), 0u);
  }
  expect_reports_bit_identical(off_r, on_r);

  // Sync executor too (separate instrumentation path in backend.cpp).
  runtime::RunOptions sync_opts = opts;
  sync_opts.pipeline = runtime::PipelineConfig{};
  const auto sync_off = backend.run(config, sync_opts);
  runtime::TrainReport sync_on;
  {
    const TelemetryOn on;
    sync_on = backend.run(config, sync_opts);
  }
  expect_reports_bit_identical(sync_off, sync_on);
}

TEST(ObsContract, PipelineStageThreadSpansNestAndExport) {
  const graph::Dataset ds = small_dataset();
  runtime::RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  runtime::TrainConfig config = runtime::template_pagraph_full();
  config.pipeline_overlap = true;
  config.batch_size = 128;

  const TelemetryOn on;
  backend.run(config, async_run_options());
  obs::set_tracing_enabled(false);

  const std::string json = obs::chrome_trace_json();
  expect_balanced_json(json);
  std::vector<ParsedEvent> events;
  std::map<int, std::string> thread_names;
  parse_trace(json, events, thread_names);

  std::vector<std::string> cats;
  for (const auto& ev : events) cats.push_back(ev.cat);
  EXPECT_NE(std::find(cats.begin(), cats.end(), "pipeline"), cats.end());
  EXPECT_NE(std::find(cats.begin(), cats.end(), "cache"), cats.end());

  // The named stage threads appear as trace tracks...
  bool transfer_track = false;
  bool sampler_track = false;
  for (const auto& [tid, name] : thread_names) {
    if (name == "gnav-stage-transfer") transfer_track = true;
    if (name.rfind("gnav-stage-sample-", 0) == 0) sampler_track = true;
  }
  EXPECT_TRUE(transfer_track);
  EXPECT_TRUE(sampler_track);
  // ...and cache lookups nest inside the transfer span on its tid.
  EXPECT_TRUE(has_nested_pair_on_one_tid(events));
}

TEST(ObsContract, MetricSnapshotDeterministicAcrossPoolSizes) {
  const graph::Dataset ds = small_dataset();
  runtime::RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  runtime::TrainConfig config = runtime::template_pagraph_full();
  config.pipeline_overlap = true;
  config.batch_size = 128;

  // Data-bearing families only: stall counters, occupancy, and wall
  // gauges are timing observables and legitimately vary.
  const auto deterministic = [](const std::string& name) {
    return name.rfind("gnav_cache_", 0) == 0 ||
           name.rfind("gnav_sampler_batches_total", 0) == 0 ||
           name.rfind("gnav_pipeline_epochs_total", 0) == 0 ||
           name.rfind("gnav_pipeline_batches_total", 0) == 0;
  };

  std::map<std::string, double> reference;
  for (const std::size_t pool_size : {1u, 2u, 8u}) {
    support::ThreadPool pool(pool_size);
    runtime::RunOptions opts = async_run_options();
    opts.pool = &pool;

    const TelemetryOn on;
    MetricsRegistry::global().reset_values();
    backend.run(config, opts);

    std::map<std::string, double> got;
    for (const auto& s : MetricsRegistry::global().snapshot()) {
      if (deterministic(s.name)) got[s.name] = s.value;
    }
    ASSERT_FALSE(got.empty());
    EXPECT_GT(got.count("gnav_pipeline_batches_total"), 0u);
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(reference, got) << "pool size " << pool_size;
    }
  }
}

}  // namespace
}  // namespace gnav
