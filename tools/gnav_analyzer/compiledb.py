"""Compile-database discovery and loading. Pure Python — no libclang.

The analyzer is driven by the compile database CMake exports
(CMAKE_EXPORT_COMPILE_COMMANDS, on by default for this repo), so every
TU is parsed with the exact flags it builds with.
"""

from __future__ import annotations

import json
import shlex
from dataclasses import dataclass, field
from pathlib import Path


class CompileDbError(Exception):
    """Malformed or missing compile database (CLI exit: config error)."""


@dataclass
class CompileCommand:
    file: Path
    directory: Path
    args: list[str] = field(default_factory=list)


def discover(repo_root: Path, explicit: Path | None = None) -> Path | None:
    """Locate compile_commands.json.

    An explicit path always wins (and must exist). Otherwise search the
    conventional spots in order: build/, any build*/ sibling (sorted for
    determinism), then the repo root itself.
    """
    if explicit is not None:
        if not explicit.is_file():
            raise CompileDbError(f"compile database not found: {explicit}")
        return explicit
    preferred = repo_root / "build" / "compile_commands.json"
    if preferred.is_file():
        return preferred
    for build_dir in sorted(repo_root.glob("build*")):
        candidate = build_dir / "compile_commands.json"
        if candidate.is_file():
            return candidate
    fallback = repo_root / "compile_commands.json"
    if fallback.is_file():
        return fallback
    return None


def _strip_for_parse(argv: list[str], source: Path) -> list[str]:
    """Reduce a build command line to flags libclang can parse with.

    Drops the compiler (and a ccache/sccache launcher prefix), -c, the
    -o output pair, and the source file itself; keeps includes, defines,
    and language-mode flags.
    """
    args = list(argv)
    while args and Path(args[0]).name in ("ccache", "sccache"):
        args.pop(0)
    if args:
        args.pop(0)  # the compiler itself
    out: list[str] = []
    skip_next = False
    for a in args:
        if skip_next:
            skip_next = False
            continue
        if a == "-c":
            continue
        if a == "-o":
            skip_next = True
            continue
        if a.startswith("-o") and len(a) > 2 and not a.startswith("-of"):
            continue
        try:
            if Path(a).name == source.name and not a.startswith("-"):
                continue
        except (OSError, ValueError):
            pass
        out.append(a)
    return out


def load(db_path: Path, source_filter: Path | None = None) -> list[CompileCommand]:
    """Load compile commands, optionally keeping only TUs under a root.

    `source_filter` is how full-repo runs restrict to src/ — the project
    contracts the checks encode apply to library code; tests and benches
    exercise them instead.
    """
    try:
        entries = json.loads(db_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise CompileDbError(f"cannot read compile database {db_path}: {e}")
    if not isinstance(entries, list):
        raise CompileDbError(f"{db_path}: expected a JSON array of entries")
    commands: list[CompileCommand] = []
    for entry in entries:
        if not isinstance(entry, dict) or "file" not in entry:
            raise CompileDbError(f"{db_path}: malformed entry: {entry!r}")
        directory = Path(entry.get("directory", "."))
        source = Path(entry["file"])
        if not source.is_absolute():
            source = directory / source
        source = source.resolve()
        if source_filter is not None:
            try:
                source.relative_to(source_filter.resolve())
            except ValueError:
                continue
        if "arguments" in entry:
            argv = list(entry["arguments"])
        elif "command" in entry:
            argv = shlex.split(entry["command"])
        else:
            raise CompileDbError(
                f"{db_path}: entry for {source} has neither 'arguments' "
                "nor 'command'"
            )
        commands.append(
            CompileCommand(
                file=source,
                directory=directory,
                args=_strip_for_parse(argv, source),
            )
        )
    return commands
