#include "graph/reorder.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "graph/graph_builder.hpp"
#include "support/error.hpp"

namespace gnav::graph {

std::vector<NodeId> degree_descending_order(const CsrGraph& g) {
  std::vector<NodeId> perm(static_cast<std::size_t>(g.num_nodes()));
  std::iota(perm.begin(), perm.end(), NodeId{0});
  std::stable_sort(perm.begin(), perm.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  return perm;
}

std::vector<NodeId> bfs_order(const CsrGraph& g, NodeId source) {
  GNAV_CHECK(g.num_nodes() == 0 || g.contains(source),
             "BFS source out of range");
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<char> seen(n, 0);
  std::deque<NodeId> queue;
  auto push = [&](NodeId v) {
    if (!seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = 1;
      queue.push_back(v);
    }
  };
  if (n > 0) push(source);
  NodeId scan = 0;  // restart cursor for disconnected components
  while (order.size() < n) {
    if (queue.empty()) {
      while (seen[static_cast<std::size_t>(scan)]) ++scan;
      push(scan);
    }
    const NodeId v = queue.front();
    queue.pop_front();
    order.push_back(v);
    for (NodeId u : g.neighbors(v)) push(u);
  }
  return order;
}

CsrGraph apply_permutation(const CsrGraph& g,
                           const std::vector<NodeId>& perm) {
  GNAV_CHECK(perm.size() == static_cast<std::size_t>(g.num_nodes()),
             "permutation size mismatch");
  const auto inv = invert_permutation(perm);
  GraphBuilder b(g.num_nodes());
  for (NodeId new_v = 0; new_v < g.num_nodes(); ++new_v) {
    const NodeId old_v = perm[static_cast<std::size_t>(new_v)];
    for (NodeId old_u : g.neighbors(old_v)) {
      b.add_edge(new_v, inv[static_cast<std::size_t>(old_u)]);
    }
  }
  return b.deduplicate(false).remove_self_loops(false).build();
}

std::vector<NodeId> invert_permutation(const std::vector<NodeId>& perm) {
  std::vector<NodeId> inv(perm.size(), NodeId{-1});
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const NodeId old_id = perm[i];
    GNAV_CHECK(old_id >= 0 && static_cast<std::size_t>(old_id) < perm.size(),
               "permutation entry out of range");
    GNAV_CHECK(inv[static_cast<std::size_t>(old_id)] == -1,
               "permutation has duplicates");
    inv[static_cast<std::size_t>(old_id)] = static_cast<NodeId>(i);
  }
  return inv;
}

}  // namespace gnav::graph
