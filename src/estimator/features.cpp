#include "estimator/features.hpp"

#include <algorithm>
#include <cmath>

#include "compute/backend.hpp"
#include "sampling/batch_size_model.hpp"

namespace gnav::estimator {
namespace {
// Damping exponent of the Eq. 12 expansion product, fit once against
// profiled runs on the augmentation graphs (see DESIGN.md).
constexpr double kTau = 0.82;

bool dynamic_cache(const runtime::TrainConfig& c) {
  return c.cache_policy == cache::CachePolicy::kLru ||
         c.cache_policy == cache::CachePolicy::kFifo ||
         c.cache_policy == cache::CachePolicy::kWeightedDegree;
}
}  // namespace

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      "log_batch_size",       "num_hops",
      "mean_fanout",          "log_expansion_bound",
      "log_analytic_batch",   "sampler_node_wise",
      "sampler_layer_wise",   "sampler_saint",
      "bias_rate",            "cache_ratio",
      "cache_dynamic",        "cache_hit_prior",
      "hidden_dim",           "num_layers",
      "sampler_cluster",      "model_gcn",
      "model_sage",           "model_gat",
      "reorder",              "compress_features",
      "pipeline_overlap",
      "log_num_nodes",        "log_num_edges",
      "avg_degree",           "degree_gini",
      "power_law_alpha",      "feature_dim",
      "log_train_nodes",      "link_bandwidth_gbps",
      "device_gflops",        "host_sample_mps",
      // Declared (host-independent) capabilities of the run's compute
      // backend; see extract_features' backend_id overload.
      "backend_rel_throughput", "backend_async_transfer",
      "backend_hugepage_arena", "backend_log_max_feat_dim",
  };
  return names;
}

double analytic_batch_nodes(const runtime::TrainConfig& config,
                            const DatasetStats& stats) {
  // SAINT samplers bound the batch by their explicit budget rather than
  // the hop expansion.
  const bool saint = config.sampler == sampling::SamplerKind::kSaintWalk ||
                     config.sampler == sampling::SamplerKind::kSaintNode ||
                     config.sampler == sampling::SamplerKind::kSaintEdge;
  if (config.sampler == sampling::SamplerKind::kCluster) {
    // Cluster batches merge a few parts of ~batch_size/4 vertices each;
    // the realized batch hovers around 1-2x the seed count.
    const double n = static_cast<double>(stats.profile.num_nodes);
    return std::min(n, 1.6 * static_cast<double>(config.batch_size));
  }
  if (saint) {
    double budget = static_cast<double>(config.batch_size);
    if (config.sampler == sampling::SamplerKind::kSaintWalk) {
      budget *= 1.0 + static_cast<double>(config.hop_list.size());
    } else {
      budget *= 1.0 + config.saint_budget_multiplier;
    }
    const double n = static_cast<double>(stats.profile.num_nodes);
    return std::min(n, n * (1.0 - std::exp(-budget / n)));
  }
  return sampling::analytic_batch_size(config.batch_size, config.hop_list,
                                       stats.profile, kTau);
}

double analytic_cache_hit_prior(const runtime::TrainConfig& config,
                                const DatasetStats& stats) {
  if (config.cache_policy == cache::CachePolicy::kNone ||
      config.cache_ratio <= 0.0) {
    return 0.0;
  }
  // Piecewise-linear interpolation of the degree-coverage curve measured
  // during dataset profiling; dynamic policies track the working set and
  // land near the static prior, biased sampling pushes hits *up*.
  const double r = config.cache_ratio;
  double prior = 0.0;
  if (r <= 0.10) {
    prior = stats.coverage_at_10 * (r / 0.10);
  } else if (r <= 0.25) {
    prior = stats.coverage_at_10 +
            (stats.coverage_at_25 - stats.coverage_at_10) *
                ((r - 0.10) / 0.15);
  } else if (r <= 0.50) {
    prior = stats.coverage_at_25 +
            (stats.coverage_at_50 - stats.coverage_at_25) *
                ((r - 0.25) / 0.25);
  } else {
    prior = stats.coverage_at_50 +
            (1.0 - stats.coverage_at_50) * ((r - 0.50) / 0.50);
  }
  // Cache-aware sampling concentrates the batch on resident vertices.
  prior = std::min(1.0, prior * (1.0 + 0.6 * config.bias_rate));
  return prior;
}

double analytic_model_flops(const runtime::TrainConfig& config,
                            const DatasetStats& stats, double batch_nodes,
                            double batch_edges) {
  const auto in0 = static_cast<double>(stats.feature_dim);
  const auto hid = static_cast<double>(config.hidden_dim);
  const auto out = static_cast<double>(stats.num_classes);
  double flops = 0.0;
  for (std::size_t l = 0; l < config.num_layers; ++l) {
    const double in = (l == 0) ? in0 : hid;
    const double o = (l + 1 == config.num_layers) ? out : hid;
    switch (config.model) {
      case nn::ModelKind::kGcn:
        flops += 2.0 * batch_nodes * in * o + 2.0 * batch_edges * o;
        break;
      case nn::ModelKind::kSage:
        flops += 4.0 * batch_nodes * in * o + 2.0 * batch_edges * in;
        break;
      case nn::ModelKind::kGat:
        // 8 cost-modeled attention heads (see GatConv::forward_flops).
        flops += 8.0 * (2.0 * batch_nodes * in * o +
                        8.0 * (batch_edges + batch_nodes) * o);
        break;
    }
  }
  return 3.0 * flops;  // forward + ~2x backward
}

hw::IterationVolumes analytic_iteration_volumes(
    const runtime::TrainConfig& config, const DatasetStats& stats,
    double batch_nodes, double batch_edges, double hit_rate,
    double work_per_node) {
  const double feat_bytes = static_cast<double>(stats.feature_dim) * 4.0;
  const double vol_scale = stats.real_feature_scale * stats.real_volume_scale;
  const double struct_scale = stats.real_volume_scale;

  hw::IterationVolumes v;
  // Eq. 7: sampling cost grows with the expansion |V_i| - |B_0|. The
  // per-node work multiplier is learned (work_model_); the pure white-box
  // arm falls back to a neutral fanout-scan estimate.
  if (work_per_node > 0.0) {
    v.sampling_work = batch_nodes * work_per_node * struct_scale;
  } else {
    v.sampling_work =
        (std::max(batch_nodes - static_cast<double>(config.batch_size),
                  0.0) *
             4.0 +
         batch_nodes) *
        struct_scale;
    if (config.reorder) v.sampling_work *= 0.85;
  }
  // Eq. 6: transfer = n_attr * |V_i| * (1 - hit) + structure; INT8
  // compression divides the feature payload by 4.
  const double wire_feat_bytes =
      config.compress_features ? feat_bytes / 4.0 : feat_bytes;
  v.transfer_bytes =
      batch_nodes * (1.0 - hit_rate) * wire_feat_bytes * vol_scale +
      (8.0 * batch_edges + 8.0 * batch_nodes) * struct_scale;
  // Eq. 5: replace only when a dynamic policy rewrites stale lines.
  v.replace_bytes = dynamic_cache(config)
                        ? batch_nodes * (1.0 - hit_rate) *
                              wire_feat_bytes * vol_scale
                        : 0.0;
  // Eq. 8: compute from the model's FLOP formula.
  v.compute_flops =
      analytic_model_flops(config, stats, batch_nodes, batch_edges) *
      vol_scale;
  return v;
}

namespace {
std::vector<double> base_features(const runtime::TrainConfig& config,
                                  const DatasetStats& stats,
                                  const hw::HardwareProfile& hw) {
  double fanout_sum = 0.0;
  for (int k : config.hop_list) {
    fanout_sum += (k == -1) ? stats.profile.avg_degree
                            : static_cast<double>(k);
  }
  const double mean_fanout =
      fanout_sum / static_cast<double>(config.hop_list.size());
  const double bound = sampling::tree_upper_bound(
      config.batch_size, config.hop_list, stats.profile.avg_degree);
  const bool saint = config.sampler == sampling::SamplerKind::kSaintWalk ||
                     config.sampler == sampling::SamplerKind::kSaintNode ||
                     config.sampler == sampling::SamplerKind::kSaintEdge;
  const bool dynamic_cache =
      config.cache_policy == cache::CachePolicy::kLru ||
      config.cache_policy == cache::CachePolicy::kFifo ||
      config.cache_policy == cache::CachePolicy::kWeightedDegree;

  std::vector<double> f;
  f.reserve(feature_names().size());
  f.push_back(std::log(static_cast<double>(config.batch_size)));
  f.push_back(static_cast<double>(config.hop_list.size()));
  f.push_back(mean_fanout);
  f.push_back(std::log(std::max(bound, 1.0)));
  f.push_back(std::log(std::max(analytic_batch_nodes(config, stats), 1.0)));
  f.push_back(config.sampler == sampling::SamplerKind::kNodeWise ? 1.0 : 0.0);
  f.push_back(config.sampler == sampling::SamplerKind::kLayerWise ? 1.0 : 0.0);
  f.push_back(saint ? 1.0 : 0.0);
  f.push_back(config.bias_rate);
  f.push_back(config.cache_ratio);
  f.push_back(dynamic_cache ? 1.0 : 0.0);
  f.push_back(analytic_cache_hit_prior(config, stats));
  f.push_back(static_cast<double>(config.hidden_dim));
  f.push_back(static_cast<double>(config.num_layers));
  f.push_back(config.sampler == sampling::SamplerKind::kCluster ? 1.0
                                                                 : 0.0);
  f.push_back(config.model == nn::ModelKind::kGcn ? 1.0 : 0.0);
  f.push_back(config.model == nn::ModelKind::kSage ? 1.0 : 0.0);
  f.push_back(config.model == nn::ModelKind::kGat ? 1.0 : 0.0);
  f.push_back(config.reorder ? 1.0 : 0.0);
  f.push_back(config.compress_features ? 1.0 : 0.0);
  f.push_back(config.pipeline_overlap ? 1.0 : 0.0);
  f.push_back(std::log(static_cast<double>(
      std::max<graph::NodeId>(stats.profile.num_nodes, 2))));
  f.push_back(std::log(static_cast<double>(
      std::max<graph::EdgeId>(stats.profile.num_edges, 2))));
  f.push_back(stats.profile.avg_degree);
  f.push_back(stats.profile.degree_gini);
  f.push_back(stats.profile.power_law_alpha);
  f.push_back(static_cast<double>(stats.feature_dim));
  f.push_back(std::log(static_cast<double>(
      std::max<std::size_t>(stats.num_train_nodes, 2))));
  f.push_back(hw.link.bandwidth_gbps);
  f.push_back(hw.device.compute_gflops);
  f.push_back(hw.host.sample_throughput_per_s / 1e6);
  return f;
}
}  // namespace

std::vector<double> extract_features(const runtime::TrainConfig& config,
                                     const DatasetStats& stats,
                                     const hw::HardwareProfile& hw,
                                     const std::string& backend_id) {
  std::vector<double> f = base_features(config, stats, hw);
  const compute::BackendCapabilities caps =
      compute::BackendFactory::declared_capabilities(backend_id);
  f.push_back(caps.relative_throughput);
  f.push_back(caps.supports_async_transfer ? 1.0 : 0.0);
  f.push_back(caps.hugepage_arena ? 1.0 : 0.0);
  // log1p keeps "unbounded" (0) and real caps on one monotone scale:
  // 0 → 0, 4096 → ~8.3.
  f.push_back(std::log1p(static_cast<double>(caps.max_feature_dim)));
  return f;
}

std::vector<double> extract_features(const runtime::TrainConfig& config,
                                     const DatasetStats& stats,
                                     const hw::HardwareProfile& hw) {
  return extract_features(config, stats, hw, compute::kBlockedBackendId);
}

}  // namespace gnav::estimator
