#include "runtime/templates.hpp"

#include "support/error.hpp"

namespace gnav::runtime {

TrainConfig template_pyg() {
  TrainConfig c;
  c.name = "pyg";
  c.sampler = sampling::SamplerKind::kNodeWise;
  c.hop_list = {10, 10};
  c.batch_size = 1024;
  c.bias_rate = 0.0;
  c.cache_ratio = 0.0;
  c.cache_policy = cache::CachePolicy::kNone;
  c.validate();
  return c;
}

TrainConfig template_pagraph_full() {
  TrainConfig c = template_pyg();
  c.name = "pagraph-full";
  // PaGraph fills every free GPU byte with statically cached features;
  // on the evaluated datasets that reaches roughly half the vertex set.
  c.cache_ratio = 0.5;
  c.cache_policy = cache::CachePolicy::kStatic;
  c.validate();
  return c;
}

TrainConfig template_pagraph_low() {
  TrainConfig c = template_pyg();
  c.name = "pagraph-low";
  c.cache_ratio = 0.08;
  c.cache_policy = cache::CachePolicy::kStatic;
  c.validate();
  return c;
}

TrainConfig template_2pgraph() {
  TrainConfig c = template_pyg();
  c.name = "2pgraph";
  // Cache-aware sampling: neighbor selection strongly prefers resident
  // vertices, trading sample-distribution fidelity (accuracy) for
  // transfer volume (speed) — the Fig. 1b trade-off.
  c.cache_ratio = 0.3;
  c.cache_policy = cache::CachePolicy::kStatic;
  c.bias_rate = 0.7;
  c.validate();
  return c;
}

TrainConfig template_graphsaint() {
  TrainConfig c;
  c.name = "graphsaint";
  c.sampler = sampling::SamplerKind::kSaintWalk;
  c.hop_list = std::vector<int>(4, 1);  // walk length 4
  c.batch_size = 1024;
  c.cache_ratio = 0.0;
  c.cache_policy = cache::CachePolicy::kNone;
  c.validate();
  return c;
}

TrainConfig template_fastgcn() {
  TrainConfig c;
  c.name = "fastgcn";
  c.sampler = sampling::SamplerKind::kLayerWise;
  c.hop_list = {4, 4};
  c.batch_size = 1024;
  c.cache_ratio = 0.0;
  c.cache_policy = cache::CachePolicy::kNone;
  c.validate();
  return c;
}

std::vector<TrainConfig> all_templates() {
  return {template_pyg(),        template_pagraph_full(),
          template_pagraph_low(), template_2pgraph(),
          template_graphsaint(),  template_fastgcn()};
}

TrainConfig template_by_name(const std::string& name) {
  for (TrainConfig& c : all_templates()) {
    if (c.name == name) return c;
  }
  throw Error("unknown template '" + name + "'");
}

}  // namespace gnav::runtime
