#include "runtime/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"

namespace gnav::runtime {

std::string to_string(PipelineMode mode) {
  return mode == PipelineMode::kAsync ? "async" : "sync";
}

PipelineMode pipeline_mode_from_string(const std::string& s) {
  if (s == "sync") return PipelineMode::kSync;
  if (s == "async") return PipelineMode::kAsync;
  throw Error("unknown pipeline mode '" + s + "' (sync | async)");
}

PipelineConfig default_pipeline_config() {
  PipelineConfig config;
  if (const char* raw = std::getenv("GNAV_PIPELINE")) {
    try {
      config.mode = pipeline_mode_from_string(raw);
    } catch (const Error&) {
      // Warn once — RunOptions defaults re-resolve this per run.
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        log_warn("GNAV_PIPELINE='", raw,
                 "' is invalid (sync | async); falling back to sync");
      }
    }
  }
  if (const auto depth = support::env_long("GNAV_PIPELINE_DEPTH", 1)) {
    config.prefetch_depth = static_cast<std::size_t>(*depth);
  }
  // Minimum 0, not 1: GNAV_PIPELINE_WORKERS=0 is the documented "auto"
  // spelling (resolves to default_thread_count(), same as unset). The old
  // min of 1 made env_long reject 0 with a warning and silently fall back
  // — a doc/parse mismatch pinned by test_pipeline.cpp.
  if (const auto workers = support::env_long("GNAV_PIPELINE_WORKERS", 0)) {
    config.sampler_workers = static_cast<std::size_t>(*workers);
  }
  return config;
}

double PipelineEpochStats::overlap_efficiency() const {
  const double seq = sequential_s();
  const double bottleneck = std::max(
      {sample_busy_s, transfer_busy_s, compute_busy_s});
  // `seq - bottleneck` is the hideable time; below it there is nothing a
  // pipeline could overlap (single stage, or empty epoch).
  const double hideable = seq - bottleneck;
  if (hideable <= 0.0) return 0.0;
  const double hidden = std::clamp(seq - wall_s, 0.0, hideable);
  return hidden / hideable;
}

void PipelineEpochStats::accumulate(const PipelineEpochStats& e) {
  batches += e.batches;
  sampler_workers = std::max(sampler_workers, e.sampler_workers);
  prefetch_depth = std::max(prefetch_depth, e.prefetch_depth);
  push_stalls += e.push_stalls;
  pop_stalls += e.pop_stalls;
  // Occupancy is a mean, not a count — weight epochs equally by keeping a
  // running average over however many accumulations happened.
  ++occupancy_epochs_;
  mean_prepared_occupancy +=
      (e.mean_prepared_occupancy - mean_prepared_occupancy) /
      static_cast<double>(occupancy_epochs_);
  sample_busy_s += e.sample_busy_s;
  transfer_busy_s += e.transfer_busy_s;
  compute_busy_s += e.compute_busy_s;
  wall_s += e.wall_s;
}

namespace detail {

TicketGate::TicketGate(std::size_t num_tickets, std::size_t depth)
    : num_tickets_(num_tickets), depth_(std::max<std::size_t>(1, depth)) {}

std::optional<std::size_t> TicketGate::acquire() {
  // Explicit wait loop instead of the predicate overload: the predicate
  // lambda cannot carry a REQUIRES annotation, so guarded-field reads
  // inside it would defeat the thread-safety analysis.
  support::UniqueLock lock(mutex_);
  while (!aborted_ && next_ < num_tickets_ && next_ >= released_ + depth_) {
    lock.wait(cv_);
  }
  if (aborted_ || next_ >= num_tickets_) return std::nullopt;
  return next_++;
}

void TicketGate::release() {
  {
    const support::MutexLock lock(mutex_);
    ++released_;
  }
  cv_.notify_all();
}

void TicketGate::abort() {
  {
    const support::MutexLock lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void publish_epoch_metrics(const PipelineEpochStats& stats) {
  auto& reg = obs::MetricsRegistry::global();
  // Resolved once per process; the registry hands out stable references.
  static obs::Counter& epochs =
      reg.counter("gnav_pipeline_epochs_total", {},
                  "Epochs executed by the staged epoch executors");
  static obs::Counter& batches =
      reg.counter("gnav_pipeline_batches_total", {},
                  "Mini-batches moved through the epoch executors");
  static obs::Counter& push_stalls = reg.counter(
      "gnav_pipeline_push_stalls_total", {},
      "Queue-full waits across both hand-off queues (backpressure)");
  static obs::Counter& pop_stalls = reg.counter(
      "gnav_pipeline_pop_stalls_total", {},
      "Queue-empty waits across both hand-off queues (starvation)");
  static obs::Histogram& occupancy = reg.histogram(
      "gnav_pipeline_queue_occupancy", {},
      "Mean prepared-queue backlog per epoch (near depth-1 = "
      "compute-bound, 0 = sample/transfer-bound)",
      {0.5, 1.0, 2.0, 4.0, 8.0, 16.0});
  static obs::Gauge& wall = reg.gauge(
      "gnav_pipeline_epoch_wall_seconds", {},
      "Measured wall seconds of the most recent epoch");
  static obs::Gauge& efficiency = reg.gauge(
      "gnav_pipeline_overlap_efficiency", {},
      "Fraction of hideable stage time actually hidden, last epoch");
  epochs.add(1);
  batches.add(stats.batches);
  push_stalls.add(stats.push_stalls);
  pop_stalls.add(stats.pop_stalls);
  occupancy.observe(stats.mean_prepared_occupancy);
  wall.set(stats.wall_s);
  efficiency.set(stats.overlap_efficiency());
}

}  // namespace detail
}  // namespace gnav::runtime
