#include "support/alias_table.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace gnav::support {

void AliasTable::build(std::span<const double> weights) {
  const std::size_t n = weights.size();
  GNAV_CHECK(n <= std::numeric_limits<std::uint32_t>::max(),
             "alias table support too large");
  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    alias_[i] = static_cast<std::uint32_t>(i);
  }
  uniform_fallback_ = false;
  if (n == 0) return;

  double total = 0.0;
  for (double w : weights) {
    GNAV_CHECK(std::isfinite(w) && w >= 0.0,
               "alias table weights must be finite and non-negative");
    total += w;
  }
  if (!(total > 0.0)) {
    // Zero-mass guard: every weight is 0 — e.g. a fully biased draw with
    // no preferred vertex in the support. Degrade to uniform instead of
    // dividing by zero.
    uniform_fallback_ = true;
    return;
  }

  // Vose's method. Worklists are processed in ascending index order so
  // the table layout (and therefore every downstream draw) is a pure
  // function of the weights.
  small_.clear();
  large_.clear();
  const double scale = static_cast<double>(n) / total;
  for (std::size_t i = 0; i < n; ++i) {
    prob_[i] = weights[i] * scale;
    (prob_[i] < 1.0 ? small_ : large_)
        .push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t si = 0;
  std::size_t li = 0;
  while (si < small_.size() && li < large_.size()) {
    const std::uint32_t s = small_[si++];
    const std::uint32_t l = large_[li];
    alias_[s] = l;
    prob_[l] -= 1.0 - prob_[s];
    if (prob_[l] < 1.0) {
      ++li;
      small_.push_back(l);
    }
  }
  // Residual columns (numerical leftovers) accept unconditionally.
  for (; li < large_.size(); ++li) prob_[large_[li]] = 1.0;
  for (; si < small_.size(); ++si) prob_[small_[si]] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const {
  GNAV_CHECK(!prob_.empty(), "cannot sample from an empty alias table");
  const auto column =
      static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  const double coin = rng.uniform();
  if (uniform_fallback_) return column;
  return coin < prob_[column] ? column : alias_[column];
}

}  // namespace gnav::support
