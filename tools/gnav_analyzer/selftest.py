"""Self-test: every check against its known-bad and known-good corpus.

Corpus convention (tools/gnav_analyzer/corpus/):
  <check_name_with_underscores>_bad.cpp        must be flagged
  <check_name_with_underscores>_good.cpp       must pass clean
  <check>_annotated_good.cpp                   violation + inline
                                               annotation → clean
Expected findings are declared in-file with `// expect-finding(<check>)`
on the exact line the finding lands; the self-test fails on any
mismatch in either direction, so a check that rots into a no-op (or
starts over-flagging) is caught the same way determinism_lint's
embedded corpus catches regex rot.

The corpus TUs are parsed through a fixture compile db written to a
temp dir, so the compiledb → engine path is exercised end to end.
"""

from __future__ import annotations

import json
import re
import tempfile
from pathlib import Path

from gnav_analyzer import CHECK_DESCRIPTIONS, EXIT_CLEAN, EXIT_FINDINGS
from gnav_analyzer import compiledb, engine, suppress

CORPUS_DIR = Path(__file__).parent / "corpus"
_EXPECT_RE = re.compile(r"//\s*expect-finding\((?P<check>[a-z0-9-]+)\)")


def check_for_case(stem: str) -> str | None:
    for suffix in ("_bad", "_good"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
            break
    else:
        return None
    if stem.endswith("_annotated"):
        stem = stem[: -len("_annotated")]
    name = stem.replace("_", "-")
    return name if name in CHECK_DESCRIPTIONS else None


def run() -> int:
    cases = sorted(CORPUS_DIR.glob("*.cpp"))
    if not cases:
        print(f"FAIL: no corpus files under {CORPUS_DIR}")
        return EXIT_FINDINGS
    failures: list[str] = []
    covered_bad: set[str] = set()
    covered_good: set[str] = set()

    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "compile_commands.json"
        db_path.write_text(
            json.dumps(
                [
                    {
                        "directory": str(CORPUS_DIR),
                        "file": str(case),
                        "arguments": [
                            "clang++",
                            "-std=c++17",
                            f"-I{CORPUS_DIR}",
                            "-c",
                            str(case),
                        ],
                    }
                    for case in cases
                ]
            )
        )
        for cmd in compiledb.load(db_path):
            stem = cmd.file.stem
            check = check_for_case(stem)
            if check is None:
                failures.append(
                    f"{cmd.file.name}: filename does not map to a check "
                    "(<check>_bad.cpp / <check>_good.cpp)"
                )
                continue
            tu, fatal = engine.parse_tu(cmd)
            if fatal:
                failures.append(
                    f"{cmd.file.name}: parse errors: "
                    + "; ".join(d.spelling for d in fatal[:3])
                )
                continue
            findings = list(
                engine.run_checks(tu, [CORPUS_DIR], [check])
            )
            text = cmd.file.read_text()
            inline, sup_errors = suppress.inline_suppressions(text)
            if sup_errors:
                failures.append(
                    f"{cmd.file.name}: " + "; ".join(sup_errors)
                )
            active = [
                f
                for f in findings
                if check not in inline.get(f.line, set())
            ]
            expected = {
                lineno
                for lineno, line in enumerate(text.splitlines(), start=1)
                if _EXPECT_RE.search(line)
            }
            actual = {f.line for f in active}
            if actual != expected:
                failures.append(
                    f"{cmd.file.name} [{check}]: expected findings on "
                    f"lines {sorted(expected)}, got {sorted(actual)}"
                )
            else:
                verdict = "flags" if expected else "passes"
                print(
                    f"PASS {cmd.file.name} [{check}] — {verdict} "
                    f"{len(expected) or 'zero'} site(s)"
                )
            (covered_bad if stem.endswith("_bad") else covered_good).add(
                check
            )

    for check in sorted(CHECK_DESCRIPTIONS):
        if check not in covered_bad:
            failures.append(f"corpus has no known-bad case for {check}")
        if check not in covered_good:
            failures.append(f"corpus has no known-good case for {check}")

    if failures:
        print(f"FAIL: {len(failures)} self-test failure(s):")
        for f in failures:
            print(f"  {f}")
        return EXIT_FINDINGS
    print(f"self-test OK: {len(cases)} corpus file(s), "
          f"{len(CHECK_DESCRIPTIONS)} check(s) covered bad+good")
    return EXIT_CLEAN
