// Tests for the learned overlap-efficiency correction (the fitted
// replacement for Eq. 4's analytic max()): row eligibility (sync rows
// must never train or poison the fit), analytic fallback when no async
// rows exist, fit/predict determinism, ratio clamping, the
// PerfEstimator consultation path, and the headline out-of-sample claim
// — on a held-out async sweep the fitted ratio tracks the measured
// executor wall at least as well as the bare Eq. 4 max().
//
// The corpus is profiled once in a shared fixture with every other run
// executed under the async executor (CollectorOptions::async_every), so
// measured executor walls exist for half the rows.
#include <gtest/gtest.h>

#include <cmath>

#include "estimator/overlap_model.hpp"
#include "estimator/perf_estimator.hpp"
#include "estimator/profile_collector.hpp"
#include "runtime/templates.hpp"
#include "support/error.hpp"

namespace gnav::estimator {
namespace {

class OverlapModelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hw_ = new hw::HardwareProfile(hw::make_profile("rtx4090"));
    dataset_ = new graph::Dataset(graph::make_power_law_augmentation(0, 3));
    stats_ = new DatasetStats(compute_dataset_stats(*dataset_));
    CollectorOptions opts;
    opts.configs_per_dataset = 24;
    opts.epochs = 1;
    opts.seed = 77;
    opts.async_every = 2;  // half the corpus runs the async executor
    corpus_ = new std::vector<ProfiledRun>(
        collect_profiles(*dataset_, *hw_, opts));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete stats_;
    delete dataset_;
    delete hw_;
  }

  static std::vector<ProfiledRun> async_rows() {
    std::vector<ProfiledRun> out;
    for (const auto& run : *corpus_) {
      if (OverlapModel::row_eligible(run)) out.push_back(run);
    }
    return out;
  }

  static std::vector<ProfiledRun> sync_rows() {
    std::vector<ProfiledRun> out;
    for (const auto& run : *corpus_) {
      if (run.report.pipeline.executor == "sync") out.push_back(run);
    }
    return out;
  }

  static hw::HardwareProfile* hw_;
  static graph::Dataset* dataset_;
  static DatasetStats* stats_;
  static std::vector<ProfiledRun>* corpus_;
};

hw::HardwareProfile* OverlapModelFixture::hw_ = nullptr;
graph::Dataset* OverlapModelFixture::dataset_ = nullptr;
DatasetStats* OverlapModelFixture::stats_ = nullptr;
std::vector<ProfiledRun>* OverlapModelFixture::corpus_ = nullptr;

TEST_F(OverlapModelFixture, CollectorMarksAsyncRowsDeterministically) {
  ASSERT_EQ(corpus_->size(), 24u);
  std::size_t async_count = 0;
  for (std::size_t i = 0; i < corpus_->size(); ++i) {
    const auto& p = (*corpus_)[i].report.pipeline;
    if (i % 2 == 0) {
      EXPECT_EQ(p.executor, "async") << "row " << i;
      EXPECT_GE(p.prefetch_depth, 1u);
      ++async_count;
    } else {
      EXPECT_EQ(p.executor, "sync") << "row " << i;
    }
  }
  EXPECT_EQ(async_count, 12u);
}

TEST_F(OverlapModelFixture, SyncRowsAreNeverEligible) {
  for (const auto& run : sync_rows()) {
    EXPECT_FALSE(OverlapModel::row_eligible(run));
  }
  // A doctored async row with empty measured walls is rejected too —
  // the divide-by-zero guard for the fit target.
  auto rows = async_rows();
  ASSERT_FALSE(rows.empty());
  ProfiledRun broken = rows.front();
  broken.report.pipeline.measured_wall_s = 0.0;
  EXPECT_FALSE(OverlapModel::row_eligible(broken));
  broken = rows.front();
  broken.report.pipeline.sample_wall_s = 0.0;
  broken.report.pipeline.transfer_wall_s = 0.0;
  broken.report.pipeline.compute_wall_s = 0.0;
  EXPECT_FALSE(OverlapModel::row_eligible(broken));
}

TEST_F(OverlapModelFixture, RatioHelpersGuardEmptyRows) {
  runtime::TrainReport empty;
  EXPECT_DOUBLE_EQ(OverlapModel::measured_ratio(empty), 1.0);
  EXPECT_DOUBLE_EQ(OverlapModel::analytic_ratio(empty), 1.0);
}

TEST_F(OverlapModelFixture, UnfittedFallsBackToAnalytic) {
  OverlapModel model(*hw_);
  model.fit(sync_rows());  // >= 8 rows, but none eligible
  EXPECT_FALSE(model.is_fitted());
  EXPECT_EQ(model.training_rows(), 0u);
  const auto config = runtime::template_pagraph_full();
  const OverlapExecutorShape shape{4, 2};
  EXPECT_DOUBLE_EQ(model.predict_ratio(config, *stats_, shape, 0.7), 0.7);
  // The fallback is clamped like every other prediction.
  EXPECT_DOUBLE_EQ(model.predict_ratio(config, *stats_, shape, 9.0), 1.5);
}

TEST_F(OverlapModelFixture, FitPredictIsDeterministic) {
  OverlapModel a(*hw_);
  OverlapModel b(*hw_);
  a.fit(*corpus_);
  b.fit(*corpus_);
  ASSERT_TRUE(a.is_fitted());
  ASSERT_TRUE(b.is_fitted());
  EXPECT_EQ(a.training_rows(), b.training_rows());
  Rng rng(5);
  for (int i = 0; i < 16; ++i) {
    const auto config = random_config(rng);
    for (const std::size_t depth : {1u, 4u, 8u}) {
      const OverlapExecutorShape shape{depth, 2};
      const double ra = a.predict_ratio(config, *stats_, shape, 0.8);
      const double rb = b.predict_ratio(config, *stats_, shape, 0.8);
      EXPECT_EQ(ra, rb);  // bit-identical across fits (and thread counts:
                          // the ridge solve and predict are serial)
      EXPECT_GE(ra, 0.25);
      EXPECT_LE(ra, 1.5);
    }
  }
}

TEST_F(OverlapModelFixture, DegenerateShapeIsFlooredNotUb) {
  // A sync report's defaults are depth 0 / workers 0; forwarding them
  // into a prediction must floor to 1, never hit clamp(lo > hi).
  OverlapModel model(*hw_);
  model.fit(*corpus_);
  ASSERT_TRUE(model.is_fitted());
  const auto config = runtime::template_pyg();
  for (const OverlapExecutorShape shape :
       {OverlapExecutorShape{0, 0}, OverlapExecutorShape{0, 8},
        OverlapExecutorShape{2, 0}}) {
    const double r = model.predict_ratio(config, *stats_, shape, 0.9);
    EXPECT_GE(r, 0.25);
    EXPECT_LE(r, 1.5);
  }
}

TEST_F(OverlapModelFixture, FittedTracksMeasuredAtLeastAsWellAsAnalytic) {
  // Out-of-sample check: fit on every other async row, evaluate on the
  // held-out half. The fitted correction must not lose to the bare
  // Eq. 4 max() in aggregate — on this host the analytic ratio
  // systematically over-promises overlap the executor cannot deliver.
  const auto rows = async_rows();
  ASSERT_GE(rows.size(), 8u);
  std::vector<ProfiledRun> train;
  std::vector<ProfiledRun> holdout;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    (i % 2 == 0 ? train : holdout).push_back(rows[i]);
  }
  OverlapModel model(*hw_);
  model.fit(train);
  ASSERT_TRUE(model.is_fitted());

  double mae_fit = 0.0;
  double mae_analytic = 0.0;
  for (const auto& run : holdout) {
    const auto& p = run.report.pipeline;
    const double measured = OverlapModel::measured_ratio(run.report);
    const double analytic = OverlapModel::analytic_ratio(run.report);
    const OverlapExecutorShape shape{p.prefetch_depth, p.sampler_workers};
    const double fitted =
        model.predict_ratio(run.config, run.stats, shape, analytic);
    mae_fit += std::abs(fitted - measured);
    mae_analytic += std::abs(analytic - measured);
  }
  mae_fit /= static_cast<double>(holdout.size());
  mae_analytic /= static_cast<double>(holdout.size());
  // "No worse" with a small tolerance for wall-clock measurement noise;
  // in practice the fitted arm wins by a wide margin here because the
  // measured ratio sits near 1 (little real overlap on a small host)
  // while Eq. 4 predicts a strong one.
  EXPECT_LE(mae_fit, mae_analytic + 0.02);
}

TEST_F(OverlapModelFixture, PerfEstimatorConsultsTheFittedModel) {
  PerfEstimator est(*hw_);
  est.fit(*corpus_);
  ASSERT_TRUE(est.overlap_model().is_fitted());

  runtime::TrainConfig pipelined = runtime::template_pagraph_full();
  pipelined.pipeline_overlap = true;
  const auto p = est.predict(pipelined, *stats_);
  EXPECT_TRUE(p.overlap_fitted);
  EXPECT_GE(p.overlap_ratio, 0.25);
  EXPECT_LE(p.overlap_ratio, 1.5);
  EXPECT_GT(p.overlap_ratio_analytic, 0.0);
  EXPECT_LE(p.overlap_ratio_analytic, 1.0);

  // Sync configs have no overlap to correct: both ratios pin to 1.
  runtime::TrainConfig sync_config = pipelined;
  sync_config.pipeline_overlap = false;
  const auto ps = est.predict(sync_config, *stats_);
  EXPECT_FALSE(ps.overlap_fitted);
  EXPECT_DOUBLE_EQ(ps.overlap_ratio, 1.0);
  EXPECT_DOUBLE_EQ(ps.overlap_ratio_analytic, 1.0);

  // The wall helper scales the serial stage seconds by the ratio.
  const OverlapExecutorShape shape{4, 4};
  EXPECT_DOUBLE_EQ(
      est.predict_pipelined_wall_s(pipelined, *stats_, shape, 10.0),
      10.0 * est.predict_overlap_ratio(pipelined, *stats_, shape));
}

TEST_F(OverlapModelFixture, PerfEstimatorFallsBackOnSyncOnlyCorpus) {
  PerfEstimator est(*hw_);
  est.fit(sync_rows());
  EXPECT_FALSE(est.overlap_model().is_fitted());
  runtime::TrainConfig pipelined = runtime::template_pagraph_full();
  pipelined.pipeline_overlap = true;
  const auto p = est.predict(pipelined, *stats_);
  EXPECT_FALSE(p.overlap_fitted);
  // Graceful fallback: the consulted ratio IS the analytic Eq. 4 ratio.
  EXPECT_DOUBLE_EQ(p.overlap_ratio, p.overlap_ratio_analytic);
}

}  // namespace
}  // namespace gnav::estimator
