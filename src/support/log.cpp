#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "support/thread_safety.hpp"

namespace gnav {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

/// Sink storage. The mutex — not fprintf's internal locking — is what
/// guarantees whole-line emission and keeps a sink swap from racing an
/// emit that is mid-call into the sink being replaced.
struct LoggerState {
  support::Mutex mu;
  LogSink sink GNAV_GUARDED_BY(mu);  // null = stderr default
};

LoggerState& logger_state() {
  static LoggerState state;
  return state;
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_sink(LogSink sink) {
  LoggerState& state = logger_state();
  const support::MutexLock lock(state.mu);
  state.sink = std::move(sink);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  LoggerState& state = logger_state();
  const support::MutexLock lock(state.mu);
  if (state.sink) {
    state.sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[gnav %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace gnav
