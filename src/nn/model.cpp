#include "nn/model.hpp"

#include "support/error.hpp"
#include "tensor/ops.hpp"

namespace gnav::nn {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kGcn:
      return "gcn";
    case ModelKind::kSage:
      return "sage";
    case ModelKind::kGat:
      return "gat";
  }
  return "?";
}

ModelKind model_kind_from_string(const std::string& s) {
  if (s == "gcn") return ModelKind::kGcn;
  if (s == "sage") return ModelKind::kSage;
  if (s == "gat") return ModelKind::kGat;
  throw Error("unknown model kind '" + s + "'");
}

namespace {
std::unique_ptr<GraphConv> make_conv(ModelKind kind, std::size_t in,
                                     std::size_t out, Rng& rng) {
  switch (kind) {
    case ModelKind::kGcn:
      return std::make_unique<GcnConv>(in, out, rng);
    case ModelKind::kSage:
      return std::make_unique<SageConv>(in, out, rng);
    case ModelKind::kGat:
      return std::make_unique<GatConv>(in, out, rng);
  }
  throw Error("unreachable model kind");
}
}  // namespace

GnnModel::GnnModel(const ModelConfig& config, Rng& rng) : config_(config) {
  GNAV_CHECK(config.num_layers >= 1, "model needs at least one layer");
  GNAV_CHECK(config.dropout >= 0.0f && config.dropout < 1.0f,
             "dropout must be in [0,1)");
  for (std::size_t l = 0; l < config.num_layers; ++l) {
    const std::size_t in = (l == 0) ? config.in_dim : config.hidden_dim;
    const std::size_t out =
        (l + 1 == config.num_layers) ? config.out_dim : config.hidden_dim;
    convs_.push_back(make_conv(config.kind, in, out, rng));
  }
}

tensor::Tensor GnnModel::forward(const graph::CsrGraph& g,
                                 const tensor::Tensor& x, bool training,
                                 Rng& rng) {
  pre_activations_.clear();
  dropout_masks_.clear();
  last_training_ = training;
  tensor::Tensor h = x;
  for (std::size_t l = 0; l < convs_.size(); ++l) {
    h = convs_[l]->forward(g, h);
    if (l + 1 < convs_.size()) {
      pre_activations_.push_back(h);
      h = (config_.kind == ModelKind::kGat)
              ? tensor::elu(h)
              : tensor::relu(h);
      if (training && config_.dropout > 0.0f) {
        tensor::Tensor mask;
        h = tensor::dropout(h, config_.dropout, rng, &mask);
        dropout_masks_.push_back(std::move(mask));
      } else {
        dropout_masks_.emplace_back();
      }
    }
  }
  return h;
}

void GnnModel::backward(const tensor::Tensor& grad_logits) {
  tensor::Tensor g = grad_logits;
  for (std::size_t l = convs_.size(); l-- > 0;) {
    g = convs_[l]->backward(g);
    if (l > 0) {
      const tensor::Tensor& mask = dropout_masks_[l - 1];
      if (last_training_ && !mask.empty()) {
        g = tensor::dropout_backward(g, mask);
      }
      const tensor::Tensor& z = pre_activations_[l - 1];
      g = (config_.kind == ModelKind::kGat)
              ? tensor::elu_backward(g, z)
              : tensor::relu_backward(g, z);
    }
  }
}

std::vector<Parameter*> GnnModel::parameters() {
  std::vector<Parameter*> out;
  for (auto& conv : convs_) {
    for (Parameter* p : conv->parameters()) out.push_back(p);
  }
  return out;
}

std::size_t GnnModel::parameter_count() const {
  std::size_t total = 0;
  for (const auto& conv : convs_) {
    for (Parameter* p :
         const_cast<GraphConv&>(*conv).parameters()) {
      total += p->count();
    }
  }
  return total;
}

double GnnModel::forward_flops(std::int64_t n, std::int64_t m) const {
  double total = 0.0;
  for (const auto& conv : convs_) total += conv->forward_flops(n, m);
  return total;
}

double GnnModel::activation_floats(std::int64_t n) const {
  // Input row + each layer's output row + mirrored gradients (factor 2).
  double per_node = static_cast<double>(config_.in_dim);
  for (const auto& conv : convs_) {
    per_node += static_cast<double>(conv->out_dim());
  }
  return 2.0 * per_node * static_cast<double>(n);
}

double GnnModel::activation_edge_floats(std::int64_t m) const {
  if (config_.kind != ModelKind::kGat) return 0.0;
  // Cached raw scores + alphas (+ their gradients) per edge slot per layer
  // per cost-modeled attention head.
  return 8.0 * 4.0 * static_cast<double>(m) *
         static_cast<double>(convs_.size());
}

}  // namespace gnav::nn
