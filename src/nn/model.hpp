// Multi-layer GNN model container (the M{L, Φ} of Algo. 1): a stack of
// graph convolutions with inter-layer activation + dropout, plus the
// bookkeeping the performance model needs (parameter count, FLOPs,
// activation memory).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "nn/layers.hpp"
#include "support/rng.hpp"

namespace gnav::nn {

enum class ModelKind { kGcn, kSage, kGat };

std::string to_string(ModelKind kind);
ModelKind model_kind_from_string(const std::string& s);

struct ModelConfig {
  ModelKind kind = ModelKind::kSage;
  std::size_t in_dim = 32;
  std::size_t hidden_dim = 64;
  std::size_t out_dim = 8;    // number of classes
  std::size_t num_layers = 2; // >= 1
  float dropout = 0.3f;
};

/// Owns its layers; forward caches activations for one backward pass.
class GnnModel {
 public:
  GnnModel(const ModelConfig& config, Rng& rng);

  /// Full-graph/mini-batch forward. `training` enables dropout.
  tensor::Tensor forward(const graph::CsrGraph& g, const tensor::Tensor& x,
                         bool training, Rng& rng);

  /// Backprop from dL/dlogits; accumulates parameter gradients.
  void backward(const tensor::Tensor& grad_logits);

  std::vector<Parameter*> parameters();
  std::size_t parameter_count() const;

  const ModelConfig& config() const { return config_; }
  std::size_t num_layers() const { return convs_.size(); }

  /// Total forward FLOPs for a batch with n nodes / m edges; backward is
  /// modeled as 2x forward (standard approximation).
  double forward_flops(std::int64_t n, std::int64_t m) const;

  /// Floats of activation memory held live during training on a batch
  /// with n nodes (inputs + one hidden per layer + grads).
  double activation_floats(std::int64_t n) const;

  /// Additional per-edge activation floats (attention scores/coefficients
  /// for GAT; zero for GCN/SAGE).
  double activation_edge_floats(std::int64_t m) const;

 private:
  ModelConfig config_;
  std::vector<std::unique_ptr<GraphConv>> convs_;
  // forward caches
  std::vector<tensor::Tensor> pre_activations_;
  std::vector<tensor::Tensor> dropout_masks_;
  bool last_training_ = false;
};

}  // namespace gnav::nn
