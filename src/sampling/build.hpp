// Internal helpers shared by the sampler implementations to materialize
// MiniBatch objects. Not part of the public sampling API.
//
// The builders are CSR-direct: a counting pass, a prefix sum, and a fill
// (parallelized per row on the thread pool for large batches) produce the
// local subgraph without funneling every edge through a COO GraphBuilder.
// All temporaries come from the caller's SampleScratch; the only
// allocations are the MiniBatch's own output arrays.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "sampling/minibatch.hpp"
#include "sampling/sample_scratch.hpp"

namespace gnav::sampling::detail {

/// Deduplicates `seeds` + `extra` into `scratch.ordered` with seeds
/// occupying the first positions; returns a reference to it. Uses
/// `scratch.visited` for membership.
const std::vector<graph::NodeId>& order_nodes(
    const graph::CsrGraph& parent, std::span<const graph::NodeId> seeds,
    const std::vector<graph::NodeId>& extra, SampleScratch& scratch);

/// Builds a mini-batch from an explicit sampled edge list (global ids).
/// `ordered_nodes` lists every vertex that must appear (seeds first);
/// edges are relabeled to local ids, symmetrized, deduplicated, and
/// stripped of self-loops. Neighbor lists come out sorted ascending.
MiniBatch build_from_edges(
    const graph::CsrGraph& parent, std::span<const graph::NodeId> seeds,
    const std::vector<graph::NodeId>& ordered_nodes,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& edges,
    double sampling_work, SampleScratch& scratch);

/// Builds a mini-batch as the parent-induced subgraph over
/// `ordered_nodes` (seeds first, ids unique).
MiniBatch build_induced(const graph::CsrGraph& parent,
                        std::span<const graph::NodeId> seeds,
                        const std::vector<graph::NodeId>& ordered_nodes,
                        double sampling_work, SampleScratch& scratch);

}  // namespace gnav::sampling::detail
