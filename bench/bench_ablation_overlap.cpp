// Ablation — Eq. 4's host/device pipeline overlap, predicted AND
// measured. The paper's epoch-time model takes max(t_sample + t_transfer,
// t_replace + t_compute) because sampling/transfer of batch i+1 overlaps
// device work on batch i. This bench quantifies that two ways per
// configuration:
//
//   modeled  — the cost model's pipelined vs sequential simulated epoch
//              time (the original ablation);
//   measured — the real pipelined epoch executor (GNAV_PIPELINE=async
//              semantics, runtime/pipeline.hpp) vs the synchronous
//              executor: actual stage-overlap speedup from wall-clock
//              stage accounting, plus the overlap efficiency.
//
// The gap between the two columns is exactly what the estimator's
// f_overlapping correction learns from measured data: a second table
// (the gray-box arm) fits an OverlapModel on an async depth/worker sweep
// and reports, per config, the pipelined epoch-wall error of the fitted
// correction next to the bare Eq. 4 max() — both against the measured
// executor wall of a *separate* depth-4 run. That eval run's wall was
// never seen by the fit, but its shape was profiled (the production
// regime: sweep once, predict future runs); bench_pipeline reports the
// complementary held-out-depth split, where depth 4 is excluded from
// fitting entirely.
#include <cmath>
#include <cstdio>

#include "estimator/overlap_model.hpp"
#include "navigator/navigator.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  navigator::GNNavigator nav(graph::load_dataset("reddit2"),
                             hw::make_profile("rtx4090"),
                             dse::BaseSettings{});
  const int epochs = 2;

  Table table({"config", "pipelined T (s)", "sequential T (s)",
               "Eq.4 speedup", "measured speedup", "overlap eff (%)",
               "host share (%)"});
  struct Arm {
    const char* name;
    runtime::TrainConfig config;
  };
  std::vector<Arm> arms;
  arms.push_back({"pyg (transfer-heavy)", runtime::template_pyg()});
  arms.push_back({"pagraph-full (balanced)", runtime::template_pagraph_full()});
  {
    runtime::TrainConfig c = runtime::template_pyg();
    c.model = nn::ModelKind::kGat;  // compute-heavy device side
    c.name = "gat";
    arms.push_back({"gat (compute-heavy)", c});
  }
  {
    runtime::TrainConfig c = runtime::template_pagraph_full();
    c.compress_features = true;
    c.name = "compressed";
    arms.push_back({"pagraph + int8 link", c});
  }

  // Gray-box arm bookkeeping: per arm, an async depth/worker sweep
  // trains the overlap model and a held-out depth-4 run evaluates it.
  std::vector<estimator::ProfiledRun> fit_rows;
  std::vector<estimator::ProfiledRun> eval_rows;
  const estimator::DatasetStats stats = nav.dataset_stats();

  for (auto& arm : arms) {
    runtime::TrainConfig pipelined = arm.config;
    pipelined.pipeline_overlap = true;
    runtime::TrainConfig sequential = arm.config;
    sequential.pipeline_overlap = false;
    const auto rp = nav.train(pipelined, epochs);
    const auto rs = nav.train(sequential, epochs);

    // Real executor measurement: the same config under the asynchronous
    // pipelined epoch executor. The report is bit-identical to rp except
    // for the wall-clock pipeline fields — which are the point here.
    runtime::RunOptions async_opts;
    async_opts.epochs = epochs;
    async_opts.pipeline.mode = runtime::PipelineMode::kAsync;
    async_opts.pipeline.prefetch_depth = 4;
    const auto ra = nav.backend().run(pipelined, async_opts);
    eval_rows.push_back({stats, pipelined, ra});

    // Overlap-model training sweep: separate runs of the same config
    // across executor shapes. The eval rows above are distinct
    // executions whose measured walls the fit never sees, but depth 4
    // itself is in the sweep — this table scores the
    // profile-once-predict-reruns regime; bench_pipeline holds the
    // whole depth out instead.
    const struct {
      std::size_t depth, workers;
    } kSweep[] = {{1, 1}, {2, 2}, {4, 4}, {8, 4}};
    for (const auto& shape : kSweep) {
      runtime::RunOptions o = async_opts;
      o.pipeline.prefetch_depth = shape.depth;
      o.pipeline.sampler_workers = shape.workers;
      fit_rows.push_back({stats, pipelined, nav.backend().run(pipelined, o)});
    }

    const double host = rp.epoch_phases.sample_s + rp.epoch_phases.transfer_s;
    const double share = host / rp.epoch_phases.total();
    table.add_row({arm.name, format_double(rp.epoch_time_s, 2),
                   format_double(rs.epoch_time_s, 2),
                   format_double(rs.epoch_time_s / rp.epoch_time_s, 2) + "x",
                   format_double(ra.pipeline.measured_speedup(), 2) + "x",
                   format_double(100.0 * ra.pipeline.overlap_efficiency(), 1),
                   format_double(100.0 * share, 1)});
  }
  std::printf("pipeline-overlap ablation (Reddit2 + SAGE unless noted):\n\n"
              "%s\n", table.to_ascii().c_str());
  std::printf(
      "(Eq.4 speedup is the cost model's prediction; measured speedup is\n"
      " the real pipelined executor's serial-stage-work / wall ratio —\n"
      " overlap gains approach 2x when host and device pipelines are\n"
      " balanced, vanish when one side dominates, and the measured column\n"
      " additionally reflects this host's true core count)\n");
  table.write_csv("ablation_overlap.csv");

  // ---- Gray-box overlap arm: fitted correction vs bare Eq. 4 max() ----
  estimator::OverlapModel model(nav.hardware());
  model.fit(fit_rows);

  Table graybox({"config", "measured wall (s)", "fitted wall (s)",
                 "Eq.4 wall (s)", "fitted err (%)", "Eq.4 err (%)"});
  double mae_fit = 0.0;
  double mae_analytic = 0.0;
  std::size_t evaluated = 0;
  for (const auto& row : eval_rows) {
    // Sync or empty rows carry no measured walls — never divide by or
    // score against them.
    if (!estimator::OverlapModel::row_eligible(row)) continue;
    const runtime::PipelineReport& p = row.report.pipeline;
    const double serial = p.measured_sequential_s();
    const double analytic =
        estimator::OverlapModel::analytic_ratio(row.report);
    const estimator::OverlapExecutorShape shape{p.prefetch_depth,
                                                p.sampler_workers};
    const double wall_fit =
        serial * model.predict_ratio(row.config, stats, shape, analytic);
    const double wall_analytic = serial * analytic;
    const double err_fit = std::abs(wall_fit - p.measured_wall_s);
    const double err_analytic = std::abs(wall_analytic - p.measured_wall_s);
    mae_fit += err_fit;
    mae_analytic += err_analytic;
    ++evaluated;
    graybox.add_row(
        {row.config.name, format_double(p.measured_wall_s, 3),
         format_double(wall_fit, 3), format_double(wall_analytic, 3),
         format_double(100.0 * err_fit / p.measured_wall_s, 1),
         format_double(100.0 * err_analytic / p.measured_wall_s, 1)});
  }
  if (evaluated > 0) {
    mae_fit /= static_cast<double>(evaluated);
    mae_analytic /= static_cast<double>(evaluated);
    graybox.add_row({"MAE (aggregate)", "-", "-", "-",
                     format_double(mae_fit, 4),
                     format_double(mae_analytic, 4)});
  }
  std::printf(
      "\ngray-box overlap arm (fitted on %zu async sweep rows, evaluated\n"
      "on separate depth-4 runs — unseen walls, profiled shape; see\n"
      "bench_pipeline for the held-out-depth split. Walls are the\n"
      "executor's real epoch wall-clock):\n\n%s\n",
      model.training_rows(), graybox.to_ascii().c_str());
  if (evaluated > 0) {
    std::printf("aggregate wall MAE: fitted %.4fs vs Eq.4 %.4fs (%s)\n",
                mae_fit, mae_analytic,
                mae_fit <= mae_analytic ? "fitted wins" : "analytic wins");
  } else {
    std::printf("no async-executor eval rows — gray-box arm skipped\n");
  }
  graybox.write_csv("ablation_overlap_graybox.csv");
  return 0;
}
