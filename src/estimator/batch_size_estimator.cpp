#include "estimator/batch_size_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "estimator/features.hpp"
#include "support/error.hpp"

namespace gnav::estimator {
namespace {

/// Fig. 5 ground truth: the measured mean |V_i| of a profiled run.
double measured_batch_nodes(const ProfiledRun& run) {
  return run.report.avg_batch_nodes;
}

}  // namespace

void GrayBoxBatchSizeEstimator::fit(const std::vector<ProfiledRun>& runs) {
  GNAV_CHECK(!runs.empty(), "no profiled runs");
  ml::Matrix x;
  std::vector<double> y;
  hw::HardwareProfile dummy_hw;  // features also carry hw, keep per-run hw
  for (const ProfiledRun& run : runs) {
    const double analytic = analytic_batch_nodes(run.config, run.stats);
    const double measured = measured_batch_nodes(run);
    if (analytic <= 0.0 || measured <= 0.0) continue;
    x.push_back(extract_features(run.config, run.stats, dummy_hw));
    // Learn the log-ratio: multiplicative penalties compose additively in
    // log space, which trees fit far more stably than raw ratios.
    y.push_back(std::log(measured / analytic));
  }
  GNAV_CHECK(!x.empty(), "no usable profiled runs");
  penalty_model_.fit(x, y);
  fitted_ = true;
}

double GrayBoxBatchSizeEstimator::predict(
    const runtime::TrainConfig& config, const DatasetStats& stats,
    const hw::HardwareProfile& hw) const {
  GNAV_CHECK(fitted_, "predict before fit");
  const double analytic = analytic_batch_nodes(config, stats);
  const double log_penalty =
      penalty_model_.predict_one(extract_features(config, stats, hw));
  // The penalty corrects overlap mis-estimation; clamp to a sane band so
  // an extrapolating tree cannot produce absurd batch sizes.
  const double penalty = std::clamp(std::exp(log_penalty), 0.1, 10.0);
  const double n = static_cast<double>(stats.profile.num_nodes);
  return std::clamp(analytic * penalty,
                    static_cast<double>(std::min<std::size_t>(
                        config.batch_size,
                        static_cast<std::size_t>(std::max(n, 1.0)))),
                    n);
}

void BlackBoxBatchSizeEstimator::fit(const std::vector<ProfiledRun>& runs) {
  GNAV_CHECK(!runs.empty(), "no profiled runs");
  ml::Matrix x;
  std::vector<double> y;
  hw::HardwareProfile dummy_hw;
  for (const ProfiledRun& run : runs) {
    x.push_back(extract_features(run.config, run.stats, dummy_hw));
    y.push_back(measured_batch_nodes(run));
  }
  model_.fit(x, y);
}

double BlackBoxBatchSizeEstimator::predict(
    const runtime::TrainConfig& config, const DatasetStats& stats,
    const hw::HardwareProfile& hw) const {
  GNAV_CHECK(model_.is_fitted(), "predict before fit");
  return std::max(
      model_.predict_one(extract_features(config, stats, hw)), 1.0);
}

}  // namespace gnav::estimator
