"""Escape hatches: inline annotations and the justified allowlist.

Pure Python — no libclang. Both hatches REQUIRE a human-readable
justification; a bare suppression is a config error, not a silent pass
(same policy as determinism_lint's `gnav-lint(<rule>): <reason>`).

Inline form, on the flagged line or the line directly above:

    // gnav-analyzer(<check-name>): <reason>

Allowlist form (tools/gnav_analyzer/ALLOWLIST), one entry per line:

    <repo-relative-path>:<check-name>: <justification>
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

_INLINE_RE = re.compile(
    r"//\s*gnav-analyzer\((?P<check>[a-z0-9-]+)\)(?P<rest>.*)"
)
_ALLOWLIST_RE = re.compile(
    r"^(?P<path>[^:#\s][^:]*):(?P<check>[a-z0-9-]+):\s*(?P<why>.*)$"
)


class SuppressionError(Exception):
    """A suppression without a justification (CLI exit: config error)."""


@dataclass(frozen=True)
class AllowlistEntry:
    path: str  # repo-relative, forward slashes
    check: str
    justification: str


def inline_suppressions(text: str) -> tuple[dict[int, set[str]], list[str]]:
    """Map 1-based line number -> checks suppressed AT that line.

    An annotation blesses its own line and the line directly below it
    (annotation-above style), never further — the same adjacency the
    lint's reach fix enforces. Returns (suppressions, errors); an
    annotation with no reason is an error, not a suppression.
    """
    by_line: dict[int, set[str]] = {}
    errors: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _INLINE_RE.search(line)
        if not m:
            continue
        rest = m.group("rest").strip()
        if not rest.startswith(":") or not rest[1:].strip():
            errors.append(
                f"line {lineno}: gnav-analyzer({m.group('check')}) "
                "annotation needs a justification — "
                "'// gnav-analyzer(<check>): <reason>'"
            )
            continue
        for target in (lineno, lineno + 1):
            by_line.setdefault(target, set()).add(m.group("check"))
    return by_line, errors


def load_allowlist(path: Path, known_checks: set[str]) -> list[AllowlistEntry]:
    """Parse the allowlist; every entry must carry a justification."""
    if not path.is_file():
        return []
    entries: list[AllowlistEntry] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _ALLOWLIST_RE.match(line)
        if not m or not m.group("why").strip():
            raise SuppressionError(
                f"{path}:{lineno}: allowlist entry needs "
                "'<path>:<check>: <justification>' — got: " + line
            )
        check = m.group("check")
        if check not in known_checks:
            raise SuppressionError(
                f"{path}:{lineno}: unknown check '{check}' "
                f"(known: {', '.join(sorted(known_checks))})"
            )
        entries.append(
            AllowlistEntry(
                path=m.group("path").strip().replace("\\", "/"),
                check=check,
                justification=m.group("why").strip(),
            )
        )
    return entries


def allowlisted(
    entries: list[AllowlistEntry], rel_path: str, check: str
) -> AllowlistEntry | None:
    rel = rel_path.replace("\\", "/")
    for e in entries:
        if e.check == check and e.path == rel:
            return e
    return None
