// Known-good: the callback is copied out under the lock and invoked
// after it drops; virtual dispatch and factory calls happen before the
// lock is taken. This is the exact shape of the fixed log_emit and
// BackendFactory::create.
#include "gnav_stub.hpp"

struct Device {
  virtual ~Device();
  virtual void poll();
};

void copy_out_then_call(const std::function<void()>& notify,
                        gnav::support::Mutex& mu) {
  std::function<void()> pending;
  {
    gnav::support::MutexLock lock(mu);
    pending = notify;
  }
  pending();
}

void virtual_before_lock(Device& dev, gnav::support::Mutex& mu) {
  dev.poll();
  gnav::support::MutexLock lock(mu);
  int generation = 0;
  (void)generation;
}

void factory_outside_lock(gnav::support::Mutex& mu) {
  const gnav::compute::ComputeBackend* backend =
      gnav::compute::BackendFactory::create("cpu-scalar");
  gnav::support::MutexLock lock(mu);
  (void)backend;
}
