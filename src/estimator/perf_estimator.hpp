// Gray-box performance estimator (paper Sec. 3.3, Eq. 4-11).
//
// White-box skeleton: Eq. 4's pipelined epoch time over analytic phase
// volumes, Eq. 9/10's memory decomposition — evaluated with the trained
// hardware cost model. Black-box members: gradient-boosted trees for the
// quantities theory cannot pin down (batch overlap penalty, cache hit
// rate, subgraph density, sampling work per node, residual corrections,
// and the Eq. 11 accuracy delta, which the paper concedes "is still more
// like a black box").
//
// The estimator is hardware-profile-specific, like the paper's (it is
// trained from profiles gathered on the platform it predicts for).
#pragma once

#include <vector>

#include "estimator/batch_size_estimator.hpp"
#include "estimator/profile_collector.hpp"
#include "hw/cost_model.hpp"
#include "ml/gradient_boosting.hpp"

namespace gnav::estimator {

struct PerfPrediction {
  double time_s = 0.0;      // T  (epoch seconds, original scale)
  double memory_gb = 0.0;   // Γ
  double accuracy = 0.0;    // Acc (short-horizon test accuracy)
  // Intermediate white-box quantities (exposed for tests/diagnostics).
  double batch_nodes = 0.0;
  double batch_edges = 0.0;
  double cache_hit_rate = 0.0;
};

class PerfEstimator {
 public:
  explicit PerfEstimator(hw::HardwareProfile hw);

  /// Fits all learned components on a profiled-run corpus (typically the
  /// leave-one-dataset-out corpus + power-law augmentation).
  void fit(const std::vector<ProfiledRun>& runs);

  PerfPrediction predict(const runtime::TrainConfig& config,
                         const DatasetStats& stats) const;

  bool is_fitted() const { return fitted_; }
  const GrayBoxBatchSizeEstimator& batch_size_model() const {
    return batch_model_;
  }

  /// Analytic Eq. 9/10 components (no learning involved).
  double analytic_model_memory_gb(const runtime::TrainConfig& config,
                                  const DatasetStats& stats) const;
  double analytic_cache_memory_gb(const runtime::TrainConfig& config,
                                  const DatasetStats& stats) const;

  /// White-box-only T prediction (no learned residual) — the ablation arm.
  /// `work_per_node` < 0 selects the neutral analytic sampling-work
  /// multiplier; the full gray-box path passes the learned value.
  double predict_time_analytic(const runtime::TrainConfig& config,
                               const DatasetStats& stats, double batch_nodes,
                               double batch_edges, double hit_rate,
                               double work_per_node = -1.0) const;

 private:
  hw::HardwareProfile hw_;
  hw::CostModel cost_;
  GrayBoxBatchSizeEstimator batch_model_;
  ml::GradientBoostingRegressor hit_model_;
  ml::GradientBoostingRegressor density_model_;   // log(edges per node)
  ml::GradientBoostingRegressor work_model_;      // log(sampling work per node)
  ml::GradientBoostingRegressor time_residual_;   // log(T_meas / T_white)
  ml::GradientBoostingRegressor mem_residual_;    // log(Γ_meas / Γ_white)
  ml::GradientBoostingRegressor acc_model_;       // Eq. 11 black-box
  bool fitted_ = false;
};

}  // namespace gnav::estimator
