// Known-bad: public methods hand out a reference and a pointer into a
// GNAV_GUARDED_BY field — live aliases the next locked mutation
// rewrites under the caller (the JobScheduler::outcome()/feedback()
// bug class).
#include "gnav_stub.hpp"

class Tally {
 public:
  const int& live_count() const {
    return count_;  // expect-finding(guarded-ref-escape)
  }
  const int* raw_count() const {
    return &count_;  // expect-finding(guarded-ref-escape)
  }

 private:
  mutable gnav::support::Mutex mu_;
  int count_ GNAV_GUARDED_BY(mu_) = 0;
};
