#include "nn/aggregate.hpp"

#include "compute/backend.hpp"

namespace gnav::nn {

using compute::AggregateKind;
using tensor::Tensor;

Tensor aggregate_mean(const graph::CsrGraph& g, const Tensor& x) {
  return compute::current_backend().aggregate(AggregateKind::kMean, g, x);
}

Tensor aggregate_mean_transpose(const graph::CsrGraph& g, const Tensor& dy) {
  // On a symmetric edge set the scatter dX[u] += dY[v]/deg(v) over edges
  // (v,u) is exactly the pull dX[u] = sum_{v in N(u)} dY[v]/deg(v).
  return compute::current_backend().aggregate(AggregateKind::kMeanTranspose,
                                              g, dy);
}

Tensor aggregate_gcn(const graph::CsrGraph& g, const Tensor& x) {
  return compute::current_backend().aggregate(AggregateKind::kGcn, g, x);
}

Tensor aggregate_sum(const graph::CsrGraph& g, const Tensor& x) {
  return compute::current_backend().aggregate(AggregateKind::kSum, g, x);
}

double aggregation_flops(const graph::CsrGraph& g, std::size_t cols) {
  return 2.0 * static_cast<double>(g.num_edges()) *
         static_cast<double>(cols);
}

}  // namespace gnav::nn
