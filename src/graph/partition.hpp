// Graph partitioning — the substrate behind cluster-based mini-batching
// (Cluster-GCN) and locality-aware seed grouping. A lightweight greedy
// BFS partitioner stands in for METIS: it grows parts from high-degree
// seeds, bounding part sizes to ±50% of the average, which is enough to
// give cluster batches real community locality on our generators.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr_graph.hpp"

namespace gnav::graph {

struct Partitioning {
  /// part_of[v] = part id in [0, num_parts).
  std::vector<int> part_of;
  /// members[p] = sorted vertex list of part p.
  std::vector<std::vector<NodeId>> members;
  int num_parts = 0;

  /// Fraction of edges whose endpoints fall in different parts.
  double edge_cut_fraction(const CsrGraph& g) const;

  /// Throws gnav::Error if the structure is inconsistent with `g`.
  void validate(const CsrGraph& g) const;
};

/// Greedy BFS partitioning into `num_parts` balanced parts.
/// Deterministic: part seeds are chosen by descending degree.
Partitioning bfs_partition(const CsrGraph& g, int num_parts);

}  // namespace gnav::graph
