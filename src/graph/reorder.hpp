// Vertex reordering — the "Reorder" knob in the paper's model-design /
// computation category (Fig. 3). Degree ordering groups hot vertices,
// which improves static-cache coverage bookkeeping; BFS ordering improves
// locality for neighbor expansion on the simulated host.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace gnav::graph {

enum class ReorderKind { kNone, kDegreeDescending, kBfs };

/// Returns perm where perm[new_id] = old_id.
std::vector<NodeId> degree_descending_order(const CsrGraph& g);
std::vector<NodeId> bfs_order(const CsrGraph& g, NodeId source = 0);

/// Relabels the graph: new vertex i is old vertex perm[i].
CsrGraph apply_permutation(const CsrGraph& g,
                           const std::vector<NodeId>& perm);

/// Inverse permutation: inv[old_id] = new_id.
std::vector<NodeId> invert_permutation(const std::vector<NodeId>& perm);

}  // namespace gnav::graph
