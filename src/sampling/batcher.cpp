#include "sampling/batcher.hpp"

#include <chrono>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace gnav::sampling {

SeedBatcher::SeedBatcher(std::vector<graph::NodeId> train_nodes,
                         std::size_t batch_size)
    : train_nodes_(std::move(train_nodes)), batch_size_(batch_size) {
  GNAV_CHECK(!train_nodes_.empty(), "no training nodes");
  GNAV_CHECK(batch_size_ >= 1, "batch size must be >= 1");
}

std::size_t SeedBatcher::batches_per_epoch() const {
  return (train_nodes_.size() + batch_size_ - 1) / batch_size_;
}

std::vector<std::vector<graph::NodeId>> SeedBatcher::epoch_batches(Rng& rng) {
  rng.shuffle(train_nodes_);
  std::vector<std::vector<graph::NodeId>> out;
  out.reserve(batches_per_epoch());
  for (std::size_t start = 0; start < train_nodes_.size();
       start += batch_size_) {
    const std::size_t end =
        std::min(start + batch_size_, train_nodes_.size());
    out.emplace_back(train_nodes_.begin() + static_cast<std::ptrdiff_t>(start),
                     train_nodes_.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return out;
}

MiniBatchLoader::MiniBatchLoader(
    const Sampler& sampler, const graph::CsrGraph& g,
    const std::vector<std::vector<graph::NodeId>>& seed_batches,
    std::uint64_t epoch_seed, support::ThreadPool& pool, std::size_t window)
    : sampler_(&sampler),
      graph_(&g),
      seed_batches_(&seed_batches),
      epoch_seed_(epoch_seed),
      pool_(&pool),
      window_(std::max<std::size_t>(1, window)) {
  top_up();
}

MiniBatchLoader::~MiniBatchLoader() {
  // Outstanding builds reference *this; wait them out before members die.
  for (auto& fut : pending_) {
    try {
      fut.get();
    } catch (...) {
      // Destruction is only reached with builds in flight when unwinding
      // from a consumer exception; the build's own error is secondary.
    }
  }
}

void MiniBatchLoader::top_up() {
  while (next_index_ < seed_batches_->size() &&
         pending_.size() < window_) {
    const std::size_t i = next_index_++;
    pending_.push_back(pool_->submit([this, i] {
      Rng rng(support::task_seed(epoch_seed_, i));
      return sampler_->sample(*graph_, (*seed_batches_)[i], rng);
    }));
  }
}

MiniBatch MiniBatchLoader::next() {
  GNAV_CHECK(!pending_.empty(), "MiniBatchLoader exhausted");
  std::future<MiniBatch> fut = std::move(pending_.front());
  pending_.pop_front();
  top_up();
  // gnav-lint(wall-clock): profiler wall — caller-blocked seconds only.
  const auto t0 = std::chrono::steady_clock::now();
  fut.wait();
  wait_s_ += std::chrono::duration<double>(
                 // gnav-lint(wall-clock): profiler wall — closes t0 above.
                 std::chrono::steady_clock::now() - t0)
                 .count();
  return fut.get();
}

}  // namespace gnav::sampling
