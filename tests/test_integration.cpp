// Cross-module integration tests: the paper's headline behaviors
// reproduced end-to-end on small inputs — baseline orderings (Table 1
// shape), Fig. 1 trade-offs, guideline quality vs baselines, and the
// Pareto-matching property of Fig. 6 on a reduced space.
#include <gtest/gtest.h>

#include "dse/decision_maker.hpp"
#include "dse/design_space.hpp"
#include "dse/explorer.hpp"
#include "navigator/navigator.hpp"
#include "runtime/templates.hpp"
#include "support/error.hpp"

namespace gnav {
namespace {

/// Shared expensive setup: reddit2 analogue + estimator trained on a
/// small cross-dataset corpus.
class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    nav_ = new navigator::GNNavigator(graph::load_dataset("reddit2"),
                                      hw::make_profile("rtx4090"),
                                      dse::BaseSettings{});
    std::vector<estimator::ProfiledRun> corpus;
    estimator::CollectorOptions opts;
    opts.configs_per_dataset = 10;
    opts.epochs = 1;
    for (const char* name : {"ogbn-arxiv", "ogbn-products"}) {
      const auto ds = graph::load_dataset(name);
      auto runs = estimator::collect_profiles(ds, nav_->hardware(), opts);
      corpus.insert(corpus.end(), runs.begin(), runs.end());
    }
    const auto aug = graph::make_power_law_augmentation(0, 9);
    auto runs = estimator::collect_profiles(aug, nav_->hardware(), opts);
    corpus.insert(corpus.end(), runs.begin(), runs.end());
    nav_->prepare(corpus);
  }
  static void TearDownTestSuite() { delete nav_; }
  static navigator::GNNavigator* nav_;
};

navigator::GNNavigator* IntegrationFixture::nav_ = nullptr;

TEST_F(IntegrationFixture, BaselineOrderingMatchesPaperShape) {
  // Paper Table 1 (RD2+SAGE): Pa-Full and 2P are ~2x faster than PyG;
  // Pa-Low is marginal; Pa-Full costs the most memory.
  const auto pyg = nav_->reproduce("pyg", 2);
  const auto pa_full = nav_->reproduce("pagraph-full", 2);
  const auto pa_low = nav_->reproduce("pagraph-low", 2);
  const auto twop = nav_->reproduce("2pgraph", 2);

  EXPECT_LT(pa_full.epoch_time_s, 0.7 * pyg.epoch_time_s);
  EXPECT_LT(twop.epoch_time_s, 0.7 * pyg.epoch_time_s);
  EXPECT_LT(pa_low.epoch_time_s, pyg.epoch_time_s);
  EXPECT_GT(pa_low.epoch_time_s, 0.8 * pyg.epoch_time_s);
  // PaGraph trades memory for speed (paper Fig. 1a).
  EXPECT_GT(pa_full.peak_memory_gb, pyg.peak_memory_gb);
  // 2PGraph saves memory relative to PyG (paper Table 1).
  EXPECT_LT(twop.peak_memory_gb, pyg.peak_memory_gb);
  // hit-rate ordering follows cache size & bias
  EXPECT_GT(pa_full.cache_hit_rate, pa_low.cache_hit_rate);
  EXPECT_GT(twop.cache_hit_rate, pa_low.cache_hit_rate);
}

TEST_F(IntegrationFixture, Fig1aCacheMemorySpeedTradeoff) {
  // Sweep PaGraph cache ratio: epoch time falls, memory grows.
  double prev_time = 1e18;
  double prev_mem = 0.0;
  for (double ratio : {0.05, 0.2, 0.5}) {
    runtime::TrainConfig c = runtime::template_pagraph_full();
    c.cache_ratio = ratio;
    const auto r = nav_->train(c, 2);
    EXPECT_LT(r.epoch_time_s, prev_time);
    EXPECT_GT(r.peak_memory_gb, prev_mem);
    prev_time = r.epoch_time_s;
    prev_mem = r.peak_memory_gb;
  }
}

TEST_F(IntegrationFixture, GuidelineIsNoWorseThanSeededBaselines) {
  // The explorer seeds with the baseline templates, so the balanced
  // guideline's *predicted* scalarized score can never lose to them.
  dse::RuntimeConstraints constraints;
  constraints.max_memory_gb = nav_->hardware().device.memory_gb;
  const auto g =
      nav_->generate_guideline(dse::targets_balance(), constraints);
  const auto& est = nav_->estimator();
  const dse::DecisionMaker maker(dse::targets_balance());
  // Median reference from baseline predictions.
  std::vector<dse::PerfPoint> base_points;
  for (const auto& tmpl : runtime::all_templates()) {
    const auto p = est.predict(tmpl, nav_->dataset_stats());
    base_points.push_back({p.time_s, p.memory_gb, p.accuracy});
  }
  const dse::PerfPoint ref = base_points[0];
  const dse::PerfPoint chosen{g.predicted.time_s, g.predicted.memory_gb,
                              g.predicted.accuracy};
  for (const auto& bp : base_points) {
    EXPECT_LE(maker.score(chosen, ref), maker.score(bp, ref) + 1e-9);
  }
}

TEST_F(IntegrationFixture, ExtremeTimeMemoryGuidelineBeatsPyg) {
  // Headline claim direction: an Ex-TM guideline is substantially faster
  // and leaner than vanilla PyG with bounded accuracy loss.
  dse::RuntimeConstraints constraints;
  const auto g = nav_->generate_guideline(
      dse::targets_extreme_time_memory(), constraints);
  const auto pyg = nav_->reproduce("pyg", 3);
  const auto mine = nav_->train(g.config, 3);
  EXPECT_LT(mine.epoch_time_s, 0.75 * pyg.epoch_time_s);
  EXPECT_LT(mine.peak_memory_gb, 1.15 * pyg.peak_memory_gb);
  EXPECT_GT(mine.test_accuracy, pyg.test_accuracy - 0.08);
}

TEST_F(IntegrationFixture, EstimatorParetoOverlapsGroundTruthPareto) {
  // Fig. 6 property, shrunk: over a reduced space, candidates the
  // estimator places on the Pareto front should be near the measured
  // front (we check that the predicted-front configs' measured points
  // are not badly dominated).
  const dse::DesignSpace space =
      dse::DesignSpace::reduced(dse::BaseSettings{});
  const dse::Explorer explorer(space, nav_->estimator(),
                               nav_->dataset_stats());
  const auto result = explorer.explore_exhaustive({});
  ASSERT_GT(result.feasible.size(), 10u);
  ASSERT_FALSE(result.pareto.empty());

  // Measure a subsample: all predicted-front configs + a few others.
  std::vector<dse::PerfPoint> measured;
  std::vector<bool> predicted_front;
  std::size_t step = std::max<std::size_t>(
      1, result.feasible.size() / 12);
  std::set<std::size_t> chosen(result.pareto.begin(), result.pareto.end());
  for (std::size_t i = 0; i < result.feasible.size(); i += step) {
    chosen.insert(i);
  }
  for (std::size_t idx : chosen) {
    const auto r = nav_->train(result.feasible[idx].config, 1);
    measured.push_back({r.epoch_time_s, r.peak_memory_gb, r.test_accuracy});
    predicted_front.push_back(
        std::find(result.pareto.begin(), result.pareto.end(), idx) !=
        result.pareto.end());
  }
  // At least one predicted-front candidate lies on the measured front.
  const auto measured_front = dse::pareto_front(measured);
  bool overlap = false;
  for (auto idx : measured_front) {
    if (predicted_front[idx]) overlap = true;
  }
  EXPECT_TRUE(overlap);
}

}  // namespace
}  // namespace gnav
