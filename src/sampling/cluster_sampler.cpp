#include "sampling/cluster_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "sampling/build.hpp"
#include "sampling/sample_scratch.hpp"
#include "support/error.hpp"

namespace gnav::sampling {

ClusterSampler::ClusterSampler(int num_parts, int max_clusters_per_batch)
    : num_parts_(num_parts),
      max_clusters_per_batch_(max_clusters_per_batch) {
  GNAV_CHECK(num_parts_ >= 1, "need at least one part");
  GNAV_CHECK(max_clusters_per_batch_ >= 1,
             "need at least one cluster per batch");
}

std::vector<int> ClusterSampler::hop_list() const {
  // Cluster sampling has no per-hop fanout; within the Eq. 2 abstraction
  // it behaves like one full-neighborhood hop restricted to the cluster.
  return {-1};
}

std::shared_ptr<const graph::Partitioning> ClusterSampler::partitioning(
    const graph::CsrGraph& g) const {
  const support::MutexLock lock(cache_mutex_);
  if (cached_graph_ != &g) {
    const int parts = static_cast<int>(
        std::min<graph::NodeId>(num_parts_, g.num_nodes()));
    cached_partition_ = std::make_shared<const graph::Partitioning>(
        graph::bfs_partition(g, parts));
    cached_graph_ = &g;
  }
  return cached_partition_;
}

MiniBatch ClusterSampler::sample(const graph::CsrGraph& g,
                                 std::span<const graph::NodeId> seeds,
                                 Rng& rng) const {
  GNAV_CHECK(!seeds.empty(), "cannot sample from an empty seed set");
  const auto part_ptr = partitioning(g);
  const graph::Partitioning& part = *part_ptr;

  // Count seeds per cluster, keep the most seed-heavy clusters. Part ids
  // are dense [0, num_parts), so a flat vector counts them; it used to be
  // an unordered_map whose iteration fed `ranked` in hash order — only
  // the total-order sort below kept that deterministic, and the
  // determinism lint (unordered-iteration rule) now bans the pattern
  // outright rather than trusting every future edit to preserve the sort.
  std::vector<int> seed_count(static_cast<std::size_t>(part.num_parts), 0);
  for (graph::NodeId s : seeds) {
    ++seed_count[static_cast<std::size_t>(
        part.part_of[static_cast<std::size_t>(s)])];
  }
  std::vector<std::pair<int, int>> ranked;
  for (int p = 0; p < part.num_parts; ++p) {
    const int count = seed_count[static_cast<std::size_t>(p)];
    if (count > 0) ranked.emplace_back(p, count);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  // Target cluster count scales with the seed batch's share of the
  // graph (Cluster-GCN picks q clusters such that q * avg_part ~= |B_0|),
  // capped by the configured maximum.
  const double share = static_cast<double>(seeds.size()) /
                       static_cast<double>(g.num_nodes());
  const auto target = static_cast<std::size_t>(std::max(
      1.0, std::round(share * static_cast<double>(part.num_parts))));
  const auto keep = std::min<std::size_t>(
      {ranked.size(), target,
       static_cast<std::size_t>(max_clusters_per_batch_)});

  SampleScratch& sc = SampleScratch::local();
  sc.collected.clear();
  double work = static_cast<double>(seeds.size());
  for (std::size_t i = 0; i < keep; ++i) {
    const auto& members =
        part.members[static_cast<std::size_t>(ranked[i].first)];
    sc.collected.insert(sc.collected.end(), members.begin(), members.end());
    work += static_cast<double>(members.size());
  }
  (void)rng;  // cluster choice is deterministic given the seed batch

  const auto& ordered = detail::order_nodes(g, seeds, sc.collected, sc);
  MiniBatch mb = detail::build_induced(g, seeds, ordered, work, sc);
  mb.sampling_work += static_cast<double>(mb.subgraph.num_edges()) * 0.1;
  return mb;
}

}  // namespace gnav::sampling
