// Fig. 1 reproduction — "Profiling on existing GNN training frameworks".
//
// (a) PaGraph's training-speedup / memory-consumption trade-off: sweeping
//     the static cache ratio on Reddit2+SAGE, epoch time falls while
//     memory consumption grows (the paper reports 1.86x speedup at the
//     largest cache vs the smallest).
// (b) 2PGraph's epoch-time / accuracy trade-off against PaGraph: per-epoch
//     training accuracy curves plus the epoch-time speedup (paper: 2.45x
//     with ~3% accuracy drop).
#include <cstdio>

#include "navigator/navigator.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  graph::Dataset dataset = graph::load_dataset("reddit2");
  navigator::GNNavigator nav(std::move(dataset),
                             hw::make_profile("rtx4090"),
                             dse::BaseSettings{});
  const int epochs = 4;

  // ---- Fig. 1a: PaGraph cache-ratio sweep --------------------------------
  std::printf("Fig. 1a — PaGraph speedup vs memory (Reddit2 + SAGE)\n\n");
  Table fig1a({"cache ratio", "memory (MiB)", "epoch time (s)",
               "speedup vs smallest", "hit rate (%)"});
  double slowest = 0.0;
  std::vector<std::tuple<double, double, double, double>> rows;
  for (double ratio : {0.02, 0.08, 0.2, 0.35, 0.5}) {
    runtime::TrainConfig c = runtime::template_pagraph_full();
    c.cache_ratio = ratio;
    const auto r = nav.train(c, epochs);
    if (slowest == 0.0) slowest = r.epoch_time_s;
    rows.emplace_back(ratio, r.peak_memory_gb * 1024.0, r.epoch_time_s,
                      r.cache_hit_rate);
  }
  for (const auto& [ratio, mem, t, hit] : rows) {
    fig1a.add_row({format_double(ratio, 2), format_double(mem, 1),
                   format_double(t, 2), format_double(slowest / t, 2) + "x",
                   format_double(100.0 * hit, 1)});
  }
  std::printf("%s\n", fig1a.to_ascii().c_str());
  fig1a.write_csv("fig1a_pagraph_tradeoff.csv");

  // ---- Fig. 1b: 2PGraph vs PaGraph accuracy/time curves ------------------
  std::printf("Fig. 1b — 2PGraph vs PaGraph (Reddit2 + SAGE)\n\n");
  // The paper's Fig. 1b profiles PaGraph on a memory-limited cluster
  // node; the pagraph-low template models that setting.
  const auto pa = nav.reproduce("pagraph-low", epochs);
  const auto twop = nav.reproduce("2pgraph", epochs);
  Table fig1b({"epoch", "PaGraph train acc (%)", "2PGraph train acc (%)",
               "PaGraph epoch time (s)", "2PGraph epoch time (s)"});
  for (int e = 0; e < epochs; ++e) {
    fig1b.add_row(
        {std::to_string(e + 1),
         format_double(100.0 * pa.epoch_train_accuracy[static_cast<std::size_t>(e)], 2),
         format_double(100.0 * twop.epoch_train_accuracy[static_cast<std::size_t>(e)], 2),
         format_double(pa.epoch_times_s[static_cast<std::size_t>(e)], 2),
         format_double(twop.epoch_times_s[static_cast<std::size_t>(e)], 2)});
  }
  std::printf("%s\n", fig1b.to_ascii().c_str());
  fig1b.write_csv("fig1b_2pgraph_vs_pagraph.csv");
  std::printf(
      "2PGraph speedup over PaGraph: %.2fx   test-accuracy delta: %+.2f%%\n",
      pa.epoch_time_s / twop.epoch_time_s,
      100.0 * (twop.test_accuracy - pa.test_accuracy));
  std::printf("(paper reports 2.45x speedup at ~3%% accuracy drop; the\n"
              " shape — faster with an accuracy cost — is the claim)\n");
  return 0;
}
