#include <algorithm>

#include "sampling/build.hpp"
#include "sampling/sample_scratch.hpp"
#include "sampling/sampler.hpp"
#include "support/error.hpp"

namespace gnav::sampling {

LayerWiseSampler::LayerWiseSampler(std::vector<int> hops, SamplingBias bias)
    : hops_(std::move(hops)), bias_(bias) {
  GNAV_CHECK(!hops_.empty(), "hop list must be non-empty");
  for (int k : hops_) {
    GNAV_CHECK(k >= 1, "layer-wise fanout must be >= 1");
  }
}

MiniBatch LayerWiseSampler::sample(const graph::CsrGraph& g,
                                   std::span<const graph::NodeId> seeds,
                                   Rng& rng) const {
  GNAV_CHECK(!seeds.empty(), "cannot sample from an empty seed set");
  SampleScratch& sc = SampleScratch::local();
  sc.frontier.assign(seeds.begin(), seeds.end());
  sc.collected.clear();
  sc.edges.clear();
  double work = static_cast<double>(seeds.size());

  for (int k : hops_) {
    // Candidate pool: union of the frontier's neighborhoods. FastGCN
    // samples Δ_l nodes layer-wide (Eq. 3: E[k_l] = Δ_l / |B_{l-1}| x μ),
    // here Δ_l = k x |frontier|, importance-weighted by degree.
    sc.pool.clear();
    sc.visited.begin_pass(static_cast<std::size_t>(g.num_nodes()));
    for (graph::NodeId v : sc.frontier) {
      for (graph::NodeId u : g.neighbors(v)) {
        if (sc.visited.insert(u)) sc.pool.push_back(u);
      }
      // Pool construction is a vectorized frontier-neighborhood scan.
      work += 0.25 * static_cast<double>(g.degree(v));
    }
    if (sc.pool.empty()) break;
    const auto delta = static_cast<std::size_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(sc.pool.size()),
                               static_cast<std::int64_t>(k) *
                                   static_cast<std::int64_t>(
                                       sc.frontier.size())));
    // Degree-proportional importance sampling (FastGCN uses q(u) ∝ |N(u)|),
    // modulated by the locality bias when active. The pool is fresh per
    // layer, so the alias table is rebuilt per layer — O(pool) once,
    // then every draw is O(1) instead of an O(log pool) binary search.
    sc.weights.resize(sc.pool.size());
    for (std::size_t i = 0; i < sc.pool.size(); ++i) {
      sc.weights[i] = static_cast<double>(g.degree(sc.pool[i]) + 1) *
                      bias_.weight(sc.pool[i]);
    }
    sc.alias.build(sc.weights);
    sc.chosen.begin_pass(sc.pool.size());
    sc.mask.begin_pass(static_cast<std::size_t>(g.num_nodes()));
    sc.next_frontier.clear();
    std::size_t attempts = 0;
    const std::size_t max_attempts = delta * 6 + 10;
    while (sc.next_frontier.size() < delta && attempts < max_attempts) {
      ++attempts;
      const std::size_t idx = sc.alias.sample(rng);
      if (sc.chosen.insert(static_cast<std::int64_t>(idx))) {
        sc.mask.insert(sc.pool[idx]);
        sc.next_frontier.push_back(sc.pool[idx]);
      }
    }
    work += static_cast<double>(attempts);

    // Keep every parent-graph edge between the frontier and the chosen
    // layer (this is the bipartite structure FastGCN trains on).
    for (graph::NodeId v : sc.frontier) {
      for (graph::NodeId u : g.neighbors(v)) {
        if (sc.mask.contains(u)) {
          sc.edges.emplace_back(v, u);
        }
      }
    }
    std::sort(sc.next_frontier.begin(), sc.next_frontier.end());
    sc.collected.insert(sc.collected.end(), sc.next_frontier.begin(),
                        sc.next_frontier.end());
    std::swap(sc.frontier, sc.next_frontier);
  }

  const auto& ordered = detail::order_nodes(g, seeds, sc.collected, sc);
  return detail::build_from_edges(g, seeds, ordered, sc.edges, work, sc);
}

}  // namespace gnav::sampling
