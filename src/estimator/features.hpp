// Featurization of (candidate configuration, dataset statistics, hardware
// profile) for the black-box components of the gray-box estimator. The
// vector deliberately includes the *analytic* quantities (Eq. 12 batch
// size, cache coverage prior, FLOP estimate) alongside raw knobs — that
// injection of white-box structure is what makes the learned residuals
// easy to fit from few profiled runs.
#pragma once

#include <string>
#include <vector>

#include "estimator/dataset_stats.hpp"
#include "hw/platform.hpp"
#include "runtime/train_config.hpp"

namespace gnav::estimator {

/// Ordered feature names (for documentation and debugging).
const std::vector<std::string>& feature_names();

std::vector<double> extract_features(const runtime::TrainConfig& config,
                                     const DatasetStats& stats,
                                     const hw::HardwareProfile& hw);

/// Analytic white-box helpers shared by the estimator internals.
double analytic_batch_nodes(const runtime::TrainConfig& config,
                            const DatasetStats& stats);
double analytic_cache_hit_prior(const runtime::TrainConfig& config,
                                const DatasetStats& stats);
double analytic_model_flops(const runtime::TrainConfig& config,
                            const DatasetStats& stats, double batch_nodes,
                            double batch_edges);

}  // namespace gnav::estimator
