// GNNavigator — the end-to-end facade implementing the paper's three-step
// workflow (Fig. 2):
//
//   Step 1  Input analysis: the user supplies a dataset, a GNN model
//           specification, a hardware platform, and application
//           requirements; GNNavigator profiles the graph and hardware.
//   Step 2  Automatic guideline generation: the gray-box performance
//           estimator (trained leave-one-dataset-out with power-law
//           augmentation) scores candidates, the DFS explorer prunes with
//           runtime constraints, and the decision maker picks from the
//           Pareto front according to the stated priorities.
//   Step 3  Training: the chosen guideline configures the reconfigurable
//           runtime backend, which trains the model and reports the
//           actual Perf{T, Γ, Acc}.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dse/decision_maker.hpp"
#include "dse/design_space.hpp"
#include "dse/explorer.hpp"
#include "dse/objectives.hpp"
#include "estimator/perf_estimator.hpp"
#include "estimator/profile_collector.hpp"
#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "runtime/backend.hpp"
#include "runtime/templates.hpp"

namespace gnav::navigator {

/// A generated training guideline: the chosen configuration, its
/// predicted performance, and the user-facing guideline text.
struct Guideline {
  runtime::TrainConfig config;
  estimator::PerfPrediction predicted;
  std::string text;
  dse::ExplorationStats exploration_stats;
  std::string priority_name;
};

class GNNavigator {
 public:
  /// Step 1 inputs. The dataset is copied in and owned; `base` pins the
  /// application-determined model parameters.
  GNNavigator(graph::Dataset dataset, hw::HardwareProfile hardware,
              dse::BaseSettings base);

  /// Trains the gray-box estimator. `corpus` is typically produced by
  /// estimator::collect_lodo_corpus over the *other* datasets (Sec. 4.1's
  /// leave-one-out protocol); prepare_default() does exactly that.
  void prepare(const std::vector<estimator::ProfiledRun>& corpus);

  /// Convenience: collects a leave-one-dataset-out corpus (all registry
  /// datasets except this one + `augmentation_graphs` power-law graphs)
  /// and fits the estimator.
  void prepare_default(int configs_per_dataset = 24,
                       int augmentation_graphs = 2,
                       int profiling_epochs = 1, std::uint64_t seed = 99);

  bool is_prepared() const {
    return estimator_ != nullptr && estimator_->is_fitted();
  }

  /// Step 2: explore and decide. Throws if prepare() was not called or no
  /// candidate satisfies the constraints.
  Guideline generate_guideline(const dse::ExploreTargets& targets,
                               const dse::RuntimeConstraints& constraints)
      const;

  /// Step 3: train under an arbitrary configuration (guideline or manual).
  runtime::TrainReport train(const runtime::TrainConfig& config,
                             int epochs = 4, std::uint64_t seed = 1) const;

  /// Reproduces an existing system by its template name on this backend.
  runtime::TrainReport reproduce(const std::string& template_name,
                                 int epochs = 4,
                                 std::uint64_t seed = 1) const;

  const graph::Dataset& dataset() const { return dataset_; }
  const estimator::DatasetStats& dataset_stats() const { return stats_; }
  const hw::HardwareProfile& hardware() const { return hardware_; }
  const estimator::PerfEstimator& estimator() const;
  /// Mutable estimator access for the serve layer's online refit
  /// (serve::SchedulerOptions::refit_after_drain). Throws like
  /// estimator() when prepare() has not run.
  estimator::PerfEstimator& estimator_mut();
  const runtime::RuntimeBackend& backend() const { return *backend_; }

 private:
  graph::Dataset dataset_;
  hw::HardwareProfile hardware_;
  dse::BaseSettings base_;
  estimator::DatasetStats stats_;
  std::unique_ptr<runtime::RuntimeBackend> backend_;
  std::unique_ptr<estimator::PerfEstimator> estimator_;
};

}  // namespace gnav::navigator
