// Flat key=value configuration container.
//
// Training guidelines are emitted to users as plain-text configuration
// settings (the paper's Fig. 3 templates look like `batchsize = 1024;`).
// ConfigMap is the serialization format for those guidelines: a typed
// string map that round-trips through the `key = value;` syntax.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gnav {

class ConfigMap {
 public:
  ConfigMap() = default;

  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, long long value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);
  void set_int_list(const std::string& key, const std::vector<int>& values);

  bool contains(const std::string& key) const;

  /// Typed getters: throw gnav::Error when the key is missing or the value
  /// does not parse as the requested type.
  std::string get(const std::string& key) const;
  long long get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;
  std::vector<int> get_int_list(const std::string& key) const;

  /// Getters with defaults (missing key -> default, bad parse still throws).
  std::string get_or(const std::string& key, const std::string& dflt) const;
  long long get_int_or(const std::string& key, long long dflt) const;
  double get_double_or(const std::string& key, double dflt) const;

  std::size_t size() const { return entries_.size(); }
  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// `key = value;` lines, sorted by key (the guideline text handed to the
  /// user in Step 2 of the paper's workflow).
  std::string to_guideline_text() const;

  /// Parses guideline text back into a map; tolerant of blank lines and
  /// `#` / `//` comments. Throws on malformed lines.
  static ConfigMap parse(const std::string& text);

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace gnav
