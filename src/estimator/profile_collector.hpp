// Profiled-run collection: the estimator's training data. Sec. 4.1: "The
// performance estimator is trained on the ground-truth performance
// covering the whole design space ... established upon the performance
// across all the datasets available, except the one waiting for
// estimation" (leave-one-dataset-out), "randomly generate some power-law
// graphs ... as data enhancement".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "estimator/dataset_stats.hpp"
#include "hw/platform.hpp"
#include "runtime/backend.hpp"
#include "runtime/train_config.hpp"

namespace gnav::support {
class ThreadPool;
}

namespace gnav::estimator {

struct ProfiledRun {
  DatasetStats stats;
  runtime::TrainConfig config;
  runtime::TrainReport report;
};

struct CollectorOptions {
  /// Number of randomly drawn configurations per dataset.
  int configs_per_dataset = 40;
  /// Profiling epochs per run (1 keeps collection cheap; accuracy targets
  /// use the short-horizon value, which is what the DSE compares anyway).
  int epochs = 2;
  std::uint64_t seed = 99;
  /// Pool the profiled runs execute on (nullptr → global pool). Configs
  /// are drawn serially from one RNG and every run is seeded by its
  /// index, so the corpus is bit-identical at any pool size.
  support::ThreadPool* pool = nullptr;
  /// Every `async_every`-th profiled run (by draw index, per dataset)
  /// executes under the asynchronous pipelined epoch executor, with the
  /// prefetch depth and sampler worker count drawn deterministically from
  /// the collection's own seed material (seed ^ dataset name, mixed per
  /// async row — never a process counter or call order, so interleaved
  /// collections reproduce their solo rows exactly) — so the corpus
  /// carries measured executor walls for the overlap-model fit. The executor's bit-identity contract keeps every
  /// data-bearing report field unchanged; only the wall-clock pipeline
  /// observables (and the executor metadata columns) differ. <= 0
  /// disables async profiling runs entirely.
  int async_every = 4;
  /// Compute backend the profiled runs execute on. Empty resolves to the
  /// CALLER's ambient backend (compute::current_backend_id()) once at
  /// collect entry — pool workers carry no thread-local scope, so the
  /// resolution cannot happen inside the per-run lambdas.
  std::string backend_id;
};

/// Draws a random-but-valid configuration from the full design space.
runtime::TrainConfig random_config(Rng& rng);

/// Profiles `options.configs_per_dataset` random configs on one dataset.
std::vector<ProfiledRun> collect_profiles(const graph::Dataset& dataset,
                                          const hw::HardwareProfile& hw,
                                          const CollectorOptions& options);

/// Leave-one-dataset-out corpus: profiles on every dataset in
/// `dataset_names` except `held_out`, plus `augmentation_graphs` random
/// power-law graphs.
std::vector<ProfiledRun> collect_lodo_corpus(
    const std::vector<std::string>& dataset_names,
    const std::string& held_out, int augmentation_graphs,
    const hw::HardwareProfile& hw, const CollectorOptions& options);

}  // namespace gnav::estimator
