// Learnable parameter: value + accumulated gradient. Layers expose their
// parameters as raw pointers to the optimizer; ownership stays with the
// layer objects (no shared ownership anywhere in the training stack).
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace gnav::nn {

struct Parameter {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;

  Parameter() = default;
  Parameter(std::string n, tensor::Tensor v)
      : name(std::move(n)),
        value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void zero_grad() { grad.zero(); }
  std::size_t count() const { return value.size(); }
};

}  // namespace gnav::nn
