// Multi-tenant serving throughput under contention: the same job mix is
// drained through serve::JobScheduler at 1..N concurrently active
// tenants over one shared thread pool, reporting jobs/min per tenant
// count next to the admission prices the scheduler computed.
//
// Two hard-fail guarantees (exit 1), mirroring the test suite:
//
//   - determinism: every contended job's TrainReport data fields must be
//     bit-identical to running that job alone (timing fields excluded) —
//     any divergence means tenant isolation broke;
//   - admission: the scheduler's price must equal
//     PerfEstimator::predict_pipelined_wall_s recomputed directly, so
//     the published throughput numbers provably correspond to
//     estimator-priced admission.
//
//   ./bench_serve [--json out.json] [--jobs N] [--epochs N] [--tenants N]
//                 [--trace-out trace.json] [--metrics-out metrics.prom]
//
// Emits a JSON document (stdout by default) so CI archives the serving
// throughput trajectory next to bench_pipeline / bench_overlap_fit.
// --trace-out / --metrics-out record the whole sweep through the
// telemetry layer (Chrome trace-event JSON + Prometheus text); CI runs
// the Release sweep with both and uploads the files as artifacts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "compute/backend.hpp"
#include "estimator/dataset_stats.hpp"
#include "estimator/profile_collector.hpp"
#include "obs/export.hpp"
#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "runtime/backend.hpp"
#include "runtime/templates.hpp"
#include "serve/job_scheduler.hpp"
#include "support/parallel.hpp"

using namespace gnav;

namespace {

struct TenantResult {
  std::size_t tenants = 0;
  double wall_s = 0.0;
  double jobs_per_min = 0.0;
  double speedup_vs_1 = 0.0;
  std::size_t peak_pending = 0;  // deepest pool backlog observed
  bool identical_to_solo = false;
};

struct AdmissionRow {
  std::size_t id = 0;
  std::string executor;
  std::string backend;
  double price_wall_s = 0.0;
  double serial_stage_s = 0.0;
  double overlap_ratio = 1.0;
  bool fitted = false;
};

/// The serve bit-identity contract: every data-bearing field equal,
/// wall-clock observables exempt.
bool reports_match(const runtime::TrainReport& a,
                   const runtime::TrainReport& b) {
  return a.epoch_loss == b.epoch_loss && a.epoch_times_s == b.epoch_times_s &&
         a.epoch_train_accuracy == b.epoch_train_accuracy &&
         a.epoch_val_accuracy == b.epoch_val_accuracy &&
         a.final_train_accuracy == b.final_train_accuracy &&
         a.val_accuracy == b.val_accuracy &&
         a.test_accuracy == b.test_accuracy &&
         a.epoch_time_s == b.epoch_time_s &&
         a.peak_memory_gb == b.peak_memory_gb &&
         a.cache_hit_rate == b.cache_hit_rate &&
         a.avg_batch_nodes == b.avg_batch_nodes &&
         a.avg_batch_edges == b.avg_batch_edges &&
         a.per_batch_nodes == b.per_batch_nodes &&
         a.iterations_per_epoch == b.iterations_per_epoch &&
         a.pipeline.modeled_overlapped_s == b.pipeline.modeled_overlapped_s &&
         a.pipeline.modeled_sequential_s == b.pipeline.modeled_sequential_s;
}

std::vector<serve::JobRequest> make_jobs(int jobs, int epochs,
                                         std::size_t tenants) {
  std::vector<serve::JobRequest> out;
  for (int i = 0; i < jobs; ++i) {
    serve::JobRequest req;
    switch (i % 4) {
      case 0:
        req.config = runtime::template_pyg();
        break;
      case 1:
        req.config = runtime::template_pagraph_full();
        req.config.pipeline_overlap = true;
        req.pipeline.mode = runtime::PipelineMode::kAsync;
        req.pipeline.prefetch_depth = 2;
        req.pipeline.sampler_workers = 2;
        break;
      case 2:
        req.config = runtime::template_fastgcn();
        req.backend_id = compute::kScalarBackendId;
        break;
      default:
        req.config = runtime::template_pyg();
        req.config.pipeline_overlap = true;
        req.pipeline.mode = runtime::PipelineMode::kAsync;
        req.pipeline.prefetch_depth = 4;
        req.pipeline.sampler_workers = 1;
        break;
    }
    req.config.batch_size = 256;
    req.epochs = epochs;
    req.tenant = "tenant-" + std::to_string(static_cast<std::size_t>(i) %
                                            tenants);
    out.push_back(req);
  }
  return out;
}

void emit_json(std::FILE* out, int jobs, int epochs,
               const std::vector<AdmissionRow>& admission,
               const std::vector<TenantResult>& results) {
  std::fprintf(out, "{\n  \"benchmark\": \"bench_serve\",\n");
  std::fprintf(out, "  \"jobs\": %d,\n  \"epochs\": %d,\n", jobs, epochs);
  std::fprintf(out, "  \"admission\": [\n");
  for (std::size_t i = 0; i < admission.size(); ++i) {
    const AdmissionRow& a = admission[i];
    std::fprintf(out,
                 "    {\"id\": %zu, \"executor\": \"%s\", \"backend\": \"%s\", "
                 "\"price_wall_s\": %.9f, \"serial_stage_s\": %.9f, "
                 "\"overlap_ratio\": %.4f, \"fitted\": %s}%s\n",
                 a.id, a.executor.c_str(), a.backend.c_str(), a.price_wall_s,
                 a.serial_stage_s, a.overlap_ratio,
                 a.fitted ? "true" : "false",
                 i + 1 < admission.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TenantResult& r = results[i];
    std::fprintf(out,
                 "    {\"tenants\": %zu, \"wall_s\": %.6f, "
                 "\"jobs_per_min\": %.3f, \"speedup_vs_1\": %.3f, "
                 "\"peak_pending\": %zu, \"identical_to_solo\": %s}%s\n",
                 r.tenants, r.wall_s, r.jobs_per_min, r.speedup_vs_1,
                 r.peak_pending, r.identical_to_solo ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  int jobs = 8;
  int epochs = 2;
  int max_tenants = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      epochs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      max_tenants = std::atoi(argv[++i]);
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--json out.json] [--jobs N] [--epochs N] [--tenants N] "
          "[--trace-out trace.json] [--metrics-out metrics.prom]\n",
          argv[0]);
      return 1;
    }
  }
  const obs::ExportScope telemetry(trace_path, metrics_path);
  if (jobs < 1 || epochs < 1 || max_tenants < 1) {
    std::fprintf(stderr, "--jobs/--epochs/--tenants must be >= 1\n");
    return 1;
  }

  graph::SyntheticSpec spec;
  spec.name = "bench-serve";
  spec.num_nodes = 4000;
  spec.num_classes = 8;
  spec.feature_dim = 32;
  spec.min_degree = 4;
  spec.max_degree = 100;
  const graph::Dataset ds = graph::make_synthetic_dataset(spec, 23);
  const auto hw = hw::make_profile("rtx4090");
  runtime::RuntimeBackend backend(ds, hw);
  const estimator::DatasetStats stats = estimator::compute_dataset_stats(ds);

  // Fit the estimator on a small async-bearing corpus so admission runs
  // with the fitted overlap model (the Eq. 4 fallback is exercised by the
  // test suite instead).
  std::fprintf(stderr, "fitting estimator (10-run corpus)...\n");
  estimator::CollectorOptions copts;
  copts.configs_per_dataset = 10;
  copts.epochs = 1;
  copts.seed = 31;
  copts.async_every = 2;
  const auto corpus = estimator::collect_profiles(ds, hw, copts);
  estimator::PerfEstimator est(hw);
  est.fit(corpus);

  support::ThreadPool pool;  // shared across every sweep, default size

  // Price + solo baselines (job seeds depend only on submission order, so
  // one probe scheduler fixes them for every sweep).
  std::vector<AdmissionRow> admission;
  std::vector<runtime::TrainReport> solo;
  const auto job_templates =
      make_jobs(jobs, epochs, static_cast<std::size_t>(max_tenants));
  {
    serve::SchedulerOptions options;
    options.pool = &pool;
    options.seed = 3;
    serve::JobScheduler probe(backend, est, stats, options);
    for (const auto& req : job_templates) probe.submit(req);
    for (std::size_t id = 0; id < probe.size(); ++id) {
      const serve::JobOutcome& job = probe.outcome(id);
      AdmissionRow row;
      row.id = id;
      row.executor = runtime::to_string(job.request.pipeline.mode);
      row.backend = job.request.backend_id;
      row.price_wall_s = job.price.predicted_wall_s;
      row.serial_stage_s = job.price.serial_stage_s;
      row.overlap_ratio = job.price.overlap_ratio;
      row.fitted = job.price.overlap_fitted;
      admission.push_back(row);

      // Hard guarantee #2: the scheduler's price IS the estimator's
      // pipelined-wall prediction (or the serial wall for sync jobs).
      const auto p =
          est.predict(job.request.config, stats, job.request.backend_id);
      const double serial = (p.overlap_ratio_analytic > 0.0
                                 ? p.time_s / p.overlap_ratio_analytic
                                 : p.time_s) *
                            static_cast<double>(job.request.epochs);
      double expected = serial;
      if (job.request.pipeline.mode == runtime::PipelineMode::kAsync) {
        const estimator::OverlapExecutorShape shape{
            job.request.pipeline.prefetch_depth,
            job.request.pipeline.sampler_workers > 0
                ? job.request.pipeline.sampler_workers
                : 4};
        expected =
            est.predict_pipelined_wall_s(job.request.config, stats, shape,
                                         serial);
      }
      if (row.price_wall_s != expected) {
        std::fprintf(stderr,
                     "FAIL: job %zu admission price %.12g != "
                     "predict_pipelined_wall_s %.12g\n",
                     id, row.price_wall_s, expected);
        return 1;
      }

      std::fprintf(stderr, "solo job %zu (%s, %s)...\n", id,
                   row.executor.c_str(), row.backend.c_str());
      runtime::RunOptions ro;
      ro.epochs = job.request.epochs;
      ro.seed = job.seed;
      ro.evaluate_every_epoch = false;
      ro.record_batch_sizes = true;
      ro.pool = &pool;
      ro.backend_id = job.request.backend_id;
      ro.pipeline = job.request.pipeline;
      solo.push_back(backend.run(job.request.config, ro));
    }
  }

  bool all_identical = true;
  std::vector<TenantResult> results;
  for (int tenants = 1; tenants <= max_tenants; ++tenants) {
    serve::SchedulerOptions options;
    options.pool = &pool;
    options.seed = 3;
    options.max_active = static_cast<std::size_t>(tenants);
    serve::JobScheduler sched(backend, est, stats, options);
    for (const auto& req :
         make_jobs(jobs, epochs, static_cast<std::size_t>(tenants))) {
      sched.submit(req);
    }

    // Backlog probe: sample the shared pool's queue depth while the
    // drain runs (diagnostic only — instantaneous and racy by nature).
    std::atomic<bool> done{false};
    std::size_t peak_pending = 0;
    std::thread prober([&] {
      while (!done.load(std::memory_order_relaxed)) {
        peak_pending = std::max(peak_pending, pool.pending());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    const serve::DrainStats dstats = sched.drain();
    done.store(true, std::memory_order_relaxed);
    prober.join();

    TenantResult r;
    r.tenants = static_cast<std::size_t>(tenants);
    r.wall_s = dstats.wall_s;
    r.jobs_per_min = dstats.jobs_per_min();
    r.peak_pending = peak_pending;
    r.identical_to_solo = true;
    for (std::size_t id = 0; id < sched.size(); ++id) {
      if (sched.outcome(id).state != serve::JobState::kDone ||
          !reports_match(solo[id], sched.outcome(id).report)) {
        r.identical_to_solo = false;
        all_identical = false;
        std::fprintf(stderr,
                     "FAIL: job %zu at %d tenants diverged from its solo "
                     "run (state=%s)\n",
                     id, tenants,
                     serve::to_string(sched.outcome(id).state).c_str());
      }
    }
    r.speedup_vs_1 =
        results.empty() ? 1.0
                        : (results.front().wall_s > 0.0 && r.wall_s > 0.0
                               ? results.front().wall_s / r.wall_s
                               : 0.0);
    std::fprintf(stderr,
                 "%d tenant(s): wall=%7.3fs  jobs/min=%7.2f  "
                 "speedup=%5.2fx  peak_pending=%zu  identical=%s\n",
                 tenants, r.wall_s, r.jobs_per_min, r.speedup_vs_1,
                 r.peak_pending, r.identical_to_solo ? "yes" : "NO");
    results.push_back(r);
  }

  std::FILE* out = stdout;
  if (!json_path.empty()) {
    out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }
  emit_json(out, jobs, epochs, admission, results);
  if (out != stdout) std::fclose(out);

  // Hard guarantee #1: contention never changes results.
  return all_identical ? 0 : 1;
}
