"""Command-line entry point.

Exit codes (the CTest wiring depends on these):
  0   clean (or --self-test passed / --list-checks)
  1   active findings (or --self-test failed)
  2   configuration error: missing compile db, bad allowlist entry,
      suppression without a justification, unknown check name
  77  libclang unavailable — ctest SKIP_RETURN_CODE, not a failure
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from gnav_analyzer import (
    CHECK_DESCRIPTIONS,
    EXIT_CLEAN,
    EXIT_CONFIG_ERROR,
    EXIT_FINDINGS,
    EXIT_SKIP,
)
from gnav_analyzer import compiledb, suppress
from gnav_analyzer import report as report_mod


def _default_repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gnav_analyzer",
        description=(
            "AST-accurate concurrency/determinism checks over the "
            "exported compile database (see tools/gnav_analyzer/"
            "__init__.py for the check catalogue)."
        ),
    )
    parser.add_argument("--compile-db", type=Path, default=None,
                        help="explicit compile_commands.json path")
    parser.add_argument("--repo-root", type=Path, default=None,
                        help="repository root (default: two levels up)")
    parser.add_argument("--checks",
                        default=",".join(sorted(CHECK_DESCRIPTIONS)),
                        help="comma-separated subset of checks to run")
    parser.add_argument("--json", type=Path, dest="json_out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--sarif", type=Path, dest="sarif_out",
                        default=None, help="write the SARIF report here")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="allowlist file (default: package ALLOWLIST)")
    parser.add_argument("--self-test", action="store_true",
                        help="run every check against the bundled corpus")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECK_DESCRIPTIONS):
            print(f"{name}: {CHECK_DESCRIPTIONS[name]}")
        return EXIT_CLEAN

    check_names = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = set(check_names) - set(CHECK_DESCRIPTIONS)
    if unknown:
        print(f"error: unknown checks: {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return EXIT_CONFIG_ERROR

    from gnav_analyzer import engine

    available, detail = engine.libclang_status()
    if not available:
        print(
            f"SKIP: {detail}; the regex fallback is "
            "`tools/determinism_lint.py --include-superseded`",
            file=sys.stderr,
        )
        return EXIT_SKIP

    if args.self_test:
        from gnav_analyzer import selftest

        return selftest.run()

    repo_root = (args.repo_root or _default_repo_root()).resolve()
    try:
        db_path = compiledb.discover(repo_root, args.compile_db)
    except compiledb.CompileDbError as e:
        print(f"error: {e}", file=sys.stderr)
        return EXIT_CONFIG_ERROR
    if db_path is None:
        print(
            "error: no compile_commands.json found under "
            f"{repo_root} — configure with CMAKE_EXPORT_COMPILE_COMMANDS"
            "=ON (the repo default) or pass --compile-db",
            file=sys.stderr,
        )
        return EXIT_CONFIG_ERROR

    src_root = repo_root / "src"
    try:
        commands = compiledb.load(db_path, source_filter=src_root)
    except compiledb.CompileDbError as e:
        print(f"error: {e}", file=sys.stderr)
        return EXIT_CONFIG_ERROR
    if not commands:
        print(f"error: {db_path} holds no TUs under {src_root}",
              file=sys.stderr)
        return EXIT_CONFIG_ERROR

    allowlist_path = args.allowlist or Path(__file__).parent / "ALLOWLIST"
    try:
        allowlist = suppress.load_allowlist(
            allowlist_path, set(CHECK_DESCRIPTIONS)
        )
    except suppress.SuppressionError as e:
        print(f"error: {e}", file=sys.stderr)
        return EXIT_CONFIG_ERROR

    report = report_mod.Report(
        compile_db=str(db_path), checks=check_names
    )
    seen: set = set()
    suppression_cache: dict[Path, dict[int, set[str]]] = {}
    config_errors: list[str] = []
    parse_problems: list[str] = []
    parsed_ok = 0

    for cmd in commands:
        tu, fatal = engine.parse_tu(cmd)
        if fatal:
            parse_problems.extend(
                f"{cmd.file}: {d.spelling}" for d in fatal[:5]
            )
        else:
            parsed_ok += 1
        for finding in engine.run_checks(tu, [src_root], check_names):
            abs_path = Path(finding.file).resolve()
            try:
                rel = str(abs_path.relative_to(repo_root))
            except ValueError:
                rel = finding.file
            finding.file = rel.replace("\\", "/")
            if abs_path not in suppression_cache:
                try:
                    text = abs_path.read_text()
                except OSError:
                    text = ""
                lines, errors = suppress.inline_suppressions(text)
                suppression_cache[abs_path] = lines
                config_errors.extend(f"{finding.file}: {e}"
                                     for e in errors)
            inline = suppression_cache[abs_path]
            entry = suppress.allowlisted(allowlist, finding.file,
                                         finding.check)
            if finding.check in inline.get(finding.line, ()):
                finding.suppressed = True
                finding.suppression_reason = "inline gnav-analyzer note"
            elif entry is not None:
                finding.suppressed = True
                finding.suppression_reason = (
                    f"ALLOWLIST: {entry.justification}"
                )
            report.add(finding, seen)

    if parsed_ok == 0:
        print("error: every TU failed to parse — the analyzer is blind; "
              "first diagnostics:", file=sys.stderr)
        for p in parse_problems[:10]:
            print(f"  {p}", file=sys.stderr)
        return EXIT_CONFIG_ERROR
    if parse_problems:
        print(f"warning: {len(parse_problems)} parse diagnostic(s) "
              "(checks still ran on the parsed portions):",
              file=sys.stderr)
        for p in parse_problems[:10]:
            print(f"  {p}", file=sys.stderr)

    if args.json_out:
        report_mod.write_json(report, args.json_out)
    if args.sarif_out:
        report_mod.write_sarif(report, args.sarif_out)

    if config_errors:
        print("configuration errors:", file=sys.stderr)
        for e in config_errors:
            print(f"  {e}", file=sys.stderr)
        return EXIT_CONFIG_ERROR

    active = report.active()
    suppressed = len(report.findings) - len(active)
    print(
        f"gnav-analyzer: {len(commands)} TU(s), "
        f"{len(check_names)} check(s), {len(active)} active finding(s), "
        f"{suppressed} suppressed"
    )
    for f in active:
        print(f"{f.file}:{f.line}:{f.column}: [{f.check}] {f.message}")
    return EXIT_FINDINGS if active else EXIT_CLEAN
