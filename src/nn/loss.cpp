#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "tensor/ops.hpp"

namespace gnav::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& rows,
                                 const std::vector<int>& labels) {
  GNAV_CHECK(rows.size() == labels.size(), "rows/labels size mismatch");
  GNAV_CHECK(!rows.empty(), "loss needs at least one target row");
  LossResult res;
  res.grad_logits = tensor::Tensor(logits.rows(), logits.cols());
  res.total = rows.size();
  const double inv_n = 1.0 / static_cast<double>(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    GNAV_CHECK(r < logits.rows(), "loss row out of range");
    const int label = labels[i];
    GNAV_CHECK(label >= 0 && static_cast<std::size_t>(label) < logits.cols(),
               "label out of range");
    const float* lr = logits.row(r);
    float mx = lr[0];
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (lr[j] > mx) {
        mx = lr[j];
        best = j;
      }
    }
    if (best == static_cast<std::size_t>(label)) ++res.correct;
    double total = 0.0;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      total += std::exp(static_cast<double>(lr[j] - mx));
    }
    const double log_total = std::log(total);
    res.loss +=
        (log_total - static_cast<double>(lr[static_cast<std::size_t>(label)] -
                                         mx)) *
        inv_n;
    float* gr = res.grad_logits.row(r);
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      const double soft = std::exp(static_cast<double>(lr[j] - mx)) / total;
      gr[j] = static_cast<float>(
          (soft - (j == static_cast<std::size_t>(label) ? 1.0 : 0.0)) *
          inv_n);
    }
  }
  return res;
}

double accuracy(const tensor::Tensor& logits,
                const std::vector<std::int64_t>& rows,
                const std::vector<int>& labels) {
  GNAV_CHECK(rows.size() == labels.size(), "rows/labels size mismatch");
  if (rows.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto r = static_cast<std::size_t>(rows[i]);
    GNAV_CHECK(r < logits.rows(), "accuracy row out of range");
    const float* lr = logits.row(r);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (lr[j] > lr[best]) best = j;
    }
    if (best == static_cast<std::size_t>(labels[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

}  // namespace gnav::nn
