// Learned overlap-efficiency correction — the fitted replacement for
// Eq. 4's analytic max().
//
// Eq. 4 assumes the host pipeline (sample + transfer) hides perfectly
// behind the device pipeline (replace + compute), so the epoch wall is
// the bottleneck side alone. The asynchronous epoch executor
// (runtime/pipeline.hpp) measures what actually happens: per-stage busy
// seconds and the realized wall. This model closes the paper's gray-box
// loop for f_overlapping: it regresses the *measured* overlap ratio
//
//   rho = measured_wall_s / (sample_wall_s + transfer_wall_s +
//                            compute_wall_s)
//
// (1.0 = fully serial, bottleneck/serial = perfect overlap) against
// white-box features — the analytic Eq. 4 ratio, the analytic stage
// balance, batch volume, and the executor shape (prefetch depth, sampler
// workers) — plus the executor's stall/occupancy counters, which are
// known for profiled rows and mean-imputed at predict time.
//
// Only corpus rows that actually ran the async executor can train the
// fit; sync rows (and rows with empty measured walls) are rejected by
// row_eligible so they can never poison the regression. When no eligible
// rows exist the model stays unfitted and every consumer falls back to
// the analytic Eq. 4 ratio.
//
// The regression is a ridge fit (normal equations, serial, no RNG), so
// fit and predict are bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "estimator/profile_collector.hpp"
#include "hw/cost_model.hpp"
#include "ml/ridge.hpp"

namespace gnav::estimator {

/// Executor shape an overlap prediction is made for (the async
/// executor's prefetch depth and sampler worker count).
struct OverlapExecutorShape {
  std::size_t prefetch_depth = 4;
  std::size_t sampler_workers = 4;
};

class OverlapModel {
 public:
  explicit OverlapModel(hw::HardwareProfile hw);

  /// True iff `run` can train the fit: the async executor ran and
  /// reported positive, finite measured walls. Sync rows carry
  /// measured-wall zeros or serial-loop walls and must never train the
  /// overlap correction.
  static bool row_eligible(const ProfiledRun& run);

  /// Measured wall / serial-stage-work ratio of a profiled row (the fit
  /// target); 1.0 when the row has no usable measurement.
  static double measured_ratio(const runtime::TrainReport& report);

  /// Eq. 4's implied wall ratio from the modeled overlapped/sequential
  /// pair the profiler recorded (the analytic ablation arm).
  static double analytic_ratio(const runtime::TrainReport& report);

  /// Fits on the eligible subset of `runs`. Fewer than `min_rows()`
  /// eligible rows leaves the model unfitted (analytic fallback).
  void fit(const std::vector<ProfiledRun>& runs);

  bool is_fitted() const { return fitted_; }
  std::size_t training_rows() const { return rows_; }
  static std::size_t min_rows() { return 4; }

  /// Predicted measured-wall / serial-stage-work ratio for `config`
  /// running under an async executor of the given shape. Falls back to
  /// `analytic_fallback` when unfitted. The result is clamped to
  /// [0.25, 1.5]: a pipeline cannot beat a 4x overlap of its serial
  /// work, and scheduling overhead rarely exceeds 1.5x.
  double predict_ratio(const runtime::TrainConfig& config,
                       const DatasetStats& stats,
                       const OverlapExecutorShape& shape,
                       double analytic_fallback) const;

  /// Ordered names of the regression features (diagnostics).
  static const std::vector<std::string>& feature_names();

 private:
  std::vector<double> features(const runtime::TrainConfig& config,
                               const DatasetStats& stats,
                               const OverlapExecutorShape& shape,
                               double push_stall_rate, double pop_stall_rate,
                               double occupancy_frac) const;

  hw::CostModel cost_;
  ml::RidgeRegressor ridge_;
  // Mean-imputation values for the measured-only columns (stall rates,
  // queue occupancy), learned at fit time and substituted at predict
  // time where no executor has run yet.
  double mean_push_stall_rate_ = 0.0;
  double mean_pop_stall_rate_ = 0.0;
  double mean_occupancy_frac_ = 0.0;
  std::size_t rows_ = 0;
  bool fitted_ = false;
};

}  // namespace gnav::estimator
