#include "support/config_map.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/string_utils.hpp"

namespace gnav {

void ConfigMap::set(const std::string& key, const std::string& value) {
  GNAV_CHECK(!key.empty(), "config key must be non-empty");
  entries_[key] = value;
}

void ConfigMap::set_int(const std::string& key, long long value) {
  set(key, std::to_string(value));
}

void ConfigMap::set_double(const std::string& key, double value) {
  std::ostringstream os;
  // max_digits10: doubles round-trip exactly through the text form.
  os.precision(17);
  os << value;
  set(key, os.str());
}

void ConfigMap::set_bool(const std::string& key, bool value) {
  set(key, value ? "true" : "false");
}

void ConfigMap::set_int_list(const std::string& key,
                             const std::vector<int>& values) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (int v : values) parts.push_back(std::to_string(v));
  // Appending piecewise sidesteps GCC 12's -Wrestrict false positive on
  // chained operator+ (GCC PR105329).
  std::string value = "[";
  value += join(parts, ",");
  value += "]";
  set(key, std::move(value));
}

bool ConfigMap::contains(const std::string& key) const {
  return entries_.contains(key);
}

std::string ConfigMap::get(const std::string& key) const {
  auto it = entries_.find(key);
  GNAV_CHECK(it != entries_.end(), "missing config key '" + key + "'");
  return it->second;
}

long long ConfigMap::get_int(const std::string& key) const {
  return parse_int(get(key));
}

double ConfigMap::get_double(const std::string& key) const {
  return parse_double(get(key));
}

bool ConfigMap::get_bool(const std::string& key) const {
  const std::string v = to_lower(get(key));
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw Error("config key '" + key + "' is not a boolean: '" + v + "'");
}

std::vector<int> ConfigMap::get_int_list(const std::string& key) const {
  std::string v = trim(get(key));
  GNAV_CHECK(v.size() >= 2 && v.front() == '[' && v.back() == ']',
             "config key '" + key + "' is not a [..] list");
  v = v.substr(1, v.size() - 2);
  std::vector<int> out;
  if (trim(v).empty()) return out;
  for (const auto& piece : split(v, ',')) {
    out.push_back(static_cast<int>(parse_int(piece)));
  }
  return out;
}

std::string ConfigMap::get_or(const std::string& key,
                              const std::string& dflt) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? dflt : it->second;
}

long long ConfigMap::get_int_or(const std::string& key,
                                long long dflt) const {
  return contains(key) ? get_int(key) : dflt;
}

double ConfigMap::get_double_or(const std::string& key, double dflt) const {
  return contains(key) ? get_double(key) : dflt;
}

std::string ConfigMap::to_guideline_text() const {
  std::ostringstream os;
  for (const auto& [k, v] : entries_) os << k << " = " << v << ";\n";
  return os.str();
}

ConfigMap ConfigMap::parse(const std::string& text) {
  ConfigMap cm;
  for (auto& raw_line : split(text, '\n')) {
    std::string line = trim(raw_line);
    if (line.empty() || starts_with(line, "#") || starts_with(line, "//")) {
      continue;
    }
    if (ends_with(line, ";")) line = trim(line.substr(0, line.size() - 1));
    const auto eq = line.find('=');
    GNAV_CHECK(eq != std::string::npos,
               "malformed guideline line: '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    GNAV_CHECK(!key.empty(), "empty key in guideline line: '" + line + "'");
    cm.set(key, value);
  }
  return cm;
}

}  // namespace gnav
