#include "runtime/backend.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "nn/optim.hpp"
#include "sampling/batcher.hpp"
#include "sampling/sampler_factory.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "tensor/ops.hpp"

namespace gnav::runtime {
namespace {

constexpr double kBytesPerGb = 1e9;
/// Fixed device-side framework overhead (CUDA context, allocator reserve,
/// kernels) — present in every PyTorch-profiler measurement the paper
/// reports, so modeled as a constant floor.
constexpr double kFrameworkOverheadGb = 0.55;
/// Adam keeps value + grad + m + v per parameter.
constexpr double kOptimizerStateMultiplier = 4.0;
/// Backward ≈ 2x forward FLOPs (standard estimate).
constexpr double kBackwardFlopMultiplier = 2.0;
/// Degree-descending reordering improves host-side memory locality during
/// neighbor expansion; profiling GNN samplers typically shows 10-20%
/// faster expansion, modeled as a fixed work discount.
constexpr double kReorderSamplingDiscount = 0.85;

/// Bytes of CSR structure shipped with a mini-batch (indices + indptr).
double structure_bytes(const sampling::MiniBatch& mb) {
  return 8.0 * static_cast<double>(mb.num_edges()) +
         8.0 * static_cast<double>(mb.num_nodes());
}

/// Output of the transfer/cache stage: everything the compute stage needs
/// to run a train step without touching the cache, the profiler, or the
/// full-graph feature tensor.
struct PreparedBatch {
  sampling::MiniBatch mb;
  tensor::Tensor x;          // gathered (and possibly quantized) features
  std::vector<int> labels;   // per seed-local position
};

}  // namespace

double PipelineReport::overlap_efficiency() const {
  PipelineEpochStats s;
  s.sample_busy_s = sample_wall_s;
  s.transfer_busy_s = transfer_wall_s;
  s.compute_busy_s = compute_wall_s;
  s.wall_s = measured_wall_s;
  return s.overlap_efficiency();
}

RuntimeBackend::RuntimeBackend(const graph::Dataset& dataset,
                               hw::HardwareProfile profile)
    : dataset_(&dataset), cost_(std::move(profile)) {
  dataset.validate();
}

double RuntimeBackend::model_memory_gb(const TrainConfig& config) const {
  // Parameter count without instantiating tensors: per layer the dense
  // weights dominate; replicate GnnModel's layer shapes.
  const auto in0 = static_cast<double>(dataset_->feature_dim);
  const auto hid = static_cast<double>(config.hidden_dim);
  const auto out = static_cast<double>(dataset_->num_classes);
  double params = 0.0;
  for (std::size_t l = 0; l < config.num_layers; ++l) {
    const double in = (l == 0) ? in0 : hid;
    const double o = (l + 1 == config.num_layers) ? out : hid;
    const double dense = in * o + o;  // weight + bias
    switch (config.model) {
      case nn::ModelKind::kGcn:
        params += dense;
        break;
      case nn::ModelKind::kSage:
        params += 2.0 * in * o + o;
        break;
      case nn::ModelKind::kGat:
        params += dense + 2.0 * o;  // attention vectors
        break;
    }
  }
  return params * 4.0 * kOptimizerStateMultiplier *
         dataset_->real_feature_scale / kBytesPerGb;
}

double RuntimeBackend::cache_memory_gb(const TrainConfig& config) const {
  const double capacity =
      config.cache_ratio * static_cast<double>(dataset_->num_nodes());
  // Feature payload extrapolates by feature width; the per-row index
  // entry only by the row count.
  return capacity *
         (static_cast<double>(dataset_->feature_bytes_per_node()) *
              dataset_->real_feature_scale +
          cache::kIndexBytesPerRow) *
         dataset_->real_scale_factor / kBytesPerGb;
}

TrainReport RuntimeBackend::run(const TrainConfig& config,
                                const RunOptions& options) const {
  config.validate();
  GNAV_CHECK(options.epochs >= 1, "need at least one epoch");
  // gnav-lint(wall-clock): profiler wall — report.wall_clock_s only.
  const auto wall_start = std::chrono::steady_clock::now();

  // Every aggregation in this run (training steps and full-graph
  // evaluations alike) resolves to the requested compute backend. The
  // scope is thread-local, so concurrent jobs on pool workers cannot
  // interfere with each other's selection. Stage closures below
  // re-establish the scope because the async executor runs them on fresh
  // stage threads that inherit NO thread-local state — without it they
  // would fall through to the factory default, which another concurrent
  // process-setup call could be flipping (the multi-tenant isolation
  // contract, see serve/job_scheduler.hpp and compute/backend.hpp).
  const std::shared_ptr<const compute::ComputeBackend> run_backend =
      compute::BackendFactory::create(options.backend_id);
  const compute::BackendScope backend_scope(run_backend);

  // Telemetry (obs/): the run-level span nests every epoch/stage span
  // recorded on this thread, and the sampler counter is resolved once so
  // the per-batch hot path is a single gated atomic add. Neither half
  // consumes an Rng stream or any data-bearing state, so the report is
  // bit-identical with tracing/metrics on or off (pinned by
  // test_obs.cpp).
  GNAV_TRACE_SPAN("runtime", "run:" + config.name);
  obs::Counter& sampler_batches_metric =
      obs::MetricsRegistry::global().counter(
          "gnav_sampler_batches_total",
          {{"sampler", sampling::to_string(config.sampler)}},
          "Mini-batches built, by sampler kind");

  const graph::Dataset& ds = *dataset_;
  Rng rng(options.seed);
  Rng eval_rng(options.seed ^ 0xE7A1ULL);

  // --- Component instantiation from the configuration ------------------
  nn::ModelConfig mc;
  mc.kind = config.model;
  mc.in_dim = static_cast<std::size_t>(ds.feature_dim);
  mc.hidden_dim = config.hidden_dim;
  mc.out_dim = static_cast<std::size_t>(ds.num_classes);
  mc.num_layers = config.num_layers;
  mc.dropout = config.dropout;
  nn::GnnModel model(mc, rng);
  nn::Adam optimizer(model.parameters(), config.learning_rate);

  const auto cache_capacity = static_cast<std::size_t>(
      config.cache_ratio * static_cast<double>(ds.num_nodes()));
  cache::DeviceCache device_cache(config.cache_policy, cache_capacity,
                                  ds.graph);

  sampling::SamplerSettings ss;
  ss.kind = config.sampler;
  ss.hop_list = config.hop_list;
  ss.bias_rate = config.bias_rate;
  ss.saint_budget_multiplier = config.saint_budget_multiplier;
  // Cluster-GCN sizing: parts of ~batch_size/4 vertices, so a typical
  // batch merges a handful of clusters.
  ss.cluster_num_parts = static_cast<int>(std::max<std::size_t>(
      4, static_cast<std::size_t>(ds.num_nodes()) * 4 / config.batch_size));
  ss.cluster_max_per_batch = 8;
  const std::vector<char>* preference =
      config.bias_rate > 0.0 ? &device_cache.residency_bitmap() : nullptr;
  // The residency version lets cached weighted-draw structures (e.g. the
  // SAINT node alias table) rebuild only when the bitmap actually
  // changed — with a static cache policy that is never.
  const auto sampler = sampling::make_sampler(
      ss, preference,
      preference != nullptr
          ? std::function<std::uint64_t()>(
                [&device_cache] { return device_cache.residency_version(); })
          : nullptr);

  sampling::SeedBatcher batcher(ds.train_nodes, config.batch_size);

  // Full-graph feature tensor (host side; device receives per-batch rows).
  tensor::Tensor x_full(static_cast<std::size_t>(ds.num_nodes()),
                        static_cast<std::size_t>(ds.feature_dim));
  std::copy(ds.features.begin(), ds.features.end(), x_full.data());

  // Back the cache with real device memory from the run's backend and
  // seed statically preloaded rows. From here on, cached feature reads
  // come out of the backend-owned slab, not the host tensor.
  const std::size_t row_floats = static_cast<std::size_t>(ds.feature_dim);
  if (row_floats > 0) {
    const compute::BackendCapabilities caps = run_backend->capabilities();
    GNAV_CHECK(caps.max_feature_dim == 0 || row_floats <= caps.max_feature_dim,
               "backend \"" + run_backend->id() + "\" supports at most " +
                   std::to_string(caps.max_feature_dim) +
                   " feature floats per row");
    device_cache.attach_storage(run_backend->allocator(), row_floats);
    if (device_cache.has_storage()) {
      // One lock for the whole preload sweep: resident_row is a
      // REQUIRES-annotated per-row accessor (see DeviceCache::mutex()).
      const support::MutexLock cache_lock(device_cache.mutex());
      for (graph::NodeId v = 0; v < ds.num_nodes(); ++v) {
        if (float* dst = device_cache.resident_row(v)) {
          std::memcpy(dst, x_full.row(static_cast<std::size_t>(v)),
                      row_floats * sizeof(float));
        }
      }
    }
  }

  // --- Static memory components (Eq. 9/10) ------------------------------
  TrainReport report;
  report.model_parameters = model.parameter_count();
  report.mem_model_gb = model_memory_gb(config);
  report.mem_cache_gb = cache_memory_gb(config);
  report.iterations_per_epoch = batcher.batches_per_epoch();

  const double feat_bytes =
      static_cast<double>(ds.feature_bytes_per_node());
  // Per-batch volumes extrapolate by feature width and by the original
  // dataset's larger per-iteration expansion; epoch time additionally by
  // the iteration-count ratio (see DESIGN.md "Substitutions").
  const double vol_scale = ds.real_feature_scale * ds.real_volume_scale;
  const double struct_scale = ds.real_volume_scale;
  const double time_scale = ds.real_scale_factor;

  Profiler profiler;
  const double sampling_discount =
      config.reorder ? kReorderSamplingDiscount : 1.0;

  // Cache-aware bias couples batch i's sampling to batch i-1's cache
  // update through the residency bitmap, so sampling and cache update
  // cannot parallelize against each other; everything else pre-builds
  // mini-batches concurrently.
  const bool biased_sampling = preference != nullptr;
  support::ThreadPool& pool =
      options.pool ? *options.pool : support::global_pool();

  // Epoch executor selection. Both executors produce bit-identical
  // reports (see RunOptions::pipeline); the async one additionally
  // overlaps the sample / transfer / compute stages for real and records
  // the measured overlap next to Eq. 4's prediction.
  const PipelineConfig& pipe = options.pipeline;
  const bool async_executor = pipe.mode == PipelineMode::kAsync;
  PipelineEpochStats run_measured;  // real wall-clock totals, all epochs
  const std::size_t num_batches = batcher.batches_per_epoch();

  // --- Algo. 1 main loop ------------------------------------------------
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    char epoch_span_name[32];
    std::snprintf(epoch_span_name, sizeof epoch_span_name, "epoch-%d",
                  epoch);
    GNAV_TRACE_SPAN("pipeline", epoch_span_name);
    profiler.reset_epoch();
    double epoch_loss = 0.0;
    std::size_t correct = 0;
    std::size_t total = 0;

    // Seed of batch i this epoch: task_seed(epoch_seed, i) in both the
    // serial and parallel paths, so bias is the only behavioral delta.
    const std::uint64_t epoch_seed = support::task_seed(
        options.seed ^ 0xB47C4E5EEDULL, static_cast<std::uint64_t>(epoch));
    const auto seed_batches = batcher.epoch_batches(rng);

    // Component 1: sampling. Thread-safe at any worker count — batch i
    // always draws from its own task_seed-derived stream.
    auto sample_batch = [&](std::size_t i) {
      // Pin this job's backend selection on whatever thread executes the
      // stage (async sampler workers are fresh threads with no ambient
      // scope; pool workers may carry another job's scope).
      const compute::BackendScope stage_scope(run_backend);
      GNAV_TRACE_SPAN("pipeline", "sample");
      const auto t0 = detail::Clock::now();  // gnav-lint(wall-clock): profiler wall
      Rng batch_rng(support::task_seed(epoch_seed, i));
      auto mb = sampler->sample(ds.graph, seed_batches[i], batch_rng);
      profiler.add_measured_stage(Profiler::Stage::kSample,
                                  detail::seconds_since(t0));
      sampler_batches_metric.add(1);
      return mb;
    };

    // Component 2: transmission (cache lookup -> transfer misses) plus
    // feature staging. Runs in STRICT batch order — under the async
    // executor on the single transfer thread — so the cache hit/miss
    // sequence and every profiler accumulation are order-identical to
    // the synchronous path (the passed sequence number enforces it).
    auto prepare_batch = [&](std::size_t i, sampling::MiniBatch&& mb) {
      // Same per-stage pin as sample_batch: the transfer stage runs on
      // its own thread under the async executor.
      const compute::BackendScope stage_scope(run_backend);
      GNAV_TRACE_SPAN("pipeline", "transfer");
      const auto stage_t0 = detail::Clock::now();  // gnav-lint(wall-clock): profiler wall
      const cache::LookupResult lookup = device_cache.lookup_and_update(
          mb.nodes, static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(epoch) * num_batches +
                        static_cast<std::uint64_t>(i)));

      // INT8 link compression shrinks feature payloads 4x (plus a
      // negligible per-row scale/offset header, ignored).
      const double wire_feat_bytes =
          config.compress_features ? feat_bytes / 4.0 : feat_bytes;
      hw::IterationVolumes volumes;
      volumes.sampling_work =
          mb.sampling_work * sampling_discount * struct_scale;
      volumes.transfer_bytes =
          static_cast<double>(lookup.misses.size()) * wire_feat_bytes *
              vol_scale +
          structure_bytes(mb) * struct_scale;
      volumes.replace_bytes =
          static_cast<double>(lookup.replaced) * wire_feat_bytes *
          vol_scale;

      // Component 3: computation on device (executed for real on CPU).
      const double fwd_flops = model.forward_flops(
          mb.num_nodes(), mb.num_edges());
      volumes.compute_flops =
          fwd_flops * (1.0 + kBackwardFlopMultiplier) * vol_scale;

      const hw::IterationTimes times = cost_.iteration_times(volumes);
      profiler.record_iteration(times, config.pipeline_overlap);

      // Device memory high-water mark: model + cache + live batch. The
      // feature staging buffer holds only the *missed* rows — resident
      // rows are read in place from the device cache (this is exactly how
      // 2PGraph-style systems save runtime memory).
      const double runtime_bytes =
          (static_cast<double>(lookup.misses.size()) *
               static_cast<double>(ds.feature_dim) +
           model.activation_floats(mb.num_nodes()) +
           model.activation_edge_floats(mb.num_edges())) *
              4.0 * vol_scale +
          structure_bytes(mb) * struct_scale;
      profiler.record_device_memory(
          (report.mem_model_gb + report.mem_cache_gb) * kBytesPerGb +
          runtime_bytes);

      // Feature staging. Admitted rows are copied into their device slots
      // first (admission order — the last admit per slot owns it), then
      // the batch tensor is assembled reading resident rows from the
      // backend-owned slab and the rest from the host tensor. Cached rows
      // are verbatim copies of immutable host rows, so the assembled
      // tensor is byte-identical to a plain gather — residency changes
      // where bytes come from, never what they are. (A hit row evicted
      // later in the same batch's update phase simply falls back to the
      // host read.)
      tensor::Tensor x;
      if (device_cache.has_storage()) {
        // Batch-scoped lock: one acquisition covers the admitted-row
        // fills AND the per-row gather below, instead of a lock per
        // resident_row call. The transfer stage is the only mutator in
        // flight (strict batch order), so this serializes against stats
        // readers, not against itself.
        const support::MutexLock cache_lock(device_cache.mutex());
        for (graph::NodeId v : lookup.admitted) {
          // A later admission in the same batch can recycle this row's
          // slot — it is no longer resident, so there is nothing to fill.
          if (float* dst = device_cache.resident_row(v)) {
            std::memcpy(dst, x_full.row(static_cast<std::size_t>(v)),
                        row_floats * sizeof(float));
          }
        }
        x = tensor::Tensor(mb.nodes.size(), x_full.cols());
        for (std::size_t r = 0; r < mb.nodes.size(); ++r) {
          const auto v = static_cast<std::size_t>(mb.nodes[r]);
          const float* src = device_cache.resident_row(mb.nodes[r]);
          if (src == nullptr) src = x_full.row(v);
          std::memcpy(x.row(r), src, row_floats * sizeof(float));
        }
      } else {
        x = tensor::gather_rows(x_full, mb.nodes);
      }
      if (config.compress_features) {
        for (std::size_t row = 0; row < x.rows(); ++row) {
          float* r = x.row(row);
          float lo = r[0];
          float hi = r[0];
          for (std::size_t j = 1; j < x.cols(); ++j) {
            lo = std::min(lo, r[j]);
            hi = std::max(hi, r[j]);
          }
          const float span = std::max(hi - lo, 1e-12f);
          for (std::size_t j = 0; j < x.cols(); ++j) {
            const float q = std::round((r[j] - lo) / span * 255.0f);
            r[j] = lo + q / 255.0f * span;
          }
        }
      }
      std::vector<int> labels(mb.seed_local.size());
      for (std::size_t s = 0; s < mb.seed_local.size(); ++s) {
        labels[s] = ds.labels[static_cast<std::size_t>(
            mb.nodes[static_cast<std::size_t>(mb.seed_local[s])])];
      }
      profiler.add_measured_stage(Profiler::Stage::kTransfer,
                                  detail::seconds_since(stage_t0));
      return PreparedBatch{std::move(mb), std::move(x), std::move(labels)};
    };

    // Component 3: the real training step, always on this thread and in
    // strict batch order — the optimizer state and the dropout RNG
    // stream are serialized by batch index under both executors.
    auto consume_batch = [&](std::size_t, PreparedBatch&& p) {
      GNAV_TRACE_SPAN("pipeline", "compute");
      const auto stage_t0 = detail::Clock::now();  // gnav-lint(wall-clock): profiler wall
      tensor::Tensor logits = model.forward(p.mb.subgraph, p.x, true, rng);
      const nn::LossResult loss =
          nn::softmax_cross_entropy(logits, p.mb.seed_local, p.labels);
      optimizer.zero_grad();
      model.backward(loss.grad_logits);
      optimizer.step();

      epoch_loss += loss.loss;
      correct += loss.correct;
      total += loss.total;
      report.avg_batch_nodes += static_cast<double>(p.mb.num_nodes());
      report.avg_batch_edges += static_cast<double>(p.mb.num_edges());
      if (options.record_batch_sizes) {
        report.per_batch_nodes.push_back(
            static_cast<double>(p.mb.num_nodes()));
      }
      profiler.add_measured_stage(Profiler::Stage::kCompute,
                                  detail::seconds_since(stage_t0));
    };

    PipelineEpochStats epoch_measured;
    if (async_executor) {
      // Pipelined executor: sampler workers feed the ordered transfer
      // stage through bounded queues while this thread trains. Biased
      // sampling chains sample+prepare on one producer (batch i's
      // sampling must observe batch i-1's cache update) but still
      // overlaps compute.
      epoch_measured = run_pipelined_epoch<sampling::MiniBatch, PreparedBatch>(
          seed_batches.size(), pipe, /*chain_sample_and_prepare=*/
          biased_sampling, sample_batch, prepare_batch, consume_batch);
    } else if (biased_sampling) {
      // Synchronous serial path: sample -> transfer -> compute per batch.
      // gnav-lint(wall-clock): profiler walls — measured stage seconds.
      const auto epoch_start = detail::Clock::now();
      epoch_measured.batches = seed_batches.size();
      epoch_measured.sampler_workers = 1;
      for (std::size_t i = 0; i < seed_batches.size(); ++i) {
        auto t0 = detail::Clock::now();  // gnav-lint(wall-clock): profiler wall
        sampling::MiniBatch mb = sample_batch(i);
        epoch_measured.sample_busy_s += detail::seconds_since(t0);
        t0 = detail::Clock::now();  // gnav-lint(wall-clock): profiler wall
        PreparedBatch p = prepare_batch(i, std::move(mb));
        epoch_measured.transfer_busy_s += detail::seconds_since(t0);
        t0 = detail::Clock::now();  // gnav-lint(wall-clock): profiler wall
        consume_batch(i, std::move(p));
        epoch_measured.compute_busy_s += detail::seconds_since(t0);
      }
      epoch_measured.wall_s = detail::seconds_since(epoch_start);
    } else {
      // Synchronous prefetch path: pool workers build batch i+1..i+w
      // while the serial transfer/train steps consume batch i (PyG
      // num_workers-style prefetching). The window caps live mini-batch
      // memory at ~4 per worker. Only the caller's blocked time counts
      // as the sampling stage — the builds themselves overlap.
      // gnav-lint(wall-clock): profiler wall — epoch wall seconds.
      const auto epoch_start = detail::Clock::now();
      const std::size_t window = std::max<std::size_t>(8, pool.size() * 4);
      epoch_measured.batches = seed_batches.size();
      epoch_measured.sampler_workers = pool.size();
      epoch_measured.prefetch_depth = window;
      sampling::MiniBatchLoader loader(*sampler, ds.graph, seed_batches,
                                       epoch_seed, pool, window);
      for (std::size_t i = 0; !loader.done(); ++i) {
        sampling::MiniBatch mb = loader.next();
        auto t0 = detail::Clock::now();  // gnav-lint(wall-clock): profiler wall
        PreparedBatch p = prepare_batch(i, std::move(mb));
        epoch_measured.transfer_busy_s += detail::seconds_since(t0);
        t0 = detail::Clock::now();  // gnav-lint(wall-clock): profiler wall
        consume_batch(i, std::move(p));
        epoch_measured.compute_busy_s += detail::seconds_since(t0);
      }
      epoch_measured.sample_busy_s = loader.wait_s();
      epoch_measured.wall_s = detail::seconds_since(epoch_start);
    }
    profiler.record_epoch_measured(epoch_measured);
    // The async executor publishes its epoch metrics itself; the two
    // synchronous paths publish here so every executor feeds the same
    // instruments.
    if (!async_executor) detail::publish_epoch_metrics(epoch_measured);
    run_measured.accumulate(epoch_measured);
    report.pipeline.modeled_overlapped_s +=
        profiler.epoch_modeled_overlapped_s() * time_scale;
    report.pipeline.modeled_sequential_s +=
        profiler.epoch_modeled_sequential_s() * time_scale;

    report.epoch_times_s.push_back(profiler.epoch_wall_s() * time_scale);
    report.epoch_loss.push_back(epoch_loss /
                                static_cast<double>(profiler.iterations()));
    report.epoch_train_accuracy.push_back(
        total == 0 ? 0.0
                   : static_cast<double>(correct) /
                         static_cast<double>(total));

    if (options.evaluate_every_epoch || epoch + 1 == options.epochs) {
      tensor::Tensor logits =
          model.forward(ds.graph, x_full, /*training=*/false, eval_rng);
      std::vector<int> val_labels(ds.val_nodes.size());
      for (std::size_t i = 0; i < ds.val_nodes.size(); ++i) {
        val_labels[i] =
            ds.labels[static_cast<std::size_t>(ds.val_nodes[i])];
      }
      report.epoch_val_accuracy.push_back(
          nn::accuracy(logits, ds.val_nodes, val_labels));
    }

    // Phase breakdown: keep the running average across epochs.
    const PhaseBreakdown ph = profiler.epoch_phases();
    report.epoch_phases.sample_s += ph.sample_s * time_scale;
    report.epoch_phases.transfer_s += ph.transfer_s * time_scale;
    report.epoch_phases.replace_s += ph.replace_s * time_scale;
    report.epoch_phases.compute_s += ph.compute_s * time_scale;
  }

  const auto n_epochs = static_cast<double>(options.epochs);
  report.epoch_phases.sample_s /= n_epochs;
  report.epoch_phases.transfer_s /= n_epochs;
  report.epoch_phases.replace_s /= n_epochs;
  report.epoch_phases.compute_s /= n_epochs;
  report.avg_batch_nodes /=
      n_epochs * static_cast<double>(report.iterations_per_epoch);
  report.avg_batch_edges /=
      n_epochs * static_cast<double>(report.iterations_per_epoch);

  double sum_t = 0.0;
  for (double t : report.epoch_times_s) sum_t += t;
  report.epoch_time_s = sum_t / n_epochs;

  report.mem_runtime_gb =
      profiler.peak_device_bytes() / kBytesPerGb - report.mem_model_gb -
      report.mem_cache_gb;
  report.peak_memory_gb =
      kFrameworkOverheadGb + profiler.peak_device_bytes() / kBytesPerGb;

  report.final_train_accuracy = report.epoch_train_accuracy.back();
  report.val_accuracy = report.epoch_val_accuracy.empty()
                            ? 0.0
                            : report.epoch_val_accuracy.back();
  report.cache_hit_rate = device_cache.stats().hit_rate();
  report.backend_id = run_backend->id();
  report.device_peak_bytes = run_backend->allocator().peak_bytes();

  // Executor profile: measured wall/stall totals plus the Eq. 4 modeled
  // pair accumulated per iteration above.
  report.pipeline.executor = to_string(pipe.mode);
  report.pipeline.prefetch_depth = run_measured.prefetch_depth;
  report.pipeline.sampler_workers = run_measured.sampler_workers;
  report.pipeline.push_stalls = run_measured.push_stalls;
  report.pipeline.pop_stalls = run_measured.pop_stalls;
  report.pipeline.mean_queue_occupancy = run_measured.mean_prepared_occupancy;
  report.pipeline.sample_wall_s = run_measured.sample_busy_s;
  report.pipeline.transfer_wall_s = run_measured.transfer_busy_s;
  report.pipeline.compute_wall_s = run_measured.compute_busy_s;
  report.pipeline.measured_wall_s = run_measured.wall_s;

  // Final test evaluation on the full graph.
  {
    tensor::Tensor logits =
        model.forward(ds.graph, x_full, /*training=*/false, eval_rng);
    std::vector<int> test_labels(ds.test_nodes.size());
    for (std::size_t i = 0; i < ds.test_nodes.size(); ++i) {
      test_labels[i] =
          ds.labels[static_cast<std::size_t>(ds.test_nodes[i])];
    }
    report.test_accuracy = nn::accuracy(logits, ds.test_nodes, test_labels);
  }

  report.wall_clock_s =
      // gnav-lint(wall-clock): profiler wall — closes wall_start above.
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  log_debug("run ", config.summary(), ": T=", report.epoch_time_s,
            "s, Mem=", report.peak_memory_gb,
            "GB, acc=", report.test_accuracy);
  return report;
}

}  // namespace gnav::runtime
