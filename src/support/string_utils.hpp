// Small string helpers shared by configuration parsing and table output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gnav {

/// Splits `s` on `delim`, trimming surrounding whitespace from each piece.
/// Empty pieces are preserved ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing whitespace.
std::string trim(std::string_view s);

/// Case-sensitive prefix / suffix checks (thin wrappers for readability).
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Lowercases ASCII characters.
std::string to_lower(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Formats a double with fixed precision (used for report tables).
std::string format_double(double v, int precision);

/// Parses a double/int with validation; throws gnav::Error on garbage.
double parse_double(std::string_view s);
long long parse_int(std::string_view s);

}  // namespace gnav
