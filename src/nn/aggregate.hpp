// Sparse neighborhood aggregation kernels (the Aggregate of Eq. 1).
//
// All kernels assume the mini-batch graph has a *symmetric* edge set —
// samplers in this library always emit symmetrized subgraphs — which makes
// the GCN-normalized operator self-adjoint and lets mean aggregation use
// the same CSR for its transpose.
#pragma once

#include "graph/csr_graph.hpp"
#include "tensor/tensor.hpp"

namespace gnav::nn {

/// Y[v] = mean over u in N(v) of X[u]; zero row when N(v) is empty.
tensor::Tensor aggregate_mean(const graph::CsrGraph& g,
                              const tensor::Tensor& x);

/// Transpose of aggregate_mean for backprop:
/// dX[u] = sum over v in N(u) of dY[v] / |N(v)|.
tensor::Tensor aggregate_mean_transpose(const graph::CsrGraph& g,
                                        const tensor::Tensor& dy);

/// GCN propagation with self-loops and symmetric normalization:
/// Y[v] = sum over u in N(v) ∪ {v} of X[u] / sqrt((d_v+1)(d_u+1)).
/// Self-adjoint on symmetric graphs, so it is its own transpose.
tensor::Tensor aggregate_gcn(const graph::CsrGraph& g,
                             const tensor::Tensor& x);

/// Y[v] = sum over u in N(v) of X[u] (plain sum aggregation).
tensor::Tensor aggregate_sum(const graph::CsrGraph& g,
                             const tensor::Tensor& x);

/// FLOPs of one sparse aggregation pass over g with `cols` channels
/// (2 flops per edge per channel: multiply + accumulate).
double aggregation_flops(const graph::CsrGraph& g, std::size_t cols);

}  // namespace gnav::nn
