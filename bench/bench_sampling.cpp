// Sampler throughput sweep: sampler kind x graph family x seed-batch
// size, single-threaded (one Rng stream per batch via task_seed, exactly
// like the runtime backend's loader). Emits a JSON document — to stdout
// by default, or to the file given with `--json <path>` — so CI can
// archive the sampling-perf trajectory next to bench_micro_kernels.
//
//   ./bench_sampling [--json out.json] [--reps N]
//
// The per-cell figure of merit is batches/s; avg batch nodes/edges are
// recorded too so a throughput change that merely shrank the batches is
// visible for what it is.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "sampling/sampler_factory.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

using namespace gnav;

namespace {

struct Cell {
  std::string graph;
  std::string sampler;
  std::size_t batch_size = 0;
  int reps = 0;
  double wall_s = 0.0;
  double batches_per_s = 0.0;
  double avg_batch_nodes = 0.0;
  double avg_batch_edges = 0.0;
};

graph::CsrGraph make_family(const std::string& name, Rng& rng) {
  if (name == "rmat") {
    return graph::rmat(14, 8.0, 0.57, 0.19, 0.19, rng);
  }
  if (name == "barabasi_albert") {
    return graph::barabasi_albert(16384, 8, rng);
  }
  if (name == "erdos_renyi") {
    return graph::erdos_renyi(16384, 16.0 / 16384.0, rng);
  }
  std::fprintf(stderr, "unknown graph family %s\n", name.c_str());
  std::exit(1);
}

std::vector<graph::NodeId> pick_seeds(const graph::CsrGraph& g,
                                      std::size_t count, Rng& rng) {
  std::vector<graph::NodeId> seeds;
  seeds.reserve(count);
  for (auto idx : rng.sample_without_replacement(
           g.num_nodes(), static_cast<std::int64_t>(count))) {
    seeds.push_back(idx);
  }
  return seeds;
}

Cell run_cell(const graph::CsrGraph& g, const std::string& family,
              sampling::SamplerKind kind, std::size_t batch_size, int reps) {
  sampling::SamplerSettings settings;
  settings.kind = kind;
  settings.hop_list = {10, 10};
  const auto sampler = sampling::make_sampler(settings, nullptr);

  Rng seed_rng(0xBE5EEDULL ^ batch_size);
  std::vector<std::vector<graph::NodeId>> batches;
  for (int r = 0; r < reps; ++r) {
    batches.push_back(pick_seeds(g, batch_size, seed_rng));
  }

  Cell cell;
  cell.graph = family;
  cell.sampler = to_string(kind);
  cell.batch_size = batch_size;
  cell.reps = reps;

  // Warm-up pass: page in the graph and let per-thread scratch grow to
  // its steady-state size before the timed loop.
  {
    Rng rng(support::task_seed(1, 0));
    (void)sampler->sample(g, batches[0], rng);
  }

  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    Rng rng(support::task_seed(2, static_cast<std::uint64_t>(r)));
    const sampling::MiniBatch mb =
        sampler->sample(g, batches[static_cast<std::size_t>(r)], rng);
    cell.avg_batch_nodes += static_cast<double>(mb.num_nodes());
    cell.avg_batch_edges += static_cast<double>(mb.num_edges());
  }
  cell.wall_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  cell.batches_per_s = static_cast<double>(reps) / cell.wall_s;
  cell.avg_batch_nodes /= reps;
  cell.avg_batch_edges /= reps;
  return cell;
}

void emit_json(std::FILE* out, const std::vector<Cell>& cells) {
  std::fprintf(out, "{\n  \"benchmark\": \"bench_sampling\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(out,
                 "    {\"graph\": \"%s\", \"sampler\": \"%s\", "
                 "\"batch_size\": %zu, \"reps\": %d, \"wall_s\": %.6f, "
                 "\"batches_per_s\": %.3f, \"avg_batch_nodes\": %.1f, "
                 "\"avg_batch_edges\": %.1f}%s\n",
                 c.graph.c_str(), c.sampler.c_str(), c.batch_size, c.reps,
                 c.wall_s, c.batches_per_s, c.avg_batch_nodes,
                 c.avg_batch_edges, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int reps = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json] [--reps N]\n",
                   argv[0]);
      return 1;
    }
  }
  if (reps < 1) {
    std::fprintf(stderr, "--reps must be >= 1\n");
    return 1;
  }

  const std::vector<std::string> families = {"rmat", "barabasi_albert",
                                             "erdos_renyi"};
  const std::vector<sampling::SamplerKind> kinds = {
      sampling::SamplerKind::kNodeWise,  sampling::SamplerKind::kLayerWise,
      sampling::SamplerKind::kSaintWalk, sampling::SamplerKind::kSaintNode,
      sampling::SamplerKind::kSaintEdge, sampling::SamplerKind::kCluster,
  };
  const std::vector<std::size_t> batch_sizes = {256, 1024};

  std::vector<Cell> cells;
  for (const std::string& family : families) {
    Rng graph_rng(0x6AF ^ std::hash<std::string>{}(family));
    const graph::CsrGraph g = make_family(family, graph_rng);
    for (sampling::SamplerKind kind : kinds) {
      for (std::size_t bs : batch_sizes) {
        const Cell cell = run_cell(g, family, kind, bs, reps);
        std::fprintf(stderr, "%-16s %-12s batch=%-5zu %8.2f batches/s\n",
                     cell.graph.c_str(), cell.sampler.c_str(),
                     cell.batch_size, cell.batches_per_s);
        cells.push_back(cell);
      }
    }
  }

  if (json_path.empty()) {
    emit_json(stdout, cells);
  } else {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    emit_json(f, cells);
    std::fclose(f);
  }
  return 0;
}
