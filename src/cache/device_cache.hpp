// Device-side feature cache — the unified abstraction of the paper's
// transmission-strategy category (Sec. 3.2): free device memory holds
// feature rows of selected vertices; each mini-batch is split into a
// cached part (no transfer) and a miss part (transferred host->device),
// after which the cache updates per its policy.
//
// Policy templates:
//   kNone    — no cache; everything transfers (PyG behavior).
//   kStatic  — preload the top-`capacity` degree-ranked vertices, never
//              update (PaGraph's static computation-aware cache).
//   kLru/kFifo — classic dynamic replacement, backed by an intrusive
//              doubly-linked recency/insertion list: every touch and
//              eviction is O(1) rather than an O(capacity) scan.
//   kWeightedDegree — dynamic, but a resident vertex is only evicted for
//              a higher-degree one (degree-weighted admission). Backed by
//              a lazy min-heap keyed on (degree, insertion sequence), so
//              the admission probe and the eviction are one amortized
//              O(log capacity) heap access instead of two O(capacity)
//              scans per miss. Victims are identical to the scan-based
//              implementation (min degree, earliest-inserted on ties).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace gnav::cache {

enum class CachePolicy { kNone, kStatic, kLru, kFifo, kWeightedDegree };

/// Device-side bookkeeping per cached row: the resident-set index entry
/// (global vertex id → cache slot). Charged by the memory model (Eq. 9's
/// Γ_cache) on top of the feature payload, so a cache is never free even
/// when every cached row would otherwise have been staged.
inline constexpr double kIndexBytesPerRow = 8.0;

std::string to_string(CachePolicy policy);
CachePolicy cache_policy_from_string(const std::string& s);

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

struct LookupResult {
  std::size_t hits = 0;
  /// Vertices that must be fetched from the host this iteration.
  std::vector<graph::NodeId> misses;
  /// Vertices newly admitted to the cache (replaced stale entries) —
  /// |replaced| drives t_replace in Eq. 5.
  std::size_t replaced = 0;
};

class DeviceCache {
 public:
  /// `capacity` is the number of feature rows the device can hold
  /// (r * |V| in the paper's notation). Static policy preloads by degree.
  DeviceCache(CachePolicy policy, std::size_t capacity,
              const graph::CsrGraph& graph);

  /// Processes one mini-batch worth of vertex ids: classifies hits vs
  /// misses and applies the update policy to the misses. O(batch) plus
  /// an amortized O(log capacity) heap access per wdeg admission.
  ///
  /// `sequence` is the ordered-admission contract: when >= 0 it must
  /// equal the number of batches this cache has already admitted. The
  /// pipelined epoch executor passes the running batch index so that a
  /// stage-reordering bug trips a loud error instead of silently skewing
  /// the hit/miss sequence; pass -1 (default) to opt out.
  LookupResult lookup_and_update(const std::vector<graph::NodeId>& batch,
                                 std::int64_t sequence = -1);

  /// Batches admitted so far (the expected next `sequence`).
  std::uint64_t batches_applied() const { return batches_applied_; }

  CachePolicy policy() const { return policy_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t resident_count() const { return resident_count_; }
  const CacheStats& stats() const { return stats_; }

  bool is_resident(graph::NodeId v) const {
    return resident_[static_cast<std::size_t>(v)] != 0;
  }

  /// Residency bitmap (size |V|) — handed to locality-aware samplers so
  /// cache-aware sampling (2PGraph) can prefer resident vertices.
  const std::vector<char>& residency_bitmap() const { return resident_; }

  /// Monotone counter bumped on every residency change. Samplers key
  /// cached weighted-draw structures on it to detect bitmap staleness
  /// without scanning it.
  const std::uint64_t& residency_version() const { return version_; }

 private:
  /// Lazy-heap entry for the wdeg policy. Ordered by (degree, seq): the
  /// minimum is the lowest-degree resident, earliest-inserted on ties —
  /// exactly the victim the old linear scan chose.
  struct WdegEntry {
    graph::EdgeId degree = 0;
    std::uint64_t seq = 0;
    graph::NodeId vertex = 0;
  };

  /// std::push_heap/pop_heap build max-heaps; this "greater" comparator
  /// turns them into a min-heap on (degree, seq).
  static bool wdeg_greater(const WdegEntry& a, const WdegEntry& b) {
    return a.degree != b.degree ? a.degree > b.degree : a.seq > b.seq;
  }

  void insert(graph::NodeId v, LookupResult& result);
  void evict_one(LookupResult& result);
  void list_push_back(graph::NodeId v);
  void list_unlink(graph::NodeId v);
  /// Current wdeg victim candidate; pops stale heap entries on the way.
  graph::NodeId wdeg_min();
  void wdeg_compact();

  static constexpr graph::NodeId kNil = -1;

  CachePolicy policy_;
  std::size_t capacity_;
  const graph::CsrGraph& graph_;
  std::vector<char> resident_;
  std::size_t resident_count_ = 0;
  CacheStats stats_;
  std::uint64_t version_ = 0;
  std::uint64_t seq_counter_ = 0;
  std::uint64_t batches_applied_ = 0;

  // Intrusive list over vertex ids (LRU: recency order, FIFO: insertion
  // order; head = next eviction victim).
  std::vector<graph::NodeId> list_prev_;
  std::vector<graph::NodeId> list_next_;
  graph::NodeId list_head_ = kNil;
  graph::NodeId list_tail_ = kNil;

  // wdeg lazy min-heap + per-vertex insertion sequence used to detect
  // stale entries (a re-inserted vertex gets a fresh seq).
  std::vector<WdegEntry> wdeg_heap_;
  std::vector<std::uint64_t> insert_seq_;
};

}  // namespace gnav::cache
