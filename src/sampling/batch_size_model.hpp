// Analytic mini-batch size expectation (paper Eq. 12):
//
//   E[|V_i|] = f_overlapping( |B_0| * Π_l (1 + k_l)^τ , p(η) )
//
// The unpenalized product is the tree-expansion upper bound; real batches
// are smaller because fanouts revisit shared neighbors. The white-box part
// below computes the bound and a saturation-corrected analytic core; the
// learnable penalty f_overlapping is fit on profiled runs by the gray-box
// estimator (estimator/batch_size_estimator).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph_stats.hpp"

namespace gnav::sampling {

/// Π_l (1 + min(k_l, avg_degree))^τ expansion with τ damping; k = -1 uses
/// the graph's average degree (full neighborhood).
double expansion_product(const std::vector<int>& hop_list, double avg_degree,
                         double tau);

/// Tree-expansion upper bound |B_0| * Π (1 + k_l).
double tree_upper_bound(std::size_t batch_size,
                        const std::vector<int>& hop_list, double avg_degree);

/// Analytic expectation of |V_i| before the learned penalty: the tree
/// bound clipped against graph saturation (a batch can never exceed the
/// vertex count, and overlap grows as the bound approaches it):
///   E ≈ n * (1 - exp(-bound / n)).
double analytic_batch_size(std::size_t batch_size,
                           const std::vector<int>& hop_list,
                           const graph::GraphProfile& profile, double tau);

}  // namespace gnav::sampling
