// Finite-difference gradient checks for every convolution layer and the
// softmax cross-entropy loss — the strongest correctness evidence the
// manual-backward training stack has. Parameterized over layer kinds.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "graph/graph_builder.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "support/rng.hpp"
#include "tensor/ops.hpp"

namespace gnav::nn {
namespace {

graph::CsrGraph test_graph() {
  // Small irregular graph: a triangle, a pendant, and an isolated vertex.
  return graph::build_undirected(6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}});
}

/// Scalar objective: L = sum_ij C_ij * H_ij for a fixed random C, so
/// dL/dH = C exactly and all curvature comes from the layer itself.
double objective(GraphConv& conv, const graph::CsrGraph& g,
                 const tensor::Tensor& x, const tensor::Tensor& c) {
  const tensor::Tensor h = conv.forward(g, x);
  double total = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    total += static_cast<double>(h.data()[i]) * c.data()[i];
  }
  return total;
}

struct LayerFactory {
  const char* name;
  std::function<std::unique_ptr<GraphConv>(std::size_t, std::size_t, Rng&)>
      make;
};

class GradCheck : public ::testing::TestWithParam<LayerFactory> {};

TEST_P(GradCheck, ParameterAndInputGradientsMatchFiniteDifferences) {
  Rng rng(1234);
  const auto g = test_graph();
  const std::size_t in = 5;
  const std::size_t out = 4;
  auto conv = GetParam().make(in, out, rng);
  tensor::Tensor x = tensor::Tensor::uniform(6, in, -1.0f, 1.0f, rng);
  const tensor::Tensor c = tensor::Tensor::uniform(6, out, -1.0f, 1.0f, rng);

  // Analytic gradients.
  for (Parameter* p : conv->parameters()) p->zero_grad();
  objective(*conv, g, x, c);
  const tensor::Tensor dx = conv->backward(c);

  const float eps = 2e-3f;
  auto check = [&](float* slot, double analytic, const std::string& what) {
    const float saved = *slot;
    *slot = saved + eps;
    const double plus = objective(*conv, g, x, c);
    *slot = saved - eps;
    const double minus = objective(*conv, g, x, c);
    *slot = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    const double scale = std::max({1.0, std::abs(numeric), std::abs(analytic)});
    EXPECT_NEAR(analytic / scale, numeric / scale, 2e-2)
        << what << " (analytic=" << analytic << ", numeric=" << numeric
        << ")";
  };

  // Probe a spread of parameter entries in every parameter tensor.
  for (Parameter* p : conv->parameters()) {
    const std::size_t stride = std::max<std::size_t>(1, p->value.size() / 5);
    for (std::size_t i = 0; i < p->value.size(); i += stride) {
      check(&p->value.data()[i], p->grad.data()[i],
            p->name + "[" + std::to_string(i) + "]");
    }
  }
  // Probe input gradient entries.
  for (std::size_t i = 0; i < x.size(); i += 7) {
    check(&x.data()[i], dx.data()[i], "x[" + std::to_string(i) + "]");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, GradCheck,
    ::testing::Values(
        LayerFactory{"gcn",
                     [](std::size_t in, std::size_t out, Rng& rng) {
                       return std::unique_ptr<GraphConv>(
                           new GcnConv(in, out, rng));
                     }},
        LayerFactory{"sage",
                     [](std::size_t in, std::size_t out, Rng& rng) {
                       return std::unique_ptr<GraphConv>(
                           new SageConv(in, out, rng));
                     }},
        LayerFactory{"gat",
                     [](std::size_t in, std::size_t out, Rng& rng) {
                       return std::unique_ptr<GraphConv>(
                           new GatConv(in, out, rng));
                     }}),
    [](const ::testing::TestParamInfo<LayerFactory>& info) {
      return std::string(info.param.name);
    });

TEST(LossGradCheck, CrossEntropyGradientMatchesFiniteDifferences) {
  Rng rng(77);
  tensor::Tensor logits = tensor::Tensor::uniform(4, 3, -2.0f, 2.0f, rng);
  const std::vector<std::int64_t> rows = {0, 2, 3};
  const std::vector<int> labels = {1, 0, 2};
  const LossResult res = softmax_cross_entropy(logits, rows, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits.data()[i];
    logits.data()[i] = saved + eps;
    const double plus = softmax_cross_entropy(logits, rows, labels).loss;
    logits.data()[i] = saved - eps;
    const double minus = softmax_cross_entropy(logits, rows, labels).loss;
    logits.data()[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(res.grad_logits.data()[i], numeric, 2e-3);
  }
}

}  // namespace
}  // namespace gnav::nn
