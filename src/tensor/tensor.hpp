// Dense row-major float32 matrix ("tensor") — the compute substrate that
// stands in for the paper's PyTorch/CUDA stack. GNN training in this
// reproduction genuinely runs on these tensors (forward, backward, Adam),
// so reported accuracies are real measurements; only wall-clock time is
// delegated to the hardware cost model.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace gnav::tensor {

/// 2-D row-major float matrix. Rank-1 data is modeled as [n x 1].
class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f);

  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor ones(std::size_t rows, std::size_t cols);
  /// Glorot/Xavier-uniform initialization (the PyG default for conv weights).
  static Tensor glorot(std::size_t rows, std::size_t cols, Rng& rng);
  /// Element-wise uniform in [lo, hi).
  static Tensor uniform(std::size_t rows, std::size_t cols, float lo,
                        float hi, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float v);
  void zero() { fill(0.0f); }

  /// Frobenius norm and element sum (used by gradient checks and tests).
  double norm() const;
  double sum() const;

  /// Shape as "[r x c]" for error messages.
  std::string shape_str() const;

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace gnav::tensor
