// Labeled GNN datasets.
//
// The paper evaluates on Ogbn-arxiv (AR), Ogbn-products (PR), Reddit (RD)
// and Reddit2 (RD2). Those corpora cannot ship with this repository, so
// the registry below instantiates *scaled-down synthetic analogues*: a
// power-law + planted-community graph whose degree skew, density, feature
// dimensionality and class count mirror the original (scaled ~40-300x in
// vertex count so a CPU epoch takes seconds). `real_scale_factor` records
// the down-scaling so the hardware cost model can report times in the same
// ballpark as the paper's testbed. See DESIGN.md "Substitutions".
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "support/rng.hpp"

namespace gnav::graph {

/// A node-classification dataset: graph + dense features + labels + splits.
struct Dataset {
  std::string name;
  CsrGraph graph;
  int feature_dim = 0;
  int num_classes = 0;
  /// Row-major [num_nodes x feature_dim].
  std::vector<float> features;
  /// Per-node class label in [0, num_classes).
  std::vector<int> labels;
  std::vector<NodeId> train_nodes;
  std::vector<NodeId> val_nodes;
  std::vector<NodeId> test_nodes;
  /// real_n / synthetic_n for the dataset this analogue stands in for
  /// (1.0 for purely synthetic augmentation graphs).
  double real_scale_factor = 1.0;
  /// real_feature_dim / synthetic feature_dim — memory volumes are
  /// extrapolated by this on top of real_scale_factor.
  double real_feature_scale = 1.0;
  /// Ratio of per-iteration batch volume (|V_i|, edges, FLOPs) between the
  /// original dataset and this analogue — the original's higher average
  /// degree expands every mini-batch further. Times/memory extrapolate by
  /// this on top of the other two scales.
  double real_volume_scale = 1.0;

  NodeId num_nodes() const { return graph.num_nodes(); }
  std::size_t feature_bytes_per_node() const {
    return static_cast<std::size_t>(feature_dim) * sizeof(float);
  }
  /// Pointer to node v's feature row.
  const float* feature_row(NodeId v) const {
    return features.data() + static_cast<std::size_t>(v) * feature_dim;
  }
  /// Validates internal consistency (sizes, label ranges, disjoint splits).
  void validate() const;
};

/// Generation knobs for a synthetic analogue.
struct SyntheticSpec {
  std::string name = "synthetic";
  NodeId num_nodes = 2000;
  int num_classes = 8;
  int feature_dim = 32;
  double power_law_exponent = 2.3;
  std::size_t min_degree = 3;
  std::size_t max_degree = 200;
  /// Probability a stub is matched inside its own community.
  double community_rewire_prob = 0.7;
  /// Class-mean magnitude relative to unit feature noise. Smaller values
  /// force models to rely on neighborhood aggregation (realistic regime).
  double feature_signal = 0.9;
  double train_fraction = 0.6;
  double val_fraction = 0.2;
  double real_scale_factor = 1.0;
  double real_feature_scale = 1.0;
  double real_volume_scale = 1.0;
  /// Fraction of labels replaced by a uniformly random class — models the
  /// irreducible labeling noise of the real corpora so accuracies land in
  /// the paper's regime instead of saturating at ~100%.
  double label_noise = 0.0;
};

/// Builds a dataset from the spec (deterministic in `seed`).
Dataset make_synthetic_dataset(const SyntheticSpec& spec,
                               std::uint64_t seed);

/// Named analogues of the paper's datasets: "ogbn-arxiv" (AR),
/// "ogbn-products" (PR), "reddit" (RD), "reddit2" (RD2).
/// Throws gnav::Error for unknown names.
Dataset load_dataset(const std::string& name, std::uint64_t seed = 7);

/// All registry names, in the order used by the benchmarks.
std::vector<std::string> dataset_names();

/// Short code used in the paper's tables ("ogbn-arxiv" -> "AR", ...).
std::string dataset_code(const std::string& name);

/// Random power-law graphs used as estimator training-data augmentation
/// (Sec. 4.1 "we randomly generate some power-law graphs ... as data
/// enhancement"). `index` varies the size/skew deterministically.
Dataset make_power_law_augmentation(int index, std::uint64_t seed);

}  // namespace gnav::graph
