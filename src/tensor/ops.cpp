#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace gnav::tensor {

Tensor matmul(const Tensor& a, const Tensor& b) {
  GNAV_CHECK(a.cols() == b.rows(),
             "matmul shape mismatch " + a.shape_str() + " * " + b.shape_str());
  Tensor c(a.rows(), b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      const float* bp = b.row(p);
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
  return c;
}

Tensor matmul_at_b(const Tensor& a, const Tensor& b) {
  GNAV_CHECK(a.rows() == b.rows(),
             "matmul_at_b shape mismatch " + a.shape_str() + " , " +
                 b.shape_str());
  Tensor c(a.cols(), b.cols());
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = a.row(p);
    const float* bp = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = ap[i];
      if (av == 0.0f) continue;
      float* ci = c.row(i);
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
  return c;
}

Tensor matmul_a_bt(const Tensor& a, const Tensor& b) {
  GNAV_CHECK(a.cols() == b.cols(),
             "matmul_a_bt shape mismatch " + a.shape_str() + " , " +
                 b.shape_str());
  Tensor c(a.rows(), b.rows());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b.row(j);
      float s = 0.0f;
      for (std::size_t p = 0; p < k; ++p) s += ai[p] * bj[p];
      ci[j] = s;
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  Tensor t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  GNAV_CHECK(a.same_shape(b), std::string(op) + " shape mismatch " +
                                  a.shape_str() + " vs " + b.shape_str());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] += b.data()[i];
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] -= b.data()[i];
  return c;
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "hadamard");
  Tensor c = a;
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] *= b.data()[i];
  return c;
}

void add_inplace(Tensor& y, const Tensor& x) {
  check_same_shape(y, x, "add_inplace");
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] += x.data()[i];
}

void axpy(Tensor& y, float alpha, const Tensor& x) {
  check_same_shape(y, x, "axpy");
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] += alpha * x.data()[i];
}

void scale_inplace(Tensor& a, float alpha) {
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] *= alpha;
}

void add_row_bias_inplace(Tensor& a, const Tensor& bias) {
  GNAV_CHECK(bias.rows() == 1 && bias.cols() == a.cols(),
             "bias must be [1 x cols], got " + bias.shape_str());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    float* ai = a.row(i);
    const float* b = bias.row(0);
    for (std::size_t j = 0; j < a.cols(); ++j) ai[j] += b[j];
  }
}

Tensor column_sum(const Tensor& grad) {
  Tensor out(1, grad.cols());
  for (std::size_t i = 0; i < grad.rows(); ++i) {
    const float* gi = grad.row(i);
    for (std::size_t j = 0; j < grad.cols(); ++j) out.at(0, j) += gi[j];
  }
  return out;
}

Tensor relu(const Tensor& z) {
  Tensor out = z;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::max(0.0f, out.data()[i]);
  }
  return out;
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& z) {
  check_same_shape(grad_out, z, "relu_backward");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (z.data()[i] <= 0.0f) g.data()[i] = 0.0f;
  }
  return g;
}

Tensor elu(const Tensor& z, float alpha) {
  Tensor out = z;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float x = out.data()[i];
    if (x < 0.0f) out.data()[i] = alpha * (std::exp(x) - 1.0f);
  }
  return out;
}

Tensor elu_backward(const Tensor& grad_out, const Tensor& z, float alpha) {
  check_same_shape(grad_out, z, "elu_backward");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const float x = z.data()[i];
    if (x < 0.0f) g.data()[i] *= alpha * std::exp(x);
  }
  return g;
}

Tensor leaky_relu(const Tensor& z, float slope) {
  Tensor out = z;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float x = out.data()[i];
    if (x < 0.0f) out.data()[i] = slope * x;
  }
  return out;
}

Tensor leaky_relu_backward(const Tensor& grad_out, const Tensor& z,
                           float slope) {
  check_same_shape(grad_out, z, "leaky_relu_backward");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (z.data()[i] < 0.0f) g.data()[i] *= slope;
  }
  return g;
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out = logits;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    float* row = out.row(i);
    float mx = row[0];
    for (std::size_t j = 1; j < out.cols(); ++j) mx = std::max(mx, row[j]);
    float total = 0.0f;
    for (std::size_t j = 0; j < out.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      total += row[j];
    }
    const float inv = 1.0f / std::max(total, 1e-20f);
    for (std::size_t j = 0; j < out.cols(); ++j) row[j] *= inv;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& a) {
  std::vector<int> out(a.rows(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* row = a.row(i);
    int best = 0;
    for (std::size_t j = 1; j < a.cols(); ++j) {
      if (row[j] > row[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(j);
      }
    }
    out[i] = best;
  }
  return out;
}

Tensor gather_rows(const Tensor& src, const std::vector<std::int64_t>& rows) {
  Tensor out(rows.size(), src.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto r = rows[i];
    GNAV_CHECK(r >= 0 && static_cast<std::size_t>(r) < src.rows(),
               "gather_rows index out of range");
    std::copy_n(src.row(static_cast<std::size_t>(r)), src.cols(), out.row(i));
  }
  return out;
}

Tensor dropout(const Tensor& a, float p, Rng& rng, Tensor* mask) {
  GNAV_CHECK(p >= 0.0f && p < 1.0f, "dropout p must be in [0,1)");
  Tensor out = a;
  if (mask != nullptr) *mask = Tensor(a.rows(), a.cols());
  if (p == 0.0f) {
    if (mask != nullptr) mask->fill(1.0f);
    return out;
  }
  const float scale = 1.0f / (1.0f - p);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng.bernoulli(p)) {
      out.data()[i] = 0.0f;
      if (mask != nullptr) mask->data()[i] = 0.0f;
    } else {
      out.data()[i] *= scale;
      if (mask != nullptr) mask->data()[i] = scale;
    }
  }
  return out;
}

Tensor dropout_backward(const Tensor& grad_out, const Tensor& mask) {
  return hadamard(grad_out, mask);
}

}  // namespace gnav::tensor
