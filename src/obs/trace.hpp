// gnav::obs — scoped trace spans (half two of the telemetry layer; the
// metrics registry lives in obs/metrics.hpp).
//
// GNAV_TRACE_SPAN("pipeline", "transfer") opens a RAII span on the
// current thread; its destructor records [start, end) into a per-thread
// span buffer. Buffers are drained by write_chrome_trace() into Chrome
// trace-event JSON ("ph":"X" complete events plus thread-name metadata),
// loadable in chrome://tracing or https://ui.perfetto.dev — one artifact
// showing sample/transfer/compute overlap, cache admissions, and tenant
// interleaving on a shared timeline.
//
// Concurrency model (single-producer per buffer):
//   - Each thread that records a span while tracing is enabled lazily
//     registers one ThreadBuffer; the owning thread is its only writer.
//     The owner writes the record in place and then release-stores the
//     new count; the drainer acquire-loads the count and reads exactly
//     that many records. No locks on the hot path, no torn records.
//   - Buffers are owned by a global registry (shared_ptr), so spans from
//     threads that have already exited — the pipelined executor spawns
//     fresh stage threads per epoch — survive until drained.
//   - A full buffer drops further spans and counts the drops; capacity
//     is fixed per buffer at registration (set_trace_buffer_capacity).
//
// Contracts (same as the metrics half):
//   - Near-zero disabled path: the ScopedSpan constructor is one relaxed
//     load when tracing is off — no clock read, no buffer touch.
//   - No Rng stream is read or advanced; timestamps come from
//     steady_clock relative to a process-fixed epoch. Enabling tracing
//     therefore cannot perturb any TrainReport bit (test_obs.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>

namespace gnav::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
/// Nanoseconds since the process-fixed trace epoch (steady clock).
std::uint64_t trace_now_ns();
void record_span(const char* category, const char* name,
                 std::uint64_t start_ns, std::uint64_t end_ns);
}  // namespace detail

/// Global toggle. Off by default; CLI/bench flags and tests flip it.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_tracing_enabled(bool enabled);

/// Display name for the calling thread in trace output ("gnav-pool-3",
/// "gnav-stage-transfer"). Applies to this thread's buffer (existing or
/// future); unnamed threads show as "thread-<tid>".
void set_thread_name(std::string name);

/// Spans recorded per-thread; name is captured by copy (truncated) so
/// dynamic names need not outlive the span.
struct SpanRecord {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  const char* category = nullptr;  // must have static storage duration
  char name[40] = {};
};

/// RAII span. `category` must be a string literal (static storage);
/// `name` is copied. Construction outside an enabled tracing session is
/// one relaxed atomic load.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, std::string_view name) {
    if (!tracing_enabled()) return;
    category_ = category;
    const std::size_t n = name.size() < sizeof(name_) - 1
                              ? name.size()
                              : sizeof(name_) - 1;
    std::memcpy(name_, name.data(), n);
    name_[n] = '\0';
    start_ns_ = detail::trace_now_ns();
  }
  ~ScopedSpan() {
    if (category_ == nullptr) return;
    detail::record_span(category_, name_, start_ns_, detail::trace_now_ns());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
  char name_[40] = {};
};

#define GNAV_OBS_CONCAT2(a, b) a##b
#define GNAV_OBS_CONCAT(a, b) GNAV_OBS_CONCAT2(a, b)
/// Opens a scoped trace span covering the rest of the enclosing block.
#define GNAV_TRACE_SPAN(category, name)                             \
  const ::gnav::obs::ScopedSpan GNAV_OBS_CONCAT(gnav_trace_span_,   \
                                                __COUNTER__)(        \
      category, name)

/// Spans dropped because a thread buffer was full (across all threads).
std::uint64_t trace_dropped_spans();
/// Spans currently buffered (across all threads).
std::uint64_t trace_recorded_spans();

/// Per-buffer capacity (span records) applied to buffers registered
/// AFTER the call; default 8192. Mainly for tests and long benches.
void set_trace_buffer_capacity(std::size_t spans);

/// Drains every thread buffer into Chrome trace-event JSON. Safe to call
/// while tracing is enabled (records are read up to each buffer's
/// published count), but a coherent artifact wants quiescence: disable
/// tracing and join traced work first.
void write_chrome_trace(std::ostream& os);
std::string chrome_trace_json();

/// Clears every buffer's spans and drop counts but keeps thread
/// registrations. Only call while no traced work is in flight (tests).
void reset_trace();

}  // namespace gnav::obs
