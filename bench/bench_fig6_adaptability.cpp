// Fig. 6 reproduction — "Adaptability validation of generated guidelines
// on Reddit2+SAGE".
//
// The reduced design space is exhausted by *actually training* every
// candidate (ground truth), exactly as the paper collects its Fig. 6
// points. Each point is printed with its (T, Γ, Acc) and whether it lies
// on the measured Pareto front of (a) the time-memory plane and (b) the
// memory-accuracy plane. The guidelines GNNavigator generates (balance +
// extremes) and the baseline templates are then placed on the same chart:
// adaptability holds when the guidelines land on (or at) the front.
#include <algorithm>
#include <cstdio>
#include <set>

#include "dse/decision_maker.hpp"
#include "dse/design_space.hpp"
#include "dse/explorer.hpp"
#include "navigator/navigator.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  navigator::GNNavigator nav(graph::load_dataset("reddit2"),
                             hw::make_profile("rtx4090"),
                             dse::BaseSettings{});
  const int epochs = 2;

  // Ground truth: train every candidate in the reduced space.
  const dse::DesignSpace space =
      dse::DesignSpace::reduced(dse::BaseSettings{});
  const auto configs = space.enumerate();
  std::printf("exhausting reduced design space: %zu candidates x %d epochs"
              "...\n\n", configs.size(), epochs);

  std::vector<dse::PerfPoint> points;
  std::vector<std::string> names;
  for (const auto& config : configs) {
    const auto r = nav.train(config, epochs);
    points.push_back({r.epoch_time_s, r.peak_memory_gb, r.test_accuracy});
    names.push_back(config.summary());
  }
  // Baselines live in the same chart (paper legend: PyG/PaGraph/2PGraph).
  for (const char* tmpl : {"pyg", "pagraph-full", "2pgraph"}) {
    const auto r = nav.reproduce(tmpl, epochs);
    points.push_back({r.epoch_time_s, r.peak_memory_gb, r.test_accuracy});
    names.push_back(tmpl);
  }

  const auto front_tm =
      dse::pareto_front_2d(points, dse::Plane::kTimeMemory);
  const auto front_ma =
      dse::pareto_front_2d(points, dse::Plane::kMemoryAccuracy);
  const std::set<std::size_t> tm(front_tm.begin(), front_tm.end());
  const std::set<std::size_t> ma(front_ma.begin(), front_ma.end());

  Table table({"epoch time (s)", "memory (MiB)", "accuracy (%)",
               "on T-M front", "on M-A front", "candidate"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.add_row({format_double(points[i].time_s, 2),
                   format_double(points[i].memory_gb * 1024.0, 0),
                   format_double(100.0 * points[i].accuracy, 2),
                   tm.contains(i) ? "*" : "",
                   ma.contains(i) ? "*" : "", names[i]});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  table.write_csv("fig6_design_space_ground_truth.csv");

  // Now let GNNavigator pick guidelines with different priorities and
  // check where they land relative to the measured front.
  std::printf("training estimator for guideline generation...\n");
  nav.prepare_default(/*configs_per_dataset=*/10, /*augmentation_graphs=*/1,
                      /*profiling_epochs=*/1);
  Table chosen({"priority", "epoch time (s)", "memory (MiB)",
                "accuracy (%)", "on T-M front", "on M-A front",
                "chosen config"});
  for (const auto& targets :
       {dse::targets_balance(), dse::targets_extreme_time_memory(),
        dse::targets_extreme_memory_accuracy(),
        dse::targets_extreme_time_accuracy()}) {
    const auto guideline = nav.generate_guideline(targets, {});
    const auto r = nav.train(guideline.config, epochs);
    // A guideline "matches the front" if no measured ground-truth point
    // 2D-dominates it in the corresponding plane.
    auto on_front = [&](dse::Plane plane) {
      std::vector<dse::PerfPoint> all = points;
      all.push_back({r.epoch_time_s, r.peak_memory_gb, r.test_accuracy});
      const auto front = dse::pareto_front_2d(all, plane);
      const std::size_t self = all.size() - 1;
      return std::find(front.begin(), front.end(), self) != front.end();
    };
    chosen.add_row(
        {targets.name, format_double(r.epoch_time_s, 2),
         format_double(r.peak_memory_gb * 1024.0, 0),
         format_double(100.0 * r.test_accuracy, 2),
         std::string(on_front(dse::Plane::kTimeMemory) ? "*" : "near"),
         std::string(on_front(dse::Plane::kMemoryAccuracy) ? "*" : "near"),
         guideline.config.summary()});
  }
  std::printf("\nGNNavigator guidelines on the ground-truth chart:\n\n%s\n",
              chosen.to_ascii().c_str());
  chosen.write_csv("fig6_guidelines.csv");
  std::printf("(paper Fig. 6: provided guidelines 'perfectly match the\n"
              " actual Pareto front'; '*' marks front membership)\n");
  return 0;
}
