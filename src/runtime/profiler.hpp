// Phase-time and memory profiler — the reproduction's analogue of the
// PyTorch profiler the paper uses to measure T and Γ. Times come in two
// kinds and the profiler keeps them strictly apart:
//
//   modeled   — simulated seconds from the hardware cost model. Eq. 4's
//               overlapped() and the no-pipelining sequential() are BOTH
//               accumulated every iteration, so the predicted overlap
//               benefit (sequential / overlapped) is always available,
//               independent of which one counts toward epoch_wall_s().
//   measured  — real wall-clock seconds reported by the epoch executor
//               (runtime/pipeline.hpp): per-stage busy time, stall
//               counts, and the epoch's actual wall time. Comparing the
//               measured speedup against the modeled ratio is what lets
//               the estimator's f_overlapping correction be fit from
//               data instead of assumed.
//
// Memory is analytic bytes tracked against the device budget.
#pragma once

#include <cstdint>

#include "hw/cost_model.hpp"
#include "runtime/pipeline.hpp"

namespace gnav::runtime {

struct PhaseBreakdown {
  double sample_s = 0.0;
  double transfer_s = 0.0;
  double replace_s = 0.0;
  double compute_s = 0.0;

  double total() const {
    return sample_s + transfer_s + replace_s + compute_s;
  }
};

class Profiler {
 public:
  /// Accumulates one iteration's phase times; wall time uses Eq. 4's
  /// pipeline overlap unless `pipelined` is false (sequential runtime).
  /// Both the overlapped and the sequential sums are kept regardless.
  void record_iteration(const hw::IterationTimes& times,
                        bool pipelined = true);

  /// Tracks the device-memory high-water mark (bytes).
  void record_device_memory(double bytes);

  /// Records the executor's REAL measured profile of the epoch that just
  /// ran (wall-clock, not simulated).
  void record_epoch_measured(const PipelineEpochStats& measured);

  void reset_epoch();

  double epoch_wall_s() const { return epoch_wall_s_; }
  /// Eq. 4 epoch time with the max() overlap applied every iteration.
  double epoch_modeled_overlapped_s() const {
    return epoch_modeled_overlapped_s_;
  }
  /// Same iterations executed strictly sequentially (no overlap).
  double epoch_modeled_sequential_s() const {
    return epoch_modeled_sequential_s_;
  }
  const PipelineEpochStats& epoch_measured() const { return measured_; }
  const PhaseBreakdown& epoch_phases() const { return epoch_phases_; }
  double peak_device_bytes() const { return peak_device_bytes_; }
  std::uint64_t iterations() const { return iterations_; }

 private:
  PhaseBreakdown epoch_phases_;
  double epoch_wall_s_ = 0.0;
  double epoch_modeled_overlapped_s_ = 0.0;
  double epoch_modeled_sequential_s_ = 0.0;
  PipelineEpochStats measured_;
  double peak_device_bytes_ = 0.0;
  std::uint64_t iterations_ = 0;
};

}  // namespace gnav::runtime
