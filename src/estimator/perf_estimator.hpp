// Gray-box performance estimator (paper Sec. 3.3, Eq. 4-11).
//
// White-box skeleton: Eq. 4's pipelined epoch time over analytic phase
// volumes, Eq. 9/10's memory decomposition — evaluated with the trained
// hardware cost model. Black-box members: gradient-boosted trees for the
// quantities theory cannot pin down (batch overlap penalty, cache hit
// rate, subgraph density, sampling work per node, residual corrections,
// and the Eq. 11 accuracy delta, which the paper concedes "is still more
// like a black box"). The f_overlapping correction is likewise learned:
// an OverlapModel fitted from the async executor's measured stage walls
// replaces Eq. 4's bare max() for executor-wall predictions, with a
// graceful analytic fallback when the corpus holds no measured rows.
//
// The estimator is hardware-profile-specific, like the paper's (it is
// trained from profiles gathered on the platform it predicts for).
#pragma once

#include <vector>

#include "estimator/batch_size_estimator.hpp"
#include "estimator/overlap_model.hpp"
#include "estimator/profile_collector.hpp"
#include "hw/cost_model.hpp"
#include "ml/gradient_boosting.hpp"

namespace gnav::estimator {

struct PerfPrediction {
  double time_s = 0.0;      // T  (epoch seconds, original scale)
  double memory_gb = 0.0;   // Γ
  double accuracy = 0.0;    // Acc (short-horizon test accuracy)
  // Intermediate white-box quantities (exposed for tests/diagnostics).
  double batch_nodes = 0.0;
  double batch_edges = 0.0;
  double cache_hit_rate = 0.0;
  /// Executor-overlap correction for pipelined configs: the predicted
  /// measured-wall / serial-stage-work ratio of the async epoch
  /// executor. Fitted from measured executor walls when the corpus
  /// carried async rows (`overlap_fitted`), Eq. 4's analytic ratio
  /// otherwise; exactly 1.0 for sync (pipeline_overlap=false) configs.
  double overlap_ratio = 1.0;
  /// Eq. 4's analytic ratio for the same config (the ablation arm).
  double overlap_ratio_analytic = 1.0;
  bool overlap_fitted = false;
};

class PerfEstimator {
 public:
  explicit PerfEstimator(hw::HardwareProfile hw);

  /// Fits all learned components on a profiled-run corpus (typically the
  /// leave-one-dataset-out corpus + power-law augmentation).
  void fit(const std::vector<ProfiledRun>& runs);

  /// Predicts Perf{T, Γ, Acc} for `config` executing on compute backend
  /// `backend_id` (features on the backend's DECLARED capabilities; see
  /// extract_features). The 2-arg overload predicts for the default
  /// "cpu-blocked" backend — identical output to passing that id.
  PerfPrediction predict(const runtime::TrainConfig& config,
                         const DatasetStats& stats,
                         const std::string& backend_id) const;
  PerfPrediction predict(const runtime::TrainConfig& config,
                         const DatasetStats& stats) const;

  bool is_fitted() const { return fitted_; }
  const GrayBoxBatchSizeEstimator& batch_size_model() const {
    return batch_model_;
  }
  /// The learned f_overlapping correction (unfitted when the corpus had
  /// no async-executor rows — consumers then see the Eq. 4 fallback).
  const OverlapModel& overlap_model() const { return overlap_model_; }

  /// Predicted wall/serial ratio of the async executor for `config`
  /// under the given executor shape — the fitted replacement for Eq. 4's
  /// bare max(), falling back to the analytic ratio when unfitted or
  /// when the config disables pipelining. Pure and serial: bit-identical
  /// at any thread count.
  double predict_overlap_ratio(const runtime::TrainConfig& config,
                               const DatasetStats& stats,
                               const OverlapExecutorShape& shape) const;

  /// Predicted wall-clock seconds of the async executor given the serial
  /// stage seconds measured by a cheap sync run of the same config.
  double predict_pipelined_wall_s(const runtime::TrainConfig& config,
                                  const DatasetStats& stats,
                                  const OverlapExecutorShape& shape,
                                  double serial_stage_s) const {
    return serial_stage_s * predict_overlap_ratio(config, stats, shape);
  }

  /// Analytic Eq. 9/10 components (no learning involved).
  double analytic_model_memory_gb(const runtime::TrainConfig& config,
                                  const DatasetStats& stats) const;
  double analytic_cache_memory_gb(const runtime::TrainConfig& config,
                                  const DatasetStats& stats) const;

  /// White-box-only T prediction (no learned residual) — the ablation arm.
  /// `work_per_node` < 0 selects the neutral analytic sampling-work
  /// multiplier; the full gray-box path passes the learned value.
  double predict_time_analytic(const runtime::TrainConfig& config,
                               const DatasetStats& stats, double batch_nodes,
                               double batch_edges, double hit_rate,
                               double work_per_node = -1.0) const;

 private:
  /// Analytic Eq. 4 wall ratio (overlapped/sequential per-iteration) for
  /// a config, evaluated over the white-box batch shape; the fallback
  /// and ablation arm of the overlap correction.
  double analytic_overlap_ratio(const runtime::TrainConfig& config,
                                const DatasetStats& stats) const;

  hw::HardwareProfile hw_;
  hw::CostModel cost_;
  GrayBoxBatchSizeEstimator batch_model_;
  OverlapModel overlap_model_;
  ml::GradientBoostingRegressor hit_model_;
  ml::GradientBoostingRegressor density_model_;   // log(edges per node)
  ml::GradientBoostingRegressor work_model_;      // log(sampling work per node)
  ml::GradientBoostingRegressor time_residual_;   // log(T_meas / T_white)
  ml::GradientBoostingRegressor mem_residual_;    // log(Γ_meas / Γ_white)
  ml::GradientBoostingRegressor acc_model_;       // Eq. 11 black-box
  bool fitted_ = false;
};

}  // namespace gnav::estimator
