#include "sampling/batch_size_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace gnav::sampling {

double expansion_product(const std::vector<int>& hop_list, double avg_degree,
                         double tau) {
  GNAV_CHECK(tau > 0.0 && tau <= 1.0, "tau must be in (0,1]");
  double prod = 1.0;
  for (int k : hop_list) {
    const double kk =
        (k == -1) ? avg_degree
                  : std::min(static_cast<double>(k), avg_degree);
    prod *= std::pow(1.0 + kk, tau);
  }
  return prod;
}

double tree_upper_bound(std::size_t batch_size,
                        const std::vector<int>& hop_list, double avg_degree) {
  return static_cast<double>(batch_size) *
         expansion_product(hop_list, avg_degree, 1.0);
}

double analytic_batch_size(std::size_t batch_size,
                           const std::vector<int>& hop_list,
                           const graph::GraphProfile& profile, double tau) {
  const double n = static_cast<double>(profile.num_nodes);
  if (n <= 0.0) return 0.0;
  const double bound = static_cast<double>(batch_size) *
                       expansion_product(hop_list, profile.avg_degree, tau);
  // Collision-corrected expectation: sampling `bound` vertex slots with
  // replacement from n vertices covers n(1 - e^{-bound/n}) distinct ones.
  const double expected = n * (1.0 - std::exp(-bound / n));
  return std::max(expected, static_cast<double>(std::min(
                                batch_size, static_cast<std::size_t>(n))));
}

}  // namespace gnav::sampling
