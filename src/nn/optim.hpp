// First-order optimizers over Parameter sets. The optimizer keeps per-
// parameter state keyed by position, so the parameter list must be stable
// across steps (it is: GnnModel owns its layers for its whole lifetime).
#pragma once

#include <vector>

#include "nn/parameter.hpp"

namespace gnav::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params);
  virtual ~Optimizer() = default;

  void zero_grad();
  virtual void step() = 0;

 protected:
  std::vector<Parameter*> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float weight_decay = 0.0f);
  void step() override;

 private:
  float lr_;
  float weight_decay_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  long long t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

}  // namespace gnav::nn
