#include <algorithm>
#include <unordered_set>

#include "sampling/build.hpp"
#include "sampling/sampler.hpp"
#include "support/error.hpp"

namespace gnav::sampling {

SaintSampler::SaintSampler(Variant variant, int walk_length,
                           double budget_multiplier, SamplingBias bias)
    : variant_(variant),
      walk_length_(walk_length),
      budget_multiplier_(budget_multiplier),
      bias_(bias) {
  GNAV_CHECK(walk_length_ >= 1, "walk length must be >= 1");
  GNAV_CHECK(budget_multiplier_ > 0.0, "budget multiplier must be positive");
}

SamplerKind SaintSampler::kind() const {
  switch (variant_) {
    case Variant::kWalk:
      return SamplerKind::kSaintWalk;
    case Variant::kNode:
      return SamplerKind::kSaintNode;
    case Variant::kEdge:
      return SamplerKind::kSaintEdge;
  }
  return SamplerKind::kSaintWalk;
}

std::vector<int> SaintSampler::hop_list() const {
  // Paper Sec. 3.2: subgraph-wise sampling is node-wise sampling with many
  // hops but single-neighbor fanout.
  return std::vector<int>(static_cast<std::size_t>(walk_length_), 1);
}

MiniBatch SaintSampler::sample(const graph::CsrGraph& g,
                               std::span<const graph::NodeId> seeds,
                               Rng& rng) const {
  GNAV_CHECK(!seeds.empty(), "cannot sample from an empty seed set");
  std::vector<graph::NodeId> collected;
  double work = static_cast<double>(seeds.size());

  if (variant_ == Variant::kWalk) {
    // One random walk per seed. Bias steers each step toward preferred
    // vertices when active.
    for (graph::NodeId root : seeds) {
      graph::NodeId v = root;
      for (int step = 0; step < walk_length_; ++step) {
        const auto nb = g.neighbors(v);
        if (nb.empty()) break;
        std::size_t pick = 0;
        if (bias_.active()) {
          std::vector<double> cum(nb.size());
          double acc = 0.0;
          for (std::size_t i = 0; i < nb.size(); ++i) {
            acc += bias_.weight(nb[i]);
            cum[i] = acc;
          }
          pick = rng.sample_cumulative(cum);
          work += 2.0;  // weighted step: draw + binary search
        } else {
          pick = static_cast<std::size_t>(rng.uniform_index(nb.size()));
          work += 1.0;
        }
        v = nb[pick];
        collected.push_back(v);
      }
    }
  } else if (variant_ == Variant::kNode) {
    // Degree-weighted node budget (GraphSAINT-Node uses p_v ∝ deg^2; a
    // plain degree weighting keeps the same hub preference).
    const auto budget = static_cast<std::size_t>(
        budget_multiplier_ * static_cast<double>(seeds.size()));
    std::vector<double> cum(static_cast<std::size_t>(g.num_nodes()));
    double acc = 0.0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      acc += static_cast<double>(g.degree(v) + 1) * bias_.weight(v);
      cum[static_cast<std::size_t>(v)] = acc;
    }
    std::unordered_set<graph::NodeId> chosen;
    std::size_t attempts = 0;
    while (chosen.size() < budget && attempts < budget * 30 + 10) {
      ++attempts;
      chosen.insert(
          static_cast<graph::NodeId>(rng.sample_cumulative(cum)));
    }
    work += static_cast<double>(attempts);
    collected.assign(chosen.begin(), chosen.end());
    std::sort(collected.begin(), collected.end());
  } else {
    // Edge variant: uniform edges; both endpoints join the batch.
    const auto budget = static_cast<std::size_t>(
        budget_multiplier_ * static_cast<double>(seeds.size()));
    const auto m = static_cast<std::uint64_t>(g.num_edges());
    if (m > 0) {
      for (std::size_t i = 0; i < budget; ++i) {
        const auto e = static_cast<std::size_t>(rng.uniform_index(m));
        // Locate the source vertex of edge slot e by binary search on
        // indptr, then read the destination.
        const auto& indptr = g.indptr();
        const auto it = std::upper_bound(indptr.begin(), indptr.end(),
                                         static_cast<graph::EdgeId>(e));
        const auto src = static_cast<graph::NodeId>(
            std::distance(indptr.begin(), it) - 1);
        const graph::NodeId dst = g.indices()[e];
        collected.push_back(src);
        collected.push_back(dst);
      }
      work += static_cast<double>(budget);
    }
  }

  const auto ordered = detail::order_nodes(seeds, collected);
  MiniBatch mb = detail::build_induced(g, seeds, ordered, work);
  // Induction touches every kept vertex's full neighbor list.
  mb.sampling_work += static_cast<double>(mb.subgraph.num_edges());
  return mb;
}

}  // namespace gnav::sampling
