#include "hw/platform.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gnav::hw {

double HardwareProfile::free_device_memory_gb(double used_gb) const {
  return std::max(0.0, device.memory_gb - used_gb);
}

HardwareProfile make_profile(const std::string& name) {
  HardwareProfile p;
  p.name = name;
  // Link bandwidths are *effective scattered-gather* rates: random feature
  // rows DMA far below peak PCIe throughput.
  if (name == "rtx4090") {
    p.host = {150e6, 128.0, 32};
    p.link = {2.6, 15.0};
    p.device = {6000.0, 24.0, 700.0};
  } else if (name == "a100") {
    p.host = {200e6, 256.0, 64};
    p.link = {4.2, 12.0};
    p.device = {8000.0, 40.0, 1200.0};
  } else if (name == "m90") {
    p.host = {100e6, 96.0, 24};
    p.link = {1.8, 20.0};
    p.device = {2500.0, 16.0, 350.0};
  } else if (name == "constrained") {
    // Resource-limited scenario (Pa-Low measurements in the paper).
    p.host = {60e6, 48.0, 12};
    p.link = {0.9, 25.0};
    p.device = {2500.0, 4.0, 350.0};
  } else if (name == "default") {
    // Leave defaults.
  } else {
    throw Error("unknown hardware profile '" + name +
                "'; available: rtx4090, a100, m90, constrained, default");
  }
  GNAV_CHECK(p.host.sample_throughput_per_s > 0 &&
                 p.link.bandwidth_gbps > 0 && p.device.compute_gflops > 0,
             "hardware profile has non-positive throughput");
  return p;
}

std::vector<std::string> profile_names() {
  return {"rtx4090", "a100", "m90", "constrained"};
}

}  // namespace gnav::hw
