// Known-good: guarded state leaves the class only as a value snapshot
// taken under the lock, or through a GNAV_REQUIRES accessor that makes
// the caller hold the capability (the DeviceCache per-row pattern).
#include "gnav_stub.hpp"

class SafeTally {
 public:
  int snapshot() const {
    gnav::support::MutexLock lock(mu_);
    return count_;
  }
  const int& count_locked() const GNAV_REQUIRES(mu_) {
    return count_;
  }
  int bump() {
    gnav::support::MutexLock lock(mu_);
    return ++count_;
  }

 private:
  mutable gnav::support::Mutex mu_;
  int count_ GNAV_GUARDED_BY(mu_) = 0;
};
