#include "cache/device_cache.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace gnav::cache {

std::string to_string(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone:
      return "none";
    case CachePolicy::kStatic:
      return "static";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kFifo:
      return "fifo";
    case CachePolicy::kWeightedDegree:
      return "wdeg";
  }
  return "?";
}

CachePolicy cache_policy_from_string(const std::string& s) {
  if (s == "none") return CachePolicy::kNone;
  if (s == "static") return CachePolicy::kStatic;
  if (s == "lru") return CachePolicy::kLru;
  if (s == "fifo") return CachePolicy::kFifo;
  if (s == "wdeg") return CachePolicy::kWeightedDegree;
  throw Error("unknown cache policy '" + s + "'");
}

DeviceCache::DeviceCache(CachePolicy policy, std::size_t capacity,
                         const graph::CsrGraph& graph)
    : policy_(policy),
      capacity_(capacity),
      graph_(graph),
      resident_(static_cast<std::size_t>(graph.num_nodes()), 0),
      last_used_(static_cast<std::size_t>(graph.num_nodes()), 0) {
  if (policy_ == CachePolicy::kNone) capacity_ = 0;
  capacity_ = std::min(capacity_,
                       static_cast<std::size_t>(graph.num_nodes()));
  if (policy_ == CachePolicy::kStatic && capacity_ > 0) {
    // PaGraph preloads the highest-degree vertices: they appear in the
    // most neighborhoods, maximizing expected hit rate for one-time cost.
    std::vector<graph::NodeId> order(
        static_cast<std::size_t>(graph.num_nodes()));
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<graph::NodeId>(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](graph::NodeId a, graph::NodeId b) {
                       return graph.degree(a) > graph.degree(b);
                     });
    for (std::size_t i = 0; i < capacity_; ++i) {
      resident_[static_cast<std::size_t>(order[i])] = 1;
      resident_list_.push_back(order[i]);
    }
  }
}

void DeviceCache::evict_one(LookupResult& result) {
  GNAV_ASSERT(!resident_list_.empty());
  std::size_t victim_pos = 0;
  switch (policy_) {
    case CachePolicy::kFifo:
      victim_pos = 0;  // front of insertion order
      break;
    case CachePolicy::kLru: {
      std::uint64_t best = last_used_[static_cast<std::size_t>(
          resident_list_[0])];
      for (std::size_t i = 1; i < resident_list_.size(); ++i) {
        const auto ts =
            last_used_[static_cast<std::size_t>(resident_list_[i])];
        if (ts < best) {
          best = ts;
          victim_pos = i;
        }
      }
      break;
    }
    case CachePolicy::kWeightedDegree: {
      auto best = graph_.degree(resident_list_[0]);
      for (std::size_t i = 1; i < resident_list_.size(); ++i) {
        const auto d = graph_.degree(resident_list_[i]);
        if (d < best) {
          best = d;
          victim_pos = i;
        }
      }
      break;
    }
    case CachePolicy::kNone:
    case CachePolicy::kStatic:
      GNAV_ASSERT(false && "evict_one called for non-evicting policy");
  }
  const graph::NodeId victim = resident_list_[victim_pos];
  resident_[static_cast<std::size_t>(victim)] = 0;
  resident_list_.erase(resident_list_.begin() +
                       static_cast<std::ptrdiff_t>(victim_pos));
  ++stats_.evictions;
  ++result.replaced;
}

void DeviceCache::insert(graph::NodeId v, LookupResult& result) {
  if (capacity_ == 0) return;
  if (resident_list_.size() >= capacity_) {
    if (policy_ == CachePolicy::kWeightedDegree) {
      // Admission check: only displace a lower-degree resident.
      auto min_deg = graph_.degree(resident_list_[0]);
      for (std::size_t i = 1; i < resident_list_.size(); ++i) {
        min_deg = std::min(min_deg, graph_.degree(resident_list_[i]));
      }
      if (graph_.degree(v) <= min_deg) return;
    }
    evict_one(result);
  }
  resident_[static_cast<std::size_t>(v)] = 1;
  resident_list_.push_back(v);
  ++stats_.insertions;
}

LookupResult DeviceCache::lookup_and_update(
    const std::vector<graph::NodeId>& batch) {
  LookupResult result;
  ++tick_;
  for (graph::NodeId v : batch) {
    GNAV_CHECK(graph_.contains(v), "cache lookup: vertex out of range");
    ++stats_.lookups;
    if (resident_[static_cast<std::size_t>(v)] != 0) {
      ++stats_.hits;
      ++result.hits;
      last_used_[static_cast<std::size_t>(v)] = tick_;
    } else {
      result.misses.push_back(v);
    }
  }
  // Update phase: static/none policies never admit after construction.
  if (policy_ == CachePolicy::kLru || policy_ == CachePolicy::kFifo ||
      policy_ == CachePolicy::kWeightedDegree) {
    for (graph::NodeId v : result.misses) {
      insert(v, result);
      last_used_[static_cast<std::size_t>(v)] = tick_;
    }
  }
  GNAV_ASSERT(resident_list_.size() <= capacity_);
  return result;
}

}  // namespace gnav::cache
