// Compile-PASS control for the WILL_FAIL checks next to it: correctly
// locked code using the same annotation surface (GNAV_GUARDED_BY,
// GNAV_REQUIRES, GNAV_EXCLUDES, MutexLock, UniqueLock + cv wait) must
// compile CLEAN under -Werror=thread-safety. If this control fails, the
// negative tests are "passing" for the wrong reason — a broken include
// path or a macro typo — not because the analysis caught the bug.
#include <condition_variable>

#include "support/thread_safety.hpp"

namespace {

class Queue {
 public:
  void push(int v) GNAV_EXCLUDES(mu_) {
    {
      const gnav::support::MutexLock lock(mu_);
      tail_ = v;
      ++size_;
    }
    cv_.notify_one();
  }

  int pop() GNAV_EXCLUDES(mu_) {
    gnav::support::UniqueLock lock(mu_);
    while (size_ == 0) lock.wait(cv_);
    --size_;
    return pop_locked();
  }

 private:
  int pop_locked() GNAV_REQUIRES(mu_) { return tail_; }

  gnav::support::Mutex mu_;
  std::condition_variable cv_;
  int tail_ GNAV_GUARDED_BY(mu_) = 0;
  int size_ GNAV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.push(7);
  return q.pop() == 7 ? 0 : 1;
}
