// Tests for the DSE layer: design-space enumeration validity, Pareto
// front invariants (including randomized property sweeps), explorer
// pruning soundness, and decision-maker preset behavior.
#include <gtest/gtest.h>

#include <set>

#include "dse/decision_maker.hpp"
#include "dse/design_space.hpp"
#include "dse/explorer.hpp"
#include "dse/pareto.hpp"
#include "estimator/profile_collector.hpp"
#include "runtime/templates.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace gnav::dse {
namespace {

TEST(DesignSpace, EnumerationIsValidAndDeduplicated) {
  const DesignSpace space = DesignSpace::full(BaseSettings{});
  const auto configs = space.enumerate();
  EXPECT_GT(configs.size(), 500u);
  EXPECT_LT(configs.size(), space.raw_size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_NO_THROW(configs[i].validate());
  }
  // spot-check dedup on a sample (full O(n^2) is wasteful here)
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = i + 1; j < 200; ++j) {
      EXPECT_FALSE(configs[i] == configs[j]);
    }
  }
}

TEST(DesignSpace, ReducedSpaceIsExhaustivelyTrainable) {
  const DesignSpace space = DesignSpace::reduced(BaseSettings{});
  const auto configs = space.enumerate();
  EXPECT_GE(configs.size(), 20u);
  EXPECT_LE(configs.size(), 120u);
}

TEST(DesignSpace, BaseSettingsArePinned) {
  BaseSettings base;
  base.model = nn::ModelKind::kGat;
  base.num_layers = 3;
  for (const auto& c : DesignSpace::reduced(base).enumerate()) {
    EXPECT_EQ(c.model, nn::ModelKind::kGat);
    EXPECT_EQ(c.num_layers, 3u);
  }
}

TEST(DesignSpace, MaterializeRejectsInvalidCombos) {
  const DesignSpace space = DesignSpace::full(BaseSettings{});
  // bias level > 0 with cache level 0 (policy none) must be invalid.
  std::vector<std::size_t> levels(space.axes().size(), 0);
  levels[4] = 1;  // bias axis
  runtime::TrainConfig out;
  EXPECT_FALSE(space.materialize(levels, &out));
  levels[4] = 0;
  EXPECT_TRUE(space.materialize(levels, &out));
  levels[0] = 999;
  EXPECT_THROW(space.materialize(levels, &out), Error);
}

TEST(Pareto, DominanceDefinition) {
  const PerfPoint a{1.0, 1.0, 0.9};
  const PerfPoint b{2.0, 1.0, 0.9};
  const PerfPoint c{1.0, 1.0, 0.9};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, c));  // equal points do not dominate
  const PerfPoint d{0.5, 2.0, 0.8};
  EXPECT_FALSE(dominates(a, d));
  EXPECT_FALSE(dominates(d, a));  // incomparable
}

TEST(Pareto, FrontInvariantsOnRandomClouds) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<PerfPoint> points;
    for (int i = 0; i < 120; ++i) {
      points.push_back(
          {rng.uniform(1, 10), rng.uniform(1, 10), rng.uniform(0.3, 1.0)});
    }
    const auto front = pareto_front(points);
    ASSERT_FALSE(front.empty());
    std::set<std::size_t> front_set(front.begin(), front.end());
    // 1. no front member dominates another front member
    for (auto i : front) {
      for (auto j : front) {
        if (i != j) {
          EXPECT_FALSE(dominates(points[i], points[j]));
        }
      }
    }
    // 2. every non-front point is dominated by some front member
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (front_set.contains(i)) continue;
      bool dominated = false;
      for (auto j : front) {
        if (dominates(points[j], points[i])) {
          dominated = true;
          break;
        }
      }
      EXPECT_TRUE(dominated) << "point " << i << " not dominated";
    }
  }
}

TEST(Pareto, TwoDimensionalProjections) {
  const std::vector<PerfPoint> points = {
      {1.0, 5.0, 0.5},  // best time
      {5.0, 1.0, 0.5},  // best memory
      {3.0, 3.0, 0.9},  // best accuracy
      {4.0, 4.0, 0.4},  // dominated everywhere
  };
  const auto tm = pareto_front_2d(points, Plane::kTimeMemory);
  EXPECT_EQ(std::set<std::size_t>(tm.begin(), tm.end()),
            (std::set<std::size_t>{0, 1, 2}));
  const auto ma = pareto_front_2d(points, Plane::kMemoryAccuracy);
  EXPECT_TRUE(std::set<std::size_t>(ma.begin(), ma.end()).contains(1));
  EXPECT_TRUE(std::set<std::size_t>(ma.begin(), ma.end()).contains(2));
  const auto ta = pareto_front_2d(points, Plane::kTimeAccuracy);
  EXPECT_TRUE(std::set<std::size_t>(ta.begin(), ta.end()).contains(0));
  EXPECT_FALSE(std::set<std::size_t>(ta.begin(), ta.end()).contains(3));
}

TEST(DecisionMaker, PresetsEmphasizeTheirMetrics) {
  // Construct a tiny feasible set with clear winners per priority.
  ExplorationResult result;
  auto add = [&](double t, double m, double a) {
    Candidate c;
    c.config = runtime::template_pyg();
    c.predicted.time_s = t;
    c.predicted.memory_gb = m;
    c.predicted.accuracy = a;
    result.feasible.push_back(c);
  };
  add(1.0, 4.0, 0.70);  // fast, hungry, ok       (Ex-T* favorite)
  add(4.0, 1.0, 0.72);  // slow, lean             (Ex-M* candidate)
  add(2.0, 2.0, 0.71);  // balanced knee
  add(3.5, 3.5, 0.90);  // accurate but expensive (Ex-*A candidate)
  for (std::size_t i = 0; i < result.feasible.size(); ++i) {
    result.pareto.push_back(i);
  }

  const auto pick = [&](const ExploreTargets& t) {
    return DecisionMaker(t).decide(result).feasible_index;
  };
  const auto tm = pick(targets_extreme_time_memory());
  const auto ma = pick(targets_extreme_memory_accuracy());
  const auto ta = pick(targets_extreme_time_accuracy());
  // Ex-TM must not pick the accuracy-at-all-costs point.
  EXPECT_NE(tm, 3u);
  // Ex-MA must not pick the memory-hungry fast point.
  EXPECT_NE(ma, 0u);
  // Ex-TA must not pick the slowest point.
  EXPECT_NE(ta, 1u);
  // Different priorities should not all collapse to one choice.
  EXPECT_FALSE(tm == ma && ma == ta);
}

TEST(DecisionMaker, FittedOverlapFlipsWinnerVsAnalytic) {
  // Two Pareto-incomparable candidates. A looks faster under Eq. 4's
  // analytic overlap (time_s already folds a 0.5 ratio in), but the
  // fitted overlap model says the async executor only reaches a 1.4
  // wall/serial ratio — its REAL wall is 0.9 / 0.5 * 1.4 = 2.52 s,
  // slower than B. Ranking must follow predict_pipelined_wall_s's
  // rescaling (effective_time_s), not the analytic optimum.
  const auto make_result = [](bool fitted) {
    ExplorationResult result;
    Candidate a;
    a.config = runtime::template_pagraph_full();
    a.config.pipeline_overlap = true;
    a.predicted.time_s = 0.9;
    a.predicted.memory_gb = 2.0;
    a.predicted.accuracy = 0.7;
    a.predicted.overlap_ratio_analytic = 0.5;
    a.predicted.overlap_ratio = fitted ? 1.4 : 0.5;
    a.predicted.overlap_fitted = fitted;
    Candidate b;
    b.config = runtime::template_pyg();
    b.predicted.time_s = 1.0;
    b.predicted.memory_gb = 1.0;
    b.predicted.accuracy = 0.7;
    result.feasible = {a, b};
    result.pareto = {0, 1};
    return result;
  };

  ExploreTargets targets{1.0, 0.1, 0.0, "time-first"};
  const DecisionMaker maker(targets);

  // Analytic-only arm (overlap model unfitted): A's optimistic 0.9 s wins.
  const Decision analytic = maker.decide(make_result(false));
  EXPECT_EQ(analytic.feasible_index, 0u);
  EXPECT_DOUBLE_EQ(analytic.ranked_time_s, 0.9);

  // Fitted arm: the measured-overlap correction flips the winner to B.
  const Decision fitted = maker.decide(make_result(true));
  EXPECT_EQ(fitted.feasible_index, 1u);
  EXPECT_DOUBLE_EQ(fitted.ranked_time_s, 1.0);
  // The losing candidate's effective time is exactly the pipelined-wall
  // rescaling serve admission uses.
  EXPECT_DOUBLE_EQ(effective_time_s(make_result(true).feasible[0].predicted),
                   0.9 * (1.4 / 0.5));
}

TEST(DecisionMaker, ThrowsOnEmptyAndValidatesWeights) {
  ExplorationResult empty;
  EXPECT_THROW(DecisionMaker(targets_balance()).decide(empty), Error);
  ExploreTargets bad;
  bad.time_weight = -1.0;
  EXPECT_THROW(DecisionMaker{bad}, Error);
  ExploreTargets zero{0.0, 0.0, 0.0, "zero"};
  EXPECT_THROW(DecisionMaker{zero}, Error);
}

/// Explorer tests need a fitted estimator; build a small corpus once.
class ExplorerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hw_ = new hw::HardwareProfile(hw::make_profile("rtx4090"));
    dataset_ = new graph::Dataset(graph::make_power_law_augmentation(1, 4));
    // Predictions target the reddit2 analogue: its real-scale
    // extrapolation gives cache levels that actually stress a memory
    // budget, which the pruning tests rely on.
    stats_ = new estimator::DatasetStats(estimator::compute_dataset_stats(
        graph::load_dataset("reddit2")));
    estimator::CollectorOptions opts;
    opts.configs_per_dataset = 16;
    opts.epochs = 1;
    est_ = new estimator::PerfEstimator(*hw_);
    est_->fit(estimator::collect_profiles(*dataset_, *hw_, opts));
  }
  static void TearDownTestSuite() {
    delete est_;
    delete stats_;
    delete dataset_;
    delete hw_;
  }
  static hw::HardwareProfile* hw_;
  static graph::Dataset* dataset_;
  static estimator::DatasetStats* stats_;
  static estimator::PerfEstimator* est_;
};

hw::HardwareProfile* ExplorerFixture::hw_ = nullptr;
graph::Dataset* ExplorerFixture::dataset_ = nullptr;
estimator::DatasetStats* ExplorerFixture::stats_ = nullptr;
estimator::PerfEstimator* ExplorerFixture::est_ = nullptr;

TEST_F(ExplorerFixture, DfsMatchesExhaustiveWhenUnconstrained) {
  const DesignSpace space = DesignSpace::reduced(BaseSettings{});
  const Explorer explorer(space, *est_, *stats_);
  RuntimeConstraints none;
  const auto dfs = explorer.explore(none, {});
  const auto exhaustive = explorer.explore_exhaustive(none);
  // Without constraints nothing may be pruned: same feasible count.
  EXPECT_EQ(dfs.stats.subtrees_pruned, 0u);
  EXPECT_EQ(dfs.feasible.size(), exhaustive.feasible.size());
  EXPECT_FALSE(dfs.pareto.empty());
}

TEST_F(ExplorerFixture, MemoryConstraintPrunesAndStaysSound) {
  const DesignSpace space = DesignSpace::full(BaseSettings{});
  const Explorer explorer(space, *est_, *stats_);
  RuntimeConstraints unconstrained;
  RuntimeConstraints tight;
  tight.max_memory_gb = 0.8;
  const auto all = explorer.explore(unconstrained, {});
  const auto constrained = explorer.explore(tight, {});
  EXPECT_GT(constrained.stats.subtrees_pruned, 0u);
  EXPECT_LT(constrained.stats.leaves_evaluated,
            all.stats.leaves_evaluated);
  EXPECT_LT(constrained.feasible.size(), all.feasible.size());
  for (const auto& c : constrained.feasible) {
    EXPECT_LE(c.predicted.memory_gb, tight.max_memory_gb);
  }
  // Soundness: pruning removes only infeasible subtrees, so DFS and the
  // exhaustive sweep agree exactly on the feasible set size.
  const auto exhaustive = explorer.explore_exhaustive(tight);
  EXPECT_EQ(constrained.feasible.size(), exhaustive.feasible.size());
}

TEST_F(ExplorerFixture, TemplateSeedingIncludesBaselines) {
  const DesignSpace space = DesignSpace::reduced(BaseSettings{});
  const Explorer explorer(space, *est_, *stats_);
  RuntimeConstraints none;
  const auto seeded =
      explorer.explore(none, runtime::all_templates());
  const auto unseeded = explorer.explore(none, {});
  EXPECT_EQ(seeded.feasible.size(),
            unseeded.feasible.size() + runtime::all_templates().size());
}

TEST_F(ExplorerFixture, AccuracyFloorFiltersCandidates) {
  const DesignSpace space = DesignSpace::reduced(BaseSettings{});
  const Explorer explorer(space, *est_, *stats_);
  RuntimeConstraints floor;
  floor.min_accuracy = 0.99;  // unreachable on this noisy dataset
  const auto result = explorer.explore(floor, {});
  EXPECT_TRUE(result.feasible.empty());
}

}  // namespace
}  // namespace gnav::dse
