#include "ml/random_forest.hpp"

#include "support/error.hpp"
#include "support/rng.hpp"

namespace gnav::ml {

RandomForestRegressor::RandomForestRegressor(ForestParams params)
    : params_(params) {
  GNAV_CHECK(params_.num_trees >= 1, "need at least one tree");
  GNAV_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0,
             "subsample must be in (0,1]");
}

void RandomForestRegressor::fit(const Matrix& x,
                                const std::vector<double>& y) {
  GNAV_CHECK(!x.empty() && x.size() == y.size(), "bad training data");
  trees_.clear();
  Rng rng(params_.seed);
  const auto n = x.size();
  const auto sample_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(params_.subsample *
                                  static_cast<double>(n)));
  for (int t = 0; t < params_.num_trees; ++t) {
    Matrix xs;
    std::vector<double> ys;
    xs.reserve(sample_n);
    ys.reserve(sample_n);
    for (std::size_t i = 0; i < sample_n; ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform_index(n));
      xs.push_back(x[j]);
      ys.push_back(y[j]);
    }
    DecisionTreeRegressor tree(params_.tree);
    tree.fit(xs, ys);
    trees_.push_back(std::move(tree));
  }
}

double RandomForestRegressor::predict_one(const std::vector<double>& x) const {
  GNAV_CHECK(is_fitted(), "predict before fit");
  double s = 0.0;
  for (const auto& tree : trees_) s += tree.predict_one(x);
  return s / static_cast<double>(trees_.size());
}

}  // namespace gnav::ml
