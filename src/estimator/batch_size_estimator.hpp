// Mini-batch size estimators (paper Eq. 12 + Fig. 5).
//
// Gray-box: E[|V_i|] = analytic_core * f_overlapping, where the analytic
// core is the damped expansion product with collision correction
// (sampling/batch_size_model) and f_overlapping is a learned multiplicative
// penalty (gradient-boosted trees on the config/dataset features).
//
// Black-box baseline: a single decision-tree regression straight from the
// features to |V_i| — the comparison arm in Fig. 5.
#pragma once

#include <vector>

#include "estimator/profile_collector.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gradient_boosting.hpp"

namespace gnav::estimator {

class GrayBoxBatchSizeEstimator {
 public:
  void fit(const std::vector<ProfiledRun>& runs);
  double predict(const runtime::TrainConfig& config,
                 const DatasetStats& stats,
                 const hw::HardwareProfile& hw) const;
  bool is_fitted() const { return fitted_; }

 private:
  ml::GradientBoostingRegressor penalty_model_;
  bool fitted_ = false;
};

class BlackBoxBatchSizeEstimator {
 public:
  void fit(const std::vector<ProfiledRun>& runs);
  double predict(const runtime::TrainConfig& config,
                 const DatasetStats& stats,
                 const hw::HardwareProfile& hw) const;
  bool is_fitted() const { return model_.is_fitted(); }

 private:
  ml::DecisionTreeRegressor model_;
};

}  // namespace gnav::estimator
