// Fixed-size thread pool for the embarrassingly parallel hot paths
// (profile-corpus collection, DSE candidate scoring, per-batch subgraph
// construction).
//
// Design rules that keep the rest of the codebase simple:
//   - Determinism is the caller's contract: parallel work must be
//     index-disjoint and seeded via `task_seed(base, index)`, never via a
//     shared Rng. Under that contract results are bit-identical whether
//     the pool runs 1 or 64 threads (see test_parallel.cpp).
//   - Nested safety: `parallel_for` called from inside a worker runs
//     inline on that worker, and `submit` from a worker executes eagerly
//     and returns a ready future. Neither can deadlock the pool.
//   - Exceptions thrown by tasks propagate: `submit` through the future,
//     `parallel_for` by rethrowing the first worker exception on the
//     calling thread (remaining indices are abandoned).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/thread_safety.hpp"

namespace gnav::support {

class ThreadPool {
 public:
  /// `num_threads == 0` picks `default_thread_count()`.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs `fn` on a worker and returns a future for its result. Called
  /// from inside a worker, executes `fn` immediately (nested safety).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (in_worker()) {
      (*task)();
    } else {
      enqueue([task] { (*task)(); });
    }
    return fut;
  }

  /// Calls `body(i)` for every i in [begin, end), distributed over the
  /// workers in contiguous dynamically-claimed chunks. Blocks until every
  /// index ran (or one threw — then rethrows that exception here).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Jobs enqueued but not yet claimed by a worker — a backlog snapshot
  /// for load diagnostics (bench_serve reports it while tenants contend
  /// for the shared pool). Instantaneous and racy by nature: by the time
  /// the caller looks, workers may already have drained it.
  std::size_t pending() const GNAV_EXCLUDES(mutex_);

  /// True on a thread owned by any ThreadPool (or inside an
  /// InlineExecutionScope).
  static bool in_worker();

 private:
  void enqueue(std::function<void()> job) GNAV_EXCLUDES(mutex_);
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;  // written only by the constructor
  mutable Mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ GNAV_GUARDED_BY(mutex_);
  bool stop_ GNAV_GUARDED_BY(mutex_) = false;
};

/// Marks the current thread as self-executing while alive: parallel_for
/// runs its body inline and submit executes eagerly, exactly as on a pool
/// worker. Dedicated stage threads (the pipelined epoch executor,
/// runtime/pipeline.hpp) hold one so they never wait on pool capacity —
/// the pool's workers may themselves be blocked inside nested
/// backend runs that are waiting on those very stage threads. Inline
/// execution is bit-identical by the pool's determinism contract.
class InlineExecutionScope {
 public:
  InlineExecutionScope();
  ~InlineExecutionScope();

  InlineExecutionScope(const InlineExecutionScope&) = delete;
  InlineExecutionScope& operator=(const InlineExecutionScope&) = delete;

 private:
  bool previous_;
};

/// Strict environment-integer parse shared by every GNAV_* count knob:
/// the whole string must be a base-10 integer >= `min_value`. Returns
/// nullopt when the variable is unset OR invalid; an invalid value (0
/// where a count is needed, trailing junk, garbage) logs one warning per
/// variable per process instead of silently misconfiguring anything.
std::optional<long> env_long(const char* name, long min_value);

/// Worker count from the GNAV_THREADS environment variable if set,
/// otherwise std::thread::hardware_concurrency(). GNAV_THREADS must be a
/// whole base-10 integer >= 1; anything else (0, trailing junk, garbage)
/// logs a warning and falls back to the hardware concurrency.
std::size_t default_thread_count();

/// Process-wide pool, constructed lazily with `default_thread_count()`
/// workers. The hot paths use it unless handed an explicit pool.
ThreadPool& global_pool();

/// Deterministic per-task seed: a splitmix64 mix of the caller's base
/// seed and the task index. Adjacent indices yield statistically
/// independent streams, and the value never depends on which worker or
/// in what order the task runs.
std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index);

}  // namespace gnav::support
