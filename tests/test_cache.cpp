// Tests for the device feature cache: policy semantics, capacity
// invariants, hit accounting, and replacement behavior. The capacity /
// accounting invariants are parameterized over every policy.
#include <gtest/gtest.h>

#include "cache/device_cache.hpp"
#include "graph/generators.hpp"
#include "graph/graph_builder.hpp"
#include "support/error.hpp"

namespace gnav::cache {
namespace {

graph::CsrGraph star_graph(graph::NodeId leaves) {
  graph::GraphBuilder b(leaves + 1);
  for (graph::NodeId v = 1; v <= leaves; ++v) b.add_undirected_edge(0, v);
  return b.build();
}

/// Vertices 0..cores-1 have strictly increasing degrees (core i has i+1
/// private leaves); leaf vertices all have degree 1. Gives full control
/// over degree-based eviction decisions.
graph::CsrGraph degree_ladder(graph::NodeId cores) {
  graph::NodeId n = cores;
  for (graph::NodeId i = 0; i < cores; ++i) n += i + 1;
  graph::GraphBuilder b(n);
  graph::NodeId next = cores;
  for (graph::NodeId i = 0; i < cores; ++i) {
    for (graph::NodeId j = 0; j <= i; ++j) b.add_undirected_edge(i, next++);
  }
  return b.build();
}

std::vector<graph::NodeId> residents_of(const DeviceCache& cache,
                                        const graph::CsrGraph& g) {
  std::vector<graph::NodeId> out;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (cache.is_resident(v)) out.push_back(v);
  }
  return out;
}

class CachePolicyInvariants : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(CachePolicyInvariants, CapacityAndAccountingHold) {
  Rng rng(3);
  const auto g = graph::power_law_configuration(300, 2.2, 2, 40, rng);
  DeviceCache cache(GetParam(), 40, g);
  std::uint64_t total_lookups = 0;
  std::uint64_t total_hits = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<graph::NodeId> batch;
    for (int i = 0; i < 50; ++i) {
      batch.push_back(static_cast<graph::NodeId>(
          rng.uniform_index(static_cast<std::uint64_t>(g.num_nodes()))));
    }
    const LookupResult res = cache.lookup_and_update(batch);
    total_lookups += batch.size();
    total_hits += res.hits;
    // hits + misses == lookups for this batch
    EXPECT_EQ(res.hits + res.misses.size(), batch.size());
    // capacity never exceeded
    EXPECT_LE(cache.resident_count(), cache.capacity());
    // every reported miss is genuinely non-resident at lookup time is
    // not directly checkable post-update, but misses must be unique ids
    // from the batch
    for (auto v : res.misses) {
      EXPECT_TRUE(g.contains(v));
    }
  }
  EXPECT_EQ(cache.stats().lookups, total_lookups);
  EXPECT_EQ(cache.stats().hits, total_hits);
  const double rate = cache.stats().hit_rate();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyInvariants,
                         ::testing::Values(CachePolicy::kNone,
                                           CachePolicy::kStatic,
                                           CachePolicy::kLru,
                                           CachePolicy::kFifo,
                                           CachePolicy::kWeightedDegree),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(DeviceCache, NonePolicyNeverHits) {
  const auto g = star_graph(10);
  DeviceCache cache(CachePolicy::kNone, 100, g);
  EXPECT_EQ(cache.capacity(), 0u);
  const auto res = cache.lookup_and_update({0, 1, 2});
  EXPECT_EQ(res.hits, 0u);
  EXPECT_EQ(res.misses.size(), 3u);
  EXPECT_EQ(cache.resident_count(), 0u);
}

TEST(DeviceCache, StaticPreloadsHighestDegree) {
  const auto g = star_graph(20);
  DeviceCache cache(CachePolicy::kStatic, 1, g);
  // hub (vertex 0, degree 20) must be the preloaded entry
  EXPECT_TRUE(cache.is_resident(0));
  const auto res = cache.lookup_and_update({0, 1});
  EXPECT_EQ(res.hits, 1u);
  EXPECT_EQ(res.misses.size(), 1u);
  // static cache never admits new entries
  EXPECT_FALSE(cache.is_resident(1));
  EXPECT_EQ(res.replaced, 0u);
}

TEST(DeviceCache, LruEvictsLeastRecentlyUsed) {
  const auto g = star_graph(10);
  DeviceCache cache(CachePolicy::kLru, 2, g);
  cache.lookup_and_update({1});       // resident: {1}
  cache.lookup_and_update({2});       // resident: {1,2}
  cache.lookup_and_update({1});       // touch 1 -> 2 is LRU
  const auto res = cache.lookup_and_update({3});  // evicts 2
  EXPECT_EQ(res.replaced, 1u);
  EXPECT_TRUE(cache.is_resident(1));
  EXPECT_FALSE(cache.is_resident(2));
  EXPECT_TRUE(cache.is_resident(3));
}

TEST(DeviceCache, FifoEvictsInInsertionOrder) {
  const auto g = star_graph(10);
  DeviceCache cache(CachePolicy::kFifo, 2, g);
  cache.lookup_and_update({1});
  cache.lookup_and_update({2});
  cache.lookup_and_update({1});       // touching does NOT protect in FIFO
  cache.lookup_and_update({3});       // evicts 1 (oldest insertion)
  EXPECT_FALSE(cache.is_resident(1));
  EXPECT_TRUE(cache.is_resident(2));
  EXPECT_TRUE(cache.is_resident(3));
}

TEST(DeviceCache, WeightedDegreeKeepsHubs) {
  const auto g = star_graph(10);  // hub 0 degree 10, leaves degree 1
  DeviceCache cache(CachePolicy::kWeightedDegree, 1, g);
  cache.lookup_and_update({0});  // hub resident
  cache.lookup_and_update({1});  // leaf must NOT displace the hub
  EXPECT_TRUE(cache.is_resident(0));
  EXPECT_FALSE(cache.is_resident(1));
  // but a hub can displace a leaf
  DeviceCache c2(CachePolicy::kWeightedDegree, 1, g);
  c2.lookup_and_update({1});
  c2.lookup_and_update({0});
  EXPECT_TRUE(c2.is_resident(0));
  EXPECT_FALSE(c2.is_resident(1));
}

// ------------------------------------------------------------------
// Exact scripted eviction order per policy. These pin the precise
// victim-selection semantics (including tie-breaks) so the O(1)
// replacement machinery cannot silently change which vertices survive.

TEST(DeviceCache, FifoEvictionOrderScripted) {
  const auto g = star_graph(10);
  DeviceCache cache(CachePolicy::kFifo, 2, g);
  cache.lookup_and_update({4});
  cache.lookup_and_update({5});
  EXPECT_EQ(residents_of(cache, g), (std::vector<graph::NodeId>{4, 5}));
  cache.lookup_and_update({4});  // hit; FIFO ignores recency
  const auto r1 = cache.lookup_and_update({6});  // evicts 4 (oldest)
  EXPECT_EQ(r1.replaced, 1u);
  EXPECT_EQ(residents_of(cache, g), (std::vector<graph::NodeId>{5, 6}));
  cache.lookup_and_update({7});  // evicts 5
  EXPECT_EQ(residents_of(cache, g), (std::vector<graph::NodeId>{6, 7}));
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(DeviceCache, LruEvictionOrderScripted) {
  const auto g = star_graph(10);
  DeviceCache cache(CachePolicy::kLru, 3, g);
  cache.lookup_and_update({1});
  cache.lookup_and_update({2});
  cache.lookup_and_update({3});  // resident {1,2,3}
  cache.lookup_and_update({2});  // recency order now 1 < 3 < 2
  cache.lookup_and_update({1});  // recency order now 3 < 2 < 1
  const auto r1 = cache.lookup_and_update({4});  // evicts 3
  EXPECT_EQ(r1.replaced, 1u);
  EXPECT_EQ(residents_of(cache, g), (std::vector<graph::NodeId>{1, 2, 4}));
  cache.lookup_and_update({5});  // evicts 2
  EXPECT_EQ(residents_of(cache, g), (std::vector<graph::NodeId>{1, 4, 5}));
  cache.lookup_and_update({4});  // touch 4; 1 is now least recent
  cache.lookup_and_update({6});  // evicts 1
  EXPECT_EQ(residents_of(cache, g), (std::vector<graph::NodeId>{4, 5, 6}));
}

TEST(DeviceCache, WdegAdmissionAndEvictionScripted) {
  const auto g = degree_ladder(4);  // deg(0)=1, deg(1)=2, deg(2)=3, deg(3)=4
  DeviceCache cache(CachePolicy::kWeightedDegree, 2, g);
  cache.lookup_and_update({1});
  cache.lookup_and_update({2});  // resident {1,2}, min resident degree 2
  // Admission check: deg(0)=1 <= 2, so vertex 0 must be rejected without
  // evicting anything.
  const auto rejected = cache.lookup_and_update({0});
  EXPECT_EQ(rejected.replaced, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(residents_of(cache, g), (std::vector<graph::NodeId>{1, 2}));
  // deg(3)=4 > 2 displaces exactly the minimum-degree resident (vertex 1).
  const auto admitted = cache.lookup_and_update({3});
  EXPECT_EQ(admitted.replaced, 1u);
  EXPECT_EQ(residents_of(cache, g), (std::vector<graph::NodeId>{2, 3}));
  // Equal-degree admission is also rejected (strictly-greater rule).
  cache.lookup_and_update({2});
  const auto equal = cache.lookup_and_update({1});
  EXPECT_EQ(equal.replaced, 0u);
  EXPECT_FALSE(cache.is_resident(1));
}

TEST(DeviceCache, WdegDegreeTieEvictsEarliestInserted) {
  const auto g = degree_ladder(4);
  // Leaves all have degree 1; the first-inserted of a degree tie must be
  // the victim.
  const graph::NodeId leaf_a = 4;
  const graph::NodeId leaf_b = 5;
  DeviceCache cache(CachePolicy::kWeightedDegree, 2, g);
  cache.lookup_and_update({leaf_a});
  cache.lookup_and_update({leaf_b});
  const auto res = cache.lookup_and_update({3});  // deg 4 displaces leaf_a
  EXPECT_EQ(res.replaced, 1u);
  EXPECT_FALSE(cache.is_resident(leaf_a));
  EXPECT_TRUE(cache.is_resident(leaf_b));
  EXPECT_TRUE(cache.is_resident(3));
}

TEST(DeviceCache, CapacityZeroNeverAdmits) {
  const auto g = star_graph(6);
  for (CachePolicy p : {CachePolicy::kLru, CachePolicy::kFifo,
                        CachePolicy::kWeightedDegree, CachePolicy::kStatic}) {
    DeviceCache cache(p, 0, g);
    const auto res = cache.lookup_and_update({0, 1, 2});
    EXPECT_EQ(res.hits, 0u);
    EXPECT_EQ(res.misses.size(), 3u);
    EXPECT_EQ(res.replaced, 0u);
    EXPECT_EQ(cache.resident_count(), 0u);
    EXPECT_EQ(cache.stats().evictions, 0u);
  }
}

TEST(DeviceCache, CapacityAtLeastGraphNeverEvicts) {
  const auto g = star_graph(6);  // 7 vertices
  for (CachePolicy p : {CachePolicy::kLru, CachePolicy::kFifo,
                        CachePolicy::kWeightedDegree}) {
    DeviceCache cache(p, 100, g);
    EXPECT_EQ(cache.capacity(), 7u);
    std::vector<graph::NodeId> all;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) all.push_back(v);
    cache.lookup_and_update(all);
    cache.lookup_and_update(all);
    EXPECT_EQ(cache.resident_count(), 7u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.stats().hits, 7u);  // second pass hits everything
  }
}

TEST(DeviceCache, CapacityClampedToGraph) {
  const auto g = star_graph(4);  // 5 vertices
  DeviceCache cache(CachePolicy::kStatic, 100, g);
  EXPECT_EQ(cache.capacity(), 5u);
  EXPECT_EQ(cache.resident_count(), 5u);
  const auto res = cache.lookup_and_update({0, 1, 2, 3, 4});
  EXPECT_EQ(res.hits, 5u);
}

TEST(DeviceCache, ResidencyBitmapMatchesQueries) {
  const auto g = star_graph(10);
  DeviceCache cache(CachePolicy::kLru, 3, g);
  cache.lookup_and_update({4, 5, 6});
  const auto& bitmap = cache.residency_bitmap();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(bitmap[static_cast<std::size_t>(v)] != 0,
              cache.is_resident(v));
  }
}

TEST(DeviceCache, RejectsOutOfRangeLookups) {
  const auto g = star_graph(3);
  DeviceCache cache(CachePolicy::kLru, 2, g);
  EXPECT_THROW(cache.lookup_and_update({99}), Error);
}

TEST(DeviceCache, HigherCapacityNeverLowersStaticHitRate) {
  Rng rng(5);
  const auto g = graph::power_law_configuration(400, 2.1, 3, 50, rng);
  std::vector<std::vector<graph::NodeId>> batches;
  for (int b = 0; b < 10; ++b) {
    std::vector<graph::NodeId> batch;
    for (int i = 0; i < 64; ++i) {
      batch.push_back(static_cast<graph::NodeId>(
          rng.uniform_index(static_cast<std::uint64_t>(g.num_nodes()))));
    }
    batches.push_back(std::move(batch));
  }
  double prev = -1.0;
  for (std::size_t cap : {0u, 40u, 100u, 200u, 400u}) {
    DeviceCache cache(CachePolicy::kStatic, cap, g);
    for (const auto& b : batches) cache.lookup_and_update(b);
    const double rate = cache.stats().hit_rate();
    EXPECT_GE(rate, prev);
    prev = rate;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // full cache hits everything
}

TEST(CachePolicy, StringRoundTrip) {
  for (CachePolicy p : {CachePolicy::kNone, CachePolicy::kStatic,
                        CachePolicy::kLru, CachePolicy::kFifo,
                        CachePolicy::kWeightedDegree}) {
    EXPECT_EQ(cache_policy_from_string(to_string(p)), p);
  }
  EXPECT_THROW(cache_policy_from_string("bogus"), Error);
}

}  // namespace
}  // namespace gnav::cache
