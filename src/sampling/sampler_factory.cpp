#include "sampling/sampler_factory.hpp"

#include "sampling/cluster_sampler.hpp"
#include "support/error.hpp"

namespace gnav::sampling {

std::unique_ptr<Sampler> make_sampler(
    const SamplerSettings& settings, const std::vector<char>* preference,
    std::function<std::uint64_t()> preference_version) {
  GNAV_CHECK(settings.bias_rate >= 0.0 && settings.bias_rate <= 1.0,
             "bias rate must be in [0,1]");
  SamplingBias bias;
  bias.preference = preference;
  bias.bias_rate = settings.bias_rate;
  bias.version = std::move(preference_version);
  switch (settings.kind) {
    case SamplerKind::kNodeWise:
      return std::make_unique<NodeWiseSampler>(settings.hop_list, bias);
    case SamplerKind::kLayerWise:
      return std::make_unique<LayerWiseSampler>(settings.hop_list, bias);
    case SamplerKind::kSaintWalk:
      return std::make_unique<SaintSampler>(
          SaintSampler::Variant::kWalk,
          static_cast<int>(settings.hop_list.size()),
          settings.saint_budget_multiplier, bias);
    case SamplerKind::kSaintNode:
      return std::make_unique<SaintSampler>(
          SaintSampler::Variant::kNode,
          static_cast<int>(settings.hop_list.size()),
          settings.saint_budget_multiplier, bias);
    case SamplerKind::kSaintEdge:
      return std::make_unique<SaintSampler>(
          SaintSampler::Variant::kEdge,
          static_cast<int>(settings.hop_list.size()),
          settings.saint_budget_multiplier, bias);
    case SamplerKind::kCluster:
      return std::make_unique<ClusterSampler>(
          settings.cluster_num_parts, settings.cluster_max_per_batch);
  }
  throw Error("unreachable sampler kind");
}

}  // namespace gnav::sampling
