// Tests for the pipelined epoch executor subsystem: the bounded MPMC
// StagedQueue, the run_pipelined_epoch stage driver (ordering, bounded
// prefetch, error propagation), the env-knob validation, and the
// headline contract — the async executor's TrainReport is bit-identical
// to the synchronous executor's for every template configuration at any
// worker count and prefetch depth (only wall-clock observables differ).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "graph/dataset.hpp"
#include "hw/platform.hpp"
#include "runtime/backend.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/templates.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/staged_queue.hpp"

namespace gnav {
namespace {

using runtime::PipelineConfig;
using runtime::PipelineEpochStats;
using runtime::PipelineMode;
using support::StagedQueue;

// ------------------------------------------------------------ StagedQueue

TEST(StagedQueue, FifoSingleThread) {
  StagedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(int(i)));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  const auto st = q.stats();
  EXPECT_EQ(st.pushes, 5u);
  EXPECT_EQ(st.pops, 5u);
  EXPECT_EQ(st.push_stalls, 0u);
  EXPECT_EQ(st.pop_stalls, 0u);
  EXPECT_GT(st.mean_occupancy(), 0.0);
}

TEST(StagedQueue, CapacityClampedToOne) {
  StagedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

// Occupancy is sampled BEFORE each push lands: the just-pushed item never
// counts itself. A queue whose consumer always keeps up therefore reports
// mean occupancy 0 — the signal the auto-depth tuning needs — instead of
// the constant 1.0 a post-push sample would produce.
TEST(StagedQueue, OccupancySampledBeforePushExcludesOwnItem) {
  StagedQueue<int> never_backlogged(1);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(never_backlogged.push(int(i)));
    EXPECT_EQ(never_backlogged.pop().value(), i);
  }
  EXPECT_EQ(never_backlogged.stats().pushes, 6u);
  EXPECT_DOUBLE_EQ(never_backlogged.stats().mean_occupancy(), 0.0);

  // Backlog builds without pops: pushes observe 0, 1, 2 items already
  // buffered -> mean 1.0 (and never the capacity itself).
  StagedQueue<int> backlogged(4);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(backlogged.push(int(i)));
  EXPECT_DOUBLE_EQ(backlogged.stats().mean_occupancy(), 1.0);
}

TEST(StagedQueue, PushBlocksWhenFullAndCountsStall) {
  StagedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    EXPECT_TRUE(q.push(3));  // must wait for a pop
    pushed = true;
  });
  // The push cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GE(q.stats().push_stalls, 1u);
}

TEST(StagedQueue, PopBlocksWhenEmptyAndCountsStall) {
  StagedQueue<int> q(2);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(42);
  });
  const auto v = q.pop();  // waits for the delayed push
  t.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_GE(q.stats().pop_stalls, 1u);
}

TEST(StagedQueue, CloseDrainsBufferedItemsThenEndsStream) {
  StagedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // closed: push fails, item dropped
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained
  EXPECT_FALSE(q.pop().has_value());  // stays ended
}

TEST(StagedQueue, CloseWakesBlockedProducerAndConsumer) {
  StagedQueue<int> full(1);
  ASSERT_TRUE(full.push(0));
  std::thread producer([&] { EXPECT_FALSE(full.push(1)); });
  StagedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_FALSE(empty.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  full.close();
  empty.close();
  producer.join();
  consumer.join();
  // The buffered item survives the close for draining.
  EXPECT_EQ(full.pop().value(), 0);
}

TEST(StagedQueue, MpmcStressPreservesEveryItem) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  StagedQueue<int> q(8);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (const auto v = q.pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// --------------------------------------------------- run_pipelined_epoch

PipelineConfig async_config(std::size_t workers, std::size_t depth) {
  PipelineConfig c;
  c.mode = PipelineMode::kAsync;
  c.sampler_workers = workers;
  c.prefetch_depth = depth;
  return c;
}

TEST(PipelinedEpoch, StagesRunInStrictBatchOrderAtAnyShape) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    for (const std::size_t depth : {1u, 2u, 4u}) {
      constexpr std::size_t kBatches = 200;
      std::atomic<std::size_t> sampled{0};
      std::size_t prepared_next = 0;  // only touched by transfer stage
      std::vector<int> consumed;
      const auto stats = runtime::run_pipelined_epoch<int, int>(
          kBatches, async_config(workers, depth),
          /*chain_sample_and_prepare=*/false,
          [&](std::size_t i) {
            ++sampled;
            // Jitter completion order so the reorder ring does real work.
            if (i % 7 == 0) {
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
            return static_cast<int>(i);
          },
          [&](std::size_t i, int&& v) {
            EXPECT_EQ(prepared_next, i) << "transfer stage out of order";
            ++prepared_next;
            return v * 3;
          },
          [&](std::size_t i, int&& v) {
            EXPECT_EQ(static_cast<int>(i) * 3, v);
            consumed.push_back(v);
          });
      EXPECT_EQ(sampled.load(), kBatches);
      EXPECT_EQ(prepared_next, kBatches);
      ASSERT_EQ(consumed.size(), kBatches);
      EXPECT_EQ(stats.batches, kBatches);
      EXPECT_LE(stats.sampler_workers, std::max<std::size_t>(workers, 1));
      EXPECT_GT(stats.wall_s, 0.0);
    }
  }
}

TEST(PipelinedEpoch, PrefetchDepthBoundsInFlightBatches) {
  constexpr std::size_t kDepth = 3;
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  const auto stats = runtime::run_pipelined_epoch<int, int>(
      100, async_config(8, kDepth), false,
      [&](std::size_t i) {
        const int now = ++in_flight;
        int seen = max_in_flight.load();
        while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        return static_cast<int>(i);
      },
      [&](std::size_t, int&& v) {
        --in_flight;  // consumed in order by the transfer stage
        return v;
      },
      [](std::size_t, int&&) {});
  EXPECT_EQ(stats.batches, 100u);
  // Sampling of batch i only starts once fewer than `depth` batches are
  // claimed-but-unconsumed, so concurrency can never exceed the depth.
  EXPECT_LE(max_in_flight.load(), static_cast<int>(kDepth));
}

TEST(PipelinedEpoch, ChainModeSamplesAfterPreviousPrepare) {
  // Biased-sampling mode: sample(i) must observe prepare(i-1)'s side
  // effects, i.e. they alternate strictly on one producer thread.
  std::atomic<std::size_t> prepares_done{0};
  const auto stats = runtime::run_pipelined_epoch<int, int>(
      64, async_config(4, 2), /*chain_sample_and_prepare=*/true,
      [&](std::size_t i) {
        EXPECT_EQ(prepares_done.load(), i)
            << "sample(i) ran before prepare(i-1) finished";
        return static_cast<int>(i);
      },
      [&](std::size_t, int&& v) {
        ++prepares_done;
        return v;
      },
      [](std::size_t, int&&) {});
  EXPECT_EQ(stats.batches, 64u);
  EXPECT_EQ(stats.sampler_workers, 1u);  // chain forces one producer
}

TEST(PipelinedEpoch, BackpressureIsObservableWhenComputeIsSlow) {
  const auto stats = runtime::run_pipelined_epoch<int, int>(
      60, async_config(4, 2), false,
      [](std::size_t i) { return static_cast<int>(i); },
      [](std::size_t, int&& v) { return v; },
      [](std::size_t, int&&) {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      });
  // Slow consumer: the prepared queue fills up and upstream stalls.
  EXPECT_GT(stats.push_stalls, 0u);
  EXPECT_GT(stats.mean_prepared_occupancy, 0.0);
  EXPECT_GT(stats.compute_busy_s, 0.0);
}

TEST(PipelinedEpoch, ConsumerExceptionShutsDownAndPropagates) {
  EXPECT_THROW(
      (runtime::run_pipelined_epoch<int, int>(
          500, async_config(4, 4), false,
          [](std::size_t i) { return static_cast<int>(i); },
          [](std::size_t, int&& v) { return v; },
          [](std::size_t i, int&&) {
            if (i == 3) throw Error("consumer boom");
          })),
      Error);
}

TEST(PipelinedEpoch, SamplerExceptionShutsDownAndPropagates) {
  for (const bool chain : {false, true}) {
    EXPECT_THROW(
        (runtime::run_pipelined_epoch<int, int>(
            500, async_config(2, 2), chain,
            [](std::size_t i) {
              if (i == 17) throw Error("sampler boom");
              return static_cast<int>(i);
            },
            [](std::size_t, int&& v) { return v; },
            [](std::size_t, int&&) {})),
        Error);
  }
}

TEST(PipelinedEpoch, TransferExceptionShutsDownAndPropagates) {
  EXPECT_THROW(
      (runtime::run_pipelined_epoch<int, int>(
          500, async_config(2, 4), false,
          [](std::size_t i) { return static_cast<int>(i); },
          [](std::size_t i, int&& v) {
            if (i == 29) throw Error("transfer boom");
            return v;
          },
          [](std::size_t, int&&) {})),
      Error);
}

TEST(PipelinedEpoch, ZeroBatchesIsANoOp) {
  const auto stats = runtime::run_pipelined_epoch<int, int>(
      0, async_config(2, 2), false,
      [](std::size_t i) { return static_cast<int>(i); },
      [](std::size_t, int&& v) { return v; }, [](std::size_t, int&&) {});
  EXPECT_EQ(stats.batches, 0u);
}

TEST(PipelineEpochStats, OverlapEfficiencyEndpoints) {
  PipelineEpochStats s;
  s.sample_busy_s = 1.0;
  s.transfer_busy_s = 0.5;
  s.compute_busy_s = 2.0;
  s.wall_s = 3.5;  // fully serial
  EXPECT_DOUBLE_EQ(s.overlap_efficiency(), 0.0);
  s.wall_s = 2.0;  // wall == bottleneck stage: perfect overlap
  EXPECT_DOUBLE_EQ(s.overlap_efficiency(), 1.0);
  s.wall_s = 2.75;  // halfway
  EXPECT_NEAR(s.overlap_efficiency(), 0.5, 1e-12);
}

// ------------------------------------------------------- env validation

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(EnvValidation, PipelineModeFallsBackToSyncOnGarbage) {
  EnvGuard guard("GNAV_PIPELINE");
  ::setenv("GNAV_PIPELINE", "turbo", 1);
  EXPECT_EQ(runtime::default_pipeline_config().mode, PipelineMode::kSync);
  ::setenv("GNAV_PIPELINE", "async", 1);
  EXPECT_EQ(runtime::default_pipeline_config().mode, PipelineMode::kAsync);
  ::setenv("GNAV_PIPELINE", "sync", 1);
  EXPECT_EQ(runtime::default_pipeline_config().mode, PipelineMode::kSync);
  ::unsetenv("GNAV_PIPELINE");
  EXPECT_EQ(runtime::default_pipeline_config().mode, PipelineMode::kSync);
}

TEST(EnvValidation, PipelineDepthRejectsZeroAndGarbage) {
  EnvGuard guard("GNAV_PIPELINE_DEPTH");
  ::setenv("GNAV_PIPELINE_DEPTH", "0", 1);
  EXPECT_EQ(runtime::default_pipeline_config().prefetch_depth, 4u);
  ::setenv("GNAV_PIPELINE_DEPTH", "3x", 1);
  EXPECT_EQ(runtime::default_pipeline_config().prefetch_depth, 4u);
  ::setenv("GNAV_PIPELINE_DEPTH", "-2", 1);
  EXPECT_EQ(runtime::default_pipeline_config().prefetch_depth, 4u);
  ::setenv("GNAV_PIPELINE_DEPTH", "7", 1);
  EXPECT_EQ(runtime::default_pipeline_config().prefetch_depth, 7u);
}

TEST(EnvValidation, PipelineWorkersRejectsZeroAndGarbage) {
  EnvGuard guard("GNAV_PIPELINE_WORKERS");
  ::setenv("GNAV_PIPELINE_WORKERS", "0", 1);
  EXPECT_EQ(runtime::default_pipeline_config().sampler_workers, 0u);  // auto
  ::setenv("GNAV_PIPELINE_WORKERS", "many", 1);
  EXPECT_EQ(runtime::default_pipeline_config().sampler_workers, 0u);
  ::setenv("GNAV_PIPELINE_WORKERS", "5", 1);
  EXPECT_EQ(runtime::default_pipeline_config().sampler_workers, 5u);
}

TEST(EnvValidation, ThreadCountRejectsZeroAndGarbage) {
  EnvGuard guard("GNAV_THREADS");
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  ::setenv("GNAV_THREADS", "0", 1);
  EXPECT_EQ(support::default_thread_count(), fallback);
  ::setenv("GNAV_THREADS", "O2", 1);
  EXPECT_EQ(support::default_thread_count(), fallback);
  ::setenv("GNAV_THREADS", "12abc", 1);
  EXPECT_EQ(support::default_thread_count(), fallback);
  ::setenv("GNAV_THREADS", "3", 1);
  EXPECT_EQ(support::default_thread_count(), 3u);
  ::unsetenv("GNAV_THREADS");
  EXPECT_EQ(support::default_thread_count(), fallback);
}

TEST(EnvValidation, ModeStringRoundTrip) {
  EXPECT_EQ(runtime::to_string(PipelineMode::kAsync), "async");
  EXPECT_EQ(runtime::pipeline_mode_from_string("sync"), PipelineMode::kSync);
  EXPECT_THROW(runtime::pipeline_mode_from_string("later"), Error);
}

// ------------------------------------------- async-vs-sync bit-identity

graph::Dataset small_dataset() {
  graph::SyntheticSpec spec;
  spec.name = "pipeline-unit";
  spec.num_nodes = 600;
  spec.num_classes = 4;
  spec.feature_dim = 12;
  spec.min_degree = 3;
  spec.max_degree = 60;
  return graph::make_synthetic_dataset(spec, 5);
}

/// Every deterministic (non-wall-clock) field must match EXACTLY.
void expect_reports_bit_identical(const runtime::TrainReport& sync_r,
                                  const runtime::TrainReport& async_r) {
  EXPECT_EQ(sync_r.epoch_loss, async_r.epoch_loss);
  EXPECT_EQ(sync_r.epoch_times_s, async_r.epoch_times_s);
  EXPECT_EQ(sync_r.epoch_train_accuracy, async_r.epoch_train_accuracy);
  EXPECT_EQ(sync_r.epoch_val_accuracy, async_r.epoch_val_accuracy);
  EXPECT_EQ(sync_r.final_train_accuracy, async_r.final_train_accuracy);
  EXPECT_EQ(sync_r.val_accuracy, async_r.val_accuracy);
  EXPECT_EQ(sync_r.test_accuracy, async_r.test_accuracy);
  EXPECT_EQ(sync_r.epoch_time_s, async_r.epoch_time_s);
  EXPECT_EQ(sync_r.peak_memory_gb, async_r.peak_memory_gb);
  EXPECT_EQ(sync_r.mem_model_gb, async_r.mem_model_gb);
  EXPECT_EQ(sync_r.mem_cache_gb, async_r.mem_cache_gb);
  EXPECT_EQ(sync_r.mem_runtime_gb, async_r.mem_runtime_gb);
  EXPECT_EQ(sync_r.cache_hit_rate, async_r.cache_hit_rate);
  EXPECT_EQ(sync_r.avg_batch_nodes, async_r.avg_batch_nodes);
  EXPECT_EQ(sync_r.avg_batch_edges, async_r.avg_batch_edges);
  EXPECT_EQ(sync_r.per_batch_nodes, async_r.per_batch_nodes);
  EXPECT_EQ(sync_r.iterations_per_epoch, async_r.iterations_per_epoch);
  EXPECT_EQ(sync_r.epoch_phases.sample_s, async_r.epoch_phases.sample_s);
  EXPECT_EQ(sync_r.epoch_phases.transfer_s, async_r.epoch_phases.transfer_s);
  EXPECT_EQ(sync_r.epoch_phases.replace_s, async_r.epoch_phases.replace_s);
  EXPECT_EQ(sync_r.epoch_phases.compute_s, async_r.epoch_phases.compute_s);
  // Eq. 4 modeled pair is deterministic too (measured walls are not).
  EXPECT_EQ(sync_r.pipeline.modeled_overlapped_s,
            async_r.pipeline.modeled_overlapped_s);
  EXPECT_EQ(sync_r.pipeline.modeled_sequential_s,
            async_r.pipeline.modeled_sequential_s);
}

class ExecutorBitIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(ExecutorBitIdentity, AsyncMatchesSyncForTemplate) {
  const graph::Dataset ds = small_dataset();
  runtime::RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  runtime::TrainConfig config = runtime::template_by_name(GetParam());
  config.batch_size = 128;

  runtime::RunOptions sync_opts;
  sync_opts.epochs = 2;
  sync_opts.seed = 11;
  sync_opts.record_batch_sizes = true;
  sync_opts.pipeline.mode = PipelineMode::kSync;
  runtime::RunOptions async_opts = sync_opts;
  async_opts.pipeline.mode = PipelineMode::kAsync;
  async_opts.pipeline.prefetch_depth = 2;
  async_opts.pipeline.sampler_workers = 2;

  const auto sync_r = backend.run(config, sync_opts);
  const auto async_r = backend.run(config, async_opts);
  expect_reports_bit_identical(sync_r, async_r);
  EXPECT_EQ(sync_r.pipeline.executor, "sync");
  EXPECT_EQ(async_r.pipeline.executor, "async");
  EXPECT_EQ(async_r.pipeline.prefetch_depth, 2u);
}

INSTANTIATE_TEST_SUITE_P(Templates, ExecutorBitIdentity,
                         ::testing::Values("pyg", "pagraph-full",
                                           "pagraph-low", "2pgraph",
                                           "graphsaint", "fastgcn"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(ExecutorBitIdentity, HoldsAcrossWorkersAndDepths) {
  const graph::Dataset ds = small_dataset();
  runtime::RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  runtime::TrainConfig config = runtime::template_by_name("pagraph-low");
  config.cache_policy = cache::CachePolicy::kLru;  // dynamic hit/miss path
  config.batch_size = 128;

  runtime::RunOptions sync_opts;
  sync_opts.epochs = 2;
  sync_opts.seed = 3;
  sync_opts.pipeline.mode = PipelineMode::kSync;
  const auto sync_r = backend.run(config, sync_opts);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    for (const std::size_t depth : {1u, 2u, 4u}) {
      runtime::RunOptions async_opts = sync_opts;
      async_opts.pipeline.mode = PipelineMode::kAsync;
      async_opts.pipeline.sampler_workers = workers;
      async_opts.pipeline.prefetch_depth = depth;
      const auto async_r = backend.run(config, async_opts);
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " depth=" + std::to_string(depth));
      expect_reports_bit_identical(sync_r, async_r);
    }
  }
}

TEST(ExecutorBitIdentity, AsyncRunsAreReproducible) {
  // Two identical async runs must agree bit-for-bit with each other
  // (scheduling noise must never leak into the report).
  const graph::Dataset ds = small_dataset();
  runtime::RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  runtime::TrainConfig config = runtime::template_by_name("graphsaint");
  config.batch_size = 128;
  runtime::RunOptions opts;
  opts.epochs = 2;
  opts.seed = 29;
  opts.pipeline.mode = PipelineMode::kAsync;
  opts.pipeline.sampler_workers = 4;
  opts.pipeline.prefetch_depth = 4;
  const auto a = backend.run(config, opts);
  const auto b = backend.run(config, opts);
  expect_reports_bit_identical(a, b);
}

TEST(ExecutorReport, AsyncPopulatesBackpressureAccounting) {
  const graph::Dataset ds = small_dataset();
  runtime::RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  runtime::TrainConfig config = runtime::template_by_name("pyg");
  config.batch_size = 64;
  runtime::RunOptions opts;
  opts.epochs = 2;
  opts.pipeline.mode = PipelineMode::kAsync;
  opts.pipeline.sampler_workers = 2;
  opts.pipeline.prefetch_depth = 4;
  const auto r = backend.run(config, opts);
  EXPECT_EQ(r.pipeline.executor, "async");
  EXPECT_EQ(r.pipeline.prefetch_depth, 4u);
  EXPECT_GE(r.pipeline.sampler_workers, 1u);
  EXPECT_GT(r.pipeline.measured_wall_s, 0.0);
  EXPECT_GT(r.pipeline.sample_wall_s, 0.0);
  EXPECT_GT(r.pipeline.transfer_wall_s, 0.0);
  EXPECT_GT(r.pipeline.compute_wall_s, 0.0);
  // Under load the wall can exceed the busy sums (scheduling delays), so
  // only positivity is stable enough to assert here.
  EXPECT_GT(r.pipeline.measured_speedup(), 0.0);
  EXPECT_GE(r.pipeline.overlap_efficiency(), 0.0);
  EXPECT_LE(r.pipeline.overlap_efficiency(), 1.0);
  // Eq. 4's prediction exists alongside the measurement.
  EXPECT_GT(r.pipeline.modeled_sequential_s, 0.0);
  EXPECT_GE(r.pipeline.predicted_speedup(), 1.0);
  // A bounded queue between stages was genuinely exercised: every batch
  // passed through the prepared queue, so someone stalled somewhere
  // unless the stages were perfectly balanced — just assert the counters
  // are self-consistent rather than nonzero.
  EXPECT_LE(r.pipeline.mean_queue_occupancy,
            static_cast<double>(r.pipeline.prefetch_depth));
}

TEST(ExecutorReport, SyncAccountsStageWallsToo) {
  const graph::Dataset ds = small_dataset();
  runtime::RuntimeBackend backend(ds, hw::make_profile("rtx4090"));
  runtime::TrainConfig config = runtime::template_by_name("2pgraph");
  config.batch_size = 128;
  runtime::RunOptions opts;
  opts.epochs = 1;
  opts.pipeline.mode = PipelineMode::kSync;
  const auto r = backend.run(config, opts);
  EXPECT_EQ(r.pipeline.executor, "sync");
  EXPECT_GT(r.pipeline.measured_wall_s, 0.0);
  EXPECT_GT(r.pipeline.transfer_wall_s, 0.0);
  EXPECT_GT(r.pipeline.compute_wall_s, 0.0);
  EXPECT_EQ(r.pipeline.push_stalls, 0u);  // no queues in the sync path
}

}  // namespace
}  // namespace gnav
