// gnav::compute — the pluggable compute-backend layer.
//
// Everything above the raw kernels (nn layers, the training runtime, the
// device cache) talks to an abstract ComputeBackend instead of calling a
// hard-wired CPU implementation: virtual SpMM/aggregate entry points,
// per-backend device memory (a DeviceAllocator the backend owns, which
// turns cache::DeviceCache into an actual device-residency manager), and
// capability flags the estimator features on and the DSE can constrain
// against. Backends are created by string id through BackendFactory —
// the tensorlogic BackendFactory::create / Etaler CPUBackend-OpenCLBackend
// pattern — so a GPU or out-of-core backend is a registration, not a
// refactor.
//
// Bit-identity contract PER BACKEND ID: a backend must produce the exact
// same bits for the same inputs at any thread count and on any host (the
// kernel layer's accumulate-order contract, see kernels/spmm.hpp). The
// golden-trace suite keys its goldens by backend id; the three built-in
// CPU backends additionally produce identical bits to EACH OTHER because
// they share the kernel layer's accumulation order — a future backend
// with a different order gets its own golden block, not a waiver.
//
// Built-in ids:
//   "cpu-scalar"  — the naive reference loop; semantic ground truth.
//                   Declares NO async-transfer support (it exists to
//                   define correctness, not to pipeline), so the DSE
//                   rejects pipelined configs constrained to it.
//   "cpu-blocked" — the production register-tiled AVX2-dispatch kernel.
//   "cpu-arena"   — batched-SIMD + hugepage arena: the blocked kernel
//                   plus a per-graph SpmmPlan cache (amortizes the O(V)
//                   partition build across repeated SpMMs on one graph)
//                   and a DeviceAllocator that backs cache slabs with
//                   madvise(MADV_HUGEPAGE) mappings.
//
// Selection: GNAV_BACKEND=<id> (env, replaces the old GNAV_SPMM_IMPL) or
// BackendFactory::set_default_id() — both PROCESS-SETUP knobs only. Every
// concurrent code path pins its backend per run with a thread-local
// BackendScope (runtime::RunOptions::backend_id → scope in the run and in
// every async stage closure), so flipping the default mid-flight cannot
// reselect another job's kernels (pinned by test_serve.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "kernels/spmm.hpp"
#include "tensor/tensor.hpp"

namespace gnav::support {
class ThreadPool;
}

namespace gnav::obs {
class Gauge;
}  // namespace gnav::obs

namespace gnav::compute {

inline constexpr const char* kScalarBackendId = "cpu-scalar";
inline constexpr const char* kBlockedBackendId = "cpu-blocked";
inline constexpr const char* kArenaBackendId = "cpu-arena";

/// Capability flags of one backend. The DECLARED capabilities (what
/// BackendFactory::declared_capabilities returns, and what the estimator
/// features on) are static per id — identical on every host, so fitted
/// models and golden traces never depend on the machine they ran on. A
/// live instance's capabilities() additionally resolves `simd_tier` to
/// the ISA actually dispatched on this host (diagnostics only).
struct BackendCapabilities {
  /// Declared: widest SIMD tier the backend's kernels are written for
  /// ("portable" | "auto"). Resolved on an instance: the host's actual
  /// dispatch ("avx2" | "sse2" | "portable").
  std::string simd_tier = "portable";
  /// Declared throughput relative to the scalar reference on the bench
  /// graphs (a static prior the estimator can feature on, NOT a
  /// measurement of this host).
  double relative_throughput = 1.0;
  /// Widest feature row the backend's device memory layout supports;
  /// 0 = unbounded. The DSE rejects configs whose feature/hidden dims
  /// exceed it when constrained to this backend.
  std::size_t max_feature_dim = 0;
  /// Whether the backend can overlap host->device staging with compute —
  /// the async pipelined executor requires it.
  bool supports_async_transfer = false;
  /// Whether cache slabs come from a hugepage-backed arena.
  bool hugepage_arena = false;
};

/// Device-memory interface a backend owns. Allocation sizes are float
/// counts (every device payload in this system is float rows). The base
/// class tracks in-use and peak bytes so tests and diagnostics can audit
/// residency for real; implementations only provide the raw allocate /
/// deallocate pair. Thread-safe: backends are process-wide singletons
/// shared by concurrent jobs.
class DeviceAllocator {
 public:
  virtual ~DeviceAllocator() = default;

  float* allocate_floats(std::size_t count);
  void deallocate_floats(float* p, std::size_t count);

  std::size_t bytes_in_use() const {
    return in_use_.load(std::memory_order_relaxed);
  }
  std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Publishes this allocator's in-use/peak byte accounting as metrics
  /// gauges labeled by backend id (gnav_device_bytes_in_use /
  /// gnav_device_bytes_peak). BackendFactory calls it once when the
  /// singleton backend is created; never calling it leaves the gauges
  /// unbound and the allocator purely self-accounting.
  void bind_metrics(const std::string& backend_id);

 protected:
  virtual float* do_allocate(std::size_t count) = 0;
  virtual void do_deallocate(float* p, std::size_t count) = 0;

 private:
  std::atomic<std::size_t> in_use_{0};
  std::atomic<std::size_t> peak_{0};
  // Set once by bind_metrics before the backend is handed to callers;
  // atomic so allocation paths can read them without synchronization.
  std::atomic<obs::Gauge*> in_use_gauge_{nullptr};
  std::atomic<obs::Gauge*> peak_gauge_{nullptr};
};

/// Aggregation operators a backend must provide (the Aggregate of Eq. 1;
/// semantics documented in nn/aggregate.hpp, which delegates here).
enum class AggregateKind { kSum, kMean, kMeanTranspose, kGcn };

/// Scale-vector builders shared by the default aggregate implementation
/// and the nn layers (which cache them across forward/backward):
/// 1/deg(v), with 0 for isolated vertices.
std::vector<float> inverse_degree_scales(const graph::CsrGraph& g);
/// 1/sqrt(deg(v) + 1) — the GCN symmetric normalization.
std::vector<float> gcn_norm_scales(const graph::CsrGraph& g);

/// SpmmScales of the GCN-normalized operator for a gcn_norm_scales
/// vector: src = dst = self = 1/sqrt(d+1), i.e.
/// Y[v] = s_v * (s_v X[v] + sum_u s_u X[u]). One definition shared by
/// every backend's aggregate and the nn layers so the convention cannot
/// drift.
inline kernels::SpmmScales gcn_spmm_scales(const float* norm) {
  kernels::SpmmScales scales;
  scales.src_scale = norm;
  scales.dst_scale = norm;
  scales.self_scale = norm;
  return scales;
}

/// Mean aggregation for an inverse_degree_scales vector: post-sum
/// dst scale of 1/deg(v).
inline kernels::SpmmScales mean_spmm_scales(const float* inv_deg) {
  kernels::SpmmScales scales;
  scales.dst_scale = inv_deg;
  return scales;
}

/// Transpose-mean (backprop scatter as a pull on the symmetric CSR):
/// per-source weight 1/deg(u).
inline kernels::SpmmScales mean_transpose_spmm_scales(const float* inv_deg) {
  kernels::SpmmScales scales;
  scales.src_scale = inv_deg;
  return scales;
}

class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  virtual const std::string& id() const = 0;

  /// Resolved capabilities of this instance: the declared flags with
  /// `simd_tier` replaced by the host's actual kernel dispatch.
  virtual BackendCapabilities capabilities() const = 0;

  /// The backend's device memory. cache::DeviceCache::attach_storage
  /// draws its feature slab from here, making residency real instead of
  /// simulated.
  virtual DeviceAllocator& allocator() const = 0;

  /// Y = weighted-SpMM(g, X); same contract as kernels::spmm (y must
  /// match x's shape, must not alias it, `pool` null = global pool).
  virtual void spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
                    tensor::Tensor& y, const kernels::SpmmScales& scales,
                    support::ThreadPool* pool = nullptr) const = 0;

  /// One of the four aggregation operators via this backend's SpMM. The
  /// default builds the scale vectors per call; backends with cached
  /// normalization state may override.
  virtual tensor::Tensor aggregate(AggregateKind kind,
                                   const graph::CsrGraph& g,
                                   const tensor::Tensor& x) const;

  /// Allocating convenience over the virtual spmm.
  tensor::Tensor spmm(const graph::CsrGraph& g, const tensor::Tensor& x,
                      const kernels::SpmmScales& scales,
                      support::ThreadPool* pool = nullptr) const;
};

/// String-keyed backend factory + registry. Instances are process-wide
/// singletons (one per id), created on first use — per-backend device
/// memory has a single owner no matter how many runs share the backend.
class BackendFactory {
 public:
  using Creator = std::shared_ptr<ComputeBackend> (*)();

  /// Returns the singleton for `id`; throws gnav::Error naming the
  /// registered ids when `id` is unknown.
  static std::shared_ptr<const ComputeBackend> create(const std::string& id);

  static bool is_registered(const std::string& id);
  /// Registered ids in registration order (built-ins first).
  static std::vector<std::string> registered_ids();

  /// Registers a custom backend (extension point; see
  /// examples/extending_backend.cpp). `declared` must be host-independent.
  /// Throws if `id` is already registered.
  static void register_backend(const std::string& id,
                               BackendCapabilities declared, Creator creator);

  /// DECLARED capabilities for `id` — static per id, never resolved
  /// against the host, so estimator features and DSE feasibility are
  /// machine-independent. Unknown ids return neutral defaults (corpus
  /// files may carry ids this build does not register).
  static BackendCapabilities declared_capabilities(const std::string& id);

  /// Process-wide default id: set_default_id() if called, else
  /// GNAV_BACKEND (unknown values warn once and are ignored), else
  /// "cpu-blocked". PROCESS-SETUP knob only — concurrent code paths must
  /// pin per run via BackendScope, never flip this (see the isolation
  /// contract above and in serve/job_scheduler.hpp).
  static std::string default_id();
  static void set_default_id(const std::string& id);
};

/// Backend the calling thread currently resolves to: the innermost
/// active BackendScope on this thread, else the factory default.
const ComputeBackend& current_backend();
std::string current_backend_id();

/// RAII thread-local backend pin, the analog of kernels::SpmmImplScope
/// one layer up. The runtime pins RunOptions::backend_id with it for the
/// whole run and re-pins inside every async stage closure (fresh stage
/// threads inherit no thread-local state), so concurrent jobs on shared
/// pools can never observe each other's selection.
class BackendScope {
 public:
  explicit BackendScope(std::shared_ptr<const ComputeBackend> backend);
  explicit BackendScope(const std::string& id);
  ~BackendScope();
  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;

 private:
  std::shared_ptr<const ComputeBackend> backend_;  // keeps the pin alive
  const ComputeBackend* prev_;
};

}  // namespace gnav::compute
