#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sampling/build.hpp"
#include "sampling/sampler.hpp"
#include "support/error.hpp"

namespace gnav::sampling {

LayerWiseSampler::LayerWiseSampler(std::vector<int> hops, SamplingBias bias)
    : hops_(std::move(hops)), bias_(bias) {
  GNAV_CHECK(!hops_.empty(), "hop list must be non-empty");
  for (int k : hops_) {
    GNAV_CHECK(k >= 1, "layer-wise fanout must be >= 1");
  }
}

MiniBatch LayerWiseSampler::sample(const graph::CsrGraph& g,
                                   std::span<const graph::NodeId> seeds,
                                   Rng& rng) const {
  GNAV_CHECK(!seeds.empty(), "cannot sample from an empty seed set");
  std::vector<graph::NodeId> frontier(seeds.begin(), seeds.end());
  std::vector<graph::NodeId> collected;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  double work = static_cast<double>(seeds.size());

  for (int k : hops_) {
    // Candidate pool: union of the frontier's neighborhoods. FastGCN
    // samples Δ_l nodes layer-wide (Eq. 3: E[k_l] = Δ_l / |B_{l-1}| x μ),
    // here Δ_l = k x |frontier|, importance-weighted by degree.
    std::vector<graph::NodeId> pool;
    std::unordered_set<graph::NodeId> pool_set;
    for (graph::NodeId v : frontier) {
      for (graph::NodeId u : g.neighbors(v)) {
        if (pool_set.insert(u).second) pool.push_back(u);
      }
      // Pool construction is a vectorized frontier-neighborhood scan.
      work += 0.25 * static_cast<double>(g.degree(v));
    }
    if (pool.empty()) break;
    const auto delta = static_cast<std::size_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(pool.size()),
                               static_cast<std::int64_t>(k) *
                                   static_cast<std::int64_t>(frontier.size())));
    // Degree-proportional importance sampling (FastGCN uses q(u) ∝ |N(u)|),
    // modulated by the locality bias when active.
    std::vector<double> cum(pool.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      acc += static_cast<double>(g.degree(pool[i]) + 1) *
             bias_.weight(pool[i]);
      cum[i] = acc;
    }
    std::unordered_set<std::size_t> chosen;
    std::size_t attempts = 0;
    const std::size_t max_attempts = delta * 6 + 10;
    while (chosen.size() < delta && attempts < max_attempts) {
      ++attempts;
      chosen.insert(rng.sample_cumulative(cum));
    }
    work += static_cast<double>(attempts);

    // Keep every parent-graph edge between the frontier and the chosen
    // layer (this is the bipartite structure FastGCN trains on).
    std::unordered_set<graph::NodeId> layer_nodes;
    for (std::size_t idx : chosen) layer_nodes.insert(pool[idx]);
    std::vector<graph::NodeId> next;
    for (graph::NodeId v : frontier) {
      for (graph::NodeId u : g.neighbors(v)) {
        if (layer_nodes.contains(u)) {
          edges.emplace_back(v, u);
        }
      }
    }
    next.assign(layer_nodes.begin(), layer_nodes.end());
    std::sort(next.begin(), next.end());
    collected.insert(collected.end(), next.begin(), next.end());
    frontier = std::move(next);
  }

  const auto ordered = detail::order_nodes(seeds, collected);
  return detail::build_from_edges(seeds, ordered, edges, work);
}

}  // namespace gnav::sampling
