#include "support/table.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace gnav {
namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GNAV_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  GNAV_CHECK(cells.size() == header_.size(),
             "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  GNAV_CHECK(f.good(), "cannot open '" + path + "' for writing");
  f << to_csv();
  GNAV_CHECK(f.good(), "write to '" + path + "' failed");
}

}  // namespace gnav
