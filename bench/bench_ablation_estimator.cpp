// Ablation — gray-box vs white-box-only vs black-box-only estimation of
// the epoch time T (the design choice behind Sec. 3.3). The white-box arm
// uses only the analytic Eq. 4-8 skeleton with analytic batch size and
// coverage-prior hit rate; the black-box arm is a decision tree straight
// from features to T; the gray-box arm is the full stacked estimator.
#include <cstdio>

#include "estimator/features.hpp"
#include "estimator/perf_estimator.hpp"
#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  const auto hw = hw::make_profile("rtx4090");
  std::printf("collecting leave-one-out corpus (holdout: reddit2)...\n");
  estimator::CollectorOptions opts;
  opts.configs_per_dataset = 16;
  opts.epochs = 1;
  const auto corpus = estimator::collect_lodo_corpus(
      graph::dataset_names(), "reddit2", 2, hw, opts);

  // Gray box: the full estimator.
  estimator::PerfEstimator gray(hw);
  gray.fit(corpus);

  // Black box: one tree, features -> T.
  ml::Matrix x;
  std::vector<double> y;
  for (const auto& run : corpus) {
    x.push_back(estimator::extract_features(run.config, run.stats, hw));
    y.push_back(run.report.epoch_time_s);
  }
  ml::DecisionTreeRegressor black;
  black.fit(x, y);

  // Held-out evaluation runs.
  const auto ds = graph::load_dataset("reddit2");
  const auto stats = estimator::compute_dataset_stats(ds);
  estimator::CollectorOptions eval_opts;
  eval_opts.configs_per_dataset = 20;
  eval_opts.epochs = 1;
  eval_opts.seed = 777;
  const auto eval_runs = estimator::collect_profiles(ds, hw, eval_opts);

  std::vector<double> t_true, t_gray, t_white, t_black;
  for (const auto& run : eval_runs) {
    t_true.push_back(run.report.epoch_time_s);
    t_gray.push_back(gray.predict(run.config, stats).time_s);
    // White box: analytic batch size + coverage-prior hit rate, neutral
    // sampling-work multiplier, no learned residual.
    const double b_nodes =
        estimator::analytic_batch_nodes(run.config, stats);
    const double b_edges = b_nodes * stats.profile.avg_degree * 0.5;
    const double hit =
        estimator::analytic_cache_hit_prior(run.config, stats);
    t_white.push_back(gray.predict_time_analytic(run.config, stats,
                                                 b_nodes, b_edges, hit));
    t_black.push_back(black.predict_one(
        estimator::extract_features(run.config, stats, hw)));
  }

  Table table({"estimator arm", "R2 of T", "MAPE of T"});
  table.add_row({"gray-box (analytic + learned residuals)",
                 format_double(ml::r2_score(t_true, t_gray), 4),
                 format_double(ml::mape(t_true, t_gray), 4)});
  table.add_row({"white-box only (Eq. 4-8 analytic)",
                 format_double(ml::r2_score(t_true, t_white), 4),
                 format_double(ml::mape(t_true, t_white), 4)});
  table.add_row({"black-box only (decision tree)",
                 format_double(ml::r2_score(t_true, t_black), 4),
                 format_double(ml::mape(t_true, t_black), 4)});
  std::printf("\nestimator ablation on held-out reddit2 (%zu runs):\n\n%s\n",
              eval_runs.size(), table.to_ascii().c_str());
  table.write_csv("ablation_estimator.csv");
  std::printf("(the gray box should dominate both single-mode arms — the\n"
              " paper's rationale for combining theory with learning)\n");
  return 0;
}
