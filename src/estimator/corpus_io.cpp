#include "estimator/corpus_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace gnav::estimator {
namespace {

// Explicit schema version tokens. v2 introduced the token itself (plus
// the executor-config columns); v3 adds the `backend` column carrying
// the compute-backend id the run executed on. v1 files carry no token
// and are recognized by their exact legacy header instead (see
// load_corpus's migration path).
constexpr const char* kVersionLineV3 = "# gnav-corpus-version 3";
constexpr const char* kVersionLineV2 = "# gnav-corpus-version 2";

// Config is embedded as its guideline text with ';' separators (already
// its native single-statement form), so the CSV stays one row per run.
// v3: the `backend` cell (compute-backend id string) sits right before
// the quoted config tail.
constexpr const char* kHeaderV3 =
    "dataset,num_nodes,num_edges,avg_degree,max_degree,degree_stddev,"
    "degree_gini,power_law_alpha,top10_coverage,num_train_nodes,"
    "feature_dim,num_classes,real_scale,real_feature_scale,"
    "real_volume_scale,coverage10,coverage25,coverage50,"
    "epoch_time_s,peak_memory_gb,test_accuracy,avg_batch_nodes,"
    "avg_batch_edges,cache_hit_rate,iterations_per_epoch,"
    "sample_s,transfer_s,replace_s,compute_s,"
    "modeled_overlap_s,modeled_sequential_s,sample_wall_s,"
    "transfer_wall_s,compute_wall_s,measured_wall_s,"
    "executor,prefetch_depth,sampler_workers,push_stalls,pop_stalls,"
    "mean_queue_occupancy,backend,config";

constexpr const char* kHeaderV2 =
    "dataset,num_nodes,num_edges,avg_degree,max_degree,degree_stddev,"
    "degree_gini,power_law_alpha,top10_coverage,num_train_nodes,"
    "feature_dim,num_classes,real_scale,real_feature_scale,"
    "real_volume_scale,coverage10,coverage25,coverage50,"
    "epoch_time_s,peak_memory_gb,test_accuracy,avg_batch_nodes,"
    "avg_batch_edges,cache_hit_rate,iterations_per_epoch,"
    "sample_s,transfer_s,replace_s,compute_s,"
    // Executor overlap data: Eq. 4's modeled overlapped/sequential pair
    // plus the measured per-stage and wall seconds — the raw material
    // for fitting an f_overlapping correction from profiled runs.
    "modeled_overlap_s,modeled_sequential_s,sample_wall_s,"
    "transfer_wall_s,compute_wall_s,measured_wall_s,"
    // v2: which executor produced the measured walls (the overlap model
    // trains only on async rows) plus its shape and stall/occupancy
    // counters — regression features for the f_overlapping fit.
    "executor,prefetch_depth,sampler_workers,push_stalls,pop_stalls,"
    "mean_queue_occupancy,config";

// The PR 4-era schema: identical up to measured_wall_s but without the
// executor-config columns. Still loadable — executor fields default to
// a sync row, which the overlap-model fit ignores by design.
constexpr const char* kHeaderV1 =
    "dataset,num_nodes,num_edges,avg_degree,max_degree,degree_stddev,"
    "degree_gini,power_law_alpha,top10_coverage,num_train_nodes,"
    "feature_dim,num_classes,real_scale,real_feature_scale,"
    "real_volume_scale,coverage10,coverage25,coverage50,"
    "epoch_time_s,peak_memory_gb,test_accuracy,avg_batch_nodes,"
    "avg_batch_edges,cache_hit_rate,iterations_per_epoch,"
    "sample_s,transfer_s,replace_s,compute_s,"
    "modeled_overlap_s,modeled_sequential_s,sample_wall_s,"
    "transfer_wall_s,compute_wall_s,measured_wall_s,config";

constexpr std::size_t kScalarCellsV1 = 35;
constexpr std::size_t kScalarCellsV2 = 41;
constexpr std::size_t kScalarCellsV3 = 42;

// Rows written before the backend column (v1/v2) — and defensive blanks
// in v3 files — fit as the backend every run actually executed on back
// then: the factory default.
const char* const kDefaultBackendCell = "cpu-blocked";

std::string config_cell(const runtime::TrainConfig& config) {
  // One line: "key = value; key = value; ..."
  std::string text = config.to_config_map().to_guideline_text();
  for (char& c : text) {
    if (c == '\n') c = ' ';
  }
  return trim(text);
}

/// Measured wall-clock fields pass through this guard so a pathological
/// report (NaN/inf from clock trouble) can never strand the file —
/// loaders and the overlap-model fit both require finite cells.
double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

std::string truncate_for_error(const std::string& s) {
  constexpr std::size_t kMax = 96;
  return s.size() <= kMax ? s : s.substr(0, kMax) + "...";
}

}  // namespace

void save_corpus(const std::vector<ProfiledRun>& corpus,
                 const std::string& path) {
  std::ofstream f(path);
  GNAV_CHECK(f.good(), "cannot open '" + path + "' for writing");
  f << kVersionLineV3 << '\n' << kHeaderV3 << '\n';
  f.precision(17);  // exact double round-trip
  for (const ProfiledRun& run : corpus) {
    const DatasetStats& s = run.stats;
    const runtime::TrainReport& r = run.report;
    f << s.name << ',' << s.profile.num_nodes << ',' << s.profile.num_edges
      << ',' << s.profile.avg_degree << ',' << s.profile.max_degree << ','
      << s.profile.degree_stddev << ',' << s.profile.degree_gini << ','
      << s.profile.power_law_alpha << ',' << s.profile.top10_edge_coverage
      << ',' << s.num_train_nodes << ',' << s.feature_dim << ','
      << s.num_classes << ',' << s.real_scale_factor << ','
      << s.real_feature_scale << ',' << s.real_volume_scale << ','
      << s.coverage_at_10 << ',' << s.coverage_at_25 << ','
      << s.coverage_at_50 << ',' << r.epoch_time_s << ','
      << r.peak_memory_gb << ',' << r.test_accuracy << ','
      << r.avg_batch_nodes << ',' << r.avg_batch_edges << ','
      << r.cache_hit_rate << ',' << r.iterations_per_epoch << ','
      << r.epoch_phases.sample_s << ',' << r.epoch_phases.transfer_s << ','
      << r.epoch_phases.replace_s << ',' << r.epoch_phases.compute_s << ','
      << r.pipeline.modeled_overlapped_s << ','
      << r.pipeline.modeled_sequential_s << ','
      << finite_or_zero(r.pipeline.sample_wall_s) << ','
      << finite_or_zero(r.pipeline.transfer_wall_s) << ','
      << finite_or_zero(r.pipeline.compute_wall_s) << ','
      << finite_or_zero(r.pipeline.measured_wall_s) << ','
      << r.pipeline.executor << ',' << r.pipeline.prefetch_depth << ','
      << r.pipeline.sampler_workers << ',' << r.pipeline.push_stalls << ','
      << r.pipeline.pop_stalls << ','
      << finite_or_zero(r.pipeline.mean_queue_occupancy) << ','
      << (r.backend_id.empty() ? kDefaultBackendCell : r.backend_id.c_str())
      << ',' << '"' << config_cell(run.config) << '"' << '\n';
  }
  GNAV_CHECK(f.good(), "write to '" + path + "' failed");
}

std::vector<ProfiledRun> load_corpus(const std::string& path) {
  std::ifstream f(path);
  GNAV_CHECK(f.good(), "cannot open '" + path + "'");
  std::string line;
  GNAV_CHECK(static_cast<bool>(std::getline(f, line)),
             "corpus file '" + path + "' is empty");

  // Version detection. v3/v2 files lead with an explicit token; v1 (PR 4
  // era, before the executor-config columns) files lead directly with
  // their header and migrate in place: the missing executor cells
  // default to a sync row, which downstream fits ignore by design, and
  // pre-v3 rows (no backend column) fit as "cpu-blocked" — the backend
  // every run actually executed on before backends existed.
  int version = 0;
  if (trim(line) == kVersionLineV3 || trim(line) == kVersionLineV2) {
    version = trim(line) == kVersionLineV3 ? 3 : 2;
    const char* expected_header = version == 3 ? kHeaderV3 : kHeaderV2;
    GNAV_CHECK(static_cast<bool>(std::getline(f, line)),
               "corpus file '" + path + "' ends after the version line");
    GNAV_CHECK(trim(line) == expected_header,
               "corpus header mismatch in '" + path + "'\n  expected: " +
                   truncate_for_error(expected_header) + "\n  found:    " +
                   truncate_for_error(trim(line)));
    if (version == 2) {
      log_info("corpus '", path,
               "' uses the v2 schema (no backend column); loading with "
               "backend defaulted to cpu-blocked rows");
    }
  } else if (trim(line) == kHeaderV1) {
    version = 1;
    log_info("corpus '", path,
             "' uses the v1 schema (no executor columns); loading with "
             "executor fields defaulted to sync rows");
  } else {
    throw Error(
        "corpus header mismatch in '" + path + "'\n  expected: '" +
        std::string(kVersionLineV3) + "' followed by the v3 header, an "
        "earlier version token with its matching header, or the legacy "
        "v1 header\n  found:    '" +
        truncate_for_error(trim(line)) +
        "'\n  (file written by an incompatible gnavigator version?)");
  }
  const std::size_t scalar_cells = version == 3   ? kScalarCellsV3
                                   : version == 2 ? kScalarCellsV2
                                                  : kScalarCellsV1;

  std::vector<ProfiledRun> corpus;
  while (std::getline(f, line)) {
    if (trim(line).empty()) continue;
    // The config cell is quoted and contains commas: split off the quoted
    // tail first, then comma-split the scalar prefix.
    const auto quote = line.find('"');
    GNAV_CHECK(quote != std::string::npos && line.back() == '"',
               "malformed corpus row in '" + path +
                   "' (missing quoted config)");
    const std::string scalars = line.substr(0, quote);
    const std::string config_text =
        line.substr(quote + 1, line.size() - quote - 2);
    auto cells = split(scalars, ',');
    GNAV_CHECK(cells.size() == scalar_cells + 1 && cells.back().empty(),
               "malformed corpus row in '" + path + "' (expected " +
                   std::to_string(scalar_cells) + " scalar cells, found " +
                   std::to_string(cells.empty() ? 0 : cells.size() - 1) +
                   ")");
    cells.pop_back();

    ProfiledRun run;
    std::size_t i = 0;
    DatasetStats& s = run.stats;
    s.name = cells[i++];
    s.profile.num_nodes = parse_int(cells[i++]);
    s.profile.num_edges = parse_int(cells[i++]);
    s.profile.avg_degree = parse_double(cells[i++]);
    s.profile.max_degree =
        static_cast<std::size_t>(parse_int(cells[i++]));
    s.profile.degree_stddev = parse_double(cells[i++]);
    s.profile.degree_gini = parse_double(cells[i++]);
    s.profile.power_law_alpha = parse_double(cells[i++]);
    s.profile.top10_edge_coverage = parse_double(cells[i++]);
    s.num_train_nodes = static_cast<std::size_t>(parse_int(cells[i++]));
    s.feature_dim = static_cast<int>(parse_int(cells[i++]));
    s.num_classes = static_cast<int>(parse_int(cells[i++]));
    s.real_scale_factor = parse_double(cells[i++]);
    s.real_feature_scale = parse_double(cells[i++]);
    s.real_volume_scale = parse_double(cells[i++]);
    s.coverage_at_10 = parse_double(cells[i++]);
    s.coverage_at_25 = parse_double(cells[i++]);
    s.coverage_at_50 = parse_double(cells[i++]);
    runtime::TrainReport& r = run.report;
    r.epoch_time_s = parse_double(cells[i++]);
    r.peak_memory_gb = parse_double(cells[i++]);
    r.test_accuracy = parse_double(cells[i++]);
    r.avg_batch_nodes = parse_double(cells[i++]);
    r.avg_batch_edges = parse_double(cells[i++]);
    r.cache_hit_rate = parse_double(cells[i++]);
    r.iterations_per_epoch =
        static_cast<std::size_t>(parse_int(cells[i++]));
    r.epoch_phases.sample_s = parse_double(cells[i++]);
    r.epoch_phases.transfer_s = parse_double(cells[i++]);
    r.epoch_phases.replace_s = parse_double(cells[i++]);
    r.epoch_phases.compute_s = parse_double(cells[i++]);
    r.pipeline.modeled_overlapped_s = parse_double(cells[i++]);
    r.pipeline.modeled_sequential_s = parse_double(cells[i++]);
    r.pipeline.sample_wall_s = parse_double(cells[i++]);
    r.pipeline.transfer_wall_s = parse_double(cells[i++]);
    r.pipeline.compute_wall_s = parse_double(cells[i++]);
    r.pipeline.measured_wall_s = parse_double(cells[i++]);
    if (version >= 2) {
      r.pipeline.executor = cells[i++];
      GNAV_CHECK(r.pipeline.executor == "sync" ||
                     r.pipeline.executor == "async",
                 "corpus row in '" + path + "' has unknown executor '" +
                     r.pipeline.executor + "' (sync | async)");
      r.pipeline.prefetch_depth =
          static_cast<std::size_t>(parse_int(cells[i++]));
      r.pipeline.sampler_workers =
          static_cast<std::size_t>(parse_int(cells[i++]));
      r.pipeline.push_stalls =
          static_cast<std::uint64_t>(parse_int(cells[i++]));
      r.pipeline.pop_stalls =
          static_cast<std::uint64_t>(parse_int(cells[i++]));
      r.pipeline.mean_queue_occupancy = parse_double(cells[i++]);
    }
    if (version >= 3) {
      r.backend_id = trim(cells[i++]);
    }
    if (r.backend_id.empty()) r.backend_id = kDefaultBackendCell;
    // The cell stores statements separated by ';' on one line; ConfigMap
    // parses one statement per line.
    std::string statements = config_text;
    for (char& c : statements) {
      if (c == ';') c = '\n';
    }
    run.config =
        runtime::TrainConfig::from_config_map(ConfigMap::parse(statements));
    corpus.push_back(std::move(run));
  }
  return corpus;
}

}  // namespace gnav::estimator
