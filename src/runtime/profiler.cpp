#include "runtime/profiler.hpp"

#include <algorithm>

namespace gnav::runtime {

void Profiler::record_iteration(const hw::IterationTimes& times,
                                bool pipelined) {
  epoch_phases_.sample_s += times.t_sample;
  epoch_phases_.transfer_s += times.t_transfer;
  epoch_phases_.replace_s += times.t_replace;
  epoch_phases_.compute_s += times.t_compute;
  epoch_modeled_overlapped_s_ += times.overlapped();
  epoch_modeled_sequential_s_ += times.sequential();
  epoch_wall_s_ += pipelined ? times.overlapped() : times.sequential();
  ++iterations_;
}

void Profiler::record_device_memory(double bytes) {
  peak_device_bytes_ = std::max(peak_device_bytes_, bytes);
}

void Profiler::record_epoch_measured(const PipelineEpochStats& measured) {
  measured_ = measured;
}

void Profiler::reset_epoch() {
  epoch_phases_ = PhaseBreakdown{};
  epoch_wall_s_ = 0.0;
  epoch_modeled_overlapped_s_ = 0.0;
  epoch_modeled_sequential_s_ = 0.0;
  measured_ = PipelineEpochStats{};
  iterations_ = 0;
}

}  // namespace gnav::runtime
