// Table 2 reproduction — "Validation of estimator prediction": for each
// of Reddit, Reddit2 and Ogbn-products, the estimator is trained on all
// *other* registry datasets plus random power-law graphs (the paper's
// leave-one-dataset-out + data-enhancement protocol) and evaluated on
// held-out configurations of the target dataset. Reports R2 for the
// time-cost and memory predictions and MSE for the accuracy prediction,
// exactly the metrics of Table 2.
#include <cmath>
#include <cstdio>

#include "estimator/overlap_model.hpp"
#include "estimator/perf_estimator.hpp"
#include "ml/metrics.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace gnav;

int main() {
  const auto hw = hw::make_profile("rtx4090");
  const char* targets[] = {"reddit", "reddit2", "ogbn-products"};

  Table table({"metric", "Reddit", "Reddit2", "Ogbn-products"});
  std::vector<std::string> row_t = {"R2   Time Cost (T)"};
  std::vector<std::string> row_m = {"R2   Memory (G)"};
  std::vector<std::string> row_a = {"MSE  Accuracy (Acc)"};
  // Gray-box overlap arm: error of the predicted async-executor wall
  // ratio on the eval runs that actually ran pipelined, fitted
  // correction vs the bare Eq. 4 max().
  std::vector<std::string> row_of = {"MAE  Overlap ratio (fitted)"};
  std::vector<std::string> row_oa = {"MAE  Overlap ratio (Eq.4)"};

  for (const char* target : targets) {
    std::printf("[%s] collecting leave-one-out corpus + augmentation...\n",
                target);
    estimator::CollectorOptions opts;
    opts.configs_per_dataset = 16;
    opts.epochs = 1;
    const auto corpus = estimator::collect_lodo_corpus(
        graph::dataset_names(), target, /*augmentation_graphs=*/2, hw,
        opts);
    estimator::PerfEstimator est(hw);
    est.fit(corpus);

    // Held-out evaluation: fresh configurations on the target dataset.
    const auto ds = graph::load_dataset(target);
    const auto stats = estimator::compute_dataset_stats(ds);
    estimator::CollectorOptions eval_opts;
    eval_opts.configs_per_dataset = 20;
    eval_opts.epochs = 1;
    eval_opts.seed = 4242;
    const auto eval_runs = estimator::collect_profiles(ds, hw, eval_opts);

    std::vector<double> t_true, t_pred, m_true, m_pred, a_true, a_pred;
    for (const auto& run : eval_runs) {
      const auto p = est.predict(run.config, stats);
      t_true.push_back(run.report.epoch_time_s);
      t_pred.push_back(p.time_s);
      m_true.push_back(run.report.peak_memory_gb);
      m_pred.push_back(p.memory_gb);
      a_true.push_back(run.report.test_accuracy);
      a_pred.push_back(p.accuracy);
    }
    row_t.push_back(format_double(ml::r2_score(t_true, t_pred), 4));
    row_m.push_back(format_double(ml::r2_score(m_true, m_pred), 4));
    row_a.push_back(format_double(ml::mse(a_true, a_pred), 4));

    // Overlap arm: eval rows that ran the async executor carry measured
    // walls; sync rows are guarded out (their walls describe a serial
    // loop, not overlap).
    double mae_fit = 0.0;
    double mae_eq4 = 0.0;
    std::size_t n_overlap = 0;
    for (const auto& run : eval_runs) {
      if (!estimator::OverlapModel::row_eligible(run)) continue;
      const auto& p = run.report.pipeline;
      const double measured =
          estimator::OverlapModel::measured_ratio(run.report);
      const double analytic =
          estimator::OverlapModel::analytic_ratio(run.report);
      const estimator::OverlapExecutorShape shape{p.prefetch_depth,
                                                  p.sampler_workers};
      const double fitted = est.overlap_model().predict_ratio(
          run.config, stats, shape, analytic);
      mae_fit += std::abs(fitted - measured);
      mae_eq4 += std::abs(analytic - measured);
      ++n_overlap;
    }
    if (n_overlap > 0) {
      row_of.push_back(
          format_double(mae_fit / static_cast<double>(n_overlap), 4));
      row_oa.push_back(
          format_double(mae_eq4 / static_cast<double>(n_overlap), 4));
    } else {
      row_of.push_back("n/a");
      row_oa.push_back("n/a");
    }
  }

  table.add_row(row_t);
  table.add_row(row_m);
  table.add_row(row_a);
  table.add_row(row_of);
  table.add_row(row_oa);
  std::printf("\nTable 2 — estimator precision (leave-one-dataset-out):\n\n"
              "%s\n", table.to_ascii().c_str());
  table.write_csv("table2_estimator_precision.csv");
  std::printf("(paper: R2 of T in 0.73-0.84, R2 of G in 0.73-0.98, MSE of\n"
              " Acc at or below 0.03; the overlap rows compare the fitted\n"
              " f_overlapping correction against the bare Eq.4 max() on the\n"
              " async-executor eval rows — lower is better)\n");
  return 0;
}
