#include "cache/device_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/thread_safety.hpp"

namespace gnav::cache {

std::string to_string(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone:
      return "none";
    case CachePolicy::kStatic:
      return "static";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kFifo:
      return "fifo";
    case CachePolicy::kWeightedDegree:
      return "wdeg";
  }
  return "?";
}

CachePolicy cache_policy_from_string(const std::string& s) {
  if (s == "none") return CachePolicy::kNone;
  if (s == "static") return CachePolicy::kStatic;
  if (s == "lru") return CachePolicy::kLru;
  if (s == "fifo") return CachePolicy::kFifo;
  if (s == "wdeg") return CachePolicy::kWeightedDegree;
  throw Error("unknown cache policy '" + s + "'");
}

DeviceCache::DeviceCache(CachePolicy policy, std::size_t capacity,
                         const graph::CsrGraph& graph)
    : policy_(policy),
      capacity_(capacity),
      graph_(graph),
      resident_(static_cast<std::size_t>(graph.num_nodes()), 0) {
  {
    auto& reg = obs::MetricsRegistry::global();
    const obs::Labels labels{{"policy", to_string(policy_)}};
    hits_metric_ = &reg.counter("gnav_cache_hits_total", labels,
                                "Cache lookups served from residency");
    misses_metric_ = &reg.counter("gnav_cache_misses_total", labels,
                                  "Cache lookups that must transfer");
    insertions_metric_ = &reg.counter("gnav_cache_insertions_total", labels,
                                      "Vertices admitted to the cache");
    evictions_metric_ = &reg.counter("gnav_cache_evictions_total", labels,
                                     "Vertices evicted from the cache");
  }
  if (policy_ == CachePolicy::kNone) capacity_ = 0;
  capacity_ = std::min(capacity_,
                       static_cast<std::size_t>(graph.num_nodes()));
  if (policy_ == CachePolicy::kLru || policy_ == CachePolicy::kFifo) {
    list_prev_.assign(static_cast<std::size_t>(graph.num_nodes()), kNil);
    list_next_.assign(static_cast<std::size_t>(graph.num_nodes()), kNil);
  }
  if (policy_ == CachePolicy::kWeightedDegree) {
    insert_seq_.assign(static_cast<std::size_t>(graph.num_nodes()), 0);
    wdeg_heap_.reserve(capacity_ + 16);
  }
  if (policy_ == CachePolicy::kStatic && capacity_ > 0) {
    // PaGraph preloads the highest-degree vertices: they appear in the
    // most neighborhoods, maximizing expected hit rate for one-time cost.
    std::vector<graph::NodeId> order(
        static_cast<std::size_t>(graph.num_nodes()));
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<graph::NodeId>(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](graph::NodeId a, graph::NodeId b) {
                       return graph.degree(a) > graph.degree(b);
                     });
    for (std::size_t i = 0; i < capacity_; ++i) {
      resident_[static_cast<std::size_t>(order[i])] = 1;
    }
    resident_count_ = capacity_;
  }
}

DeviceCache::~DeviceCache() {
  if (slab_ != nullptr) {
    allocator_->deallocate_floats(slab_, capacity_ * row_floats_);
  }
}

void DeviceCache::attach_storage(compute::DeviceAllocator& allocator,
                                 std::size_t row_floats) {
  const support::MutexLock lock(mu_);
  GNAV_CHECK(slab_ == nullptr, "attach_storage called twice");
  GNAV_CHECK(row_floats > 0, "attach_storage: row_floats must be > 0");
  allocator_ = &allocator;
  row_floats_ = row_floats;
  if (capacity_ == 0) return;
  slab_ = allocator.allocate_floats(capacity_ * row_floats_);
  slot_of_.assign(static_cast<std::size_t>(graph_.num_nodes()), kNoSlot);
  // Reverse-ordered stack so admissions consume slot 0 first (stable slot
  // assignment keeps tests and traces readable).
  free_slots_.reserve(capacity_);
  for (std::size_t s = capacity_; s-- > 0;) free_slots_.push_back(s);
  // Statically preloaded vertices (resident before any lookup) get their
  // slots now; the caller copies their feature rows next.
  for (std::size_t v = 0; v < resident_.size(); ++v) {
    if (resident_[v] != 0) {
      slot_of_[v] = free_slots_.back();
      free_slots_.pop_back();
    }
  }
}

void DeviceCache::list_push_back_locked(graph::NodeId v) {
  list_prev_[static_cast<std::size_t>(v)] = list_tail_;
  list_next_[static_cast<std::size_t>(v)] = kNil;
  if (list_tail_ != kNil) {
    list_next_[static_cast<std::size_t>(list_tail_)] = v;
  } else {
    list_head_ = v;
  }
  list_tail_ = v;
}

void DeviceCache::list_unlink_locked(graph::NodeId v) {
  const graph::NodeId p = list_prev_[static_cast<std::size_t>(v)];
  const graph::NodeId n = list_next_[static_cast<std::size_t>(v)];
  if (p != kNil) {
    list_next_[static_cast<std::size_t>(p)] = n;
  } else {
    list_head_ = n;
  }
  if (n != kNil) {
    list_prev_[static_cast<std::size_t>(n)] = p;
  } else {
    list_tail_ = p;
  }
  list_prev_[static_cast<std::size_t>(v)] = kNil;
  list_next_[static_cast<std::size_t>(v)] = kNil;
}

graph::NodeId DeviceCache::wdeg_min_locked() {
  for (;;) {
    GNAV_ASSERT(!wdeg_heap_.empty());
    const WdegEntry& top = wdeg_heap_.front();
    const auto vi = static_cast<std::size_t>(top.vertex);
    if (resident_[vi] != 0 && insert_seq_[vi] == top.seq) {
      return top.vertex;
    }
    // Stale: the vertex was evicted (or re-inserted with a fresh seq)
    // after this entry was pushed.
    std::pop_heap(wdeg_heap_.begin(), wdeg_heap_.end(), wdeg_greater);
    wdeg_heap_.pop_back();
  }
}

void DeviceCache::wdeg_compact_locked() {
  // Bound heap growth from stale entries: drop everything that no longer
  // matches the live resident set, then restore the heap property.
  std::erase_if(wdeg_heap_, [&](const WdegEntry& e) {
    const auto vi = static_cast<std::size_t>(e.vertex);
    return resident_[vi] == 0 || insert_seq_[vi] != e.seq;
  });
  std::make_heap(wdeg_heap_.begin(), wdeg_heap_.end(), wdeg_greater);
}

void DeviceCache::evict_one_locked(LookupResult& result) {
  GNAV_ASSERT(resident_count_ > 0);
  graph::NodeId victim = kNil;
  switch (policy_) {
    case CachePolicy::kFifo:
    case CachePolicy::kLru:
      // Head of the intrusive list: oldest insertion (FIFO) or least
      // recently touched (LRU).
      victim = list_head_;
      list_unlink_locked(victim);
      break;
    case CachePolicy::kWeightedDegree:
      victim = wdeg_min_locked();
      std::pop_heap(wdeg_heap_.begin(), wdeg_heap_.end(), wdeg_greater);
      wdeg_heap_.pop_back();
      break;
    case CachePolicy::kNone:
    case CachePolicy::kStatic:
      GNAV_ASSERT(false && "evict_one_locked called for non-evicting policy");
  }
  resident_[static_cast<std::size_t>(victim)] = 0;
  --resident_count_;
  ++version_;
  ++stats_.evictions;
  ++result.replaced;
  if (slab_ != nullptr) {
    const auto vi = static_cast<std::size_t>(victim);
    free_slots_.push_back(slot_of_[vi]);
    slot_of_[vi] = kNoSlot;
  }
}

void DeviceCache::insert_locked(graph::NodeId v, LookupResult& result) {
  if (capacity_ == 0) return;
  // A vertex can appear more than once in a batch's miss list; the second
  // occurrence is already resident and must not be double-inserted (the
  // old list-based implementation corrupted its resident list here).
  if (resident_[static_cast<std::size_t>(v)] != 0) return;
  if (resident_count_ >= capacity_) {
    if (policy_ == CachePolicy::kWeightedDegree) {
      // Admission check against the lowest-degree resident: one lazy
      // heap peek instead of a full O(capacity) degree scan.
      if (graph_.degree(v) <= graph_.degree(wdeg_min_locked())) return;
    }
    evict_one_locked(result);
  }
  resident_[static_cast<std::size_t>(v)] = 1;
  ++resident_count_;
  ++version_;
  ++stats_.insertions;
  if (slab_ != nullptr) {
    GNAV_ASSERT(!free_slots_.empty());
    slot_of_[static_cast<std::size_t>(v)] = free_slots_.back();
    free_slots_.pop_back();
    result.admitted.push_back(v);
  }
  const std::uint64_t seq = ++seq_counter_;
  switch (policy_) {
    case CachePolicy::kLru:
    case CachePolicy::kFifo:
      list_push_back_locked(v);
      break;
    case CachePolicy::kWeightedDegree:
      insert_seq_[static_cast<std::size_t>(v)] = seq;
      wdeg_heap_.push_back({graph_.degree(v), seq, v});
      std::push_heap(wdeg_heap_.begin(), wdeg_heap_.end(), wdeg_greater);
      if (wdeg_heap_.size() > 4 * capacity_ + 64) wdeg_compact_locked();
      break;
    case CachePolicy::kNone:
    case CachePolicy::kStatic:
      break;
  }
}

LookupResult DeviceCache::lookup_and_update(
    const std::vector<graph::NodeId>& batch, std::int64_t sequence) {
  // The span covers lock acquisition + classification + update, so the
  // trace shows cache work nested inside the transfer stage span.
  GNAV_TRACE_SPAN("cache", "lookup_and_update");
  const support::MutexLock lock(mu_);
  const std::uint64_t insertions_before = stats_.insertions;
  const std::uint64_t evictions_before = stats_.evictions;
  GNAV_CHECK(sequence < 0 ||
                 static_cast<std::uint64_t>(sequence) == batches_applied_,
             "cache admissions out of order (ordered-admission contract)");
  ++batches_applied_;
  LookupResult result;
  for (graph::NodeId v : batch) {
    GNAV_CHECK(graph_.contains(v), "cache lookup: vertex out of range");
    ++stats_.lookups;
    if (resident_[static_cast<std::size_t>(v)] != 0) {
      ++stats_.hits;
      ++result.hits;
      if (policy_ == CachePolicy::kLru) {
        // Touch: move to the most-recently-used end in O(1).
        list_unlink_locked(v);
        list_push_back_locked(v);
      }
    } else {
      result.misses.push_back(v);
    }
  }
  // Update phase: static/none policies never admit after construction.
  if (policy_ == CachePolicy::kLru || policy_ == CachePolicy::kFifo ||
      policy_ == CachePolicy::kWeightedDegree) {
    for (graph::NodeId v : result.misses) {
      insert_locked(v, result);
    }
  }
  GNAV_ASSERT(resident_count_ <= capacity_);
  // Metrics: per-call deltas onto the policy-labeled counters (atomic
  // adds; holding mu_ here is harmless — no other lock is taken).
  hits_metric_->add(result.hits);
  misses_metric_->add(result.misses.size());
  insertions_metric_->add(stats_.insertions - insertions_before);
  evictions_metric_->add(stats_.evictions - evictions_before);
  return result;
}

}  // namespace gnav::cache
