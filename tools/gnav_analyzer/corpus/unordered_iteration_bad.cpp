// Known-bad: range-for over unordered containers — iteration is
// hash-order, which varies across libstdc++ versions and insert
// histories, so anything order-sensitive downstream loses
// bit-reproducibility (the cluster-sampler bug class).
#include "gnav_stub.hpp"

int sum_values(std::unordered_map<int, int>& m) {
  int sum = 0;
  for (auto& kv : m) {  // expect-finding(unordered-iteration)
    sum += kv.second;
  }
  return sum;
}

int count_large(std::unordered_set<int>& s) {
  int n = 0;
  for (int v : s) {  // expect-finding(unordered-iteration)
    if (v > 10) ++n;
  }
  return n;
}
