#include "graph/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/generators.hpp"
#include "support/error.hpp"

namespace gnav::graph {
namespace {

/// Draws per-class mean vectors on a scaled sphere, then emits
/// x_v = signal * mu_class(v) + N(0, I). Hub vertices receive slightly
/// noisier features (their activity is more diverse in real social data),
/// which keeps degree-biased samplers from being a free lunch.
void fill_features(Dataset& ds, const SyntheticSpec& spec, Rng& rng) {
  const auto n = static_cast<std::size_t>(ds.graph.num_nodes());
  const auto d = static_cast<std::size_t>(spec.feature_dim);
  std::vector<float> class_means(
      static_cast<std::size_t>(spec.num_classes) * d);
  for (std::size_t c = 0; c < static_cast<std::size_t>(spec.num_classes); ++c) {
    double norm_sq = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double x = rng.normal();
      class_means[c * d + j] = static_cast<float>(x);
      norm_sq += x * x;
    }
    const double inv = 1.0 / std::sqrt(std::max(norm_sq, 1e-12));
    for (std::size_t j = 0; j < d; ++j) {
      class_means[c * d + j] = static_cast<float>(
          class_means[c * d + j] * inv * std::sqrt(static_cast<double>(d)));
    }
  }
  const double avg_deg = ds.graph.average_degree();
  ds.features.resize(n * d);
  for (std::size_t v = 0; v < n; ++v) {
    const auto c = static_cast<std::size_t>(ds.labels[v]);
    const double deg = static_cast<double>(
        ds.graph.degree(static_cast<NodeId>(v)));
    // Noise grows mildly with degree above the mean: hubs look "mixed".
    const double noise =
        1.0 + 0.55 * std::log1p(std::max(0.0, deg - avg_deg) / (avg_deg + 1.0));
    for (std::size_t j = 0; j < d; ++j) {
      ds.features[v * d + j] = static_cast<float>(
          spec.feature_signal * class_means[c * d + j] +
          noise * rng.normal());
    }
  }
}

void fill_splits(Dataset& ds, const SyntheticSpec& spec, Rng& rng) {
  std::vector<NodeId> order(static_cast<std::size_t>(ds.graph.num_nodes()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<NodeId>(i);
  }
  rng.shuffle(order);
  const auto n = order.size();
  const auto n_train = static_cast<std::size_t>(spec.train_fraction * n);
  const auto n_val = static_cast<std::size_t>(spec.val_fraction * n);
  ds.train_nodes.assign(order.begin(), order.begin() + n_train);
  ds.val_nodes.assign(order.begin() + n_train,
                      order.begin() + n_train + n_val);
  ds.test_nodes.assign(order.begin() + n_train + n_val, order.end());
  std::sort(ds.train_nodes.begin(), ds.train_nodes.end());
  std::sort(ds.val_nodes.begin(), ds.val_nodes.end());
  std::sort(ds.test_nodes.begin(), ds.test_nodes.end());
}

}  // namespace

void Dataset::validate() const {
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  GNAV_CHECK(labels.size() == n, "labels size mismatch");
  GNAV_CHECK(features.size() == n * static_cast<std::size_t>(feature_dim),
             "features size mismatch");
  GNAV_CHECK(num_classes >= 2, "need at least two classes");
  for (int l : labels) {
    GNAV_CHECK(l >= 0 && l < num_classes, "label out of range");
  }
  std::unordered_set<NodeId> seen;
  for (const auto* split : {&train_nodes, &val_nodes, &test_nodes}) {
    for (NodeId v : *split) {
      GNAV_CHECK(graph.contains(v), "split node out of range");
      GNAV_CHECK(seen.insert(v).second, "splits overlap");
    }
  }
}

Dataset make_synthetic_dataset(const SyntheticSpec& spec,
                               std::uint64_t seed) {
  GNAV_CHECK(spec.num_nodes > 10, "dataset too small");
  GNAV_CHECK(spec.feature_dim >= 1, "feature_dim must be positive");
  GNAV_CHECK(spec.train_fraction + spec.val_fraction < 1.0,
             "train+val fractions must leave room for test");
  Rng rng(seed);
  Dataset ds;
  ds.name = spec.name;
  ds.feature_dim = spec.feature_dim;
  ds.num_classes = spec.num_classes;
  ds.real_scale_factor = spec.real_scale_factor;
  ds.real_feature_scale = spec.real_feature_scale;
  ds.real_volume_scale = spec.real_volume_scale;
  std::vector<int> blocks;
  ds.graph = power_law_community_graph(
      spec.num_nodes, spec.num_classes, spec.power_law_exponent,
      spec.min_degree, spec.max_degree, spec.community_rewire_prob, rng,
      &blocks);
  ds.labels = std::move(blocks);
  fill_features(ds, spec, rng);
  if (spec.label_noise > 0.0) {
    GNAV_CHECK(spec.label_noise < 1.0, "label noise must be below 1");
    for (int& label : ds.labels) {
      if (rng.bernoulli(spec.label_noise)) {
        label = static_cast<int>(rng.uniform_index(
            static_cast<std::uint64_t>(spec.num_classes)));
      }
    }
  }
  fill_splits(ds, spec, rng);
  ds.validate();
  return ds;
}

Dataset load_dataset(const std::string& name, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = name;
  if (name == "ogbn-arxiv") {
    // Real: 169k nodes, avg degree ~13.7, 128-d, 40 classes.
    spec.num_nodes = 4000;
    spec.num_classes = 8;
    spec.feature_dim = 32;
    spec.power_law_exponent = 2.4;
    spec.min_degree = 3;
    spec.max_degree = 240;
    spec.community_rewire_prob = 0.62;
    spec.feature_signal = 0.35;
    spec.real_scale_factor = 169343.0 / 4000.0;
    spec.real_feature_scale = 128.0 / 32.0;
    spec.real_volume_scale = 12.0;
    spec.label_noise = 0.32;
  } else if (name == "ogbn-products") {
    // Real: 2.45M nodes, avg degree ~50.5, 100-d, 47 classes.
    spec.num_nodes = 8000;
    spec.num_classes = 12;
    spec.feature_dim = 32;
    spec.power_law_exponent = 2.15;
    spec.min_degree = 6;
    spec.max_degree = 600;
    spec.community_rewire_prob = 0.7;
    spec.feature_signal = 0.5;
    spec.real_scale_factor = 2449029.0 / 8000.0;
    spec.real_feature_scale = 100.0 / 32.0;
    spec.real_volume_scale = 5.0;
    spec.label_noise = 0.09;
  } else if (name == "reddit") {
    // Real: 233k nodes, avg degree ~492 (very dense), 602-d, 41 classes.
    spec.num_nodes = 6000;
    spec.num_classes = 8;
    spec.feature_dim = 48;
    spec.power_law_exponent = 2.0;
    spec.min_degree = 12;
    spec.max_degree = 700;
    spec.community_rewire_prob = 0.68;
    spec.feature_signal = 0.52;
    spec.real_scale_factor = 232965.0 / 6000.0;
    spec.real_feature_scale = 602.0 / 48.0;
    spec.real_volume_scale = 12.0;
    spec.label_noise = 0.12;
  } else if (name == "reddit2") {
    // Reddit2 = Reddit with a sparsified edge set (GNNAutoScale variant).
    spec.num_nodes = 6000;
    spec.num_classes = 8;
    spec.feature_dim = 48;
    spec.power_law_exponent = 2.3;
    spec.min_degree = 5;
    spec.max_degree = 350;
    spec.community_rewire_prob = 0.66;
    spec.feature_signal = 0.45;
    spec.real_scale_factor = 232965.0 / 6000.0;
    spec.real_feature_scale = 602.0 / 48.0;
    spec.real_volume_scale = 8.0;
    spec.label_noise = 0.16;
  } else {
    throw Error("unknown dataset '" + name +
                "'; available: ogbn-arxiv, ogbn-products, reddit, reddit2");
  }
  return make_synthetic_dataset(spec, seed);
}

std::vector<std::string> dataset_names() {
  return {"ogbn-arxiv", "ogbn-products", "reddit", "reddit2"};
}

std::string dataset_code(const std::string& name) {
  if (name == "ogbn-arxiv") return "AR";
  if (name == "ogbn-products") return "PR";
  if (name == "reddit") return "RD";
  if (name == "reddit2") return "RD2";
  return name;
}

Dataset make_power_law_augmentation(int index, std::uint64_t seed) {
  GNAV_CHECK(index >= 0, "index must be non-negative");
  SyntheticSpec spec;
  spec.name = "powerlaw-aug-" + std::to_string(index);
  spec.num_nodes = 1500 + 700 * (index % 5);
  spec.num_classes = 4 + (index % 4) * 2;
  spec.feature_dim = 16 + 8 * (index % 3);
  spec.power_law_exponent = 1.9 + 0.15 * (index % 6);
  spec.min_degree = 2 + (index % 4);
  spec.max_degree = static_cast<std::size_t>(spec.num_nodes / 12);
  spec.community_rewire_prob = 0.55 + 0.06 * (index % 5);
  spec.feature_signal = 0.6 + 0.1 * (index % 3);
  spec.real_scale_factor = 1.0;
  return make_synthetic_dataset(spec, seed + static_cast<std::uint64_t>(index) * 1315423911ULL);
}

}  // namespace gnav::graph
