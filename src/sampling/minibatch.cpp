#include "sampling/minibatch.hpp"

#include <unordered_map>
#include <unordered_set>

#include "graph/graph_builder.hpp"
#include "sampling/build.hpp"
#include "support/error.hpp"

namespace gnav::sampling {

void MiniBatch::validate(const graph::CsrGraph& parent) const {
  GNAV_CHECK(subgraph.num_nodes() == num_nodes(),
             "subgraph size != node mapping size");
  std::unordered_set<graph::NodeId> seen;
  for (graph::NodeId g : nodes) {
    GNAV_CHECK(parent.contains(g), "global id out of parent range");
    GNAV_CHECK(seen.insert(g).second, "duplicate global id in mini-batch");
  }
  for (std::int64_t s : seed_local) {
    GNAV_CHECK(s >= 0 && s < num_nodes(), "seed local index out of range");
  }
  GNAV_CHECK(subgraph.is_symmetric(), "mini-batch subgraph not symmetric");
}

namespace detail {

std::vector<graph::NodeId> order_nodes(
    std::span<const graph::NodeId> seeds,
    const std::vector<graph::NodeId>& extra) {
  std::vector<graph::NodeId> ordered;
  ordered.reserve(seeds.size() + extra.size());
  std::unordered_set<graph::NodeId> seen;
  seen.reserve((seeds.size() + extra.size()) * 2);
  for (graph::NodeId s : seeds) {
    if (seen.insert(s).second) ordered.push_back(s);
  }
  for (graph::NodeId v : extra) {
    if (seen.insert(v).second) ordered.push_back(v);
  }
  return ordered;
}

MiniBatch build_from_edges(
    std::span<const graph::NodeId> seeds,
    const std::vector<graph::NodeId>& ordered_nodes,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& edges,
    double sampling_work) {
  std::unordered_map<graph::NodeId, graph::NodeId> local;
  local.reserve(ordered_nodes.size() * 2);
  for (std::size_t i = 0; i < ordered_nodes.size(); ++i) {
    local.emplace(ordered_nodes[i], static_cast<graph::NodeId>(i));
  }
  graph::GraphBuilder b(static_cast<graph::NodeId>(ordered_nodes.size()));
  for (const auto& [u, v] : edges) {
    const auto iu = local.find(u);
    const auto iv = local.find(v);
    GNAV_CHECK(iu != local.end() && iv != local.end(),
               "sampled edge endpoint missing from node set");
    b.add_edge(iu->second, iv->second);
  }
  MiniBatch mb;
  mb.subgraph =
      b.symmetrize(true).deduplicate(true).remove_self_loops(true).build();
  mb.nodes = ordered_nodes;
  mb.seed_local.reserve(seeds.size());
  for (graph::NodeId s : seeds) {
    mb.seed_local.push_back(local.at(s));
  }
  mb.sampling_work = sampling_work;
  return mb;
}

MiniBatch build_induced(const graph::CsrGraph& parent,
                        std::span<const graph::NodeId> seeds,
                        const std::vector<graph::NodeId>& ordered_nodes,
                        double sampling_work) {
  MiniBatch mb;
  mb.subgraph = graph::induced_subgraph(parent, ordered_nodes);
  mb.nodes = ordered_nodes;
  std::unordered_map<graph::NodeId, std::int64_t> local;
  local.reserve(ordered_nodes.size() * 2);
  for (std::size_t i = 0; i < ordered_nodes.size(); ++i) {
    local.emplace(ordered_nodes[i], static_cast<std::int64_t>(i));
  }
  std::unordered_set<std::int64_t> seen_seed;
  mb.seed_local.reserve(seeds.size());
  for (graph::NodeId s : seeds) {
    const auto it = local.find(s);
    GNAV_CHECK(it != local.end(), "seed missing from induced node set");
    if (seen_seed.insert(it->second).second) {
      mb.seed_local.push_back(it->second);
    }
  }
  mb.sampling_work = sampling_work;
  return mb;
}

}  // namespace detail

}  // namespace gnav::sampling
